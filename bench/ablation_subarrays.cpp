// Ablation 12: subarray-level parallelism (paper refs [13][15]) vs write
// schemes. Subarrays let reads dodge in-progress writes — the related
// work's alternative to shortening the writes themselves. How do the two
// axes compose?

#include <iostream>

#include "bench_util.hpp"

using namespace tw;

int main(int argc, char** argv) {
  const bench::Options o = bench::Options::parse(argc, argv);

  std::cout << "Ablation: subarrays per bank x write scheme "
               "(read latency, ns)\n"
            << "==========================================================\n"
            << "(workload: vips; Table II point is 1 subarray/bank)\n\n";

  const auto& profile = workload::profile_by_name("vips");
  AsciiTable t;
  {
    std::vector<std::string> header = {"subarrays"};
    for (const auto k : bench::paper_columns())
      header.emplace_back(schemes::scheme_name(k));
    t.set_header(std::move(header));
  }
  for (const u32 subarrays : {1u, 2u, 4u, 8u}) {
    harness::SystemConfig cfg = bench::system_config(profile, o);
    cfg.pcm.geometry.subarrays_per_bank = subarrays;
    std::vector<std::string> row = {std::to_string(subarrays)};
    for (const auto kind : bench::paper_columns()) {
      const harness::RunMetrics m = harness::run_system(cfg, profile, kind);
      row.push_back(fixed(m.read_latency_ns, 0));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);

  // PALP overlap counters: the same sweep with partition-level
  // parallelism on. overlapped reads = reads issued while the bank's
  // charge pump was loaded; pump stalls = admissions the pump budget
  // deferred. At 1 subarray PALP degenerates to the baseline (all zero).
  std::cout << "\nPALP overlap counters (tetris, --palp semantics)\n";
  AsciiTable pt;
  pt.set_header({"subarrays", "read ns", "ovl reads", "pump stalls",
                 "wr overlaps"});
  for (const u32 subarrays : {1u, 2u, 4u, 8u}) {
    harness::SystemConfig cfg = bench::system_config(profile, o);
    cfg.pcm.geometry.subarrays_per_bank = subarrays;
    cfg.controller.palp.enabled = true;
    const harness::RunMetrics m =
        harness::run_system(cfg, profile, schemes::SchemeKind::kTetris);
    pt.add_row({std::to_string(subarrays), fixed(m.read_latency_ns, 0),
                std::to_string(m.palp_overlapped_reads),
                std::to_string(m.palp_pump_stalls),
                std::to_string(m.palp_write_overlaps)});
  }
  pt.print(std::cout);

  std::cout << "\nTakeaway: subarrays and Tetris attack the same symptom "
               "from different\nsides — subarrays move reads around the "
               "writes, Tetris shrinks the\nwrites. They compose: the "
               "best point is Tetris + subarrays, and\nsubarrays shrink "
               "the baseline's gap without closing it (writes still\n"
               "serialize on the charge pump).\n";
  return 0;
}
