// Ablation 1 (DESIGN.md §3): the packing heuristic. Algorithm 2 uses
// first-fit decreasing; how much does the sort buy over arrival-order
// first-fit, does best-fit help, and what does forbidding self-overlap
// (a conservative single-select MUX) cost?

#include <iostream>

#include "bench_util.hpp"
#include "tw/core/factory.hpp"
#include "tw/stats/accumulator.hpp"
#include "tw/workload/generator.hpp"

using namespace tw;

namespace {

double avg_units(const workload::WorkloadProfile& p,
                 const core::TetrisOptions& opts, u64 writes, u64 seed) {
  const pcm::PcmConfig cfg = pcm::table2_config();
  mem::DataStore store(cfg.geometry.units_per_line(), seed,
                       p.initial_ones_fraction);
  workload::TraceGenerator gen(p, cfg.geometry, 1, seed + 1);
  const core::TetrisScheme scheme(cfg, opts);
  stats::Accumulator units;
  u64 n = 0;
  while (n < writes) {
    const workload::TraceOp op = gen.next(0);
    if (!op.is_write) continue;
    const pcm::LogicalLine next = gen.make_write_data(op.addr, store, 0);
    units.add(scheme.plan_write(store.line(op.addr), next).write_units);
    ++n;
  }
  return units.mean();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options o = bench::Options::parse(argc, argv);
  const u64 writes = o.quick ? 600 : 3'000;

  std::cout << "Ablation: Tetris packing heuristic (avg write units)\n"
            << "====================================================\n\n";

  struct Variant {
    const char* name;
    core::TetrisOptions opts;
  };
  std::vector<Variant> variants;
  {
    Variant ffd{"first-fit decreasing (paper)", {}};
    Variant ffa{"first-fit arrival order", {}};
    ffa.opts.pack_order = core::PackOrder::kFirstFitArrival;
    Variant bfd{"best-fit decreasing", {}};
    bfd.opts.pack_order = core::PackOrder::kBestFitDecreasing;
    Variant noov{"FFD + forbid self-overlap", {}};
    noov.opts.forbid_self_overlap = true;
    variants = {ffd, ffa, bfd, noov};
  }

  AsciiTable t;
  {
    std::vector<std::string> header = {"workload"};
    for (const auto& v : variants) header.emplace_back(v.name);
    t.set_header(std::move(header));
  }
  std::vector<stats::Accumulator> avg(variants.size());
  for (const auto& p : workload::parsec_profiles()) {
    std::vector<std::string> row = {p.name};
    for (std::size_t v = 0; v < variants.size(); ++v) {
      const double u = avg_units(p, variants[v].opts, writes, o.seed);
      avg[v].add(u);
      row.push_back(fixed(u, 3));
    }
    t.add_row(std::move(row));
  }
  t.add_separator();
  std::vector<std::string> last = {"average"};
  for (auto& a : avg) last.push_back(fixed(a.mean(), 3));
  t.add_row(std::move(last));
  t.print(std::cout);

  std::cout << "\nTakeaway: at Fig. 3 densities the budget is rarely "
               "contended, so the\nheuristic choice moves the average "
               "little; the sort matters in the\ndense tail (dedup, vips) "
               "and the self-overlap ban costs a trailing\nsub-slot "
               "whenever a unit has both SETs and RESETs.\n";
  return 0;
}
