// Ablation 11: batched Tetris (our future-work extension). The controller
// hands up to B queued same-bank writes to the packer at once, so their
// data units share write units. Measures the write-unit amortization and
// system-level effect versus per-line Tetris.

#include <iostream>

#include "bench_util.hpp"

using namespace tw;

int main(int argc, char** argv) {
  const bench::Options o = bench::Options::parse(argc, argv);

  std::cout << "Ablation: batched Tetris (joint packing of same-bank "
               "writes)\n"
            << "==========================================================\n";

  AsciiTable t;
  t.set_header({"workload", "batch", "write units", "write lat (us)",
                "read lat (ns)", "IPC", "batched writes"});
  for (const char* name : {"dedup", "vips"}) {
    const auto& profile = workload::profile_by_name(name);
    for (const u32 batch : {1u, 2u, 4u, 8u}) {
      harness::SystemConfig cfg = bench::system_config(profile, o);
      cfg.controller.write_batch = batch;
      const harness::RunMetrics m =
          harness::run_system(cfg, profile, schemes::SchemeKind::kTetris);
      t.add_row({profile.name, std::to_string(batch),
                 fixed(m.write_units, 3),
                 fixed(m.write_latency_ns / 1000.0, 1),
                 fixed(m.read_latency_ns, 0), fixed(m.ipc, 3),
                 std::to_string(m.writes_batched)});
    }
    t.add_separator();
  }
  t.print(std::cout);

  std::cout << "\nTakeaway: joint packing amortizes write units below 1 "
               "per line, but the\nbatch occupies its bank in one "
               "indivisible window, so reads queue longer\nbehind it — a "
               "real trade-off: write-burst-bound vips gains IPC at "
               "small\nbatches while the more read-sensitive mix loses. "
               "Batching pairs best\nwith write pausing.\n";
  return 0;
}
