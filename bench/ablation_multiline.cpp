// Ablation: multi-line Tetris batch scheduling (scheme x K matrix).
//
// Sweeps batch.max_lines over every paper scheme on write-heavy profiles.
// Only Tetris packs the K gathered lines into one joint power-budget
// schedule (BatchPacker); the other schemes serialize their batches, so
// their rows double as a control — any K-dependence there comes purely
// from the controller's gather, not from packing. The Tetris rows show
// the write-latency / IPC gain of joint packing plus the batch-occupancy
// metrics (mean lines per issue, mean budget utilization of the joint
// schedules).

#include <fstream>
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "tw/common/csv.hpp"

using namespace tw;

int main(int argc, char** argv) {
  const bench::Options o = bench::Options::parse(argc, argv);

  std::cout << "Ablation: multi-line batch packing (scheme x K)\n"
            << "===============================================\n";

  const auto kinds = bench::paper_columns();
  std::vector<std::vector<std::string>> csv;
  AsciiTable t;
  t.set_header({"workload", "scheme", "K", "write lat (us)", "IPC",
                "write units", "batched", "lines/issue", "occupancy"});
  for (const char* name : {"dedup", "vips"}) {
    const auto& profile = workload::profile_by_name(name);
    for (const auto kind : kinds) {
      for (const u32 k : {1u, 2u, 4u, 8u}) {
        harness::SystemConfig cfg = bench::system_config(profile, o);
        cfg.batch.max_lines = k;
        const harness::RunMetrics m = harness::run_system(cfg, profile, kind);
        t.add_row({profile.name, m.scheme, std::to_string(k),
                   fixed(m.write_latency_ns / 1000.0, 1), fixed(m.ipc, 3),
                   fixed(m.write_units, 3), std::to_string(m.writes_batched),
                   fixed(m.batch_lines, 2), fixed(m.batch_occupancy, 3)});
        csv.push_back({profile.name, m.scheme, std::to_string(k),
                       fixed(m.write_latency_ns, 1), fixed(m.ipc, 4),
                       fixed(m.write_units, 4),
                       std::to_string(m.writes_batched),
                       fixed(m.batch_lines, 3),
                       fixed(m.batch_occupancy, 4)});
      }
      t.add_separator();
    }
  }
  t.print(std::cout);
  if (!o.csv_path.empty()) {
    std::ofstream out(o.csv_path);
    CsvWriter writer(out);
    writer.header({"workload", "scheme", "max_lines", "write_latency_ns",
                   "ipc", "write_units", "writes_batched", "batch_lines",
                   "batch_occupancy"});
    for (const auto& row : csv) writer.row(row);
  }

  std::cout << "\nTakeaway: K > 1 lets Tetris amortize write units across "
               "queued lines\n(occupancy rises, write units per line fall); "
               "serializing schemes are flat\nmodulo the controller's "
               "batched-issue bookkeeping.\n";
  return 0;
}
