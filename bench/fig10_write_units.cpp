// Figure 10 reproduction: the average number of sequentially executed
// write units per cache-line write, per scheme and workload.
//
// Paper: DCW baseline 8; Flip-N-Write 4; 2-Stage-Write 3;
// Three-Stage-Write 2.5; Tetris Write 1.06-1.46 depending on workload
// (worst for dedup/vips with many bit operations).

#include <iostream>

#include "bench_util.hpp"
#include "tw/core/factory.hpp"
#include "tw/stats/accumulator.hpp"
#include "tw/workload/generator.hpp"

using namespace tw;

int main(int argc, char** argv) {
  const bench::Options o = bench::Options::parse(argc, argv);
  const u64 writes_per_workload = o.quick ? 800 : 5'000;
  const pcm::PcmConfig cfg = pcm::table2_config();

  std::cout << "Figure 10: average number of write units per cache-line "
               "write\n"
            << "==========================================================="
               "\n"
            << "(paper: dcw 8, fnw 4, 2stage 3, 3stage 2.5, tetris "
               "1.06-1.46)\n\n";

  const auto kinds = bench::paper_columns();
  AsciiTable t;
  {
    std::vector<std::string> header = {"workload"};
    for (const auto k : kinds) header.emplace_back(schemes::scheme_name(k));
    t.set_header(std::move(header));
  }

  std::vector<stats::Accumulator> per_scheme(kinds.size());
  double tetris_min = 1e9, tetris_max = 0;
  for (const auto& p : workload::parsec_profiles()) {
    // One generator run produces the write stream; each scheme replays it
    // against its own copy of memory so the data is identical.
    std::vector<std::string> row = {p.name};
    for (std::size_t s = 0; s < kinds.size(); ++s) {
      mem::DataStore store(cfg.geometry.units_per_line(), o.seed,
                           p.initial_ones_fraction);
      workload::TraceGenerator gen(p, cfg.geometry, 1, o.seed + 1);
      const auto scheme = core::make_scheme(kinds[s], cfg);
      stats::Accumulator units;
      u64 writes = 0;
      while (writes < writes_per_workload) {
        const workload::TraceOp op = gen.next(0);
        if (!op.is_write) continue;
        const pcm::LogicalLine next =
            gen.make_write_data(op.addr, store, 0);
        units.add(scheme->plan_write(store.line(op.addr), next).write_units);
        ++writes;
      }
      per_scheme[s].add(units.mean());
      row.push_back(fixed(units.mean(), 2));
      if (kinds[s] == schemes::SchemeKind::kTetris) {
        tetris_min = std::min(tetris_min, units.mean());
        tetris_max = std::max(tetris_max, units.mean());
      }
    }
    t.add_row(std::move(row));
  }
  t.add_separator();
  {
    std::vector<std::string> avg = {"average"};
    for (auto& acc : per_scheme) avg.push_back(fixed(acc.mean(), 2));
    t.add_row(std::move(avg));
    t.add_row({"paper", "8.00", "4.00", "3.00", "2.50", "1.06-1.46"});
  }
  t.print(std::cout);

  std::cout << "\ntetris range across workloads: [" << fixed(tetris_min, 2)
            << ", " << fixed(tetris_max, 2) << "] (paper: [1.06, 1.46])\n";
  const bool ok = per_scheme[4].mean() < per_scheme[3].mean() &&
                  per_scheme[3].mean() < per_scheme[2].mean() &&
                  per_scheme[2].mean() < per_scheme[1].mean() &&
                  per_scheme[1].mean() < per_scheme[0].mean() &&
                  tetris_min > 0.8 && tetris_max < 2.0;
  std::cout << (ok ? "shape: OK — ranking and Tetris range match\n"
                   : "shape: MISMATCH\n");
  return ok ? 0 : 1;
}
