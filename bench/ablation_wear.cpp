// Ablation 8: endurance. Compares per-line wear concentration and
// projected lifetime across schemes, with and without Start-Gap wear
// leveling (paper ref [5]) — quantifying the endurance half of Table I.

#include <iostream>

#include "bench_util.hpp"
#include "tw/core/factory.hpp"
#include "tw/workload/generator.hpp"

using namespace tw;

namespace {

struct WearCell {
  double bits_per_write = 0;
  double hottest_share = 0;  ///< hottest line's fraction of demand writes
  u64 gap_moves = 0;
};

WearCell run(schemes::SchemeKind kind, bool leveling, u64 writes,
             u64 seed) {
  sim::Simulator sim;
  stats::Registry reg;
  const pcm::PcmConfig pcfg = pcm::table2_config();
  const auto scheme = core::make_scheme(kind, pcfg);
  mem::ControllerConfig ccfg;
  ccfg.drain = mem::ControllerConfig::DrainPolicy::kOpportunistic;
  ccfg.wear_leveling = leveling;
  ccfg.start_gap.region_lines = 64;
  ccfg.start_gap.gap_write_interval = 8;
  mem::Controller ctl(sim, pcfg, ccfg, *scheme, reg, seed);

  // Hot/cold skew: 60% of writes hammer one line of a 64-line region
  // (small region so Start-Gap completes rotations within bench scale).
  workload::WorkloadProfile p = workload::profile_by_name("dedup");
  workload::TraceGenerator gen(p, pcfg.geometry, 1, seed + 3);
  Rng rng(seed);
  u64 done = 0;
  while (done < writes) {
    const u64 line = rng.chance(0.6) ? 0 : rng.below(64);
    const Addr addr = line * 64;
    mem::MemoryRequest req;
    req.addr = addr;
    req.type = mem::ReqType::kWrite;
    req.data = gen.make_write_data(ctl.physical_of(addr), ctl.store(), 0);
    if (ctl.enqueue(std::move(req))) ++done;
    sim.run();
  }

  WearCell cell;
  const pcm::WearSummary s = ctl.wear().summary();
  cell.bits_per_write = s.avg_bits_per_write;
  u64 max_writes = 0;
  for (u64 l = 0; l < 70; ++l) {
    max_writes = std::max(max_writes, ctl.wear().line(l * 64).writes);
  }
  cell.hottest_share = s.total_writes == 0
                           ? 0.0
                           : static_cast<double>(max_writes) /
                                 static_cast<double>(s.total_writes);
  cell.gap_moves = ctl.gap_moves();
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options o = bench::Options::parse(argc, argv);
  const u64 writes = o.quick ? 2'000 : 8'000;

  std::cout << "Ablation: endurance — bits programmed and wear "
               "concentration\n"
            << "==========================================================\n"
            << "(hot/cold skew: 60% of traffic on one line of a 64-line region; "
            << writes << " writes)\n\n";

  AsciiTable t;
  t.set_header({"scheme", "leveling", "bits/write", "hottest line share",
                "gap moves"});
  for (const auto kind :
       {schemes::SchemeKind::kConventional, schemes::SchemeKind::kDcw,
        schemes::SchemeKind::kFlipNWrite, schemes::SchemeKind::kTwoStage,
        schemes::SchemeKind::kTetris}) {
    for (const bool leveling : {false, true}) {
      const WearCell c = run(kind, leveling, writes, o.seed);
      t.add_row({std::string(schemes::scheme_name(kind)),
                 leveling ? "start-gap" : "off", fixed(c.bits_per_write, 1),
                 pct(c.hottest_share), std::to_string(c.gap_moves)});
    }
    t.add_separator();
  }
  t.print(std::cout);

  std::cout << "\nTakeaway: comparison-based schemes (DCW/FNW/Tetris) cut "
               "bits-per-write\n~6x (lifetime up by the same factor); "
               "Start-Gap flattens the hot-line\nconcentration on top, at "
               "the cost of one migration write per interval.\n";
  return 0;
}
