// micro_packer: packing-hot-path throughput baseline + differential.
//
// Measures the Tetris analysis pipeline the SIMD layer accelerates —
// read-stage SET/RESET counting (Alg. 1) feeding the first-fit-decreasing
// packer (Alg. 2) — against the frozen pre-SIMD implementation kept in
// tests/reference_packer.hpp (the committed baseline, same role the
// frozen scheduler oracle plays for micro_mem --reference). Three rows:
//
//   reference  frozen seed path (plan_unit loop + AoS insertion sort +
//              checked linear scans); its throughput is the baseline the
//              ">= 2x packing path" target is measured against
//   scalar     shipped SoA pipeline, TW_SIMD=scalar (the fallback; gated
//              to stay >= 0.95x of the reference)
//   avx2       shipped pipeline at the best supported ISA level
//
// and three workloads: single lines at the default 8-unit geometry
// (glue-bound; SIMD is expected to roughly tie), single lines at the
// 32-unit / 256 B geometry (count+scan bound; the >= 2x target), and the
// multi-line BatchPacker joint schedule (K=8) that only the shipped path
// provides — its reference comparator is the frozen per-line serial pack
// of the same lines, which is exactly what the pre-batching controller
// issued. Every row checksums its full schedule stream; any divergence
// between the reference and either shipped ISA level fails the run (an
// always-on three-way differential). --json writes the BENCH_packer.json
// baseline gated by cmake/check_bench.py (events_per_sec = 32-unit
// single-line count+pack/s at the best level; sim_writes_per_sec = batch
// lines/s).

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "reference_packer.hpp"
#include "tw/common/rng.hpp"
#include "tw/common/simd.hpp"
#include "tw/core/batch_packer.hpp"
#include "tw/core/packer.hpp"
#include "tw/core/read_stage.hpp"
#include "tw/pcm/line.hpp"
#include "tw/pcm/params.hpp"

using namespace tw;

namespace {

struct LinePairs {
  std::vector<pcm::LineBuf> lines;
  std::vector<pcm::LogicalLine> datas;
};

LinePairs make_pairs(u32 units, std::size_t n, u64 seed) {
  Rng rng(seed);
  LinePairs w;
  w.lines.reserve(n);
  w.datas.reserve(n);
  for (std::size_t t = 0; t < n; ++t) {
    pcm::LineBuf line(units);
    pcm::LogicalLine data(units);
    for (u32 i = 0; i < units; ++i) {
      line.set_cell(i, rng.next());
      line.set_flip(i, rng.chance(0.5));
      // Partially-correlated new data: realistic mixed densities instead
      // of 50% flips everywhere.
      data.set_word(i, rng.chance(0.3)
                           ? rng.next()
                           : (line.cell(i) ^
                              (rng.next() & rng.next() & rng.next())));
    }
    w.lines.push_back(std::move(line));
    w.datas.push_back(std::move(data));
  }
  return w;
}

/// Fingerprint of a pack result: any divergence in counts, placements or
/// fit accounting changes it.
u64 fingerprint(const core::PackResult& r) {
  u64 h = 0x9E3779B97F4A7C15ull;
  auto mix = [&h](u64 v) {
    h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  };
  mix(r.result);
  mix(r.subresult);
  mix(r.fit_checks);
  for (const auto& s : r.write1_queue) {
    mix((static_cast<u64>(s.unit) << 32) | s.write_unit);
    mix((static_cast<u64>(s.current) << 32) | s.passes);
  }
  for (const auto& s : r.write0_queue) {
    mix((static_cast<u64>(s.unit) << 32) | s.sub_slot);
    mix((static_cast<u64>(s.current) << 32) | s.passes);
  }
  return h;
}

struct PathResult {
  double ops_per_sec = 0.0;
  u64 checksum = 0;
};

/// Single-line packing path: read stage + pack per line, `reps` timed
/// sweeps plus one untimed sweep that checksums every schedule (so the
/// differential covers the full workload without diluting the measured
/// path with hashing). `reference` selects the frozen pre-SIMD
/// implementation.
PathResult run_single(const LinePairs& w, const core::PackerConfig& pcfg,
                      u32 bits, u32 reps, bool reference) {
  PathResult res;
  u64 sink = 0;
  bench::WallTimer timer;
  for (u32 rep = 0; rep < reps; ++rep) {
    for (std::size_t i = 0; i < w.lines.size(); ++i) {
      const core::ReadStageResult read =
          reference ? testref::reference_read_stage(w.lines[i], w.datas[i],
                                                    bits)
                    : core::read_stage(w.lines[i], w.datas[i], bits);
      const core::PackResult r = reference
                                     ? testref::reference_pack(read.counts,
                                                               pcfg)
                                     : core::pack(read.counts, pcfg);
      sink += r.result + r.subresult;
    }
  }
  const double secs = timer.elapsed_ms() / 1000.0;
  res.ops_per_sec = static_cast<double>(w.lines.size()) * reps /
                    (secs > 0 ? secs : 1e-9);
  if (sink == 0) std::cerr << "(empty schedules)\n";  // keep `sink` live
  for (std::size_t i = 0; i < w.lines.size(); ++i) {
    const core::ReadStageResult read =
        reference
            ? testref::reference_read_stage(w.lines[i], w.datas[i], bits)
            : core::read_stage(w.lines[i], w.datas[i], bits);
    const core::PackResult r =
        reference ? testref::reference_pack(read.counts, pcfg)
                  : core::pack(read.counts, pcfg);
    // Order-dependent chain (not XOR: identical lines must not cancel).
    res.checksum = res.checksum * 1099511628211ull ^ fingerprint(r);
  }
  return res;
}

/// Multi-line packing path: BatchPacker joint schedules of `k` lines.
/// Shipped path only — the frozen reference has no batch stage (the
/// pre-batching controller packed each line separately; run_single on the
/// same pairs is its lines/s comparator).
PathResult run_batch(const LinePairs& w, const pcm::PcmConfig& cfg,
                     const core::PackerConfig& pcfg, u32 k, u32 reps) {
  const core::BatchPacker bp(cfg, core::BatchPackerOptions{});
  PathResult res;
  u64 sink = 0;
  bench::WallTimer timer;
  u64 batches = 0;
  for (u32 rep = 0; rep < reps; ++rep) {
    for (std::size_t i = 0; i + k <= w.lines.size(); i += k) {
      // pack_lines takes mutable pointers (the scheme-side caller applies
      // plans through them) but never mutates here; copies keep the
      // measured input identical across reps regardless.
      pcm::LineBuf copies[16];
      pcm::LineBuf* ptrs[16];
      for (u32 j = 0; j < k; ++j) {
        copies[j] = w.lines[i + j];
        ptrs[j] = &copies[j];
      }
      const core::BatchPackOutcome out = bp.pack_lines(
          {ptrs, k}, {w.datas.data() + i, k}, pcfg);
      sink += out.pack.result + out.pack.subresult;
      ++batches;
    }
  }
  const double secs = timer.elapsed_ms() / 1000.0;
  res.ops_per_sec =
      static_cast<double>(batches) * k / (secs > 0 ? secs : 1e-9);
  if (sink == 0) std::cerr << "(empty batch schedules)\n";
  for (std::size_t i = 0; i + k <= w.lines.size(); i += k) {
    pcm::LineBuf copies[16];
    pcm::LineBuf* ptrs[16];
    for (u32 j = 0; j < k; ++j) {
      copies[j] = w.lines[i + j];
      ptrs[j] = &copies[j];
    }
    const core::BatchPackOutcome out =
        bp.pack_lines({ptrs, k}, {w.datas.data() + i, k}, pcfg);
    res.checksum = res.checksum * 1099511628211ull ^ fingerprint(out.pack);
  }
  return res;
}

core::PackerConfig packer_config(const pcm::PcmConfig& cfg) {
  core::PackerConfig pcfg;
  pcfg.k = cfg.k();
  pcfg.l = cfg.l();
  pcfg.budget = cfg.bank_power_budget();
  return pcfg;
}

std::string hex16(u64 v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options o = bench::Options::parse(argc, argv);
  const pcm::PcmConfig cfg;  // Table II device (8 x 64-bit units)
  pcm::PcmConfig cfg_wide = cfg;  // 256 B line stress geometry
  cfg_wide.geometry.cache_line_bytes = 256;
  const core::PackerConfig pcfg = packer_config(cfg);
  const core::PackerConfig pcfg_wide = packer_config(cfg_wide);
  const u32 bits = cfg.geometry.data_unit_bits;

  const std::size_t trials = o.quick ? 4'000 : 20'000;
  const u32 reps = o.quick ? 4 : 10;
  const u32 batch_k = 8;
  const LinePairs w = make_pairs(cfg.geometry.units_per_line(), trials,
                                 o.seed);
  const LinePairs w_wide = make_pairs(cfg_wide.geometry.units_per_line(),
                                      trials / 4, o.seed + 1);

  std::cout << "micro_packer: count+pack throughput (" << trials
            << " lines x " << reps << " reps, budget " << pcfg.budget
            << ", batch K=" << batch_k << ")\n"
            << "============================================================"
               "\n";

  const simd::Level restore = simd::active_level();
  struct Row {
    const char* name;
    bool reference;
    simd::Level level;
    PathResult single;
    PathResult wide;
    PathResult batch;
  };
  std::vector<Row> rows;
  rows.push_back({"reference", true, simd::Level::kScalar, {}, {}, {}});
  rows.push_back({"scalar", false, simd::Level::kScalar, {}, {}, {}});
  if (simd::avx2_supported()) {
    rows.push_back({"avx2", false, simd::Level::kAvx2, {}, {}, {}});
  }

  for (auto& row : rows) {
    simd::set_level(row.level);
    row.single = run_single(w, pcfg, bits, reps, row.reference);
    row.wide = run_single(w_wide, pcfg_wide, bits, reps, row.reference);
    if (!row.reference) {
      row.batch = run_batch(w, cfg, pcfg, batch_k, reps);
    }
  }
  simd::set_level(restore);

  AsciiTable t;
  t.set_header({"path", "8u packs/s", "32u packs/s", "batch(K=8) lines/s",
                "checksum(8u^32u)"});
  for (const auto& row : rows) {
    t.add_row({row.name, fixed(row.single.ops_per_sec, 0),
               fixed(row.wide.ops_per_sec, 0),
               row.reference ? std::string("per-line (=8u)")
                             : fixed(row.batch.ops_per_sec, 0),
               hex16(row.single.checksum ^ row.wide.checksum)});
  }
  t.print(std::cout);

  // Always-on three-way differential: the frozen reference and both
  // shipped ISA levels must produce bit-identical schedules everywhere.
  const Row& ref = rows.front();
  bool identical = true;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    identical = identical && rows[i].single.checksum == ref.single.checksum &&
                rows[i].wide.checksum == ref.wide.checksum &&
                rows[i].batch.checksum == rows[1].batch.checksum;
  }
  if (!identical) {
    std::cerr << "FAIL: packing paths diverged (reference vs shipped "
                 "scalar/avx2)\n";
    return 1;
  }

  const Row& best = rows.back();
  const double speed_8u = best.single.ops_per_sec / ref.single.ops_per_sec;
  const double speed_32u = best.wide.ops_per_sec / ref.wide.ops_per_sec;
  const double scalar_8u =
      rows[1].single.ops_per_sec / ref.single.ops_per_sec;
  const double scalar_32u = rows[1].wide.ops_per_sec / ref.wide.ops_per_sec;
  const double batch_vs_ref =
      best.batch.ops_per_sec / ref.single.ops_per_sec;
  std::cout << "\nspeedup vs frozen reference: 8u " << fixed(speed_8u, 2)
            << "x, 32u " << fixed(speed_32u, 2) << "x (target >= 2x), batch "
            << fixed(batch_vs_ref, 2)
            << "x lines/s; scalar fallback 8u " << fixed(scalar_8u, 2)
            << "x, 32u " << fixed(scalar_32u, 2)
            << "x (floor 0.95x); bit-identical schedules\n";

  if (!o.json_path.empty()) {
    bench::BenchBaseline b;
    b.bench = "micro_packer";
    b.config = std::string("count+pack vs frozen reference, level=") +
               simd::level_name(restore) + ", speedup_32u=" +
               std::string(fixed(speed_32u, 2)) + "x, speedup_8u=" +
               std::string(fixed(speed_8u, 2)) + "x, scalar_32u=" +
               std::string(fixed(scalar_32u, 2)) + "x, batch K=" +
               std::to_string(batch_k);
    b.wall_ms = 0.0;  // per-path timing is in the columns above
    b.events_per_sec = best.wide.ops_per_sec;
    b.sim_writes_per_sec = best.batch.ops_per_sec;
    bench::write_bench_json(o.json_path, b);
  }
  return 0;
}
