// Microbenchmarks of the Tetris analysis stage (Algorithm 2): the paper
// measured 41 cycles at 400 MHz (102.5 ns) for its FPGA implementation;
// these benchmarks measure the software packer's cost and scaling.

#include <benchmark/benchmark.h>

#include <vector>

#include "tw/common/rng.hpp"
#include "tw/core/packer.hpp"

namespace {

using namespace tw;
using namespace tw::core;

std::vector<UnitCounts> random_counts(u32 units, double density,
                                      u64 seed) {
  Rng rng(seed);
  std::vector<UnitCounts> counts;
  counts.reserve(units);
  for (u32 i = 0; i < units; ++i) {
    counts.push_back(UnitCounts{
        i, static_cast<u32>(rng.poisson(6.7 * density)),
        static_cast<u32>(rng.poisson(2.9 * density))});
  }
  return counts;
}

void BM_PackPaperLine(benchmark::State& state) {
  const auto counts = random_counts(8, 1.0, 42);
  const PackerConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pack(counts, cfg));
  }
  state.SetLabel("8 units, Fig.3 density (paper HW: 102.5 ns)");
}
BENCHMARK(BM_PackPaperLine);

void BM_PackUnits(benchmark::State& state) {
  const auto counts =
      random_counts(static_cast<u32>(state.range(0)), 1.0, 7);
  const PackerConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pack(counts, cfg));
  }
}
BENCHMARK(BM_PackUnits)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_PackDensity(benchmark::State& state) {
  const auto counts =
      random_counts(8, static_cast<double>(state.range(0)) / 10.0, 11);
  const PackerConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pack(counts, cfg));
  }
}
BENCHMARK(BM_PackDensity)->Arg(5)->Arg(10)->Arg(20)->Arg(30);

void BM_PackOrder(benchmark::State& state) {
  const auto counts = random_counts(8, 2.0, 13);
  PackerConfig cfg;
  cfg.order = static_cast<PackOrder>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pack(counts, cfg));
  }
}
BENCHMARK(BM_PackOrder)->Arg(0)->Arg(1)->Arg(2);

void BM_VerifyPack(benchmark::State& state) {
  const auto counts = random_counts(8, 1.0, 17);
  const PackerConfig cfg;
  const PackResult r = pack(counts, cfg);
  for (auto _ : state) {
    verify_pack(counts, cfg, r);
  }
}
BENCHMARK(BM_VerifyPack);

}  // namespace
