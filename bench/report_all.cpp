// report_all: run the full (workload x scheme) matrix ONCE and print
// every system figure from it (Figures 11-14), optionally dumping the raw
// CSV and per-figure SVGs — the one-command reproduction of the paper's
// evaluation section.
//
//   $ ./report_all [--quick] [--ops=N] [--seed=N] [--csv=DIR_PREFIX]
//                  [--svg=DIR_PREFIX]

#include <fstream>
#include <iostream>

#include "bench_util.hpp"

using namespace tw;

namespace {

struct Figure {
  const char* title;
  const char* y_label;
  harness::MetricFn metric;
  bool higher_better;
  std::vector<double> paper;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::Options o = bench::Options::parse(argc, argv);

  std::cout << "Tetris Write — full evaluation report\n"
            << "======================================\n"
            << "config: " << pcm::table2_config().describe() << "\n\n";

  const harness::Matrix m = bench::run_paper_matrix(o);

  const Figure figures[] = {
      {"Figure 11: normalized read latency", "normalized to DCW",
       [](const harness::RunMetrics& r) { return r.read_latency_ns; },
       false,
       {0.61, 0.50, 0.44, 0.35}},
      {"Figure 12: normalized write latency", "normalized to DCW",
       [](const harness::RunMetrics& r) { return r.write_latency_ns; },
       false,
       {0.75, 0.67, 0.65, 0.60}},
      {"Figure 13: IPC improvement", "x over DCW",
       [](const harness::RunMetrics& r) { return r.ipc; }, true,
       {1.4, 1.6, 1.8, 2.0}},
      {"Figure 14: normalized running time", "normalized to DCW",
       [](const harness::RunMetrics& r) { return r.runtime_ns; }, false,
       {0.76, 0.66, 0.61, 0.54}},
  };

  bool all_ok = true;
  int fig_no = 11;
  for (const Figure& f : figures) {
    std::cout << f.title << "\n";
    AsciiTable t = harness::normalized_table(m, f.metric, 0);
    std::vector<std::string> paper_row = {"paper avg", "1.000"};
    for (const double v : f.paper) paper_row.push_back(fixed(v, 3));
    t.add_row(std::move(paper_row));
    t.print(std::cout);

    const auto norm = harness::normalized_values(m, f.metric, 0);
    const auto& geo = norm.back();
    for (std::size_t s = 2; s < m.kinds.size(); ++s) {
      const bool measured_better =
          f.higher_better ? geo[s] > geo[s - 1] : geo[s] < geo[s - 1];
      const bool paper_better = f.higher_better
                                    ? f.paper[s - 1] > f.paper[s - 2]
                                    : f.paper[s - 1] < f.paper[s - 2];
      if (measured_better != paper_better) all_ok = false;
    }
    if (!o.svg_path.empty()) {
      BarChart chart(f.title, f.y_label);
      std::vector<std::string> names;
      for (const auto kind : m.kinds)
        names.emplace_back(schemes::scheme_name(kind));
      chart.set_series(std::move(names));
      for (std::size_t w = 0; w < m.workloads.size(); ++w)
        chart.add_group(m.workloads[w].name, norm[w]);
      chart.set_reference(1.0);
      const std::string path =
          o.svg_path + "_fig" + std::to_string(fig_no) + ".svg";
      std::ofstream out(path);
      chart.render(out);
      std::cout << "(wrote " << path << ")\n";
    }
    std::cout << "\n";
    ++fig_no;
  }

  if (!o.csv_path.empty()) {
    std::ofstream out(o.csv_path);
    harness::write_csv(m, out);
    std::cout << "(raw matrix written to " << o.csv_path << ")\n";
  }
  std::cout << (all_ok
                    ? "shape: OK — every figure's scheme ranking matches "
                      "the paper\n"
                    : "shape: MISMATCH\n");
  return all_ok ? 0 : 1;
}
