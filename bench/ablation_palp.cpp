// Ablation: partition-level parallelism (PALP, paper ref [15] spirit)
// composed with Tetris packing. Sweeps partitions/bank x scheme x
// read-mix and reports read latency plus the PALP overlap counters.
//
// Two simulated (machine-independent, deterministic) gates ride in the
// --json baseline:
//
//   * read_latency_speedup: canneal (read-heavy) Tetris read latency at
//     1 partition / PALP off divided by the same cell at 4 partitions /
//     PALP on. Required > 1.0 — overlapping reads with in-flight SET
//     bursts must help a read-heavy mix.
//   * tetris_ipc_ratio: vips (write-heavier) Tetris IPC with PALP on at
//     4 partitions over PALP off at 4 partitions. Required >= 0.99 —
//     read-while-write must not regress write throughput.

#include <cstdio>
#include <fstream>
#include <iostream>

#include "bench_util.hpp"

using namespace tw;

namespace {

struct Cell {
  double read_ns = 0.0;
  double ipc = 0.0;
  u64 ovl_reads = 0;
  u64 pump_stalls = 0;
  u64 events = 0;
};

Cell run_cell(const bench::Options& o, const workload::WorkloadProfile& p,
              schemes::SchemeKind kind, u32 partitions, bool palp) {
  harness::SystemConfig cfg = bench::system_config(p, o);
  cfg.pcm.geometry.subarrays_per_bank = partitions;
  cfg.controller.palp.enabled = palp;
  const harness::RunMetrics m = harness::run_system(cfg, p, kind);
  return {m.read_latency_ns, m.ipc, m.palp_overlapped_reads,
          m.palp_pump_stalls, m.sim_events};
}

void write_palp_json(const std::string& path, const bench::Options& o,
                     double speedup, double ipc_ratio, double wall_ms,
                     u64 events) {
  std::ofstream out(path);
  const double secs = wall_ms / 1000.0;
  out << "{\n"
      << "  \"bench\": \"ablation_palp\",\n"
      << "  \"config\": \"" << (o.quick ? "quick" : "full")
      << " ops=" << o.target_ops_per_core << " seed=" << o.seed
      << " workloads=canneal/vips scheme=tetris partitions=1/2/4/8\",\n"
      << "  \"wall_ms\": " << fixed(wall_ms, 2) << ",\n"
      << "  \"events_per_sec\": "
      << fixed(secs > 0.0 ? static_cast<double>(events) / secs : 0.0, 1)
      << ",\n"
      << "  \"read_latency_speedup\": " << fixed(speedup, 3) << ",\n"
      << "  \"tetris_ipc_ratio\": " << fixed(ipc_ratio, 3) << ",\n"
      // Per-metric regression bands for cmake/check_bench.py: both gate
      // ratios are simulated (deterministic), so they get a tight band;
      // wall-clock throughput keeps the shared-runner noise allowance.
      << "  \"tolerances\": {\n"
      << "    \"read_latency_speedup\": 2,\n"
      << "    \"tetris_ipc_ratio\": 2,\n"
      << "    \"events_per_sec\": 15\n"
      << "  }\n"
      << "}\n";
  std::printf("(benchmark baseline written to %s)\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options o = bench::Options::parse(argc, argv);

  std::cout << "Ablation: partition-level parallelism (PALP) x Tetris\n"
            << "=====================================================\n"
            << "(read-while-write inside a bank; canneal = read-heavy, "
               "vips = write-heavier)\n\n";

  const auto& canneal = workload::profile_by_name("canneal");
  const auto& vips = workload::profile_by_name("vips");
  const std::vector<schemes::SchemeKind> kinds = {
      schemes::SchemeKind::kDcw, schemes::SchemeKind::kTetris};

  const bench::WallTimer timer;
  u64 events = 0;

  for (const auto* profile : {&canneal, &vips}) {
    std::cout << profile->name << " read latency (ns), PALP off -> on:\n";
    AsciiTable t;
    t.set_header({"partitions", "dcw off", "dcw on", "tetris off",
                  "tetris on", "ovl reads", "pump stalls"});
    for (const u32 parts : {1u, 2u, 4u, 8u}) {
      std::vector<std::string> row = {std::to_string(parts)};
      Cell tetris_on;
      for (const auto kind : kinds) {
        const Cell off = run_cell(o, *profile, kind, parts, false);
        const Cell on = run_cell(o, *profile, kind, parts, true);
        events += off.events + on.events;
        row.push_back(fixed(off.read_ns, 0));
        row.push_back(fixed(on.read_ns, 0));
        if (kind == schemes::SchemeKind::kTetris) tetris_on = on;
      }
      // The counter columns are the tetris / PALP-on cell's.
      row.push_back(std::to_string(tetris_on.ovl_reads));
      row.push_back(std::to_string(tetris_on.pump_stalls));
      t.add_row(std::move(row));
    }
    t.print(std::cout);
    std::cout << "\n";
  }

  // Gate cells (re-run: cheap relative to the sweep, keeps the gate
  // independent of table-iteration order).
  const Cell base = run_cell(o, canneal, schemes::SchemeKind::kTetris, 1,
                             false);
  const Cell palp4 = run_cell(o, canneal, schemes::SchemeKind::kTetris, 4,
                              true);
  const Cell vips_off = run_cell(o, vips, schemes::SchemeKind::kTetris, 4,
                                 false);
  const Cell vips_on = run_cell(o, vips, schemes::SchemeKind::kTetris, 4,
                                true);
  const double speedup =
      palp4.read_ns > 0.0 ? base.read_ns / palp4.read_ns : 0.0;
  const double ipc_ratio =
      vips_off.ipc > 0.0 ? vips_on.ipc / vips_off.ipc : 0.0;
  const double wall_ms = timer.elapsed_ms();

  std::printf("canneal tetris read-latency speedup at 4 partitions: %.3fx "
              "(gate: > 1.0)\n",
              speedup);
  std::printf("vips tetris IPC ratio PALP on/off at 4 partitions: %.3f "
              "(gate: >= 0.99)\n",
              ipc_ratio);

  if (!o.json_path.empty()) {
    write_palp_json(o.json_path, o, speedup, ipc_ratio, wall_ms, events);
  }

  bool ok = true;
  if (speedup <= 1.0) {
    std::fprintf(stderr,
                 "ablation_palp: FAIL — PALP read-latency speedup %.3fx "
                 "(> 1.0 required on the read-heavy mix)\n",
                 speedup);
    ok = false;
  }
  if (ipc_ratio < 0.99) {
    std::fprintf(stderr,
                 "ablation_palp: FAIL — Tetris IPC ratio %.3f with PALP on "
                 "(>= 0.99 required: no write-throughput regression)\n",
                 ipc_ratio);
    ok = false;
  }
  std::cout << "\nTakeaway: partitions give reads an escape hatch *during* "
               "a long SET burst\ninstead of just around it — the pump "
               "budget, not the bank, is the shared\nresource. Tetris "
               "shrinks the bursts; PALP overlaps what remains. The two\n"
               "compose, and the win grows with the read fraction.\n";
  return ok ? 0 : 1;
}
