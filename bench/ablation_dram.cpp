// Ablation: the DRAM front tier (PCMSimMemorySystem shape — DRAM cache
// controllers in front of the PCM controllers). Sweeps tier capacity x
// replacement policy on a write-heavy and a read-heavy mix and reports
// how much PCM write traffic the tier absorbs, plus the MAC policy's
// writeback savings over classic LRU.
//
// One simulated (machine-independent, deterministic) gate rides in the
// --json baseline:
//
//   * write_traffic_reduction: 1 - (PCM line writes serviced with the
//     tier at 32 MB / MAC / write-heavy mix) / (same cell, tier off).
//     Required >= 0.20 — a DRAM front big enough for the hot set must
//     absorb at least a fifth of the PCM write traffic.

#include <cstdio>
#include <fstream>
#include <iostream>

#include "bench_util.hpp"

using namespace tw;

namespace {

struct Cell {
  u64 pcm_writes = 0;
  u64 hits = 0;
  u64 misses = 0;
  u64 writebacks = 0;
  u64 clean_evicts = 0;
  double ipc = 0.0;
  u64 events = 0;

  double hit_rate() const {
    const u64 total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / total : 0.0;
  }
};

Cell run_cell(const bench::Options& o, const workload::WorkloadProfile& p,
              u64 capacity_bytes, mem::DramPolicy policy) {
  harness::SystemConfig cfg = bench::system_config(p, o);
  cfg.dram.enabled = capacity_bytes > 0;
  if (capacity_bytes > 0) cfg.dram.capacity_bytes = capacity_bytes;
  cfg.dram.policy = policy;
  const harness::RunMetrics m =
      harness::run_system(cfg, p, schemes::SchemeKind::kTetris);
  return {m.writes,          m.dram_hits, m.dram_misses, m.dram_writebacks,
          m.dram_clean_evicts, m.ipc,       m.sim_events};
}

std::string capacity_label(u64 bytes) {
  if (bytes == 0) return "off";
  if (bytes >= 1024 * 1024) return std::to_string(bytes >> 20) + " MB";
  return std::to_string(bytes >> 10) + " KB";
}

void write_dram_json(const std::string& path, const bench::Options& o,
                     double reduction, double hit_rate, double wall_ms,
                     u64 events) {
  std::ofstream out(path);
  const double secs = wall_ms / 1000.0;
  out << "{\n"
      << "  \"bench\": \"ablation_dram\",\n"
      << "  \"config\": \"" << (o.quick ? "quick" : "full")
      << " ops=" << o.target_ops_per_core << " seed=" << o.seed
      << " workloads=vips/canneal scheme=tetris gate=32MB/mac\",\n"
      << "  \"wall_ms\": " << fixed(wall_ms, 2) << ",\n"
      << "  \"events_per_sec\": "
      << fixed(secs > 0.0 ? static_cast<double>(events) / secs : 0.0, 1)
      << ",\n"
      << "  \"write_traffic_reduction\": " << fixed(reduction, 3) << ",\n"
      << "  \"dram_hit_rate\": " << fixed(hit_rate, 3) << ",\n"
      // Per-metric regression bands for cmake/check_bench.py: the
      // simulated ratios are deterministic (tight band); wall-clock
      // throughput gets the shared-runner noise allowance.
      << "  \"tolerances\": {\n"
      << "    \"write_traffic_reduction\": 5,\n"
      << "    \"dram_hit_rate\": 5,\n"
      << "    \"events_per_sec\": 15\n"
      << "  }\n"
      << "}\n";
  std::printf("(benchmark baseline written to %s)\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options o = bench::Options::parse(argc, argv);

  std::cout << "Ablation: DRAM front tier x eviction policy\n"
            << "===========================================\n"
            << "(per-channel DRAM line cache in front of the PCM "
               "controllers;\n vips = write-heavy, canneal = read-heavy; "
               "scheme = tetris)\n\n";

  const std::vector<u64> capacities = {0,
                                       u64{64} * 1024,
                                       u64{256} * 1024,
                                       u64{1} * 1024 * 1024,
                                       u64{32} * 1024 * 1024};

  const bench::WallTimer timer;
  u64 events = 0;

  for (const char* wname : {"vips", "canneal"}) {
    const auto& profile = workload::profile_by_name(wname);
    std::cout << profile.name
              << ": PCM line writes serviced (tier off -> on):\n";
    AsciiTable t;
    t.set_header({"dram", "pcm writes lru", "pcm writes mac", "mac hit%",
                  "mac wb", "mac clean ev", "mac reduction"});
    u64 off_writes = 0;
    for (const u64 cap : capacities) {
      const Cell lru = run_cell(o, profile, cap, mem::DramPolicy::kLru);
      const Cell mac = run_cell(o, profile, cap, mem::DramPolicy::kMac);
      events += lru.events + mac.events;
      if (cap == 0) off_writes = mac.pcm_writes;
      const double reduction =
          off_writes > 0
              ? 1.0 - static_cast<double>(mac.pcm_writes) / off_writes
              : 0.0;
      t.add_row({capacity_label(cap), std::to_string(lru.pcm_writes),
                 std::to_string(mac.pcm_writes),
                 fixed(mac.hit_rate() * 100.0, 1),
                 std::to_string(mac.writebacks),
                 std::to_string(mac.clean_evicts),
                 cap == 0 ? "-" : fixed(reduction * 100.0, 1) + "%"});
    }
    t.print(std::cout);
    std::cout << "\n";
  }

  // Gate cells (re-run: cheap relative to the sweep, keeps the gate
  // independent of table-iteration order).
  const auto& vips = workload::profile_by_name("vips");
  const Cell off = run_cell(o, vips, 0, mem::DramPolicy::kMac);
  const Cell mac32 =
      run_cell(o, vips, u64{32} * 1024 * 1024, mem::DramPolicy::kMac);
  const double reduction =
      off.pcm_writes > 0
          ? 1.0 - static_cast<double>(mac32.pcm_writes) / off.pcm_writes
          : 0.0;
  const double wall_ms = timer.elapsed_ms();

  std::printf("vips PCM write-traffic reduction at 32 MB / mac: %.1f%% "
              "(gate: >= 20%%)\n",
              reduction * 100.0);
  std::printf("vips DRAM hit rate at 32 MB / mac: %.1f%%\n",
              mac32.hit_rate() * 100.0);

  if (!o.json_path.empty()) {
    write_dram_json(o.json_path, o, reduction, mac32.hit_rate(), wall_ms,
                    events);
  }

  bool ok = true;
  if (reduction < 0.20) {
    std::fprintf(stderr,
                 "ablation_dram: FAIL — write-traffic reduction %.1f%% at "
                 "32 MB / mac (>= 20%% required on the write-heavy mix)\n",
                 reduction * 100.0);
    ok = false;
  }
  std::cout << "\nTakeaway: the tier turns PCM's write problem into DRAM's "
               "hit problem —\nwhat the cache absorbs, the slow SET/RESET "
               "path never sees. MAC eviction\nspends the leftover "
               "writeback budget where it is cheapest (clean lines\nfirst, "
               "same-bank dirty groups when forced), so the PCM controller "
               "\nreceives write clusters the batch packer can fuse.\n";
  return ok ? 0 : 1;
}
