// Figure 11 reproduction: average memory read latency, normalized to the
// DCW baseline, per scheme and workload.
//
// Paper averages: FNW -39%, 2-Stage -50%, Three-Stage -56%, Tetris -65%.

#include "bench_util.hpp"

int main(int argc, char** argv) {
  return tw::bench::system_figure(
      argc, argv, "Figure 11: normalized read latency",
      [](const tw::harness::RunMetrics& m) { return m.read_latency_ns; },
      /*paper averages (fnw, 2stage, 3stage, tetris):*/
      {0.61, 0.50, 0.44, 0.35},
      "paper: fnw 0.61, 2stage 0.50, 3stage 0.44, tetris 0.35");
}
