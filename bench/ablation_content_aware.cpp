// Ablation 5: worst-case vs content-aware timing for the prior schemes.
// The paper scores FNW / 2-Stage / 3-Stage at their worst-case
// guarantees. Our "-actual" variants pack by measured current instead —
// isolating how much of Tetris's win comes from (a) using actual content
// and how much from (b) the write-0 interspace stealing that only Tetris
// does (tetris vs 3stage-actual).

#include <iostream>

#include "bench_util.hpp"
#include "tw/core/factory.hpp"
#include "tw/stats/accumulator.hpp"
#include "tw/workload/generator.hpp"

using namespace tw;

namespace {

double avg_units(const workload::WorkloadProfile& p,
                 schemes::SchemeKind kind, u64 writes, u64 seed) {
  const pcm::PcmConfig cfg = pcm::table2_config();
  mem::DataStore store(cfg.geometry.units_per_line(), seed,
                       p.initial_ones_fraction);
  workload::TraceGenerator gen(p, cfg.geometry, 1, seed + 1);
  const auto scheme = core::make_scheme(kind, cfg);
  stats::Accumulator units;
  u64 n = 0;
  while (n < writes) {
    const workload::TraceOp op = gen.next(0);
    if (!op.is_write) continue;
    const pcm::LogicalLine next = gen.make_write_data(op.addr, store, 0);
    units.add(scheme->plan_write(store.line(op.addr), next).write_units);
    ++n;
  }
  return units.mean();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options o = bench::Options::parse(argc, argv);
  const u64 writes = o.quick ? 500 : 3'000;

  std::cout << "Ablation: worst-case vs content-aware prior schemes\n"
            << "===================================================\n"
            << "(avg write units; '-actual' = packed by measured "
               "current)\n\n";

  const std::vector<schemes::SchemeKind> kinds = {
      schemes::SchemeKind::kFlipNWrite,
      schemes::SchemeKind::kFlipNWriteActual,
      schemes::SchemeKind::kTwoStage,
      schemes::SchemeKind::kTwoStageActual,
      schemes::SchemeKind::kThreeStage,
      schemes::SchemeKind::kThreeStageActual,
      schemes::SchemeKind::kTetris,
  };

  AsciiTable t;
  {
    std::vector<std::string> header = {"workload"};
    for (const auto k : kinds) header.emplace_back(schemes::scheme_name(k));
    t.set_header(std::move(header));
  }
  std::vector<stats::Accumulator> avg(kinds.size());
  for (const auto& p : workload::parsec_profiles()) {
    std::vector<std::string> row = {p.name};
    for (std::size_t s = 0; s < kinds.size(); ++s) {
      const double u = avg_units(p, kinds[s], writes, o.seed);
      avg[s].add(u);
      row.push_back(fixed(u, 2));
    }
    t.add_row(std::move(row));
  }
  t.add_separator();
  std::vector<std::string> last = {"average"};
  for (auto& a : avg) last.push_back(fixed(a.mean(), 2));
  t.add_row(std::move(last));
  t.print(std::cout);

  const double gap_content = avg[4].mean() - avg[5].mean();
  const double gap_stealing = avg[5].mean() - avg[6].mean();
  std::cout << "\ndecomposing Tetris's win over 3-Stage-Write:\n"
            << "  content awareness (3stage -> 3stage-actual): "
            << fixed(gap_content, 2) << " write units\n"
            << "  interspace stealing (3stage-actual -> tetris): "
            << fixed(gap_stealing, 2) << " write units\n";
  return 0;
}
