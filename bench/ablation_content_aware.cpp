// Ablation 5: worst-case vs content-aware timing for the prior schemes,
// plus the content-encoder pre-stage matrix.
//
// Part 1: the paper scores FNW / 2-Stage / 3-Stage at their worst-case
// guarantees. Our "-actual" variants pack by measured current instead —
// isolating how much of Tetris's win comes from (a) using actual content
// and how much from (b) the write-0 interspace stealing that only Tetris
// does (tetris vs 3stage-actual).
//
// Part 2: scheme x encoder x data-class matrix for the tw/encode/
// pre-stage (flip / wire / coset vs encoder=none), reporting programming
// energy and SET pulses per write. One deterministic gate rides in the
// --json baseline:
//
//   * compressible_energy_reduction: 1 - (dcw+best-encoder energy) /
//     (bare dcw energy) on the compressible data class. Required
//     >= 0.10 — a content code must buy at least a tenth of the write
//     energy back when the data actually compresses.

#include <algorithm>
#include <fstream>
#include <iostream>

#include "bench_util.hpp"
#include "tw/core/factory.hpp"
#include "tw/encode/encoded_scheme.hpp"
#include "tw/stats/accumulator.hpp"
#include "tw/workload/generator.hpp"

using namespace tw;

namespace {

double avg_units(const workload::WorkloadProfile& p,
                 schemes::SchemeKind kind, u64 writes, u64 seed) {
  const pcm::PcmConfig cfg = pcm::table2_config();
  mem::DataStore store(cfg.geometry.units_per_line(), seed,
                       p.initial_ones_fraction);
  workload::TraceGenerator gen(p, cfg.geometry, 1, seed + 1);
  const auto scheme = core::make_scheme(kind, cfg);
  stats::Accumulator units;
  u64 n = 0;
  while (n < writes) {
    const workload::TraceOp op = gen.next(0);
    if (!op.is_write) continue;
    const pcm::LogicalLine next = gen.make_write_data(op.addr, store, 0);
    units.add(scheme->plan_write(store.line(op.addr), next).write_units);
    ++n;
  }
  return units.mean();
}

struct EncCell {
  double energy_pj = 0.0;  ///< mean programming energy per line write
  double sets = 0.0;       ///< mean SET pulses per line write
};

EncCell enc_cell(const workload::WorkloadProfile& base,
                 workload::ContentClass content, schemes::SchemeKind kind,
                 encode::EncoderKind ek, u64 writes, u64 seed) {
  const pcm::PcmConfig cfg = pcm::table2_config();
  workload::WorkloadProfile p = base;
  p.content = content;
  mem::DataStore store(cfg.geometry.units_per_line(), seed,
                       p.initial_ones_fraction);
  workload::TraceGenerator gen(p, cfg.geometry, 1, seed + 1);
  const auto scheme = encode::wrap_scheme(core::make_scheme(kind, cfg), ek);
  if (scheme->transforms_content()) {
    store.set_decoder(scheme.get(),
                      [](const void* ctx, const pcm::LineBuf& l) {
                        return static_cast<const schemes::WriteScheme*>(ctx)
                            ->decode_stored(l);
                      });
  }
  stats::Accumulator energy, sets;
  u64 n = 0;
  while (n < writes) {
    const workload::TraceOp op = gen.next(0);
    if (!op.is_write) continue;
    const pcm::LogicalLine next = gen.make_write_data(op.addr, store, 0);
    const auto plan = scheme->plan_write(store.line(op.addr), next);
    energy.add(plan.programmed.sets * cfg.energy.set_pj +
               plan.programmed.resets * cfg.energy.reset_pj);
    sets.add(static_cast<double>(plan.programmed.sets));
    ++n;
  }
  return {energy.mean(), sets.mean()};
}

void write_encode_json(const std::string& path, const bench::Options& o,
                       double energy_reduction, double set_reduction,
                       double wall_ms) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"bench\": \"ablation_content_aware\",\n"
      << "  \"config\": \"" << (o.quick ? "quick" : "full")
      << " seed=" << o.seed
      << " workload=vips scheme=dcw gate=compressible/best-encoder\",\n"
      << "  \"wall_ms\": " << fixed(wall_ms, 2) << ",\n"
      << "  \"compressible_energy_reduction\": "
      << fixed(energy_reduction, 3) << ",\n"
      << "  \"compressible_set_reduction\": " << fixed(set_reduction, 3)
      << ",\n"
      // Per-metric bands for cmake/check_bench.py: both ratios are
      // simulated and deterministic in the seed, so the band only covers
      // intentional encoder retuning.
      << "  \"tolerances\": {\n"
      << "    \"compressible_energy_reduction\": 10,\n"
      << "    \"compressible_set_reduction\": 10\n"
      << "  }\n"
      << "}\n";
  std::printf("(benchmark baseline written to %s)\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options o = bench::Options::parse(argc, argv);
  const u64 writes = o.quick ? 500 : 3'000;

  std::cout << "Ablation: worst-case vs content-aware prior schemes\n"
            << "===================================================\n"
            << "(avg write units; '-actual' = packed by measured "
               "current)\n\n";

  const std::vector<schemes::SchemeKind> kinds = {
      schemes::SchemeKind::kFlipNWrite,
      schemes::SchemeKind::kFlipNWriteActual,
      schemes::SchemeKind::kTwoStage,
      schemes::SchemeKind::kTwoStageActual,
      schemes::SchemeKind::kThreeStage,
      schemes::SchemeKind::kThreeStageActual,
      schemes::SchemeKind::kTetris,
  };

  AsciiTable t;
  {
    std::vector<std::string> header = {"workload"};
    for (const auto k : kinds) header.emplace_back(schemes::scheme_name(k));
    t.set_header(std::move(header));
  }
  std::vector<stats::Accumulator> avg(kinds.size());
  for (const auto& p : workload::parsec_profiles()) {
    std::vector<std::string> row = {p.name};
    for (std::size_t s = 0; s < kinds.size(); ++s) {
      const double u = avg_units(p, kinds[s], writes, o.seed);
      avg[s].add(u);
      row.push_back(fixed(u, 2));
    }
    t.add_row(std::move(row));
  }
  t.add_separator();
  std::vector<std::string> last = {"average"};
  for (auto& a : avg) last.push_back(fixed(a.mean(), 2));
  t.add_row(std::move(last));
  t.print(std::cout);

  const double gap_content = avg[4].mean() - avg[5].mean();
  const double gap_stealing = avg[5].mean() - avg[6].mean();
  std::cout << "\ndecomposing Tetris's win over 3-Stage-Write:\n"
            << "  content awareness (3stage -> 3stage-actual): "
            << fixed(gap_content, 2) << " write units\n"
            << "  interspace stealing (3stage-actual -> tetris): "
            << fixed(gap_stealing, 2) << " write units\n";

  // ---- Part 2: scheme x encoder x data-class matrix -------------------
  std::cout << "\nEncoder pre-stage matrix (vips rates; energy pJ / write, "
               "SET pulses / write)\n"
            << "------------------------------------------------------------"
               "-----------\n";
  const bench::WallTimer timer;
  const auto& vips = workload::profile_by_name("vips");
  const std::vector<schemes::SchemeKind> enc_schemes = {
      schemes::SchemeKind::kDcw,        schemes::SchemeKind::kFlipNWrite,
      schemes::SchemeKind::kTwoStage,   schemes::SchemeKind::kThreeStage,
      schemes::SchemeKind::kTetris};
  const std::vector<workload::ContentClass> classes = {
      workload::ContentClass::kMutate, workload::ContentClass::kCompressible,
      workload::ContentClass::kZipfByte,
      workload::ContentClass::kAdversarial};
  const auto encoders = encode::all_encoder_kinds();

  // The gate cells, collected while the tables print.
  double dcw_none_energy = 0.0, dcw_none_sets = 0.0;
  double dcw_best_energy = 0.0, dcw_best_sets = 0.0;
  for (const auto content : classes) {
    std::cout << "\ndata class: " << workload::content_class_name(content)
              << "\n";
    AsciiTable et;
    {
      std::vector<std::string> header = {"scheme"};
      for (const auto ek : encoders) {
        header.emplace_back(std::string(encode::encoder_name(ek)) + " pJ");
        header.emplace_back(std::string(encode::encoder_name(ek)) + " sets");
      }
      et.set_header(std::move(header));
    }
    for (const auto kind : enc_schemes) {
      std::vector<std::string> row = {
          std::string(schemes::scheme_name(kind))};
      for (const auto ek : encoders) {
        const EncCell c = enc_cell(vips, content, kind, ek, writes, o.seed);
        row.push_back(fixed(c.energy_pj, 0));
        row.push_back(fixed(c.sets, 1));
        if (kind == schemes::SchemeKind::kDcw &&
            content == workload::ContentClass::kCompressible) {
          if (ek == encode::EncoderKind::kNone) {
            dcw_none_energy = c.energy_pj;
            dcw_none_sets = c.sets;
            dcw_best_energy = c.energy_pj;
            dcw_best_sets = c.sets;
          } else {
            dcw_best_energy = std::min(dcw_best_energy, c.energy_pj);
            dcw_best_sets = std::min(dcw_best_sets, c.sets);
          }
        }
      }
      et.add_row(std::move(row));
    }
    et.print(std::cout);
  }

  const double energy_reduction =
      dcw_none_energy > 0.0 ? 1.0 - dcw_best_energy / dcw_none_energy : 0.0;
  const double set_reduction =
      dcw_none_sets > 0.0 ? 1.0 - dcw_best_sets / dcw_none_sets : 0.0;
  const double wall_ms = timer.elapsed_ms();

  std::printf("\ncompressible data, dcw + best encoder: "
              "%.1f%% energy reduction, %.1f%% SET-pulse reduction "
              "(gate: >= 10%% energy)\n",
              energy_reduction * 100.0, set_reduction * 100.0);

  if (!o.json_path.empty()) {
    write_encode_json(o.json_path, o, energy_reduction, set_reduction,
                      wall_ms);
  }

  bool ok = true;
  if (energy_reduction < 0.10 && set_reduction < 0.10) {
    std::fprintf(stderr,
                 "ablation_content_aware: FAIL — best encoder saves only "
                 "%.1f%% energy / %.1f%% SETs on compressible data "
                 "(>= 10%% on either required)\n",
                 energy_reduction * 100.0, set_reduction * 100.0);
    ok = false;
  }
  std::cout << "\nTakeaway: when the data itself is cheap to code "
               "(compressible, skewed),\na content code in front of the "
               "scheme removes pulses no packer can:\nthe coset compressor "
               "parks the constant half of each word in don't-care\ncells, "
               "and WIRE's codebook dodges the expensive transition "
               "direction.\nOn adversarial half-flip data every encoder "
               "degenerates to identity\n(plus tag cost) — the pre-stage "
               "never hurts by more than the tag write.\n";
  return ok ? 0 : 1;
}
