// Microbenchmarks of the simulator's hot kernels: bit counting, the
// event queue, cache lookups, and the trace generator.

#include <benchmark/benchmark.h>

#include "tw/cache/cache.hpp"
#include "tw/common/bits.hpp"
#include "tw/common/rng.hpp"
#include "tw/sim/simulator.hpp"
#include "tw/workload/generator.hpp"

namespace {

using namespace tw;

void BM_Transitions(benchmark::State& state) {
  Rng rng(1);
  const u64 a = rng.next(), b = rng.next();
  for (auto _ : state) {
    benchmark::DoNotOptimize(transitions(a, b));
  }
}
BENCHMARK(BM_Transitions);

void BM_TransitionsSpan(benchmark::State& state) {
  Rng rng(2);
  u64 a[8], b[8];
  for (int i = 0; i < 8; ++i) {
    a[i] = rng.next();
    b[i] = rng.next();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        transitions(std::span<const u64>(a), std::span<const u64>(b)));
  }
}
BENCHMARK(BM_TransitionsSpan);

void BM_EventQueue(benchmark::State& state) {
  const u64 n = static_cast<u64>(state.range(0));
  Rng rng(3);
  for (auto _ : state) {
    sim::Simulator sim;
    u64 fired = 0;
    for (u64 i = 0; i < n; ++i) {
      sim.schedule_at(rng.below(1'000'000), [&fired] { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n));
}
BENCHMARK(BM_EventQueue)->Arg(1000)->Arg(10000);

void BM_CacheAccess(benchmark::State& state) {
  cache::CacheConfig cfg;
  cfg.size_bytes = 2 * 1024 * 1024;
  cfg.ways = 8;
  cache::Cache cache(cfg);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.access(rng.below(1 << 26) * 64, rng.chance(0.3)));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_CacheAccess);

void BM_TraceGenerator(benchmark::State& state) {
  const auto& p = workload::profile_by_name("ferret");
  workload::TraceGenerator gen(p, pcm::GeometryParams{}, 1, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.next(0));
  }
}
BENCHMARK(BM_TraceGenerator);

void BM_MakeWriteData(benchmark::State& state) {
  const auto& p = workload::profile_by_name("vips");
  const pcm::GeometryParams g;
  mem::DataStore store(g.units_per_line(), 6, p.initial_ones_fraction);
  workload::TraceGenerator gen(p, g, 1, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.make_write_data(0x4000, store, 0));
  }
}
BENCHMARK(BM_MakeWriteData);

}  // namespace
