#pragma once
// Shared plumbing for the figure-reproduction harnesses: CLI flags,
// per-workload instruction budgets, and the standard "system figure"
// runner used by Figures 11-14 (same simulation matrix, different
// metric).

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "tw/common/parallel.hpp"
#include "tw/common/strings.hpp"
#include "tw/common/svg.hpp"
#include "tw/fault/fault.hpp"
#include "tw/harness/figure.hpp"
#include "tw/trace/record.hpp"

namespace tw::bench {

/// Command-line options common to all figure binaries.
struct Options {
  u64 target_ops_per_core = 1500;  ///< memory requests per core to aim for
  u64 max_instructions = 60'000'000;
  u64 seed = 42;
  std::size_t threads = 0;  ///< 0 = hardware concurrency
  std::string csv_path;     ///< optional CSV dump
  std::string svg_path;     ///< optional SVG figure
  std::string json_path;    ///< optional machine-readable BENCH_*.json
  std::string trace_path;   ///< optional Chrome trace of one traced run
  std::string trace_metrics_path;  ///< optional metrics-snapshot CSV
  u32 trace_categories = trace::kAllCategories;
  fault::FaultProfile fault_profile = fault::FaultProfile::kNone;
  u32 batch_lines = 0;  ///< batch.max_lines override (0 = leave default)
  u32 subarrays = 0;    ///< subarrays/bank override (0 = leave default)
  bool palp = false;    ///< partition-level parallelism (PALP)
  u32 palp_ways = 2;    ///< concurrent partition writes per pump
  u32 palp_rww = 2;     ///< read-after-write-current read cap
  u32 channels = 1;     ///< memory channels (power of two)
  pcm::ChannelInterleave interleave = pcm::ChannelInterleave::kLine;
  u32 sim_threads = 0;  ///< pool-thread cap for the channel phase (0 = all)
  bool dram = false;    ///< front PCM with the DRAM tier
  u32 dram_mb = 32;     ///< DRAM capacity in MB (total across channels)
  mem::DramPolicy dram_policy = mem::DramPolicy::kLru;
  /// Content-encoder pre-stage in front of every scheme (kNone = off).
  encode::EncoderKind encoder = encode::EncoderKind::kNone;
  bool quick = false;

  static Options parse(int argc, char** argv) {
    Options o;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&](const char* prefix) -> const char* {
        return arg.c_str() + std::strlen(prefix);
      };
      if (arg == "--quick") {
        o.quick = true;
        o.target_ops_per_core = 400;
      } else if (starts_with(arg, "--ops=")) {
        o.target_ops_per_core = std::strtoull(value("--ops="), nullptr, 10);
      } else if (starts_with(arg, "--seed=")) {
        o.seed = std::strtoull(value("--seed="), nullptr, 10);
      } else if (starts_with(arg, "--threads=")) {
        o.threads = std::strtoull(value("--threads="), nullptr, 10);
      } else if (starts_with(arg, "--csv=")) {
        o.csv_path = value("--csv=");
      } else if (starts_with(arg, "--svg=")) {
        o.svg_path = value("--svg=");
      } else if (starts_with(arg, "--json=")) {
        o.json_path = value("--json=");
      } else if (starts_with(arg, "--trace=")) {
        o.trace_path = value("--trace=");
      } else if (starts_with(arg, "--trace-metrics=")) {
        o.trace_metrics_path = value("--trace-metrics=");
      } else if (starts_with(arg, "--batch-lines=")) {
        o.batch_lines = static_cast<u32>(
            std::strtoul(value("--batch-lines="), nullptr, 10));
      } else if (starts_with(arg, "--subarrays=")) {
        const u64 n = std::strtoull(value("--subarrays="), nullptr, 10);
        if (n == 0 || (n & (n - 1)) != 0) {
          std::cerr << "--subarrays must be a power of two >= 1 (got '"
                    << value("--subarrays=")
                    << "'); the row decoder extracts log2(subarrays) "
                       "address bits\n";
          std::exit(2);
        }
        o.subarrays = static_cast<u32>(n);
      } else if (arg == "--palp") {
        o.palp = true;
      } else if (starts_with(arg, "--palp-ways=")) {
        o.palp_ways = static_cast<u32>(
            std::strtoul(value("--palp-ways="), nullptr, 10));
      } else if (starts_with(arg, "--palp-rww=")) {
        o.palp_rww = static_cast<u32>(
            std::strtoul(value("--palp-rww="), nullptr, 10));
      } else if (starts_with(arg, "--channels=")) {
        const u64 n = std::strtoull(value("--channels="), nullptr, 10);
        if (n == 0 || (n & (n - 1)) != 0) {
          std::cerr << "--channels must be a power of two >= 1 (got '"
                    << value("--channels=")
                    << "'); the channel decoder extracts log2(channels) "
                       "address bits\n";
          std::exit(2);
        }
        o.channels = static_cast<u32>(n);
      } else if (starts_with(arg, "--interleave=")) {
        const std::string s = value("--interleave=");
        if (s == "line") {
          o.interleave = pcm::ChannelInterleave::kLine;
        } else if (s == "bank") {
          o.interleave = pcm::ChannelInterleave::kBank;
        } else if (s == "row") {
          o.interleave = pcm::ChannelInterleave::kRow;
        } else {
          std::cerr << "--interleave must be line|bank|row (got '" << s
                    << "')\n";
          std::exit(2);
        }
      } else if (starts_with(arg, "--sim-threads=")) {
        o.sim_threads = static_cast<u32>(
            std::strtoul(value("--sim-threads="), nullptr, 10));
      } else if (arg == "--dram") {
        o.dram = true;
      } else if (starts_with(arg, "--dram-mb=")) {
        const u64 n = std::strtoull(value("--dram-mb="), nullptr, 10);
        if (n == 0) {
          std::cerr << "--dram-mb must be >= 1 (got '" << value("--dram-mb=")
                    << "')\n";
          std::exit(2);
        }
        o.dram = true;
        o.dram_mb = static_cast<u32>(n);
      } else if (starts_with(arg, "--dram-policy=")) {
        const std::string s = value("--dram-policy=");
        if (s == "lru") {
          o.dram_policy = mem::DramPolicy::kLru;
        } else if (s == "mac") {
          o.dram_policy = mem::DramPolicy::kMac;
        } else {
          std::cerr << "--dram-policy must be lru|mac (got '" << s << "')\n";
          std::exit(2);
        }
        o.dram = true;
      } else if (starts_with(arg, "--encoder=")) {
        const auto k = encode::parse_encoder(value("--encoder="));
        if (!k) {
          std::cerr << "--encoder must be none|flip|wire|coset (got '"
                    << value("--encoder=") << "')\n";
          std::exit(2);
        }
        o.encoder = *k;
      } else if (starts_with(arg, "--trace-categories=")) {
        o.trace_categories =
            trace::parse_categories(value("--trace-categories="));
      } else if (starts_with(arg, "--fault-profile=")) {
        const auto p =
            fault::parse_fault_profile(value("--fault-profile="));
        if (!p) {
          std::cerr << "unknown fault profile '"
                    << value("--fault-profile=")
                    << "' (none|light|heavy|stuck-bank)\n";
          std::exit(2);
        }
        o.fault_profile = *p;
      } else if (arg == "--help" || arg == "-h") {
        std::cout << "flags: --quick --ops=N --seed=N --threads=N "
                     "--channels=N --interleave=line|bank|row "
                     "--sim-threads=N "
                     "--subarrays=N --palp --palp-ways=N --palp-rww=N "
                     "--dram --dram-mb=N --dram-policy=lru|mac "
                     "--encoder=none|flip|wire|coset "
                     "--csv=PATH --svg=PATH --json=PATH --trace=PATH "
                     "--trace-metrics=PATH --trace-categories=LIST "
                     "--fault-profile=none|light|heavy|stuck-bank\n";
        std::exit(0);
      }
    }
    return o;
  }
};

/// One machine-readable benchmark baseline record (the BENCH_*.json files
/// at the repo root that track the perf trajectory across PRs).
struct BenchBaseline {
  std::string bench;    ///< e.g. "micro_sim", "fig13"
  std::string config;   ///< human-readable knob summary
  double wall_ms = 0.0;
  double events_per_sec = 0.0;      ///< simulator events executed per second
  double sim_writes_per_sec = 0.0;  ///< line writes serviced per second
  /// Slowdown of the compiled-in-but-disabled tracing path vs. the same
  /// run with emission sites short-circuited (<0 = not measured).
  double trace_overhead_pct = -1.0;
};

inline void write_bench_json(const std::string& path,
                             const BenchBaseline& b) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"bench\": \"" << b.bench << "\",\n"
      << "  \"config\": \"" << b.config << "\",\n"
      << "  \"wall_ms\": " << fixed(b.wall_ms, 2) << ",\n"
      << "  \"events_per_sec\": " << fixed(b.events_per_sec, 1) << ",\n"
      << "  \"sim_writes_per_sec\": " << fixed(b.sim_writes_per_sec, 1);
  if (b.trace_overhead_pct >= 0.0) {
    out << ",\n  \"trace_overhead_pct\": " << fixed(b.trace_overhead_pct, 2);
  }
  out << "\n}\n";
  std::cout << "(benchmark baseline written to " << path << ")\n";
}

/// Monotonic wall-clock stopwatch for the baseline records.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double elapsed_ms() const {
    const auto d = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double, std::milli>(d).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Instruction budget giving ~target_ops memory requests per core.
inline u64 instructions_for(const workload::WorkloadProfile& p,
                            const Options& o) {
  const double per_kilo = p.mem_ops_per_kilo();
  const u64 wanted = static_cast<u64>(
      static_cast<double>(o.target_ops_per_core) * 1000.0 / per_kilo);
  return std::min(std::max<u64>(wanted, 20'000), o.max_instructions);
}

/// The standard Table II system config for one workload under `o`.
inline harness::SystemConfig system_config(
    const workload::WorkloadProfile& p, const Options& o) {
  harness::SystemConfig cfg;
  cfg.instructions_per_core = instructions_for(p, o);
  cfg.seed = o.seed;
  cfg.fault = fault::profile_config(o.fault_profile);
  cfg.batch.max_lines = o.batch_lines;
  if (o.subarrays > 0) cfg.pcm.geometry.subarrays_per_bank = o.subarrays;
  cfg.controller.palp.enabled = o.palp;
  cfg.controller.palp.write_ways = o.palp_ways;
  cfg.controller.palp.max_rww_reads = o.palp_rww;
  cfg.pcm.geometry.channels = o.channels;
  cfg.pcm.geometry.channel_interleave = o.interleave;
  cfg.sim_threads = o.sim_threads;
  cfg.dram.enabled = o.dram;
  cfg.dram.capacity_bytes = u64{o.dram_mb} * 1024 * 1024;
  cfg.dram.policy = o.dram_policy;
  cfg.encode.kind = o.encoder;
  return cfg;
}

/// The paper's evaluated schemes with the DCW baseline in column 0.
inline std::vector<schemes::SchemeKind> paper_columns() {
  return {schemes::SchemeKind::kDcw, schemes::SchemeKind::kFlipNWrite,
          schemes::SchemeKind::kTwoStage, schemes::SchemeKind::kThreeStage,
          schemes::SchemeKind::kTetris};
}

/// Run the full-system matrix with per-workload instruction budgets.
inline harness::Matrix run_paper_matrix(const Options& o) {
  const auto& workloads = workload::parsec_profiles();
  const auto kinds = paper_columns();
  harness::Matrix m;
  m.workloads = workloads;
  m.kinds = kinds;
  m.cells.assign(workloads.size(),
                 std::vector<harness::RunMetrics>(kinds.size()));
  const std::size_t total = workloads.size() * kinds.size();
  tw::parallel_for(
      total,
      [&](std::size_t i) {
        const std::size_t w = i / kinds.size();
        const std::size_t s = i % kinds.size();
        m.cells[w][s] = harness::run_system(system_config(workloads[w], o),
                                            workloads[w], kinds[s]);
      },
      o.threads);
  return m;
}

/// Emit the --json baseline for a full-system matrix run, aggregating
/// simulator events and serviced writes across every cell.
inline void maybe_write_matrix_json(const harness::Matrix& m,
                                    const Options& o, const char* bench,
                                    double wall_ms) {
  if (o.json_path.empty()) return;
  u64 events = 0, writes = 0;
  for (const auto& row : m.cells) {
    for (const auto& cell : row) {
      events += cell.sim_events;
      writes += cell.writes;
    }
  }
  BenchBaseline b;
  b.bench = bench;
  b.config = std::string(o.quick ? "quick" : "full") +
             " ops=" + std::to_string(o.target_ops_per_core) +
             " seed=" + std::to_string(o.seed);
  b.wall_ms = wall_ms;
  const double secs = wall_ms / 1000.0;
  b.events_per_sec = secs > 0.0 ? static_cast<double>(events) / secs : 0.0;
  b.sim_writes_per_sec =
      secs > 0.0 ? static_cast<double>(writes) / secs : 0.0;
  write_bench_json(o.json_path, b);
}

/// When --trace was given, re-run one representative cell (first
/// workload, Tetris) with tracing live and write the Chrome trace (and
/// optionally the metrics CSV). Kept out of the timed matrix so tracing
/// never skews the benchmark numbers.
inline void maybe_trace_run(const Options& o) {
  if (o.trace_path.empty() && o.trace_metrics_path.empty()) return;
  const auto& workloads = workload::parsec_profiles();
  harness::SystemConfig cfg = system_config(workloads[0], o);
  cfg.trace.chrome_path = o.trace_path;
  cfg.trace.metrics_path = o.trace_metrics_path;
  cfg.trace.categories = o.trace_categories;
  const harness::RunMetrics m = harness::run_system(
      cfg, workloads[0], schemes::SchemeKind::kTetris);
  std::cout << "(traced run: " << m.trace_records << " records, "
            << m.trace_samples << " metric samples, " << m.trace_dropped
            << " dropped";
  if (!o.trace_path.empty()) std::cout << " -> " << o.trace_path;
  std::cout << ")\n";
}

/// Dump the raw matrix to the --csv path if given.
inline void maybe_write_csv(const harness::Matrix& m, const Options& o) {
  if (o.csv_path.empty()) return;
  std::ofstream out(o.csv_path);
  harness::write_csv(m, out);
  std::cout << "(raw results written to " << o.csv_path << ")\n";
}

/// Render a grouped bar chart of the normalized values to --svg if given.
inline void maybe_write_svg(const harness::Matrix& m,
                            const std::vector<std::vector<double>>& norm,
                            const char* title, const char* y_label,
                            const Options& o) {
  if (o.svg_path.empty()) return;
  BarChart chart(title, y_label);
  std::vector<std::string> names;
  for (const auto kind : m.kinds)
    names.emplace_back(schemes::scheme_name(kind));
  chart.set_series(std::move(names));
  for (std::size_t w = 0; w < m.workloads.size(); ++w) {
    chart.add_group(m.workloads[w].name, norm[w]);
  }
  chart.set_reference(1.0);
  std::ofstream out(o.svg_path);
  chart.render(out);
  std::cout << "(figure written to " << o.svg_path << ")\n";
}

/// Shared driver for Figures 11-14: run the matrix, print the normalized
/// table for `metric`, and compare scheme geomeans against the paper's
/// reported averages (columns fnw, 2stage, 3stage, tetris).
inline int system_figure(int argc, char** argv, const char* title,
                         const harness::MetricFn& metric,
                         const std::vector<double>& paper_averages,
                         const char* paper_citation) {
  const Options o = Options::parse(argc, argv);
  std::cout << title << "\n"
            << std::string(std::strlen(title), '=') << "\n";
  std::cout << "(normalized to the DCW baseline; " << paper_citation
            << ")\n\n";

  const WallTimer timer;
  const harness::Matrix m = run_paper_matrix(o);
  const double wall_ms = timer.elapsed_ms();
  AsciiTable t = harness::normalized_table(m, metric, 0);
  const auto norm = harness::normalized_values(m, metric, 0);
  std::vector<std::string> paper_row = {"paper avg", "1.000"};
  for (const double v : paper_averages) paper_row.push_back(fixed(v, 3));
  t.add_row(std::move(paper_row));
  t.print(std::cout);

  std::cout << "\nmeasured geomean vs paper average:\n";
  const auto& geo = norm.back();
  bool shape_ok = true;
  for (std::size_t s = 1; s < m.kinds.size(); ++s) {
    const double measured = geo[s];
    const double paper = paper_averages[s - 1];
    std::cout << "  " << pad(schemes::scheme_name(m.kinds[s]), 8) << " "
              << fixed(measured, 3) << " (paper " << fixed(paper, 3)
              << ")\n";
    // Shape check: the ranking between adjacent schemes must match.
    if (s > 1) {
      const double prev = geo[s - 1];
      const double paper_prev = paper_averages[s - 2];
      const bool measured_better = measured < prev;
      const bool paper_better = paper < paper_prev;
      if (paper != paper_prev && measured_better != paper_better) {
        shape_ok = false;
      }
    }
  }
  std::cout << (shape_ok ? "\nshape: OK — scheme ranking matches the paper\n"
                         : "\nshape: MISMATCH in scheme ranking\n");
  maybe_write_csv(m, o);
  maybe_write_svg(m, norm, title, "normalized to DCW baseline", o);
  maybe_write_matrix_json(m, o, title, wall_ms);
  maybe_trace_run(o);
  return shape_ok ? 0 : 1;
}

/// Same driver for higher-is-better metrics (Fig. 13 IPC).
inline int system_figure_higher(int argc, char** argv, const char* title,
                                const harness::MetricFn& metric,
                                const std::vector<double>& paper_averages,
                                const char* paper_citation) {
  const Options o = Options::parse(argc, argv);
  std::cout << title << "\n"
            << std::string(std::strlen(title), '=') << "\n";
  std::cout << "(improvement over the DCW baseline; " << paper_citation
            << ")\n\n";

  const WallTimer timer;
  const harness::Matrix m = run_paper_matrix(o);
  const double wall_ms = timer.elapsed_ms();
  AsciiTable t = harness::normalized_table(m, metric, 0);
  const auto norm = harness::normalized_values(m, metric, 0);
  std::vector<std::string> paper_row = {"paper avg", "1.000"};
  for (const double v : paper_averages) paper_row.push_back(fixed(v, 3));
  t.add_row(std::move(paper_row));
  t.print(std::cout);

  std::cout << "\nmeasured geomean vs paper average:\n";
  const auto& geo = norm.back();
  bool shape_ok = true;
  for (std::size_t s = 1; s < m.kinds.size(); ++s) {
    std::cout << "  " << pad(schemes::scheme_name(m.kinds[s]), 8) << " "
              << fixed(geo[s], 3) << "x (paper "
              << fixed(paper_averages[s - 1], 3) << "x)\n";
    if (s > 1 && (geo[s] > geo[s - 1]) !=
                     (paper_averages[s - 1] > paper_averages[s - 2])) {
      shape_ok = false;
    }
  }
  std::cout << (shape_ok ? "\nshape: OK — scheme ranking matches the paper\n"
                         : "\nshape: MISMATCH in scheme ranking\n");
  maybe_write_csv(m, o);
  maybe_write_svg(m, norm, title, "improvement over DCW baseline", o);
  maybe_write_matrix_json(m, o, title, wall_ms);
  maybe_trace_run(o);
  return shape_ok ? 0 : 1;
}

}  // namespace tw::bench
