// Multi-channel scaling microbenchmark.
//
// Runs one write-heavy full-system cell (vips, Tetris scheme) at
// channels = 1/2/4/8 with everything else fixed and reports, per point:
//
//   * wall-clock simulator events per second (kernel throughput of the
//     sharded engine — the number the BENCH_channels.json regression
//     gate tracks), and
//   * simulated aggregate write throughput: serviced line writes per
//     simulated second. Adding channels multiplies the write bandwidth
//     the cores can sink, so a memory-bound run finishes in ~1/C the
//     simulated time at the same write count.
//
// The scaling gate is on the *simulated* aggregate throughput
// (agg_scaling_8ch = thpt(8ch) / thpt(1ch), required >= 6x): wall-clock
// speedup depends on the runner's core count (CI containers often pin
// us to one hardware thread, where the channel phase serializes), while
// the simulated bandwidth a sharded topology delivers is
// machine-independent and deterministic.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace tw;

namespace {

struct Point {
  u32 channels = 1;
  double wall_ms = 0.0;
  double events_per_sec = 0.0;
  double sim_writes_per_sec = 0.0;  ///< writes per *simulated* second
  u64 writes = 0;
  double runtime_ms = 0.0;  ///< simulated
};

void write_channels_json(const std::string& path, const bench::Options& o,
                         const std::vector<Point>& pts, double scaling,
                         double total_ms, double agg_events_per_sec) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"bench\": \"micro_channels\",\n"
      << "  \"config\": \"" << (o.quick ? "quick" : "full")
      << " ops=" << o.target_ops_per_core << " seed=" << o.seed
      << " workload=vips scheme=tetris cores=48 channels=1/2/4/8\",\n"
      << "  \"wall_ms\": " << fixed(total_ms, 2) << ",\n"
      << "  \"events_per_sec\": " << fixed(agg_events_per_sec, 1) << ",\n"
      << "  \"sim_writes_per_sec\": " << fixed(pts.back().sim_writes_per_sec, 1)
      << ",\n"
      << "  \"agg_scaling_8ch\": " << fixed(scaling, 3) << "\n"
      << "}\n";
  std::printf("(benchmark baseline written to %s)\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options o = bench::Options::parse(argc, argv);

  std::printf("micro_channels: multi-channel write-bandwidth scaling\n");
  std::printf("=====================================================\n");
  std::printf(
      "(vips, Tetris, 48 cores; same per-core budget at every point)\n\n");

  const auto& profile = workload::profile_by_name("vips");
  std::vector<Point> pts;
  u64 total_events = 0;
  double total_ms = 0.0;
  std::printf("%8s %10s %14s %16s %18s\n", "channels", "wall ms",
              "sim runtime ms", "wall events/s", "sim writes/s");
  for (const u32 channels : {1u, 2u, 4u, 8u}) {
    harness::SystemConfig cfg = bench::system_config(profile, o);
    cfg.cores = 48;  // enough traffic to keep even 8 channels memory-bound
    cfg.pcm.geometry.channels = channels;
    const bench::WallTimer timer;
    const harness::RunMetrics m =
        harness::run_system(cfg, profile, schemes::SchemeKind::kTetris);
    Point p;
    p.channels = channels;
    p.wall_ms = timer.elapsed_ms();
    p.writes = m.writes;
    p.runtime_ms = m.runtime_ns / 1e6;
    p.events_per_sec =
        p.wall_ms > 0.0 ? static_cast<double>(m.sim_events) /
                              (p.wall_ms / 1000.0)
                        : 0.0;
    p.sim_writes_per_sec = m.runtime_ns > 0.0
                               ? static_cast<double>(m.writes) /
                                     (m.runtime_ns / 1e9)
                               : 0.0;
    total_events += m.sim_events;
    total_ms += p.wall_ms;
    std::printf("%8u %10.1f %14.2f %16.0f %18.0f%s\n", channels, p.wall_ms,
                p.runtime_ms, p.events_per_sec, p.sim_writes_per_sec,
                m.completed ? "" : "  (INCOMPLETE)");
    pts.push_back(p);
  }

  const double scaling =
      pts.front().sim_writes_per_sec > 0.0
          ? pts.back().sim_writes_per_sec / pts.front().sim_writes_per_sec
          : 0.0;
  const double agg_events_per_sec =
      total_ms > 0.0 ? static_cast<double>(total_events) / (total_ms / 1000.0)
                     : 0.0;
  std::printf(
      "\naggregate write-throughput scaling at 8 channels: %.2fx "
      "(gate: >= 6x)\n",
      scaling);
  std::printf("aggregate kernel throughput: %.0f events/sec over %.1f ms\n",
              agg_events_per_sec, total_ms);

  if (!o.json_path.empty()) {
    write_channels_json(o.json_path, o, pts, scaling, total_ms,
                        agg_events_per_sec);
  }
  if (scaling < 6.0) {
    std::fprintf(stderr,
                 "micro_channels: FAIL — 8-channel aggregate write "
                 "throughput scaled only %.2fx over 1 channel (>= 6x "
                 "required)\n",
                 scaling);
    return 1;
  }
  return 0;
}
