// Ablation 16: channel-level parallelism. The paper evaluates a single
// channel (Table II); this sweep shows how the schemes' write-latency
// wins compose with channel sharding — channels multiply aggregate
// write bandwidth (whole controllers in parallel) while banks only
// overlap services behind one shared queue pair, so the two axes are
// not interchangeable.

#include <fstream>
#include <iostream>

#include "bench_util.hpp"

using namespace tw;

int main(int argc, char** argv) {
  const bench::Options o = bench::Options::parse(argc, argv);

  std::cout << "Ablation: channel count (write latency normalized to dcw)\n"
            << "=========================================================\n"
            << "(workload: ferret; Table II point is 1 channel x 8 banks)\n\n";

  const auto& profile = workload::profile_by_name("ferret");
  struct Row {
    u32 channels, banks;
    std::vector<double> vals;  // dcw ns, then normalized per scheme
  };
  std::vector<Row> rows;
  AsciiTable t;
  t.set_header(
      {"channels", "banks", "dcw (ns)", "fnw", "2stage", "3stage", "tetris"});
  for (const u32 channels : {1u, 2u, 4u, 8u}) {
    for (const u32 banks : {4u, 8u}) {
      harness::SystemConfig cfg = bench::system_config(profile, o);
      cfg.pcm.geometry.channels = channels;
      cfg.pcm.geometry.banks = banks;
      Row row{channels, banks, {}};
      std::vector<std::string> cells = {std::to_string(channels),
                                        std::to_string(banks)};
      double dcw = 0;
      for (const auto kind : bench::paper_columns()) {
        const harness::RunMetrics m = harness::run_system(cfg, profile, kind);
        if (kind == schemes::SchemeKind::kDcw) {
          dcw = m.write_latency_ns;
          row.vals.push_back(dcw);
          cells.push_back(fixed(dcw, 0));
        } else {
          const double norm = dcw > 0.0 ? m.write_latency_ns / dcw : 0.0;
          row.vals.push_back(norm);
          cells.push_back(fixed(norm, 3));
        }
      }
      t.add_row(std::move(cells));
      rows.push_back(std::move(row));
    }
  }
  t.print(std::cout);

  std::cout << "\nTakeaway: channels shrink every scheme's absolute write "
               "latency by\nsharding traffic across whole controllers, but "
               "the *relative* ordering\nof the packing schemes persists at "
               "every (channels, banks) point —\nwrite-parallelism inside a "
               "line and across channels compose.\n";

  if (!o.json_path.empty()) {
    std::ofstream out(o.json_path);
    out << "{\n  \"bench\": \"ablation_channels\",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      out << "    {\"channels\": " << r.channels << ", \"banks\": " << r.banks
          << ", \"dcw_ns\": " << fixed(r.vals[0], 1) << ", \"fnw\": "
          << fixed(r.vals[1], 3) << ", \"twostage\": " << fixed(r.vals[2], 3)
          << ", \"threestage\": " << fixed(r.vals[3], 3)
          << ", \"tetris\": " << fixed(r.vals[4], 3) << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "(json written to " << o.json_path << ")\n";
  }
  return 0;
}
