// Ablation 6: Table I's energy column, quantitatively. Runs the same
// write stream through every scheme and reports programming energy and
// programmed bits per cache-line write. 2-Stage-Write writes every cell
// (no energy reduction); the comparison-based schemes pulse ~15% of the
// cells (Observation 1).

#include <iostream>

#include "bench_util.hpp"
#include "tw/core/factory.hpp"
#include "tw/encode/encoded_scheme.hpp"
#include "tw/pcm/energy.hpp"
#include "tw/stats/accumulator.hpp"
#include "tw/workload/generator.hpp"

using namespace tw;

int main(int argc, char** argv) {
  const bench::Options o = bench::Options::parse(argc, argv);
  const u64 writes = o.quick ? 500 : 3'000;
  const pcm::PcmConfig cfg = pcm::table2_config();

  std::cout << "Ablation: programming energy per cache-line write "
               "(Table I, quantitative)\n"
            << "==========================================================="
               "=============\n"
            << "(encoder pre-stage: " << encode::encoder_name(o.encoder)
            << ")\n\n";

  AsciiTable t;
  t.set_header({"scheme", "bits/write", "energy/write (nJ)", "vs dcw",
                "Table I says"});
  const char* expectation[] = {"-",   "baseline", "YES reduce",
                               "NO",  "YES reduce", "YES reduce"};
  const std::vector<schemes::SchemeKind> kinds = {
      schemes::SchemeKind::kConventional, schemes::SchemeKind::kDcw,
      schemes::SchemeKind::kFlipNWrite,   schemes::SchemeKind::kTwoStage,
      schemes::SchemeKind::kThreeStage,   schemes::SchemeKind::kTetris};

  double dcw_energy = 0;
  std::size_t idx = 0;
  for (const auto kind : kinds) {
    // Aggregate across all 8 workloads with a shared stream per scheme.
    pcm::EnergyModel energy(cfg.energy);
    u64 total_writes = 0;
    stats::Accumulator bits;
    for (const auto& p : workload::parsec_profiles()) {
      mem::DataStore store(cfg.geometry.units_per_line(), o.seed,
                           p.initial_ones_fraction);
      workload::TraceGenerator gen(p, cfg.geometry, 1, o.seed + 1);
      const auto scheme =
          encode::wrap_scheme(core::make_scheme(kind, cfg), o.encoder);
      if (scheme->transforms_content()) {
        store.set_decoder(
            scheme.get(), [](const void* ctx, const pcm::LineBuf& l) {
              return static_cast<const schemes::WriteScheme*>(ctx)
                  ->decode_stored(l);
            });
      }
      u64 n = 0;
      while (n < writes / 8) {
        const workload::TraceOp op = gen.next(0);
        if (!op.is_write) continue;
        const pcm::LogicalLine next =
            gen.make_write_data(op.addr, store, 0);
        const auto plan = scheme->plan_write(store.line(op.addr), next);
        energy.add_write(plan.programmed);
        bits.add(static_cast<double>(plan.programmed.total()));
        ++n;
        ++total_writes;
      }
    }
    const double nj =
        energy.write_energy_pj() / static_cast<double>(total_writes) / 1000.0;
    if (kind == schemes::SchemeKind::kDcw) dcw_energy = nj;
    t.add_row({std::string(schemes::scheme_name(kind)),
               fixed(bits.mean(), 1), fixed(nj, 2),
               dcw_energy > 0 ? fixed(nj / dcw_energy, 2) + "x" : "-",
               expectation[idx]});
    ++idx;
  }
  t.print(std::cout);

  std::cout << "\nTakeaway: conventional and 2-Stage-Write burn an order "
               "of magnitude\nmore programming energy than the "
               "comparison-based schemes; Tetris\nmatches DCW's energy "
               "while being ~6x faster.\n";
  return 0;
}
