// Figure 12 reproduction: average memory write latency (queueing +
// service), normalized to the DCW baseline.
//
// Paper averages: Tetris -40%; Tetris beats FNW / 2-Stage / Three-Stage
// by a further 15% / 7% / 5%, putting them at roughly 0.75 / 0.67 / 0.65.

#include "bench_util.hpp"

int main(int argc, char** argv) {
  return tw::bench::system_figure(
      argc, argv, "Figure 12: normalized write latency",
      [](const tw::harness::RunMetrics& m) { return m.write_latency_ns; },
      {0.75, 0.67, 0.65, 0.60},
      "paper: fnw 0.75, 2stage 0.67, 3stage 0.65, tetris 0.60");
}
