// Pure event-loop microbenchmark for the simulation kernel.
//
// Measures raw schedule/fire throughput of tw::sim::Simulator with no
// memory system attached, in two flavors:
//
//   * noop chains    — 64 concurrent self-rescheduling chains whose
//     callbacks capture only a pointer-sized context (the cheapest event
//     the kernel ever sees: pure queue + dispatch cost);
//   * capture chains — the same chains but each callback carries a 40-byte
//     payload it folds into a sink, exercising the inline-callback
//     small-buffer move/invoke path the memory controller relies on.
//
// Prints events/sec for both and (with --json) records the combined
// baseline to BENCH_kernel.json so future PRs can track the kernel's
// throughput trajectory.

#include <algorithm>
#include <array>
#include <cstdio>

#include "bench_util.hpp"
#include "tw/common/rng.hpp"
#include "tw/sim/simulator.hpp"
#include "tw/trace/emit.hpp"
#include "tw/trace/tracer.hpp"

namespace {

using namespace tw;

struct ChainState {
  sim::Simulator* sim = nullptr;
  SplitMix64 rng{0};
  u64 remaining = 0;  ///< events this chain still has to fire
  u64 fired = 0;
};

/// Run `chains` self-rescheduling no-op chains until `total_events` fired.
u64 run_noop_chains(u64 total_events, u32 chains, u64 seed) {
  sim::Simulator sim;
  std::vector<ChainState> states(chains);
  const u64 per_chain = total_events / chains;
  for (u32 c = 0; c < chains; ++c) {
    states[c].sim = &sim;
    states[c].rng = SplitMix64(seed + c);
    states[c].remaining = per_chain;
  }
  struct Step {
    ChainState* s;
    void operator()() const {
      if (--s->remaining == 0) return;
      ++s->fired;
      s->sim->schedule_in(1 + (s->rng.next() & 0x3FF), Step{s});
    }
  };
  for (u32 c = 0; c < chains; ++c) {
    sim.schedule_in(1 + (states[c].rng.next() & 0x3FF), Step{&states[c]});
  }
  sim.run();
  return sim.executed();
}

/// Same chains, but every event carries a 40-byte payload.
u64 run_capture_chains(u64 total_events, u32 chains, u64 seed,
                       u64* sink_out) {
  sim::Simulator sim;
  std::vector<ChainState> states(chains);
  const u64 per_chain = total_events / chains;
  u64 sink = 0;
  for (u32 c = 0; c < chains; ++c) {
    states[c].sim = &sim;
    states[c].rng = SplitMix64(seed * 33 + c);
    states[c].remaining = per_chain;
  }
  struct Step {
    ChainState* s;
    u64* sink;
    std::array<u64, 3> payload;  // 40 B capture total: exercises the SBO
    void operator()() const {
      *sink += payload[0] ^ payload[1] ^ payload[2];
      if (--s->remaining == 0) return;
      Step next{s, sink, {s->rng.next(), payload[0] + 1, payload[1] + 1}};
      s->sim->schedule_in(1 + (s->rng.next() & 0x3FF), next);
    }
  };
  for (u32 c = 0; c < chains; ++c) {
    Step first{&states[c], &sink,
               {states[c].rng.next(), states[c].rng.next(), u64{c}}};
    sim.schedule_in(1 + (states[c].rng.next() & 0x3FF), first);
  }
  sim.run();
  *sink_out = sink;
  return sim.executed();
}

/// Noop chains whose callbacks additionally execute `checks` disabled
/// trace-category tests, each behind a compiler barrier so the TLS load
/// can't be hoisted out of the loop. Amplifying the per-site check this
/// way lifts its cost far above timer noise; the K=0 vs K=kAmp slope then
/// yields the true per-event price of compiled-in-but-disabled tracing.
u64 run_check_chains(u64 total_events, u32 chains, u64 seed, u32 checks,
                     u64* sink_out) {
  sim::Simulator sim;
  std::vector<ChainState> states(chains);
  const u64 per_chain = total_events / chains;
  u64 sink = 0;
  for (u32 c = 0; c < chains; ++c) {
    states[c].sim = &sim;
    states[c].rng = SplitMix64(seed + c);
    states[c].remaining = per_chain;
  }
  struct Step {
    ChainState* s;
    u64* sink;
    u32 checks;
    void operator()() const {
      u64 hits = 0;
      for (u32 k = 0; k < checks; ++k) {
        __asm__ __volatile__("" ::: "memory");
        hits += trace::on<trace::Category::kKernel>() ? 1u : 0u;
      }
      *sink += hits;
      if (--s->remaining == 0) return;
      s->sim->schedule_in(1 + (s->rng.next() & 0x3FF),
                          Step{s, sink, checks});
    }
  };
  for (u32 c = 0; c < chains; ++c) {
    sim.schedule_in(1 + (states[c].rng.next() & 0x3FF),
                    Step{&states[c], &sink, checks});
  }
  sim.run();
  *sink_out = sink;
  return sim.executed();
}

struct TraceOverhead {
  double disabled_pct = 0.0;  ///< one disabled check per event, vs none
  double enabled_pct = 0.0;   ///< ring attached + kernel category live
};

TraceOverhead measure_trace_overhead(u64 total, u32 chains, u64 seed) {
  constexpr u32 kAmp = 8;
  constexpr int kReps = 3;
  double best0 = 1e300, best_amp = 1e300, best_on = 1e300;
  u64 sink = 0;
  for (int r = 0; r < kReps; ++r) {
    {
      const tw::bench::WallTimer t;
      run_check_chains(total, chains, seed, 0, &sink);
      best0 = std::min(best0, t.elapsed_ms());
    }
    {
      const tw::bench::WallTimer t;
      run_check_chains(total, chains, seed, kAmp, &sink);
      best_amp = std::min(best_amp, t.elapsed_ms());
    }
    {
      // Fully enabled: ring attached, kernel category live, so fire()
      // records every event. Small ring; old records are overwritten.
      trace::Tracer tracer(trace::kAllCategories, 1u << 16);
      trace::Tracer::Attach attach(tracer);
      const tw::bench::WallTimer t;
      run_check_chains(total, chains, seed, 0, &sink);
      best_on = std::min(best_on, t.elapsed_ms());
    }
  }
  TraceOverhead o;
  const double per_check_ms = (best_amp - best0) / kAmp;
  o.disabled_pct = std::max(0.0, per_check_ms / best0 * 100.0);
  o.enabled_pct = std::max(0.0, (best_on - best0) / best0 * 100.0);
  if (sink == u64(-1)) std::printf("(unreachable)\n");  // keep sink live
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const tw::bench::Options o = tw::bench::Options::parse(argc, argv);
  const u64 total = o.quick ? 2'000'000 : 8'000'000;
  const u32 chains = 64;

  std::printf("micro_sim: event-loop kernel throughput\n");
  std::printf("=======================================\n");
  std::printf("(%llu events per flavor, %u concurrent chains)\n\n",
              static_cast<unsigned long long>(total), chains);

  tw::bench::WallTimer t_noop;
  const u64 fired_noop = run_noop_chains(total, chains, o.seed);
  const double ms_noop = t_noop.elapsed_ms();

  u64 sink = 0;
  tw::bench::WallTimer t_cap;
  const u64 fired_cap = run_capture_chains(total, chains, o.seed, &sink);
  const double ms_cap = t_cap.elapsed_ms();

  const double eps_noop =
      static_cast<double>(fired_noop) / (ms_noop / 1000.0);
  const double eps_cap = static_cast<double>(fired_cap) / (ms_cap / 1000.0);
  std::printf("noop chains:    %10.1f ms  %12.0f events/sec\n", ms_noop,
              eps_noop);
  std::printf("capture chains: %10.1f ms  %12.0f events/sec  (sink %llx)\n",
              ms_cap, eps_cap, static_cast<unsigned long long>(sink));

  const double total_ms = ms_noop + ms_cap;
  const double eps_all = static_cast<double>(fired_noop + fired_cap) /
                         (total_ms / 1000.0);
  std::printf("combined:       %10.1f ms  %12.0f events/sec\n", total_ms,
              eps_all);

  bool want_overhead = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--trace-overhead") want_overhead = true;
  }
  double overhead_pct = -1.0;
  if (want_overhead) {
    const u64 oh_events = o.quick ? 1'000'000 : 4'000'000;
    std::printf("\ntracing overhead (%llu events/rep, best of 3):\n",
                static_cast<unsigned long long>(oh_events));
    const auto oh = measure_trace_overhead(oh_events, chains, o.seed);
    std::printf("  compiled-in, disabled: %+6.2f%% per emission site\n",
                oh.disabled_pct);
    std::printf("  fully enabled:         %+6.2f%%\n", oh.enabled_pct);
    std::printf("  disabled-path budget:  <2%%  ->  %s\n",
                oh.disabled_pct < 2.0 ? "OK" : "EXCEEDED");
    overhead_pct = oh.disabled_pct;
  }

  if (!o.json_path.empty()) {
    tw::bench::BenchBaseline b;
    b.bench = "micro_sim";
    b.config = std::string(o.quick ? "quick" : "full") +
               " events=" + std::to_string(total) +
               " chains=" + std::to_string(chains) +
               " seed=" + std::to_string(o.seed);
    b.wall_ms = total_ms;
    b.events_per_sec = eps_all;
    b.sim_writes_per_sec = 0.0;  // no memory system in this bench
    b.trace_overhead_pct = overhead_pct;
    tw::bench::write_bench_json(o.json_path, b);
  }
  return 0;
}
