// Ablation 10: bank-level parallelism. The paper fixes 8 banks
// (Table II); this sweep shows how much of each scheme's win survives
// when bank parallelism already hides write latency (16+ banks) and how
// much worse the baseline gets when it cannot (4 banks).

#include <iostream>

#include "bench_util.hpp"

using namespace tw;

int main(int argc, char** argv) {
  const bench::Options o = bench::Options::parse(argc, argv);

  std::cout << "Ablation: bank count (read latency normalized to dcw)\n"
            << "=====================================================\n"
            << "(workload: ferret; Table II point is 8 banks)\n\n";

  const auto& profile = workload::profile_by_name("ferret");
  AsciiTable t;
  t.set_header({"banks", "dcw (ns)", "fnw", "2stage", "3stage", "tetris"});
  for (const u32 banks : {2u, 4u, 8u, 16u, 32u}) {
    harness::SystemConfig cfg = bench::system_config(profile, o);
    cfg.pcm.geometry.banks = banks;
    std::vector<std::string> row = {std::to_string(banks)};
    double dcw = 0;
    for (const auto kind : bench::paper_columns()) {
      const harness::RunMetrics m = harness::run_system(cfg, profile, kind);
      if (kind == schemes::SchemeKind::kDcw) {
        dcw = m.read_latency_ns;
        row.push_back(fixed(dcw, 0));
      } else {
        row.push_back(fixed(m.read_latency_ns / dcw, 3));
      }
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);

  std::cout << "\nTakeaway: more banks hide queueing but not the service "
               "time a read\nwaits behind on its own bank — Tetris's edge "
               "persists across the sweep\nwhile the baseline needs 4x "
               "the banks to approach it.\n";
  return 0;
}
