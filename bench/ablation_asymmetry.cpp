// Ablation 2: sensitivity to the device asymmetries. K = Tset/Treset
// governs how many RESET sub-slots hide inside one SET window; L =
// Creset/Cset governs how expensive those RESETs are. The paper fixes
// K=8, L=2 (Table II); this sweep shows how Tetris's advantage over
// Three-Stage-Write scales with both.

#include <iostream>

#include "bench_util.hpp"
#include "tw/core/factory.hpp"
#include "tw/stats/accumulator.hpp"
#include "tw/workload/generator.hpp"

using namespace tw;

namespace {

double avg_units(const pcm::PcmConfig& cfg,
                 const workload::WorkloadProfile& p,
                 schemes::SchemeKind kind, u64 writes, u64 seed) {
  mem::DataStore store(cfg.geometry.units_per_line(), seed,
                       p.initial_ones_fraction);
  workload::TraceGenerator gen(p, cfg.geometry, 1, seed + 1);
  const auto scheme = core::make_scheme(kind, cfg);
  stats::Accumulator units;
  u64 n = 0;
  while (n < writes) {
    const workload::TraceOp op = gen.next(0);
    if (!op.is_write) continue;
    const pcm::LogicalLine next = gen.make_write_data(op.addr, store, 0);
    units.add(scheme->plan_write(store.line(op.addr), next).write_units);
    ++n;
  }
  return units.mean();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options o = bench::Options::parse(argc, argv);
  const u64 writes = o.quick ? 400 : 2'000;
  const auto& profile = workload::profile_by_name("ferret");

  std::cout << "Ablation: time (K) and power (L) asymmetry sweep\n"
            << "================================================\n"
            << "(avg write units on 'ferret'; Table II point is K=8, "
               "L=2)\n\n";

  AsciiTable t;
  t.set_header({"K", "L", "Tset(ns)", "3stage", "tetris", "tetris win"});
  for (const u32 k : {1u, 2u, 4u, 8u, 16u}) {
    for (const u32 l : {1u, 2u, 4u}) {
      pcm::PcmConfig cfg = pcm::table2_config();
      cfg.timing.t_set = ns(53) * k;
      cfg.power.reset_current_ratio_l = l;
      const double three = avg_units(cfg, profile,
                                     schemes::SchemeKind::kThreeStage,
                                     writes, o.seed);
      const double tetris = avg_units(
          cfg, profile, schemes::SchemeKind::kTetris, writes, o.seed);
      t.add_row({std::to_string(k), std::to_string(l),
                 fixed(to_ns(cfg.timing.t_set), 0), fixed(three, 2),
                 fixed(tetris, 2), pct(1.0 - tetris / three)});
    }
  }
  t.print(std::cout);

  std::cout << "\nTakeaway: a larger K gives Tetris more sub-slots to "
               "steal (RESETs\nvanish into the SET window); larger L makes "
               "RESETs power-hungry and\nerodes everyone's stage-0 "
               "concurrency, which hurts Three-Stage-Write\nmore than "
               "Tetris.\n";
  return 0;
}
