// Ablation 3: power budget and the global charge pump. The paper's
// introduction motivates mobile parts whose write units shrink to 4 or 2
// bits when the available current drops; this sweep shows each scheme's
// write-unit count as the per-chip budget scales, and what GCP current
// sharing buys Tetris.

#include <iostream>

#include "bench_util.hpp"
#include "tw/core/factory.hpp"
#include "tw/stats/accumulator.hpp"
#include "tw/workload/generator.hpp"

using namespace tw;

namespace {

double avg_units(const pcm::PcmConfig& cfg,
                 const workload::WorkloadProfile& p,
                 schemes::SchemeKind kind, u64 writes, u64 seed) {
  mem::DataStore store(cfg.geometry.units_per_line(), seed,
                       p.initial_ones_fraction);
  workload::TraceGenerator gen(p, cfg.geometry, 1, seed + 1);
  const auto scheme = core::make_scheme(kind, cfg);
  stats::Accumulator units;
  u64 n = 0;
  while (n < writes) {
    const workload::TraceOp op = gen.next(0);
    if (!op.is_write) continue;
    const pcm::LogicalLine next = gen.make_write_data(op.addr, store, 0);
    units.add(scheme->plan_write(store.line(op.addr), next).write_units);
    ++n;
  }
  return units.mean();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options o = bench::Options::parse(argc, argv);
  const u64 writes = o.quick ? 400 : 2'000;
  const auto& profile = workload::profile_by_name("ferret");
  const auto kinds = bench::paper_columns();

  std::cout << "Ablation: power budget sweep (avg write units, 'ferret')\n"
            << "========================================================\n"
            << "(Table II point: 32 SET-equivalents per chip, GCP on)\n\n";

  AsciiTable t;
  {
    std::vector<std::string> header = {"chip budget", "GCP"};
    for (const auto k : kinds) header.emplace_back(schemes::scheme_name(k));
    t.set_header(std::move(header));
  }
  for (const u32 b : {4u, 8u, 16u, 32u, 64u}) {
    for (const bool gcp : {true, false}) {
      pcm::PcmConfig cfg = pcm::table2_config();
      cfg.power.chip_budget = b;
      cfg.power.global_charge_pump = gcp;
      std::vector<std::string> row = {std::to_string(b),
                                      gcp ? "on" : "off"};
      for (const auto kind : kinds) {
        row.push_back(
            fixed(avg_units(cfg, profile, kind, writes, o.seed), 2));
      }
      t.add_row(std::move(row));
    }
    t.add_separator();
  }
  t.print(std::cout);

  std::cout << "\nTakeaway: the prior schemes' worst-case concurrency "
               "collapses as the\nbudget shrinks, while Tetris degrades "
               "with the *actual* demand; GCP\nmatters to Tetris because "
               "sparse transitions cluster unevenly across\nchips.\n";
  return 0;
}
