// Ablation 9: write pausing (paper ref [24]) on top of each write scheme.
// Pausing lets reads preempt long writes at write-unit boundaries — the
// orthogonal technique the paper cites for keeping reads off the critical
// path. The shorter a scheme's write service, the less pausing matters:
// Tetris already removed most of the blocking.

#include <iostream>

#include "bench_util.hpp"

using namespace tw;

int main(int argc, char** argv) {
  const bench::Options o = bench::Options::parse(argc, argv);

  std::cout << "Ablation: write pausing x write scheme (read latency, ns)\n"
            << "=========================================================\n"
            << "(workload: vips, the most write-bound)\n\n";

  const auto& profile = workload::profile_by_name("vips");
  AsciiTable t;
  t.set_header({"scheme", "no pausing", "pausing", "improvement",
                "pauses"});
  for (const auto kind : bench::paper_columns()) {
    harness::SystemConfig cfg = bench::system_config(profile, o);
    const harness::RunMetrics off =
        harness::run_system(cfg, profile, kind);
    cfg.controller.write_pausing = true;
    const harness::RunMetrics on = harness::run_system(cfg, profile, kind);
    t.add_row({std::string(schemes::scheme_name(kind)),
               fixed(off.read_latency_ns, 0), fixed(on.read_latency_ns, 0),
               pct(1.0 - on.read_latency_ns / off.read_latency_ns),
               std::to_string(on.write_pauses)});
  }
  t.print(std::cout);

  std::cout << "\nTakeaway: pausing rescues the baseline's reads from "
               "3.5 us writes, but\nthe benefit shrinks as the scheme "
               "itself shortens writes — Tetris\nleaves little blocking "
               "left to pause around.\n";
  return 0;
}
