// Ablation 4: cache-line size. The introduction motivates Tetris with
// growing last-level lines (64 B commodity, 128 B POWER7, 256 B
// zEnterprise): more data units per line means more serial write units
// for the prior schemes but more packing opportunities for Tetris.

#include <iostream>

#include "bench_util.hpp"
#include "tw/core/factory.hpp"
#include "tw/stats/accumulator.hpp"
#include "tw/workload/generator.hpp"

using namespace tw;

namespace {

struct Cell {
  double units;
  double latency_ns;
};

Cell measure(const pcm::PcmConfig& cfg, const workload::WorkloadProfile& p,
             schemes::SchemeKind kind, u64 writes, u64 seed) {
  mem::DataStore store(cfg.geometry.units_per_line(), seed,
                       p.initial_ones_fraction);
  workload::TraceGenerator gen(p, cfg.geometry, 1, seed + 1);
  const auto scheme = core::make_scheme(kind, cfg);
  stats::Accumulator units, lat;
  u64 n = 0;
  while (n < writes) {
    const workload::TraceOp op = gen.next(0);
    if (!op.is_write) continue;
    const pcm::LogicalLine next = gen.make_write_data(op.addr, store, 0);
    const auto plan = scheme->plan_write(store.line(op.addr), next);
    units.add(plan.write_units);
    lat.add(to_ns(plan.latency));
    ++n;
  }
  return {units.mean(), lat.mean()};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options o = bench::Options::parse(argc, argv);
  const u64 writes = o.quick ? 400 : 2'000;
  const auto& profile = workload::profile_by_name("ferret");
  const auto kinds = bench::paper_columns();

  std::cout << "Ablation: cache-line size (64 B / 128 B POWER7 / 256 B "
               "zEnterprise)\n"
            << "==================================================="
               "==============\n"
            << "(avg write units and service latency, 'ferret')\n\n";

  for (const u32 bytes : {64u, 128u, 256u}) {
    pcm::PcmConfig cfg = pcm::table2_config();
    cfg.geometry.cache_line_bytes = bytes;
    std::cout << bytes << " B lines (" << cfg.geometry.units_per_line()
              << " data units):\n";
    AsciiTable t;
    t.set_header({"scheme", "write units", "service (ns)",
                  "vs dcw latency"});
    double dcw_lat = 0;
    for (const auto kind : kinds) {
      const Cell c = measure(cfg, profile, kind, writes, o.seed);
      if (kind == schemes::SchemeKind::kDcw) dcw_lat = c.latency_ns;
      t.add_row({std::string(schemes::scheme_name(kind)),
                 fixed(c.units, 2), fixed(c.latency_ns, 0),
                 pct(1.0 - c.latency_ns / dcw_lat)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Takeaway: at 256 B the baseline serializes 32 write units "
               "(~13.8 us)\nwhile Tetris still packs the whole line into a "
               "couple — the gap the\nintroduction predicts for "
               "large-line servers.\n";
  return 0;
}
