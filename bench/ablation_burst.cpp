// Ablation 14: temporal burstiness. Real applications do not spread
// their writes evenly — bursts are what fill the 32-entry write queue and
// trigger strict drains, which is when the write scheme's service time
// matters most. Sweeps the generator's burstiness at a fixed average
// rate.

#include <iostream>

#include "bench_util.hpp"

using namespace tw;

int main(int argc, char** argv) {
  const bench::Options o = bench::Options::parse(argc, argv);

  std::cout << "Ablation: workload burstiness (fixed average RPKI/WPKI)\n"
            << "=======================================================\n"
            << "(workload: dedup)\n\n";

  AsciiTable t;
  t.set_header({"burstiness", "scheme", "read lat (ns)", "write lat (us)",
                "IPC"});
  for (const double b : {0.0, 0.5, 1.0}) {
    workload::WorkloadProfile profile = workload::profile_by_name("dedup");
    profile.burstiness = b;
    for (const auto kind :
         {schemes::SchemeKind::kDcw, schemes::SchemeKind::kTetris}) {
      const harness::SystemConfig cfg = bench::system_config(profile, o);
      const harness::RunMetrics m = harness::run_system(cfg, profile, kind);
      t.add_row({fixed(b, 1), std::string(schemes::scheme_name(kind)),
                 fixed(m.read_latency_ns, 0),
                 fixed(m.write_latency_ns / 1000.0, 1), fixed(m.ipc, 3)});
    }
    t.add_separator();
  }
  t.print(std::cout);

  std::cout << "\nTakeaway: burstiness stresses the queues at the same "
               "average rate —\nthe baseline's latencies blow up during "
               "ON periods while Tetris's\nshort writes let drains clear "
               "before the read queue backs up, so the\ngap between the "
               "schemes widens exactly when it matters.\n";
  return 0;
}
