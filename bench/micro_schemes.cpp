// Microbenchmarks: per-scheme plan_write throughput — how fast the
// simulator can evaluate each policy on one 64 B cache-line write.

#include <benchmark/benchmark.h>

#include "tw/common/rng.hpp"
#include "tw/core/factory.hpp"

namespace {

using namespace tw;

struct Fixture {
  pcm::PcmConfig cfg = pcm::table2_config();
  pcm::LineBuf line{8};
  pcm::LogicalLine next{8};

  explicit Fixture(u64 seed) {
    Rng rng(seed);
    for (u32 i = 0; i < 8; ++i) line.set_cell(i, rng.next());
    for (u32 i = 0; i < 8; ++i) {
      u64 w = line.logical(i);
      for (u32 b = 0; b < 10; ++b) {
        w = with_bit(w, static_cast<u32>(rng.below(64)), rng.chance(0.7));
      }
      next.set_word(i, w);
    }
  }
};

void run_scheme(benchmark::State& state, schemes::SchemeKind kind) {
  Fixture f(42);
  const auto scheme = core::make_scheme(kind, f.cfg);
  for (auto _ : state) {
    pcm::LineBuf work = f.line;  // plan_write mutates; copy per iteration
    benchmark::DoNotOptimize(scheme->plan_write(work, f.next));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}

void BM_Conventional(benchmark::State& s) {
  run_scheme(s, schemes::SchemeKind::kConventional);
}
void BM_Dcw(benchmark::State& s) { run_scheme(s, schemes::SchemeKind::kDcw); }
void BM_Fnw(benchmark::State& s) {
  run_scheme(s, schemes::SchemeKind::kFlipNWrite);
}
void BM_TwoStage(benchmark::State& s) {
  run_scheme(s, schemes::SchemeKind::kTwoStage);
}
void BM_ThreeStage(benchmark::State& s) {
  run_scheme(s, schemes::SchemeKind::kThreeStage);
}
void BM_Tetris(benchmark::State& s) {
  run_scheme(s, schemes::SchemeKind::kTetris);
}
void BM_TetrisSelfCheck(benchmark::State& s) {
  Fixture f(42);
  core::TetrisOptions opts;
  opts.self_check = true;
  const auto scheme =
      core::make_scheme(schemes::SchemeKind::kTetris, f.cfg, opts);
  for (auto _ : s) {
    pcm::LineBuf work = f.line;
    benchmark::DoNotOptimize(scheme->plan_write(work, f.next));
  }
}

BENCHMARK(BM_Conventional);
BENCHMARK(BM_Dcw);
BENCHMARK(BM_Fnw);
BENCHMARK(BM_TwoStage);
BENCHMARK(BM_ThreeStage);
BENCHMARK(BM_Tetris);
BENCHMARK(BM_TetrisSelfCheck);

}  // namespace
