// Microbenchmarks: per-scheme plan_write throughput — how fast the
// simulator can evaluate each policy on one 64 B cache-line write.

#include <benchmark/benchmark.h>

#include <vector>

#include "tw/common/rng.hpp"
#include "tw/common/simd.hpp"
#include "tw/core/factory.hpp"

namespace {

using namespace tw;

struct Fixture {
  pcm::PcmConfig cfg = pcm::table2_config();
  pcm::LineBuf line{8};
  pcm::LogicalLine next{8};

  explicit Fixture(u64 seed) {
    Rng rng(seed);
    for (u32 i = 0; i < 8; ++i) line.set_cell(i, rng.next());
    for (u32 i = 0; i < 8; ++i) {
      u64 w = line.logical(i);
      for (u32 b = 0; b < 10; ++b) {
        w = with_bit(w, static_cast<u32>(rng.below(64)), rng.chance(0.7));
      }
      next.set_word(i, w);
    }
  }
};

void run_scheme(benchmark::State& state, schemes::SchemeKind kind) {
  Fixture f(42);
  const auto scheme = core::make_scheme(kind, f.cfg);
  for (auto _ : state) {
    pcm::LineBuf work = f.line;  // plan_write mutates; copy per iteration
    benchmark::DoNotOptimize(scheme->plan_write(work, f.next));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}

void BM_Conventional(benchmark::State& s) {
  run_scheme(s, schemes::SchemeKind::kConventional);
}
void BM_Dcw(benchmark::State& s) { run_scheme(s, schemes::SchemeKind::kDcw); }
void BM_Fnw(benchmark::State& s) {
  run_scheme(s, schemes::SchemeKind::kFlipNWrite);
}
void BM_TwoStage(benchmark::State& s) {
  run_scheme(s, schemes::SchemeKind::kTwoStage);
}
void BM_ThreeStage(benchmark::State& s) {
  run_scheme(s, schemes::SchemeKind::kThreeStage);
}
void BM_Tetris(benchmark::State& s) {
  run_scheme(s, schemes::SchemeKind::kTetris);
}
void BM_TetrisSelfCheck(benchmark::State& s) {
  Fixture f(42);
  core::TetrisOptions opts;
  opts.self_check = true;
  const auto scheme =
      core::make_scheme(schemes::SchemeKind::kTetris, f.cfg, opts);
  for (auto _ : s) {
    pcm::LineBuf work = f.line;
    benchmark::DoNotOptimize(scheme->plan_write(work, f.next));
  }
}

/// plan_write at a pinned kernel ISA level (scalar vs avx2 A/B).
void run_tetris_at_level(benchmark::State& state, simd::Level level) {
  const simd::Level restore = simd::active_level();
  simd::set_level(level);
  Fixture f(42);
  const auto scheme = core::make_scheme(schemes::SchemeKind::kTetris, f.cfg);
  for (auto _ : state) {
    pcm::LineBuf work = f.line;
    benchmark::DoNotOptimize(scheme->plan_write(work, f.next));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
  simd::set_level(restore);
}
void BM_TetrisScalar(benchmark::State& s) {
  run_tetris_at_level(s, simd::Level::kScalar);
}
void BM_TetrisAvx2(benchmark::State& s) {
  if (!simd::avx2_supported()) {
    s.SkipWithError("avx2 unsupported");
    return;
  }
  run_tetris_at_level(s, simd::Level::kAvx2);
}

/// Multi-line joint packing: plan_write_batch over K same-bank lines.
void BM_TetrisBatch(benchmark::State& state) {
  const u32 k = static_cast<u32>(state.range(0));
  const auto scheme =
      core::make_scheme(schemes::SchemeKind::kTetris, Fixture(42).cfg);
  std::vector<Fixture> fixtures;
  for (u32 j = 0; j < k; ++j) fixtures.emplace_back(42 + j);
  for (auto _ : state) {
    std::vector<pcm::LineBuf> work;
    std::vector<pcm::LineBuf*> lines;
    std::vector<pcm::LogicalLine> datas;
    for (u32 j = 0; j < k; ++j) {
      work.push_back(fixtures[j].line);
      datas.push_back(fixtures[j].next);
    }
    for (u32 j = 0; j < k; ++j) lines.push_back(&work[j]);
    benchmark::DoNotOptimize(scheme->plan_write_batch(
        {lines.data(), lines.size()}, {datas.data(), datas.size()}));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * k);
}

BENCHMARK(BM_Conventional);
BENCHMARK(BM_Dcw);
BENCHMARK(BM_Fnw);
BENCHMARK(BM_TwoStage);
BENCHMARK(BM_ThreeStage);
BENCHMARK(BM_Tetris);
BENCHMARK(BM_TetrisSelfCheck);
BENCHMARK(BM_TetrisScalar);
BENCHMARK(BM_TetrisAvx2);
BENCHMARK(BM_TetrisBatch)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
