// Figure 14 reproduction: application running time, normalized to the
// DCW baseline.
//
// Paper averages: Tetris -46%; FNW / 2-Stage / Three-Stage trail Tetris
// by 22% / 12% / 7%, i.e. roughly 0.76 / 0.66 / 0.61 vs Tetris 0.54.

#include "bench_util.hpp"

int main(int argc, char** argv) {
  return tw::bench::system_figure(
      argc, argv, "Figure 14: normalized running time",
      [](const tw::harness::RunMetrics& m) { return m.runtime_ns; },
      {0.76, 0.66, 0.61, 0.54},
      "paper: fnw 0.76, 2stage 0.66, 3stage 0.61, tetris 0.54");
}
