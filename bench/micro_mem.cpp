// Microbenchmarks of the memory-system layer: controller enqueue+service
// throughput, data-store access, Start-Gap mapping, full-system
// simulation rate (simulated requests per wall-clock second).

#include <benchmark/benchmark.h>

#include "tw/core/factory.hpp"
#include "tw/cpu/multicore.hpp"
#include "tw/harness/experiment.hpp"
#include "tw/mem/start_gap.hpp"
#include "tw/workload/generator.hpp"

namespace {

using namespace tw;

void BM_ControllerWriteService(benchmark::State& state) {
  // Cost of one enqueue + full service of a write, end to end.
  const pcm::PcmConfig cfg = pcm::table2_config();
  const auto scheme = core::make_scheme(schemes::SchemeKind::kTetris, cfg);
  sim::Simulator sim;
  stats::Registry reg;
  mem::ControllerConfig ccfg;
  ccfg.drain = mem::ControllerConfig::DrainPolicy::kOpportunistic;
  mem::Controller ctl(sim, cfg, ccfg, *scheme, reg);
  Rng rng(1);
  u64 addr = 0;
  for (auto _ : state) {
    mem::MemoryRequest r;
    r.addr = (addr++ % 4096) * 64;
    r.type = mem::ReqType::kWrite;
    pcm::LogicalLine d(8);
    for (u32 i = 0; i < 8; ++i) d.set_word(i, rng.next());
    r.data = d;
    ctl.enqueue(std::move(r));
    sim.run();
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_ControllerWriteService);

void BM_StartGapMapping(benchmark::State& state) {
  mem::StartGapConfig cfg;
  cfg.region_lines = 1 << 16;
  mem::StartGapLeveler lev(cfg);
  u64 l = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lev.map(l++ & 0xFFFF));
  }
}
BENCHMARK(BM_StartGapMapping);

void BM_DataStoreFirstTouch(benchmark::State& state) {
  // Line materialization (biased content generation included).
  u64 a = 0;
  mem::DataStore store(8, 1, 0.35);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.line(a));
    a += 64;
  }
}
BENCHMARK(BM_DataStoreFirstTouch);

void BM_FullSystemSimulationRate(benchmark::State& state) {
  // Simulated memory requests per wall-clock second for a 4-core run.
  u64 requests = 0;
  for (auto _ : state) {
    harness::SystemConfig cfg;
    cfg.instructions_per_core = 20'000;
    const harness::RunMetrics m = harness::run_system(
        cfg, workload::profile_by_name("ferret"),
        schemes::SchemeKind::kTetris);
    requests += m.reads + m.writes;
  }
  state.SetItemsProcessed(static_cast<i64>(requests));
  state.SetLabel("items = simulated memory requests");
}
BENCHMARK(BM_FullSystemSimulationRate)->Unit(benchmark::kMillisecond);

}  // namespace
