// Memory-controller scheduling microbenchmark.
//
// Drives one controller in a closed loop: a pre-generated request ring
// keeps both queues saturated (refilling on the space callback), so the
// measured rate is dominated by the controller's scheduling decisions —
// queue scans, candidate selection, drain bookkeeping — rather than by
// request supply (the traffic is generated outside the timed region).
// The matrix covers queue depths 4/16/64 under a read-dominant (80/20,
// opportunistic drain) and a write-dominant (20/80, strict drain) mix.
//
// Prints scheduling decisions (issued commands) per second for each cell
// and (with --json) records the aggregate baseline to BENCH_mem.json so
// the CI bench-smoke job can flag controller-throughput regressions.
//
// --reference benches the frozen linear-scan oracle
// (tests/reference_controller.hpp) instead of the production controller:
// the differential test proves the two perform identical scheduling work,
// so the pair of runs is a controlled A/B of the bank-indexed fast path.

#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.hpp"
#include "reference_controller.hpp"
#include "tw/common/rng.hpp"
#include "tw/core/factory.hpp"
#include "tw/mem/controller.hpp"
#include "tw/mem/start_gap.hpp"
#include "tw/sim/simulator.hpp"

namespace {

using namespace tw;

struct MixResult {
  u64 decisions = 0;  ///< commands issued (reads + writes serviced)
  u64 reads = 0;
  u64 writes = 0;
  double wall_ms = 0.0;
};

/// Run one (queue depth, write fraction) cell until `target` requests
/// complete. Requests come from a pre-built ring (a pure function of the
/// seed), replayed sticky-on-rejection so backpressure never desyncs the
/// stream — and so generation cost stays out of the timed region.
template <class ControllerT>
MixResult run_mix(u32 depth, double write_frac, bool strict_drain,
                  u64 target, u64 seed) {
  const pcm::PcmConfig pc = pcm::table2_config();
  const auto scheme = core::make_scheme(schemes::SchemeKind::kDcw, pc);
  sim::Simulator sim;
  stats::Registry reg;

  mem::ControllerConfig cc;
  cc.read_queue_entries = depth;
  cc.write_queue_entries = depth;
  cc.drain_low_watermark = depth / 2;
  cc.drain = strict_drain ? mem::ControllerConfig::DrainPolicy::kStrict
                          : mem::ControllerConfig::DrainPolicy::kOpportunistic;
  // Coalescing/forwarding off: merged requests would bypass scheduling,
  // which is exactly the path under measurement.
  cc.write_coalescing = false;
  cc.read_forwarding = false;
  ControllerT ctl(sim, pc, cc, *scheme, reg, seed);

  const u32 units = pc.geometry.units_per_line();
  const u64 lines = 4096;  // spreads over all banks, many rows per bank
  Rng rng(seed);
  std::vector<mem::MemoryRequest> ring(1u << 14);
  for (mem::MemoryRequest& r : ring) {
    r.addr = rng.below(lines) * pc.geometry.cache_line_bytes;
    if (rng.chance(write_frac)) {
      r.type = mem::ReqType::kWrite;
      r.data = pcm::LogicalLine(units);
      for (u32 i = 0; i < units; ++i) r.data.set_word(i, rng.next());
    } else {
      r.type = mem::ReqType::kRead;
    }
  }

  u64 completed = 0;
  u64 pos = 0;
  bool stop = false;
  auto pump = [&] {
    while (!stop) {
      // Sticky: `pos` only advances past an accepted request.
      if (!ctl.enqueue(ring[pos & (ring.size() - 1)])) break;
      ++pos;
    }
  };
  ctl.set_space_callback(pump);
  ctl.set_read_callback([&](const mem::MemoryRequest&) {
    if (++completed >= target) stop = true;
  });
  ctl.set_write_callback([&](const mem::MemoryRequest&) {
    if (++completed >= target) stop = true;
  });

  const tw::bench::WallTimer timer;
  pump();
  sim.run();

  MixResult res;
  res.reads = reg.counter("mem.reads").value();
  res.writes = reg.counter("mem.writes").value();
  res.decisions = res.reads + res.writes;
  res.wall_ms = timer.elapsed_ms();
  return res;
}

/// Single-component micro timings kept from the google-benchmark version.
void run_component_micros() {
  {
    mem::StartGapConfig cfg;
    cfg.region_lines = 1 << 16;
    mem::StartGapLeveler lev(cfg);
    const u64 iters = 2'000'000;
    u64 sink = 0;
    const tw::bench::WallTimer t;
    for (u64 l = 0; l < iters; ++l) sink += lev.map(l & 0xFFFF);
    const double ms = t.elapsed_ms();
    std::printf("start-gap map:        %7.1f ns/op  (sink %llx)\n",
                ms * 1e6 / static_cast<double>(iters),
                static_cast<unsigned long long>(sink & 0xF));
  }
  {
    mem::DataStore store(8, 1, 0.35);
    const u64 iters = 200'000;
    u64 sink = 0;
    const tw::bench::WallTimer t;
    for (u64 i = 0; i < iters; ++i) sink += store.line(i * 64).cell(0);
    const double ms = t.elapsed_ms();
    std::printf("data-store touch:     %7.1f ns/op  (sink %llx)\n",
                ms * 1e6 / static_cast<double>(iters),
                static_cast<unsigned long long>(sink & 0xF));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const tw::bench::Options o = tw::bench::Options::parse(argc, argv);
  bool reference = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reference") == 0) reference = true;
  }
  const u64 target = o.quick ? 30'000 : 120'000;

  std::printf("micro_mem: controller scheduling throughput%s\n",
              reference ? " (reference linear-scan controller)" : "");
  std::printf("===========================================\n");
  std::printf("(%llu completions per cell, DCW scheme, queues saturated)\n\n",
              static_cast<unsigned long long>(target));

  struct Cell {
    const char* name;
    double write_frac;
    bool strict;
  };
  const Cell mixes[] = {
      {"read-dominant  80r/20w opportunistic", 0.2, false},
      {"write-dominant 20r/80w strict-drain ", 0.8, true},
  };
  const u32 depths[] = {4, 16, 64};

  u64 total_decisions = 0;
  double total_ms = 0.0;
  for (const Cell& mix : mixes) {
    for (const u32 depth : depths) {
      const MixResult r =
          reference
              ? run_mix<mem::ref::ReferenceController>(
                    depth, mix.write_frac, mix.strict, target, o.seed)
              : run_mix<mem::Controller>(depth, mix.write_frac, mix.strict,
                                         target, o.seed);
      const double dps =
          static_cast<double>(r.decisions) / (r.wall_ms / 1000.0);
      std::printf("%s  depth %2u: %8.1f ms  %12.0f decisions/sec\n",
                  mix.name, depth, r.wall_ms, dps);
      total_decisions += r.decisions;
      total_ms += r.wall_ms;
    }
  }
  const double agg =
      static_cast<double>(total_decisions) / (total_ms / 1000.0);
  std::printf("\naggregate:          %10.1f ms  %12.0f decisions/sec\n",
              total_ms, agg);

  std::printf("\ncomponent micros:\n");
  run_component_micros();

  if (!o.json_path.empty()) {
    tw::bench::BenchBaseline b;
    b.bench = "micro_mem";
    b.config = std::string(o.quick ? "quick" : "full") +
               " completions=" + std::to_string(target) +
               " depths=4/16/64 mixes=r80/w80 seed=" +
               std::to_string(o.seed) +
               (reference ? " controller=reference" : " controller=indexed");
    b.wall_ms = total_ms;
    b.events_per_sec = agg;  // scheduling decisions per second
    b.sim_writes_per_sec = 0.0;
    tw::bench::write_bench_json(o.json_path, b);
  }
  return 0;
}
