// Figure 13 reproduction: IPC improvement over the DCW baseline (Eq. 6).
//
// Paper averages: FNW 1.4x, 2-Stage 1.6x, Three-Stage 1.8x, Tetris 2.0x.

#include "bench_util.hpp"

int main(int argc, char** argv) {
  return tw::bench::system_figure_higher(
      argc, argv, "Figure 13: IPC improvement",
      [](const tw::harness::RunMetrics& m) { return m.ipc; },
      {1.4, 1.6, 1.8, 2.0},
      "paper: fnw 1.4x, 2stage 1.6x, 3stage 1.8x, tetris 2.0x");
}
