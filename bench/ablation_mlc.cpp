// Ablation 13: SLC vs MLC. The paper picks SLC "for its better write
// performance" (Section II); this bench quantifies the gap — MLC's
// program-and-verify trains stretch the write window, and Tetris's
// interspace stealing matters even more when the windows are longer.

#include <iostream>

#include "bench_util.hpp"
#include "tw/core/factory.hpp"
#include "tw/pcm/mlc.hpp"
#include "tw/stats/accumulator.hpp"
#include "tw/workload/generator.hpp"

using namespace tw;

namespace {

struct Cell {
  double units;
  double latency_ns;
};

Cell measure(const pcm::PcmConfig& cfg, const workload::WorkloadProfile& p,
             schemes::SchemeKind kind, u64 writes, u64 seed) {
  mem::DataStore store(cfg.geometry.units_per_line(), seed,
                       p.initial_ones_fraction);
  workload::TraceGenerator gen(p, cfg.geometry, 1, seed + 1);
  const auto scheme = core::make_scheme(kind, cfg);
  stats::Accumulator units, lat;
  u64 n = 0;
  while (n < writes) {
    const workload::TraceOp op = gen.next(0);
    if (!op.is_write) continue;
    const pcm::LogicalLine next = gen.make_write_data(op.addr, store, 0);
    const auto plan = scheme->plan_write(store.line(op.addr), next);
    units.add(plan.write_units);
    lat.add(to_ns(plan.latency));
    ++n;
  }
  return {units.mean(), lat.mean()};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options o = bench::Options::parse(argc, argv);
  const u64 writes = o.quick ? 400 : 2'000;
  const auto& profile = workload::profile_by_name("ferret");

  const pcm::PcmConfig slc = pcm::table2_config();
  const pcm::MlcParams mlc_params;
  const pcm::PcmConfig mlc = pcm::mlc_effective_config(slc, mlc_params);

  std::cout << "Ablation: SLC vs MLC write service ('ferret')\n"
            << "==============================================\n"
            << "SLC: Tset " << fixed(to_ns(slc.timing.t_set), 0)
            << " ns, Treset " << fixed(to_ns(slc.timing.t_reset), 0)
            << " ns | MLC: worst P&V train "
            << fixed(to_ns(mlc.timing.t_set), 0) << " ns, RESET "
            << fixed(to_ns(mlc.timing.t_reset), 0) << " ns (K="
            << mlc.k() << ")\n\n";

  AsciiTable t;
  t.set_header({"scheme", "SLC units", "SLC lat (ns)", "MLC units",
                "MLC lat (ns)", "MLC/SLC"});
  for (const auto kind : bench::paper_columns()) {
    const Cell s = measure(slc, profile, kind, writes, o.seed);
    const Cell m = measure(mlc, profile, kind, writes, o.seed);
    t.add_row({std::string(schemes::scheme_name(kind)), fixed(s.units, 2),
               fixed(s.latency_ns, 0), fixed(m.units, 2),
               fixed(m.latency_ns, 0),
               fixed(m.latency_ns / s.latency_ns, 2) + "x"});
  }
  t.print(std::cout);

  // Content-level MLC costs: how many cells actually move levels.
  Rng rng(o.seed);
  stats::Accumulator cells, iters;
  for (int i = 0; i < 2000; ++i) {
    const u64 old_word = rng.next();
    u64 next = old_word;
    for (u32 b = 0; b < 10; ++b) {
      next = with_bit(next, static_cast<u32>(rng.below(64)),
                      rng.chance(0.7));
    }
    const pcm::MlcWriteCost c =
        pcm::mlc_write_cost(old_word, next, mlc_params);
    cells.add(static_cast<double>(c.cells_changed));
    iters.add(static_cast<double>(c.total_iterations));
  }
  std::cout << "\nper 64-bit unit at Fig.3-like density: "
            << fixed(cells.mean(), 1) << " of 32 cells move levels, "
            << fixed(iters.mean(), 1) << " P&V iterations total\n";
  std::cout << "\nTakeaway: MLC stretches every write by the P&V train; "
               "the schemes keep\ntheir relative order, and the absolute "
               "gap between Tetris and the\nbaseline widens with the "
               "longer windows — supporting the paper's SLC\nfocus for "
               "write-sensitive deployments.\n";
  return 0;
}
