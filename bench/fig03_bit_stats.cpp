// Figure 3 reproduction: the number of RESET and SET bit-writes per
// 64-bit data unit (after data inversion), per PARSEC workload.
//
// Paper anchors: average 2.9 RESET + 6.7 SET (9.6 changed bits, ~15% of a
// unit); blackscholes ~2 total; vips ~19; vips and ferret near
// fifty-fifty; everything else SET-dominant.

#include <iostream>

#include "bench_util.hpp"
#include "tw/core/read_stage.hpp"
#include "tw/stats/accumulator.hpp"
#include "tw/workload/generator.hpp"

using namespace tw;

int main(int argc, char** argv) {
  const bench::Options o = bench::Options::parse(argc, argv);
  const u64 writes_per_workload = o.quick ? 1'000 : 8'000;

  std::cout << "Figure 3: RESET/SET bit-writes per 64-bit data unit\n"
            << "===================================================\n"
            << "(measured by the Tetris read stage on generated writes, "
            << writes_per_workload << " writes/workload)\n\n";

  AsciiTable t;
  t.set_header({"workload", "RESET", "SET", "total", "bar (SET=#, RESET=*)",
                "paper R", "paper S"});

  stats::Accumulator all_r, all_s;
  const pcm::GeometryParams g;
  for (const auto& p : workload::parsec_profiles()) {
    mem::DataStore store(g.units_per_line(), o.seed,
                         p.initial_ones_fraction);
    workload::TraceGenerator gen(p, g, 1, o.seed + 1);
    stats::Accumulator r_acc, s_acc;
    u64 writes = 0;
    while (writes < writes_per_workload) {
      const workload::TraceOp op = gen.next(0);
      if (!op.is_write) continue;
      const pcm::LogicalLine next = gen.make_write_data(op.addr, store, 0);
      pcm::LineBuf& line = store.line(op.addr);
      const core::ReadStageResult rs = core::read_stage(line, next, 64);
      for (const auto& c : rs.counts) {
        r_acc.add(static_cast<double>(c.n0));
        s_acc.add(static_cast<double>(c.n1));
      }
      schemes::apply_plans(line, rs.plans);
      ++writes;
    }
    all_r.merge(r_acc);
    all_s.merge(s_acc);

    const int bar_s = static_cast<int>(s_acc.mean() + 0.5);
    const int bar_r = static_cast<int>(r_acc.mean() + 0.5);
    t.add_row({p.name, fixed(r_acc.mean(), 2), fixed(s_acc.mean(), 2),
               fixed(r_acc.mean() + s_acc.mean(), 2),
               std::string(static_cast<std::size_t>(bar_s), '#') +
                   std::string(static_cast<std::size_t>(bar_r), '*'),
               fixed(p.fig3_resets, 1), fixed(p.fig3_sets, 1)});
  }
  t.add_separator();
  t.add_row({"average", fixed(all_r.mean(), 2), fixed(all_s.mean(), 2),
             fixed(all_r.mean() + all_s.mean(), 2), "",
             "2.9", "6.7"});
  t.print(std::cout);

  const double total = all_r.mean() + all_s.mean();
  std::cout << "\nmeasured average " << fixed(total, 2)
            << " changed bits/unit (" << pct(total / 64.0)
            << " of a unit); paper: 9.6 (15%)\n";
  const bool ok = total > 7.0 && total < 12.5 && all_s.mean() > all_r.mean();
  std::cout << (ok ? "shape: OK — sparse and SET-dominant as in the paper\n"
                   : "shape: MISMATCH\n");
  return ok ? 0 : 1;
}
