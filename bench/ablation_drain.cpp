// Ablation 7: the write-drain policy. The paper's controller services
// writes only when the 32-entry write queue is full, which is why
// read-dominant blackscholes/swaptions show *long* write latencies even
// under Tetris (Section V.B.3). This bench contrasts the strict policy
// with opportunistic draining.

#include <iostream>

#include "bench_util.hpp"

using namespace tw;

int main(int argc, char** argv) {
  const bench::Options o = bench::Options::parse(argc, argv);

  std::cout << "Ablation: write-drain policy (Tetris Write)\n"
            << "===========================================\n"
            << "(strict = issue writes only when the queue fills, as in "
               "the paper)\n\n";

  AsciiTable t;
  t.set_header({"workload", "strict write lat (us)", "oppo write lat (us)",
                "strict read lat (ns)", "oppo read lat (ns)"});
  for (const auto& p : workload::parsec_profiles()) {
    harness::SystemConfig cfg = bench::system_config(p, o);
    const harness::RunMetrics strict =
        harness::run_system(cfg, p, schemes::SchemeKind::kTetris);
    cfg.controller.drain =
        mem::ControllerConfig::DrainPolicy::kOpportunistic;
    const harness::RunMetrics oppo =
        harness::run_system(cfg, p, schemes::SchemeKind::kTetris);
    t.add_row({p.name, fixed(strict.write_latency_ns / 1000.0, 1),
               fixed(oppo.write_latency_ns / 1000.0, 1),
               fixed(strict.read_latency_ns, 0),
               fixed(oppo.read_latency_ns, 0)});
  }
  t.print(std::cout);

  std::cout << "\nTakeaway: strict draining trades write latency (requests "
               "age in a\nrarely-full queue on read-dominant workloads) "
               "for read latency (banks\nstay free for reads) — exactly "
               "the paper's explanation for the\nblackscholes/swaptions "
               "write-latency anomaly in Fig. 12.\n";
  return 0;
}
