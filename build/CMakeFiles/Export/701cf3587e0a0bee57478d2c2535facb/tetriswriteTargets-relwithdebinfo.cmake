#----------------------------------------------------------------
# Generated CMake target import file for configuration "RelWithDebInfo".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "tw::tw_common" for configuration "RelWithDebInfo"
set_property(TARGET tw::tw_common APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(tw::tw_common PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libtw_common.a"
  )

list(APPEND _cmake_import_check_targets tw::tw_common )
list(APPEND _cmake_import_check_files_for_tw::tw_common "${_IMPORT_PREFIX}/lib/libtw_common.a" )

# Import target "tw::tw_stats" for configuration "RelWithDebInfo"
set_property(TARGET tw::tw_stats APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(tw::tw_stats PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libtw_stats.a"
  )

list(APPEND _cmake_import_check_targets tw::tw_stats )
list(APPEND _cmake_import_check_files_for_tw::tw_stats "${_IMPORT_PREFIX}/lib/libtw_stats.a" )

# Import target "tw::tw_sim" for configuration "RelWithDebInfo"
set_property(TARGET tw::tw_sim APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(tw::tw_sim PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libtw_sim.a"
  )

list(APPEND _cmake_import_check_targets tw::tw_sim )
list(APPEND _cmake_import_check_files_for_tw::tw_sim "${_IMPORT_PREFIX}/lib/libtw_sim.a" )

# Import target "tw::tw_pcm" for configuration "RelWithDebInfo"
set_property(TARGET tw::tw_pcm APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(tw::tw_pcm PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libtw_pcm.a"
  )

list(APPEND _cmake_import_check_targets tw::tw_pcm )
list(APPEND _cmake_import_check_files_for_tw::tw_pcm "${_IMPORT_PREFIX}/lib/libtw_pcm.a" )

# Import target "tw::tw_schemes" for configuration "RelWithDebInfo"
set_property(TARGET tw::tw_schemes APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(tw::tw_schemes PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libtw_schemes.a"
  )

list(APPEND _cmake_import_check_targets tw::tw_schemes )
list(APPEND _cmake_import_check_files_for_tw::tw_schemes "${_IMPORT_PREFIX}/lib/libtw_schemes.a" )

# Import target "tw::tw_core" for configuration "RelWithDebInfo"
set_property(TARGET tw::tw_core APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(tw::tw_core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libtw_core.a"
  )

list(APPEND _cmake_import_check_targets tw::tw_core )
list(APPEND _cmake_import_check_files_for_tw::tw_core "${_IMPORT_PREFIX}/lib/libtw_core.a" )

# Import target "tw::tw_mem" for configuration "RelWithDebInfo"
set_property(TARGET tw::tw_mem APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(tw::tw_mem PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libtw_mem.a"
  )

list(APPEND _cmake_import_check_targets tw::tw_mem )
list(APPEND _cmake_import_check_files_for_tw::tw_mem "${_IMPORT_PREFIX}/lib/libtw_mem.a" )

# Import target "tw::tw_cache" for configuration "RelWithDebInfo"
set_property(TARGET tw::tw_cache APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(tw::tw_cache PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libtw_cache.a"
  )

list(APPEND _cmake_import_check_targets tw::tw_cache )
list(APPEND _cmake_import_check_files_for_tw::tw_cache "${_IMPORT_PREFIX}/lib/libtw_cache.a" )

# Import target "tw::tw_cpu" for configuration "RelWithDebInfo"
set_property(TARGET tw::tw_cpu APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(tw::tw_cpu PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libtw_cpu.a"
  )

list(APPEND _cmake_import_check_targets tw::tw_cpu )
list(APPEND _cmake_import_check_files_for_tw::tw_cpu "${_IMPORT_PREFIX}/lib/libtw_cpu.a" )

# Import target "tw::tw_workload" for configuration "RelWithDebInfo"
set_property(TARGET tw::tw_workload APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(tw::tw_workload PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libtw_workload.a"
  )

list(APPEND _cmake_import_check_targets tw::tw_workload )
list(APPEND _cmake_import_check_files_for_tw::tw_workload "${_IMPORT_PREFIX}/lib/libtw_workload.a" )

# Import target "tw::tw_harness" for configuration "RelWithDebInfo"
set_property(TARGET tw::tw_harness APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(tw::tw_harness PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libtw_harness.a"
  )

list(APPEND _cmake_import_check_targets tw::tw_harness )
list(APPEND _cmake_import_check_files_for_tw::tw_harness "${_IMPORT_PREFIX}/lib/libtw_harness.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
