file(REMOVE_RECURSE
  "CMakeFiles/timing_diagram.dir/timing_diagram.cpp.o"
  "CMakeFiles/timing_diagram.dir/timing_diagram.cpp.o.d"
  "timing_diagram"
  "timing_diagram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_diagram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
