# Empty compiler generated dependencies file for timing_diagram.
# This may be replaced when dependencies are built.
