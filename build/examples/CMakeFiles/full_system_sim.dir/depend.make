# Empty dependencies file for full_system_sim.
# This may be replaced when dependencies are built.
