file(REMOVE_RECURSE
  "CMakeFiles/full_system_sim.dir/full_system_sim.cpp.o"
  "CMakeFiles/full_system_sim.dir/full_system_sim.cpp.o.d"
  "full_system_sim"
  "full_system_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_system_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
