# Empty compiler generated dependencies file for wear_analysis.
# This may be replaced when dependencies are built.
