file(REMOVE_RECURSE
  "CMakeFiles/wear_analysis.dir/wear_analysis.cpp.o"
  "CMakeFiles/wear_analysis.dir/wear_analysis.cpp.o.d"
  "wear_analysis"
  "wear_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wear_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
