file(REMOVE_RECURSE
  "CMakeFiles/scheme_explorer.dir/scheme_explorer.cpp.o"
  "CMakeFiles/scheme_explorer.dir/scheme_explorer.cpp.o.d"
  "scheme_explorer"
  "scheme_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheme_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
