# Empty dependencies file for scheme_explorer.
# This may be replaced when dependencies are built.
