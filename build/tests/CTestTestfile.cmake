# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/pcm_test[1]_include.cmake")
include("/root/repo/build/tests/schemes_test[1]_include.cmake")
include("/root/repo/build/tests/packer_test[1]_include.cmake")
include("/root/repo/build/tests/fsm_test[1]_include.cmake")
include("/root/repo/build/tests/tetris_scheme_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/features_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/subarray_test[1]_include.cmake")
include("/root/repo/build/tests/aux_test[1]_include.cmake")
include("/root/repo/build/tests/hw_executor_test[1]_include.cmake")
include("/root/repo/build/tests/combo_test[1]_include.cmake")
