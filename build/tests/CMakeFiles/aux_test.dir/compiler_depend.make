# Empty compiler generated dependencies file for aux_test.
# This may be replaced when dependencies are built.
