file(REMOVE_RECURSE
  "CMakeFiles/aux_test.dir/aux_test.cpp.o"
  "CMakeFiles/aux_test.dir/aux_test.cpp.o.d"
  "aux_test"
  "aux_test.pdb"
  "aux_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aux_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
