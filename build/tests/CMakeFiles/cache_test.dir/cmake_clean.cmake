file(REMOVE_RECURSE
  "CMakeFiles/cache_test.dir/cache_test.cpp.o"
  "CMakeFiles/cache_test.dir/cache_test.cpp.o.d"
  "cache_test"
  "cache_test.pdb"
  "cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
