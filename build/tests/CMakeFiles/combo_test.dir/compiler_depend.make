# Empty compiler generated dependencies file for combo_test.
# This may be replaced when dependencies are built.
