file(REMOVE_RECURSE
  "CMakeFiles/combo_test.dir/combo_test.cpp.o"
  "CMakeFiles/combo_test.dir/combo_test.cpp.o.d"
  "combo_test"
  "combo_test.pdb"
  "combo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/combo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
