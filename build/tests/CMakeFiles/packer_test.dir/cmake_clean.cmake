file(REMOVE_RECURSE
  "CMakeFiles/packer_test.dir/packer_test.cpp.o"
  "CMakeFiles/packer_test.dir/packer_test.cpp.o.d"
  "packer_test"
  "packer_test.pdb"
  "packer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
