# Empty compiler generated dependencies file for packer_test.
# This may be replaced when dependencies are built.
