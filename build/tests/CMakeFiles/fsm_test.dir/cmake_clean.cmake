file(REMOVE_RECURSE
  "CMakeFiles/fsm_test.dir/fsm_test.cpp.o"
  "CMakeFiles/fsm_test.dir/fsm_test.cpp.o.d"
  "fsm_test"
  "fsm_test.pdb"
  "fsm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
