# Empty compiler generated dependencies file for fsm_test.
# This may be replaced when dependencies are built.
