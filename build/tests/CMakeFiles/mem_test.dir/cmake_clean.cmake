file(REMOVE_RECURSE
  "CMakeFiles/mem_test.dir/mem_test.cpp.o"
  "CMakeFiles/mem_test.dir/mem_test.cpp.o.d"
  "mem_test"
  "mem_test.pdb"
  "mem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
