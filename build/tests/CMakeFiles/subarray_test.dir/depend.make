# Empty dependencies file for subarray_test.
# This may be replaced when dependencies are built.
