file(REMOVE_RECURSE
  "CMakeFiles/subarray_test.dir/subarray_test.cpp.o"
  "CMakeFiles/subarray_test.dir/subarray_test.cpp.o.d"
  "subarray_test"
  "subarray_test.pdb"
  "subarray_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subarray_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
