file(REMOVE_RECURSE
  "CMakeFiles/hw_executor_test.dir/hw_executor_test.cpp.o"
  "CMakeFiles/hw_executor_test.dir/hw_executor_test.cpp.o.d"
  "hw_executor_test"
  "hw_executor_test.pdb"
  "hw_executor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
