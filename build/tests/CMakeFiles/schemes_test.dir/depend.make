# Empty dependencies file for schemes_test.
# This may be replaced when dependencies are built.
