file(REMOVE_RECURSE
  "CMakeFiles/schemes_test.dir/schemes_test.cpp.o"
  "CMakeFiles/schemes_test.dir/schemes_test.cpp.o.d"
  "schemes_test"
  "schemes_test.pdb"
  "schemes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schemes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
