# Empty dependencies file for tetris_scheme_test.
# This may be replaced when dependencies are built.
