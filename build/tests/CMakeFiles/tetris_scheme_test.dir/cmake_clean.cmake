file(REMOVE_RECURSE
  "CMakeFiles/tetris_scheme_test.dir/tetris_scheme_test.cpp.o"
  "CMakeFiles/tetris_scheme_test.dir/tetris_scheme_test.cpp.o.d"
  "tetris_scheme_test"
  "tetris_scheme_test.pdb"
  "tetris_scheme_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tetris_scheme_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
