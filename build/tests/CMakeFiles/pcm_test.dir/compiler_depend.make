# Empty compiler generated dependencies file for pcm_test.
# This may be replaced when dependencies are built.
