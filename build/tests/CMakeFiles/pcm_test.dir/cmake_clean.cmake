file(REMOVE_RECURSE
  "CMakeFiles/pcm_test.dir/pcm_test.cpp.o"
  "CMakeFiles/pcm_test.dir/pcm_test.cpp.o.d"
  "pcm_test"
  "pcm_test.pdb"
  "pcm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
