include(CMakeFindDependencyMacro)
find_dependency(Threads)
include("${CMAKE_CURRENT_LIST_DIR}/tetriswriteTargets.cmake")
