
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tw/cpu/core.cpp" "src/tw/cpu/CMakeFiles/tw_cpu.dir/core.cpp.o" "gcc" "src/tw/cpu/CMakeFiles/tw_cpu.dir/core.cpp.o.d"
  "/root/repo/src/tw/cpu/multicore.cpp" "src/tw/cpu/CMakeFiles/tw_cpu.dir/multicore.cpp.o" "gcc" "src/tw/cpu/CMakeFiles/tw_cpu.dir/multicore.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tw/common/CMakeFiles/tw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tw/stats/CMakeFiles/tw_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/tw/sim/CMakeFiles/tw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tw/mem/CMakeFiles/tw_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/tw/workload/CMakeFiles/tw_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/tw/schemes/CMakeFiles/tw_schemes.dir/DependInfo.cmake"
  "/root/repo/build/src/tw/pcm/CMakeFiles/tw_pcm.dir/DependInfo.cmake"
  "/root/repo/build/src/tw/cache/CMakeFiles/tw_cache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
