# Empty dependencies file for tw_cpu.
# This may be replaced when dependencies are built.
