file(REMOVE_RECURSE
  "libtw_cpu.a"
)
