file(REMOVE_RECURSE
  "CMakeFiles/tw_cpu.dir/core.cpp.o"
  "CMakeFiles/tw_cpu.dir/core.cpp.o.d"
  "CMakeFiles/tw_cpu.dir/multicore.cpp.o"
  "CMakeFiles/tw_cpu.dir/multicore.cpp.o.d"
  "libtw_cpu.a"
  "libtw_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tw_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
