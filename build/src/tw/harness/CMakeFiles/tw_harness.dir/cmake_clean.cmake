file(REMOVE_RECURSE
  "CMakeFiles/tw_harness.dir/config_file.cpp.o"
  "CMakeFiles/tw_harness.dir/config_file.cpp.o.d"
  "CMakeFiles/tw_harness.dir/experiment.cpp.o"
  "CMakeFiles/tw_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/tw_harness.dir/figure.cpp.o"
  "CMakeFiles/tw_harness.dir/figure.cpp.o.d"
  "CMakeFiles/tw_harness.dir/repeated.cpp.o"
  "CMakeFiles/tw_harness.dir/repeated.cpp.o.d"
  "libtw_harness.a"
  "libtw_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tw_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
