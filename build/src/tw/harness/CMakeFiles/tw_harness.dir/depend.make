# Empty dependencies file for tw_harness.
# This may be replaced when dependencies are built.
