file(REMOVE_RECURSE
  "libtw_harness.a"
)
