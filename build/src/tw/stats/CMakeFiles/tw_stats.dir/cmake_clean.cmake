file(REMOVE_RECURSE
  "CMakeFiles/tw_stats.dir/histogram.cpp.o"
  "CMakeFiles/tw_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/tw_stats.dir/registry.cpp.o"
  "CMakeFiles/tw_stats.dir/registry.cpp.o.d"
  "libtw_stats.a"
  "libtw_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tw_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
