
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tw/stats/histogram.cpp" "src/tw/stats/CMakeFiles/tw_stats.dir/histogram.cpp.o" "gcc" "src/tw/stats/CMakeFiles/tw_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/tw/stats/registry.cpp" "src/tw/stats/CMakeFiles/tw_stats.dir/registry.cpp.o" "gcc" "src/tw/stats/CMakeFiles/tw_stats.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tw/common/CMakeFiles/tw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
