file(REMOVE_RECURSE
  "libtw_stats.a"
)
