# Empty compiler generated dependencies file for tw_stats.
# This may be replaced when dependencies are built.
