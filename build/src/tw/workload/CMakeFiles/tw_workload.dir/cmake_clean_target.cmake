file(REMOVE_RECURSE
  "libtw_workload.a"
)
