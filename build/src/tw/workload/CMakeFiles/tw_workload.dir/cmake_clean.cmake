file(REMOVE_RECURSE
  "CMakeFiles/tw_workload.dir/cache_filtered.cpp.o"
  "CMakeFiles/tw_workload.dir/cache_filtered.cpp.o.d"
  "CMakeFiles/tw_workload.dir/generator.cpp.o"
  "CMakeFiles/tw_workload.dir/generator.cpp.o.d"
  "CMakeFiles/tw_workload.dir/profiles.cpp.o"
  "CMakeFiles/tw_workload.dir/profiles.cpp.o.d"
  "CMakeFiles/tw_workload.dir/replay.cpp.o"
  "CMakeFiles/tw_workload.dir/replay.cpp.o.d"
  "CMakeFiles/tw_workload.dir/trace_io.cpp.o"
  "CMakeFiles/tw_workload.dir/trace_io.cpp.o.d"
  "libtw_workload.a"
  "libtw_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tw_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
