# Empty dependencies file for tw_workload.
# This may be replaced when dependencies are built.
