# Empty compiler generated dependencies file for tw_sim.
# This may be replaced when dependencies are built.
