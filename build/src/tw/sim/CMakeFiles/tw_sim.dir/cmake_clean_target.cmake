file(REMOVE_RECURSE
  "libtw_sim.a"
)
