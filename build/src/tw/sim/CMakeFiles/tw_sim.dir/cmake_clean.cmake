file(REMOVE_RECURSE
  "CMakeFiles/tw_sim.dir/simulator.cpp.o"
  "CMakeFiles/tw_sim.dir/simulator.cpp.o.d"
  "libtw_sim.a"
  "libtw_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tw_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
