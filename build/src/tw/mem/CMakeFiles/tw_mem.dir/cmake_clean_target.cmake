file(REMOVE_RECURSE
  "libtw_mem.a"
)
