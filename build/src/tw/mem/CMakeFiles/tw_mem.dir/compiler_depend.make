# Empty compiler generated dependencies file for tw_mem.
# This may be replaced when dependencies are built.
