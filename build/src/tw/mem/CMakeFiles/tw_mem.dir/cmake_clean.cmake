file(REMOVE_RECURSE
  "CMakeFiles/tw_mem.dir/controller.cpp.o"
  "CMakeFiles/tw_mem.dir/controller.cpp.o.d"
  "CMakeFiles/tw_mem.dir/data_store.cpp.o"
  "CMakeFiles/tw_mem.dir/data_store.cpp.o.d"
  "CMakeFiles/tw_mem.dir/start_gap.cpp.o"
  "CMakeFiles/tw_mem.dir/start_gap.cpp.o.d"
  "libtw_mem.a"
  "libtw_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tw_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
