file(REMOVE_RECURSE
  "CMakeFiles/tw_pcm.dir/array.cpp.o"
  "CMakeFiles/tw_pcm.dir/array.cpp.o.d"
  "CMakeFiles/tw_pcm.dir/mlc.cpp.o"
  "CMakeFiles/tw_pcm.dir/mlc.cpp.o.d"
  "CMakeFiles/tw_pcm.dir/params.cpp.o"
  "CMakeFiles/tw_pcm.dir/params.cpp.o.d"
  "libtw_pcm.a"
  "libtw_pcm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tw_pcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
