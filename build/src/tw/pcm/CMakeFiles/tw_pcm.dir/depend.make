# Empty dependencies file for tw_pcm.
# This may be replaced when dependencies are built.
