file(REMOVE_RECURSE
  "libtw_pcm.a"
)
