# Empty dependencies file for tw_cache.
# This may be replaced when dependencies are built.
