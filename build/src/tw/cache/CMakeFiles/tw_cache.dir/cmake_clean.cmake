file(REMOVE_RECURSE
  "CMakeFiles/tw_cache.dir/cache.cpp.o"
  "CMakeFiles/tw_cache.dir/cache.cpp.o.d"
  "CMakeFiles/tw_cache.dir/hierarchy.cpp.o"
  "CMakeFiles/tw_cache.dir/hierarchy.cpp.o.d"
  "libtw_cache.a"
  "libtw_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tw_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
