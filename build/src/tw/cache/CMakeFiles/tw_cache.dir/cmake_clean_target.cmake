file(REMOVE_RECURSE
  "libtw_cache.a"
)
