
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tw/core/datapath.cpp" "src/tw/core/CMakeFiles/tw_core.dir/datapath.cpp.o" "gcc" "src/tw/core/CMakeFiles/tw_core.dir/datapath.cpp.o.d"
  "/root/repo/src/tw/core/factory.cpp" "src/tw/core/CMakeFiles/tw_core.dir/factory.cpp.o" "gcc" "src/tw/core/CMakeFiles/tw_core.dir/factory.cpp.o.d"
  "/root/repo/src/tw/core/fsm.cpp" "src/tw/core/CMakeFiles/tw_core.dir/fsm.cpp.o" "gcc" "src/tw/core/CMakeFiles/tw_core.dir/fsm.cpp.o.d"
  "/root/repo/src/tw/core/hw_executor.cpp" "src/tw/core/CMakeFiles/tw_core.dir/hw_executor.cpp.o" "gcc" "src/tw/core/CMakeFiles/tw_core.dir/hw_executor.cpp.o.d"
  "/root/repo/src/tw/core/packer.cpp" "src/tw/core/CMakeFiles/tw_core.dir/packer.cpp.o" "gcc" "src/tw/core/CMakeFiles/tw_core.dir/packer.cpp.o.d"
  "/root/repo/src/tw/core/read_stage.cpp" "src/tw/core/CMakeFiles/tw_core.dir/read_stage.cpp.o" "gcc" "src/tw/core/CMakeFiles/tw_core.dir/read_stage.cpp.o.d"
  "/root/repo/src/tw/core/tetris_scheme.cpp" "src/tw/core/CMakeFiles/tw_core.dir/tetris_scheme.cpp.o" "gcc" "src/tw/core/CMakeFiles/tw_core.dir/tetris_scheme.cpp.o.d"
  "/root/repo/src/tw/core/write_driver.cpp" "src/tw/core/CMakeFiles/tw_core.dir/write_driver.cpp.o" "gcc" "src/tw/core/CMakeFiles/tw_core.dir/write_driver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tw/common/CMakeFiles/tw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tw/pcm/CMakeFiles/tw_pcm.dir/DependInfo.cmake"
  "/root/repo/build/src/tw/schemes/CMakeFiles/tw_schemes.dir/DependInfo.cmake"
  "/root/repo/build/src/tw/stats/CMakeFiles/tw_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
