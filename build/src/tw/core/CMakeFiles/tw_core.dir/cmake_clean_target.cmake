file(REMOVE_RECURSE
  "libtw_core.a"
)
