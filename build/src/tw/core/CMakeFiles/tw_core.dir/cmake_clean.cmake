file(REMOVE_RECURSE
  "CMakeFiles/tw_core.dir/datapath.cpp.o"
  "CMakeFiles/tw_core.dir/datapath.cpp.o.d"
  "CMakeFiles/tw_core.dir/factory.cpp.o"
  "CMakeFiles/tw_core.dir/factory.cpp.o.d"
  "CMakeFiles/tw_core.dir/fsm.cpp.o"
  "CMakeFiles/tw_core.dir/fsm.cpp.o.d"
  "CMakeFiles/tw_core.dir/hw_executor.cpp.o"
  "CMakeFiles/tw_core.dir/hw_executor.cpp.o.d"
  "CMakeFiles/tw_core.dir/packer.cpp.o"
  "CMakeFiles/tw_core.dir/packer.cpp.o.d"
  "CMakeFiles/tw_core.dir/read_stage.cpp.o"
  "CMakeFiles/tw_core.dir/read_stage.cpp.o.d"
  "CMakeFiles/tw_core.dir/tetris_scheme.cpp.o"
  "CMakeFiles/tw_core.dir/tetris_scheme.cpp.o.d"
  "CMakeFiles/tw_core.dir/write_driver.cpp.o"
  "CMakeFiles/tw_core.dir/write_driver.cpp.o.d"
  "libtw_core.a"
  "libtw_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tw_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
