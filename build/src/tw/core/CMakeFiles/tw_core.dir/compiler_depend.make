# Empty compiler generated dependencies file for tw_core.
# This may be replaced when dependencies are built.
