# Empty dependencies file for tw_core.
# This may be replaced when dependencies are built.
