file(REMOVE_RECURSE
  "CMakeFiles/tw_schemes.dir/conventional.cpp.o"
  "CMakeFiles/tw_schemes.dir/conventional.cpp.o.d"
  "CMakeFiles/tw_schemes.dir/dcw.cpp.o"
  "CMakeFiles/tw_schemes.dir/dcw.cpp.o.d"
  "CMakeFiles/tw_schemes.dir/factory.cpp.o"
  "CMakeFiles/tw_schemes.dir/factory.cpp.o.d"
  "CMakeFiles/tw_schemes.dir/flip_n_write.cpp.o"
  "CMakeFiles/tw_schemes.dir/flip_n_write.cpp.o.d"
  "CMakeFiles/tw_schemes.dir/prep.cpp.o"
  "CMakeFiles/tw_schemes.dir/prep.cpp.o.d"
  "CMakeFiles/tw_schemes.dir/preset.cpp.o"
  "CMakeFiles/tw_schemes.dir/preset.cpp.o.d"
  "CMakeFiles/tw_schemes.dir/three_stage.cpp.o"
  "CMakeFiles/tw_schemes.dir/three_stage.cpp.o.d"
  "CMakeFiles/tw_schemes.dir/two_stage.cpp.o"
  "CMakeFiles/tw_schemes.dir/two_stage.cpp.o.d"
  "libtw_schemes.a"
  "libtw_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tw_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
