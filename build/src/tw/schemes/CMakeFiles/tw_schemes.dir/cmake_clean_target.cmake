file(REMOVE_RECURSE
  "libtw_schemes.a"
)
