
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tw/schemes/conventional.cpp" "src/tw/schemes/CMakeFiles/tw_schemes.dir/conventional.cpp.o" "gcc" "src/tw/schemes/CMakeFiles/tw_schemes.dir/conventional.cpp.o.d"
  "/root/repo/src/tw/schemes/dcw.cpp" "src/tw/schemes/CMakeFiles/tw_schemes.dir/dcw.cpp.o" "gcc" "src/tw/schemes/CMakeFiles/tw_schemes.dir/dcw.cpp.o.d"
  "/root/repo/src/tw/schemes/factory.cpp" "src/tw/schemes/CMakeFiles/tw_schemes.dir/factory.cpp.o" "gcc" "src/tw/schemes/CMakeFiles/tw_schemes.dir/factory.cpp.o.d"
  "/root/repo/src/tw/schemes/flip_n_write.cpp" "src/tw/schemes/CMakeFiles/tw_schemes.dir/flip_n_write.cpp.o" "gcc" "src/tw/schemes/CMakeFiles/tw_schemes.dir/flip_n_write.cpp.o.d"
  "/root/repo/src/tw/schemes/prep.cpp" "src/tw/schemes/CMakeFiles/tw_schemes.dir/prep.cpp.o" "gcc" "src/tw/schemes/CMakeFiles/tw_schemes.dir/prep.cpp.o.d"
  "/root/repo/src/tw/schemes/preset.cpp" "src/tw/schemes/CMakeFiles/tw_schemes.dir/preset.cpp.o" "gcc" "src/tw/schemes/CMakeFiles/tw_schemes.dir/preset.cpp.o.d"
  "/root/repo/src/tw/schemes/three_stage.cpp" "src/tw/schemes/CMakeFiles/tw_schemes.dir/three_stage.cpp.o" "gcc" "src/tw/schemes/CMakeFiles/tw_schemes.dir/three_stage.cpp.o.d"
  "/root/repo/src/tw/schemes/two_stage.cpp" "src/tw/schemes/CMakeFiles/tw_schemes.dir/two_stage.cpp.o" "gcc" "src/tw/schemes/CMakeFiles/tw_schemes.dir/two_stage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tw/common/CMakeFiles/tw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tw/pcm/CMakeFiles/tw_pcm.dir/DependInfo.cmake"
  "/root/repo/build/src/tw/stats/CMakeFiles/tw_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
