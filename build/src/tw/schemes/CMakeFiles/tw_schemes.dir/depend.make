# Empty dependencies file for tw_schemes.
# This may be replaced when dependencies are built.
