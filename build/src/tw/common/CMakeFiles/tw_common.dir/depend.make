# Empty dependencies file for tw_common.
# This may be replaced when dependencies are built.
