file(REMOVE_RECURSE
  "libtw_common.a"
)
