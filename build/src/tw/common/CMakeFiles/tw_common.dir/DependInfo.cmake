
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tw/common/csv.cpp" "src/tw/common/CMakeFiles/tw_common.dir/csv.cpp.o" "gcc" "src/tw/common/CMakeFiles/tw_common.dir/csv.cpp.o.d"
  "/root/repo/src/tw/common/parallel.cpp" "src/tw/common/CMakeFiles/tw_common.dir/parallel.cpp.o" "gcc" "src/tw/common/CMakeFiles/tw_common.dir/parallel.cpp.o.d"
  "/root/repo/src/tw/common/strings.cpp" "src/tw/common/CMakeFiles/tw_common.dir/strings.cpp.o" "gcc" "src/tw/common/CMakeFiles/tw_common.dir/strings.cpp.o.d"
  "/root/repo/src/tw/common/svg.cpp" "src/tw/common/CMakeFiles/tw_common.dir/svg.cpp.o" "gcc" "src/tw/common/CMakeFiles/tw_common.dir/svg.cpp.o.d"
  "/root/repo/src/tw/common/table.cpp" "src/tw/common/CMakeFiles/tw_common.dir/table.cpp.o" "gcc" "src/tw/common/CMakeFiles/tw_common.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
