file(REMOVE_RECURSE
  "CMakeFiles/tw_common.dir/csv.cpp.o"
  "CMakeFiles/tw_common.dir/csv.cpp.o.d"
  "CMakeFiles/tw_common.dir/parallel.cpp.o"
  "CMakeFiles/tw_common.dir/parallel.cpp.o.d"
  "CMakeFiles/tw_common.dir/strings.cpp.o"
  "CMakeFiles/tw_common.dir/strings.cpp.o.d"
  "CMakeFiles/tw_common.dir/svg.cpp.o"
  "CMakeFiles/tw_common.dir/svg.cpp.o.d"
  "CMakeFiles/tw_common.dir/table.cpp.o"
  "CMakeFiles/tw_common.dir/table.cpp.o.d"
  "libtw_common.a"
  "libtw_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tw_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
