file(REMOVE_RECURSE
  "CMakeFiles/fig10_write_units.dir/fig10_write_units.cpp.o"
  "CMakeFiles/fig10_write_units.dir/fig10_write_units.cpp.o.d"
  "fig10_write_units"
  "fig10_write_units.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_write_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
