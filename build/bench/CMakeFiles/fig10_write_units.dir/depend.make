# Empty dependencies file for fig10_write_units.
# This may be replaced when dependencies are built.
