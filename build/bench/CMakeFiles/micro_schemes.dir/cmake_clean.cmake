file(REMOVE_RECURSE
  "CMakeFiles/micro_schemes.dir/micro_schemes.cpp.o"
  "CMakeFiles/micro_schemes.dir/micro_schemes.cpp.o.d"
  "micro_schemes"
  "micro_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
