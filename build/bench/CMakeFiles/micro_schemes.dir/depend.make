# Empty dependencies file for micro_schemes.
# This may be replaced when dependencies are built.
