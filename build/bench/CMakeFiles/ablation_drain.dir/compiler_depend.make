# Empty compiler generated dependencies file for ablation_drain.
# This may be replaced when dependencies are built.
