file(REMOVE_RECURSE
  "CMakeFiles/ablation_drain.dir/ablation_drain.cpp.o"
  "CMakeFiles/ablation_drain.dir/ablation_drain.cpp.o.d"
  "ablation_drain"
  "ablation_drain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_drain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
