file(REMOVE_RECURSE
  "CMakeFiles/ablation_asymmetry.dir/ablation_asymmetry.cpp.o"
  "CMakeFiles/ablation_asymmetry.dir/ablation_asymmetry.cpp.o.d"
  "ablation_asymmetry"
  "ablation_asymmetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_asymmetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
