# Empty dependencies file for ablation_asymmetry.
# This may be replaced when dependencies are built.
