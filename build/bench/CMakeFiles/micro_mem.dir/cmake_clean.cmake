file(REMOVE_RECURSE
  "CMakeFiles/micro_mem.dir/micro_mem.cpp.o"
  "CMakeFiles/micro_mem.dir/micro_mem.cpp.o.d"
  "micro_mem"
  "micro_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
