# Empty dependencies file for micro_mem.
# This may be replaced when dependencies are built.
