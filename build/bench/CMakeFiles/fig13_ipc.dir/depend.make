# Empty dependencies file for fig13_ipc.
# This may be replaced when dependencies are built.
