file(REMOVE_RECURSE
  "CMakeFiles/fig13_ipc.dir/fig13_ipc.cpp.o"
  "CMakeFiles/fig13_ipc.dir/fig13_ipc.cpp.o.d"
  "fig13_ipc"
  "fig13_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
