# Empty compiler generated dependencies file for fig12_write_latency.
# This may be replaced when dependencies are built.
