file(REMOVE_RECURSE
  "CMakeFiles/fig12_write_latency.dir/fig12_write_latency.cpp.o"
  "CMakeFiles/fig12_write_latency.dir/fig12_write_latency.cpp.o.d"
  "fig12_write_latency"
  "fig12_write_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_write_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
