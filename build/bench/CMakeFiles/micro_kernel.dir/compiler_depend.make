# Empty compiler generated dependencies file for micro_kernel.
# This may be replaced when dependencies are built.
