# Empty compiler generated dependencies file for report_all.
# This may be replaced when dependencies are built.
