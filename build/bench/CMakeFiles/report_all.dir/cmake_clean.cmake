file(REMOVE_RECURSE
  "CMakeFiles/report_all.dir/report_all.cpp.o"
  "CMakeFiles/report_all.dir/report_all.cpp.o.d"
  "report_all"
  "report_all.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
