file(REMOVE_RECURSE
  "CMakeFiles/ablation_content_aware.dir/ablation_content_aware.cpp.o"
  "CMakeFiles/ablation_content_aware.dir/ablation_content_aware.cpp.o.d"
  "ablation_content_aware"
  "ablation_content_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_content_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
