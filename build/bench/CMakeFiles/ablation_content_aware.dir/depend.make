# Empty dependencies file for ablation_content_aware.
# This may be replaced when dependencies are built.
