file(REMOVE_RECURSE
  "CMakeFiles/fig11_read_latency.dir/fig11_read_latency.cpp.o"
  "CMakeFiles/fig11_read_latency.dir/fig11_read_latency.cpp.o.d"
  "fig11_read_latency"
  "fig11_read_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_read_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
