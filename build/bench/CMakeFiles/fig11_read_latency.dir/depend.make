# Empty dependencies file for fig11_read_latency.
# This may be replaced when dependencies are built.
