file(REMOVE_RECURSE
  "CMakeFiles/ablation_pausing.dir/ablation_pausing.cpp.o"
  "CMakeFiles/ablation_pausing.dir/ablation_pausing.cpp.o.d"
  "ablation_pausing"
  "ablation_pausing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pausing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
