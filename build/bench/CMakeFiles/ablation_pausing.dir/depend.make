# Empty dependencies file for ablation_pausing.
# This may be replaced when dependencies are built.
