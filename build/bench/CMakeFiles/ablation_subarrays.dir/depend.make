# Empty dependencies file for ablation_subarrays.
# This may be replaced when dependencies are built.
