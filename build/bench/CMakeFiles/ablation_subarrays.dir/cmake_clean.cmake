file(REMOVE_RECURSE
  "CMakeFiles/ablation_subarrays.dir/ablation_subarrays.cpp.o"
  "CMakeFiles/ablation_subarrays.dir/ablation_subarrays.cpp.o.d"
  "ablation_subarrays"
  "ablation_subarrays.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_subarrays.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
