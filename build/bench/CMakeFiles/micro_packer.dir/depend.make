# Empty dependencies file for micro_packer.
# This may be replaced when dependencies are built.
