file(REMOVE_RECURSE
  "CMakeFiles/micro_packer.dir/micro_packer.cpp.o"
  "CMakeFiles/micro_packer.dir/micro_packer.cpp.o.d"
  "micro_packer"
  "micro_packer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_packer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
