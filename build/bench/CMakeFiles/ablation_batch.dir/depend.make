# Empty dependencies file for ablation_batch.
# This may be replaced when dependencies are built.
