file(REMOVE_RECURSE
  "CMakeFiles/ablation_batch.dir/ablation_batch.cpp.o"
  "CMakeFiles/ablation_batch.dir/ablation_batch.cpp.o.d"
  "ablation_batch"
  "ablation_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
