# Empty dependencies file for ablation_banks.
# This may be replaced when dependencies are built.
