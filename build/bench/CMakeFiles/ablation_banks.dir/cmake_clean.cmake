file(REMOVE_RECURSE
  "CMakeFiles/ablation_banks.dir/ablation_banks.cpp.o"
  "CMakeFiles/ablation_banks.dir/ablation_banks.cpp.o.d"
  "ablation_banks"
  "ablation_banks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_banks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
