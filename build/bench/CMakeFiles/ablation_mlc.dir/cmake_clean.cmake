file(REMOVE_RECURSE
  "CMakeFiles/ablation_mlc.dir/ablation_mlc.cpp.o"
  "CMakeFiles/ablation_mlc.dir/ablation_mlc.cpp.o.d"
  "ablation_mlc"
  "ablation_mlc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mlc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
