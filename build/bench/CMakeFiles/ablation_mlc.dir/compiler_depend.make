# Empty compiler generated dependencies file for ablation_mlc.
# This may be replaced when dependencies are built.
