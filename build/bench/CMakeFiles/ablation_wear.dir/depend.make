# Empty dependencies file for ablation_wear.
# This may be replaced when dependencies are built.
