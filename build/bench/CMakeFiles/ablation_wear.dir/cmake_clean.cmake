file(REMOVE_RECURSE
  "CMakeFiles/ablation_wear.dir/ablation_wear.cpp.o"
  "CMakeFiles/ablation_wear.dir/ablation_wear.cpp.o.d"
  "ablation_wear"
  "ablation_wear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
