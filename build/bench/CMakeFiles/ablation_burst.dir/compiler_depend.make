# Empty compiler generated dependencies file for ablation_burst.
# This may be replaced when dependencies are built.
