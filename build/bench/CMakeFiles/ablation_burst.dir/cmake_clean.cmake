file(REMOVE_RECURSE
  "CMakeFiles/ablation_burst.dir/ablation_burst.cpp.o"
  "CMakeFiles/ablation_burst.dir/ablation_burst.cpp.o.d"
  "ablation_burst"
  "ablation_burst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_burst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
