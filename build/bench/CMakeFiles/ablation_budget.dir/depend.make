# Empty dependencies file for ablation_budget.
# This may be replaced when dependencies are built.
