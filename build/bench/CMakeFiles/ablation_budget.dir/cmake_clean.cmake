file(REMOVE_RECURSE
  "CMakeFiles/ablation_budget.dir/ablation_budget.cpp.o"
  "CMakeFiles/ablation_budget.dir/ablation_budget.cpp.o.d"
  "ablation_budget"
  "ablation_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
