# Empty dependencies file for fig14_running_time.
# This may be replaced when dependencies are built.
