file(REMOVE_RECURSE
  "CMakeFiles/fig14_running_time.dir/fig14_running_time.cpp.o"
  "CMakeFiles/fig14_running_time.dir/fig14_running_time.cpp.o.d"
  "fig14_running_time"
  "fig14_running_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_running_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
