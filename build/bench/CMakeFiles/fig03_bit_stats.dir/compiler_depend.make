# Empty compiler generated dependencies file for fig03_bit_stats.
# This may be replaced when dependencies are built.
