file(REMOVE_RECURSE
  "CMakeFiles/fig03_bit_stats.dir/fig03_bit_stats.cpp.o"
  "CMakeFiles/fig03_bit_stats.dir/fig03_bit_stats.cpp.o.d"
  "fig03_bit_stats"
  "fig03_bit_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_bit_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
