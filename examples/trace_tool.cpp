// trace_tool: generate, inspect and convert workload traces.
//
//   $ ./trace_tool gen <workload> <ops_per_core> <out.trace> [cores] [seed]
//   $ ./trace_tool info <in.trace>
//
// The binary trace format is documented in tw/workload/trace_io.hpp.
// Traces make experiments replayable and let you diff request streams
// across configuration changes.

#include <iostream>
#include <map>
#include <string>

#include "tw/common/strings.hpp"
#include "tw/common/table.hpp"
#include "tw/stats/accumulator.hpp"
#include "tw/workload/trace_io.hpp"

using namespace tw;

namespace {

int cmd_gen(int argc, char** argv) {
  if (argc < 5) {
    std::cerr << "usage: trace_tool gen <workload> <ops_per_core> "
                 "<out.trace> [cores] [seed]\n";
    return 2;
  }
  const auto& profile = workload::profile_by_name(argv[2]);
  const u64 ops = std::strtoull(argv[3], nullptr, 10);
  const std::string path = argv[4];
  const u32 cores =
      argc > 5 ? static_cast<u32>(std::strtoul(argv[5], nullptr, 10)) : 4;
  const u64 seed = argc > 6 ? std::strtoull(argv[6], nullptr, 10) : 42;

  workload::TraceGenerator gen(profile, pcm::GeometryParams{}, cores, seed);
  const auto records = workload::capture(gen, cores, ops);
  workload::save_trace(path, records, cores);
  std::cout << "wrote " << records.size() << " records (" << cores
            << " cores x " << ops << " ops) to " << path << "\n";
  return 0;
}

int cmd_info(int argc, char** argv) {
  if (argc < 3) {
    std::cerr << "usage: trace_tool info <in.trace>\n";
    return 2;
  }
  u32 cores = 0;
  const auto records = workload::load_trace(argv[2], &cores);

  stats::Accumulator gaps;
  u64 writes = 0;
  std::map<u32, u64> per_core;
  std::map<Addr, u64> line_heat;
  for (const auto& r : records) {
    gaps.add(static_cast<double>(r.gap));
    writes += r.is_write ? 1 : 0;
    ++per_core[r.core];
    ++line_heat[r.addr];
  }
  u64 hottest = 0;
  for (const auto& [_, n] : line_heat) hottest = std::max(hottest, n);

  AsciiTable t;
  t.set_header({"property", "value"});
  t.add_row({"records", std::to_string(records.size())});
  t.add_row({"cores", std::to_string(cores)});
  t.add_row({"writes", std::to_string(writes) + " (" +
                           pct(static_cast<double>(writes) /
                               static_cast<double>(records.size())) +
                           ")"});
  t.add_row({"mean gap", fixed(gaps.mean(), 1) + " instructions"});
  t.add_row({"implied mem ops/kilo", fixed(1000.0 / gaps.mean(), 2)});
  t.add_row({"distinct lines", std::to_string(line_heat.size())});
  t.add_row({"hottest line touches", std::to_string(hottest)});
  t.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: trace_tool gen|info ...\n";
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    if (cmd == "gen") return cmd_gen(argc, argv);
    if (cmd == "info") return cmd_info(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  std::cerr << "unknown command: " << cmd << "\n";
  return 2;
}
