// timing_diagram: reproduce the paper's Figure 4 — a chip-level timing
// diagram of one cache-line write under each scheme — as ASCII art, for
// data you control.
//
//   $ ./timing_diagram [seed]
//
// Shows where every data unit's write-1 and write-0 execute under Tetris
// Write (from the real FSM trace) and the stage structure of the
// comparison schemes.

#include <iostream>
#include <string>
#include <vector>

#include "tw/common/rng.hpp"
#include "tw/common/strings.hpp"
#include "tw/core/factory.hpp"
#include "tw/core/fsm.hpp"

using namespace tw;

namespace {

// One column of the diagram per sub-write-unit (Tset/K = 53.75 ns).
std::string bar(Tick start, Tick end, Tick total, Tick col, char ch) {
  std::string s;
  for (Tick t = 0; t < total; t += col) {
    const bool covered = start < t + col && end > t;
    s += covered ? ch : '.';
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const u64 seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4;
  const pcm::PcmConfig cfg = pcm::table2_config();
  Rng rng(seed);

  // Build a workload-like line write: sparse, SET-dominant transitions.
  pcm::LineBuf line(8);
  for (u32 i = 0; i < 8; ++i) line.set_cell(i, rng.next());
  pcm::LogicalLine next = pcm::LogicalLine::from_physical(line);
  for (u32 i = 0; i < 8; ++i) {
    u64 w = next.word(i);
    const u32 flips = 2 + static_cast<u32>(rng.below(14));
    for (u32 b = 0; b < flips; ++b) {
      w = with_bit(w, static_cast<u32>(rng.below(64)), rng.chance(0.7));
    }
    next.set_word(i, w);
  }

  const core::TetrisScheme tetris(cfg);
  const core::TetrisAnalysis a = tetris.analyze(line, next);
  const core::FsmTrace trace =
      core::execute_fsms(a.pack, a.packer_cfg, cfg.timing);

  std::cout << "Tetris Write chip-level timing diagram (Fig. 4 style)\n"
            << "=====================================================\n\n";
  std::cout << "per-unit transition counts (after inversion):\n";
  for (const auto& c : a.read.counts) {
    std::cout << "  unit " << c.unit << ": " << c.n1 << " SET, " << c.n0
              << " RESET  (write-1 current " << c.n1 << ", write-0 current "
              << c.n0 * cfg.l() << ")\n";
  }

  const Tick col = cfg.timing.t_set / a.packer_cfg.k;  // one sub-slot
  const Tick total = std::max<Tick>(trace.schedule_length, col);
  std::cout << "\ntime -> (each column = one sub-write-unit, "
            << fixed(to_ns(col), 2) << " ns; total "
            << fixed(to_ns(trace.schedule_length), 1) << " ns = "
            << fixed(a.pack.write_unit_equiv(a.packer_cfg.k), 2)
            << " write units)\n\n";

  for (u32 u = 0; u < 8; ++u) {
    std::string row1(static_cast<std::size_t>(total / col), '.');
    std::string row0 = row1;
    for (const auto& e : trace.events) {
      if (e.unit != u) continue;
      const std::string b =
          bar(e.start, e.end, total, col, e.fsm == 1 ? '1' : '0');
      std::string& row = e.fsm == 1 ? row1 : row0;
      for (std::size_t i = 0; i < row.size() && i < b.size(); ++i) {
        if (b[i] != '.') row[i] = b[i];
      }
    }
    std::cout << "  unit " << u << "  W1 |" << row1 << "|\n"
              << "          W0 |" << row0 << "|\n";
  }

  std::cout << "\nper-sub-slot power draw (budget "
            << a.packer_cfg.budget << "):\n  |";
  for (const u32 p : a.pack.slot_power) {
    std::cout << pad(std::to_string(p), -4);
  }
  std::cout << " |\n\n";

  // Compare completion times across schemes on the same data.
  std::cout << "write-phase completion (same data, excluding read/analysis "
               "overheads):\n";
  for (const auto kind :
       {schemes::SchemeKind::kDcw, schemes::SchemeKind::kFlipNWrite,
        schemes::SchemeKind::kTwoStage, schemes::SchemeKind::kThreeStage,
        schemes::SchemeKind::kTetris}) {
    core::TetrisOptions opts;
    opts.analysis_cycles = 0;
    pcm::LineBuf work = line;
    const auto scheme = core::make_scheme(kind, cfg, opts);
    const auto plan = scheme->plan_write(work, next);
    const Tick write_phase =
        plan.latency - (plan.read_before_write ? cfg.timing.t_read : 0);
    std::cout << "  " << pad(scheme->name(), 8) << " "
              << pad(fixed(to_ns(write_phase), 0), -6) << " ns  |"
              << ascii_bar(to_ns(write_phase) / (8.0 * 430.0), 48) << "|\n";
  }
  std::cout << "\n(the '0' pulses riding inside the '1' window are the "
               "stolen interspaces that give Tetris Write its name)\n";
  return 0;
}
