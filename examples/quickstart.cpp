// Quickstart: write one cache line through every PCM write scheme and
// compare service plans, then run a short full-system simulation.
//
//   $ ./quickstart
//
// This is the 5-minute tour of the public API:
//   1. pcm::PcmConfig       — device timing/power/geometry (Table II)
//   2. core::make_scheme    — instantiate any write scheme
//   3. WriteScheme::plan_write — one cache-line write service
//   4. harness::run_system  — a full 4-core simulation

#include <iostream>

#include "tw/common/strings.hpp"
#include "tw/common/table.hpp"
#include "tw/core/factory.hpp"
#include "tw/harness/experiment.hpp"
#include "tw/mem/data_store.hpp"
#include "tw/workload/generator.hpp"

using namespace tw;

int main() {
  // 1. Device configuration: the paper's Table II setup.
  const pcm::PcmConfig cfg = pcm::table2_config();
  std::cout << "PCM: " << cfg.describe() << "\n\n";

  // 2. A realistic line write: mutate a line the way the 'ferret'
  //    workload would, then plan the same write under each scheme.
  const auto& profile = workload::profile_by_name("ferret");
  workload::TraceGenerator gen(profile, cfg.geometry, /*cores=*/1,
                               /*seed=*/7);

  // One generated write, replayed against identical memory state for
  // every scheme, so the plans are directly comparable.
  const Addr addr = 0x1000;
  pcm::LogicalLine next(cfg.geometry.units_per_line());
  {
    mem::DataStore store(cfg.geometry.units_per_line(), /*seed=*/1);
    next = gen.make_write_data(addr, store, 0);
  }

  AsciiTable table;
  table.set_header({"scheme", "latency (ns)", "write units",
                    "bits programmed", "flipped units"});
  for (const auto kind : core::all_scheme_kinds()) {
    mem::DataStore store(cfg.geometry.units_per_line(), /*seed=*/1);
    const auto scheme = core::make_scheme(kind, cfg);
    const schemes::ServicePlan plan =
        scheme->plan_write(store.line(addr), next);

    table.add_row({std::string(scheme->name()),
                   fixed(to_ns(plan.latency), 1),
                   fixed(plan.write_units, 2),
                   std::to_string(plan.programmed.total()),
                   std::to_string(plan.flipped_units)});
  }
  std::cout << "One 64 B cache-line write ('ferret'-like data):\n"
            << table.to_string() << "\n";

  // 3. A short full-system run: 4 cores, FRFCFS controller, PCM banks.
  harness::SystemConfig sys;
  sys.instructions_per_core = 50'000;
  std::cout << "Full-system simulation (ferret, 4 cores, "
            << sys.instructions_per_core << " instructions/core):\n";

  AsciiTable sysres;
  sysres.set_header({"scheme", "read lat (ns)", "write lat (ns)", "IPC",
                     "runtime (us)"});
  for (const auto kind :
       {schemes::SchemeKind::kDcw, schemes::SchemeKind::kFlipNWrite,
        schemes::SchemeKind::kTwoStage, schemes::SchemeKind::kThreeStage,
        schemes::SchemeKind::kTetris}) {
    const harness::RunMetrics m = harness::run_system(sys, profile, kind);
    sysres.add_row({m.scheme, fixed(m.read_latency_ns, 0),
                    fixed(m.write_latency_ns, 0), fixed(m.ipc, 3),
                    fixed(m.runtime_ns / 1000.0, 1)});
  }
  std::cout << sysres.to_string()
            << "\nTetris Write wins by hiding short RESET pulses in the "
               "interspaces of long SET pulses.\n";
  return 0;
}
