// scheme_explorer: interactive parameter-space exploration of the write
// schemes. Sweeps one device parameter and prints how each scheme's
// average write-unit count responds — the tool for finding crossovers.
//
//   $ ./scheme_explorer [--param=budget|k|l|line|density] [--workload=NAME]
//
// Examples:
//   ./scheme_explorer --param=budget          # power budget sweep
//   ./scheme_explorer --param=density         # bit-change density sweep
//   ./scheme_explorer --param=line --workload=vips

#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "tw/common/rng.hpp"
#include "tw/common/strings.hpp"
#include "tw/common/table.hpp"
#include "tw/core/factory.hpp"
#include "tw/workload/generator.hpp"

using namespace tw;

namespace {

struct SweepPoint {
  std::string label;
  pcm::PcmConfig cfg;
  double density_scale = 1.0;  ///< multiplier on the profile's bit rates
};

double avg_write_units(const SweepPoint& pt,
                       const workload::WorkloadProfile& base_profile,
                       schemes::SchemeKind kind, u64 writes) {
  workload::WorkloadProfile profile = base_profile;
  profile.mean_sets *= pt.density_scale;
  profile.mean_resets *= pt.density_scale;

  mem::DataStore store(pt.cfg.geometry.units_per_line(), 7,
                       profile.initial_ones_fraction);
  workload::TraceGenerator gen(profile, pt.cfg.geometry, 1, 11);
  const auto scheme = core::make_scheme(kind, pt.cfg);
  double sum = 0;
  u64 n = 0;
  while (n < writes) {
    const workload::TraceOp op = gen.next(0);
    if (!op.is_write) continue;
    const pcm::LogicalLine next = gen.make_write_data(op.addr, store, 0);
    sum += scheme->plan_write(store.line(op.addr), next).write_units;
    ++n;
  }
  return sum / static_cast<double>(n);
}

}  // namespace

int main(int argc, char** argv) {
  std::string param = "budget";
  std::string workload_name = "ferret";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (starts_with(arg, "--param=")) param = arg.substr(8);
    if (starts_with(arg, "--workload=")) workload_name = arg.substr(11);
  }
  const auto& profile = workload::profile_by_name(workload_name);

  std::vector<SweepPoint> points;
  if (param == "budget") {
    for (const u32 b : {4u, 8u, 16u, 32u, 64u, 128u}) {
      SweepPoint pt;
      pt.cfg.power.chip_budget = b;
      pt.label = "chip budget " + std::to_string(b);
      points.push_back(pt);
    }
  } else if (param == "k") {
    // Vary the time asymmetry by stretching Tset.
    for (const u32 k : {1u, 2u, 4u, 8u, 16u}) {
      SweepPoint pt;
      pt.cfg.timing.t_set = ns(53) * k;
      pt.label = "K=" + std::to_string(k) + " (Tset " +
                 fixed(to_ns(pt.cfg.timing.t_set), 0) + "ns)";
      points.push_back(pt);
    }
  } else if (param == "l") {
    for (const u32 l : {1u, 2u, 3u, 4u}) {
      SweepPoint pt;
      pt.cfg.power.reset_current_ratio_l = l;
      pt.label = "L=" + std::to_string(l);
      points.push_back(pt);
    }
  } else if (param == "line") {
    for (const u32 bytes : {64u, 128u, 256u}) {
      SweepPoint pt;
      pt.cfg.geometry.cache_line_bytes = bytes;
      pt.label = std::to_string(bytes) + "B line";
      points.push_back(pt);
    }
  } else if (param == "density") {
    for (const double d : {0.25, 0.5, 1.0, 2.0, 3.0}) {
      SweepPoint pt;
      pt.density_scale = d;
      pt.label = "density x" + fixed(d, 2);
      points.push_back(pt);
    }
  } else {
    std::cerr << "unknown --param (use budget|k|l|line|density)\n";
    return 2;
  }

  const std::vector<schemes::SchemeKind> kinds = {
      schemes::SchemeKind::kDcw,        schemes::SchemeKind::kFlipNWrite,
      schemes::SchemeKind::kTwoStage,   schemes::SchemeKind::kThreeStage,
      schemes::SchemeKind::kTetris};

  std::cout << "Write-unit sweep over '" << param << "' (workload "
            << workload_name << ")\n\n";
  AsciiTable t;
  {
    std::vector<std::string> header = {"point"};
    for (const auto k : kinds) header.emplace_back(schemes::scheme_name(k));
    header.emplace_back("tetris win vs 3stage");
    t.set_header(std::move(header));
  }
  for (const auto& pt : points) {
    std::vector<std::string> row = {pt.label};
    double three = 0, tetris = 0;
    for (const auto kind : kinds) {
      const double u = avg_write_units(pt, profile, kind, 1500);
      if (kind == schemes::SchemeKind::kThreeStage) three = u;
      if (kind == schemes::SchemeKind::kTetris) tetris = u;
      row.push_back(fixed(u, 2));
    }
    row.push_back(three > 0 ? pct(1.0 - tetris / three) : "-");
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  std::cout << "\nReading the sweep: Tetris's edge grows with spare power "
               "budget and\nshrinks as bit-change density approaches the "
               "worst case the other\nschemes already assume.\n";
  return 0;
}
