// wear_analysis: endurance study on a real cell array. Writes a hot data
// region through different write policies using the gated write driver
// and compares per-cell wear and projected lifetime — Table I's "reduce
// energy" column made quantitative at the cell level.
//
//   $ ./wear_analysis [rounds]
//
// Policies:
//   conventional — every cell pulsed on every write
//   dcw          — only changed cells pulsed (DCW / Tetris / 3-stage all
//                  share this property; their difference is timing)
//   fnw          — changed cells after Flip-N-Write inversion (plus the
//                  tag cell), bounding worst-case wear per write

#include <iostream>
#include <string>

#include "tw/common/rng.hpp"
#include "tw/common/strings.hpp"
#include "tw/common/table.hpp"
#include "tw/core/write_driver.hpp"
#include "tw/pcm/array.hpp"
#include "tw/pcm/wear.hpp"
#include "tw/schemes/prep.hpp"

using namespace tw;

namespace {

constexpr u64 kLines = 256;        // hot 64-bit units under attack
constexpr u64 kBitsPerLine = 65;   // 64 data cells + 1 flip-tag cell
constexpr double kEndurance = 1e8; // typical SLC PCM cell endurance

enum class Policy { kConventional, kDcw, kFnw };

struct WearResult {
  u64 total_pulses = 0;
  u64 max_wear = 0;
};

u64 mutate(u64 logical, Rng& rng) {
  const u32 flips = 2 + static_cast<u32>(rng.poisson(8.0));
  for (u32 b = 0; b < flips; ++b) {
    logical = with_bit(logical, static_cast<u32>(rng.below(64)),
                       rng.chance(0.7));
  }
  return logical;
}

WearResult run_policy(Policy policy, u64 rounds, u64 seed) {
  pcm::PcmArray array(kLines * kBitsPerLine);
  Rng rng(seed);

  for (u64 round = 0; round < rounds; ++round) {
    for (u64 line = 0; line < kLines; ++line) {
      const u64 base = line * kBitsPerLine;
      const u64 old_cells = array.read_word(base, 64);
      const bool old_tag = array.read(base + 64);
      const u64 old_logical = old_tag ? ~old_cells : old_cells;
      const u64 new_logical = mutate(old_logical, rng);

      const schemes::FlipCriterion crit =
          policy == Policy::kFnw ? schemes::FlipCriterion::kHamming
                                 : schemes::FlipCriterion::kNone;
      const schemes::UnitPlan plan =
          schemes::plan_unit(old_cells, old_tag, new_logical, crit, 64);

      if (policy == Policy::kConventional) {
        // Pulse every cell with its target value.
        for (u32 b = 0; b < 64; ++b) {
          array.program(base + b, get_bit(plan.new_cells, b));
        }
      } else {
        // Gated driver: PROG-enable limits pulses to changed cells.
        core::drive_unit(array, base, old_cells, plan.new_cells, 64);
      }
      if (plan.tag_changed || policy == Policy::kConventional) {
        array.program(base + 64, plan.flip);
      }
    }
  }

  WearResult r;
  r.total_pulses = array.total_pulses();
  r.max_wear = array.max_wear();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const u64 rounds =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 400;
  std::cout << "wear_analysis: " << kLines << " hot data units, " << rounds
            << " write rounds each\n\n";

  AsciiTable t;
  t.set_header({"policy", "total pulses", "pulses/write", "max cell wear",
                "relative wear", "projected lifetime"});
  const WearResult conv = run_policy(Policy::kConventional, rounds, 9);

  for (const auto& [policy, name] :
       {std::pair{Policy::kConventional, "conventional"},
        std::pair{Policy::kDcw, "dcw/tetris"},
        std::pair{Policy::kFnw, "flip-n-write"}}) {
    const WearResult r = run_policy(policy, rounds, 9);
    const double per_write =
        static_cast<double>(r.total_pulses) /
        static_cast<double>(rounds * kLines);
    const double rel = static_cast<double>(r.total_pulses) /
                       static_cast<double>(conv.total_pulses);
    // Lifetime limited by the hottest cell: writes until endurance.
    const double lifetime =
        kEndurance / (static_cast<double>(r.max_wear) /
                      static_cast<double>(rounds));
    // Wall-clock projection assuming this hot region sustains 100k
    // line-writes/second (a busy PCM main memory).
    pcm::WearSummary ws;
    ws.max_line_bits = r.max_wear * 64;  // worst cell x line width proxy
    ws.total_writes = rounds * kLines;
    const double sim_seconds =
        static_cast<double>(rounds * kLines) / 100'000.0;
    const pcm::LifetimeEstimate est = pcm::estimate_lifetime(
        ws, sim_seconds, kEndurance, 64);
    t.add_row({name, std::to_string(r.total_pulses), fixed(per_write, 1),
               std::to_string(r.max_wear), pct(rel),
               fixed(lifetime / 1e6, 1) + "M writes (" +
                   fixed(est.lifetime_years, 2) + " yr @100k w/s)"});
  }
  t.print(std::cout);

  std::cout << "\nComparison-based writes (DCW family, which includes "
               "Tetris Write)\npulse ~15% of the cells per write — the "
               "same bits Figure 3 counts —\nextending device lifetime by "
               "roughly the inverse factor.\n";
  return 0;
}
