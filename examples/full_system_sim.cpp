// full_system_sim: the complete pipeline — 4 out-of-order-style cores,
// optional 3-level cache hierarchy, FRFCFS memory controller, PCM banks —
// with a detailed end-of-run report (latencies, IPC, bank utilization,
// energy, wear, queue behaviour).
//
//   $ ./full_system_sim [--workload=NAME] [--scheme=NAME] [--cache]
//                       [--instr=N] [--cores=N] [--seed=N]
//                       [--config=FILE] [--dump-config]
//
// With --cache the workload profile is interpreted as CPU-level access
// rates and filtered through per-core L1/L2/L3 stacks (Table II); without
// it the profile's RPKI/WPKI are memory-level (Table III semantics).
// --config loads an experiment configuration file (see
// tw/harness/config_file.hpp); --dump-config prints the effective
// configuration in that format and exits.

#include <iostream>
#include <memory>
#include <string>

#include "tw/common/strings.hpp"
#include "tw/common/table.hpp"
#include "tw/core/factory.hpp"
#include "tw/cpu/multicore.hpp"
#include "tw/harness/config_file.hpp"
#include "tw/workload/cache_filtered.hpp"

using namespace tw;

int main(int argc, char** argv) {
  std::string workload_name = "ferret";
  std::string scheme_name = "tetris";
  bool use_cache = false;
  bool dump_config = false;
  harness::SystemConfig sys;
  sys.instructions_per_core = 300'000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (starts_with(arg, "--config=")) {
      try {
        sys = harness::load_system_config(arg.substr(9));
      } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
      }
    }
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (starts_with(arg, "--workload=")) workload_name = arg.substr(11);
    if (starts_with(arg, "--scheme=")) scheme_name = arg.substr(9);
    if (arg == "--cache") use_cache = true;
    if (arg == "--dump-config") dump_config = true;
    if (starts_with(arg, "--instr="))
      sys.instructions_per_core =
          std::strtoull(arg.c_str() + 8, nullptr, 10);
    if (starts_with(arg, "--cores="))
      sys.cores =
          static_cast<u32>(std::strtoul(arg.c_str() + 8, nullptr, 10));
    if (starts_with(arg, "--seed="))
      sys.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
  }
  if (dump_config) {
    harness::write_system_config(sys, std::cout);
    return 0;
  }

  const pcm::PcmConfig pcfg = sys.pcm;
  const u64 instr = sys.instructions_per_core;
  const u32 cores = sys.cores;
  const u64 seed = sys.seed;
  const auto& profile = workload::profile_by_name(workload_name);

  sim::Simulator sim;
  stats::Registry reg;
  const auto scheme = core::make_scheme(scheme_name, pcfg, sys.tetris);
  mem::Controller ctl(sim, pcfg, sys.controller, *scheme, reg, seed,
                      profile.initial_ones_fraction);

  std::unique_ptr<workload::RequestSource> source;
  workload::CacheFilteredSource* cached_source = nullptr;
  if (use_cache) {
    // CPU-level profile: scale the memory-level rates up; the caches will
    // filter most accesses back out.
    workload::WorkloadProfile cpu_profile = profile;
    cpu_profile.rpki = std::max(40.0, profile.rpki * 40.0);
    cpu_profile.wpki = std::max(15.0, profile.wpki * 40.0);
    cpu_profile.working_set_lines = 512 * 1024;  // 32 MB: stress L3
    auto src = std::make_unique<workload::CacheFilteredSource>(
        cpu_profile, pcfg.geometry, cache::HierarchyConfig{}, cores, seed);
    cached_source = src.get();
    source = std::move(src);
  } else {
    source = std::make_unique<workload::TraceGenerator>(
        profile, pcfg.geometry, cores, seed);
  }

  cpu::MultiCore cpus(sim, sys.core, cores, ctl, *source, instr);
  cpus.start();
  sim.run(ms(30'000));

  std::cout << "full_system_sim: " << workload_name << " under "
            << scheme->name() << (use_cache ? " (cache-filtered)" : "")
            << "\n" << pcfg.describe() << "\n\n";

  if (!cpus.all_finished()) {
    std::cout << "WARNING: simulation hit the time cap before all cores "
                 "retired their budget\n\n";
  }

  AsciiTable t;
  t.set_header({"metric", "value"});
  t.add_row({"instructions retired", std::to_string(cpus.total_retired())});
  t.add_row({"runtime", fixed(to_us(cpus.runtime()), 1) + " us"});
  t.add_row({"aggregate IPC", fixed(cpus.aggregate_ipc(), 3)});
  t.add_row({"memory reads", std::to_string(reg.counter("mem.reads").value())});
  t.add_row({"memory writes",
             std::to_string(reg.counter("mem.writes").value())});
  t.add_row({"avg read latency",
             fixed(reg.accumulator("mem.read_latency_ns").mean(), 0) + " ns"});
  t.add_row({"avg write latency",
             fixed(reg.accumulator("mem.write_latency_ns").mean(), 0) + " ns"});
  t.add_row({"p99 read latency",
             fixed(reg.histogram("mem.read_latency_hist_ns").percentile(0.99),
                   0) + " ns"});
  t.add_row({"avg write units/line",
             fixed(reg.accumulator("mem.write_units").mean(), 2)});
  t.add_row({"reads forwarded",
             std::to_string(reg.counter("mem.reads_forwarded").value())});
  t.add_row({"writes coalesced",
             std::to_string(reg.counter("mem.writes_coalesced").value())});
  t.add_row({"silent writes",
             std::to_string(reg.counter("mem.writes_silent").value())});
  t.add_row({"units flipped",
             std::to_string(reg.counter("mem.units_flipped").value())});
  t.add_row({"write energy",
             fixed(ctl.energy().write_energy_pj() / 1e6, 3) + " uJ"});
  t.add_row({"read energy",
             fixed(ctl.energy().read_energy_pj() / 1e6, 3) + " uJ"});
  const pcm::WearSummary wear = ctl.wear().summary();
  t.add_row({"lines written", std::to_string(wear.lines_touched)});
  t.add_row({"bits programmed/write", fixed(wear.avg_bits_per_write, 1)});
  t.print(std::cout);

  std::cout << "\nper-bank utilization:\n";
  const Tick rt = std::max<Tick>(cpus.runtime(), 1);
  for (std::size_t b = 0; b < ctl.banks().size(); ++b) {
    const double util =
        static_cast<double>(ctl.banks()[b].busy_total()) /
        static_cast<double>(rt);
    std::cout << "  bank " << b << " [" << ascii_bar(util, 30) << "] "
              << pct(util) << " (" << ctl.banks()[b].commands()
              << " cmds)\n";
  }

  if (cached_source != nullptr) {
    std::cout << "\ncache behaviour (core 0):\n";
    const auto& h = cached_source->hierarchy(0);
    std::cout << "  L1D hit rate " << pct(h.l1d().hit_rate()) << ", L2 "
              << pct(h.l2().hit_rate()) << ", L3 "
              << pct(h.l3().hit_rate()) << "\n";
    std::cout << "  effective memory traffic: "
              << fixed(cached_source->effective_mem_per_kilo(0), 2)
              << " requests/kilo-instruction\n";
  }

  std::cout << "\nraw stat registry:\n";
  reg.report(std::cout, "  ");
  return 0;
}
