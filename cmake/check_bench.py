#!/usr/bin/env python3
"""Benchmark regression gate shared by CI's micro_sim / micro_mem smoke.

Compares a freshly produced bench JSON (bench/bench_util.hpp
write_bench_json format) against the committed BENCH_*.json baseline and
fails when the chosen metric falls more than --max-regression percent
below it. Shared-runner noise stays well inside the default 15% band; a
lost fast path does not.

The tolerated drop resolves in precedence order: an explicit
--max-regression flag, then a per-metric entry in the baseline's
"tolerances" dict ({"metric": percent}), then the 15% default.
Baselines pin tight bands on their deterministic simulated ratios and
keep the noise allowance for wall-clock throughput.

Usage:
    check_bench.py BASELINE.json FRESH.json [--metric events_per_sec]
                   [--max-regression 15] [--label micro_sim]
Exit status: 0 ok, 1 regression, 2 bad input.
"""

import argparse
import json
import sys


def load_metric(path, metric):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_bench: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if metric not in data:
        print(f"check_bench: {path} has no field '{metric}'", file=sys.stderr)
        sys.exit(2)
    value = float(data[metric])
    if value <= 0:
        print(f"check_bench: {path} {metric} = {value} (not positive)",
              file=sys.stderr)
        sys.exit(2)
    return value, data


def fmt(value):
    """Ratio-style metrics need decimals; throughput counts don't."""
    return f"{value:.3f}" if abs(value) < 100 else f"{value:.0f}"


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline", help="committed BENCH_*.json")
    ap.add_argument("fresh", help="just-produced bench JSON")
    ap.add_argument("--metric", default="events_per_sec")
    ap.add_argument("--max-regression", type=float, default=None,
                    help="largest tolerated drop, percent (default: the "
                         "baseline's tolerances entry for the metric, "
                         "else 15)")
    ap.add_argument("--label", default=None,
                    help="name to print (default: baseline 'bench' field)")
    args = ap.parse_args()

    base, base_data = load_metric(args.baseline, args.metric)
    now, _ = load_metric(args.fresh, args.metric)
    label = args.label or base_data.get("bench", args.baseline)

    max_regression = args.max_regression
    if max_regression is None:
        tolerances = base_data.get("tolerances", {})
        if not isinstance(tolerances, dict):
            print(f"check_bench: {args.baseline} 'tolerances' is not an "
                  f"object", file=sys.stderr)
            sys.exit(2)
        max_regression = float(tolerances.get(args.metric, 15.0))
    if max_regression < 0:
        print(f"check_bench: negative tolerance {max_regression} for "
              f"'{args.metric}'", file=sys.stderr)
        sys.exit(2)

    floor = base * (1.0 - max_regression / 100.0)
    delta_pct = (now / base - 1.0) * 100.0
    print(f"{label}: {args.metric} {fmt(now)} vs baseline {fmt(base)} "
          f"({delta_pct:+.1f}%, floor {fmt(floor)})")
    if now < floor:
        print(f"{label}: REGRESSION — {args.metric} dropped "
              f"{-delta_pct:.1f}% (> {max_regression:.0f}% allowed)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
