# Helper for declaring a tetriswrite library module.
#
#   tw_add_module(<name> SOURCES a.cpp b.cpp DEPS tw_common ...)
#
# Creates static library tw_<name> with the repository src/ directory on its
# public include path (headers are included as "tw/<module>/<header>.hpp").
function(tw_add_module NAME)
  cmake_parse_arguments(ARG "" "" "SOURCES;DEPS" ${ARGN})
  set(target tw_${NAME})
  add_library(${target} STATIC ${ARG_SOURCES})
  target_include_directories(${target} PUBLIC
    $<BUILD_INTERFACE:${PROJECT_SOURCE_DIR}/src>
    $<INSTALL_INTERFACE:include>)
  target_link_libraries(${target} PUBLIC ${ARG_DEPS} PRIVATE tw_warnings)
  add_library(tw::${NAME} ALIAS ${target})
  install(TARGETS ${target} EXPORT tetriswriteTargets
          ARCHIVE DESTINATION lib)
endfunction()
