// Unit tests for the baseline write schemes against the paper's
// closed-form service-time equations (Eq. 1-4) and energy semantics
// (Table I), plus the shared prep/FFD helpers.

#include <gtest/gtest.h>

#include "tw/common/rng.hpp"
#include "tw/core/factory.hpp"
#include "tw/schemes/ffd.hpp"
#include "tw/schemes/prep.hpp"
#include "tw/schemes/write_scheme.hpp"

namespace tw::schemes {
namespace {

pcm::PcmConfig cfg() { return pcm::table2_config(); }

/// A line whose cells hold `cell` in every unit, tags clear.
pcm::LineBuf uniform_line(u32 units, u64 cell) {
  pcm::LineBuf line(units);
  for (u32 i = 0; i < units; ++i) line.set_cell(i, cell);
  return line;
}

pcm::LogicalLine uniform_data(u32 units, u64 word) {
  pcm::LogicalLine d(units);
  for (u32 i = 0; i < units; ++i) d.set_word(i, word);
  return d;
}

// ----------------------------------------------------------------- prep --
TEST(Prep, NoFlipKeepsData) {
  const UnitPlan p = plan_unit(0xFF, false, 0x0F, FlipCriterion::kNone, 8);
  EXPECT_FALSE(p.flip);
  EXPECT_EQ(p.new_cells, 0x0Fu);
  EXPECT_EQ(p.sets, 0u);
  EXPECT_EQ(p.resets, 4u);
}

TEST(Prep, HammingFlipsWhenMajorityChanges) {
  // Old cells all-zero; new data all-ones over 8 bits: 8 of 8 change, so
  // FNW stores the inversion (zero cells) and only the tag changes.
  const UnitPlan p = plan_unit(0x00, false, 0xFF, FlipCriterion::kHamming, 8);
  EXPECT_TRUE(p.flip);
  EXPECT_EQ(p.new_cells, 0x00u);
  EXPECT_EQ(p.changed(), 0u);
  EXPECT_TRUE(p.tag_changed);
  EXPECT_TRUE(p.tag_to_one);
}

TEST(Prep, HammingNoFlipOnMinorityChange) {
  const UnitPlan p = plan_unit(0x00, false, 0x0F, FlipCriterion::kHamming, 8);
  EXPECT_FALSE(p.flip);
  EXPECT_EQ(p.sets, 4u);
}

TEST(Prep, HammingGuaranteesAtMostHalfPlusTag) {
  Rng rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    const u64 old_cells = rng.next();
    const bool old_tag = rng.chance(0.5);
    const u64 next = rng.next();
    const UnitPlan p =
        plan_unit(old_cells, old_tag, next, FlipCriterion::kHamming, 64);
    const u32 cost = p.changed() + (p.tag_changed ? 1 : 0);
    EXPECT_LE(cost, 33u);  // > half would have been inverted
    // Logical value must round-trip.
    EXPECT_EQ(p.flip ? ~p.new_cells : p.new_cells, next);
  }
}

TEST(Prep, MinimizeSetsFlipCriterion) {
  // 6 ones of 8 bits: 2-stage flips to store 2 ones.
  const UnitPlan p =
      plan_unit(0x00, false, 0b0111'0110, FlipCriterion::kMinimizeSets, 8);
  EXPECT_TRUE(p.flip);
  EXPECT_LE(p.all_ones, 4u);
}

TEST(Prep, TagTransitionTracked) {
  // Previously flipped unit, new write doesn't flip: tag 1 -> 0.
  const UnitPlan p = plan_unit(0x00, true, 0x03, FlipCriterion::kHamming, 8);
  EXPECT_FALSE(p.flip);
  EXPECT_TRUE(p.tag_changed);
  EXPECT_FALSE(p.tag_to_one);
}

TEST(Prep, TotalsIncludeTagPulses) {
  std::vector<UnitPlan> plans(1);
  plans[0].sets = 2;
  plans[0].resets = 1;
  plans[0].tag_changed = true;
  plans[0].tag_to_one = true;
  const BitTransitions t = total_transitions(plans);
  EXPECT_EQ(t.sets, 3u);
  EXPECT_EQ(t.resets, 1u);
}

TEST(Prep, ApplyPlansUpdatesLine) {
  pcm::LineBuf line = uniform_line(8, 0);
  const pcm::LogicalLine next = uniform_data(8, 0xFFFF);
  const auto plans = plan_line(line, next, FlipCriterion::kNone, 64);
  apply_plans(line, plans);
  for (u32 i = 0; i < 8; ++i) EXPECT_EQ(line.logical(i), 0xFFFFu);
}

// ------------------------------------------------------------------ ffd --
TEST(Ffd, EmptyAndZeros) {
  EXPECT_EQ(ffd_bin_count({}, 10), 0u);
  EXPECT_EQ(ffd_bin_count({0, 0, 0}, 10), 0u);
}

TEST(Ffd, PerfectPacking) {
  EXPECT_EQ(ffd_bin_count({5, 5, 5, 5}, 10), 2u);
  EXPECT_EQ(ffd_bin_count({7, 3, 6, 4}, 10), 2u);
}

TEST(Ffd, SingleOversizeItem) {
  EXPECT_EQ(ffd_bin_count({25}, 10), 3u);  // 10 + 10 + 5
  EXPECT_EQ(ffd_bin_count({20}, 10), 2u);  // exact multiple
}

TEST(Ffd, OversizeRemainderSharesBin) {
  // 15 -> one full bin + remainder 5; the 5-item fits with the remainder.
  EXPECT_EQ(ffd_bin_count({15, 5}, 10), 2u);
}

TEST(Ffd, LowerBoundRespected) {
  // FFD is within 11/9 OPT + 1; check against the volume lower bound.
  Rng rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<u32> items;
    u64 volume = 0;
    const u32 n = 1 + static_cast<u32>(rng.below(20));
    for (u32 i = 0; i < n; ++i) {
      items.push_back(1 + static_cast<u32>(rng.below(64)));
      volume += items.back();
    }
    const u32 bins = ffd_bin_count(items, 64);
    EXPECT_GE(bins, ceil_div(volume, 64));
    EXPECT_LE(bins, n);  // never worse than one bin per item
  }
}

// --------------------------------------------------------- conventional --
TEST(Conventional, Equation1) {
  const auto scheme = core::make_scheme(SchemeKind::kConventional, cfg());
  pcm::LineBuf line = uniform_line(8, 0);
  const ServicePlan p = scheme->plan_write(line, uniform_data(8, 0xAA));
  EXPECT_EQ(p.latency, 8 * ns(430));  // (N/M) * Tset, no read
  EXPECT_DOUBLE_EQ(p.write_units, 8.0);
  EXPECT_FALSE(p.read_before_write);
  // All 512 data cells pulsed regardless of content.
  EXPECT_EQ(p.programmed.total(), 512u);
}

// ------------------------------------------------------------------ dcw --
TEST(Dcw, BaselineTimingWorstCaseButEnergyActual) {
  const auto scheme = core::make_scheme(SchemeKind::kDcw, cfg());
  pcm::LineBuf line = uniform_line(8, 0);
  pcm::LogicalLine next = uniform_data(8, 0);
  next.set_word(0, 0b111);  // change 3 bits total
  const ServicePlan p = scheme->plan_write(line, next);
  EXPECT_EQ(p.latency, ns(50) + 8 * ns(430));
  EXPECT_DOUBLE_EQ(p.write_units, 8.0);
  EXPECT_TRUE(p.read_before_write);
  EXPECT_EQ(p.programmed.sets, 3u);
  EXPECT_EQ(p.programmed.resets, 0u);
}

TEST(Dcw, SilentWriteDetected) {
  const auto scheme = core::make_scheme(SchemeKind::kDcw, cfg());
  pcm::LineBuf line = uniform_line(8, 0x42);
  const ServicePlan p = scheme->plan_write(line, uniform_data(8, 0x42));
  EXPECT_TRUE(p.silent);
  EXPECT_EQ(p.programmed.total(), 0u);
}

TEST(Dcw, StateActuallyUpdated) {
  const auto scheme = core::make_scheme(SchemeKind::kDcw, cfg());
  pcm::LineBuf line = uniform_line(8, 0);
  scheme->plan_write(line, uniform_data(8, 0x1234));
  for (u32 i = 0; i < 8; ++i) EXPECT_EQ(line.logical(i), 0x1234u);
}

// ------------------------------------------------------------------ fnw --
TEST(Fnw, Equation2) {
  const auto scheme = core::make_scheme(SchemeKind::kFlipNWrite, cfg());
  pcm::LineBuf line = uniform_line(8, 0);
  const ServicePlan p = scheme->plan_write(line, uniform_data(8, 0xAA));
  EXPECT_EQ(p.latency, ns(50) + 4 * ns(430));  // Tread + 1/2 (N/M) Tset
  EXPECT_DOUBLE_EQ(p.write_units, 4.0);
}

TEST(Fnw, FlipBoundsProgrammedBits) {
  const auto scheme = core::make_scheme(SchemeKind::kFlipNWrite, cfg());
  pcm::LineBuf line = uniform_line(8, 0);
  // All-ones data would change 64 bits/unit; FNW inverts instead.
  const ServicePlan p = scheme->plan_write(line, uniform_data(8, ~u64{0}));
  EXPECT_EQ(p.flipped_units, 8u);
  // Only the 8 tag cells change.
  EXPECT_EQ(p.programmed.total(), 8u);
  for (u32 i = 0; i < 8; ++i) EXPECT_EQ(line.logical(i), ~u64{0});
}

TEST(Fnw, ContentAwarePacksByActualCurrent) {
  const auto scheme =
      core::make_scheme(SchemeKind::kFlipNWriteActual, cfg());
  pcm::LineBuf line = uniform_line(8, 0);
  pcm::LogicalLine next = uniform_data(8, 0);
  for (u32 i = 0; i < 8; ++i) next.set_word(i, 0b1);  // 1 SET per unit
  const ServicePlan p = scheme->plan_write(line, next);
  // 8 units x 1 SET-current each = 8 <= 128: a single write unit.
  EXPECT_DOUBLE_EQ(p.write_units, 1.0);
  EXPECT_EQ(p.latency, ns(50) + ns(430));
}

// --------------------------------------------------------------- 2stage --
TEST(TwoStage, Equation3) {
  const auto scheme = core::make_scheme(SchemeKind::kTwoStage, cfg());
  pcm::LineBuf line = uniform_line(8, 0);
  const ServicePlan p = scheme->plan_write(line, uniform_data(8, 0xAA));
  // (1/K + 1/2L)(N/M) Tset with exact Treset: 8*Treset + 2*Tset.
  EXPECT_EQ(p.latency, 8 * ns(53) + 2 * ns(430));
  EXPECT_NEAR(p.write_units, 3.0, 0.02);
  EXPECT_FALSE(p.read_before_write);
}

TEST(TwoStage, WritesEveryCell) {
  const auto scheme = core::make_scheme(SchemeKind::kTwoStage, cfg());
  pcm::LineBuf line = uniform_line(8, 0x42);
  const ServicePlan p = scheme->plan_write(line, uniform_data(8, 0x42));
  // Table I: 2-stage does NOT reduce energy; all 512 data cells pulsed.
  EXPECT_GE(p.programmed.total(), 512u);
  EXPECT_FALSE(p.silent);
}

// --------------------------------------------------------------- 3stage --
TEST(ThreeStage, Equation4) {
  const auto scheme = core::make_scheme(SchemeKind::kThreeStage, cfg());
  pcm::LineBuf line = uniform_line(8, 0);
  const ServicePlan p = scheme->plan_write(line, uniform_data(8, 0xAA));
  // Tread + (1/2K + 1/2L)(N/M) Tset: read + 4*Treset + 2*Tset.
  EXPECT_EQ(p.latency, ns(50) + 4 * ns(53) + 2 * ns(430));
  EXPECT_NEAR(p.write_units, 2.5, 0.02);
  EXPECT_TRUE(p.read_before_write);
}

TEST(ThreeStage, EnergyReducedLikeDcw) {
  const auto scheme = core::make_scheme(SchemeKind::kThreeStage, cfg());
  pcm::LineBuf line = uniform_line(8, 0);
  pcm::LogicalLine next = uniform_data(8, 0);
  next.set_word(3, 0xF);
  const ServicePlan p = scheme->plan_write(line, next);
  EXPECT_EQ(p.programmed.total(), 4u);
}

// ------------------------------------------------- paper-order property --
struct OrderCase {
  u64 seed;
};

class SchemeOrdering : public ::testing::TestWithParam<u64> {};

TEST_P(SchemeOrdering, WriteUnitsFollowThePapersRanking) {
  // For any data, the Fig. 10 ranking must hold:
  // tetris <= 3stage <= 2stage <= fnw <= dcw.
  Rng rng(GetParam());
  const pcm::PcmConfig c = cfg();

  pcm::LineBuf base(8);
  for (u32 i = 0; i < 8; ++i) base.set_cell(i, rng.next());
  pcm::LogicalLine next(8);
  for (u32 i = 0; i < 8; ++i) {
    // Mutate a random subset of bits, biased small like real workloads.
    u64 w = base.cell(i);
    const u32 nbits = static_cast<u32>(rng.below(20));
    for (u32 b = 0; b < nbits; ++b) {
      const u32 pos = static_cast<u32>(rng.below(64));
      w = with_bit(w, pos, rng.chance(0.6));
    }
    next.set_word(i, w);
  }

  auto units = [&](SchemeKind kind) {
    pcm::LineBuf line = base;  // fresh copy per scheme
    return core::make_scheme(kind, c)->plan_write(line, next).write_units;
  };

  const double dcw = units(SchemeKind::kDcw);
  const double fnw = units(SchemeKind::kFlipNWrite);
  const double two = units(SchemeKind::kTwoStage);
  const double three = units(SchemeKind::kThreeStage);
  const double tetris = units(SchemeKind::kTetris);

  EXPECT_LE(fnw, dcw);
  EXPECT_LE(two, fnw);
  EXPECT_LE(three, two);
  EXPECT_LE(tetris, three + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomData, SchemeOrdering,
                         ::testing::Range<u64>(1, 41));

// ------------------------------------------------------- name round-trip --
TEST(Factory, NameRoundTrip) {
  for (const auto kind : core::all_scheme_kinds()) {
    const auto scheme =
        core::make_scheme(schemes::scheme_name(kind), cfg());
    EXPECT_EQ(scheme->kind(), kind);
    EXPECT_EQ(scheme->name(), scheme_name(kind));
  }
}

TEST(Factory, UnknownNameThrows) {
  EXPECT_THROW(core::make_scheme("warp-drive", cfg()), ContractViolation);
}

TEST(Factory, ReadLatencyUniformAcrossSchemes) {
  // The paper: no scheme touches the read datapath.
  for (const auto kind : core::all_scheme_kinds()) {
    EXPECT_EQ(core::make_scheme(kind, cfg())->read_latency(), ns(50));
  }
}

}  // namespace
}  // namespace tw::schemes
