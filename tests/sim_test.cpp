// Unit tests for the event-driven simulation kernel.

#include <gtest/gtest.h>

#include <vector>

#include "tw/common/assert.hpp"
#include "tw/sim/simulator.hpp"

namespace tw::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(Simulator, SameTickPriorityOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(5, [&] { order.push_back(2); }, Priority::kCpu);
  sim.schedule_at(5, [&] { order.push_back(1); },
                  Priority::kDeviceComplete);
  sim.schedule_at(5, [&] { order.push_back(3); }, Priority::kDefault);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, SameTickSamePriorityFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(7, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, CallbackSchedulesMore) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) sim.schedule_in(10, chain);
  };
  sim.schedule_at(0, chain);
  sim.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.now(), 40u);
}

TEST(Simulator, RunWithLimitStopsAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(100, [&] { ++fired; });
  const u64 n = sim.run(50);
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50u);  // advanced to the limit
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator sim;
  sim.schedule_at(10, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5, [] {}), ContractViolation);
}

TEST(Simulator, NullCallbackThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_at(0, nullptr), ContractViolation);
}

TEST(Simulator, StepSingleEvent) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1, [&] { ++fired; });
  sim.schedule_at(2, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, ClearDropsPending) {
  Simulator sim;
  sim.schedule_at(1, [] { FAIL() << "should not run"; });
  sim.clear();
  sim.run();
  EXPECT_EQ(sim.executed(), 0u);
}

TEST(Simulator, ZeroDelayEventRunsAtCurrentTick) {
  Simulator sim;
  Tick seen = kTickMax;
  sim.schedule_at(25, [&] {
    sim.schedule_in(0, [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(seen, 25u);
}

// ----------------------------------------------------------------- clock --
TEST(Clock, TwoGigahertz) {
  Clock c(500);  // 500 ps
  EXPECT_DOUBLE_EQ(c.freq_ghz(), 2.0);
  EXPECT_EQ(c.cycles(4), 2000u);
  EXPECT_EQ(c.cycles_at(1999), 3u);
  EXPECT_EQ(c.cycles_at(2000), 4u);
  EXPECT_EQ(c.tick_of(4), 2000u);
}

TEST(Clock, NextEdge) {
  Clock c(400);  // 2.5 GHz
  EXPECT_EQ(c.next_edge(0), 0u);
  EXPECT_EQ(c.next_edge(1), 400u);
  EXPECT_EQ(c.next_edge(400), 400u);
  EXPECT_EQ(c.next_edge(401), 800u);
}

TEST(Clock, MemoryBusClock400MHz) {
  Clock c(2500);  // the paper's 400 MHz analysis clock
  EXPECT_DOUBLE_EQ(c.freq_ghz(), 0.4);
  EXPECT_EQ(c.cycles(41), 102'500u);  // 41-cycle analysis = 102.5 ns
}

}  // namespace
}  // namespace tw::sim
