// Unit tests for the workload substrate: Table III profiles, the Fig. 3
// calibration of the trace generator, and trace record/replay.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "tw/common/bits.hpp"
#include "tw/core/read_stage.hpp"
#include "tw/stats/accumulator.hpp"
#include "tw/workload/generator.hpp"
#include "tw/workload/profiles.hpp"
#include "tw/workload/trace_io.hpp"

namespace tw::workload {
namespace {

// --------------------------------------------------------------- profiles --
TEST(Profiles, EightParsecWorkloads) {
  const auto& all = parsec_profiles();
  ASSERT_EQ(all.size(), 8u);
  EXPECT_EQ(all[0].name, "blackscholes");
  EXPECT_EQ(all[7].name, "vips");
}

TEST(Profiles, TableIIIRates) {
  EXPECT_DOUBLE_EQ(profile_by_name("blackscholes").rpki, 0.04);
  EXPECT_DOUBLE_EQ(profile_by_name("blackscholes").wpki, 0.02);
  EXPECT_DOUBLE_EQ(profile_by_name("canneal").rpki, 2.76);
  EXPECT_DOUBLE_EQ(profile_by_name("vips").wpki, 1.56);
  EXPECT_DOUBLE_EQ(profile_by_name("ferret").rpki, 1.67);
}

TEST(Profiles, Figure3Constraints) {
  // The paper's stated anchors: ~9.6 average changed bits (2.9 R + 6.7 S),
  // blackscholes ~2, vips ~19, vips/ferret near fifty-fifty.
  double sum_r = 0, sum_s = 0;
  for (const auto& p : parsec_profiles()) {
    sum_r += p.fig3_resets;
    sum_s += p.fig3_sets;
  }
  EXPECT_NEAR(sum_r / 8.0, 2.9, 0.45);
  EXPECT_NEAR(sum_s / 8.0, 6.7, 0.7);
  EXPECT_NEAR((sum_r + sum_s) / 8.0, 9.6, 1.0);

  const auto& bs = profile_by_name("blackscholes");
  EXPECT_NEAR(bs.mean_changed_bits(), 2.0, 0.5);
  const auto& vips = profile_by_name("vips");
  EXPECT_NEAR(vips.mean_changed_bits(), 19.0, 1.0);
  // fifty-fifty-ish outliers.
  EXPECT_GT(vips.fig3_resets / vips.fig3_sets, 0.6);
  const auto& ferret = profile_by_name("ferret");
  EXPECT_GT(ferret.fig3_resets / ferret.fig3_sets, 0.6);
  // The rest are SET-dominant.
  EXPECT_LT(profile_by_name("bodytrack").fig3_resets /
                profile_by_name("bodytrack").fig3_sets,
            0.5);
}

TEST(Profiles, UnknownNameThrows) {
  EXPECT_THROW(profile_by_name("doom"), ContractViolation);
}

TEST(Profiles, SharedFractionMonotone) {
  EXPECT_LT(shared_fraction(Level::kLow), shared_fraction(Level::kMedium));
  EXPECT_LT(shared_fraction(Level::kMedium),
            shared_fraction(Level::kHigh));
}

// -------------------------------------------------------------- generator --
TEST(Generator, Deterministic) {
  const auto& p = profile_by_name("ferret");
  const pcm::GeometryParams g;
  TraceGenerator a(p, g, 2, 99), b(p, g, 2, 99);
  for (int i = 0; i < 200; ++i) {
    const TraceOp oa = a.next(0);
    const TraceOp ob = b.next(0);
    EXPECT_EQ(oa.gap, ob.gap);
    EXPECT_EQ(oa.addr, ob.addr);
    EXPECT_EQ(oa.is_write, ob.is_write);
  }
}

TEST(Generator, GapMatchesRpkiWpki) {
  const auto& p = profile_by_name("canneal");  // 2.95 ops/kilo
  TraceGenerator gen(p, pcm::GeometryParams{}, 1, 5);
  stats::Accumulator gaps;
  for (int i = 0; i < 20000; ++i) gaps.add(static_cast<double>(gen.next(0).gap));
  EXPECT_NEAR(gaps.mean(), 1000.0 / (2.76 + 0.19), 15.0);
}

TEST(Generator, WriteFractionMatchesProfile) {
  const auto& p = profile_by_name("vips");
  TraceGenerator gen(p, pcm::GeometryParams{}, 1, 5);
  u32 writes = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) writes += gen.next(0).is_write;
  EXPECT_NEAR(static_cast<double>(writes) / n, 1.56 / (2.56 + 1.56), 0.02);
}

TEST(Generator, AddressesLineAlignedAndCoreSeparated) {
  const auto& p = profile_by_name("blackscholes");  // low sharing
  TraceGenerator gen(p, pcm::GeometryParams{}, 2, 5);
  for (int i = 0; i < 500; ++i) {
    const TraceOp a = gen.next(0);
    EXPECT_EQ(a.addr % 64, 0u);
  }
}

TEST(Generator, SharingLevelControlsOverlap) {
  const pcm::GeometryParams g;
  auto overlap_fraction = [&](const WorkloadProfile& p) {
    TraceGenerator gen(p, g, 2, 5);
    u32 shared = 0;
    const int n = 5000;
    for (int i = 0; i < n; ++i) {
      // Shared region lives above 0x1000'0000'0000.
      if (gen.next(0).addr >= 0x0000'1000'0000'0000ull) ++shared;
    }
    return static_cast<double>(shared) / n;
  };
  EXPECT_LT(overlap_fraction(profile_by_name("blackscholes")), 0.10);
  EXPECT_GT(overlap_fraction(profile_by_name("ferret")), 0.40);
}

// The central calibration test: when the generator's writes are measured
// by the Tetris read stage (the same code the schemes use), the per-unit
// RESET/SET counts must reproduce the Figure 3 targets.
class Fig3Calibration : public ::testing::TestWithParam<const char*> {};

TEST_P(Fig3Calibration, MeasuredTransitionsMatchProfile) {
  const auto& p = profile_by_name(GetParam());
  const pcm::GeometryParams g;
  mem::DataStore store(g.units_per_line(), 77, p.initial_ones_fraction);
  TraceGenerator gen(p, g, 1, 31337);

  stats::Accumulator sets, resets;
  int writes_measured = 0;
  // Exercise a realistic reuse pattern: repeatedly write lines from a
  // modest pool so lines see several writes each.
  for (int i = 0; i < 4000; ++i) {
    TraceOp op = gen.next(0);
    if (!op.is_write) continue;
    const pcm::LogicalLine next = gen.make_write_data(op.addr, store, 0);
    pcm::LineBuf& line = store.line(op.addr);
    const core::ReadStageResult rs = core::read_stage(line, next, 64);
    for (const auto& c : rs.counts) {
      // Exclude the tag pulse to mirror Fig. 3's per-data-unit counts.
      sets.add(static_cast<double>(c.n1));
      resets.add(static_cast<double>(c.n0));
    }
    schemes::apply_plans(line, rs.plans);
    ++writes_measured;
  }
  ASSERT_GT(writes_measured, 10);
  // 30% tolerance: tag cells, clamping and flips perturb the raw targets.
  EXPECT_NEAR(sets.mean(), p.fig3_sets, p.fig3_sets * 0.30 + 0.4);
  EXPECT_NEAR(resets.mean(), p.fig3_resets, p.fig3_resets * 0.30 + 0.4);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, Fig3Calibration,
    ::testing::Values("blackscholes", "bodytrack", "canneal", "dedup",
                      "ferret", "freqmine", "swaptions", "vips"));

TEST(Generator, BurstinessPreservesRate) {
  WorkloadProfile p = profile_by_name("vips");
  p.burstiness = 1.0;
  TraceGenerator smooth(profile_by_name("vips"), pcm::GeometryParams{}, 1,
                        5);
  TraceGenerator bursty(p, pcm::GeometryParams{}, 1, 5);

  // Count requests per fixed instruction window: burstiness shows up as
  // over-dispersion of the arrival counts, at the same long-run rate.
  auto dispersion = [](TraceGenerator& gen, double* mean_gap) {
    constexpr u64 kWindow = 20'000;  // instructions
    stats::Accumulator counts, gaps;
    u64 in_window = 0, pos = 0;
    for (int i = 0; i < 40000; ++i) {
      const u64 gap = gen.next(0).gap;
      gaps.add(static_cast<double>(gap));
      pos += gap;
      while (pos >= kWindow) {
        counts.add(static_cast<double>(in_window));
        in_window = 0;
        pos -= kWindow;
      }
      ++in_window;
    }
    *mean_gap = gaps.mean();
    return counts.variance() / counts.mean();
  };
  double mean_smooth = 0, mean_bursty = 0;
  const double d_smooth = dispersion(smooth, &mean_smooth);
  const double d_bursty = dispersion(bursty, &mean_bursty);
  // Same long-run rate (mean gap) within 10%...
  EXPECT_NEAR(mean_bursty, mean_smooth, mean_smooth * 0.10);
  // ...but clearly over-dispersed arrivals.
  EXPECT_GT(d_bursty, 2.0 * d_smooth);
}

TEST(Generator, BurstinessZeroIsUnchanged) {
  const auto& base = profile_by_name("ferret");
  WorkloadProfile p = base;
  p.burstiness = 0.0;
  TraceGenerator a(base, pcm::GeometryParams{}, 1, 9);
  TraceGenerator b(p, pcm::GeometryParams{}, 1, 9);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.next(0).gap, b.next(0).gap);
  }
}

// --------------------------------------------------------- content classes --
TEST(ContentClass, Names) {
  EXPECT_STREQ(content_class_name(ContentClass::kMutate), "mutate");
  EXPECT_STREQ(content_class_name(ContentClass::kCompressible),
               "compressible");
  EXPECT_STREQ(content_class_name(ContentClass::kZipfByte), "zipf");
  EXPECT_STREQ(content_class_name(ContentClass::kAdversarial),
               "adversarial");
}

TEST(ContentClass, MutateDefaultIsBitIdentical) {
  // Adding the content axis must not disturb the calibrated default.
  const auto& base = profile_by_name("ferret");
  WorkloadProfile p = base;
  p.content = ContentClass::kMutate;
  const pcm::GeometryParams g;
  mem::DataStore sa(g.units_per_line(), 7, 0.5);
  mem::DataStore sb(g.units_per_line(), 7, 0.5);
  TraceGenerator a(base, g, 1, 13), b(p, g, 1, 13);
  for (int i = 0; i < 100; ++i) {
    const TraceOp oa = a.next(0);
    const TraceOp ob = b.next(0);
    ASSERT_EQ(oa.addr, ob.addr);
    EXPECT_EQ(a.make_write_data(oa.addr, sa, 0),
              b.make_write_data(ob.addr, sb, 0));
  }
}

TEST(ContentClass, CompressibleHighHalfConstant) {
  WorkloadProfile p = profile_by_name("vips");
  p.content = ContentClass::kCompressible;
  const pcm::GeometryParams g;
  mem::DataStore store(g.units_per_line(), 7, 0.5);
  TraceGenerator gen(p, g, 1, 21);
  const u32 bits = g.data_unit_bits;
  const u64 high = low_mask(bits) ^ low_mask(bits / 2);
  for (int i = 0; i < 200; ++i) {
    const TraceOp op = gen.next(0);
    const pcm::LogicalLine next = gen.make_write_data(op.addr, store, 0);
    for (u32 u = 0; u < g.units_per_line(); ++u) {
      const u64 top = next.word(u) & high;
      EXPECT_TRUE(top == 0 || top == high) << std::hex << next.word(u);
    }
  }
}

TEST(ContentClass, ZipfByteSkewsLow) {
  WorkloadProfile p = profile_by_name("vips");
  p.content = ContentClass::kZipfByte;
  const pcm::GeometryParams g;
  mem::DataStore store(g.units_per_line(), 7, 0.5);
  TraceGenerator gen(p, g, 1, 22);
  u64 low_bytes = 0, total = 0;
  for (int i = 0; i < 200; ++i) {
    const TraceOp op = gen.next(0);
    const pcm::LogicalLine next = gen.make_write_data(op.addr, store, 0);
    for (u32 u = 0; u < g.units_per_line(); ++u) {
      for (u32 b = 0; b < g.data_unit_bits / 8; ++b) {
        const u64 byte = (next.word(u) >> (8 * b)) & 0xFF;
        low_bytes += byte < 32;  // uniform would hit this 12.5% of the time
        ++total;
      }
    }
  }
  // u^3 skew puts half the mass below 256 * (1/2)^(1/3)... check the
  // tail directly: P(byte < 32) = (32/256)^(1/3) = 0.5.
  EXPECT_GT(static_cast<double>(low_bytes) / static_cast<double>(total),
            0.35);
}

TEST(ContentClass, AdversarialFlipsExactlyHalf) {
  WorkloadProfile p = profile_by_name("vips");
  p.content = ContentClass::kAdversarial;
  const pcm::GeometryParams g;
  mem::DataStore store(g.units_per_line(), 7, 0.5);
  TraceGenerator gen(p, g, 1, 23);
  for (int i = 0; i < 100; ++i) {
    const TraceOp op = gen.next(0);
    const pcm::LogicalLine current = store.read_logical(op.addr);
    const pcm::LogicalLine next = gen.make_write_data(op.addr, store, 0);
    for (u32 u = 0; u < g.units_per_line(); ++u) {
      EXPECT_EQ(hamming(current.word(u), next.word(u)),
                g.data_unit_bits / 2);
    }
  }
}

TEST(Generator, InvalidBurstinessRejected) {
  WorkloadProfile p = profile_by_name("ferret");
  p.burstiness = 1.5;
  EXPECT_THROW(TraceGenerator(p, pcm::GeometryParams{}, 1, 1),
               ContractViolation);
}

// --------------------------------------------------------------- trace io --
TEST(TraceIo, SaveLoadRoundTrip) {
  const auto& p = profile_by_name("dedup");
  TraceGenerator gen(p, pcm::GeometryParams{}, 2, 11);
  const std::vector<TraceRecord> records = capture(gen, 2, 100);
  ASSERT_EQ(records.size(), 200u);

  const std::string path =
      (std::filesystem::temp_directory_path() / "tw_trace_test.bin")
          .string();
  save_trace(path, records, 2);
  u32 cores = 0;
  const std::vector<TraceRecord> loaded = load_trace(path, &cores);
  std::remove(path.c_str());

  EXPECT_EQ(cores, 2u);
  ASSERT_EQ(loaded.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(loaded[i].gap, records[i].gap);
    EXPECT_EQ(loaded[i].addr, records[i].addr);
    EXPECT_EQ(loaded[i].core, records[i].core);
    EXPECT_EQ(loaded[i].is_write, records[i].is_write);
  }
}

TEST(TraceIo, BadFileRejected) {
  EXPECT_THROW(load_trace("/nonexistent/nowhere.bin", nullptr),
               std::runtime_error);
  const std::string path =
      (std::filesystem::temp_directory_path() / "tw_bad_trace.bin")
          .string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTATRACE";
  }
  EXPECT_THROW(load_trace(path, nullptr), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tw::workload
