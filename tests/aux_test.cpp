// Tests for the auxiliary substrate: trace replay, repeated-seed
// statistics, the SVG chart emitter, and the MLC cell model.

#include <gtest/gtest.h>

#include <sstream>

#include "tw/common/svg.hpp"
#include "tw/core/factory.hpp"
#include "tw/harness/repeated.hpp"
#include "tw/pcm/mlc.hpp"
#include "tw/workload/replay.hpp"

namespace tw {
namespace {

// ---------------------------------------------------------------- replay --
TEST(Replay, ReproducesRecordedStream) {
  const auto& p = workload::profile_by_name("dedup");
  const pcm::GeometryParams g;
  workload::TraceGenerator gen(p, g, 2, 7);
  const auto records = workload::capture(gen, 2, 50);

  workload::TraceReplaySource replay(records, 2, p, g, 9);
  for (u32 c = 0; c < 2; ++c) {
    for (u32 i = 0; i < 50; ++i) {
      const workload::TraceOp op = replay.next(c);
      const auto& r = records[c * 50 + i];
      EXPECT_EQ(op.addr, r.addr);
      EXPECT_EQ(op.gap, r.gap);
      EXPECT_EQ(op.is_write, r.is_write);
    }
  }
}

TEST(Replay, WrapsAround) {
  const auto& p = workload::profile_by_name("vips");
  const pcm::GeometryParams g;
  workload::TraceGenerator gen(p, g, 1, 7);
  const auto records = workload::capture(gen, 1, 10);
  workload::TraceReplaySource replay(records, 1, p, g, 9);
  for (int i = 0; i < 25; ++i) replay.next(0);
  EXPECT_EQ(replay.wraps(0), 2u);
  // Wrapped stream repeats the recorded addresses.
  EXPECT_EQ(replay.next(0).addr, records[5].addr);
}

TEST(Replay, RejectsCoreWithoutRecords) {
  const auto& p = workload::profile_by_name("vips");
  const pcm::GeometryParams g;
  std::vector<workload::TraceRecord> records(1);
  records[0].core = 0;
  EXPECT_THROW(workload::TraceReplaySource(records, 2, p, g, 1),
               ContractViolation);
}

TEST(Replay, DrivesFullSystemDeterministically) {
  const auto& p = workload::profile_by_name("ferret");
  const pcm::PcmConfig cfg = pcm::table2_config();
  workload::TraceGenerator gen(p, cfg.geometry, 2, 5);
  const auto records = workload::capture(gen, 2, 400);

  auto run_once = [&]() {
    sim::Simulator sim;
    stats::Registry reg;
    const auto scheme =
        core::make_scheme(schemes::SchemeKind::kTetris, cfg);
    mem::Controller ctl(sim, cfg, mem::ControllerConfig{}, *scheme, reg);
    workload::TraceReplaySource src(records, 2, p, cfg.geometry, 11);
    cpu::MultiCore cpus(sim, cpu::CoreConfig{}, 2, ctl, src, 30'000);
    cpus.start();
    sim.run(ms(5'000));
    return cpus.runtime();
  };
  const Tick a = run_once();
  const Tick b = run_once();
  EXPECT_GT(a, 0u);
  EXPECT_EQ(a, b);
}

// -------------------------------------------------------------- repeated --
TEST(Repeated, SummariesAreConsistent) {
  harness::SystemConfig cfg;
  cfg.instructions_per_core = 8'000;
  const auto& p = workload::profile_by_name("canneal");
  const harness::RepeatedMetrics r = harness::run_repeated(
      cfg, p, schemes::SchemeKind::kTetris, 4);
  ASSERT_EQ(r.runs.size(), 4u);
  EXPECT_TRUE(r.all_completed());
  EXPECT_GE(r.read_latency_ns.max, r.read_latency_ns.mean);
  EXPECT_LE(r.read_latency_ns.min, r.read_latency_ns.mean);
  EXPECT_GE(r.read_latency_ns.stddev, 0.0);
  EXPECT_GE(r.ipc.ci95, 0.0);
  // Seeds genuinely differ.
  EXPECT_NE(r.runs[0].runtime_ns, r.runs[1].runtime_ns);
}

TEST(Repeated, MatchesSingleRunsPerSeed) {
  harness::SystemConfig cfg;
  cfg.instructions_per_core = 6'000;
  cfg.seed = 100;
  const auto& p = workload::profile_by_name("dedup");
  const harness::RepeatedMetrics r =
      harness::run_repeated(cfg, p, schemes::SchemeKind::kDcw, 3);
  for (u32 i = 0; i < 3; ++i) {
    harness::SystemConfig single = cfg;
    single.seed = 100 + i;
    const harness::RunMetrics m =
        harness::run_system(single, p, schemes::SchemeKind::kDcw);
    EXPECT_DOUBLE_EQ(r.runs[i].ipc, m.ipc);
  }
}

// ------------------------------------------------------------------- svg --
TEST(Svg, RendersWellFormedChart) {
  BarChart chart("Figure X", "normalized");
  chart.set_series({"dcw", "tetris"});
  chart.add_group("vips", {1.0, 0.35});
  chart.add_group("ferret", {1.0, 0.4});
  chart.set_reference(1.0);
  const std::string svg = chart.to_string();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("Figure X"), std::string::npos);
  EXPECT_NE(svg.find("vips"), std::string::npos);
  EXPECT_NE(svg.find("tetris"), std::string::npos);
  EXPECT_NE(svg.find("stroke-dasharray"), std::string::npos);  // ref line
  // 2 groups x 2 series bars + legend swatches.
  std::size_t rects = 0, pos = 0;
  while ((pos = svg.find("<rect", pos)) != std::string::npos) {
    ++rects;
    ++pos;
  }
  EXPECT_GE(rects, 1u + 4u + 2u);  // background + bars + legend
}

TEST(Svg, EscapesMarkup) {
  BarChart chart("a < b & c", "y");
  chart.set_series({"s"});
  chart.add_group("<g>", {1.0});
  const std::string svg = chart.to_string();
  EXPECT_EQ(svg.find("<g>"), std::string::npos);
  EXPECT_NE(svg.find("&lt;g&gt;"), std::string::npos);
  EXPECT_NE(svg.find("a &lt; b &amp; c"), std::string::npos);
}

TEST(Svg, MismatchedSeriesRejected) {
  BarChart chart("t", "y");
  chart.set_series({"a", "b"});
  EXPECT_THROW(chart.add_group("g", {1.0}), ContractViolation);
}

// ------------------------------------------------------------------- mlc --
TEST(Mlc, GrayCodedLevels) {
  EXPECT_EQ(pcm::mlc_level(false, false), 0u);
  EXPECT_EQ(pcm::mlc_level(false, true), 1u);
  EXPECT_EQ(pcm::mlc_level(true, true), 2u);
  EXPECT_EQ(pcm::mlc_level(true, false), 3u);
}

TEST(Mlc, AdjacentLevelsDifferInOneBit) {
  // The Gray property: stepping one level flips exactly one data bit.
  const bool encoding[4][2] = {
      {false, false}, {false, true}, {true, true}, {true, false}};
  for (u32 l = 0; l + 1 < 4; ++l) {
    const int diff = (encoding[l][0] != encoding[l + 1][0]) +
                     (encoding[l][1] != encoding[l + 1][1]);
    EXPECT_EQ(diff, 1) << "levels " << l << "," << l + 1;
  }
}

TEST(Mlc, LevelsOfWord) {
  // Word 0b1001: cell0 = bits1:0 = 01 -> level 1; cell1 = bits3:2 = 10
  // -> level 3.
  const auto levels = pcm::mlc_levels(0b1001);
  EXPECT_EQ(levels[0], 1u);
  EXPECT_EQ(levels[1], 3u);
  EXPECT_EQ(levels[2], 0u);
}

TEST(Mlc, IdenticalDataCostsNothing) {
  const pcm::MlcWriteCost c =
      pcm::mlc_write_cost(0xDEADBEEF, 0xDEADBEEF, pcm::MlcParams{});
  EXPECT_EQ(c.cells_changed, 0u);
  EXPECT_EQ(c.program_time, 0u);
}

TEST(Mlc, CostScalesWithChangedCells) {
  const pcm::MlcParams p;
  const pcm::MlcWriteCost one = pcm::mlc_write_cost(0, 0b01, p);
  EXPECT_EQ(one.cells_changed, 1u);
  EXPECT_EQ(one.total_iterations, p.program_iterations[1]);
  EXPECT_EQ(one.program_time,
            p.program_iterations[1] * (p.iteration_pulse + p.verify_read));

  // Parallel programming: time is the max train, not the sum.
  const pcm::MlcWriteCost two = pcm::mlc_write_cost(0, 0b0101, p);
  EXPECT_EQ(two.cells_changed, 2u);
  EXPECT_EQ(two.program_time, one.program_time);
  EXPECT_EQ(two.total_iterations, 2 * one.total_iterations);
}

TEST(Mlc, WorstCellTimeIsSlowestLevel) {
  pcm::MlcParams p;
  p.program_iterations = {1, 9, 5, 2};
  EXPECT_EQ(p.worst_cell_time(), 9 * (p.iteration_pulse + p.verify_read));
}

TEST(Mlc, EffectiveConfigValidAndSlower) {
  const pcm::PcmConfig slc = pcm::table2_config();
  const pcm::PcmConfig mlc =
      pcm::mlc_effective_config(slc, pcm::MlcParams{});
  EXPECT_NO_THROW(mlc.validate());
  EXPECT_GT(mlc.timing.t_set, slc.timing.t_reset);
  EXPECT_GE(mlc.timing.t_reset, slc.timing.t_reset);
  EXPECT_EQ(mlc.geometry.banks, slc.geometry.banks);
  // All schemes still run on the MLC config.
  for (const auto kind : core::all_scheme_kinds()) {
    const auto scheme = core::make_scheme(kind, mlc);
    pcm::LineBuf line(8);
    pcm::LogicalLine next(8);
    next.set_word(0, 0xF0F0);
    EXPECT_GT(scheme->plan_write(line, next).latency, 0u);
  }
}

}  // namespace
}  // namespace tw
