// Differential scheduler test: the bank-indexed controller must be
// observationally identical to the frozen linear-scan reference
// (tests/reference_controller.hpp) — same completions in the same order
// with the same ticks, same rejections, same stats, energy, and wear —
// across randomized request streams covering every policy combination:
// strict/opportunistic drain, batching, write pausing, Start-Gap wear
// leveling, coalescing/forwarding on/off, and multi-subarray geometries.
//
// The streams here total well over 10k randomized requests. Any drift in
// issue order shows up as a tick or ordering mismatch in the completion
// log; any drift in resource modeling shows up in the stats block.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "reference_controller.hpp"
#include "tw/common/env.hpp"
#include "tw/common/rng.hpp"
#include "tw/core/factory.hpp"
#include "tw/harness/experiment.hpp"
#include "tw/mem/address_map.hpp"
#include "tw/mem/controller.hpp"
#include "tw/sim/simulator.hpp"
#include "tw/workload/profiles.hpp"

namespace tw::mem {
namespace {

// One request arrival in a pre-generated stream (identical for both
// controllers; acceptance/rejection is part of the observed behavior).
struct Arrival {
  Tick at = 0;
  bool write = false;
  Addr addr = 0;
  u64 word = 0;
};

struct StreamShape {
  u32 requests = 2000;
  double write_frac = 0.5;
  u64 num_lines = 256;     ///< footprint in cache lines
  u64 max_gap = ns(120);   ///< uniform inter-arrival gap bound
  u32 distinct_words = 8;  ///< small payload alphabet aids coalescing
};

std::vector<Arrival> make_stream(u64 seed, const StreamShape& shape) {
  Rng rng(seed);
  std::vector<Arrival> evs;
  evs.reserve(shape.requests);
  Tick t = 0;
  for (u32 i = 0; i < shape.requests; ++i) {
    t += rng.below(shape.max_gap + 1);
    Arrival a;
    a.at = t;
    a.write = rng.chance(shape.write_frac);
    a.addr = rng.below(shape.num_lines) * 64;
    a.word = rng.below(shape.distinct_words) * 0x0101010101010101ull;
    evs.push_back(a);
  }
  return evs;
}

struct Completion {
  char kind = '?';
  u64 id = 0;
  Addr addr = 0;
  Tick enqueue = 0;
  Tick start = 0;
  Tick complete = 0;

  bool operator==(const Completion&) const = default;
};

/// Everything observable about one run.
struct Observation {
  std::vector<Completion> done;
  u64 rejects = 0;
  u64 sim_events = 0;
  bool idle = false;

  u64 reads = 0, writes = 0, forwarded = 0, coalesced = 0, silent = 0;
  u64 flipped = 0, pauses = 0, gap_moves = 0, batched = 0;
  u64 batch_issues = 0, batch_packs = 0;
  double batch_lines_sum = 0, batch_lines_max = 0, batch_occupancy_sum = 0;
  double read_lat_sum = 0, write_lat_sum = 0;
  double write_units_sum = 0, write_service_sum = 0;
  double write_pj = 0, read_pj = 0;
  u64 wear_writes = 0, wear_bits = 0, wear_max_line = 0, wear_lines = 0;
};

template <class ControllerT>
Observation run_one(const pcm::PcmConfig& pcm_cfg, ControllerConfig ccfg,
                    schemes::SchemeKind kind,
                    const std::vector<Arrival>& stream) {
  sim::Simulator sim;
  stats::Registry reg;
  const auto scheme = core::make_scheme(kind, pcm_cfg);
  ControllerT ctl(sim, pcm_cfg, ccfg, *scheme, reg);

  Observation obs;
  ctl.set_read_callback([&](const MemoryRequest& r) {
    obs.done.push_back(
        {'R', r.id, r.addr, r.enqueue_tick, r.start_tick, r.complete_tick});
  });
  ctl.set_write_callback([&](const MemoryRequest& r) {
    obs.done.push_back(
        {'W', r.id, r.addr, r.enqueue_tick, r.start_tick, r.complete_tick});
  });

  const u32 units = pcm_cfg.geometry.units_per_line();
  for (const Arrival& a : stream) {
    sim.run(a.at);
    MemoryRequest req;
    req.addr = a.addr;
    req.type = a.write ? ReqType::kWrite : ReqType::kRead;
    if (a.write) {
      req.data = pcm::LogicalLine(units);
      for (u32 i = 0; i < units; ++i) req.data.set_word(i, a.word + i);
    }
    if (!ctl.enqueue(std::move(req))) ++obs.rejects;
  }
  sim.run();

  obs.sim_events = sim.executed();
  obs.idle = ctl.idle();
  obs.reads = reg.counter("mem.reads").value();
  obs.writes = reg.counter("mem.writes").value();
  obs.forwarded = reg.counter("mem.reads_forwarded").value();
  obs.coalesced = reg.counter("mem.writes_coalesced").value();
  obs.silent = reg.counter("mem.writes_silent").value();
  obs.flipped = reg.counter("mem.units_flipped").value();
  obs.pauses = reg.counter("mem.write_pauses").value();
  obs.gap_moves = reg.counter("mem.gap_moves").value();
  obs.batched = reg.counter("mem.writes_batched").value();
  obs.batch_issues = reg.accumulator("mem.batch_lines").count();
  obs.batch_packs = reg.accumulator("mem.batch_occupancy").count();
  obs.batch_lines_sum = reg.accumulator("mem.batch_lines").sum();
  obs.batch_lines_max = reg.accumulator("mem.batch_lines").max();
  obs.batch_occupancy_sum = reg.accumulator("mem.batch_occupancy").sum();
  obs.read_lat_sum = reg.accumulator("mem.read_latency_ns").sum();
  obs.write_lat_sum = reg.accumulator("mem.write_latency_ns").sum();
  obs.write_units_sum = reg.accumulator("mem.write_units").sum();
  obs.write_service_sum = reg.accumulator("mem.write_service_ns").sum();
  obs.write_pj = ctl.energy().write_energy_pj();
  obs.read_pj = ctl.energy().read_energy_pj();
  const pcm::WearSummary wear = ctl.wear().summary();
  obs.wear_writes = wear.total_writes;
  obs.wear_bits = wear.total_bits;
  obs.wear_max_line = wear.max_line_bits;
  obs.wear_lines = wear.lines_touched;
  return obs;
}

void expect_equivalent(const Observation& idx, const Observation& ref) {
  // Strict drain legitimately strands a part-full write queue at end of
  // stream; what matters is that both controllers agree on the end state.
  EXPECT_EQ(idx.idle, ref.idle);
  ASSERT_EQ(idx.done.size(), ref.done.size());
  for (std::size_t i = 0; i < idx.done.size(); ++i) {
    if (!(idx.done[i] == ref.done[i])) {
      const Completion& a = idx.done[i];
      const Completion& b = ref.done[i];
      FAIL() << "completion " << i << " diverged: indexed {" << a.kind
             << " id=" << a.id << " addr=" << a.addr << " enq=" << a.enqueue
             << " start=" << a.start << " done=" << a.complete
             << "} vs reference {" << b.kind << " id=" << b.id
             << " addr=" << b.addr << " enq=" << b.enqueue
             << " start=" << b.start << " done=" << b.complete << "}";
    }
  }
  EXPECT_EQ(idx.rejects, ref.rejects);
  EXPECT_EQ(idx.sim_events, ref.sim_events);
  EXPECT_EQ(idx.reads, ref.reads);
  EXPECT_EQ(idx.writes, ref.writes);
  EXPECT_EQ(idx.forwarded, ref.forwarded);
  EXPECT_EQ(idx.coalesced, ref.coalesced);
  EXPECT_EQ(idx.silent, ref.silent);
  EXPECT_EQ(idx.flipped, ref.flipped);
  EXPECT_EQ(idx.pauses, ref.pauses);
  EXPECT_EQ(idx.gap_moves, ref.gap_moves);
  EXPECT_EQ(idx.batched, ref.batched);
  EXPECT_EQ(idx.batch_issues, ref.batch_issues);
  EXPECT_EQ(idx.batch_packs, ref.batch_packs);
  EXPECT_EQ(idx.batch_lines_sum, ref.batch_lines_sum);
  EXPECT_EQ(idx.batch_occupancy_sum, ref.batch_occupancy_sum);
  // Exact double equality: same arithmetic in the same order.
  EXPECT_EQ(idx.read_lat_sum, ref.read_lat_sum);
  EXPECT_EQ(idx.write_lat_sum, ref.write_lat_sum);
  EXPECT_EQ(idx.write_units_sum, ref.write_units_sum);
  EXPECT_EQ(idx.write_service_sum, ref.write_service_sum);
  EXPECT_EQ(idx.write_pj, ref.write_pj);
  EXPECT_EQ(idx.read_pj, ref.read_pj);
  EXPECT_EQ(idx.wear_writes, ref.wear_writes);
  EXPECT_EQ(idx.wear_bits, ref.wear_bits);
  EXPECT_EQ(idx.wear_max_line, ref.wear_max_line);
  EXPECT_EQ(idx.wear_lines, ref.wear_lines);
}

struct Scenario {
  std::string name;
  ControllerConfig cfg;
  schemes::SchemeKind kind = schemes::SchemeKind::kDcw;
  StreamShape shape;
  u32 subarrays_per_bank = 1;
  u32 seeds = 2;
};

void run_scenario(const Scenario& sc) {
  pcm::PcmConfig pcm_cfg = pcm::table2_config();
  pcm_cfg.geometry.subarrays_per_bank = sc.subarrays_per_bank;
  // Nightly CI multiplies the per-scenario seed count and offsets the
  // stream seeds (TW_FUZZ_SCALE / TW_FUZZ_SEED in tw/common/env.hpp);
  // the defaults keep the fast, fixed presubmit campaign. The trace
  // carries the absolute stream seed so any divergence reproduces with
  // a one-line local run.
  const u32 seeds = sc.seeds * fuzz_scale_env();
  for (u32 s = 0; s < seeds; ++s) {
    const u64 stream_seed = 0xC0FFEE + fuzz_seed_env() + s * 977;
    SCOPED_TRACE(sc.name + " stream_seed=" + std::to_string(stream_seed));
    const auto stream = make_stream(stream_seed, sc.shape);
    const auto idx =
        run_one<Controller>(pcm_cfg, sc.cfg, sc.kind, stream);
    const auto ref =
        run_one<ref::ReferenceController>(pcm_cfg, sc.cfg, sc.kind, stream);
    // Guard against vacuous passes: every scenario must complete traffic.
    EXPECT_GT(idx.done.size(), 100u);
    expect_equivalent(idx, ref);
  }
}

TEST(SchedDiff, StrictDrainDcw) {
  Scenario sc;
  sc.name = "strict-dcw";
  sc.shape.requests = 2000;
  run_scenario(sc);
}

TEST(SchedDiff, OpportunisticDrainTetris) {
  Scenario sc;
  sc.name = "opportunistic-tetris";
  sc.cfg.drain = ControllerConfig::DrainPolicy::kOpportunistic;
  sc.kind = schemes::SchemeKind::kTetris;
  sc.shape.requests = 2000;
  sc.shape.write_frac = 0.7;
  run_scenario(sc);
}

TEST(SchedDiff, BatchedWritesMultiSubarray) {
  Scenario sc;
  sc.name = "batch4-tetris-sub4";
  sc.cfg.write_batch = 4;
  sc.kind = schemes::SchemeKind::kTetris;
  sc.subarrays_per_bank = 4;
  sc.shape.requests = 2000;
  sc.shape.write_frac = 0.8;
  run_scenario(sc);
}

TEST(SchedDiff, WritePausing) {
  Scenario sc;
  sc.name = "pausing-dcw";
  sc.cfg.write_pausing = true;
  sc.cfg.pause_quantum = ns(50);
  sc.shape.requests = 1500;
  sc.shape.write_frac = 0.6;
  sc.shape.num_lines = 64;  // concentrate traffic to force pause conflicts
  run_scenario(sc);

  // The scenario must actually exercise pausing, not skate past it.
  pcm::PcmConfig pcm_cfg = pcm::table2_config();
  const auto stream = make_stream(0xC0FFEE, sc.shape);
  const auto obs = run_one<Controller>(pcm_cfg, sc.cfg, sc.kind, stream);
  EXPECT_GT(obs.pauses, 0u);
}

TEST(SchedDiff, WearLevelingWithBatching) {
  Scenario sc;
  sc.name = "startgap-batch4";
  sc.cfg.wear_leveling = true;
  sc.cfg.start_gap.region_lines = 64;
  sc.cfg.start_gap.gap_write_interval = 8;
  sc.cfg.write_batch = 4;
  sc.shape.requests = 1500;
  sc.shape.write_frac = 0.7;
  sc.shape.num_lines = 128;  // two Start-Gap regions
  run_scenario(sc);

  pcm::PcmConfig pcm_cfg = pcm::table2_config();
  const auto stream = make_stream(0xC0FFEE, sc.shape);
  const auto obs = run_one<Controller>(pcm_cfg, sc.cfg, sc.kind, stream);
  EXPECT_GT(obs.gap_moves, 0u);
}

TEST(SchedDiff, PausingPlusLevelingOpportunistic) {
  Scenario sc;
  sc.name = "pausing-startgap-opportunistic-sub2";
  sc.cfg.drain = ControllerConfig::DrainPolicy::kOpportunistic;
  sc.cfg.write_pausing = true;
  sc.cfg.pause_quantum = ns(50);
  sc.cfg.wear_leveling = true;
  sc.cfg.start_gap.region_lines = 64;
  sc.cfg.start_gap.gap_write_interval = 8;
  sc.subarrays_per_bank = 2;
  sc.shape.requests = 1500;
  sc.shape.write_frac = 0.5;
  sc.shape.num_lines = 128;
  run_scenario(sc);
}

TEST(SchedDiff, PauseDrainInteractionFamily) {
  // The pause machinery interacts with the drain-mode state machine: a
  // paused write holds its bank while the queue level crosses the
  // drain/low-watermark thresholds, and the two controllers must agree on
  // which request wins the bank after every pause-resume. Sweep both
  // drain policies against short and long pause quanta and both watermark
  // settings; concentrated traffic forces genuine pause conflicts.
  for (const auto drain : {ControllerConfig::DrainPolicy::kStrict,
                           ControllerConfig::DrainPolicy::kOpportunistic}) {
    for (const u32 watermark : {0u, 4u}) {
      for (const Tick quantum : {ns(20), ns(200)}) {
        Scenario sc;
        sc.name = std::string("pause-drain-") +
                  (drain == ControllerConfig::DrainPolicy::kStrict
                       ? "strict"
                       : "opportunistic") +
                  "-wm" + std::to_string(watermark) + "-q" +
                  std::to_string(quantum);
        sc.cfg.drain = drain;
        sc.cfg.drain_low_watermark = watermark;
        sc.cfg.write_pausing = true;
        sc.cfg.pause_quantum = quantum;
        sc.shape.requests = 1200;
        sc.shape.write_frac = 0.6;
        sc.shape.num_lines = 64;
        sc.shape.max_gap = ns(60);  // oversubscribed: drains happen
        run_scenario(sc);
      }
    }
  }

  // The family must actually pause under both drain policies.
  pcm::PcmConfig pcm_cfg = pcm::table2_config();
  for (const auto drain : {ControllerConfig::DrainPolicy::kStrict,
                           ControllerConfig::DrainPolicy::kOpportunistic}) {
    ControllerConfig ccfg;
    ccfg.drain = drain;
    ccfg.drain_low_watermark = 4;
    ccfg.write_pausing = true;
    ccfg.pause_quantum = ns(20);
    StreamShape shape;
    shape.requests = 1200;
    shape.write_frac = 0.6;
    shape.num_lines = 64;
    shape.max_gap = ns(60);
    const auto stream = make_stream(0xC0FFEE, shape);
    const auto obs =
        run_one<Controller>(pcm_cfg, ccfg, schemes::SchemeKind::kDcw, stream);
    EXPECT_GT(obs.pauses, 0u);
  }
}

TEST(SchedDiff, PausedWritesUnderBackpressure) {
  // Pausing while the queues are saturated: resumed writes compete with a
  // full write queue and rejected arrivals, so the pause bookkeeping must
  // not leak queue slots in either controller.
  Scenario sc;
  sc.name = "pause-tiny-queues";
  sc.cfg.write_pausing = true;
  sc.cfg.pause_quantum = ns(50);
  sc.cfg.read_queue_entries = 8;
  sc.cfg.write_queue_entries = 8;
  sc.cfg.drain_low_watermark = 2;
  sc.shape.requests = 1500;
  sc.shape.write_frac = 0.6;
  sc.shape.num_lines = 64;
  sc.shape.max_gap = ns(40);
  run_scenario(sc);

  pcm::PcmConfig pcm_cfg = pcm::table2_config();
  const auto stream = make_stream(0xC0FFEE, sc.shape);
  const auto obs = run_one<Controller>(pcm_cfg, sc.cfg, sc.kind, stream);
  EXPECT_GT(obs.pauses, 0u);
  EXPECT_GT(obs.rejects, 0u);
}

TEST(SchedDiff, PausingBatchedTetrisOpportunistic) {
  // Batched writes + pausing + opportunistic drain: a paused batch holds
  // several lines' worth of service, the strongest stress on the bank
  // epoch bookkeeping shared by the pause and drain paths.
  Scenario sc;
  sc.name = "pause-batch4-tetris-opportunistic";
  sc.cfg.drain = ControllerConfig::DrainPolicy::kOpportunistic;
  sc.cfg.write_pausing = true;
  sc.cfg.pause_quantum = ns(50);
  sc.cfg.write_batch = 4;
  sc.kind = schemes::SchemeKind::kTetris;
  sc.subarrays_per_bank = 4;
  sc.shape.requests = 1500;
  sc.shape.write_frac = 0.7;
  sc.shape.num_lines = 64;
  run_scenario(sc);
}

TEST(SchedDiff, BatchMaxLinesOneDegeneracyFamily) {
  // batch.max_lines=1 maps to write_batch=1 in the harness (see
  // experiment.cpp): single-line batch formation must degenerate to the
  // unbatched per-line issue path, bit-identical to the frozen reference
  // controller across schemes and drain policies. Any multi-line machinery
  // leaking into the K=1 case (extra events, different service pricing,
  // spurious batch stats) diverges here.
  for (const auto kind : {schemes::SchemeKind::kTetris,
                          schemes::SchemeKind::kDcw,
                          schemes::SchemeKind::kFlipNWrite}) {
    for (const auto drain : {ControllerConfig::DrainPolicy::kStrict,
                             ControllerConfig::DrainPolicy::kOpportunistic}) {
      Scenario sc;
      sc.name = std::string("batch1-") + std::string(schemes::scheme_name(kind)) +
                (drain == ControllerConfig::DrainPolicy::kStrict
                     ? "-strict"
                     : "-opportunistic");
      sc.cfg.write_batch = 1;
      sc.cfg.drain = drain;
      sc.kind = kind;
      sc.seeds = 1;
      sc.shape.requests = 1200;
      sc.shape.write_frac = 0.7;
      run_scenario(sc);
    }
  }

  // And the K=1 runs must record zero multi-line batches: the degenerate
  // case takes the per-line path, it doesn't form 1-line batches.
  pcm::PcmConfig pcm_cfg = pcm::table2_config();
  ControllerConfig ccfg;
  ccfg.write_batch = 1;
  StreamShape shape;
  shape.requests = 1200;
  shape.write_frac = 0.7;
  const auto stream = make_stream(0xC0FFEE, shape);
  const auto obs = run_one<Controller>(pcm_cfg, ccfg,
                                       schemes::SchemeKind::kTetris, stream);
  EXPECT_EQ(obs.batched, 0u);
  EXPECT_EQ(obs.batch_issues, 0u);
  EXPECT_EQ(obs.batch_packs, 0u);
}

TEST(SchedDiff, BatchMaxLinesDegeneracyAtHarnessLevel) {
  // Same degeneracy one layer up: a full system run with batch.max_lines=1
  // must be bit-identical to the untouched default (the controller's
  // write_batch already defaults to 1), and both must record no batches.
  harness::SystemConfig base;
  base.cores = 2;
  base.instructions_per_core = 30'000;
  base.seed = 7;
  harness::SystemConfig k1 = base;
  k1.batch.max_lines = 1;
  const auto& wl = workload::profile_by_name("vips");
  const auto a =
      harness::run_system(base, wl, schemes::SchemeKind::kTetris);
  const auto b = harness::run_system(k1, wl, schemes::SchemeKind::kTetris);
  EXPECT_TRUE(a.completed);
  EXPECT_GT(a.writes, 0u);
  EXPECT_EQ(a.ipc, b.ipc);
  EXPECT_EQ(a.runtime_ns, b.runtime_ns);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.write_latency_ns, b.write_latency_ns);
  EXPECT_EQ(a.write_service_ns, b.write_service_ns);
  EXPECT_EQ(a.write_energy_pj, b.write_energy_pj);
  EXPECT_EQ(a.writes_batched, b.writes_batched);
  EXPECT_EQ(a.writes_batched, 0u);
  EXPECT_EQ(a.batch_lines, b.batch_lines);
  EXPECT_EQ(a.batch_occupancy, b.batch_occupancy);
}

TEST(SchedDiff, MultiLineBatchVsReferenceUpToEight) {
  // The multi-line path itself, differentially: K in {2, 8} batched Tetris
  // against the frozen reference controller on write-heavy streams.
  for (const u32 k : {2u, 8u}) {
    Scenario sc;
    sc.name = "batchK" + std::to_string(k) + "-tetris";
    sc.cfg.write_batch = k;
    sc.kind = schemes::SchemeKind::kTetris;
    sc.seeds = 1;
    sc.shape.requests = 2000;
    sc.shape.write_frac = 0.8;
    run_scenario(sc);
  }
}

TEST(SchedDiff, MultiLineBatchAgeAndDrainOrder) {
  // Strict age-ordering and drain-cutoff rules with K > 1: same-bank
  // writes must complete in enqueue (age) order — batch formation takes a
  // lead write plus *older-than-any-later-arrival* same-bank followers,
  // never reordering across a drain boundary — and no batch may exceed
  // the configured line cap.
  pcm::PcmConfig pcm_cfg = pcm::table2_config();
  ControllerConfig ccfg;
  ccfg.write_batch = 4;
  StreamShape shape;
  shape.requests = 2500;
  shape.write_frac = 0.8;
  shape.num_lines = 64;  // few banks' worth: deep same-bank queues
  const auto stream = make_stream(0xA9E0, shape);
  const auto obs = run_one<Controller>(pcm_cfg, ccfg,
                                       schemes::SchemeKind::kTetris, stream);

  // The stream must actually exercise multi-line batches.
  EXPECT_GT(obs.batched, 0u);
  EXPECT_GT(obs.batch_packs, 0u);
  // Drain cutoff: no batch ever exceeds write_batch lines.
  EXPECT_LE(obs.batch_lines_max, static_cast<double>(ccfg.write_batch));
  EXPECT_GT(obs.batch_lines_max, 1.0);

  // Completion callbacks fire in simulated-time order, and within one
  // batch in the batch's own line order — so per bank, the write
  // completion log must be non-decreasing in enqueue tick.
  const mem::AddressMap map(pcm_cfg.geometry);
  std::vector<Tick> last_enqueue(map.total_banks(), 0);
  u32 write_completions = 0;
  for (const Completion& c : obs.done) {
    if (c.kind != 'W') continue;
    ++write_completions;
    const u32 bank = map.flat_bank(c.addr);
    EXPECT_GE(c.enqueue, last_enqueue[bank])
        << "bank " << bank << " write id " << c.id
        << " completed before an older same-bank write";
    last_enqueue[bank] = c.enqueue;
  }
  EXPECT_GT(write_completions, 500u);
}

TEST(SchedDiff, PalpDisabledFamilyMultiSubarray) {
  // With palp.enabled=false the PALP machinery must be completely inert:
  // multi-subarray runs stay bit-identical to the frozen reference
  // controller (which predates PALP and ignores the config block) across
  // schemes and drain policies.
  for (const u32 subarrays : {4u, 8u}) {
    for (const auto kind :
         {schemes::SchemeKind::kDcw, schemes::SchemeKind::kTetris}) {
      for (const auto drain :
           {ControllerConfig::DrainPolicy::kStrict,
            ControllerConfig::DrainPolicy::kOpportunistic}) {
        Scenario sc;
        sc.name = std::string("palp-off-sub") + std::to_string(subarrays) +
                  "-" + std::string(schemes::scheme_name(kind)) +
                  (drain == ControllerConfig::DrainPolicy::kStrict
                       ? "-strict"
                       : "-opportunistic");
        sc.cfg.palp.enabled = false;
        sc.cfg.drain = drain;
        sc.kind = kind;
        sc.subarrays_per_bank = subarrays;
        sc.seeds = 1;
        sc.shape.requests = 1200;
        sc.shape.write_frac = 0.6;
        run_scenario(sc);
      }
    }
  }
}

TEST(SchedDiff, PalpSinglePartitionDegeneracy) {
  // palp.enabled=true at 1 subarray/bank: the controller detects the
  // degenerate geometry and falls back to the baseline scheduler, so the
  // run must still be bit-identical to the PALP-oblivious reference.
  Scenario sc;
  sc.name = "palp-on-sub1-tetris";
  sc.cfg.palp.enabled = true;
  sc.kind = schemes::SchemeKind::kTetris;
  sc.subarrays_per_bank = 1;
  sc.shape.requests = 1500;
  sc.shape.write_frac = 0.6;
  run_scenario(sc);
}

TEST(SchedDiff, NoCoalescingNoForwardingThreeStage) {
  Scenario sc;
  sc.name = "raw-threestage";
  sc.cfg.write_coalescing = false;
  sc.cfg.read_forwarding = false;
  sc.kind = schemes::SchemeKind::kThreeStage;
  sc.shape.requests = 1000;
  run_scenario(sc);
}

TEST(SchedDiff, TinyQueuesBackpressure) {
  Scenario sc;
  sc.name = "tiny-queues";
  sc.cfg.read_queue_entries = 8;
  sc.cfg.write_queue_entries = 8;
  sc.cfg.drain_low_watermark = 2;
  sc.shape.requests = 1500;
  sc.shape.max_gap = ns(40);  // oversubscribe to force rejections
  run_scenario(sc);

  pcm::PcmConfig pcm_cfg = pcm::table2_config();
  const auto stream = make_stream(0xC0FFEE, sc.shape);
  const auto obs = run_one<Controller>(pcm_cfg, sc.cfg, sc.kind, stream);
  EXPECT_GT(obs.rejects, 0u);
}

}  // namespace
}  // namespace tw::mem
