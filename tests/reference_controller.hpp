#pragma once
// Reference FRFCFS controller: the pre-index linear-scan implementation,
// preserved verbatim (modulo namespace) as the scheduling oracle for the
// differential test. The production controller replaced the O(queue)
// deque scans with bank-indexed intrusive lists; this copy keeps the
// original semantics — linear read/write queue sweeps, the
// `write_q_.begin()` restart after a batch erase, the unordered_map
// leveler lookup — so any divergence in issue order, stats, or timing
// between the two is a bug in the index, not in the test.
//
// Do not "improve" this file: its value is that it stays frozen.

#include <algorithm>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "tw/common/assert.hpp"
#include "tw/common/types.hpp"
#include "tw/mem/address_map.hpp"
#include "tw/mem/controller.hpp"
#include "tw/mem/data_store.hpp"
#include "tw/mem/request.hpp"
#include "tw/mem/start_gap.hpp"
#include "tw/pcm/bank.hpp"
#include "tw/pcm/energy.hpp"
#include "tw/pcm/wear.hpp"
#include "tw/schemes/write_scheme.hpp"
#include "tw/sim/simulator.hpp"
#include "tw/stats/registry.hpp"

namespace tw::mem::ref {

/// The original linear-scan FRFCFS controller (see file comment).
class ReferenceController {
 public:
  using ReadCallback = std::function<void(const MemoryRequest&)>;
  using WriteCallback = std::function<void(const MemoryRequest&)>;
  using SpaceCallback = std::function<void()>;

  ReferenceController(sim::Simulator& sim, const pcm::PcmConfig& pcm_cfg,
                      ControllerConfig cfg, schemes::WriteScheme& scheme,
                      stats::Registry& registry, u64 data_seed = 1,
                      double ones_bias = 0.5)
      : sim_(sim),
        pcm_(pcm_cfg),
        cfg_(cfg),
        scheme_(scheme),
        map_(pcm_cfg.geometry),
        store_(pcm_cfg.geometry.units_per_line(), data_seed, ones_bias),
        banks_(map_.total_banks()),
        subarrays_(map_.total_subarrays()),
        energy_(pcm_cfg.energy),
        active_write_(map_.total_banks()),
        paused_write_(map_.total_banks()),
        bank_epoch_(map_.total_banks(), 0),
        c_reads_(registry.counter("mem.reads")),
        c_writes_(registry.counter("mem.writes")),
        c_forwarded_(registry.counter("mem.reads_forwarded")),
        c_coalesced_(registry.counter("mem.writes_coalesced")),
        c_silent_(registry.counter("mem.writes_silent")),
        c_flipped_units_(registry.counter("mem.units_flipped")),
        c_pauses_(registry.counter("mem.write_pauses")),
        c_gap_moves_(registry.counter("mem.gap_moves")),
        c_batched_(registry.counter("mem.writes_batched")),
        a_read_latency_(registry.accumulator("mem.read_latency_ns")),
        a_write_latency_(registry.accumulator("mem.write_latency_ns")),
        a_write_units_(registry.accumulator("mem.write_units")),
        a_write_service_(registry.accumulator("mem.write_service_ns")),
        a_batch_lines_(registry.accumulator("mem.batch_lines")),
        a_batch_occupancy_(registry.accumulator("mem.batch_occupancy")),
        h_read_latency_(registry.histogram("mem.read_latency_hist_ns")),
        h_write_latency_(registry.histogram("mem.write_latency_hist_ns")) {
    TW_EXPECTS(cfg_.valid());
    pcm_.validate();
  }

  bool enqueue(MemoryRequest req) {
    req.addr = map_.line_of(req.addr);
    req.enqueue_tick = sim_.now();
    req.id = next_id_++;

    if (req.is_write()) {
      TW_EXPECTS(req.data.units() == store_.units_per_line());
      if (cfg_.write_coalescing) {
        for (auto& w : write_q_) {
          if (w.addr == req.addr) {
            w.data = req.data;
            c_coalesced_.inc();
            return true;
          }
        }
      }
      if (write_q_.size() >= cfg_.write_queue_entries) return false;
      write_q_.push_back(std::move(req));
      if (write_q_.size() >= cfg_.write_queue_entries) draining_ = true;
    } else {
      if (cfg_.read_forwarding) {
        for (auto it = write_q_.rbegin(); it != write_q_.rend(); ++it) {
          if (it->addr == req.addr) {
            c_forwarded_.inc();
            c_reads_.inc();
            MemoryRequest done = req;
            done.start_tick = sim_.now();
            done.complete_tick = sim_.now() + cfg_.forward_latency;
            const double lat_ns = to_ns(cfg_.forward_latency);
            a_read_latency_.add(lat_ns);
            h_read_latency_.add(static_cast<u64>(lat_ns));
            const u32 slot = acquire_read_slot(std::move(done));
            sim_.schedule_in(
                cfg_.forward_latency,
                [this, slot] {
                  const MemoryRequest fwd = take_read_slot(slot);
                  if (on_read_) on_read_(fwd);
                },
                sim::Priority::kDeviceComplete);
            return true;
          }
        }
      }
      if (read_q_.size() >= cfg_.read_queue_entries) return false;
      read_q_.push_back(std::move(req));
    }

    if (!dispatch_scheduled_) {
      dispatch_scheduled_ = true;
      sim_.schedule_in(0, [this] { dispatch(); }, sim::Priority::kController);
    }
    return true;
  }

  void set_read_callback(ReadCallback cb) { on_read_ = std::move(cb); }
  void set_write_callback(WriteCallback cb) { on_write_ = std::move(cb); }
  void set_space_callback(SpaceCallback cb) { on_space_ = std::move(cb); }

  bool idle() const {
    bool paused = false;
    for (const auto& p : paused_write_) paused = paused || p.has_value();
    return read_q_.empty() && write_q_.empty() && inflight_ == 0 && !paused;
  }

  u32 read_queue_depth() const { return static_cast<u32>(read_q_.size()); }
  u32 write_queue_depth() const { return static_cast<u32>(write_q_.size()); }

  Addr physical_of(Addr logical_line_addr) {
    if (!cfg_.wear_leveling) return logical_line_addr;
    const u64 li = map_.line_index(logical_line_addr);
    const u64 n = cfg_.start_gap.region_lines;
    const u64 region = li / n;
    const u64 within = li % n;
    const u64 slot = leveler_for(region).map(within);
    const u64 phys_line = region * (n + 1) + slot;
    return phys_line * map_.line_bytes();
  }

  DataStore& store() { return store_; }
  const pcm::EnergyModel& energy() const { return energy_; }
  const pcm::WearTracker& wear() const { return wear_; }
  u64 gap_moves() const { return c_gap_moves_.value(); }

 private:
  struct ActiveWrite {
    MemoryRequest req;
    Tick start = 0;
    Tick end = 0;
    u64 epoch = 0;
    Tick service = 0;
    u32 subarray = 0;
  };
  struct PausedWrite {
    MemoryRequest req;
    Tick remaining = 0;
    u32 subarray = 0;
  };

  u32 acquire_read_slot(MemoryRequest&& req) {
    if (!free_read_slots_.empty()) {
      const u32 slot = free_read_slots_.back();
      free_read_slots_.pop_back();
      read_pool_[slot] = std::move(req);
      return slot;
    }
    read_pool_.push_back(std::move(req));
    return static_cast<u32>(read_pool_.size() - 1);
  }

  MemoryRequest take_read_slot(u32 slot) {
    MemoryRequest req = std::move(read_pool_[slot]);
    free_read_slots_.push_back(slot);
    return req;
  }

  StartGapLeveler& leveler_for(u64 region) {
    auto it = levelers_.find(region);
    if (it == levelers_.end()) {
      it = levelers_.emplace(region, StartGapLeveler(cfg_.start_gap)).first;
    }
    return it->second;
  }

  bool read_waiting_for_subarray(u32 subarray) {
    for (const auto& r : read_q_) {
      if (map_.flat_subarray(physical_of(r.addr)) == subarray) return true;
    }
    return false;
  }

  void schedule_dispatch() {
    if (dispatch_scheduled_) return;
    dispatch_scheduled_ = true;
    sim_.schedule_in(0, [this] { dispatch(); }, sim::Priority::kController);
  }

  void dispatch() {
    dispatch_scheduled_ = false;
    const Tick now = sim_.now();

    for (auto it = read_q_.begin(); it != read_q_.end();) {
      const Addr phys = physical_of(it->addr);
      const u32 subarray = map_.flat_subarray(phys);
      if (subarrays_[subarray].idle_at(now)) {
        MemoryRequest req = std::move(*it);
        it = read_q_.erase(it);
        issue_read(std::move(req));
        notify_space();
      } else {
        if (cfg_.write_pausing) try_pause(map_.flat_bank(phys), subarray);
        ++it;
      }
    }

    if (draining_ && write_q_.size() <= cfg_.drain_low_watermark) {
      draining_ = false;
    }
    const bool issue_writes =
        draining_ ||
        (cfg_.drain == ControllerConfig::DrainPolicy::kOpportunistic &&
         read_q_.empty() && !write_q_.empty());
    if (issue_writes) {
      for (auto it = write_q_.begin(); it != write_q_.end();) {
        if (!draining_ &&
            cfg_.drain != ControllerConfig::DrainPolicy::kOpportunistic) {
          break;
        }
        const Addr phys_w = physical_of(it->addr);
        const u32 bank = map_.flat_bank(phys_w);
        const u32 subarray_w = map_.flat_subarray(phys_w);
        if (banks_[bank].idle_at(now) && subarrays_[subarray_w].idle_at(now) &&
            !paused_write_[bank].has_value()) {
          MemoryRequest req = std::move(*it);
          it = write_q_.erase(it);
          if (cfg_.write_batch > 1) {
            std::vector<MemoryRequest> batch;
            batch.push_back(std::move(req));
            for (auto scan = it;
                 scan != write_q_.end() && batch.size() < cfg_.write_batch;) {
              if (map_.flat_bank(physical_of(scan->addr)) == bank) {
                batch.push_back(std::move(*scan));
                scan = write_q_.erase(scan);
              } else {
                ++scan;
              }
            }
            it = write_q_.begin();  // erase invalidated the iterator chain
            if (batch.size() > 1) {
              issue_write_batch(std::move(batch));
            } else {
              issue_write(std::move(batch.front()));
            }
          } else {
            issue_write(std::move(req));
          }
          notify_space();
          if (draining_ && write_q_.size() <= cfg_.drain_low_watermark) {
            draining_ = false;
          }
        } else {
          ++it;
        }
      }
    }

    for (u32 bank = 0; bank < paused_write_.size(); ++bank) {
      if (paused_write_[bank].has_value() && banks_[bank].idle_at(now) &&
          subarrays_[paused_write_[bank]->subarray].idle_at(now) &&
          !read_waiting_for_subarray(paused_write_[bank]->subarray)) {
        resume_paused(bank);
      }
    }
  }

  void issue_read(MemoryRequest req) {
    const Tick now = sim_.now();
    const u32 subarray = map_.flat_subarray(physical_of(req.addr));
    const Tick service = scheme_.read_latency() + cfg_.read_bus_time;
    subarrays_[subarray].occupy(now, service);
    ++inflight_;
    c_reads_.inc();
    energy_.add_read(store_.units_per_line() * pcm_.geometry.data_unit_bits);

    req.start_tick = now;
    req.complete_tick = now + service;
    const double lat_ns = to_ns(req.complete_tick - req.enqueue_tick);
    a_read_latency_.add(lat_ns);
    h_read_latency_.add(static_cast<u64>(lat_ns));

    const u32 slot = acquire_read_slot(std::move(req));
    sim_.schedule_in(
        service,
        [this, slot] {
          --inflight_;
          const MemoryRequest done = take_read_slot(slot);
          if (on_read_) on_read_(done);
          schedule_dispatch();
        },
        sim::Priority::kDeviceComplete);
  }

  void issue_write(MemoryRequest req, Tick service_override = 0) {
    const Tick now = sim_.now();
    const Addr phys = physical_of(req.addr);
    const u32 bank = map_.flat_bank(phys);
    const u32 subarray = map_.flat_subarray(phys);

    Tick service = service_override;
    if (service == 0) {
      pcm::LineBuf& line = store_.line(phys);
      const schemes::ServicePlan plan = scheme_.plan_write(line, req.data);
      service = plan.latency;

      c_writes_.inc();
      if (plan.silent) c_silent_.inc();
      c_flipped_units_.inc(plan.flipped_units);
      energy_.add_write(plan.programmed);
      if (plan.background.total() > 0) {
        energy_.add_write(plan.background);
        wear_.record(phys, plan.background);
      }
      if (plan.read_before_write) {
        energy_.add_read(store_.units_per_line() *
                         pcm_.geometry.data_unit_bits);
      }
      wear_.record(phys, plan.programmed);
      a_write_units_.add(plan.write_units);
      a_write_service_.add(to_ns(plan.latency));
    }

    banks_[bank].occupy(now, service);
    subarrays_[subarray].occupy(now, service);
    ++inflight_;

    TW_ASSERT(!active_write_[bank].has_value());
    const u64 epoch = ++bank_epoch_[bank];
    ActiveWrite active;
    active.req = std::move(req);
    active.start = now;
    active.end = now + service;
    active.epoch = epoch;
    active.service = service;
    active.subarray = subarray;
    active_write_[bank] = std::move(active);

    sim_.schedule_in(
        service, [this, bank, epoch] { complete_write(bank, epoch); },
        sim::Priority::kDeviceComplete);

    if (cfg_.wear_leveling && service_override == 0) {
      const u64 region = map_.line_index(active_write_[bank]->req.addr) /
                         cfg_.start_gap.region_lines;
      StartGapLeveler& leveler = leveler_for(region);
      if (const auto move = leveler.on_write()) {
        apply_gap_move(region, *move);
      }
    }
  }

  void issue_write_batch(std::vector<MemoryRequest> reqs) {
    TW_EXPECTS(reqs.size() >= 2);
    const Tick now = sim_.now();
    const u32 bank = map_.flat_bank(physical_of(reqs.front().addr));

    std::vector<pcm::LineBuf*> lines;
    std::vector<pcm::LogicalLine> datas;
    std::vector<Addr> phys;
    lines.reserve(reqs.size());
    datas.reserve(reqs.size());
    for (const auto& r : reqs) {
      const Addr p = physical_of(r.addr);
      TW_ASSERT(map_.flat_bank(p) == bank);
      phys.push_back(p);
      (void)store_.line(p);
      datas.push_back(r.data);
    }
    for (const Addr p : phys) lines.push_back(&store_.line(p));

    const schemes::BatchServicePlan batch = scheme_.plan_write_batch(
        {lines.data(), lines.size()}, {datas.data(), datas.size()});
    TW_ASSERT(batch.per_line.size() == reqs.size());
    a_batch_lines_.add(static_cast<double>(reqs.size()));
    if (batch.packed_lines > 0 && batch.occupancy > 0.0) {
      a_batch_occupancy_.add(batch.occupancy);
    }

    for (std::size_t i = 0; i < reqs.size(); ++i) {
      const schemes::ServicePlan& plan = batch.per_line[i];
      c_writes_.inc();
      c_batched_.inc();
      if (plan.silent) c_silent_.inc();
      c_flipped_units_.inc(plan.flipped_units);
      energy_.add_write(plan.programmed);
      if (plan.background.total() > 0) {
        energy_.add_write(plan.background);
        wear_.record(phys[i], plan.background);
      }
      if (plan.read_before_write) {
        energy_.add_read(store_.units_per_line() *
                         pcm_.geometry.data_unit_bits);
      }
      wear_.record(phys[i], plan.programmed);
      a_write_units_.add(plan.write_units);
      a_write_service_.add(to_ns(batch.latency));

      if (cfg_.wear_leveling) {
        const u64 region =
            map_.line_index(reqs[i].addr) / cfg_.start_gap.region_lines;
        if (const auto move = leveler_for(region).on_write()) {
          apply_gap_move(region, *move);
        }
      }
    }

    Tick start = std::max(now, banks_[bank].free_at());
    std::vector<u32> sub_ids;
    for (const Addr p : phys) {
      const u32 sa = map_.flat_subarray(p);
      if (std::find(sub_ids.begin(), sub_ids.end(), sa) == sub_ids.end()) {
        sub_ids.push_back(sa);
        start = std::max(start, subarrays_[sa].free_at());
      }
    }
    banks_[bank].occupy(start, batch.latency);
    for (const u32 sa : sub_ids) subarrays_[sa].occupy(start, batch.latency);
    ++inflight_;
    const Tick done_in = start + batch.latency - now;
    sim_.schedule_in(
        done_in,
        [this, reqs = std::move(reqs)]() mutable {
          --inflight_;
          for (auto& r : reqs) {
            r.complete_tick = sim_.now();
            const double lat_ns = to_ns(r.complete_tick - r.enqueue_tick);
            a_write_latency_.add(lat_ns);
            h_write_latency_.add(static_cast<u64>(lat_ns));
            if (on_write_) on_write_(r);
          }
          schedule_dispatch();
        },
        sim::Priority::kDeviceComplete);
  }

  void apply_gap_move(u64 region, const GapMove& move) {
    const u64 n = cfg_.start_gap.region_lines;
    const Addr src =
        (region * (n + 1) + move.from_physical) * map_.line_bytes();
    const Addr dst =
        (region * (n + 1) + move.to_physical) * map_.line_bytes();

    const pcm::LogicalLine content = store_.read_logical(src);
    pcm::LineBuf& dst_line = store_.line(dst);
    const schemes::ServicePlan plan = scheme_.plan_write(dst_line, content);
    energy_.add_write(plan.programmed);
    wear_.record(dst, plan.programmed);
    c_gap_moves_.inc();

    const u32 bank = map_.flat_bank(dst);
    const u32 subarray = map_.flat_subarray(dst);
    const Tick start = std::max({sim_.now(), banks_[bank].free_at(),
                                 subarrays_[subarray].free_at()});
    banks_[bank].occupy(start, plan.latency);
    subarrays_[subarray].occupy(start, plan.latency);
    const Tick done_in = start + plan.latency - sim_.now();
    sim_.schedule_in(done_in, [this] { schedule_dispatch(); },
                     sim::Priority::kDeviceComplete);
  }

  void complete_write(u32 bank, u64 epoch) {
    auto& active = active_write_[bank];
    if (!active.has_value() || active->epoch != epoch) return;

    MemoryRequest req = std::move(active->req);
    active.reset();
    --inflight_;
    req.complete_tick = sim_.now();
    const double lat_ns = to_ns(req.complete_tick - req.enqueue_tick);
    a_write_latency_.add(lat_ns);
    h_write_latency_.add(static_cast<u64>(lat_ns));
    if (on_write_) on_write_(req);
    schedule_dispatch();
  }

  bool try_pause(u32 bank, u32 wanted_subarray) {
    auto& active = active_write_[bank];
    if (!active.has_value() || paused_write_[bank].has_value()) return false;
    if (active->subarray != wanted_subarray) return false;
    if (banks_[bank].free_at() != active->end) return false;
    if (subarrays_[active->subarray].free_at() != active->end) return false;

    const Tick now = sim_.now();
    const Tick elapsed = now - active->start;
    const Tick boundary =
        active->start +
        ceil_div(elapsed, cfg_.pause_quantum) * cfg_.pause_quantum;
    if (boundary >= active->end) return false;

    banks_[bank].preempt(boundary);
    subarrays_[active->subarray].preempt(boundary);
    PausedWrite paused;
    paused.req = std::move(active->req);
    paused.remaining = active->end - boundary;
    paused.subarray = active->subarray;
    paused_write_[bank] = std::move(paused);
    active.reset();
    ++bank_epoch_[bank];
    c_pauses_.inc();

    sim_.schedule_at(boundary, [this] { schedule_dispatch(); },
                     sim::Priority::kController);
    return true;
  }

  void resume_paused(u32 bank) {
    TW_ASSERT(paused_write_[bank].has_value());
    const Tick now = sim_.now();
    PausedWrite paused = std::move(*paused_write_[bank]);
    paused_write_[bank].reset();

    banks_[bank].occupy(now, paused.remaining);
    subarrays_[paused.subarray].occupy(now, paused.remaining);
    const u64 epoch = ++bank_epoch_[bank];
    ActiveWrite active;
    active.req = std::move(paused.req);
    active.start = now;
    active.end = now + paused.remaining;
    active.epoch = epoch;
    active.service = paused.remaining;
    active.subarray = paused.subarray;
    active_write_[bank] = std::move(active);
    sim_.schedule_in(
        paused.remaining,
        [this, bank, epoch] { complete_write(bank, epoch); },
        sim::Priority::kDeviceComplete);
  }

  void notify_space() {
    if (!on_space_ || space_scheduled_) return;
    space_scheduled_ = true;
    sim_.schedule_in(
        0,
        [this] {
          space_scheduled_ = false;
          if (on_space_) on_space_();
        },
        sim::Priority::kCpu);
  }

  sim::Simulator& sim_;
  pcm::PcmConfig pcm_;
  ControllerConfig cfg_;
  schemes::WriteScheme& scheme_;

  AddressMap map_;
  DataStore store_;
  std::vector<pcm::PcmBank> banks_;
  std::vector<pcm::PcmBank> subarrays_;
  pcm::EnergyModel energy_;
  pcm::WearTracker wear_;

  std::deque<MemoryRequest> read_q_;
  std::deque<MemoryRequest> write_q_;
  bool draining_ = false;
  bool dispatch_scheduled_ = false;
  bool space_scheduled_ = false;
  u64 next_id_ = 1;
  u64 inflight_ = 0;

  std::vector<std::optional<ActiveWrite>> active_write_;
  std::vector<std::optional<PausedWrite>> paused_write_;
  std::vector<u64> bank_epoch_;

  std::unordered_map<u64, StartGapLeveler> levelers_;

  std::vector<MemoryRequest> read_pool_;
  std::vector<u32> free_read_slots_;

  ReadCallback on_read_;
  WriteCallback on_write_;
  SpaceCallback on_space_;

  stats::Counter& c_reads_;
  stats::Counter& c_writes_;
  stats::Counter& c_forwarded_;
  stats::Counter& c_coalesced_;
  stats::Counter& c_silent_;
  stats::Counter& c_flipped_units_;
  stats::Counter& c_pauses_;
  stats::Counter& c_gap_moves_;
  stats::Counter& c_batched_;
  stats::Accumulator& a_read_latency_;
  stats::Accumulator& a_write_latency_;
  stats::Accumulator& a_write_units_;
  stats::Accumulator& a_write_service_;
  stats::Accumulator& a_batch_lines_;
  stats::Accumulator& a_batch_occupancy_;
  stats::Log2Histogram& h_read_latency_;
  stats::Log2Histogram& h_write_latency_;
};

}  // namespace tw::mem::ref
