// Property-based tests: randomized sweeps over data patterns, geometries
// and budgets asserting the invariants every scheme must uphold.

#include <gtest/gtest.h>

#include "tw/common/rng.hpp"
#include "tw/core/factory.hpp"
#include "tw/core/fsm.hpp"
#include "tw/verify/differential.hpp"

namespace tw {
namespace {

using schemes::SchemeKind;

pcm::LineBuf random_line(Rng& rng, u32 units, bool random_tags = true) {
  pcm::LineBuf line(units);
  for (u32 i = 0; i < units; ++i) {
    line.set_cell(i, rng.next());
    line.set_flip(i, random_tags && rng.chance(0.1));
  }
  return line;
}

pcm::LogicalLine random_mutation(Rng& rng, const pcm::LineBuf& line,
                                 double flip_rate) {
  pcm::LogicalLine next(line.units());
  for (u32 i = 0; i < line.units(); ++i) {
    u64 w = line.logical(i);
    for (u32 b = 0; b < 64; ++b) {
      if (rng.chance(flip_rate)) w ^= (u64{1} << b);
    }
    next.set_word(i, w);
  }
  return next;
}

class SchemeProperty
    : public ::testing::TestWithParam<std::tuple<SchemeKind, u64>> {};

// P1: after any write, the stored logical data equals the requested data.
TEST_P(SchemeProperty, LogicalDataRoundTrips) {
  const auto [kind, seed] = GetParam();
  Rng rng(seed);
  const pcm::PcmConfig cfg = pcm::table2_config();
  const auto scheme = core::make_scheme(kind, cfg);
  for (int trial = 0; trial < 50; ++trial) {
    pcm::LineBuf line = random_line(rng, 8);
    const pcm::LogicalLine next =
        random_mutation(rng, line, rng.uniform() * 0.6);
    scheme->plan_write(line, next);
    for (u32 i = 0; i < 8; ++i) {
      ASSERT_EQ(line.logical(i), next.word(i))
          << scheme->name() << " unit " << i;
    }
  }
}

// P2: latency and write units are non-negative, finite, and consistent.
TEST_P(SchemeProperty, PlanSane) {
  const auto [kind, seed] = GetParam();
  Rng rng(seed ^ 0xABCD);
  const pcm::PcmConfig cfg = pcm::table2_config();
  const auto scheme = core::make_scheme(kind, cfg);
  for (int trial = 0; trial < 50; ++trial) {
    pcm::LineBuf line = random_line(rng, 8);
    const pcm::LogicalLine next = random_mutation(rng, line, 0.15);
    const schemes::ServicePlan p = scheme->plan_write(line, next);
    EXPECT_GE(p.write_units, 0.0);
    EXPECT_LE(p.write_units, 8.001);
    EXPECT_GT(p.latency, 0u);
    EXPECT_LT(p.latency, ms(1));
    // Schemes that write all bits program >= the changed-bit count;
    // comparison-based schemes program exactly the needed transitions,
    // which never exceed units x (bits + tag).
    EXPECT_LE(p.programmed.total(), 8u * 65u);
  }
}

// P3: idempotence — rewriting identical data is silent for
// comparison-based schemes.
TEST_P(SchemeProperty, RewriteSameDataProgramsNothingForDcwFamily) {
  const auto [kind, seed] = GetParam();
  if (kind == SchemeKind::kConventional || kind == SchemeKind::kTwoStage ||
      kind == SchemeKind::kTwoStageActual || kind == SchemeKind::kPreset ||
      kind == SchemeKind::kPresetActual) {
    GTEST_SKIP() << "scheme writes all bits (or all zeros) by design";
  }
  Rng rng(seed ^ 0x5555);
  const pcm::PcmConfig cfg = pcm::table2_config();
  const auto scheme = core::make_scheme(kind, cfg);
  pcm::LineBuf line = random_line(rng, 8);
  const pcm::LogicalLine next = random_mutation(rng, line, 0.2);
  scheme->plan_write(line, next);
  const schemes::ServicePlan again = scheme->plan_write(line, next);
  EXPECT_EQ(again.programmed.total(), 0u);
  EXPECT_TRUE(again.silent);
}

// P4: wear monotonicity — a comparison-based scheme never programs more
// bits than hamming distance + tags.
TEST_P(SchemeProperty, ProgrammedBitsBounded) {
  const auto [kind, seed] = GetParam();
  if (kind == SchemeKind::kConventional || kind == SchemeKind::kTwoStage ||
      kind == SchemeKind::kTwoStageActual || kind == SchemeKind::kPreset ||
      kind == SchemeKind::kPresetActual) {
    GTEST_SKIP() << "scheme writes all bits (or all zeros) by design";
  }
  Rng rng(seed ^ 0x9999);
  const pcm::PcmConfig cfg = pcm::table2_config();
  const auto scheme = core::make_scheme(kind, cfg);
  for (int trial = 0; trial < 30; ++trial) {
    // Tags start clear: a set tag is a state only flip-capable schemes
    // produce, and un-flipping it costs DCW up to a whole unit of pulses.
    pcm::LineBuf line = random_line(rng, 8, /*random_tags=*/false);
    const pcm::LogicalLine next = random_mutation(rng, line, 0.3);
    u32 logical_distance = 0;
    for (u32 i = 0; i < 8; ++i) {
      logical_distance += hamming(line.logical(i), next.word(i));
    }
    const schemes::ServicePlan p = scheme->plan_write(line, next);
    // Flips can only reduce cell programs below the logical distance;
    // tags add at most one pulse per unit.
    EXPECT_LE(p.programmed.total(), logical_distance + 8u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeProperty,
    ::testing::Combine(
        ::testing::Values(SchemeKind::kConventional, SchemeKind::kDcw,
                          SchemeKind::kFlipNWrite, SchemeKind::kTwoStage,
                          SchemeKind::kThreeStage, SchemeKind::kTetris,
                          SchemeKind::kFlipNWriteActual,
                          SchemeKind::kTwoStageActual,
                          SchemeKind::kThreeStageActual,
                          SchemeKind::kPreset, SchemeKind::kPresetActual),
        ::testing::Values(1u, 2u, 3u)));

// P5: geometry sweeps — every scheme stays sane across line sizes and
// budgets (the paper's 128 B POWER7 / 256 B zEnterprise motivation).
class GeometryProperty
    : public ::testing::TestWithParam<std::tuple<u32, u32>> {};

TEST_P(GeometryProperty, SchemesHandleGeometry) {
  const auto [line_bytes, chip_budget] = GetParam();
  pcm::PcmConfig cfg = pcm::table2_config();
  cfg.geometry.cache_line_bytes = line_bytes;
  cfg.power.chip_budget = chip_budget;
  const u32 units = cfg.geometry.units_per_line();

  Rng rng(line_bytes * 131 + chip_budget);
  for (const auto kind :
       {SchemeKind::kDcw, SchemeKind::kFlipNWrite, SchemeKind::kTwoStage,
        SchemeKind::kThreeStage, SchemeKind::kTetris}) {
    const auto scheme = core::make_scheme(kind, cfg);
    pcm::LineBuf line = random_line(rng, units);
    const pcm::LogicalLine next = random_mutation(rng, line, 0.1);
    const schemes::ServicePlan p = scheme->plan_write(line, next);
    EXPECT_GT(p.latency, 0u);
    EXPECT_LE(p.write_units, static_cast<double>(units) * 9);
    for (u32 i = 0; i < units; ++i) {
      ASSERT_EQ(line.logical(i), next.word(i));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    LineAndBudget, GeometryProperty,
    ::testing::Combine(::testing::Values(64u, 128u, 256u),
                       ::testing::Values(8u, 16u, 32u, 64u)));

// P7: Tetris never consumes more write units than the conventional
// scheme's one-per-data-unit serial schedule on the same data.
TEST(TetrisVsConventional, NeverMoreWriteUnits) {
  Rng rng(777);
  const pcm::PcmConfig cfg = pcm::table2_config();
  const auto tetris = core::make_scheme(SchemeKind::kTetris, cfg);
  const auto conventional =
      core::make_scheme(SchemeKind::kConventional, cfg);
  for (int trial = 0; trial < 200; ++trial) {
    pcm::LineBuf line_t = random_line(rng, 8);
    pcm::LineBuf line_c = line_t;
    const pcm::LogicalLine next =
        random_mutation(rng, line_t, rng.uniform());
    const schemes::ServicePlan pt = tetris->plan_write(line_t, next);
    const schemes::ServicePlan pc = conventional->plan_write(line_c, next);
    EXPECT_LE(pt.write_units, pc.write_units + 1e-9);
  }
}

// P8: every scheme survives a differential sweep against the bit-serial
// oracle (the deep variant with 10k pairs per scheme lives in
// verify_test.cpp; this keeps a smoke-level differential property in the
// general property suite).
TEST_P(SchemeProperty, AgreesWithOracle) {
  const auto [kind, seed] = GetParam();
  Rng rng(seed ^ 0x7777);
  const pcm::PcmConfig cfg = pcm::table2_config();
  const auto scheme = core::make_scheme(kind, cfg);
  verify::DifferentialChecker checker(*scheme);
  pcm::LineBuf line = random_line(rng, 8);
  for (int trial = 0; trial < 100; ++trial) {
    const pcm::LogicalLine next =
        random_mutation(rng, line, rng.uniform() * 0.6);
    ASSERT_NO_THROW(checker.check_write(line, next));
  }
  EXPECT_EQ(checker.report().writes, 100u);
}

// P6: Tetris schedules under random stress always verify and the FSM
// agrees with Eq. 5.
TEST(TetrisStress, ScheduleAlwaysVerifiesAndMatchesEq5) {
  Rng rng(4242);
  pcm::PcmConfig cfg = pcm::table2_config();
  core::TetrisOptions opts;
  const core::TetrisScheme scheme(cfg, opts);
  for (int trial = 0; trial < 300; ++trial) {
    pcm::LineBuf line = random_line(rng, 8);
    const pcm::LogicalLine next =
        random_mutation(rng, line, rng.uniform() * 0.7);
    const core::TetrisAnalysis a = scheme.analyze(line, next);
    core::verify_pack(a.read.counts, a.packer_cfg, a.pack);
    const core::FsmTrace t =
        core::execute_fsms(a.pack, a.packer_cfg, cfg.timing);
    const Tick sub = cfg.timing.t_set / a.packer_cfg.k;
    EXPECT_EQ(t.schedule_length,
              a.pack.result * cfg.timing.t_set + a.pack.subresult * sub);
    EXPECT_LE(t.peak_current, a.packer_cfg.budget);
  }
}

}  // namespace
}  // namespace tw
