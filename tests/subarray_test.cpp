// Tests for subarray-level parallelism (paper refs [13][15]): reads
// proceed in one subarray while another subarray of the same bank is
// being written; writes still serialize on the bank's charge pump.

#include <gtest/gtest.h>

#include "tw/core/factory.hpp"
#include "tw/harness/experiment.hpp"

namespace tw::mem {
namespace {

pcm::PcmConfig cfg_subarrays(u32 n) {
  pcm::PcmConfig c = pcm::table2_config();
  c.geometry.subarrays_per_bank = n;
  return c;
}

MemoryRequest write_req(Addr addr, u64 word) {
  MemoryRequest r;
  r.addr = addr;
  r.type = ReqType::kWrite;
  pcm::LogicalLine d(8);
  for (u32 i = 0; i < 8; ++i) d.set_word(i, word + i);
  r.data = d;
  return r;
}

MemoryRequest read_req(Addr addr) {
  MemoryRequest r;
  r.addr = addr;
  r.type = ReqType::kRead;
  return r;
}

// Table II: 8 banks, 64 B lines. Line index i maps to bank i%8; the row
// is i/8 and the subarray (with S subarrays) is row % S. So line 0 is
// (bank 0, subarray 0) and line 8 is (bank 0, subarray 1) when S >= 2.
constexpr Addr kBank0Sub0 = 0 * 64;
constexpr Addr kBank0Sub1 = 8 * 64;
constexpr Addr kBank0Sub0Row2 = 16 * 64;

TEST(AddressMapSubarrays, DecodesRowModulo) {
  const AddressMap m(cfg_subarrays(2).geometry);
  EXPECT_EQ(m.decode(kBank0Sub0).subarray, 0u);
  EXPECT_EQ(m.decode(kBank0Sub1).subarray, 1u);
  EXPECT_EQ(m.decode(kBank0Sub0Row2).subarray, 0u);
  EXPECT_EQ(m.total_subarrays(), 16u);
  EXPECT_EQ(m.flat_subarray(kBank0Sub1), 1u);
}

TEST(AddressMapSubarrays, SingleSubarrayIsBankGranular) {
  const AddressMap m(cfg_subarrays(1).geometry);
  EXPECT_EQ(m.total_subarrays(), 8u);
  EXPECT_EQ(m.flat_subarray(kBank0Sub0), m.flat_subarray(kBank0Sub1));
}

struct Fixture {
  sim::Simulator sim;
  stats::Registry reg;
  std::unique_ptr<schemes::WriteScheme> scheme;
  std::unique_ptr<Controller> ctl;

  explicit Fixture(u32 subarrays, ControllerConfig ccfg = {}) {
    ccfg.drain = ControllerConfig::DrainPolicy::kOpportunistic;
    scheme = core::make_scheme(schemes::SchemeKind::kDcw,
                               cfg_subarrays(subarrays));
    ctl = std::make_unique<Controller>(sim, cfg_subarrays(subarrays), ccfg,
                                       *scheme, reg);
  }
};

TEST(Subarrays, ReadOverlapsWriteInOtherSubarray) {
  Fixture f(2);
  Tick read_done = 0;
  f.ctl->set_read_callback(
      [&](const MemoryRequest& r) { read_done = r.complete_tick; });
  // Long DCW write (~3.5 us) to (bank0, sub0).
  ASSERT_TRUE(f.ctl->enqueue(write_req(kBank0Sub0, 1)));
  f.sim.run(ns(100));
  // Read (bank0, sub1): must NOT wait for the write.
  ASSERT_TRUE(f.ctl->enqueue(read_req(kBank0Sub1)));
  f.sim.run();
  EXPECT_LT(read_done, ns(300));
}

TEST(Subarrays, ReadToWrittenSubarrayStillWaits) {
  Fixture f(2);
  Tick read_done = 0;
  f.ctl->set_read_callback(
      [&](const MemoryRequest& r) { read_done = r.complete_tick; });
  ASSERT_TRUE(f.ctl->enqueue(write_req(kBank0Sub0, 1)));
  f.sim.run(ns(100));
  // Same subarray (row 2 of subarray 0): waits for the full write.
  ASSERT_TRUE(f.ctl->enqueue(read_req(kBank0Sub0Row2)));
  f.sim.run();
  EXPECT_GT(read_done, ns(3000));
}

TEST(Subarrays, WritesStillSerializePerBank) {
  Fixture f(2);
  std::vector<Tick> done;
  f.ctl->set_write_callback(
      [&](const MemoryRequest& r) { done.push_back(r.complete_tick); });
  // Two writes to different subarrays of bank 0: the charge pump
  // serializes them.
  ASSERT_TRUE(f.ctl->enqueue(write_req(kBank0Sub0, 1)));
  ASSERT_TRUE(f.ctl->enqueue(write_req(kBank0Sub1, 2)));
  f.sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_GE(done[1], 2 * ns(3490));
}

TEST(Subarrays, SingleSubarrayMatchesLegacyBankBlocking) {
  Fixture f(1);
  Tick read_done = 0;
  f.ctl->set_read_callback(
      [&](const MemoryRequest& r) { read_done = r.complete_tick; });
  ASSERT_TRUE(f.ctl->enqueue(write_req(kBank0Sub0, 1)));
  f.sim.run(ns(100));
  ASSERT_TRUE(f.ctl->enqueue(read_req(kBank0Sub1)));  // same bank
  f.sim.run();
  EXPECT_GT(read_done, ns(3000));  // blocked, as before subarrays existed
}

TEST(Subarrays, PausingTargetsOnlyTheBlockingSubarray) {
  ControllerConfig ccfg;
  ccfg.write_pausing = true;
  Fixture f(2, ccfg);
  Tick read_done = 0;
  f.ctl->set_read_callback(
      [&](const MemoryRequest& r) { read_done = r.complete_tick; });
  ASSERT_TRUE(f.ctl->enqueue(write_req(kBank0Sub0, 1)));
  f.sim.run(ns(100));
  // Read to the *other* subarray proceeds without pausing anything.
  ASSERT_TRUE(f.ctl->enqueue(read_req(kBank0Sub1)));
  f.sim.run();
  EXPECT_LT(read_done, ns(300));
  EXPECT_EQ(f.reg.counter("mem.write_pauses").value(), 0u);
  // Read to the written subarray pauses the write.
  ASSERT_TRUE(f.ctl->enqueue(write_req(kBank0Sub0, 5)));
  f.sim.run(f.sim.now() + ns(100));  // let the write start
  ASSERT_TRUE(f.ctl->enqueue(read_req(kBank0Sub0Row2)));
  f.sim.run();
  EXPECT_GT(f.reg.counter("mem.write_pauses").value(), 0u);
}

TEST(Subarrays, SystemLevelReadLatencyImproves) {
  const auto& vips = workload::profile_by_name("vips");
  harness::SystemConfig sys;
  sys.instructions_per_core = 15'000;
  const auto one =
      harness::run_system(sys, vips, schemes::SchemeKind::kDcw);
  sys.pcm.geometry.subarrays_per_bank = 4;
  const auto four =
      harness::run_system(sys, vips, schemes::SchemeKind::kDcw);
  ASSERT_TRUE(one.completed);
  ASSERT_TRUE(four.completed);
  EXPECT_LT(four.read_latency_ns, one.read_latency_ns);
}

}  // namespace
}  // namespace tw::mem
