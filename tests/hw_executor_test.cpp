// Bit-accurate end-to-end tests: the HwExecutor drives full Tetris writes
// (read -> analysis -> FSM -> gated driver) onto a real cell array and
// must agree with the bookkeeping model on content, pulses and timing.

#include <gtest/gtest.h>

#include "tw/common/rng.hpp"
#include "tw/core/hw_executor.hpp"

namespace tw::core {
namespace {

constexpr u64 kLineCells = 8 * 65;  // 8 units x (64 data + 1 tag)

pcm::PcmConfig cfg() { return pcm::table2_config(); }

TEST(HwExecutor, WritesLandExactly) {
  const TetrisScheme scheme(cfg());
  const HwExecutor hw(scheme);
  pcm::PcmArray array(kLineCells);
  Rng rng(1);

  pcm::LogicalLine next(8);
  for (u32 i = 0; i < 8; ++i) next.set_word(i, rng.next());
  const HwWriteResult r = hw.write_line(array, 0, next);
  EXPECT_GT(r.pulses.total(), 0u);
  const pcm::LogicalLine readback = hw.read_line(array, 0);
  for (u32 i = 0; i < 8; ++i) EXPECT_EQ(readback.word(i), next.word(i));
}

TEST(HwExecutor, PulsesMatchReadStageCounts) {
  const TetrisScheme scheme(cfg());
  const HwExecutor hw(scheme);
  pcm::PcmArray array(kLineCells);
  pcm::LogicalLine next(8);
  next.set_word(0, 0b1011);   // 3 SETs
  next.set_word(5, 0b10000);  // 1 SET
  const HwWriteResult r = hw.write_line(array, 0, next);
  EXPECT_EQ(r.pulses.sets, 4u);
  EXPECT_EQ(r.pulses.resets, 0u);
  EXPECT_EQ(array.total_pulses(), 4u);
  EXPECT_EQ(r.service_time, ns(430));  // one write unit
}

TEST(HwExecutor, RepeatedWritesAccumulateMinimalWear) {
  const TetrisScheme scheme(cfg());
  const HwExecutor hw(scheme);
  pcm::PcmArray array(kLineCells);
  Rng rng(5);
  u64 expected_pulses = 0;
  for (int round = 0; round < 30; ++round) {
    pcm::LogicalLine next = hw.read_line(array, 0);
    // Sparse mutation.
    for (u32 i = 0; i < 8; ++i) {
      u64 w = next.word(i);
      for (u32 b = 0; b < 6; ++b) {
        w = with_bit(w, static_cast<u32>(rng.below(64)), rng.chance(0.6));
      }
      next.set_word(i, w);
    }
    const HwWriteResult r = hw.write_line(array, 0, next);
    expected_pulses += r.pulses.total();
  }
  EXPECT_EQ(array.total_pulses(), expected_pulses);
  // Far below the all-bits wear a conventional writer would cause.
  EXPECT_LT(array.total_pulses(), 30u * 520u / 4);
}

TEST(HwExecutor, FlipPathExercisedOnHeavyWrites) {
  const TetrisScheme scheme(cfg());
  const HwExecutor hw(scheme);
  pcm::PcmArray array(kLineCells);
  // All-ones over a zeroed array: the flip stores inverted data; only
  // tag cells are pulsed.
  pcm::LogicalLine next(8);
  for (u32 i = 0; i < 8; ++i) next.set_word(i, ~u64{0});
  const HwWriteResult r = hw.write_line(array, 0, next);
  EXPECT_EQ(r.analysis.read.flipped_units, 8u);
  EXPECT_EQ(r.pulses.total(), 8u);  // the 8 tag cells
  const pcm::LogicalLine readback = hw.read_line(array, 0);
  for (u32 i = 0; i < 8; ++i) EXPECT_EQ(readback.word(i), ~u64{0});
}

TEST(HwExecutor, RandomStressAgainstBookkeepingModel) {
  const TetrisScheme scheme(cfg());
  const HwExecutor hw(scheme);
  pcm::PcmArray array(kLineCells);
  Rng rng(99);
  pcm::LineBuf model(8);  // the simulator's LineBuf bookkeeping

  for (int round = 0; round < 100; ++round) {
    pcm::LogicalLine next(8);
    for (u32 i = 0; i < 8; ++i) {
      u64 w = model.logical(i);
      const u32 flips = static_cast<u32>(rng.below(40));
      for (u32 b = 0; b < flips; ++b) {
        w = with_bit(w, static_cast<u32>(rng.below(64)), rng.chance(0.5));
      }
      next.set_word(i, w);
    }
    pcm::LineBuf work = model;
    const schemes::ServicePlan plan = scheme.plan_write(work, next);
    const HwWriteResult r = hw.write_line(array, 0, next);
    // Hardware pulses == plan's programmed bits; state matches.
    ASSERT_EQ(r.pulses.sets, plan.programmed.sets) << "round " << round;
    ASSERT_EQ(r.pulses.resets, plan.programmed.resets);
    for (u32 i = 0; i < 8; ++i) {
      ASSERT_EQ(hw.read_line(array, 0).word(i), work.logical(i));
    }
    model = work;
  }
}

TEST(HwExecutor, ServiceTimeMatchesEq5) {
  const TetrisScheme scheme(cfg());
  const HwExecutor hw(scheme);
  pcm::PcmArray array(kLineCells);
  Rng rng(7);
  for (int round = 0; round < 40; ++round) {
    pcm::LogicalLine next(8);
    for (u32 i = 0; i < 8; ++i) {
      next.set_word(i, hw.read_line(array, 0).word(i) ^
                           (rng.next() & rng.next()));
    }
    const HwWriteResult r = hw.write_line(array, 0, next);
    const Tick sub = cfg().timing.t_set / r.analysis.packer_cfg.k;
    EXPECT_EQ(r.service_time, r.analysis.pack.result * cfg().timing.t_set +
                                  r.analysis.pack.subresult * sub);
  }
}

TEST(HwExecutor, WorksOn256ByteLines) {
  pcm::PcmConfig c = cfg();
  c.geometry.cache_line_bytes = 256;  // 32 units
  const TetrisScheme scheme(c);
  const HwExecutor hw(scheme);
  pcm::PcmArray array(32 * 65);
  Rng rng(3);
  pcm::LogicalLine next(32);
  for (u32 i = 0; i < 32; ++i) next.set_word(i, rng.next());
  const HwWriteResult r = hw.write_line(array, 0, next);
  EXPECT_GT(r.pulses.total(), 0u);
  const pcm::LogicalLine back = hw.read_line(array, 0);
  for (u32 i = 0; i < 32; ++i) EXPECT_EQ(back.word(i), next.word(i));
}

TEST(HwExecutor, BoundsChecked) {
  const TetrisScheme scheme(cfg());
  const HwExecutor hw(scheme);
  pcm::PcmArray small(10);
  pcm::LogicalLine next(8);
  EXPECT_THROW(hw.write_line(small, 0, next), ContractViolation);
}

}  // namespace
}  // namespace tw::core
