// Golden-figure regression: a fast, deterministic slice of the figure
// matrix (two write-heavy PARSEC profiles x the five paper schemes)
// diffed scalar-by-scalar against the committed results/golden_figs.json.
//
// Every metric the figures are built from is a pure function of the seed,
// so integer scalars must match exactly and doubles to 1e-9 relative —
// any drift means a behavioral change that must be acknowledged by
// regenerating the goldens:
//
//   TW_REGEN_GOLDEN=1 ctest --test-dir build -R Golden
//
// (see EXPERIMENTS.md "Golden figures" for when regeneration is
// legitimate). The file lives in results/ next to the committed figure
// outputs; TW_GOLDEN_DIR is injected by tests/CMakeLists.txt.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "tw/harness/experiment.hpp"
#include "tw/pcm/params.hpp"
#include "tw/workload/profiles.hpp"

namespace tw {
namespace {

constexpr const char* kGoldenFile = TW_GOLDEN_DIR "/golden_figs.json";

harness::SystemConfig golden_config() {
  harness::SystemConfig cfg;
  cfg.cores = 2;
  cfg.instructions_per_core = 50'000;
  cfg.seed = 42;
  return cfg;
}

const std::vector<schemes::SchemeKind>& golden_schemes() {
  static const std::vector<schemes::SchemeKind> kKinds = {
      schemes::SchemeKind::kDcw, schemes::SchemeKind::kFlipNWrite,
      schemes::SchemeKind::kTwoStage, schemes::SchemeKind::kThreeStage,
      schemes::SchemeKind::kTetris};
  return kKinds;
}

const std::vector<std::string>& golden_workloads() {
  static const std::vector<std::string> kNames = {"vips", "ferret"};
  return kNames;
}

/// The scalars a figure cell contributes, keyed "workload.scheme.metric".
void collect(const harness::RunMetrics& m, const std::string& prefix,
             std::map<std::string, double>& flat) {
  flat[prefix + ".writes"] = static_cast<double>(m.writes);
  flat[prefix + ".reads"] = static_cast<double>(m.reads);
  flat[prefix + ".sim_events"] = static_cast<double>(m.sim_events);
  flat[prefix + ".runtime_ns"] = m.runtime_ns;
  flat[prefix + ".ipc"] = m.ipc;
  flat[prefix + ".read_latency_ns"] = m.read_latency_ns;
  flat[prefix + ".write_latency_ns"] = m.write_latency_ns;
  flat[prefix + ".write_service_ns"] = m.write_service_ns;
  flat[prefix + ".write_units"] = m.write_units;
  flat[prefix + ".write_energy_pj"] = m.write_energy_pj;
  flat[prefix + ".bits_per_write"] = static_cast<double>(m.bits_per_write);
}

/// Integer-valued keys compared exactly; the rest at 1e-9 relative.
bool exact_key(const std::string& key) {
  return key.ends_with(".writes") || key.ends_with(".reads") ||
         key.ends_with(".sim_events");
}

std::map<std::string, double> run_golden_matrix() {
  // Both tests consume the same matrix; run it once.
  static const std::map<std::string, double> kCached = [] {
    std::map<std::string, double> flat;
    for (const auto& wname : golden_workloads()) {
      const auto& w = workload::profile_by_name(wname);
      for (const auto kind : golden_schemes()) {
        const auto m = harness::run_system(golden_config(), w, kind);
        EXPECT_TRUE(m.completed) << wname;
        collect(m, wname + "." + std::string(schemes::scheme_name(kind)),
                flat);
      }
    }
    return flat;
  }();
  return kCached;
}

/// Minimal writer/reader for the flat {"key": value, ...} JSON object the
/// goldens use — full 17-digit round-trip precision.
void write_golden(const std::map<std::string, double>& flat) {
  std::ofstream out(kGoldenFile);
  ASSERT_TRUE(out.is_open()) << kGoldenFile;
  out << "{\n";
  std::size_t i = 0;
  for (const auto& [key, value] : flat) {
    out.precision(17);
    out << "  \"" << key << "\": " << value
        << (++i == flat.size() ? "\n" : ",\n");
  }
  out << "}\n";
}

std::map<std::string, double> read_golden() {
  std::map<std::string, double> flat;
  std::ifstream in(kGoldenFile);
  if (!in.is_open()) return flat;
  std::string line;
  while (std::getline(in, line)) {
    const auto open = line.find('"');
    if (open == std::string::npos) continue;
    const auto close = line.find('"', open + 1);
    const auto colon = line.find(':', close);
    if (close == std::string::npos || colon == std::string::npos) continue;
    const std::string key = line.substr(open + 1, close - open - 1);
    flat[key] = std::stod(line.substr(colon + 1));
  }
  return flat;
}

/// Diff one measured matrix against the committed baseline (integer keys
/// exact, doubles at 1e-9 relative). `tol` widens the double comparison
/// for callers that assert exact bit-identity (tol = 0).
void expect_matches_golden(const std::map<std::string, double>& measured,
                           const std::map<std::string, double>& golden) {
  ASSERT_EQ(measured.size(), golden.size());
  for (const auto& [key, want] : golden) {
    const auto it = measured.find(key);
    ASSERT_NE(it, measured.end()) << "missing scalar " << key;
    const double got = it->second;
    if (exact_key(key)) {
      EXPECT_EQ(got, want) << key;
    } else if (want == 0.0) {
      EXPECT_EQ(got, 0.0) << key;
    } else {
      EXPECT_LE(std::abs(got - want), 1e-9 * std::abs(want)) << key;
    }
  }
}

TEST(GoldenFigures, KeyScalarsMatchCommittedBaseline) {
  const auto measured = run_golden_matrix();
  ASSERT_FALSE(measured.empty());

  if (std::getenv("TW_REGEN_GOLDEN") != nullptr) {
    write_golden(measured);
    GTEST_SKIP() << "golden baseline regenerated at " << kGoldenFile;
  }

  const auto golden = read_golden();
  ASSERT_FALSE(golden.empty())
      << "missing " << kGoldenFile
      << " — regenerate with TW_REGEN_GOLDEN=1";
  expect_matches_golden(measured, golden);
}

/// channels=1 must be a pure passthrough of the single-controller path:
/// running the golden matrix with the channel topology explicitly
/// configured (any interleave mode — it is ignored at one channel) has
/// to reproduce the committed goldens scalar for scalar.
class GoldenChannelsOne
    : public ::testing::TestWithParam<pcm::ChannelInterleave> {};

TEST_P(GoldenChannelsOne, BitIdenticalToSingleControllerPath) {
  if (std::getenv("TW_REGEN_GOLDEN") != nullptr) {
    GTEST_SKIP() << "regeneration run";
  }
  const auto golden = read_golden();
  ASSERT_FALSE(golden.empty())
      << "missing " << kGoldenFile
      << " — regenerate with TW_REGEN_GOLDEN=1";

  std::map<std::string, double> measured;
  for (const auto& wname : golden_workloads()) {
    const auto& w = workload::profile_by_name(wname);
    for (const auto kind : golden_schemes()) {
      harness::SystemConfig cfg = golden_config();
      cfg.pcm.geometry.channels = 1;
      cfg.pcm.geometry.channel_interleave = GetParam();
      const auto m = harness::run_system(cfg, w, kind);
      EXPECT_TRUE(m.completed) << wname;
      collect(m, wname + "." + std::string(schemes::scheme_name(kind)),
              measured);
    }
  }
  expect_matches_golden(measured, golden);
}

INSTANTIATE_TEST_SUITE_P(AllInterleaves, GoldenChannelsOne,
                         ::testing::Values(pcm::ChannelInterleave::kLine,
                                           pcm::ChannelInterleave::kBank,
                                           pcm::ChannelInterleave::kRow),
                         [](const auto& param_info) {
                           return std::string(pcm::channel_interleave_name(
                               param_info.param));
                         });

TEST(GoldenFigures, TetrisRanksFirstOnIpc) {
  // The fig13 headline, on the same reduced matrix: Tetris's IPC geomean
  // beats every other scheme's (regenerating goldens can't hide a ranking
  // regression, because this check never reads the file).
  const auto measured = run_golden_matrix();
  std::map<std::string, double> geomean;
  for (const auto kind : golden_schemes()) {
    const std::string scheme(schemes::scheme_name(kind));
    double log_sum = 0.0;
    for (const auto& wname : golden_workloads()) {
      const double ipc = measured.at(wname + "." + scheme + ".ipc");
      ASSERT_GT(ipc, 0.0);
      log_sum += std::log(ipc);
    }
    geomean[scheme] =
        std::exp(log_sum / static_cast<double>(golden_workloads().size()));
  }
  const double tetris = geomean.at("tetris");
  for (const auto& [scheme, g] : geomean) {
    if (scheme == "tetris") continue;
    EXPECT_GT(tetris, g) << "tetris IPC geomean beaten by " << scheme;
  }
}

}  // namespace
}  // namespace tw
