// Fuzz layer for the Tetris packer (Algorithm 2) and its retry re-entry
// path: bounded-exhaustive sweeps over the bit-count edges (0 and 64 ones
// per unit) and the budget boundaries, plus seeded-random campaigns, all
// cross-checked by verify_pack and the bit-serial OracleScheme. Failures
// are shrunk by a minimizer that prints a copy-pasteable reproducer.

#include <gtest/gtest.h>

#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "tw/common/env.hpp"
#include "tw/common/rng.hpp"
#include "tw/core/batch_packer.hpp"
#include "tw/core/factory.hpp"
#include "tw/core/fsm.hpp"
#include "tw/core/packer.hpp"
#include "tw/encode/encoded_scheme.hpp"
#include "tw/encode/encoder.hpp"
#include "tw/verify/differential.hpp"
#include "tw/verify/invariant_monitor.hpp"

namespace tw::core {
namespace {

struct FuzzCase {
  std::vector<UnitCounts> counts;
  PackerConfig cfg;
};

/// Trial count for a randomized campaign: the in-tree default times the
/// TW_FUZZ_SCALE extended-trial multiplier (nightly CI's long campaigns).
int trials(int base) { return base * static_cast<int>(fuzz_scale_env()); }

/// Campaign seed: the in-tree base plus the TW_FUZZ_SEED offset, so
/// successive nightly runs explore fresh cases.
u64 campaign_seed(u64 base) { return base + fuzz_seed_env(); }

/// Copy-pasteable reproducer for a failing case.
std::string reproducer(const FuzzCase& c) {
  std::ostringstream out;
  out << "PackerConfig{.k=" << c.cfg.k << ", .l=" << c.cfg.l
      << ", .budget=" << c.cfg.budget
      << ", .order=PackOrder(" << static_cast<int>(c.cfg.order) << ")"
      << ", .forbid_self_overlap="
      << (c.cfg.forbid_self_overlap ? "true" : "false") << "} counts={";
  for (const auto& u : c.counts) {
    out << "{" << u.unit << "," << u.n1 << "," << u.n0 << "},";
  }
  out << "}";
  return out.str();
}

/// True when pack() produces a schedule verify_pack rejects (or throws).
bool pack_is_broken(const FuzzCase& c) {
  try {
    verify_pack(c.counts, c.cfg, pack(c.counts, c.cfg));
    return false;
  } catch (const std::exception&) {
    return true;
  }
}

/// Greedy shrinking: drop whole units, then shrink individual counts,
/// as long as the failure predicate keeps holding. Returns the minimal
/// still-failing case.
FuzzCase minimize(FuzzCase c,
                  const std::function<bool(const FuzzCase&)>& fails) {
  bool progress = true;
  while (progress) {
    progress = false;
    // Drop whole units.
    for (std::size_t i = 0; i < c.counts.size();) {
      FuzzCase smaller = c;
      smaller.counts.erase(smaller.counts.begin() +
                           static_cast<std::ptrdiff_t>(i));
      if (fails(smaller)) {
        c = smaller;
        progress = true;
      } else {
        ++i;
      }
    }
    // Shrink counts: zero, halve, decrement — first success wins.
    for (auto& u : c.counts) {
      for (u32* field : {&u.n1, &u.n0}) {
        const u32 original = *field;
        for (const u32 candidate :
             {u32{0}, original / 2,
              original == 0 ? u32{0} : original - 1}) {
          if (candidate >= original) continue;
          *field = candidate;
          if (fails(c)) {
            progress = true;
            break;
          }
          *field = original;
        }
      }
    }
  }
  return c;
}

/// verify_pack + minimize-and-report on failure.
void check_or_minimize(const FuzzCase& c) {
  if (!pack_is_broken(c)) return;
  const FuzzCase minimal = minimize(c, pack_is_broken);
  FAIL() << "packer invariant violated; minimal reproducer: "
         << reproducer(minimal);
}

// ------------------------------------------------ bounded-exhaustive --
TEST(FuzzPacker, ExhaustiveSingleUnitAllBitCounts) {
  // Every (n1, n0) pair over the full 0..64 range — the 0 and 64 edges
  // included — against budgets at and around the interesting boundaries
  // (1 = everything over budget, 64 = one full unit, 128 = Table II).
  for (const u32 budget : {1u, 2u, 32u, 64u, 127u, 128u, 129u}) {
    for (const u32 k : {1u, 8u}) {
      for (const u32 l : {1u, 2u}) {
        FuzzCase c;
        c.cfg.k = k;
        c.cfg.l = l;
        c.cfg.budget = budget;
        for (u32 n1 = 0; n1 <= 64; ++n1) {
          for (u32 n0 = 0; n0 + n1 <= 64; ++n0) {
            c.counts = {UnitCounts{0, n1, n0}};
            check_or_minimize(c);
          }
        }
      }
    }
  }
}

TEST(FuzzPacker, ExhaustiveTwoUnitEdgeGrid) {
  // All pairs over the edge set {0, 1, 31, 32, 63, 64} for both units and
  // both phases: exercises empty units, half-budget and full-unit demand.
  const u32 edges[] = {0, 1, 31, 32, 63, 64};
  for (const u32 budget : {1u, 64u, 128u}) {
    for (const bool forbid : {false, true}) {
      FuzzCase c;
      c.cfg.k = 8;
      c.cfg.l = 2;
      c.cfg.budget = budget;
      c.cfg.forbid_self_overlap = forbid;
      for (const u32 a1 : edges) {
        for (const u32 a0 : edges) {
          if (a1 + a0 > 64) continue;
          for (const u32 b1 : edges) {
            for (const u32 b0 : edges) {
              if (b1 + b0 > 64) continue;
              c.counts = {UnitCounts{0, a1, a0}, UnitCounts{1, b1, b0}};
              check_or_minimize(c);
            }
          }
        }
      }
    }
  }
}

// ----------------------------------------------------- seeded-random --
TEST(FuzzPacker, RandomCampaignAllOrdersAndBudgets) {
  Rng rng(campaign_seed(0xF422ull));
  const PackOrder orders[] = {PackOrder::kFirstFitDecreasing,
                              PackOrder::kFirstFitArrival,
                              PackOrder::kBestFitDecreasing};
  for (int trial = 0; trial < trials(20'000); ++trial) {
    FuzzCase c;
    c.cfg.k = 1 + static_cast<u32>(rng.next() % 8);
    c.cfg.l = 1 + static_cast<u32>(rng.next() % 4);
    c.cfg.budget = 1 + static_cast<u32>(rng.next() % 160);
    c.cfg.order = orders[rng.next() % 3];
    c.cfg.forbid_self_overlap = rng.chance(0.25);
    const u32 units = 1 + static_cast<u32>(rng.next() % 8);
    for (u32 u = 0; u < units; ++u) {
      // Bias toward the 0/64 edges: a quarter of draws pin an edge.
      u32 n1 = static_cast<u32>(rng.next() % 65);
      if (rng.chance(0.25)) n1 = rng.chance(0.5) ? 0 : 64;
      const u32 n0 = static_cast<u32>(rng.next() % (65 - n1));
      c.counts.push_back(UnitCounts{u, n1, n0});
    }
    check_or_minimize(c);
  }
}

TEST(FuzzPacker, ScheduleLengthNeverBeatsDemandLowerBound) {
  // Independent of verify_pack: the packed schedule must offer at least
  // as much budget x time as the total demand requires.
  Rng rng(campaign_seed(0xBEEFull));
  for (int trial = 0; trial < trials(5'000); ++trial) {
    FuzzCase c;
    c.cfg.k = 8;
    c.cfg.l = 2;
    c.cfg.budget = 16 + static_cast<u32>(rng.next() % 128);
    u64 demand = 0;  // in SET-current x sub-slot units
    const u32 units = 1 + static_cast<u32>(rng.next() % 8);
    for (u32 u = 0; u < units; ++u) {
      const u32 n1 = static_cast<u32>(rng.next() % 65);
      const u32 n0 = static_cast<u32>(rng.next() % (65 - n1));
      c.counts.push_back(UnitCounts{u, n1, n0});
      demand += u64{n1} * c.cfg.k + u64{n0} * c.cfg.l;
    }
    const PackResult r = pack(c.counts, c.cfg);
    const u64 offered = u64{r.total_sub_slots(c.cfg.k)} * c.cfg.budget;
    EXPECT_GE(offered, demand) << reproducer(c);
  }
}

// ------------------------------------------------- oracle cross-check --
TEST(FuzzPacker, RandomWritesMatchBitSerialOracle) {
  // The packer feeds the Tetris write path; every observable of the full
  // write (post-image, pulse counts, latency envelope, energy floor) must
  // match the bit-serial oracle. Also sweeps the other paper schemes so a
  // packer regression can't hide behind a scheme-specific bug.
  const pcm::PcmConfig dev = pcm::table2_config();
  const u32 units = dev.geometry.units_per_line();
  for (const auto kind :
       {schemes::SchemeKind::kTetris, schemes::SchemeKind::kDcw,
        schemes::SchemeKind::kFlipNWrite, schemes::SchemeKind::kTwoStage,
        schemes::SchemeKind::kThreeStage}) {
    SCOPED_TRACE(schemes::scheme_name(kind));
    const auto scheme = make_scheme(kind, dev);
    verify::DifferentialChecker checker(*scheme);
    pcm::LineBuf line(units);
    Rng rng(campaign_seed(0x0DDCAFEull));

    // Edge contents first: silent write, all-SET, all-RESET, alternating.
    const u64 edge_words[] = {0x0ull, ~0x0ull, 0xAAAA'AAAA'AAAA'AAAAull,
                              0x5555'5555'5555'5555ull};
    for (const u64 w : edge_words) {
      pcm::LogicalLine next(units);
      for (u32 u = 0; u < units; ++u) next.set_word(u, w);
      checker.check_write(line, next);
      checker.check_write(line, next);  // second write is silent
    }
    // Then a random campaign with edge-biased unit words.
    for (int trial = 0; trial < trials(400); ++trial) {
      pcm::LogicalLine next(units);
      for (u32 u = 0; u < units; ++u) {
        u64 w = rng.next();
        if (rng.chance(0.2)) w = rng.chance(0.5) ? 0x0ull : ~0x0ull;
        next.set_word(u, w);
      }
      checker.check_write(line, next);
    }
    EXPECT_GT(checker.report().writes, 400u);
    // Only read-before-write schemes can classify a rewrite as silent.
    if (scheme->semantics().pulses == schemes::PulsePolicy::kChangedCells) {
      EXPECT_GT(checker.report().silent_writes, 0u);
    }
  }
}

// ------------------------------------------------------ retry re-entry --
TEST(FuzzPacker, RetryReentryIsDeterministicAndBounded) {
  const pcm::PcmConfig dev = pcm::table2_config();
  const auto tetris = make_scheme(schemes::SchemeKind::kTetris, dev);
  const auto dcw = make_scheme(schemes::SchemeKind::kDcw, dev);
  Rng rng(campaign_seed(0x4E74ull));
  for (int trial = 0; trial < trials(2'000); ++trial) {
    BitTransitions failed;
    failed.sets = static_cast<u32>(rng.next() % 513);
    failed.resets = static_cast<u32>(rng.next() % 513);
    if (rng.chance(0.2)) failed.sets = rng.chance(0.5) ? 0 : 512;
    if (failed.total() == 0) failed.resets = 1;
    const u32 attempt = 1 + static_cast<u32>(rng.next() % 4);

    const Tick t = tetris->plan_retry(failed, attempt, 2.0);
    EXPECT_GT(t, 0u);
    EXPECT_EQ(t, tetris->plan_retry(failed, attempt, 2.0));  // pure
    // Exponential widening: attempt+1 at the same widen costs more.
    EXPECT_GT(tetris->plan_retry(failed, attempt + 1, 2.0), t);
    // widen=1.0 degenerates to the unwidened repack, which any widened
    // attempt must dominate.
    EXPECT_GE(t, tetris->plan_retry(failed, attempt, 1.0));
    // The baseline serial pricing obeys the same monotonicity.
    EXPECT_GE(dcw->plan_retry(failed, attempt + 1, 2.0),
              dcw->plan_retry(failed, attempt, 2.0));
  }
}

TEST(FuzzPacker, RetrySpreadRepacksUnderBudget) {
  // The Tetris retry path spreads failed bits over the line's units and
  // re-enters the packer: emulate the same round-robin spread here and
  // assert the packed schedule passes verify_pack at every failed-bit
  // count, including the 0/64-per-unit edges.
  const pcm::PcmConfig dev = pcm::table2_config();
  const u32 units = dev.geometry.units_per_line();
  PackerConfig cfg;
  cfg.k = dev.k();
  cfg.l = dev.l();
  cfg.budget = dev.bank_power_budget();
  for (u32 sets = 0; sets <= units * 64; sets += 7) {
    for (const u32 resets : {0u, 1u, 64u, units * 64}) {
      std::vector<u32> n1(units, 0), n0(units, 0);
      for (u32 i = 0; i < sets; ++i) ++n1[i % units];
      for (u32 i = 0; i < resets; ++i) ++n0[i % units];
      FuzzCase c;
      c.cfg = cfg;
      for (u32 u = 0; u < units; ++u) {
        if (n1[u] + n0[u] > 0) c.counts.push_back(UnitCounts{u, n1[u], n0[u]});
      }
      check_or_minimize(c);
    }
  }
}

// ------------------------------------------------- multi-line batches --
// Fuzz layer for the BatchPacker joint schedules: K same-bank lines enter
// one pack under the bank budget, re-checked end to end by verify_pack,
// the InvariantMonitor's schedule/trace recomputation, and the executed
// FSM model. Failures shrink through a multi-line minimizer (drop lines,
// silence units) that prints a copy-pasteable reproducer.

struct MultiLineCase {
  u32 budget = 128;
  std::vector<pcm::LineBuf> lines;
  std::vector<pcm::LogicalLine> datas;
};

std::string multi_reproducer(const MultiLineCase& c) {
  std::ostringstream out;
  out << std::hex << "budget=" << std::dec << c.budget << " lines={";
  for (std::size_t i = 0; i < c.lines.size(); ++i) {
    out << "{cells:" << std::hex;
    for (u32 u = 0; u < c.lines[i].units(); ++u) {
      out << (u ? "," : "") << c.lines[i].cell(u)
          << (c.lines[i].flip(u) ? "F" : "");
    }
    out << " next:";
    for (u32 u = 0; u < c.datas[i].units(); ++u) {
      out << (u ? "," : "") << c.datas[i].word(u);
    }
    out << std::dec << "},";
  }
  out << "}";
  return out.str();
}

/// Joint-pack a case and re-check every invariant: verify_pack, the
/// monitor's independent schedule + trace recomputation, the executed-FSM
/// power model, the age-ordered unit renumbering, and per-line image
/// correctness. True when anything fails (the minimizer's predicate).
bool multi_line_broken(MultiLineCase c) {
  const pcm::PcmConfig dev = pcm::table2_config();
  const u32 units = dev.geometry.units_per_line();
  PackerConfig pcfg;
  pcfg.k = dev.k();
  pcfg.l = dev.l();
  pcfg.budget = c.budget;
  try {
    std::vector<pcm::LineBuf*> ptrs;
    for (auto& l : c.lines) ptrs.push_back(&l);
    const BatchPacker bp(dev, BatchPackerOptions{});
    const BatchPackOutcome out = bp.pack_lines(
        {ptrs.data(), ptrs.size()}, {c.datas.data(), c.datas.size()}, pcfg);

    verify_pack(out.counts, pcfg, out.pack);
    verify::InvariantMonitor monitor(pcfg, dev.timing);
    monitor.check_schedule(out.counts, out.pack, pcfg);
    const FsmTrace trace = execute_fsms(out.pack, pcfg, dev.timing);
    monitor.check_trace(trace, out.pack);
    if (trace.peak_current > pcfg.budget) return true;

    // Age-ordered renumbering: line i's unit u is global unit i*units+u,
    // concatenated in the controller's input (age) order without gaps.
    if (out.lines != c.lines.size()) return true;
    if (out.reads.size() != c.lines.size()) return true;
    if (out.counts.size() != c.lines.size() * units) return true;
    for (std::size_t g = 0; g < out.counts.size(); ++g) {
      if (out.counts[g].unit != g) return true;
    }
    // Per-line image correctness: each line's plans, applied, must decode
    // back to exactly the data the batch was asked to store.
    for (std::size_t i = 0; i < c.lines.size(); ++i) {
      pcm::LineBuf post = c.lines[i];
      schemes::apply_plans(
          post, {out.reads[i].plans.data(), out.reads[i].plans.size()});
      if (!(pcm::LogicalLine::from_physical(post) == c.datas[i])) return true;
    }
  } catch (const std::exception&) {
    return true;
  }
  return false;
}

/// Greedy multi-line shrinking: drop whole lines, then silence individual
/// units (next := current logical value, zero demand), as long as the
/// failure predicate keeps holding.
MultiLineCase minimize_multi(
    MultiLineCase c, const std::function<bool(const MultiLineCase&)>& fails) {
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; c.lines.size() > 1 && i < c.lines.size();) {
      MultiLineCase smaller = c;
      smaller.lines.erase(smaller.lines.begin() +
                          static_cast<std::ptrdiff_t>(i));
      smaller.datas.erase(smaller.datas.begin() +
                          static_cast<std::ptrdiff_t>(i));
      if (fails(smaller)) {
        c = std::move(smaller);
        progress = true;
      } else {
        ++i;
      }
    }
    for (std::size_t i = 0; i < c.lines.size(); ++i) {
      for (u32 u = 0; u < c.lines[i].units(); ++u) {
        if (c.datas[i].word(u) == c.lines[i].logical(u)) continue;
        MultiLineCase quieter = c;
        quieter.datas[i].set_word(u, c.lines[i].logical(u));
        if (fails(quieter)) {
          c = std::move(quieter);
          progress = true;
        }
      }
    }
  }
  return c;
}

void check_or_minimize_multi(const MultiLineCase& c) {
  if (!multi_line_broken(c)) return;
  const MultiLineCase minimal = minimize_multi(c, multi_line_broken);
  FAIL() << "multi-line batch invariant violated; minimal reproducer: "
         << multi_reproducer(minimal);
}

MultiLineCase random_multi_case(Rng& rng, u32 max_lines, u32 budget) {
  const pcm::PcmConfig dev = pcm::table2_config();
  const u32 units = dev.geometry.units_per_line();
  MultiLineCase c;
  c.budget = budget;
  const u32 k = 1 + static_cast<u32>(rng.next() % max_lines);
  for (u32 i = 0; i < k; ++i) {
    pcm::LineBuf line(units);
    pcm::LogicalLine next(units);
    for (u32 u = 0; u < units; ++u) {
      u64 cells = rng.next();
      if (rng.chance(0.2)) cells = rng.chance(0.5) ? 0x0ull : ~0x0ull;
      line.set_cell(u, cells);
      line.set_flip(u, rng.chance(0.3));
      // Mix full rewrites, sparse deltas, and silent units.
      u64 w = rng.next();
      if (rng.chance(0.3)) w = line.logical(u) ^ (rng.next() & rng.next());
      if (rng.chance(0.1)) w = line.logical(u);
      next.set_word(u, w);
    }
    c.lines.push_back(line);
    c.datas.push_back(next);
  }
  return c;
}

TEST(FuzzPacker, MultiLineJointPackCampaign) {
  // Random K-line batches (K up to 8, the ablation's largest setting)
  // against the Table II budget and squeezed budgets that force shared,
  // multi-pass, and overflow write units in one joint schedule.
  Rng rng(campaign_seed(0xBA7Cull));
  for (const u32 budget : {128u, 64u, 32u}) {
    for (int trial = 0; trial < trials(500); ++trial) {
      check_or_minimize_multi(random_multi_case(rng, 8, budget));
    }
  }
}

TEST(FuzzPacker, MultiLineDegenerateSingleLineMatchesPack) {
  // A one-line "batch" is plain Algorithm 2: the joint schedule must be
  // bit-identical to pack() over that line's own read-stage counts.
  const pcm::PcmConfig dev = pcm::table2_config();
  PackerConfig pcfg;
  pcfg.k = dev.k();
  pcfg.l = dev.l();
  pcfg.budget = dev.bank_power_budget();
  const BatchPacker bp(dev, BatchPackerOptions{});
  Rng rng(campaign_seed(0x1A7Cull));
  for (int trial = 0; trial < trials(2'000); ++trial) {
    MultiLineCase c = random_multi_case(rng, 1, pcfg.budget);
    std::vector<pcm::LineBuf*> ptrs{&c.lines[0]};
    const BatchPackOutcome out =
        bp.pack_lines({ptrs.data(), 1}, {c.datas.data(), 1}, pcfg);
    const CountsVec counts = bp.line_counts(c.lines[0], out.reads[0], 0);
    const PackResult solo = pack({counts.data(), counts.size()}, pcfg);
    EXPECT_EQ(out.pack.result, solo.result);
    EXPECT_EQ(out.pack.subresult, solo.subresult);
    EXPECT_EQ(out.pack.fit_checks, solo.fit_checks);
    ASSERT_EQ(out.pack.write1_queue.size(), solo.write1_queue.size());
    ASSERT_EQ(out.pack.write0_queue.size(), solo.write0_queue.size());
  }
}

TEST(FuzzPacker, MultiLineMinimizerShrinksToMinimalCase) {
  // Self-test on a synthetic predicate: "fails" iff at least two lines
  // are present and some line still demands a write in unit 0. The
  // minimizer must drop every extra line and silence every other unit.
  const auto fails = [](const MultiLineCase& c) {
    if (c.lines.size() < 2) return false;
    for (std::size_t i = 0; i < c.lines.size(); ++i) {
      if (c.datas[i].word(0) != c.lines[i].logical(0)) return true;
    }
    return false;
  };
  Rng rng(0x313Bull);
  MultiLineCase big = random_multi_case(rng, 6, 128);
  while (big.lines.size() < 2 || !fails(big)) {
    big = random_multi_case(rng, 6, 128);
  }
  const MultiLineCase minimal = minimize_multi(big, fails);
  ASSERT_TRUE(fails(minimal));
  ASSERT_EQ(minimal.lines.size(), 2u);
  u32 loud_units = 0;
  for (std::size_t i = 0; i < minimal.lines.size(); ++i) {
    for (u32 u = 0; u < minimal.lines[i].units(); ++u) {
      if (minimal.datas[i].word(u) != minimal.lines[i].logical(u)) {
        ++loud_units;
        EXPECT_EQ(u, 0u);  // only the trigger unit survives
      }
    }
  }
  EXPECT_EQ(loud_units, 1u);
}

// ------------------------------------------- encoder-composed campaigns --
// Fuzz layer for the content-encoder pre-stage (tw/encode/): random
// encoder x scheme x data class, starting from arbitrary line states
// (cells, flip tags, encoder metadata). Each case is cross-checked three
// ways — end-to-end logical round trip through the decorator, the
// bit-serial oracle over the independently re-derived coded stream, and
// cell-exact agreement between the two paths — and failures shrink
// through a greedy minimizer that prints a copy-pasteable reproducer.

struct EncCase {
  schemes::SchemeKind skind = schemes::SchemeKind::kDcw;
  encode::EncoderKind ekind = encode::EncoderKind::kFlip;
  pcm::LineBuf line{pcm::table2_config().geometry.units_per_line()};
  pcm::LogicalLine next{pcm::table2_config().geometry.units_per_line()};
};

std::string enc_reproducer(const EncCase& c) {
  std::ostringstream out;
  out << "scheme=" << schemes::scheme_name(c.skind)
      << " encoder=" << encode::encoder_name(c.ekind) << std::hex
      << " cells={";
  for (u32 u = 0; u < c.line.units(); ++u) {
    out << (u ? "," : "") << c.line.cell(u) << (c.line.flip(u) ? "F" : "")
        << "/m" << static_cast<int>(c.line.meta(u));
  }
  out << "} next={";
  for (u32 u = 0; u < c.next.units(); ++u) {
    out << (u ? "," : "") << c.next.word(u);
  }
  out << "}";
  return out.str();
}

/// True when any encoder invariant breaks for this case: the decorator's
/// stored image fails to decode back, the oracle rejects the coded
/// stream, or the decorated line diverges from the shadow line driven
/// through the bare scheme on the same codes.
bool enc_broken(const EncCase& c) {
  const pcm::PcmConfig dev = pcm::table2_config();
  const u32 bits = dev.geometry.data_unit_bits;
  try {
    const auto wrapped =
        encode::wrap_scheme(make_scheme(c.skind, dev), c.ekind);
    const auto inner = make_scheme(c.skind, dev);
    const auto enc = encode::make_encoder(c.ekind, dev);
    pcm::LineBuf line = c.line;
    pcm::LineBuf shadow = c.line;

    wrapped->plan_write(line, c.next);
    if (!(wrapped->decode_stored(line) == c.next)) return true;

    verify::DifferentialChecker checker(*inner);
    pcm::LogicalLine coded(c.next.units());
    std::vector<u8> metas(c.next.units());
    for (u32 u = 0; u < c.next.units(); ++u) {
      metas[u] = enc->choose(c.next.word(u), shadow.logical(u),
                             shadow.meta(u), bits);
      coded.set_word(
          u, enc->apply(c.next.word(u), metas[u], shadow.logical(u), bits));
    }
    checker.check_write(shadow, coded);
    for (u32 u = 0; u < c.next.units(); ++u) {
      if (line.cell(u) != shadow.cell(u)) return true;
      if (line.flip(u) != shadow.flip(u)) return true;
      if (line.meta(u) != metas[u]) return true;
    }
  } catch (const std::exception&) {
    return true;
  }
  return false;
}

/// Greedy shrinking: silence units (next := the unit's decoded value),
/// then flatten line state (zero cells, clear flips, zero metas), as long
/// as the failure predicate keeps holding.
EncCase minimize_enc(EncCase c,
                     const std::function<bool(const EncCase&)>& fails) {
  const pcm::PcmConfig dev = pcm::table2_config();
  bool progress = true;
  while (progress) {
    progress = false;
    const auto wrapped =
        encode::wrap_scheme(make_scheme(c.skind, dev), c.ekind);
    const pcm::LogicalLine decoded = wrapped->decode_stored(c.line);
    for (u32 u = 0; u < c.line.units(); ++u) {
      if (c.next.word(u) != decoded.word(u)) {
        EncCase quieter = c;
        quieter.next.set_word(u, decoded.word(u));
        if (fails(quieter)) {
          c = std::move(quieter);
          progress = true;
          continue;
        }
      }
      EncCase flat = c;
      flat.line.set_cell(u, 0);
      flat.line.set_flip(u, false);
      flat.line.set_meta(u, 0);
      const bool changed = c.line.cell(u) != 0 || c.line.flip(u) ||
                           c.line.meta(u) != 0;
      if (changed && fails(flat)) {
        c = std::move(flat);
        progress = true;
      }
    }
  }
  return c;
}

void check_or_minimize_enc(const EncCase& c) {
  if (!enc_broken(c)) return;
  const EncCase minimal = minimize_enc(c, enc_broken);
  FAIL() << "encoder invariant violated; minimal reproducer: "
         << enc_reproducer(minimal);
}

EncCase random_enc_case(Rng& rng) {
  const pcm::PcmConfig dev = pcm::table2_config();
  const u32 units = dev.geometry.units_per_line();
  const u32 bits = dev.geometry.data_unit_bits;
  constexpr schemes::SchemeKind kSchemes[] = {
      schemes::SchemeKind::kDcw,      schemes::SchemeKind::kFlipNWrite,
      schemes::SchemeKind::kTwoStage, schemes::SchemeKind::kThreeStage,
      schemes::SchemeKind::kTetris};
  constexpr encode::EncoderKind kEncoders[] = {encode::EncoderKind::kFlip,
                                               encode::EncoderKind::kWire,
                                               encode::EncoderKind::kCoset};
  EncCase c;
  c.skind = kSchemes[rng.next() % 5];
  c.ekind = kEncoders[rng.next() % 3];
  const auto enc = encode::make_encoder(c.ekind, dev);
  const u64 mmask = low_mask(enc->meta_bits());
  for (u32 u = 0; u < units; ++u) {
    u64 cells = rng.next();
    if (rng.chance(0.2)) cells = rng.chance(0.5) ? 0x0ull : ~0x0ull;
    c.line.set_cell(u, cells & low_mask(bits));
    c.line.set_flip(u, rng.chance(0.3));
    c.line.set_meta(u, static_cast<u8>(rng.next() & mmask));
  }
  // Data classes: all-zero, all-one, random, compressible narrow value,
  // adversarial half-flip of the current stored logical word.
  const u32 cls = static_cast<u32>(rng.next() % 5);
  for (u32 u = 0; u < units; ++u) {
    u64 w = 0;
    switch (cls) {
      case 0:
        break;
      case 1:
        w = low_mask(bits);
        break;
      case 2:
        w = rng.next() & low_mask(bits);
        break;
      case 3: {
        const u64 lo = rng.next() & low_mask(bits / 2);
        w = rng.chance(0.5) ? lo : (lo | (low_mask(bits) ^ low_mask(bits / 2)));
        break;
      }
      default: {
        u64 flips = 0;
        while (popcount(flips) < bits / 2) {
          flips |= u64{1} << (rng.next() % bits);
        }
        w = (c.line.logical(u) ^ flips) & low_mask(bits);
        break;
      }
    }
    c.next.set_word(u, w);
  }
  return c;
}

TEST(EncodeFuzz, RandomEncoderSchemeDataClassCampaign) {
  Rng rng(campaign_seed(0xE6C0ull));
  for (int trial = 0; trial < trials(1'500); ++trial) {
    check_or_minimize_enc(random_enc_case(rng));
  }
}

TEST(EncodeFuzz, EncodedBatchCampaignMatchesSoloPlans) {
  // Random K-line batches through the decorator must land every line in
  // exactly the state line-at-a-time planning produces, and every line
  // must decode back to its requested data. Failures shrink by dropping
  // lines before reporting.
  const pcm::PcmConfig dev = pcm::table2_config();
  Rng rng(campaign_seed(0xEBA7ull));
  const auto broken = [&dev](const std::vector<EncCase>& cases) -> bool {
    if (cases.empty()) return false;
    try {
      const auto wrapped =
          encode::wrap_scheme(make_scheme(cases[0].skind, dev),
                              cases[0].ekind);
      std::vector<pcm::LineBuf> batch_lines, solo_lines;
      std::vector<pcm::LogicalLine> datas;
      for (const EncCase& c : cases) {
        batch_lines.push_back(c.line);
        solo_lines.push_back(c.line);
        datas.push_back(c.next);
      }
      std::vector<pcm::LineBuf*> ptrs;
      for (auto& l : batch_lines) ptrs.push_back(&l);
      const schemes::BatchServicePlan bp = wrapped->plan_write_batch(
          {ptrs.data(), ptrs.size()}, {datas.data(), datas.size()});
      if (bp.per_line.size() != cases.size()) return true;
      for (std::size_t i = 0; i < cases.size(); ++i) {
        const schemes::ServicePlan sp =
            wrapped->plan_write(solo_lines[i], datas[i]);
        if (!(batch_lines[i] == solo_lines[i])) return true;
        if (!(bp.per_line[i].programmed == sp.programmed)) return true;
        if (bp.per_line[i].enc.tag_bits != sp.enc.tag_bits) return true;
        if (!(wrapped->decode_stored(batch_lines[i]) == datas[i])) {
          return true;
        }
      }
    } catch (const std::exception&) {
      return true;
    }
    return false;
  };
  for (int trial = 0; trial < trials(150); ++trial) {
    std::vector<EncCase> cases;
    const std::size_t k = 1 + rng.next() % 6;
    EncCase first = random_enc_case(rng);
    cases.push_back(first);
    for (std::size_t i = 1; i < k; ++i) {
      EncCase c = random_enc_case(rng);
      c.skind = first.skind;  // one scheme + encoder per bank
      c.ekind = first.ekind;
      cases.push_back(c);
    }
    if (!broken(cases)) continue;
    // Shrink: drop whole lines while the batch still diverges.
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t i = 0; cases.size() > 1 && i < cases.size();) {
        std::vector<EncCase> smaller = cases;
        smaller.erase(smaller.begin() + static_cast<std::ptrdiff_t>(i));
        if (broken(smaller)) {
          cases = std::move(smaller);
          progress = true;
        } else {
          ++i;
        }
      }
    }
    std::ostringstream out;
    for (const EncCase& c : cases) out << enc_reproducer(c) << " | ";
    FAIL() << "encoded batch diverged from solo plans; minimal batch: "
           << out.str();
  }
}

// ----------------------------------------------------------- minimizer --
TEST(FuzzPacker, MinimizerShrinksToMinimalCase) {
  // Self-test on a synthetic predicate: "fails" iff some unit has n1 >= 7
  // while at least two units are present. The minimizer must strip every
  // irrelevant unit and shrink the trigger to exactly the boundary.
  const auto fails = [](const FuzzCase& c) {
    if (c.counts.size() < 2) return false;
    for (const auto& u : c.counts) {
      if (u.n1 >= 7) return true;
    }
    return false;
  };
  FuzzCase big;
  big.cfg.budget = 128;
  big.counts = {UnitCounts{0, 40, 12}, UnitCounts{1, 3, 60},
                UnitCounts{2, 9, 9}, UnitCounts{3, 0, 0}};
  ASSERT_TRUE(fails(big));
  const FuzzCase minimal = minimize(big, fails);
  ASSERT_TRUE(fails(minimal));
  ASSERT_EQ(minimal.counts.size(), 2u);
  u32 triggers = 0;
  for (const auto& u : minimal.counts) {
    if (u.n1 >= 7) {
      ++triggers;
      EXPECT_EQ(u.n1, 7u);  // shrunk to the exact boundary
    } else {
      EXPECT_EQ(u.n1, 0u);  // fully shrunk
    }
    EXPECT_EQ(u.n0, 0u);
  }
  EXPECT_EQ(triggers, 1u);
  // And the reproducer mentions the surviving trigger.
  EXPECT_NE(reproducer(minimal).find(",7,"), std::string::npos);
}

}  // namespace
}  // namespace tw::core
