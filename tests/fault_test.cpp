// Fault-injection subsystem tests: seed determinism, bounded retries,
// budget legality under brown-out, stuck-bank remap, and the differential
// guarantee that FaultConfig{none} is bit-identical to the fault-free
// simulator for every paper scheme.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "tw/core/factory.hpp"
#include "tw/core/packer.hpp"
#include "tw/fault/fault_model.hpp"
#include "tw/harness/experiment.hpp"
#include "tw/verify/invariant_monitor.hpp"
#include "tw/workload/profiles.hpp"

namespace tw {
namespace {

pcm::PcmConfig device() { return pcm::table2_config(); }

pcm::LineBuf uniform_line(u32 units, u64 cell) {
  pcm::LineBuf line(units);
  for (u32 i = 0; i < units; ++i) line.set_cell(i, cell);
  return line;
}

pcm::LogicalLine uniform_data(u32 units, u64 word) {
  pcm::LogicalLine d(units);
  for (u32 i = 0; i < units; ++i) d.set_word(i, word);
  return d;
}

/// A ServicePlan with real pulse demand, from an actual scheme plan.
schemes::ServicePlan demanding_plan(const schemes::WriteScheme& scheme) {
  const u32 units = device().geometry.units_per_line();
  pcm::LineBuf line = uniform_line(units, 0x00FF'00FF'00FF'00FFull);
  const pcm::LogicalLine next =
      uniform_data(units, 0xFF00'FF00'FF00'FF00ull);
  return scheme.plan_write(line, next);
}

harness::SystemConfig small_config(u64 seed) {
  harness::SystemConfig cfg;
  cfg.cores = 2;
  cfg.instructions_per_core = 40'000;
  cfg.seed = seed;
  return cfg;
}

// ------------------------------------------------------------ profiles --
TEST(FaultProfiles, ParseNameRoundTrip) {
  for (const auto p :
       {fault::FaultProfile::kNone, fault::FaultProfile::kLight,
        fault::FaultProfile::kHeavy, fault::FaultProfile::kStuckBank}) {
    const auto parsed = fault::parse_fault_profile(fault::profile_name(p));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, p);
    EXPECT_TRUE(fault::profile_config(p).valid());
  }
  EXPECT_FALSE(fault::parse_fault_profile("bogus").has_value());
}

TEST(FaultProfiles, NoneIsDisabledOthersEnabled) {
  EXPECT_FALSE(fault::profile_config(fault::FaultProfile::kNone).enabled());
  EXPECT_TRUE(fault::profile_config(fault::FaultProfile::kLight).enabled());
  EXPECT_TRUE(fault::profile_config(fault::FaultProfile::kHeavy).enabled());
  EXPECT_TRUE(
      fault::profile_config(fault::FaultProfile::kStuckBank).enabled());
}

// -------------------------------------------------------- determinism --
TEST(FaultDeterminism, DecisionsArePureInSiteCoordinates) {
  const fault::FaultConfig cfg =
      fault::profile_config(fault::FaultProfile::kHeavy);
  const fault::FaultModel a(cfg, 8, 42);
  const fault::FaultModel b(cfg, 8, 42);
  const fault::FaultModel other(cfg, 8, 43);

  // Bit-level decisions replay exactly, in any call order.
  bool any_fail = false, any_seed_diff = false;
  for (u64 bit = 0; bit < 512; ++bit) {
    for (u32 attempt = 0; attempt < 3; ++attempt) {
      const bool fa = a.pulse_fails(bit, true, 100, attempt);
      any_fail |= fa;
      EXPECT_EQ(fa, b.pulse_fails(bit, true, 100, attempt));
      any_seed_diff |= fa != other.pulse_fails(bit, true, 100, attempt);
    }
  }
  // Reverse order on `a` must agree with forward order on `b`.
  for (u64 bit = 512; bit-- > 0;) {
    EXPECT_EQ(a.pulse_fails(bit, false, 7, 0), b.pulse_fails(bit, false, 7, 0));
  }
  EXPECT_TRUE(any_fail);       // heavy profile actually injects
  EXPECT_TRUE(any_seed_diff);  // and the seed matters
}

TEST(FaultDeterminism, LinePlanningReplaysExactly) {
  const fault::FaultConfig cfg =
      fault::profile_config(fault::FaultProfile::kHeavy);
  const fault::FaultModel a(cfg, 8, 42);
  const fault::FaultModel b(cfg, 8, 42);
  const auto scheme =
      core::make_scheme(schemes::SchemeKind::kTetris, device());
  const schemes::ServicePlan plan = demanding_plan(*scheme);
  ASSERT_GT(plan.programmed.total(), 0u);

  for (u64 seq = 1; seq <= 64; ++seq) {
    const auto oa =
        a.plan_line_faults(seq * 64, seq, plan, *scheme, 0, 512);
    const auto ob =
        b.plan_line_faults(seq * 64, seq, plan, *scheme, 0, 512);
    EXPECT_EQ(oa.extra_latency, ob.extra_latency);
    EXPECT_EQ(oa.attempts, ob.attempts);
    EXPECT_EQ(oa.retry_pulses.sets, ob.retry_pulses.sets);
    EXPECT_EQ(oa.retry_pulses.resets, ob.retry_pulses.resets);
    EXPECT_EQ(oa.line_failed, ob.line_failed);
  }
}

TEST(FaultDeterminism, FaultedRunsReplayBitIdentical) {
  harness::SystemConfig cfg = small_config(42);
  cfg.fault = fault::profile_config(fault::FaultProfile::kLight);
  const auto& w = workload::profile_by_name("vips");
  const auto a = harness::run_system(cfg, w, schemes::SchemeKind::kTetris);
  const auto b = harness::run_system(cfg, w, schemes::SchemeKind::kTetris);
  EXPECT_TRUE(a.completed);
  EXPECT_GT(a.writes, 0u);
  EXPECT_EQ(a.runtime_ns, b.runtime_ns);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.write_latency_ns, b.write_latency_ns);
  EXPECT_EQ(a.write_energy_pj, b.write_energy_pj);
  EXPECT_EQ(a.fault_retries, b.fault_retries);
  EXPECT_EQ(a.failed_lines, b.failed_lines);
  EXPECT_EQ(a.brownout_writes, b.brownout_writes);
}

// ------------------------------------------------------- retry bounds --
TEST(FaultRetry, AttemptsBoundedAndLatencyConsistent) {
  fault::FaultConfig cfg;
  cfg.set_fail_prob = 0.6;
  cfg.reset_fail_prob = 0.6;
  cfg.max_retries = 3;
  const fault::FaultModel model(cfg, 8, 7);
  const auto scheme =
      core::make_scheme(schemes::SchemeKind::kTetris, device());
  const schemes::ServicePlan plan = demanding_plan(*scheme);

  bool any_retry = false;
  for (u64 seq = 1; seq <= 200; ++seq) {
    const auto out =
        model.plan_line_faults(seq * 64, seq, plan, *scheme, 0, 512);
    EXPECT_LE(out.attempts, cfg.max_retries);
    EXPECT_EQ(out.attempts == 0, out.extra_latency == 0);
    if (out.line_failed) {
      // A failed line means the ladder was exhausted, not skipped.
      EXPECT_EQ(out.attempts, cfg.max_retries);
      EXPECT_GT(out.failed_sets + out.failed_resets, 0u);
    } else {
      EXPECT_EQ(out.failed_sets + out.failed_resets, 0u);
    }
    EXPECT_LE(out.retry_pulses.total(),
              u64{plan.programmed.total()} * cfg.max_retries);
    any_retry |= out.attempts > 0;
  }
  EXPECT_TRUE(any_retry);
}

TEST(FaultRetry, ExhaustedLadderSurfacesFailedLineNotAssert) {
  // Undamped certain failure: every attempt re-fails everything, so every
  // write with pulse demand must surface as a FailedLine.
  fault::FaultConfig cfg;
  cfg.set_fail_prob = 1.0;  // capped to 0.75 internally, still massive
  cfg.reset_fail_prob = 1.0;
  cfg.retry_fail_damping = 1.0;
  cfg.max_retries = 2;
  const fault::FaultModel model(cfg, 8, 11);
  const auto scheme =
      core::make_scheme(schemes::SchemeKind::kDcw, device());
  const schemes::ServicePlan plan = demanding_plan(*scheme);
  ASSERT_GT(plan.programmed.total(), 100u);

  u32 failed = 0;
  for (u64 seq = 1; seq <= 50; ++seq) {
    const auto out =
        model.plan_line_faults(seq * 64, seq, plan, *scheme, 0, 512);
    if (out.line_failed) ++failed;
    EXPECT_LE(out.attempts, cfg.max_retries);
  }
  EXPECT_GT(failed, 0u);
}

TEST(FaultRetry, WideningRaisesRetryPrice) {
  const auto scheme =
      core::make_scheme(schemes::SchemeKind::kTetris, device());
  const BitTransitions failed{40, 40};
  const Tick narrow = scheme->plan_retry(failed, 1, 1.0);
  const Tick wide = scheme->plan_retry(failed, 1, 2.0);
  const Tick wider = scheme->plan_retry(failed, 2, 2.0);
  EXPECT_GT(narrow, 0u);
  EXPECT_GT(wide, narrow);
  EXPECT_GT(wider, wide);
  // Baseline schemes price retries through the closed forms.
  const auto dcw = core::make_scheme(schemes::SchemeKind::kDcw, device());
  EXPECT_GT(dcw->plan_retry(failed, 1, 2.0), dcw->plan_retry(failed, 1, 1.0));
}

// ------------------------------------------- brown-out budget legality --
TEST(FaultBrownout, ScaledBudgetSchedulesStayLegal) {
  const pcm::PcmConfig dev = device();
  const auto scheme =
      core::make_scheme(schemes::SchemeKind::kTetris, device());
  const u32 nominal = dev.bank_power_budget();
  ASSERT_EQ(scheme->effective_budget(), nominal);

  for (const double scale : {0.5, 0.25, 0.1}) {
    scheme->set_budget_scale(scale);
    const u32 eff = scheme->effective_budget();
    EXPECT_GE(eff, 1u);
    EXPECT_LE(eff, nominal);
    EXPECT_EQ(eff, std::max<u32>(
                       1, static_cast<u32>(static_cast<double>(nominal) *
                                           scale)));

    // Pack real demand under the shrunken budget and verify the schedule
    // against the *shrunken* PackerConfig: power legality must hold inside
    // the brown-out window, not just against the nominal budget.
    std::vector<core::UnitCounts> counts;
    for (u32 u = 0; u < 8; ++u) counts.push_back({u, 32, 24});
    core::PackerConfig pc;
    pc.k = dev.k();
    pc.l = dev.l();
    pc.budget = eff;
    const core::PackResult pack = core::pack(counts, pc);
    verify::InvariantMonitor monitor(pc, dev.timing);
    EXPECT_NO_THROW(monitor.check_schedule(counts, pack, pc));
    EXPECT_GT(pack.total_sub_slots(pc.k), 0u);
  }
  scheme->set_budget_scale(1.0);
  EXPECT_EQ(scheme->effective_budget(), nominal);
}

TEST(FaultBrownout, WindowArithmetic) {
  fault::FaultConfig cfg;
  cfg.brownout_period = us(100);
  cfg.brownout_duration = us(5);
  cfg.brownout_budget_factor = 0.5;
  const fault::FaultModel model(cfg, 8, 42);
  EXPECT_TRUE(model.in_brownout(0));
  EXPECT_TRUE(model.in_brownout(us(5) - 1));
  EXPECT_FALSE(model.in_brownout(us(5)));
  EXPECT_FALSE(model.in_brownout(us(100) - 1));
  EXPECT_TRUE(model.in_brownout(us(100)));
  EXPECT_EQ(model.budget_factor(us(1)), 0.5);
  EXPECT_EQ(model.budget_factor(us(50)), 1.0);
}

TEST(FaultBrownout, RunCompletesWithBrownoutsAndNoViolations) {
  harness::SystemConfig cfg = small_config(42);
  cfg.fault = fault::profile_config(fault::FaultProfile::kHeavy);
  const auto& w = workload::profile_by_name("vips");
  const auto m = harness::run_system(cfg, w, schemes::SchemeKind::kTetris);
  EXPECT_TRUE(m.completed);
  EXPECT_GT(m.writes, 0u);
  EXPECT_GT(m.brownout_writes, 0u);  // windows actually bit
  EXPECT_GT(m.fault_retries, 0u);    // transients actually injected
}

// ------------------------------------------------------ stuck-bank remap --
TEST(FaultStuckBank, RemapTargetsNextHealthyBank) {
  fault::FaultConfig cfg;
  cfg.stuck_bank = 2;
  const fault::FaultModel model(cfg, 8, 42);
  EXPECT_TRUE(model.any_bank_stuck());
  EXPECT_EQ(model.stuck_banks(), 1u);
  EXPECT_TRUE(model.bank_stuck(2));
  EXPECT_EQ(model.remap_bank(2), 3u);
  for (u32 b = 0; b < 8; ++b) {
    if (b == 2) continue;
    EXPECT_FALSE(model.bank_stuck(b));
    EXPECT_EQ(model.remap_bank(b), b);  // healthy banks are identity
  }
}

TEST(FaultStuckBank, LastBankWrapsToFirstHealthy) {
  fault::FaultConfig cfg;
  cfg.stuck_bank = 7;
  const fault::FaultModel model(cfg, 8, 42);
  EXPECT_EQ(model.remap_bank(7), 0u);
}

TEST(FaultStuckBank, ProbabilisticStuckIsSeedStable) {
  fault::FaultConfig cfg;
  cfg.stuck_bank_prob = 0.3;
  const fault::FaultModel a(cfg, 16, 42);
  const fault::FaultModel b(cfg, 16, 42);
  EXPECT_EQ(a.stuck_banks(), b.stuck_banks());
  for (u32 bank = 0; bank < 16; ++bank) {
    EXPECT_EQ(a.bank_stuck(bank), b.bank_stuck(bank));
    if (!a.bank_stuck(bank)) EXPECT_EQ(a.remap_bank(bank), bank);
  }
}

TEST(FaultStuckBank, SystemDegradesGracefully) {
  harness::SystemConfig cfg = small_config(42);
  cfg.fault = fault::profile_config(fault::FaultProfile::kStuckBank);
  const auto& w = workload::profile_by_name("vips");
  const auto m = harness::run_system(cfg, w, schemes::SchemeKind::kTetris);
  EXPECT_TRUE(m.completed);
  EXPECT_GT(m.writes, 0u);
  EXPECT_GT(m.stuck_remaps, 0u);  // traffic actually redirected
}

// ------------------------------------------------- none == fault-free --
TEST(FaultNone, BitIdenticalForEveryPaperScheme) {
  const auto& w = workload::profile_by_name("ferret");
  const std::vector<schemes::SchemeKind> kinds = {
      schemes::SchemeKind::kDcw, schemes::SchemeKind::kFlipNWrite,
      schemes::SchemeKind::kTwoStage, schemes::SchemeKind::kThreeStage,
      schemes::SchemeKind::kTetris};
  for (const auto kind : kinds) {
    SCOPED_TRACE(schemes::scheme_name(kind));
    const harness::SystemConfig base = small_config(42);
    harness::SystemConfig none = small_config(42);
    none.fault = fault::profile_config(fault::FaultProfile::kNone);
    const auto a = harness::run_system(base, w, kind);
    const auto b = harness::run_system(none, w, kind);
    EXPECT_TRUE(a.completed);
    EXPECT_GT(a.writes, 0u);
    EXPECT_EQ(a.runtime_ns, b.runtime_ns);
    EXPECT_EQ(a.sim_events, b.sim_events);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.read_latency_ns, b.read_latency_ns);
    EXPECT_EQ(a.write_latency_ns, b.write_latency_ns);
    EXPECT_EQ(a.write_service_ns, b.write_service_ns);
    EXPECT_EQ(a.write_energy_pj, b.write_energy_pj);
    EXPECT_EQ(a.read_energy_pj, b.read_energy_pj);
    EXPECT_EQ(a.bits_per_write, b.bits_per_write);
    EXPECT_EQ(a.writes, b.writes);
    EXPECT_EQ(a.reads, b.reads);
    EXPECT_EQ(a.write_pauses, b.write_pauses);
    EXPECT_EQ(a.dispatch_rounds, b.dispatch_rounds);
    EXPECT_EQ(b.fault_retries, 0u);
    EXPECT_EQ(b.failed_lines, 0u);
    EXPECT_EQ(b.brownout_writes, 0u);
    EXPECT_EQ(b.stuck_remaps, 0u);
  }
}

TEST(FaultNone, ActiveModelWithVanishingProbsIsBitIdentical) {
  // Stronger than the disabled path: the FaultModel is constructed and the
  // controller's fault plumbing runs on every write, but the failure
  // probability is so small no draw ever fires — metrics must still be
  // bit-identical to the fault-free run.
  const auto& w = workload::profile_by_name("vips");
  const harness::SystemConfig base = small_config(42);
  harness::SystemConfig eps = small_config(42);
  eps.fault.set_fail_prob = 1e-300;
  ASSERT_TRUE(eps.fault.enabled());
  for (const auto kind :
       {schemes::SchemeKind::kDcw, schemes::SchemeKind::kTetris}) {
    SCOPED_TRACE(schemes::scheme_name(kind));
    const auto a = harness::run_system(base, w, kind);
    const auto b = harness::run_system(eps, w, kind);
    EXPECT_EQ(a.runtime_ns, b.runtime_ns);
    EXPECT_EQ(a.sim_events, b.sim_events);
    EXPECT_EQ(a.write_latency_ns, b.write_latency_ns);
    EXPECT_EQ(a.write_energy_pj, b.write_energy_pj);
    EXPECT_EQ(b.fault_retries, 0u);
    EXPECT_EQ(b.failed_lines, 0u);
  }
}

// --------------------------------------------------------- fault hash --
TEST(FaultHash, ConfigHashSeparatesProfiles) {
  harness::SystemConfig a = small_config(42);
  harness::SystemConfig b = small_config(42);
  b.fault = fault::profile_config(fault::FaultProfile::kLight);
  harness::SystemConfig c = small_config(42);
  c.fault = fault::profile_config(fault::FaultProfile::kHeavy);
  EXPECT_NE(harness::config_hash(a), harness::config_hash(b));
  EXPECT_NE(harness::config_hash(b), harness::config_hash(c));
  EXPECT_EQ(harness::config_hash(a), harness::config_hash(small_config(42)));
}

}  // namespace
}  // namespace tw
