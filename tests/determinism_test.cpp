// Determinism: a run must be a pure function of its seed.
//
// The calendar-queue kernel breaks ties by (tick, priority, insertion
// order) and parallel_for only distributes independent (workload, scheme)
// cells, so identical seeds must produce bit-identical metrics — both
// across repeated runs and across thread counts. Any drift here means
// scheduling nondeterminism leaked into the statistics.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "tw/common/parallel.hpp"
#include "tw/common/simd.hpp"
#include "tw/harness/experiment.hpp"
#include "tw/workload/profiles.hpp"

namespace tw {
namespace {

harness::SystemConfig small_config(u64 seed) {
  harness::SystemConfig cfg;
  cfg.cores = 2;
  // Enough traffic for a few hundred line writes on the write-heavy
  // profiles below; still well under a second per cell.
  cfg.instructions_per_core = 60'000;
  cfg.seed = seed;
  return cfg;
}

/// Run a small fig13-style matrix (2 write-heavy workloads x {DCW,
/// Tetris}) with the given parallel_for thread count and return the
/// flattened cells.
std::vector<harness::RunMetrics> run_small_matrix(u32 threads, u64 seed,
                                                  u32 batch_max_lines = 0) {
  const std::vector<const workload::WorkloadProfile*> workloads = {
      &workload::profile_by_name("vips"),
      &workload::profile_by_name("ferret")};
  const std::vector<schemes::SchemeKind> kinds = {
      schemes::SchemeKind::kDcw, schemes::SchemeKind::kTetris};
  std::vector<harness::RunMetrics> cells(workloads.size() * kinds.size());
  parallel_for(
      cells.size(),
      [&](std::size_t i) {
        const auto& w = *workloads[i / kinds.size()];
        harness::SystemConfig cfg = small_config(seed);
        cfg.batch.max_lines = batch_max_lines;
        cells[i] = harness::run_system(cfg, w, kinds[i % kinds.size()]);
      },
      threads);
  return cells;
}

void expect_identical(const harness::RunMetrics& a,
                      const harness::RunMetrics& b) {
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.scheme, b.scheme);
  EXPECT_EQ(a.completed, b.completed);
  // Exact equality on doubles is intentional: determinism means the same
  // arithmetic in the same order, not merely close results.
  EXPECT_EQ(a.read_latency_ns, b.read_latency_ns);
  EXPECT_EQ(a.write_latency_ns, b.write_latency_ns);
  EXPECT_EQ(a.write_service_ns, b.write_service_ns);
  EXPECT_EQ(a.write_units, b.write_units);
  EXPECT_EQ(a.ipc, b.ipc);
  EXPECT_EQ(a.runtime_ns, b.runtime_ns);
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.retired, b.retired);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.write_energy_pj, b.write_energy_pj);
  EXPECT_EQ(a.read_energy_pj, b.read_energy_pj);
  EXPECT_EQ(a.bits_per_write, b.bits_per_write);
  EXPECT_EQ(a.read_p99_ns, b.read_p99_ns);
  EXPECT_EQ(a.write_p99_ns, b.write_p99_ns);
  EXPECT_EQ(a.write_pauses, b.write_pauses);
  EXPECT_EQ(a.gap_moves, b.gap_moves);
  EXPECT_EQ(a.writes_batched, b.writes_batched);
  EXPECT_EQ(a.batch_lines, b.batch_lines);
  EXPECT_EQ(a.batch_occupancy, b.batch_occupancy);
  // Controller queue statistics: peaks and per-round counts depend on the
  // exact interleaving of enqueues and dispatches, so any scheduling
  // nondeterminism surfaces here first.
  EXPECT_EQ(a.reads_forwarded, b.reads_forwarded);
  EXPECT_EQ(a.writes_coalesced, b.writes_coalesced);
  EXPECT_EQ(a.read_q_peak, b.read_q_peak);
  EXPECT_EQ(a.write_q_peak, b.write_q_peak);
  EXPECT_EQ(a.dispatch_rounds, b.dispatch_rounds);
  EXPECT_EQ(a.row_hits, b.row_hits);
  // PALP overlap counters (zero whenever PALP is off/degenerate).
  EXPECT_EQ(a.palp_overlapped_reads, b.palp_overlapped_reads);
  EXPECT_EQ(a.palp_pump_stalls, b.palp_pump_stalls);
  EXPECT_EQ(a.palp_write_overlaps, b.palp_write_overlaps);
  // DRAM front tier counters (zero whenever the tier is off).
  EXPECT_EQ(a.dram_hits, b.dram_hits);
  EXPECT_EQ(a.dram_misses, b.dram_misses);
  EXPECT_EQ(a.dram_writebacks, b.dram_writebacks);
  EXPECT_EQ(a.dram_clean_evicts, b.dram_clean_evicts);
}

TEST(Determinism, SameSeedSameStats) {
  const auto first = run_small_matrix(1, 42);
  const auto second = run_small_matrix(1, 42);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    SCOPED_TRACE(first[i].workload + "/" + first[i].scheme);
    // Guard against vacuous passes: every cell must see real traffic.
    EXPECT_TRUE(first[i].completed);
    EXPECT_GT(first[i].writes, 0u);
    EXPECT_GT(first[i].reads, 0u);
    EXPECT_GT(first[i].dispatch_rounds, 0u);
    EXPECT_GT(first[i].write_q_peak, 0u);
    expect_identical(first[i], second[i]);
  }
}

TEST(Determinism, ThreadCountInvariant) {
  const auto serial = run_small_matrix(1, 42);
  const auto threaded = run_small_matrix(4, 42);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(serial[i].workload + "/" + serial[i].scheme);
    expect_identical(serial[i], threaded[i]);
  }
}

TEST(Determinism, SimdLevelInvariantAcrossBatchModes) {
  // The TW_SIMD kernels are bit-identical by contract
  // (tests/simd_packer_test.cpp proves it at the kernel and pack level);
  // this closes the loop at the system level: full runs under the scalar
  // fallback and under AVX2 must produce identical metrics, at both
  // batch.max_lines = 1 (per-line packing) and 4 (multi-line Tetris),
  // and regardless of thread count.
  if (!simd::avx2_supported()) GTEST_SKIP() << "AVX2 not supported";
  const simd::Level saved = simd::active_level();
  for (const u32 max_lines : {1u, 4u}) {
    SCOPED_TRACE("batch.max_lines=" + std::to_string(max_lines));
    simd::set_level(simd::Level::kScalar);
    const auto scalar = run_small_matrix(1, 42, max_lines);
    simd::set_level(simd::Level::kAvx2);
    const auto avx2 = run_small_matrix(4, 42, max_lines);
    simd::set_level(saved);
    ASSERT_EQ(scalar.size(), avx2.size());
    for (std::size_t i = 0; i < scalar.size(); ++i) {
      SCOPED_TRACE(scalar[i].workload + "/" + scalar[i].scheme);
      EXPECT_TRUE(scalar[i].completed);
      EXPECT_GT(scalar[i].writes, 0u);
      expect_identical(scalar[i], avx2[i]);
    }
  }
  // The K=4 runs must actually take the multi-line path somewhere.
  simd::set_level(saved);
  const auto batched = run_small_matrix(1, 42, 4);
  bool any_batched = false;
  for (const auto& m : batched) {
    if (m.writes_batched > 0) any_batched = true;
  }
  EXPECT_TRUE(any_batched);
}

/// One vips/Tetris cell at the given channel count, pool-thread cap and
/// (optionally) Chrome trace path.
harness::RunMetrics run_channel_cell(u32 channels, u32 sim_threads, u64 seed,
                                     const std::string& trace_path = "") {
  harness::SystemConfig cfg = small_config(seed);
  cfg.pcm.geometry.channels = channels;
  cfg.sim_threads = sim_threads;
  cfg.trace.chrome_path = trace_path;
  return harness::run_system(cfg, workload::profile_by_name("vips"),
                             schemes::SchemeKind::kTetris);
}

TEST(Determinism, ChannelPhaseThreadCountInvariant) {
  // The sharded engine's three-phase window protocol promises that the
  // number of pool threads advancing the channel domains never reaches
  // the results: same seed => bit-identical RunMetrics at every
  // (channels, sim_threads) point.
  for (const u32 channels : {1u, 2u, 8u}) {
    SCOPED_TRACE("channels=" + std::to_string(channels));
    std::vector<harness::RunMetrics> runs;
    for (const u32 threads : {1u, 2u, 8u}) {
      runs.push_back(run_channel_cell(channels, threads, 42));
    }
    EXPECT_TRUE(runs[0].completed);
    EXPECT_GT(runs[0].writes, 0u);
    EXPECT_GT(runs[0].reads, 0u);
    for (std::size_t i = 1; i < runs.size(); ++i) {
      SCOPED_TRACE("sim_threads index " + std::to_string(i));
      expect_identical(runs[0], runs[i]);
    }
  }
}

TEST(Determinism, ChannelsActuallyShard) {
  // Guard against a vacuous pass of the invariance test: adding channels
  // must change behavior (more write bandwidth => shorter runtime), i.e.
  // the multi-channel path is really being exercised.
  const auto one = run_channel_cell(1, 1, 42);
  const auto eight = run_channel_cell(8, 1, 42);
  ASSERT_TRUE(one.completed);
  ASSERT_TRUE(eight.completed);
  EXPECT_LT(eight.runtime_ns, one.runtime_ns);
}

TEST(Determinism, TraceBytesInvariantAcrossThreadsAndChannels) {
  // Stronger than metric equality: the collected trace (ring creation
  // order + stable in-ring order + manifest, which deliberately excludes
  // sim_threads from config_hash) must serialize to identical bytes at
  // every pool-thread count.
  for (const u32 channels : {1u, 8u}) {
    SCOPED_TRACE("channels=" + std::to_string(channels));
    std::string baseline;
    for (const u32 threads : {1u, 2u, 8u}) {
      SCOPED_TRACE("sim_threads=" + std::to_string(threads));
      const std::string path = testing::TempDir() + "tw_det_trace_c" +
                               std::to_string(channels) + "_t" +
                               std::to_string(threads) + ".json";
      const auto m = run_channel_cell(channels, threads, 42, path);
      EXPECT_TRUE(m.completed);
      EXPECT_GT(m.trace_records, 0u);
      std::ifstream in(path, std::ios::binary);
      ASSERT_TRUE(in.is_open()) << path;
      std::string bytes((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
      in.close();
      std::remove(path.c_str());
      ASSERT_FALSE(bytes.empty());
      if (baseline.empty()) {
        baseline = bytes;
      } else {
        EXPECT_EQ(baseline, bytes)
            << "trace bytes drifted with the pool-thread count";
      }
    }
  }
}

/// One vips/Tetris cell with PALP on at the given partition and channel
/// counts (and optional Chrome trace path).
harness::RunMetrics run_palp_cell(u32 partitions, u32 channels,
                                  u32 sim_threads, u64 seed,
                                  const std::string& trace_path = "") {
  harness::SystemConfig cfg = small_config(seed);
  cfg.pcm.geometry.subarrays_per_bank = partitions;
  cfg.pcm.geometry.channels = channels;
  cfg.controller.palp.enabled = true;
  cfg.sim_threads = sim_threads;
  cfg.trace.chrome_path = trace_path;
  return harness::run_system(cfg, workload::profile_by_name("vips"),
                             schemes::SchemeKind::kTetris);
}

TEST(Determinism, PalpThreadCountInvariant) {
  // PALP admission decisions depend on in-flight state (pump load, rww
  // reads), the kind of bookkeeping where scheduling nondeterminism would
  // leak first. Same seed => bit-identical metrics at every
  // (partitions, channels, sim_threads) point.
  for (const u32 partitions : {1u, 4u}) {
    for (const u32 channels : {1u, 8u}) {
      SCOPED_TRACE("partitions=" + std::to_string(partitions) +
                   " channels=" + std::to_string(channels));
      std::vector<harness::RunMetrics> runs;
      for (const u32 threads : {1u, 4u}) {
        runs.push_back(run_palp_cell(partitions, channels, threads, 42));
      }
      EXPECT_TRUE(runs[0].completed);
      EXPECT_GT(runs[0].writes, 0u);
      EXPECT_GT(runs[0].reads, 0u);
      if (partitions == 1) {
        // Degenerate geometry: PALP is inert and its counters stay zero.
        EXPECT_EQ(runs[0].palp_overlapped_reads, 0u);
        EXPECT_EQ(runs[0].palp_pump_stalls, 0u);
        EXPECT_EQ(runs[0].palp_write_overlaps, 0u);
      }
      for (std::size_t i = 1; i < runs.size(); ++i) {
        SCOPED_TRACE("sim_threads index " + std::to_string(i));
        expect_identical(runs[0], runs[i]);
      }
    }
  }
  // Guard against a vacuous pass: at 4 partitions PALP must actually
  // overlap something.
  const auto active = run_palp_cell(4, 1, 1, 42);
  EXPECT_GT(active.palp_overlapped_reads + active.palp_write_overlaps, 0u);
}

TEST(Determinism, PalpTraceBytesInvariant) {
  // The palp trace category rides in the same rings as everything else,
  // so the byte-identity promise must hold with PALP emitting spans too.
  for (const u32 partitions : {1u, 4u}) {
    SCOPED_TRACE("partitions=" + std::to_string(partitions));
    std::string baseline;
    for (const u32 threads : {1u, 4u}) {
      SCOPED_TRACE("sim_threads=" + std::to_string(threads));
      const std::string path = testing::TempDir() + "tw_palp_trace_p" +
                               std::to_string(partitions) + "_t" +
                               std::to_string(threads) + ".json";
      const auto m = run_palp_cell(partitions, 1, threads, 42, path);
      EXPECT_TRUE(m.completed);
      EXPECT_GT(m.trace_records, 0u);
      std::ifstream in(path, std::ios::binary);
      ASSERT_TRUE(in.is_open()) << path;
      std::string bytes((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
      in.close();
      std::remove(path.c_str());
      ASSERT_FALSE(bytes.empty());
      if (baseline.empty()) {
        baseline = bytes;
      } else {
        EXPECT_EQ(baseline, bytes)
            << "palp trace bytes drifted with the pool-thread count";
      }
    }
  }
}

TEST(Determinism, DifferentSeedsActuallyDiffer) {
  // Guards against the trivial failure mode where the seed is ignored and
  // the two tests above pass vacuously.
  const auto a = run_small_matrix(1, 42);
  const auto b = run_small_matrix(1, 43);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].sim_events != b[i].sim_events ||
        a[i].runtime_ns != b[i].runtime_ns) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace tw
