// Unit tests for tw/mem: address map, data store, and the FRFCFS
// controller (queueing, drain policy, forwarding, coalescing).

#include <gtest/gtest.h>

#include "tw/common/rng.hpp"
#include "tw/core/factory.hpp"
#include "tw/mem/controller.hpp"
#include "tw/sim/simulator.hpp"

namespace tw::mem {
namespace {

pcm::PcmConfig cfg() { return pcm::table2_config(); }

pcm::LogicalLine make_data(u64 word) {
  pcm::LogicalLine d(8);
  for (u32 i = 0; i < 8; ++i) d.set_word(i, word);
  return d;
}

MemoryRequest read_req(Addr addr, u32 core = 0) {
  MemoryRequest r;
  r.addr = addr;
  r.type = ReqType::kRead;
  r.core = core;
  return r;
}

MemoryRequest write_req(Addr addr, u64 word, u32 core = 0) {
  MemoryRequest r;
  r.addr = addr;
  r.type = ReqType::kWrite;
  r.core = core;
  r.data = make_data(word);
  return r;
}

// ---------------------------------------------------------- address map --
TEST(AddressMap, LineAlignment) {
  const AddressMap m(cfg().geometry);
  EXPECT_EQ(m.line_of(0x1234), 0x1200u);
  EXPECT_EQ(m.line_of(0x1240), 0x1240u);
  EXPECT_EQ(m.line_index(0x1240), 0x49u);
}

TEST(AddressMap, ConsecutiveLinesInterleaveBanks) {
  const AddressMap m(cfg().geometry);
  for (u32 i = 0; i < 16; ++i) {
    EXPECT_EQ(m.flat_bank(i * 64), i % 8);
  }
  EXPECT_EQ(m.total_banks(), 8u);
}

TEST(AddressMap, RowAdvancesAfterAllBanks) {
  const AddressMap m(cfg().geometry);
  EXPECT_EQ(m.decode(0).row, 0u);
  EXPECT_EQ(m.decode(8 * 64).row, 1u);
}

// ------------------------------------------------------------ data store --
TEST(DataStore, DeterministicFirstTouch) {
  DataStore a(8, 42), b(8, 42);
  EXPECT_EQ(a.line(0x1000), b.line(0x1000));
  DataStore c(8, 43);
  EXPECT_FALSE(a.line(0x1000) == c.line(0x1000));
}

TEST(DataStore, MaterializationIsSticky) {
  DataStore s(8, 1);
  s.line(0x40).set_cell(0, 0xDEAD);
  EXPECT_EQ(s.line(0x40).cell(0), 0xDEADu);
  EXPECT_EQ(s.lines_touched(), 1u);
}

TEST(DataStore, OnesBiasShapesContent) {
  DataStore rich(8, 9, 0.8), poor(8, 9, 0.2);
  u32 ones_rich = 0, ones_poor = 0;
  for (Addr a = 0; a < 64 * 100; a += 64) {
    for (u32 i = 0; i < 8; ++i) {
      ones_rich += popcount(rich.line(a).cell(i));
      ones_poor += popcount(poor.line(a).cell(i));
    }
  }
  const double total = 100.0 * 8 * 64;
  EXPECT_NEAR(ones_rich / total, 0.8, 0.02);
  EXPECT_NEAR(ones_poor / total, 0.2, 0.02);
}

TEST(DataStore, LogicalViewHonorsTags) {
  DataStore s(8, 1);
  s.line(0).store_logical(0, 0x77, /*flipped=*/true);
  EXPECT_EQ(s.read_logical(0).word(0), 0x77u);
}

// ------------------------------------------------------------ controller --
struct ControllerFixture {
  sim::Simulator sim;
  stats::Registry reg;
  std::unique_ptr<schemes::WriteScheme> scheme;
  std::unique_ptr<Controller> ctl;

  explicit ControllerFixture(
      ControllerConfig c = {},
      schemes::SchemeKind kind = schemes::SchemeKind::kDcw) {
    scheme = core::make_scheme(kind, cfg());
    ctl = std::make_unique<Controller>(sim, cfg(), c, *scheme, reg);
  }
};

TEST(Controller, ReadCompletesWithFixedLatency) {
  ControllerFixture f;
  Tick done = 0;
  f.ctl->set_read_callback(
      [&](const MemoryRequest& r) { done = r.complete_tick; });
  ASSERT_TRUE(f.ctl->enqueue(read_req(0x40)));
  f.sim.run();
  EXPECT_EQ(done, ns(50) + ns(8));  // Tread + bus
  EXPECT_EQ(f.reg.counter("mem.reads").value(), 1u);
  EXPECT_TRUE(f.ctl->idle());
}

TEST(Controller, ReadsToDifferentBanksOverlap) {
  ControllerFixture f;
  int completed = 0;
  Tick last = 0;
  f.ctl->set_read_callback([&](const MemoryRequest& r) {
    ++completed;
    last = r.complete_tick;
  });
  // Lines 0 and 1 map to banks 0 and 1: full overlap.
  ASSERT_TRUE(f.ctl->enqueue(read_req(0 * 64)));
  ASSERT_TRUE(f.ctl->enqueue(read_req(1 * 64)));
  f.sim.run();
  EXPECT_EQ(completed, 2);
  EXPECT_EQ(last, ns(58));
}

TEST(Controller, ReadsToSameBankSerialize) {
  ControllerFixture f;
  Tick last = 0;
  f.ctl->set_read_callback(
      [&](const MemoryRequest& r) { last = r.complete_tick; });
  ASSERT_TRUE(f.ctl->enqueue(read_req(0)));
  ASSERT_TRUE(f.ctl->enqueue(read_req(8 * 64)));  // same bank 0
  f.sim.run();
  EXPECT_EQ(last, 2 * ns(58));
}

TEST(Controller, StrictDrainHoldsWritesUntilFull) {
  ControllerConfig c;
  c.write_queue_entries = 4;
  c.drain_low_watermark = 1;
  ControllerFixture f(c);
  int write_done = 0;
  f.ctl->set_write_callback([&](const MemoryRequest&) { ++write_done; });

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(f.ctl->enqueue(write_req((i + 10) * 64, i)));
  }
  f.sim.run();
  EXPECT_EQ(write_done, 0);  // queue not full: nothing issued
  EXPECT_EQ(f.ctl->write_queue_depth(), 3u);

  ASSERT_TRUE(f.ctl->enqueue(write_req(13 * 64, 9)));  // fills the queue
  f.sim.run();
  EXPECT_GE(write_done, 3);  // drained to the low watermark (or below)
}

TEST(Controller, OpportunisticDrainIssuesWhenIdle) {
  ControllerConfig c;
  c.drain = ControllerConfig::DrainPolicy::kOpportunistic;
  ControllerFixture f(c);
  int write_done = 0;
  f.ctl->set_write_callback([&](const MemoryRequest&) { ++write_done; });
  ASSERT_TRUE(f.ctl->enqueue(write_req(0x40, 1)));
  f.sim.run();
  EXPECT_EQ(write_done, 1);
}

TEST(Controller, WriteQueueBackpressure) {
  ControllerConfig c;
  c.write_queue_entries = 2;
  c.drain_low_watermark = 1;
  c.write_coalescing = false;
  ControllerFixture f(c);
  ASSERT_TRUE(f.ctl->enqueue(write_req(1 * 64, 1)));
  // Fill -> triggers drain, but until dispatch runs the queue is full.
  ASSERT_TRUE(f.ctl->enqueue(write_req(2 * 64, 2)));
  EXPECT_FALSE(f.ctl->enqueue(write_req(3 * 64, 3)));
  f.sim.run();
  // After draining there is room again.
  EXPECT_TRUE(f.ctl->enqueue(write_req(3 * 64, 3)));
}

TEST(Controller, WriteCoalescingMergesSameLine) {
  ControllerConfig c;
  ControllerFixture f(c, schemes::SchemeKind::kDcw);
  ASSERT_TRUE(f.ctl->enqueue(write_req(0x80, 1)));
  ASSERT_TRUE(f.ctl->enqueue(write_req(0x80, 2)));
  EXPECT_EQ(f.ctl->write_queue_depth(), 1u);
  EXPECT_EQ(f.reg.counter("mem.writes_coalesced").value(), 1u);
}

TEST(Controller, ReadForwardingFromWriteQueue) {
  ControllerFixture f;
  Tick done = 0;
  f.ctl->set_read_callback(
      [&](const MemoryRequest& r) { done = r.complete_tick; });
  ASSERT_TRUE(f.ctl->enqueue(write_req(0x100, 0xAB)));
  ASSERT_TRUE(f.ctl->enqueue(read_req(0x100)));
  f.sim.run();
  EXPECT_EQ(done, ns(5));  // forward latency, not array read
  EXPECT_EQ(f.reg.counter("mem.reads_forwarded").value(), 1u);
}

TEST(Controller, WriteUpdatesStoredData) {
  ControllerConfig c;
  c.drain = ControllerConfig::DrainPolicy::kOpportunistic;
  ControllerFixture f(c);
  ASSERT_TRUE(f.ctl->enqueue(write_req(0x40, 0x1234)));
  f.sim.run();
  EXPECT_EQ(f.ctl->store().read_logical(0x40).word(0), 0x1234u);
  EXPECT_EQ(f.reg.counter("mem.writes").value(), 1u);
}

TEST(Controller, ReadsPreemptQueuedWork) {
  // A read arriving while a bank serves a long write waits for that bank,
  // but reads to other banks proceed immediately.
  ControllerConfig c;
  c.drain = ControllerConfig::DrainPolicy::kOpportunistic;
  ControllerFixture f(c);
  std::vector<Tick> read_done;
  f.ctl->set_read_callback(
      [&](const MemoryRequest& r) { read_done.push_back(r.complete_tick); });

  ASSERT_TRUE(f.ctl->enqueue(write_req(0 * 64, 7)));  // bank 0, ~3.5 us
  f.sim.run(ns(100));  // let the write start
  ASSERT_TRUE(f.ctl->enqueue(read_req(0 * 64)));      // bank 0: blocked
  ASSERT_TRUE(f.ctl->enqueue(read_req(1 * 64)));      // bank 1: free
  f.sim.run();
  ASSERT_EQ(read_done.size(), 2u);
  // Bank-1 read finished long before the bank-0 read.
  EXPECT_LT(read_done[0], ns(500));
  EXPECT_GT(read_done[1], ns(3000));
}

TEST(Controller, EnergyAndWearAccounted) {
  ControllerConfig c;
  c.drain = ControllerConfig::DrainPolicy::kOpportunistic;
  ControllerFixture f(c);
  ASSERT_TRUE(f.ctl->enqueue(write_req(0x40, 0xFFFF)));
  f.sim.run();
  EXPECT_GT(f.ctl->energy().write_energy_pj(), 0.0);
  EXPECT_EQ(f.ctl->wear().summary().total_writes, 1u);
}

TEST(Controller, SpaceCallbackFires) {
  ControllerConfig c;
  c.write_queue_entries = 2;
  c.drain_low_watermark = 1;
  c.write_coalescing = false;
  ControllerFixture f(c);
  int space_events = 0;
  f.ctl->set_space_callback([&] { ++space_events; });
  ASSERT_TRUE(f.ctl->enqueue(write_req(1 * 64, 1)));
  ASSERT_TRUE(f.ctl->enqueue(write_req(2 * 64, 2)));
  f.sim.run();
  EXPECT_GT(space_events, 0);
}

TEST(Controller, WriteLatencyIncludesQueueing) {
  ControllerConfig c;
  c.write_queue_entries = 2;
  c.drain_low_watermark = 0;
  c.write_coalescing = false;
  ControllerFixture f(c);
  ASSERT_TRUE(f.ctl->enqueue(write_req(0 * 64, 1)));   // same bank 0
  ASSERT_TRUE(f.ctl->enqueue(write_req(8 * 64, 2)));   // same bank 0
  f.sim.run();
  // Second write waited for the first's full service.
  const auto& acc = f.reg.accumulator("mem.write_latency_ns");
  EXPECT_EQ(acc.count(), 2u);
  EXPECT_GT(acc.max(), 2 * 3000.0);
}

TEST(Controller, BankBusyTimeBoundedByWallClock) {
  // Conservation: a bank can never be busy longer than the simulation ran.
  ControllerConfig c;
  c.drain = ControllerConfig::DrainPolicy::kOpportunistic;
  ControllerFixture f(c);
  Rng rng(5);
  for (int i = 0; i < 60; ++i) {
    if (rng.chance(0.5)) {
      f.ctl->enqueue(read_req(rng.below(256) * 64));
    } else {
      f.ctl->enqueue(write_req(rng.below(256) * 64, rng.next()));
    }
    f.sim.run();
  }
  const Tick wall = f.sim.now();
  for (const auto& b : f.ctl->banks()) {
    EXPECT_LE(b.busy_total(), wall);
  }
  for (const auto& sa : f.ctl->subarrays()) {
    EXPECT_LE(sa.busy_total(), wall);
  }
}

TEST(Controller, PerBankReadsStayFifo) {
  // Oldest-first: two reads to the same bank complete in enqueue order.
  ControllerFixture f;
  std::vector<u64> completion_ids;
  f.ctl->set_read_callback(
      [&](const MemoryRequest& r) { completion_ids.push_back(r.id); });
  ASSERT_TRUE(f.ctl->enqueue(read_req(0 * 64)));
  ASSERT_TRUE(f.ctl->enqueue(read_req(8 * 64)));
  ASSERT_TRUE(f.ctl->enqueue(read_req(16 * 64)));
  f.sim.run();
  ASSERT_EQ(completion_ids.size(), 3u);
  EXPECT_LT(completion_ids[0], completion_ids[1]);
  EXPECT_LT(completion_ids[1], completion_ids[2]);
}

TEST(Controller, EveryAcceptedRequestCompletes) {
  // No request is ever lost: accepted reads + issued writes all complete.
  ControllerConfig c;
  c.drain = ControllerConfig::DrainPolicy::kOpportunistic;
  c.write_coalescing = false;
  c.read_forwarding = false;
  ControllerFixture f(c);
  u64 reads_done = 0, writes_done = 0, reads_in = 0, writes_in = 0;
  f.ctl->set_read_callback([&](const MemoryRequest&) { ++reads_done; });
  f.ctl->set_write_callback([&](const MemoryRequest&) { ++writes_done; });
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    if (rng.chance(0.6)) {
      reads_in += f.ctl->enqueue(read_req(rng.below(512) * 64));
    } else {
      writes_in +=
          f.ctl->enqueue(write_req(rng.below(512) * 64, rng.next()));
    }
    if (i % 7 == 0) f.sim.run();
  }
  f.sim.run();
  EXPECT_EQ(reads_done, reads_in);
  EXPECT_EQ(writes_done, writes_in);
  EXPECT_TRUE(f.ctl->idle());
}

}  // namespace
}  // namespace tw::mem
