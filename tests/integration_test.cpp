// Cross-module integration tests: full-system runs via the harness,
// checking that the paper's headline orderings emerge end-to-end, plus
// the harness matrix/normalization utilities.

#include <gtest/gtest.h>

#include <sstream>

#include "tw/harness/figure.hpp"

namespace tw::harness {
namespace {

SystemConfig quick_cfg(u64 instructions = 20'000) {
  SystemConfig cfg;
  cfg.instructions_per_core = instructions;
  return cfg;
}

TEST(Integration, RunSystemCompletes) {
  const RunMetrics m =
      run_system(quick_cfg(), workload::profile_by_name("ferret"),
                 schemes::SchemeKind::kDcw);
  EXPECT_TRUE(m.completed);
  EXPECT_EQ(m.workload, "ferret");
  EXPECT_EQ(m.scheme, "dcw");
  EXPECT_GT(m.reads, 0u);
  EXPECT_GT(m.writes, 0u);
  EXPECT_GT(m.read_latency_ns, to_ns(ns(50)));
  EXPECT_GT(m.ipc, 0.0);
  EXPECT_GT(m.runtime_ns, 0.0);
  EXPECT_GT(m.write_energy_pj, 0.0);
}

TEST(Integration, Deterministic) {
  const auto& p = workload::profile_by_name("dedup");
  const RunMetrics a =
      run_system(quick_cfg(), p, schemes::SchemeKind::kTetris);
  const RunMetrics b =
      run_system(quick_cfg(), p, schemes::SchemeKind::kTetris);
  EXPECT_DOUBLE_EQ(a.read_latency_ns, b.read_latency_ns);
  EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_DOUBLE_EQ(a.write_energy_pj, b.write_energy_pj);
}

TEST(Integration, SeedChangesResults) {
  SystemConfig cfg = quick_cfg();
  const auto& p = workload::profile_by_name("dedup");
  const RunMetrics a = run_system(cfg, p, schemes::SchemeKind::kDcw);
  cfg.seed = 777;
  const RunMetrics b = run_system(cfg, p, schemes::SchemeKind::kDcw);
  EXPECT_NE(a.runtime_ns, b.runtime_ns);
}

TEST(Integration, TetrisBeatsBaselineOnWriteHeavyWorkload) {
  const auto& vips = workload::profile_by_name("vips");
  const RunMetrics base =
      run_system(quick_cfg(), vips, schemes::SchemeKind::kDcw);
  const RunMetrics tetris =
      run_system(quick_cfg(), vips, schemes::SchemeKind::kTetris);
  ASSERT_TRUE(base.completed);
  ASSERT_TRUE(tetris.completed);
  EXPECT_LT(tetris.read_latency_ns, base.read_latency_ns);
  EXPECT_LT(tetris.write_latency_ns, base.write_latency_ns);
  EXPECT_GT(tetris.ipc, base.ipc);
  EXPECT_LT(tetris.runtime_ns, base.runtime_ns);
  EXPECT_LT(tetris.write_units, base.write_units);
}

TEST(Integration, PaperSchemeOrderingOnVips) {
  const auto& vips = workload::profile_by_name("vips");
  const SystemConfig cfg = quick_cfg(30'000);
  auto read_lat = [&](schemes::SchemeKind kind) {
    return run_system(cfg, vips, kind).read_latency_ns;
  };
  const double dcw = read_lat(schemes::SchemeKind::kDcw);
  const double fnw = read_lat(schemes::SchemeKind::kFlipNWrite);
  const double three = read_lat(schemes::SchemeKind::kThreeStage);
  const double tetris = read_lat(schemes::SchemeKind::kTetris);
  EXPECT_LT(fnw, dcw);
  EXPECT_LT(three, fnw);
  EXPECT_LT(tetris, three);
}

TEST(Integration, EnergyOrderingMatchesTableI) {
  // Table I: FNW/3-stage/Tetris reduce energy; 2-stage does not.
  const auto& dedup = workload::profile_by_name("dedup");
  const SystemConfig cfg = quick_cfg();
  auto energy_per_write = [&](schemes::SchemeKind kind) {
    const RunMetrics m = run_system(cfg, dedup, kind);
    return m.write_energy_pj / static_cast<double>(m.writes);
  };
  const double two = energy_per_write(schemes::SchemeKind::kTwoStage);
  const double fnw = energy_per_write(schemes::SchemeKind::kFlipNWrite);
  const double tetris = energy_per_write(schemes::SchemeKind::kTetris);
  EXPECT_LT(fnw, two * 0.3);     // comparison-based writes slash energy
  EXPECT_LT(tetris, two * 0.3);
}

TEST(Integration, ReadDominantWorkloadWritesWaitLong) {
  // The paper's Section V.B.3 observation: with strict drain,
  // blackscholes' writes sit in a rarely-full queue.
  const auto& bs = workload::profile_by_name("blackscholes");
  SystemConfig cfg = quick_cfg(50'000);
  const RunMetrics strict =
      run_system(cfg, bs, schemes::SchemeKind::kTetris);
  cfg.controller.drain = mem::ControllerConfig::DrainPolicy::kOpportunistic;
  const RunMetrics opportunistic =
      run_system(cfg, bs, schemes::SchemeKind::kTetris);
  if (strict.writes > 0 && opportunistic.writes > 0) {
    EXPECT_GT(strict.write_latency_ns, opportunistic.write_latency_ns);
  }
}

TEST(Integration, IncompleteRunFlagged) {
  SystemConfig cfg = quick_cfg(1'000'000);
  cfg.max_sim_time = us(5);  // far too short
  const RunMetrics m = run_system(
      cfg, workload::profile_by_name("vips"), schemes::SchemeKind::kDcw);
  EXPECT_FALSE(m.completed);
}

// ------------------------------------------------------------------ matrix --
TEST(Matrix, RunsAllCellsInParallel) {
  const std::vector<workload::WorkloadProfile> ws = {
      workload::profile_by_name("blackscholes"),
      workload::profile_by_name("vips")};
  const std::vector<schemes::SchemeKind> ks = {
      schemes::SchemeKind::kDcw, schemes::SchemeKind::kTetris};
  const Matrix m = run_matrix(quick_cfg(10'000), ws, ks, 4);
  ASSERT_EQ(m.cells.size(), 2u);
  ASSERT_EQ(m.cells[0].size(), 2u);
  EXPECT_EQ(m.at(0, 0).workload, "blackscholes");
  EXPECT_EQ(m.at(1, 1).scheme, "tetris");
  EXPECT_TRUE(m.at(1, 1).completed);
}

TEST(Matrix, ParallelEqualsSerial) {
  const std::vector<workload::WorkloadProfile> ws = {
      workload::profile_by_name("ferret")};
  const std::vector<schemes::SchemeKind> ks = {
      schemes::SchemeKind::kDcw, schemes::SchemeKind::kTetris};
  const Matrix par = run_matrix(quick_cfg(10'000), ws, ks, 4);
  const Matrix ser = run_matrix(quick_cfg(10'000), ws, ks, 1);
  for (std::size_t s = 0; s < ks.size(); ++s) {
    EXPECT_DOUBLE_EQ(par.at(0, s).ipc, ser.at(0, s).ipc);
    EXPECT_DOUBLE_EQ(par.at(0, s).read_latency_ns,
                     ser.at(0, s).read_latency_ns);
  }
}

TEST(Matrix, NormalizationAgainstBaseline) {
  const std::vector<workload::WorkloadProfile> ws = {
      workload::profile_by_name("vips")};
  const std::vector<schemes::SchemeKind> ks = {
      schemes::SchemeKind::kDcw, schemes::SchemeKind::kTetris};
  const Matrix m = run_matrix(quick_cfg(10'000), ws, ks, 2);
  const auto norm = normalized_values(
      m, [](const RunMetrics& r) { return r.read_latency_ns; }, 0);
  ASSERT_EQ(norm.size(), 2u);  // 1 workload + geomean row
  EXPECT_DOUBLE_EQ(norm[0][0], 1.0);
  EXPECT_LT(norm[0][1], 1.0);  // tetris beats baseline
  EXPECT_DOUBLE_EQ(norm[1][0], 1.0);  // geomean of baseline = 1
}

TEST(Matrix, CsvContainsAllCells) {
  const std::vector<workload::WorkloadProfile> ws = {
      workload::profile_by_name("swaptions")};
  const std::vector<schemes::SchemeKind> ks = {schemes::SchemeKind::kDcw};
  const Matrix m = run_matrix(quick_cfg(5'000), ws, ks, 1);
  std::ostringstream out;
  write_csv(m, out);
  const std::string s = out.str();
  EXPECT_NE(s.find("workload,scheme"), std::string::npos);
  EXPECT_NE(s.find("swaptions,dcw"), std::string::npos);
}

TEST(Matrix, TableRendering) {
  const std::vector<workload::WorkloadProfile> ws = {
      workload::profile_by_name("canneal")};
  const std::vector<schemes::SchemeKind> ks = {
      schemes::SchemeKind::kDcw, schemes::SchemeKind::kTetris};
  const Matrix m = run_matrix(quick_cfg(5'000), ws, ks, 2);
  const AsciiTable t = normalized_table(
      m, [](const RunMetrics& r) { return r.ipc; }, 0);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("canneal"), std::string::npos);
  EXPECT_NE(s.find("geomean"), std::string::npos);
  EXPECT_NE(s.find("tetris"), std::string::npos);
}

}  // namespace
}  // namespace tw::harness
