// Unit tests for the FSM execution model and write driver.

#include <gtest/gtest.h>

#include "tw/common/rng.hpp"
#include "tw/core/datapath.hpp"
#include "tw/core/fsm.hpp"
#include "tw/core/write_driver.hpp"

namespace tw::core {
namespace {

PackerConfig cfg32() {
  PackerConfig c;
  c.k = 8;
  c.l = 2;
  c.budget = 32;
  return c;
}

pcm::TimingParams paper_timing() { return pcm::TimingParams{}; }

// ------------------------------------------------------------------ fsm --
TEST(Fsm, EmptyScheduleIsInstant) {
  const PackResult r = pack({}, cfg32());
  const FsmTrace t = execute_fsms(r, cfg32(), paper_timing());
  EXPECT_TRUE(t.events.empty());
  EXPECT_EQ(t.schedule_length, 0u);
}

TEST(Fsm, SingleWrite1TakesOneTset) {
  const std::vector<UnitCounts> counts = {{0, 5, 0}};
  const PackResult r = pack(counts, cfg32());
  const FsmTrace t = execute_fsms(r, cfg32(), paper_timing());
  ASSERT_EQ(t.events.size(), 1u);
  EXPECT_EQ(t.events[0].fsm, 1);
  EXPECT_EQ(t.events[0].start, 0u);
  EXPECT_EQ(t.events[0].end, ns(430));
  EXPECT_EQ(t.schedule_length, ns(430));
  EXPECT_EQ(t.peak_current, 5u);
}

TEST(Fsm, Write0PulseIsTresetInsideSubSlot) {
  const std::vector<UnitCounts> counts = {{0, 20, 0}, {1, 0, 5}};
  const PackResult r = pack(counts, cfg32());
  const FsmTrace t = execute_fsms(r, cfg32(), paper_timing());
  // Find the FSM0 event.
  const FsmEvent* w0 = nullptr;
  for (const auto& e : t.events) {
    if (e.fsm == 0) w0 = &e;
  }
  ASSERT_NE(w0, nullptr);
  EXPECT_EQ(w0->end - w0->start, ns(53));
  // It runs concurrently with the write-1 (interspace stealing).
  EXPECT_LT(w0->start, ns(430));
  EXPECT_EQ(t.schedule_length, ns(430));
}

TEST(Fsm, ScheduleLengthMatchesEquation5) {
  // result=1 (write-1s) + subresult=1 (a spilled write-0).
  const std::vector<UnitCounts> counts = {{0, 10, 5}};
  PackerConfig c = cfg32();
  c.forbid_self_overlap = true;  // force the spill path
  const PackResult r = pack(counts, c);
  ASSERT_EQ(r.result, 1u);
  ASSERT_EQ(r.subresult, 1u);
  const FsmTrace t = execute_fsms(r, c, paper_timing());
  const Tick sub = ns(430) / 8;
  EXPECT_EQ(t.schedule_length, ns(430) + sub);
}

TEST(Fsm, PeakCurrentNeverExceedsBudget) {
  Rng rng(777);
  for (int trial = 0; trial < 100; ++trial) {
    PackerConfig c;
    c.k = 8;
    c.l = 2;
    c.budget = 16 + static_cast<u32>(rng.below(120));
    std::vector<UnitCounts> counts;
    const u32 units = 1 + static_cast<u32>(rng.below(8));
    for (u32 i = 0; i < units; ++i) {
      counts.push_back(UnitCounts{i, static_cast<u32>(rng.below(33)),
                                  static_cast<u32>(rng.below(33))});
    }
    const PackResult r = pack(counts, c);
    const FsmTrace t = execute_fsms(r, c, paper_timing());
    EXPECT_LE(t.peak_current, c.budget);
    EXPECT_LE(t.pulse_completion, t.schedule_length);
  }
}

TEST(Fsm, EventsSortedByStart) {
  const std::vector<UnitCounts> counts = {{0, 8, 1}, {1, 7, 1}, {2, 30, 2}};
  const PackResult r = pack(counts, cfg32());
  const FsmTrace t = execute_fsms(r, cfg32(), paper_timing());
  for (std::size_t i = 1; i < t.events.size(); ++i) {
    EXPECT_LE(t.events[i - 1].start, t.events[i].start);
  }
}

// --------------------------------------------------------- write driver --
TEST(WriteDriver, OnlyChangedBitsPulsed) {
  pcm::PcmArray arr(64);
  arr.program_word_dcw(0, 0b1010'1010, 8);
  const u64 pulses_before = arr.total_pulses();
  const BitTransitions t =
      drive_unit(arr, 0, /*old=*/0b1010'1010, /*new=*/0b1010'0101, 8);
  EXPECT_EQ(t.sets, 2u);
  EXPECT_EQ(t.resets, 2u);
  EXPECT_EQ(arr.total_pulses() - pulses_before, 4u);
  EXPECT_EQ(arr.read_word(0, 8), 0b1010'0101u);
}

TEST(WriteDriver, SetPassOnlySetsBits) {
  pcm::PcmArray arr(64);
  const BitTransitions t =
      drive_pass(arr, 0, 0b0011, 0b0101, 8, WritePass::kSet);
  EXPECT_EQ(t.sets, 1u);
  EXPECT_EQ(t.resets, 0u);
  // After only the SET pass, the to-be-reset bit still holds old value.
  EXPECT_EQ(arr.read_word(0, 8), 0b0100u);  // bit2 set; bit1 not yet reset
}

TEST(WriteDriver, ResetPassCompletesTheWrite) {
  pcm::PcmArray arr(64);
  drive_pass(arr, 0, 0b0011, 0b0101, 8, WritePass::kSet);
  // Seed the array with the old '1' bits so the reset pass has work: the
  // array starts all-zero, so program old ones first.
  // (drive_pass computes enables from the provided old/new words, not the
  // array, mirroring the read-buffer + DX inputs of Fig. 9.)
  arr.program(0, true);
  arr.program(1, true);
  const BitTransitions t =
      drive_pass(arr, 0, 0b0011, 0b0101, 8, WritePass::kReset);
  EXPECT_EQ(t.resets, 1u);
  EXPECT_EQ(arr.read_word(0, 8), 0b0101u);
}

TEST(WriteDriver, SilentWriteNoPulses) {
  pcm::PcmArray arr(64);
  const BitTransitions t = drive_unit(arr, 0, 0xAB, 0xAB, 8);
  EXPECT_EQ(t.total(), 0u);
  EXPECT_EQ(arr.total_pulses(), 0u);
}

// ------------------------------------------------------------- datapath --
TEST(Datapath, PaperLayoutIs48Bits) {
  // 8 units x 64-bit: counts go to 33, needing 6 bits -> 48-bit regs,
  // matching the paper's Reg0/Reg1.
  const DatapathLayout l = DatapathLayout::for_geometry(8, 64);
  EXPECT_EQ(l.count_bits, 6u);
  EXPECT_EQ(l.reg_bits, 48u);
  EXPECT_GE(l.max_count(), 33u);
}

TEST(Datapath, StoreLoadRoundTrip) {
  CountsRegister reg(DatapathLayout::for_geometry(8, 64));
  reg.store(3, 17);
  EXPECT_EQ(reg.load(3), 17u);
  EXPECT_EQ(reg.width_bits(), 48u);
}

TEST(Datapath, OverflowRejected) {
  CountsRegister reg(DatapathLayout::for_geometry(8, 64));
  EXPECT_THROW(reg.store(0, 64), ContractViolation);
  EXPECT_THROW(reg.store(8, 1), ContractViolation);
}

TEST(Datapath, LatchFromReadStage) {
  pcm::LineBuf line(8);
  pcm::LogicalLine next(8);
  next.set_word(0, 0b111);
  next.set_word(5, 0b11);
  const ReadStageResult rs = read_stage(line, next, 64);
  const DatapathLayout layout = DatapathLayout::for_geometry(8, 64);
  CountsRegister reg0(layout), reg1(layout);
  latch_counts(rs, reg0, reg1);
  EXPECT_EQ(reg1.load(0), 3u);
  EXPECT_EQ(reg1.load(5), 2u);
  EXPECT_EQ(reg0.load(0), 0u);
}

}  // namespace
}  // namespace tw::core
