// Unit tests for tw/pcm: parameters, line buffers, array/endurance,
// energy, wear and bank occupancy.

#include <gtest/gtest.h>

#include "tw/common/assert.hpp"
#include "tw/pcm/array.hpp"
#include "tw/pcm/bank.hpp"
#include "tw/pcm/energy.hpp"
#include "tw/pcm/line.hpp"
#include "tw/pcm/params.hpp"
#include "tw/pcm/wear.hpp"

namespace tw::pcm {
namespace {

// --------------------------------------------------------------- params --
TEST(Params, Table2Defaults) {
  const PcmConfig cfg = table2_config();
  EXPECT_EQ(cfg.timing.t_read, ns(50));
  EXPECT_EQ(cfg.timing.t_reset, ns(53));
  EXPECT_EQ(cfg.timing.t_set, ns(430));
  EXPECT_EQ(cfg.k(), 8u);   // 430/53 rounds to 8
  EXPECT_EQ(cfg.l(), 2u);   // Creset = 2 x Cset
  EXPECT_EQ(cfg.geometry.units_per_line(), 8u);
  EXPECT_EQ(cfg.geometry.bank_write_bits(), 64u);
  EXPECT_EQ(cfg.bank_power_budget(), 128u);  // 32/chip x 4 chips (GCP)
  EXPECT_NO_THROW(cfg.validate());
}

TEST(Params, TimeRatioRounding) {
  TimingParams t;
  t.t_reset = ns(53);
  t.t_set = ns(430);
  EXPECT_EQ(t.time_ratio_k(), 8u);
  t.t_set = ns(106);
  EXPECT_EQ(t.time_ratio_k(), 2u);
  t.t_set = ns(53);
  EXPECT_EQ(t.time_ratio_k(), 1u);
}

TEST(Params, InvalidGeometryRejected) {
  PcmConfig cfg;
  cfg.geometry.banks = 3;  // not a power of two
  EXPECT_THROW(cfg.validate(), ContractViolation);
  cfg = PcmConfig{};
  cfg.geometry.data_unit_bits = 65;
  EXPECT_THROW(cfg.validate(), ContractViolation);
  cfg = PcmConfig{};
  cfg.timing.t_set = 0;
  EXPECT_THROW(cfg.validate(), ContractViolation);
}

TEST(Params, LargerLineGeometry) {
  PcmConfig cfg;
  cfg.geometry.cache_line_bytes = 256;  // zEnterprise-style lines
  EXPECT_EQ(cfg.geometry.units_per_line(), 32u);
  EXPECT_NO_THROW(cfg.validate());
}

TEST(Params, DescribeMentionsKey) {
  const std::string d = table2_config().describe();
  EXPECT_NE(d.find("GCP"), std::string::npos);
  EXPECT_NE(d.find("K=8"), std::string::npos);
}

// ----------------------------------------------------------------- line --
TEST(Line, LogicalReconstruction) {
  LineBuf line(8);
  line.set_cell(0, 0xABCD);
  line.set_flip(0, false);
  line.set_cell(1, ~u64{0xABCD});
  line.set_flip(1, true);
  EXPECT_EQ(line.logical(0), 0xABCDu);
  EXPECT_EQ(line.logical(1), 0xABCDu);
}

TEST(Line, StoreLogicalRoundTrip) {
  LineBuf line(4);
  line.store_logical(2, 0x1234, true);
  EXPECT_EQ(line.cell(2), ~u64{0x1234});
  EXPECT_TRUE(line.flip(2));
  EXPECT_EQ(line.logical(2), 0x1234u);
}

TEST(Line, BoundsChecked) {
  LineBuf line(4);
  EXPECT_THROW(line.cell(4), ContractViolation);
  EXPECT_THROW(LineBuf(0), ContractViolation);
  EXPECT_THROW(LineBuf(kMaxUnitsPerLine + 1), ContractViolation);
}

TEST(Line, FromPhysical) {
  LineBuf phys(2);
  phys.store_logical(0, 42, false);
  phys.store_logical(1, 43, true);
  const LogicalLine logical = LogicalLine::from_physical(phys);
  EXPECT_EQ(logical.word(0), 42u);
  EXPECT_EQ(logical.word(1), 43u);
}

TEST(Line, Equality) {
  LineBuf a(2), b(2);
  a.set_cell(0, 5);
  b.set_cell(0, 5);
  EXPECT_EQ(a, b);
  b.set_flip(1, true);
  EXPECT_FALSE(a == b);
}

// ---------------------------------------------------------------- array --
TEST(Array, ProgramAndRead) {
  PcmArray arr(128);
  EXPECT_FALSE(arr.read(5));
  EXPECT_EQ(arr.program(5, true), ProgramResult::kOk);
  EXPECT_TRUE(arr.read(5));
  EXPECT_EQ(arr.program(5, true), ProgramResult::kRedundant);
}

TEST(Array, ReadWordLsbFirst) {
  PcmArray arr(64);
  arr.program(0, true);
  arr.program(3, true);
  EXPECT_EQ(arr.read_word(0, 8), 0b1001u);
}

TEST(Array, DcwProgramsOnlyChangedBits) {
  PcmArray arr(64);
  arr.program_word_dcw(0, 0b1010, 8);
  const u64 before = arr.total_pulses();
  const BitTransitions t = arr.program_word_dcw(0, 0b1100, 8);
  EXPECT_EQ(t.sets, 1u);    // bit2 0->1
  EXPECT_EQ(t.resets, 1u);  // bit1 1->0
  EXPECT_EQ(arr.total_pulses() - before, 2u);
  EXPECT_EQ(arr.read_word(0, 8), 0b1100u);
}

TEST(Array, EnduranceWearsOut) {
  PcmArray arr(8, /*endurance=*/3);
  EXPECT_EQ(arr.program(0, true), ProgramResult::kOk);
  EXPECT_EQ(arr.program(0, false), ProgramResult::kOk);
  EXPECT_EQ(arr.program(0, true), ProgramResult::kOk);
  // Fourth pulse exceeds endurance: the cell is stuck at its last value.
  EXPECT_EQ(arr.program(0, false), ProgramResult::kWornOut);
  EXPECT_TRUE(arr.read(0));
  EXPECT_EQ(arr.worn_out_cells(), 1u);
}

TEST(Array, WearCounting) {
  PcmArray arr(16);
  arr.program(1, true);
  arr.program(1, false);
  arr.program(2, true);
  EXPECT_EQ(arr.wear(1), 2u);
  EXPECT_EQ(arr.wear(2), 1u);
  EXPECT_EQ(arr.wear(0), 0u);
  EXPECT_EQ(arr.max_wear(), 2u);
  EXPECT_EQ(arr.total_pulses(), 3u);
}

TEST(Array, BoundsChecked) {
  PcmArray arr(8);
  EXPECT_THROW(arr.read(8), ContractViolation);
  EXPECT_THROW(arr.program(8, true), ContractViolation);
  EXPECT_THROW(PcmArray(0), ContractViolation);
}

// --------------------------------------------------------------- energy --
TEST(Energy, AccumulatesPerBit) {
  EnergyParams p;
  p.set_pj = 10.0;
  p.reset_pj = 20.0;
  p.read_bit_pj = 1.0;
  EnergyModel e(p);
  e.add_write(BitTransitions{3, 2});
  e.add_read(64);
  EXPECT_DOUBLE_EQ(e.write_energy_pj(), 3 * 10.0 + 2 * 20.0);
  EXPECT_DOUBLE_EQ(e.read_energy_pj(), 64.0);
  EXPECT_DOUBLE_EQ(e.total_pj(), 134.0);
  EXPECT_EQ(e.set_bits(), 3u);
  EXPECT_EQ(e.reset_bits(), 2u);
}

TEST(Energy, Reset) {
  EnergyModel e;
  e.add_write(BitTransitions{1, 1});
  e.reset();
  EXPECT_DOUBLE_EQ(e.total_pj(), 0.0);
}

// ----------------------------------------------------------------- wear --
TEST(Wear, TracksPerLine) {
  WearTracker w;
  w.record(0x1000, BitTransitions{5, 3});
  w.record(0x1000, BitTransitions{2, 0});
  w.record(0x2000, BitTransitions{1, 1});
  EXPECT_EQ(w.line(0x1000).writes, 2u);
  EXPECT_EQ(w.line(0x1000).bits_programmed, 10u);
  EXPECT_EQ(w.line(0x3000).writes, 0u);

  const WearSummary s = w.summary();
  EXPECT_EQ(s.lines_touched, 2u);
  EXPECT_EQ(s.total_writes, 3u);
  EXPECT_EQ(s.total_bits, 12u);
  EXPECT_EQ(s.max_line_bits, 10u);
  EXPECT_DOUBLE_EQ(s.avg_bits_per_write, 4.0);
}

TEST(Wear, LifetimeProjection) {
  WearTracker w;
  // Hot line: 100 writes x 50 bits over 1 simulated second.
  for (int i = 0; i < 100; ++i) w.record(0x0, BitTransitions{30, 20});
  const LifetimeEstimate e =
      estimate_lifetime(w.summary(), /*sim_seconds=*/1.0,
                        /*cell_endurance=*/1e8, /*bits_per_line=*/512);
  // Worst cell: 5000 bits / 512 cells ~ 9.77 pulses/s.
  EXPECT_NEAR(e.worst_cell_pulses_per_second, 5000.0 / 512.0, 1e-9);
  EXPECT_NEAR(e.lifetime_seconds, 1e8 / (5000.0 / 512.0), 1.0);
  EXPECT_NEAR(e.lifetime_years,
              e.lifetime_seconds / (365.25 * 24 * 3600), 1e-9);
}

TEST(Wear, LifetimeDegenerateInputs) {
  WearTracker w;
  EXPECT_DOUBLE_EQ(estimate_lifetime(w.summary(), 1.0).lifetime_seconds,
                   0.0);
  w.record(0, BitTransitions{1, 0});
  EXPECT_DOUBLE_EQ(estimate_lifetime(w.summary(), 0.0).lifetime_seconds,
                   0.0);
}

// ----------------------------------------------------------------- bank --
TEST(Bank, OccupancyTimeline) {
  PcmBank bank;
  EXPECT_TRUE(bank.idle_at(0));
  bank.occupy(100, 50);
  EXPECT_FALSE(bank.idle_at(120));
  EXPECT_TRUE(bank.idle_at(150));
  EXPECT_EQ(bank.free_at(), 150u);
  EXPECT_EQ(bank.busy_total(), 50u);
  EXPECT_EQ(bank.commands(), 1u);
}

TEST(Bank, CannotOccupyWhileBusy) {
  PcmBank bank;
  bank.occupy(0, 100);
  EXPECT_THROW(bank.occupy(50, 10), ContractViolation);
  EXPECT_NO_THROW(bank.occupy(100, 10));
}

}  // namespace
}  // namespace tw::pcm
