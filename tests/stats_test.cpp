// Unit tests for tw/stats: accumulators, histograms, registry.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "tw/common/rng.hpp"
#include "tw/stats/accumulator.hpp"
#include "tw/stats/counter.hpp"
#include "tw/stats/histogram.hpp"
#include "tw/stats/registry.hpp"

namespace tw::stats {
namespace {

// ---------------------------------------------------------- accumulator --
TEST(Accumulator, Empty) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(Accumulator, BasicMoments) {
  Accumulator a;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(v);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.variance(), 4.0);
  EXPECT_DOUBLE_EQ(a.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(Accumulator, MergeMatchesSequential) {
  Accumulator whole, left, right;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform() * 100.0;
    whole.add(v);
    (i < 500 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a, empty;
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(Accumulator, Reset) {
  Accumulator a;
  a.add(1.0);
  a.reset();
  EXPECT_EQ(a.count(), 0u);
}

// ------------------------------------------------------------- counter --
TEST(Counter, IncAndReset) {
  Counter c;
  c.inc();
  c.inc(10);
  EXPECT_EQ(c.value(), 11u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

// ----------------------------------------------------------- histogram --
TEST(Histogram, EmptyIsZero) {
  Log2Histogram h;
  EXPECT_EQ(h.total_count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
}

TEST(Histogram, ExactSmallValues) {
  Log2Histogram h(4);
  h.add(0);
  h.add(1);
  h.add(2);
  EXPECT_EQ(h.total_count(), 3u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 2u);
  EXPECT_DOUBLE_EQ(h.mean(), 1.0);
}

TEST(Histogram, PercentileMonotone) {
  Log2Histogram h;
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) h.add(rng.below(100000));
  double prev = 0.0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double p = h.percentile(q);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(Histogram, PercentileBoundsWithinMinMax) {
  Log2Histogram h;
  for (u64 v : {100u, 200u, 300u, 4000u}) h.add(v);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 100.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 4000.0);
  EXPECT_LE(h.percentile(0.5), 4000.0);
  EXPECT_GE(h.percentile(0.5), 100.0);
}

TEST(Histogram, MedianOfUniformRoughlyCenter) {
  Log2Histogram h(16);
  for (u64 v = 0; v < 10000; ++v) h.add(v);
  EXPECT_NEAR(h.percentile(0.5), 5000.0, 5000.0 * 0.1);
}

TEST(Histogram, MeanExact) {
  Log2Histogram h;
  h.add(10, 3);
  h.add(20, 1);
  EXPECT_DOUBLE_EQ(h.mean(), 12.5);
}

TEST(Histogram, LargeValuesDoNotOverflow) {
  Log2Histogram h;
  h.add(~u64{0} >> 1);
  EXPECT_EQ(h.max(), ~u64{0} >> 1);
  EXPECT_GT(h.percentile(0.5), 0.0);
}

TEST(Histogram, SummaryMentionsCount) {
  Log2Histogram h;
  h.add(5);
  EXPECT_NE(h.summary().find("n=1"), std::string::npos);
}

TEST(Histogram, ResetClears) {
  Log2Histogram h;
  h.add(42);
  h.reset();
  EXPECT_EQ(h.total_count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

// ------------------------------------------------------------ registry --
TEST(Registry, SameNameSameObject) {
  Registry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
}

TEST(Registry, DistinctKindsDistinctNamespaces) {
  Registry reg;
  reg.counter("n");
  reg.accumulator("n");
  reg.histogram("n");
  EXPECT_EQ(reg.size(), 3u);
}

TEST(Registry, ReportContainsEntries) {
  Registry reg;
  reg.counter("reads").inc(5);
  reg.accumulator("lat").add(2.0);
  std::ostringstream out;
  reg.report(out, "sys.");
  const std::string s = out.str();
  EXPECT_NE(s.find("sys.reads 5"), std::string::npos);
  EXPECT_NE(s.find("sys.lat"), std::string::npos);
}

TEST(Registry, ResetAll) {
  Registry reg;
  reg.counter("c").inc(3);
  reg.accumulator("a").add(1.0);
  reg.histogram("h").add(10);
  reg.reset();
  EXPECT_EQ(reg.counter("c").value(), 0u);
  EXPECT_EQ(reg.accumulator("a").count(), 0u);
  EXPECT_EQ(reg.histogram("h").total_count(), 0u);
}

}  // namespace
}  // namespace tw::stats
