// Test wall for the content-aware encoder stage (tw/encode/): round-trip
// identity properties over exhaustive small-word grids and random
// campaigns, metadata-width bounds, determinism under retry re-entry, the
// FNW == FlipEncoder-over-DCW bit-identity lock, the encoder=none
// no-decorator guarantee, and a scheme x encoder differential matrix that
// cross-checks every pair against the bit-serial oracle over the coded
// payload while verifying the end-to-end logical round trip.

#include <gtest/gtest.h>

#include <array>
#include <cctype>
#include <string>
#include <vector>

#include "tw/common/bits.hpp"
#include "tw/common/rng.hpp"
#include "tw/core/factory.hpp"
#include "tw/encode/encoded_scheme.hpp"
#include "tw/encode/encoder.hpp"
#include "tw/encode/flip_rule.hpp"
#include "tw/mem/data_store.hpp"
#include "tw/pcm/params.hpp"
#include "tw/verify/differential.hpp"

namespace tw::encode {
namespace {

const std::vector<EncoderKind> kRealEncoders = {
    EncoderKind::kFlip, EncoderKind::kWire, EncoderKind::kCoset};

const std::vector<schemes::SchemeKind> kFiveSchemes = {
    schemes::SchemeKind::kDcw,        schemes::SchemeKind::kFlipNWrite,
    schemes::SchemeKind::kTwoStage,   schemes::SchemeKind::kThreeStage,
    schemes::SchemeKind::kTetris};

// ------------------------------------------------------------- flip rule --
TEST(EncodeFlipRule, MatchesFrozenFnwFormula) {
  // The shared rule must stay exactly the FNW cost comparison both
  // prep.cpp and FlipEncoder rely on: flip iff storing the complement
  // (plus its tag transition) pulses strictly fewer cells.
  for (u32 bits = 1; bits <= 64; bits *= 2) {
    for (u32 changed = 0; changed <= bits; ++changed) {
      for (const bool old_tag : {false, true}) {
        const u32 cost_plain = changed + (old_tag ? 1u : 0u);
        const u32 cost_flip = (bits - changed) + (old_tag ? 0u : 1u);
        EXPECT_EQ(flip_wins(changed, old_tag, bits),
                  cost_flip < cost_plain)
            << "bits=" << bits << " changed=" << changed
            << " old_tag=" << old_tag;
      }
    }
  }
}

// ------------------------------------------------------ kind bookkeeping --
TEST(EncodeKinds, NamesParseRoundTrip) {
  for (const EncoderKind k : all_encoder_kinds()) {
    const auto parsed = parse_encoder(encoder_name(k));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(parse_encoder("hamming").has_value());
  EXPECT_FALSE(parse_encoder("").has_value());
}

TEST(EncodeKinds, NoneFirstAndMakerContract) {
  const auto kinds = all_encoder_kinds();
  ASSERT_EQ(kinds.size(), 4u);
  EXPECT_EQ(kinds[0], EncoderKind::kNone);
  const pcm::PcmConfig dev = pcm::table2_config();
  EXPECT_EQ(make_encoder(EncoderKind::kNone, dev), nullptr);
  for (const EncoderKind k : kRealEncoders) {
    const auto enc = make_encoder(k, dev);
    ASSERT_NE(enc, nullptr);
    EXPECT_EQ(enc->kind(), k);
    EXPECT_EQ(enc->name(), encoder_name(k));
    EXPECT_GE(enc->meta_bits(), 1u);
    EXPECT_LE(enc->meta_bits(), 8u);
  }
}

// ------------------------------------------------------------ round trip --
// One (payload, stored state) probe: the chosen tag must be in range,
// deterministic, invertible, and confined to the low `bits`.
void check_probe(const Encoder& enc, u64 logical, u64 old_cells, u8 old_meta,
                 u32 bits) {
  const u64 mask = low_mask(bits);
  const u8 m = enc.choose(logical, old_cells, old_meta, bits);
  EXPECT_LT(m, 1u << enc.meta_bits());
  EXPECT_EQ(m, enc.choose(logical, old_cells, old_meta, bits));  // pure
  const u64 coded = enc.apply(logical, m, old_cells, bits);
  EXPECT_EQ(coded, coded & mask);
  EXPECT_EQ(enc.recover(coded, m, bits), logical & mask)
      << enc.name() << " bits=" << bits << " logical=" << std::hex << logical
      << " old=" << old_cells << " meta=" << static_cast<int>(old_meta);
}

TEST(EncodeRoundTrip, ExhaustiveSmallWordGrids) {
  const pcm::PcmConfig dev = pcm::table2_config();
  for (const EncoderKind k : kRealEncoders) {
    const auto enc = make_encoder(k, dev);
    const u32 metas = 1u << enc->meta_bits();
    for (const u32 bits : {1u, 2u, 3u, 4u, 6u}) {
      const u64 words = u64{1} << bits;
      for (u64 logical = 0; logical < words; ++logical) {
        for (u64 old_cells = 0; old_cells < words; ++old_cells) {
          for (u32 om = 0; om < metas; ++om) {
            check_probe(*enc, logical, old_cells, static_cast<u8>(om),
                        bits);
          }
        }
      }
    }
  }
}

TEST(EncodeRoundTrip, RandomCampaign20kLinesPerEncoder) {
  const pcm::PcmConfig dev = pcm::table2_config();
  const u32 bits = dev.geometry.data_unit_bits;
  for (const EncoderKind k : kRealEncoders) {
    const auto enc = make_encoder(k, dev);
    Rng rng(0xE2C0DE ^ static_cast<u64>(k));
    for (int i = 0; i < 20'000; ++i) {
      u64 logical = rng.next();
      u64 old_cells = rng.next();
      // Bias toward the degenerate contents encoders special-case.
      if (rng.chance(0.15)) logical = rng.chance(0.5) ? 0 : ~u64{0};
      if (rng.chance(0.15)) old_cells = rng.chance(0.5) ? 0 : ~u64{0};
      // Compressible half the time: constant high half.
      if (rng.chance(0.5)) {
        const u64 lo = logical & low_mask(bits / 2);
        logical = rng.chance(0.5) ? lo : (lo | ~low_mask(bits / 2));
      }
      const u8 old_meta =
          static_cast<u8>(rng.next() & low_mask(enc->meta_bits()));
      check_probe(*enc, logical, old_cells, old_meta, bits);
    }
  }
}

TEST(EncodeRoundTrip, WireAllTagsInvertEverywhere) {
  // XOR codebooks must invert under *every* tag, not just the chosen one
  // (the fault path may read back any stored tag).
  const pcm::PcmConfig dev = pcm::table2_config();
  const auto enc = make_encoder(EncoderKind::kWire, dev);
  Rng rng(0x317E);
  for (int i = 0; i < 2'000; ++i) {
    const u64 logical = rng.next();
    for (u8 m = 0; m < 4; ++m) {
      const u64 coded = enc->apply(logical, m, rng.next(), 64);
      EXPECT_EQ(enc->recover(coded, m, 64), logical);
    }
  }
}

TEST(EncodeRoundTrip, CostNeverWorseThanIdentity) {
  // wire and coset both include the identity code in their candidate set,
  // so the chosen code's weighted pulse cost (data + tag cells) can never
  // exceed just storing the plain word.
  const pcm::PcmConfig dev = pcm::table2_config();
  const u32 l = dev.l();
  const u32 bits = dev.geometry.data_unit_bits;
  auto weighted = [&](u64 old_v, u64 next) {
    const BitTransitions t = transitions(old_v, next);
    return t.sets + t.resets * l;
  };
  for (const EncoderKind k : {EncoderKind::kWire, EncoderKind::kCoset}) {
    const auto enc = make_encoder(k, dev);
    Rng rng(0xC057 ^ static_cast<u64>(k));
    for (int i = 0; i < 5'000; ++i) {
      u64 logical = rng.next();
      if (rng.chance(0.5)) logical &= low_mask(bits / 2);  // compressible
      const u64 old_cells = rng.next();
      const u8 old_meta =
          static_cast<u8>(rng.next() & low_mask(enc->meta_bits()));
      const u8 m = enc->choose(logical, old_cells, old_meta, bits);
      const u64 coded = enc->apply(logical, m, old_cells, bits);
      const u32 chosen = weighted(old_cells, coded) + weighted(old_meta, m);
      const u32 identity =
          weighted(old_cells, logical) + weighted(old_meta, 0);
      EXPECT_LE(chosen, identity) << enc->name();
    }
  }
}

TEST(EncodeRoundTrip, StoredValueRestoreKeepsTag) {
  // Silent-write stability: re-choosing for the value already stored under
  // the stored tag must return the stored tag (zero-cost candidate), so a
  // rewrite of unchanged data stays pulse-free through the decorator.
  const pcm::PcmConfig dev = pcm::table2_config();
  const u32 bits = dev.geometry.data_unit_bits;
  for (const EncoderKind k : kRealEncoders) {
    const auto enc = make_encoder(k, dev);
    Rng rng(0x51E7 ^ static_cast<u64>(k));
    for (int i = 0; i < 5'000; ++i) {
      u64 logical = rng.next();
      if (rng.chance(0.5)) logical &= low_mask(bits / 2);
      const u64 old_cells = rng.next();
      const u8 old_meta =
          static_cast<u8>(rng.next() & low_mask(enc->meta_bits()));
      const u8 m = enc->choose(logical, old_cells, old_meta, bits);
      const u64 coded = enc->apply(logical, m, old_cells, bits);
      // Now the line holds (coded, m); storing `logical` again must keep m
      // and re-produce the identical cells.
      const u8 m2 = enc->choose(logical, coded, m, bits);
      EXPECT_EQ(m2, m) << enc->name();
      EXPECT_EQ(enc->apply(logical, m2, coded, bits), coded) << enc->name();
    }
  }
}

// ------------------------------------------------- decorator composition --
TEST(EncodeScheme, NoneWrapsToBareScheme) {
  const pcm::PcmConfig dev = pcm::table2_config();
  auto inner = core::make_scheme(schemes::SchemeKind::kTetris, dev);
  const schemes::WriteScheme* raw = inner.get();
  const auto wrapped = wrap_scheme(std::move(inner), EncoderKind::kNone);
  // kNone is the no-decorator path: the very same object comes back.
  EXPECT_EQ(wrapped.get(), raw);
  EXPECT_FALSE(wrapped->transforms_content());
  EXPECT_EQ(wrapped->name(), "tetris");
}

TEST(EncodeScheme, DecoratorNameKindAndStats) {
  const pcm::PcmConfig dev = pcm::table2_config();
  const auto wrapped = wrap_scheme(
      core::make_scheme(schemes::SchemeKind::kDcw, dev), EncoderKind::kWire);
  EXPECT_EQ(wrapped->name(), "dcw+wire");
  EXPECT_EQ(wrapped->kind(), schemes::SchemeKind::kDcw);
  EXPECT_TRUE(wrapped->transforms_content());

  const u32 units = dev.geometry.units_per_line();
  pcm::LineBuf line(units);
  pcm::LogicalLine next(units);
  Rng rng(0xA11CE);
  for (u32 u = 0; u < units; ++u) next.set_word(u, rng.next());
  const schemes::ServicePlan plan = wrapped->plan_write(line, next);
  EXPECT_TRUE(plan.enc.active);
  EXPECT_EQ(wrapped->decode_stored(line), next);

  // Bare schemes carry no encoder state.
  const auto bare = core::make_scheme(schemes::SchemeKind::kDcw, dev);
  pcm::LineBuf line2(units);
  const schemes::ServicePlan bare_plan = bare->plan_write(line2, next);
  EXPECT_FALSE(bare_plan.enc.active);
  EXPECT_EQ(bare_plan.enc.coded_units, 0u);
  EXPECT_EQ(bare_plan.enc.tag_bits, 0u);
}

TEST(EncodeScheme, FnwEqualsFlipEncoderOverDcw) {
  // The satellite lock: FNW refactored as FlipEncoder-over-DCW must store
  // the same physical data cells and perform the same number of
  // transitions (data + one tag cell) as the native FNW scheme, write for
  // write. The flip bit just moves from the flip tag to meta bit 0.
  const pcm::PcmConfig dev = pcm::table2_config();
  const u32 units = dev.geometry.units_per_line();
  const auto fnw = core::make_scheme(schemes::SchemeKind::kFlipNWrite, dev);
  const auto composed = wrap_scheme(
      core::make_scheme(schemes::SchemeKind::kDcw, dev), EncoderKind::kFlip);

  pcm::LineBuf a(units), b(units);
  Rng rng(0xF19F);
  for (int trial = 0; trial < 3'000; ++trial) {
    pcm::LogicalLine next(units);
    for (u32 u = 0; u < units; ++u) {
      u64 w = rng.next();
      if (rng.chance(0.2)) w = rng.chance(0.5) ? 0 : ~u64{0};
      // Mix sparse deltas so the flip rule trips both ways.
      if (rng.chance(0.3)) w = a.logical(u) ^ (rng.next() & rng.next());
      next.set_word(u, w);
    }
    const schemes::ServicePlan pa = fnw->plan_write(a, next);
    const schemes::ServicePlan pb = composed->plan_write(b, next);
    for (u32 u = 0; u < units; ++u) {
      ASSERT_EQ(a.cell(u), b.cell(u)) << "trial " << trial << " unit " << u;
      // Same inversion decision, different tag home.
      ASSERT_EQ(a.flip(u), (b.meta(u) & 1u) != 0);
      ASSERT_FALSE(b.flip(u));  // inner DCW never flips
    }
    ASSERT_EQ(pa.programmed.sets, pb.programmed.sets) << "trial " << trial;
    ASSERT_EQ(pa.programmed.resets, pb.programmed.resets);
    ASSERT_EQ(pa.silent, pb.silent);
    // And both read back the requested data.
    ASSERT_EQ(fnw->decode_stored(a), next);
    ASSERT_EQ(composed->decode_stored(b), next);
  }
}

TEST(EncodeScheme, RetryReentryDeterministicAndForwarded) {
  const pcm::PcmConfig dev = pcm::table2_config();
  const auto inner = core::make_scheme(schemes::SchemeKind::kTetris, dev);
  const auto wrapped = wrap_scheme(
      core::make_scheme(schemes::SchemeKind::kTetris, dev),
      EncoderKind::kCoset);
  Rng rng(0x4E74);
  for (int trial = 0; trial < 500; ++trial) {
    BitTransitions failed;
    failed.sets = static_cast<u32>(rng.next() % 257);
    failed.resets = static_cast<u32>(rng.next() % 257);
    if (failed.total() == 0) failed.sets = 1;
    const u32 attempt = 1 + static_cast<u32>(rng.next() % 4);
    const Tick t = wrapped->plan_retry(failed, attempt, 2.0);
    EXPECT_EQ(t, wrapped->plan_retry(failed, attempt, 2.0));  // pure
    EXPECT_EQ(t, inner->plan_retry(failed, attempt, 2.0));    // forwarded
  }
}

TEST(EncodeScheme, ReplanIsDeterministic) {
  // A fault-ladder retry re-plans the same logical data against the same
  // line state; the decorator must re-encode to the identical coded image
  // and identical plan. Emulated by planning over two equal lines.
  const pcm::PcmConfig dev = pcm::table2_config();
  const u32 units = dev.geometry.units_per_line();
  for (const EncoderKind k : kRealEncoders) {
    const auto wrapped = wrap_scheme(
        core::make_scheme(schemes::SchemeKind::kTetris, dev), k);
    pcm::LineBuf a(units);
    Rng rng(0xD371 ^ static_cast<u64>(k));
    for (int trial = 0; trial < 300; ++trial) {
      pcm::LogicalLine next(units);
      for (u32 u = 0; u < units; ++u) next.set_word(u, rng.next());
      pcm::LineBuf b = a;  // snapshot before the "first attempt"
      const schemes::ServicePlan pa = wrapped->plan_write(a, next);
      const schemes::ServicePlan pb = wrapped->plan_write(b, next);
      ASSERT_TRUE(a == b);
      ASSERT_EQ(pa.latency, pb.latency);
      ASSERT_EQ(pa.programmed, pb.programmed);
      ASSERT_EQ(pa.enc.coded_units, pb.enc.coded_units);
      ASSERT_EQ(pa.enc.tag_bits, pb.enc.tag_bits);
    }
  }
}

TEST(EncodeScheme, BatchMatchesPerLinePlans) {
  // The batched write path must produce the same post-images and encoder
  // stats as line-at-a-time planning (serializing inner scheme).
  const pcm::PcmConfig dev = pcm::table2_config();
  const u32 units = dev.geometry.units_per_line();
  for (const EncoderKind k : kRealEncoders) {
    const auto wrapped = wrap_scheme(
        core::make_scheme(schemes::SchemeKind::kDcw, dev), k);
    Rng rng(0xBA7C ^ static_cast<u64>(k));
    constexpr std::size_t kLines = 5;
    std::vector<pcm::LineBuf> batch_lines, solo_lines;
    std::vector<pcm::LogicalLine> datas;
    for (std::size_t i = 0; i < kLines; ++i) {
      batch_lines.emplace_back(units);
      pcm::LogicalLine next(units);
      for (u32 u = 0; u < units; ++u) next.set_word(u, rng.next());
      datas.push_back(next);
    }
    solo_lines = batch_lines;
    std::vector<pcm::LineBuf*> ptrs;
    for (auto& l : batch_lines) ptrs.push_back(&l);
    const schemes::BatchServicePlan bp = wrapped->plan_write_batch(
        {ptrs.data(), ptrs.size()}, {datas.data(), datas.size()});
    ASSERT_EQ(bp.per_line.size(), kLines);
    for (std::size_t i = 0; i < kLines; ++i) {
      const schemes::ServicePlan sp =
          wrapped->plan_write(solo_lines[i], datas[i]);
      EXPECT_TRUE(batch_lines[i] == solo_lines[i]) << "line " << i;
      EXPECT_EQ(bp.per_line[i].programmed, sp.programmed);
      EXPECT_EQ(bp.per_line[i].enc.coded_units, sp.enc.coded_units);
      EXPECT_EQ(bp.per_line[i].enc.tag_bits, sp.enc.tag_bits);
      EXPECT_TRUE(bp.per_line[i].enc.active);
      EXPECT_EQ(wrapped->decode_stored(batch_lines[i]), datas[i]);
    }
  }
}

TEST(EncodeScheme, DataStoreDecoderHookRoundTrips) {
  // The controller installs decode_stored into the DataStore; a read
  // after an encoded write must return the logical data, not the coded
  // cells.
  const pcm::PcmConfig dev = pcm::table2_config();
  const u32 units = dev.geometry.units_per_line();
  const auto wrapped = wrap_scheme(
      core::make_scheme(schemes::SchemeKind::kTetris, dev),
      EncoderKind::kCoset);
  mem::DataStore store(units, 99, 0.5);
  store.set_decoder(
      wrapped.get(), [](const void* ctx, const pcm::LineBuf& l) {
        return static_cast<const schemes::WriteScheme*>(ctx)->decode_stored(
            l);
      });
  Rng rng(0x5702E);
  for (int i = 0; i < 200; ++i) {
    const Addr addr = (rng.next() % 64) * 64;
    pcm::LogicalLine next(units);
    for (u32 u = 0; u < units; ++u) {
      // Compressible content so the coset code actually engages.
      const u64 lo = rng.next() & low_mask(dev.geometry.data_unit_bits / 2);
      next.set_word(u, rng.chance(0.5)
                           ? lo
                           : lo | ~low_mask(dev.geometry.data_unit_bits / 2));
    }
    wrapped->plan_write(store.line(addr), next);
    EXPECT_EQ(store.read_logical(addr), next);
  }
}

// -------------------------------------------------- differential matrix --
// Every scheme x encoder pair: the inner scheme is cross-checked by the
// bit-serial oracle over the *coded* payload (the stream the scheme
// actually sees), while the decorated scheme must evolve the same data
// cells and decode back to the logical data end to end. Data classes:
// all-zero, all-one, random, compressible, and adversarial half-flips.
class EncodeDifferential
    : public ::testing::TestWithParam<
          std::tuple<schemes::SchemeKind, EncoderKind>> {};

TEST_P(EncodeDifferential, OracleAgreesOnCodedStream) {
  const auto [skind, ekind] = GetParam();
  const pcm::PcmConfig dev = pcm::table2_config();
  const u32 units = dev.geometry.units_per_line();
  const u32 bits = dev.geometry.data_unit_bits;

  const auto wrapped = wrap_scheme(core::make_scheme(skind, dev), ekind);
  const auto inner = core::make_scheme(skind, dev);
  const auto enc = make_encoder(ekind, dev);
  verify::DifferentialChecker checker(*inner);

  pcm::LineBuf line(units);   // driven by the decorated scheme
  pcm::LineBuf shadow(units); // driven through the checker, coded stream
  std::array<u8, pcm::kMaxUnitsPerLine> metas{};

  Rng rng(0xD1FF ^ (static_cast<u64>(skind) << 8) ^
          static_cast<u64>(ekind));
  for (int trial = 0; trial < 250; ++trial) {
    pcm::LogicalLine next(units);
    const u32 cls = trial < 4 ? trial : static_cast<u32>(rng.next() % 4);
    for (u32 u = 0; u < units; ++u) {
      u64 w = 0;
      switch (cls) {
        case 0:  // all-zero
          break;
        case 1:  // all-one
          w = low_mask(bits);
          break;
        case 2:  // random
          w = rng.next() & low_mask(bits);
          break;
        default: {  // compressible narrow value
          const u64 lo = rng.next() & low_mask(bits / 2);
          w = rng.chance(0.5) ? lo : (lo | (low_mask(bits) ^ low_mask(bits / 2)));
          break;
        }
      }
      next.set_word(u, w);
    }
    // Adversarial half-flips every 10th trial: distance bits/2 from the
    // currently decoded content.
    if (trial % 10 == 9) {
      const pcm::LogicalLine cur = wrapped->decode_stored(line);
      for (u32 u = 0; u < units; ++u) {
        u64 flipmask = 0;
        while (popcount(flipmask) < bits / 2) {
          flipmask |= u64{1} << (rng.next() % bits);
        }
        next.set_word(u, (cur.word(u) ^ flipmask) & low_mask(bits));
      }
    }

    // End-to-end through the decorator.
    const schemes::ServicePlan plan = wrapped->plan_write(line, next);
    ASSERT_TRUE(plan.enc.active);
    ASSERT_EQ(wrapped->decode_stored(line), next) << "trial " << trial;

    // The coded stream, re-derived independently, through the oracle.
    pcm::LogicalLine coded(units);
    for (u32 u = 0; u < units; ++u) {
      const u8 m = enc->choose(next.word(u), shadow.logical(u), metas[u],
                               bits);
      coded.set_word(u, enc->apply(next.word(u), m, shadow.logical(u),
                                   bits));
      metas[u] = m;
    }
    ASSERT_NO_THROW(checker.check_write(shadow, coded)) << "trial " << trial;

    // Decorated line and oracle-checked shadow hold the same data cells.
    for (u32 u = 0; u < units; ++u) {
      ASSERT_EQ(line.cell(u), shadow.cell(u))
          << "trial " << trial << " unit " << u;
      ASSERT_EQ(line.flip(u), shadow.flip(u));
      ASSERT_EQ(line.meta(u), metas[u]);
    }
  }
  EXPECT_EQ(checker.report().writes, 250u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, EncodeDifferential,
    ::testing::Combine(::testing::ValuesIn(kFiveSchemes),
                       ::testing::ValuesIn(kRealEncoders)),
    [](const auto& info) {
      // gtest parameter names must be purely alphanumeric.
      std::string out = "S";
      for (const char c : schemes::scheme_name(std::get<0>(info.param))) {
        if (std::isalnum(static_cast<unsigned char>(c))) out.push_back(c);
      }
      out.push_back('X');
      out.append(encoder_name(std::get<1>(info.param)));
      return out;
    });

}  // namespace
}  // namespace tw::encode
