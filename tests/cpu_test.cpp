// Unit tests for the bounded-MLP core model and multi-core wrapper.

#include <gtest/gtest.h>

#include "tw/core/factory.hpp"
#include "tw/cpu/multicore.hpp"
#include "tw/harness/experiment.hpp"
#include "tw/workload/generator.hpp"

namespace tw::cpu {
namespace {

struct SystemFixture {
  sim::Simulator sim;
  stats::Registry reg;
  std::unique_ptr<schemes::WriteScheme> scheme;
  std::unique_ptr<mem::Controller> ctl;
  std::unique_ptr<workload::TraceGenerator> gen;
  std::unique_ptr<MultiCore> cpus;

  SystemFixture(const char* workload, u32 cores, u64 budget,
                schemes::SchemeKind kind = schemes::SchemeKind::kDcw,
                mem::ControllerConfig ccfg = {}) {
    const pcm::PcmConfig pcfg = pcm::table2_config();
    scheme = core::make_scheme(kind, pcfg);
    ctl = std::make_unique<mem::Controller>(sim, pcfg, ccfg, *scheme, reg);
    gen = std::make_unique<workload::TraceGenerator>(
        workload::profile_by_name(workload), pcfg.geometry, cores, 1234);
    cpus = std::make_unique<MultiCore>(sim, CoreConfig{}, cores, *ctl,
                                       *gen, budget);
  }

  void run(Tick limit = kTickMax) {
    cpus->start();
    sim.run(limit);
  }
};

TEST(Core, RetiresExactBudgetOrSlightlyMore) {
  SystemFixture f("blackscholes", 1, 10'000);
  f.run();
  ASSERT_TRUE(f.cpus->all_finished());
  const u64 retired = f.cpus->core(0).retired();
  // Retirement quantum is (gap + 1), so overshoot is at most one gap.
  EXPECT_GE(retired, 10'000u);
  EXPECT_LT(retired, 10'000u + 60'000u);
}

TEST(Core, IpcBoundedByPeak) {
  SystemFixture f("blackscholes", 1, 20'000);
  f.run();
  ASSERT_TRUE(f.cpus->all_finished());
  EXPECT_GT(f.cpus->core(0).ipc(), 0.0);
  EXPECT_LE(f.cpus->core(0).ipc(), CoreConfig{}.peak_ipc + 1e-9);
}

TEST(Core, MemoryBoundWorkloadStalls) {
  // vips (4.12 ops/kilo, write-heavy) under the slow DCW baseline must
  // run far below peak IPC; blackscholes (0.06 ops/kilo) near peak.
  SystemFixture heavy("vips", 2, 20'000);
  heavy.run();
  ASSERT_TRUE(heavy.cpus->all_finished());
  SystemFixture light("blackscholes", 2, 20'000);
  light.run();
  ASSERT_TRUE(light.cpus->all_finished());
  EXPECT_LT(heavy.cpus->aggregate_ipc(),
            0.5 * light.cpus->aggregate_ipc());
  EXPECT_GT(heavy.cpus->core(0).stall_events() +
                heavy.cpus->core(1).stall_events(),
            0u);
}

TEST(Core, ReadsAndWritesReachTheController) {
  SystemFixture f("ferret", 1, 30'000);
  f.run();
  ASSERT_TRUE(f.cpus->all_finished());
  EXPECT_GT(f.cpus->core(0).reads_issued(), 0u);
  EXPECT_GT(f.cpus->core(0).writes_issued(), 0u);
  EXPECT_EQ(f.reg.counter("mem.reads").value(),
            f.cpus->core(0).reads_issued());
}

TEST(MultiCore, RuntimeIsMaxOfCores) {
  SystemFixture f("canneal", 4, 10'000);
  f.run();
  ASSERT_TRUE(f.cpus->all_finished());
  Tick max_finish = 0;
  for (u32 c = 0; c < 4; ++c) {
    max_finish = std::max(max_finish, f.cpus->core(c).finish_tick());
  }
  EXPECT_EQ(f.cpus->runtime(), max_finish);
  EXPECT_GT(f.cpus->runtime(), 0u);
}

TEST(MultiCore, FasterSchemeFinishesSooner) {
  SystemFixture slow("vips", 2, 15'000, schemes::SchemeKind::kDcw);
  slow.run();
  SystemFixture fast("vips", 2, 15'000, schemes::SchemeKind::kTetris);
  fast.run();
  ASSERT_TRUE(slow.cpus->all_finished());
  ASSERT_TRUE(fast.cpus->all_finished());
  EXPECT_LT(fast.cpus->runtime(), slow.cpus->runtime());
  EXPECT_GT(fast.cpus->aggregate_ipc(), slow.cpus->aggregate_ipc());
}

TEST(MultiCore, DeterministicAcrossRuns) {
  SystemFixture a("dedup", 2, 10'000);
  a.run();
  SystemFixture b("dedup", 2, 10'000);
  b.run();
  EXPECT_EQ(a.cpus->runtime(), b.cpus->runtime());
  EXPECT_EQ(a.reg.counter("mem.writes").value(),
            b.reg.counter("mem.writes").value());
}

TEST(MultiCore, AggregateIpcSumsCores) {
  SystemFixture f("blackscholes", 4, 10'000);
  f.run();
  ASSERT_TRUE(f.cpus->all_finished());
  // Four unstalled cores should reach ~4x the single-core IPC.
  EXPECT_GT(f.cpus->aggregate_ipc(), 0.8 * 4.0 * 1.0);
}

TEST(Core, StartTwiceRejected) {
  SystemFixture f("blackscholes", 1, 1'000);
  f.cpus->start();
  f.sim.run();
  EXPECT_THROW(f.cpus->start(), ContractViolation);
}

}  // namespace
}  // namespace tw::cpu
