// Feature-interaction tests: the controller's optional mechanisms
// (write pausing, Start-Gap wear leveling, write batching, subarrays,
// drain policies) must compose without deadlock, loss, or
// non-determinism — individually each has its own tests; these stress the
// cross-products on full-system runs.

#include <gtest/gtest.h>

#include "tw/core/factory.hpp"
#include "tw/harness/experiment.hpp"

namespace tw {
namespace {

harness::SystemConfig everything_on() {
  harness::SystemConfig cfg;
  cfg.instructions_per_core = 10'000;
  cfg.controller.write_pausing = true;
  cfg.controller.wear_leveling = true;
  cfg.controller.start_gap.region_lines = 4096;
  cfg.controller.start_gap.gap_write_interval = 32;
  cfg.controller.write_batch = 4;
  cfg.pcm.geometry.subarrays_per_bank = 2;
  return cfg;
}

class AllFeatures : public ::testing::TestWithParam<const char*> {};

TEST_P(AllFeatures, RunsToCompletionOnEveryWorkload) {
  const auto& p = workload::profile_by_name(GetParam());
  const harness::RunMetrics m =
      harness::run_system(everything_on(), p, schemes::SchemeKind::kTetris);
  EXPECT_TRUE(m.completed) << p.name;
  EXPECT_GT(m.retired, 0u);
  if (m.writes > 20) {
    EXPECT_GT(m.write_units, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, AllFeatures,
    ::testing::Values("blackscholes", "bodytrack", "canneal", "dedup",
                      "ferret", "freqmine", "swaptions", "vips"));

TEST(Combo, AllFeaturesDeterministic) {
  const auto& p = workload::profile_by_name("vips");
  const auto a =
      harness::run_system(everything_on(), p, schemes::SchemeKind::kTetris);
  const auto b =
      harness::run_system(everything_on(), p, schemes::SchemeKind::kTetris);
  EXPECT_DOUBLE_EQ(a.runtime_ns, b.runtime_ns);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.gap_moves, b.gap_moves);
  EXPECT_EQ(a.write_pauses, b.write_pauses);
  EXPECT_EQ(a.writes_batched, b.writes_batched);
}

TEST(Combo, AllFeaturesWorkWithEveryScheme) {
  const auto& p = workload::profile_by_name("ferret");
  harness::SystemConfig cfg = everything_on();
  cfg.instructions_per_core = 6'000;
  for (const auto kind : core::all_scheme_kinds()) {
    const harness::RunMetrics m = harness::run_system(cfg, p, kind);
    EXPECT_TRUE(m.completed) << schemes::scheme_name(kind);
  }
}

TEST(Combo, PausingPlusWearLevelingKeepsDataConsistent) {
  sim::Simulator sim;
  stats::Registry reg;
  const pcm::PcmConfig pcfg = pcm::table2_config();
  const auto scheme = core::make_scheme(schemes::SchemeKind::kDcw, pcfg);
  mem::ControllerConfig ccfg;
  ccfg.drain = mem::ControllerConfig::DrainPolicy::kOpportunistic;
  ccfg.write_pausing = true;
  ccfg.wear_leveling = true;
  ccfg.start_gap.region_lines = 64;
  ccfg.start_gap.gap_write_interval = 2;
  mem::Controller ctl(sim, pcfg, ccfg, *scheme, reg);

  Rng rng(3);
  std::vector<u64> last_written(32, 0);
  for (int round = 0; round < 8; ++round) {
    for (u32 l = 0; l < 32; ++l) {
      mem::MemoryRequest w;
      w.addr = l * 64;
      w.type = mem::ReqType::kWrite;
      pcm::LogicalLine d(8);
      const u64 v = rng.next();
      for (u32 i = 0; i < 8; ++i) d.set_word(i, v + i);
      w.data = d;
      last_written[l] = v;
      ASSERT_TRUE(ctl.enqueue(std::move(w)));
      // Interleave reads to trigger pauses during migrations.
      mem::MemoryRequest r;
      r.addr = ((l + 7) % 32) * 64;
      r.type = mem::ReqType::kRead;
      ctl.enqueue(std::move(r));
      sim.run();
    }
  }
  ASSERT_TRUE(ctl.idle());
  EXPECT_GT(ctl.gap_moves(), 50u);
  for (u32 l = 0; l < 32; ++l) {
    const Addr phys = ctl.physical_of(l * 64);
    EXPECT_EQ(ctl.store().read_logical(phys).word(0), last_written[l])
        << "line " << l;
  }
}

TEST(Combo, BatchingRespectsStrictDrain) {
  // Write-heavy enough that the 32-entry queue actually fills (strict
  // drains never trigger otherwise).
  const auto& p = workload::profile_by_name("vips");
  harness::SystemConfig cfg;
  cfg.instructions_per_core = 30'000;
  cfg.controller.write_batch = 4;
  cfg.controller.drain = mem::ControllerConfig::DrainPolicy::kStrict;
  const harness::RunMetrics m =
      harness::run_system(cfg, p, schemes::SchemeKind::kTetris);
  EXPECT_TRUE(m.completed);
  // Strict drains release bursts of same-bank writes: batches must form.
  EXPECT_GT(m.writes_batched, 0u);
}

TEST(Combo, GeometryStressAcrossFullSystem) {
  // Odd-but-valid geometries through the whole pipeline.
  const auto& p = workload::profile_by_name("ferret");
  struct Geo {
    u32 banks;
    u32 subarrays;
    u32 line_bytes;
  };
  for (const Geo g : {Geo{2, 8, 64}, Geo{16, 1, 128}, Geo{4, 4, 256}}) {
    harness::SystemConfig cfg;
    cfg.instructions_per_core = 6'000;
    cfg.pcm.geometry.banks = g.banks;
    cfg.pcm.geometry.subarrays_per_bank = g.subarrays;
    cfg.pcm.geometry.cache_line_bytes = g.line_bytes;
    const harness::RunMetrics m =
        harness::run_system(cfg, p, schemes::SchemeKind::kTetris);
    EXPECT_TRUE(m.completed)
        << g.banks << "/" << g.subarrays << "/" << g.line_bytes;
  }
}

TEST(Combo, SubarraysPlusPausingStack) {
  // Both mechanisms reduce read latency; together they must not be worse
  // than either alone on the write-bound workload.
  const auto& p = workload::profile_by_name("vips");
  harness::SystemConfig base;
  base.instructions_per_core = 12'000;
  auto run = [&](bool pausing, u32 subarrays) {
    harness::SystemConfig cfg = base;
    cfg.controller.write_pausing = pausing;
    cfg.pcm.geometry.subarrays_per_bank = subarrays;
    return harness::run_system(cfg, p, schemes::SchemeKind::kDcw)
        .read_latency_ns;
  };
  const double none = run(false, 1);
  const double both = run(true, 4);
  EXPECT_LT(both, none * 0.6);
}

}  // namespace
}  // namespace tw
