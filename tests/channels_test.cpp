// Multi-channel topology: address decode per interleave mode, geometry
// validation with actionable messages, config-file surfacing, stats
// merging, and a small end-to-end MemorySystem run over the sharded
// engine.

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <stdexcept>
#include <string>

#include "tw/core/factory.hpp"
#include "tw/harness/config_file.hpp"
#include "tw/mem/address_map.hpp"
#include "tw/mem/memory_system.hpp"
#include "tw/pcm/params.hpp"
#include "tw/stats/registry.hpp"

namespace tw {
namespace {

pcm::GeometryParams geometry(u32 channels,
                             pcm::ChannelInterleave il =
                                 pcm::ChannelInterleave::kLine) {
  pcm::GeometryParams g;  // Table II defaults: 8 banks, 1 rank, 64 B lines
  g.channels = channels;
  g.channel_interleave = il;
  return g;
}

// ------------------------------------------------------- address decode --

TEST(ChannelDecode, SingleChannelMatchesLegacyLayout) {
  // channels = 1 must leave the pre-multi-channel line-interleaved bank
  // map untouched: bank = line % banks, row above.
  const mem::AddressMap map(geometry(1));
  for (u64 li = 0; li < 64; ++li) {
    const mem::Location loc = map.decode(li * 64);
    EXPECT_EQ(loc.channel, 0u);
    EXPECT_EQ(loc.bank, li % 8);
    EXPECT_EQ(loc.row, li / 8);
  }
}

TEST(ChannelDecode, LineInterleaveRotatesChannelsAndStaysDense) {
  const mem::AddressMap map(geometry(4, pcm::ChannelInterleave::kLine));
  const mem::AddressMap local(geometry(1));
  for (u64 li = 0; li < 256; ++li) {
    const Addr a = li * 64;
    EXPECT_EQ(map.channel_of(a), li % 4);
    const mem::Location loc = map.decode(a);
    EXPECT_EQ(loc.channel, li % 4);
    // Stripping the channel bits must give the dense channel-local
    // geometry: the same location a single-channel map assigns to the
    // local line index.
    const mem::Location want = local.decode((li / 4) * 64);
    EXPECT_EQ(loc.bank, want.bank);
    EXPECT_EQ(loc.rank, want.rank);
    EXPECT_EQ(loc.row, want.row);
    EXPECT_EQ(loc.subarray, want.subarray);
  }
}

TEST(ChannelDecode, LineInterleaveCoversAllBanksPerChannel) {
  // The bug this guards: forgetting to strip channel bits would leave
  // each channel's controller seeing only banks ≡ channel (mod 4) —
  // bank starvation. Every channel must reach every bank.
  const mem::AddressMap map(geometry(4, pcm::ChannelInterleave::kLine));
  std::set<std::pair<u32, u32>> seen;  // (channel, bank)
  for (u64 li = 0; li < 4 * 8 * 4; ++li) {
    const mem::Location loc = map.decode(li * 64);
    seen.insert({loc.channel, loc.bank});
  }
  EXPECT_EQ(seen.size(), 4u * 8u);
}

TEST(ChannelDecode, BankInterleaveKeepsBankStrideLocal) {
  // kBank puts the channel bits just above the bank bits: consecutive
  // lines walk the banks of ONE channel before moving to the next.
  const mem::AddressMap map(geometry(4, pcm::ChannelInterleave::kBank));
  for (u64 li = 0; li < 256; ++li) {
    EXPECT_EQ(map.channel_of(li * 64), (li / 8) % 4) << li;
    const mem::Location loc = map.decode(li * 64);
    EXPECT_EQ(loc.bank, li % 8) << li;
    EXPECT_EQ(loc.row, li / (8 * 4)) << li;  // dense rows after stripping
  }
}

TEST(ChannelDecode, RowInterleavePartitionsCapacityContiguously) {
  pcm::GeometryParams g = geometry(4, pcm::ChannelInterleave::kRow);
  const mem::AddressMap map(g);
  const u64 lpc = g.lines_per_channel();
  ASSERT_GT(lpc, 0u);
  EXPECT_EQ(map.channel_of(0), 0u);
  EXPECT_EQ(map.channel_of((lpc - 1) * 64), 0u);
  EXPECT_EQ(map.channel_of(lpc * 64), 1u);
  EXPECT_EQ(map.channel_of((3 * lpc) * 64), 3u);
  // Local indices restart per partition.
  const mem::Location first_of_ch1 = map.decode(lpc * 64);
  EXPECT_EQ(first_of_ch1.bank, 0u);
  EXPECT_EQ(first_of_ch1.row, 0u);
}

// -------------------------------------------------- geometry validation --

TEST(ChannelGeometry, NonPowerOfTwoChannelsGetsActionableError) {
  pcm::GeometryParams g = geometry(3);
  const std::string err = g.error();
  EXPECT_FALSE(g.valid());
  EXPECT_NE(err.find("channels"), std::string::npos) << err;
  EXPECT_NE(err.find("power of two"), std::string::npos) << err;
}

TEST(ChannelGeometry, AddressMapRefusesInvalidGeometry) {
  try {
    mem::AddressMap map(geometry(3));
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("channels"), std::string::npos)
        << e.what();
  }
}

TEST(ChannelGeometry, CapacityMustCoverOneLinePerChannel) {
  pcm::GeometryParams g = geometry(8);
  g.capacity_bytes = 4 * 64;  // 4 lines for 8 channels
  EXPECT_FALSE(g.valid());
  EXPECT_NE(g.error().find("capacity"), std::string::npos) << g.error();
}

// ------------------------------------------------------ config surfaces --

TEST(ChannelConfig, FileKeysParse) {
  std::istringstream in(
      "pcm.channels = 4\n"
      "pcm.channel_interleave = bank\n"
      "xbar.latency_ns = 35\n"
      "sys.sim_threads = 2\n");
  const harness::SystemConfig cfg = harness::parse_system_config(in);
  EXPECT_EQ(cfg.pcm.geometry.channels, 4u);
  EXPECT_EQ(cfg.pcm.geometry.channel_interleave,
            pcm::ChannelInterleave::kBank);
  EXPECT_EQ(cfg.xbar_latency, ns(35));
  EXPECT_EQ(cfg.sim_threads, 2u);
}

TEST(ChannelConfig, BadChannelCountSurfacesActionableError) {
  std::istringstream in("pcm.channels = 3\n");
  try {
    harness::parse_system_config(in);
    FAIL() << "should have thrown";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 1"), std::string::npos) << what;
    EXPECT_NE(what.find("pcm.channels"), std::string::npos) << what;
    EXPECT_NE(what.find("power of two"), std::string::npos) << what;
  }
}

TEST(ChannelConfig, BadInterleaveAndZeroLatencyRejected) {
  {
    std::istringstream in("pcm.channel_interleave = diagonal\n");
    EXPECT_THROW(harness::parse_system_config(in), std::runtime_error);
  }
  {
    std::istringstream in("xbar.latency_ns = 0\n");
    EXPECT_THROW(harness::parse_system_config(in), std::runtime_error);
  }
}

TEST(ChannelConfig, RoundTripsThroughWriter) {
  harness::SystemConfig cfg;
  cfg.pcm.geometry.channels = 8;
  cfg.pcm.geometry.channel_interleave = pcm::ChannelInterleave::kRow;
  cfg.xbar_latency = ns(25);
  cfg.sim_threads = 4;
  std::ostringstream out;
  harness::write_system_config(cfg, out);
  std::istringstream in(out.str());
  const harness::SystemConfig back = harness::parse_system_config(in);
  EXPECT_EQ(back.pcm.geometry.channels, 8u);
  EXPECT_EQ(back.pcm.geometry.channel_interleave,
            pcm::ChannelInterleave::kRow);
  EXPECT_EQ(back.xbar_latency, ns(25));
  EXPECT_EQ(back.sim_threads, 4u);
}

// --------------------------------------------------------- stats merges --

TEST(ChannelStats, RegistryMergeFoldsCountersAndHistograms) {
  stats::Registry main, ch;
  main.counter("mem.writes").inc(10);
  ch.counter("mem.writes").inc(5);
  ch.counter("mem.reads").inc(3);
  ch.accumulator("lat").add(2.0);
  ch.accumulator("lat").add(4.0);
  ch.histogram("svc").add(100);
  ch.histogram("svc").add(200);
  main.merge_from(ch);
  EXPECT_EQ(main.counter("mem.writes").value(), 15u);
  EXPECT_EQ(main.counter("mem.reads").value(), 3u);
  EXPECT_EQ(main.accumulator("lat").count(), 2u);
  EXPECT_DOUBLE_EQ(main.accumulator("lat").mean(), 3.0);
  EXPECT_EQ(main.histogram("svc").total_count(), 2u);
  EXPECT_EQ(main.histogram("svc").min(), 100u);
  EXPECT_EQ(main.histogram("svc").max(), 200u);
}

// ------------------------------------------------------------ end-to-end --

TEST(MemorySystemSharded, RoutesCompletesAndKeepsEveryChannelBusy) {
  pcm::PcmConfig pc = pcm::table2_config();
  pc.geometry.channels = 4;
  sim::Simulator front;
  stats::Registry reg;
  mem::ControllerConfig cc;
  // Strict drain waits for a FULL write queue; this workload never fills
  // one, so service writes whenever no reads are pending instead.
  cc.drain = mem::ControllerConfig::DrainPolicy::kOpportunistic;
  fault::FaultConfig fault;  // disabled
  const mem::SchemeFactory factory = [&](u32) {
    return core::make_scheme(schemes::SchemeKind::kDcw, pc);
  };
  mem::MemorySystem msys(front, pc, cc, factory, reg, fault, /*seed=*/42,
                         /*ones_bias=*/0.35, /*xbar_latency=*/ns(20),
                         /*sim_threads=*/0);
  ASSERT_EQ(msys.channels(), 4u);

  u64 reads_done = 0, writes_done = 0;
  msys.set_read_callback([&](const mem::MemoryRequest&) { ++reads_done; });
  msys.set_write_callback([&](const mem::MemoryRequest&) { ++writes_done; });

  const u32 units = pc.geometry.units_per_line();
  for (u64 i = 0; i < 64; ++i) {
    mem::MemoryRequest r;
    r.addr = i * pc.geometry.cache_line_bytes;
    // kLine interleave routes line i to channel i % 4; alternate the type
    // every 4 lines so each channel gets 8 writes and 8 reads.
    if ((i / 4) % 2 == 0) {
      r.type = mem::ReqType::kWrite;
      r.data = pcm::LogicalLine(units);
      for (u32 u = 0; u < units; ++u) r.data.set_word(u, i * 1000 + u);
    } else {
      r.type = mem::ReqType::kRead;
    }
    ASSERT_TRUE(msys.enqueue(r)) << i;  // 16 per channel, fits the queues
  }

  msys.run(ms(100));
  EXPECT_EQ(writes_done, 32u);
  EXPECT_EQ(reads_done, 32u);
  EXPECT_TRUE(msys.idle());
  EXPECT_GT(msys.executed_events(), 0u);

  // kLine interleave over consecutive lines: every channel saw exactly a
  // quarter of the traffic, in its own registry until merged.
  for (u32 c = 0; c < 4; ++c) {
    ASSERT_NE(msys.channel_registry(c), nullptr);
    EXPECT_EQ(msys.channel_registry(c)->counter("mem.writes").value(), 8u);
    EXPECT_EQ(msys.channel_registry(c)->counter("mem.reads").value(), 8u);
  }
  EXPECT_EQ(reg.counter("mem.writes").value(), 0u);
  msys.merge_stats();
  EXPECT_EQ(reg.counter("mem.writes").value(), 32u);
  EXPECT_EQ(reg.counter("mem.reads").value(), 32u);
}

TEST(MemorySystemSharded, BackpressureSignalsSpaceCallback) {
  pcm::PcmConfig pc = pcm::table2_config();
  pc.geometry.channels = 2;
  sim::Simulator front;
  stats::Registry reg;
  mem::ControllerConfig cc;
  cc.read_queue_entries = 2;
  cc.write_queue_entries = 2;
  cc.drain_low_watermark = 1;  // must stay below the write queue size
  fault::FaultConfig fault;
  const mem::SchemeFactory factory = [&](u32) {
    return core::make_scheme(schemes::SchemeKind::kDcw, pc);
  };
  mem::MemorySystem msys(front, pc, cc, factory, reg, fault, 42, 0.35,
                         ns(20), 0);

  u64 done = 0;
  msys.set_read_callback([&](const mem::MemoryRequest&) { ++done; });
  bool space_seen = false;
  msys.set_space_callback([&] { space_seen = true; });

  // Flood channel 0 (even lines) with reads: credits run out at 2.
  u64 accepted = 0, refused = 0;
  for (u64 i = 0; i < 6; ++i) {
    mem::MemoryRequest r;
    r.addr = (2 * i) * pc.geometry.cache_line_bytes;
    r.type = mem::ReqType::kRead;
    if (msys.enqueue(r)) {
      ++accepted;
    } else {
      ++refused;
    }
  }
  EXPECT_EQ(accepted, 2u);
  EXPECT_EQ(refused, 4u);

  msys.run(ms(100));
  EXPECT_EQ(done, 2u);
  EXPECT_TRUE(space_seen);  // credit releases must wake the front
  EXPECT_TRUE(msys.idle());
}

}  // namespace
}  // namespace tw
