// Tests for the substrate extensions beyond the paper's core evaluation:
// Start-Gap wear leveling, write pausing, the cache-filtered request
// source, packing-order variants, analysis-cost accounting, and the
// config-file loader.

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "tw/core/factory.hpp"
#include "tw/harness/config_file.hpp"
#include "tw/mem/start_gap.hpp"
#include "tw/workload/cache_filtered.hpp"

namespace tw {
namespace {

// ------------------------------------------------------------- start-gap --
TEST(StartGap, MappingIsBijective) {
  mem::StartGapConfig cfg;
  cfg.region_lines = 64;
  cfg.randomize = true;
  mem::StartGapLeveler lev(cfg);
  std::set<u64> slots;
  for (u64 l = 0; l < 64; ++l) {
    const u64 s = lev.map(l);
    EXPECT_LE(s, 64u);
    EXPECT_TRUE(slots.insert(s).second) << "collision at slot " << s;
  }
  EXPECT_EQ(slots.count(lev.gap()), 0u);  // gap slot stays empty
}

TEST(StartGap, BijectiveAfterEveryMove) {
  mem::StartGapConfig cfg;
  cfg.region_lines = 16;
  cfg.gap_write_interval = 1;  // move on every write
  mem::StartGapLeveler lev(cfg);
  for (int w = 0; w < 200; ++w) {
    lev.on_write();
    std::set<u64> slots;
    for (u64 l = 0; l < 16; ++l) slots.insert(lev.map(l));
    ASSERT_EQ(slots.size(), 16u) << "after move " << w;
    ASSERT_EQ(slots.count(lev.gap()), 0u);
  }
  EXPECT_EQ(lev.gap_moves(), 200u);
}

TEST(StartGap, GapWrapsAndStartAdvances) {
  mem::StartGapConfig cfg;
  cfg.region_lines = 4;
  cfg.gap_write_interval = 1;
  cfg.randomize = false;
  mem::StartGapLeveler lev(cfg);
  EXPECT_EQ(lev.gap(), 4u);
  for (int i = 0; i < 4; ++i) lev.on_write();
  EXPECT_EQ(lev.gap(), 0u);
  EXPECT_EQ(lev.start(), 0u);
  const auto wrap = lev.on_write();  // gap 0 -> N, start++
  ASSERT_TRUE(wrap.has_value());
  EXPECT_EQ(wrap->from_physical, 4u);
  EXPECT_EQ(wrap->to_physical, 0u);
  EXPECT_EQ(lev.gap(), 4u);
  EXPECT_EQ(lev.start(), 1u);
}

TEST(StartGap, EveryLineVisitsEverySlot) {
  mem::StartGapConfig cfg;
  cfg.region_lines = 8;
  cfg.gap_write_interval = 1;
  cfg.randomize = false;
  mem::StartGapLeveler lev(cfg);
  std::set<u64> visited;
  // One full rotation = N * (N+1) moves.
  for (int m = 0; m < 8 * 9; ++m) {
    visited.insert(lev.map(3));
    lev.on_write();
  }
  EXPECT_EQ(visited.size(), 9u);  // line 3 visited all 9 physical slots
}

TEST(StartGap, MoveContractIsConsistentWithMapping) {
  // The line living in move.from_physical before the move must map to
  // move.to_physical after it.
  mem::StartGapConfig cfg;
  cfg.region_lines = 32;
  cfg.gap_write_interval = 1;
  mem::StartGapLeveler lev(cfg);
  for (int m = 0; m < 300; ++m) {
    // Find which logical line sits at the would-be source.
    u64 source_logical = ~u64{0};
    for (u64 l = 0; l < 32; ++l) {
      if (lev.map(l) == (lev.gap() == 0 ? 32 : lev.gap() - 1)) {
        source_logical = l;
        break;
      }
    }
    const auto move = lev.on_write();
    ASSERT_TRUE(move.has_value());
    if (source_logical != ~u64{0}) {
      EXPECT_EQ(lev.map(source_logical), move->to_physical);
    }
  }
}

TEST(StartGap, RandomizeSpreadsNeighbours) {
  mem::StartGapConfig cfg;
  cfg.region_lines = 1 << 12;
  mem::StartGapLeveler lev(cfg);
  // Adjacent logical lines should rarely be adjacent physically.
  u32 adjacent = 0;
  for (u64 l = 0; l + 1 < 256; ++l) {
    const i64 d = static_cast<i64>(lev.map(l + 1)) -
                  static_cast<i64>(lev.map(l));
    if (d == 1 || d == -1) ++adjacent;
  }
  EXPECT_LT(adjacent, 10u);
}

TEST(StartGap, InvalidConfigRejected) {
  mem::StartGapConfig cfg;
  cfg.region_lines = 1;
  EXPECT_THROW(mem::StartGapLeveler{cfg}, ContractViolation);
  cfg = {};
  cfg.region_lines = 100;  // not a power of two but randomize on
  cfg.randomize = true;
  EXPECT_THROW(mem::StartGapLeveler{cfg}, ContractViolation);
}

// ------------------------------------------- controller + wear leveling --
struct SysFixture {
  sim::Simulator sim;
  stats::Registry reg;
  std::unique_ptr<schemes::WriteScheme> scheme;
  std::unique_ptr<mem::Controller> ctl;

  explicit SysFixture(mem::ControllerConfig ccfg,
                      schemes::SchemeKind kind = schemes::SchemeKind::kDcw) {
    scheme = core::make_scheme(kind, pcm::table2_config());
    ctl = std::make_unique<mem::Controller>(sim, pcm::table2_config(), ccfg,
                                            *scheme, reg);
  }

  mem::MemoryRequest write_req(Addr addr, u64 word) {
    mem::MemoryRequest r;
    r.addr = addr;
    r.type = mem::ReqType::kWrite;
    pcm::LogicalLine d(8);
    for (u32 i = 0; i < 8; ++i) d.set_word(i, word + i);
    r.data = d;
    return r;
  }
  mem::MemoryRequest read_req(Addr addr) {
    mem::MemoryRequest r;
    r.addr = addr;
    r.type = mem::ReqType::kRead;
    return r;
  }
};

TEST(WearLeveling, GapMovesHappenAndDataSurvives) {
  mem::ControllerConfig ccfg;
  ccfg.drain = mem::ControllerConfig::DrainPolicy::kOpportunistic;
  ccfg.wear_leveling = true;
  ccfg.start_gap.region_lines = 256;
  ccfg.start_gap.gap_write_interval = 4;
  SysFixture f(ccfg);

  // Write a set of lines, then rewrite to trigger gap movement.
  for (int round = 0; round < 6; ++round) {
    for (Addr a = 0; a < 16 * 64; a += 64) {
      ASSERT_TRUE(f.ctl->enqueue(f.write_req(a, 0x100 * round + a)));
      f.sim.run();
    }
  }
  EXPECT_GT(f.ctl->gap_moves(), 10u);

  // Every line still reads back its latest data through the mapping.
  for (Addr a = 0; a < 16 * 64; a += 64) {
    const Addr phys = f.ctl->physical_of(a);
    EXPECT_EQ(f.ctl->store().read_logical(phys).word(0), 0x500 + a);
  }
}

TEST(WearLeveling, SpreadsHotLineWear) {
  auto run = [](bool leveling) {
    mem::ControllerConfig ccfg;
    ccfg.drain = mem::ControllerConfig::DrainPolicy::kOpportunistic;
    ccfg.wear_leveling = leveling;
    ccfg.start_gap.region_lines = 64;
    ccfg.start_gap.gap_write_interval = 2;
    SysFixture f(ccfg);
    Rng rng(7);
    for (int w = 0; w < 600; ++w) {
      // One scorching-hot line.
      EXPECT_TRUE(f.ctl->enqueue(f.write_req(0x0, rng.next())));
      f.sim.run();
    }
    // Hottest line's share of all demand-write wear.
    const auto summary = f.ctl->wear().summary();
    u64 max_writes = 0;
    for (Addr a = 0; a < 70 * 64; a += 64) {
      max_writes = std::max(max_writes, f.ctl->wear().line(a).writes);
    }
    return static_cast<double>(max_writes) /
           static_cast<double>(summary.total_writes);
  };
  const double without = run(false);
  const double with = run(true);
  EXPECT_GT(without, 0.95);  // all wear on one line
  EXPECT_LT(with, 0.35);     // spread across the region
}

// -------------------------------------------------------- write pausing --
TEST(WritePausing, ReadPreemptsLongWrite) {
  auto read_latency = [](bool pausing) {
    mem::ControllerConfig ccfg;
    ccfg.drain = mem::ControllerConfig::DrainPolicy::kOpportunistic;
    ccfg.write_pausing = pausing;
    SysFixture f(ccfg);  // DCW: ~3.5 us writes
    Tick done = 0;
    f.ctl->set_read_callback(
        [&](const mem::MemoryRequest& r) { done = r.complete_tick; });
    // Start a long write on bank 0, then read the same bank mid-service.
    EXPECT_TRUE(f.ctl->enqueue(f.write_req(0, 1)));
    f.sim.run(ns(200));
    EXPECT_TRUE(f.ctl->enqueue(f.read_req(8 * 64)));  // bank 0
    f.sim.run();
    return done;
  };
  const Tick without = read_latency(false);
  const Tick with = read_latency(true);
  EXPECT_GT(without, ns(3000));  // waits behind the full write
  EXPECT_LT(with, ns(1000));     // issues at the next write-unit boundary
}

TEST(WritePausing, PausedWriteStillCompletes) {
  mem::ControllerConfig ccfg;
  ccfg.drain = mem::ControllerConfig::DrainPolicy::kOpportunistic;
  ccfg.write_pausing = true;
  SysFixture f(ccfg);
  int writes_done = 0;
  f.ctl->set_write_callback(
      [&](const mem::MemoryRequest&) { ++writes_done; });
  EXPECT_TRUE(f.ctl->enqueue(f.write_req(0, 1)));
  f.sim.run(ns(100));
  EXPECT_TRUE(f.ctl->enqueue(f.read_req(8 * 64)));
  f.sim.run();
  EXPECT_EQ(writes_done, 1);
  EXPECT_GT(f.reg.counter("mem.write_pauses").value(), 0u);
  EXPECT_TRUE(f.ctl->idle());
  // The paused write's latency grew by the read it yielded to.
  EXPECT_GT(f.reg.accumulator("mem.write_latency_ns").mean(), 3490.0);
}

TEST(WritePausing, NoPauseNearCompletion) {
  mem::ControllerConfig ccfg;
  ccfg.drain = mem::ControllerConfig::DrainPolicy::kOpportunistic;
  ccfg.write_pausing = true;
  SysFixture f(ccfg);
  EXPECT_TRUE(f.ctl->enqueue(f.write_req(0, 1)));
  // Let the write run into its final pause quantum (DCW service is
  // 3490 ns; the last 430 ns boundary before the end is at 3440 ns)
  // before the read shows up.
  f.sim.run(ns(3450));
  EXPECT_TRUE(f.ctl->enqueue(f.read_req(8 * 64)));
  f.sim.run();
  EXPECT_EQ(f.reg.counter("mem.write_pauses").value(), 0u);
}

// ------------------------------------------------- cache-filtered source --
TEST(CacheFiltered, EmitsOnlyMissesAndWritebacks) {
  workload::WorkloadProfile p = workload::profile_by_name("ferret");
  p.rpki = 50;  // CPU-level rates
  p.wpki = 20;
  p.working_set_lines = 1 << 20;  // 64 MB: larger than the 32 MB L3
  cache::HierarchyConfig h;
  workload::CacheFilteredSource src(p, pcm::GeometryParams{}, h, 1, 5);
  for (int i = 0; i < 3000; ++i) {
    const workload::TraceOp op = src.next(0);
    EXPECT_EQ(op.addr % 64, 0u);
  }
  // The caches absorb part of the traffic even for an L3-busting set
  // (short-term reuse and the shared region), but not all of it.
  EXPECT_LT(src.effective_mem_per_kilo(0), 0.95 * (50.0 + 20.0));
  EXPECT_GT(src.effective_mem_per_kilo(0), 0.0);
  EXPECT_GT(src.hierarchy(0).l1d().hits(), 0u);
}

TEST(CacheFiltered, GapsGrowWithCacheHits) {
  workload::WorkloadProfile p = workload::profile_by_name("ferret");
  p.rpki = 100;
  p.wpki = 30;
  p.working_set_lines = 128;  // tiny: nearly everything hits after warmup
  cache::HierarchyConfig h;
  workload::CacheFilteredSource src(p, pcm::GeometryParams{}, h, 1, 5);
  // Warm up.
  for (int i = 0; i < 50; ++i) src.next(0);
  stats::Accumulator gaps;
  for (int i = 0; i < 50; ++i) {
    gaps.add(static_cast<double>(src.next(0).gap));
  }
  // Many CPU ops are folded into each emitted memory request.
  EXPECT_GT(gaps.mean(), 3.0 * (1000.0 / 130.0));
}

TEST(CacheFiltered, DrivesFullSystem) {
  sim::Simulator sim;
  stats::Registry reg;
  const auto scheme =
      core::make_scheme(schemes::SchemeKind::kTetris, pcm::table2_config());
  mem::ControllerConfig ccfg;
  mem::Controller ctl(sim, pcm::table2_config(), ccfg, *scheme, reg);
  workload::WorkloadProfile p = workload::profile_by_name("vips");
  p.rpki = 60;
  p.wpki = 25;
  p.working_set_lines = 1 << 18;  // 16 MB: real L3 misses
  workload::CacheFilteredSource src(p, pcm::GeometryParams{},
                                    cache::HierarchyConfig{}, 2, 5);
  cpu::MultiCore cpus(sim, cpu::CoreConfig{}, 2, ctl, src, 40'000);
  cpus.start();
  sim.run(ms(5'000));
  EXPECT_TRUE(cpus.all_finished());
  EXPECT_GT(reg.counter("mem.reads").value(), 0u);
}

// ------------------------------------------------------------ pack order --
TEST(PackOrder, VariantsAllVerify) {
  Rng rng(9);
  for (const auto order :
       {core::PackOrder::kFirstFitDecreasing,
        core::PackOrder::kFirstFitArrival,
        core::PackOrder::kBestFitDecreasing}) {
    core::PackerConfig cfg;
    cfg.order = order;
    cfg.budget = 48;
    for (int trial = 0; trial < 60; ++trial) {
      std::vector<core::UnitCounts> counts;
      for (u32 i = 0; i < 8; ++i) {
        counts.push_back(core::UnitCounts{
            i, static_cast<u32>(rng.below(30)),
            static_cast<u32>(rng.below(20))});
      }
      const core::PackResult r = core::pack(counts, cfg);
      core::verify_pack(counts, cfg, r);
    }
  }
}

TEST(PackOrder, DecreasingNeverWorseThanArrivalOnAdversarialCase) {
  // Classic FFD vs FF case: big items after small ones.
  std::vector<core::UnitCounts> counts = {
      {0, 10, 0}, {1, 10, 0}, {2, 10, 0}, {3, 25, 0}, {4, 25, 0},
  };
  core::PackerConfig ffd;
  ffd.budget = 32;
  core::PackerConfig ffa = ffd;
  ffa.order = core::PackOrder::kFirstFitArrival;
  EXPECT_LE(core::pack(counts, ffd).result,
            core::pack(counts, ffa).result);
}

TEST(PackCost, FitChecksBoundedForPaperGeometry) {
  // 8 units, K=8: the analysis must stay within a hardware-friendly
  // operation count (the paper's 41-cycle budget at 400 MHz).
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<core::UnitCounts> counts;
    for (u32 i = 0; i < 8; ++i) {
      counts.push_back(core::UnitCounts{
          i, static_cast<u32>(rng.below(33)),
          static_cast<u32>(rng.below(33))});
    }
    const core::PackResult r = core::pack(counts, core::PackerConfig{});
    // Worst case: each of 8 write-1s scans <= 8 write units, each of 8
    // write-0s scans <= 8*8+8 sub-slots.
    EXPECT_LE(r.fit_checks, 8u * 8u + 8u * (8u * 8u + 8u));
  }
}

// ----------------------------------------------------------- config file --
TEST(ConfigFile, ParsesKnownKeys) {
  std::istringstream in(R"(
# comment
pcm.t_set_ns = 860
pcm.chip_budget = 16
controller.drain = opportunistic
controller.write_pausing = true
sys.cores = 2
sys.instructions = 1234
)");
  const harness::SystemConfig cfg = harness::parse_system_config(in);
  EXPECT_EQ(cfg.pcm.timing.t_set, ns(860));
  EXPECT_EQ(cfg.pcm.power.chip_budget, 16u);
  EXPECT_EQ(cfg.controller.drain,
            mem::ControllerConfig::DrainPolicy::kOpportunistic);
  EXPECT_TRUE(cfg.controller.write_pausing);
  EXPECT_EQ(cfg.cores, 2u);
  EXPECT_EQ(cfg.instructions_per_core, 1234u);
}

TEST(ConfigFile, UnknownKeyRejectedWithLineNumber) {
  std::istringstream in("pcm.warp_factor = 9\n");
  try {
    harness::parse_system_config(in);
    FAIL() << "should have thrown";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("warp_factor"), std::string::npos);
  }
}

TEST(ConfigFile, BadValueRejected) {
  std::istringstream in("sys.cores = lots\n");
  EXPECT_THROW(harness::parse_system_config(in), std::runtime_error);
}

TEST(ConfigFile, RoundTrips) {
  harness::SystemConfig cfg;
  cfg.pcm.power.chip_budget = 64;
  cfg.controller.write_pausing = true;
  cfg.controller.wear_leveling = true;
  cfg.cores = 8;
  cfg.core.peak_ipc = 4.0;
  std::ostringstream out;
  harness::write_system_config(cfg, out);
  std::istringstream in(out.str());
  const harness::SystemConfig back = harness::parse_system_config(in);
  EXPECT_EQ(back.pcm.power.chip_budget, 64u);
  EXPECT_TRUE(back.controller.write_pausing);
  EXPECT_TRUE(back.controller.wear_leveling);
  EXPECT_EQ(back.cores, 8u);
  EXPECT_DOUBLE_EQ(back.core.peak_ipc, 4.0);
}

TEST(ConfigFile, MissingFileThrows) {
  EXPECT_THROW(harness::load_system_config("/no/such/file.cfg"),
               std::runtime_error);
}

}  // namespace
}  // namespace tw
