#pragma once
// Frozen pre-SIMD packing path (the seed's exact Algorithm 1 + 2
// implementation), kept verbatim as an independent oracle:
//
//  - tests/simd_packer_test.cpp diffs the shipped SoA/SIMD pipeline
//    (at every ISA level) against these functions bit-for-bit, so a
//    vectorization bug cannot hide by breaking scalar and AVX2 the same
//    way inside the shared shipped code;
//  - bench/micro_packer benches them as the committed baseline the
//    ">= 2x packing-path" target is measured against (the same role
//    reference_controller.hpp plays for micro_mem --reference).
//
// Deliberately unoptimized: per-unit plan_unit() calls, array-of-structs
// insertion sort, contract-checked container accesses. Do not "fix" or
// speed up this file — any change to shipped packing semantics must land
// here only when the reference is re-frozen on purpose. Trace emission is
// the one omission (the oracle's outputs don't depend on it).

#include <span>

#include "tw/common/assert.hpp"
#include "tw/common/bits.hpp"
#include "tw/common/inline_vec.hpp"
#include "tw/core/packer.hpp"
#include "tw/core/read_stage.hpp"
#include "tw/pcm/line.hpp"
#include "tw/schemes/prep.hpp"

namespace tw::testref {

/// Seed plan_line: one plan_unit() call per data unit (plan_unit itself is
/// the still-shipping scalar reference for a single unit).
inline schemes::PlanVec reference_plan_line(const pcm::LineBuf& line,
                                            const pcm::LogicalLine& next,
                                            schemes::FlipCriterion crit,
                                            u32 bits) {
  TW_EXPECTS(line.units() == next.units());
  schemes::PlanVec plans;
  for (u32 i = 0; i < line.units(); ++i) {
    plans.push_back(schemes::plan_unit(line.cell(i), line.flip(i),
                                       next.word(i), crit, bits));
  }
  return plans;
}

/// Seed read stage (Algorithm 1): plan, then fold the tag transition into
/// the per-unit SET/RESET counts.
inline core::ReadStageResult reference_read_stage(const pcm::LineBuf& line,
                                                  const pcm::LogicalLine& next,
                                                  u32 bits) {
  core::ReadStageResult r;
  r.plans = reference_plan_line(line, next,
                                schemes::FlipCriterion::kHamming, bits);
  r.counts.reserve(r.plans.size());
  for (u32 i = 0; i < r.plans.size(); ++i) {
    const auto& p = r.plans[i];
    core::UnitCounts c;
    c.unit = i;
    c.n1 = p.sets;
    c.n0 = p.resets;
    if (p.tag_changed) {
      if (p.tag_to_one) {
        ++c.n1;
      } else {
        ++c.n0;
      }
    }
    if (p.flip) ++r.flipped_units;
    r.counts.push_back(c);
  }
  return r;
}

namespace detail {

struct RefItem {
  u32 unit;
  u32 current;
};

using RefItemVec = InlineVec<RefItem, pcm::kMaxUnitsPerLine>;

/// Seed sort: decreasing current demand, index ascending, by insertion.
inline RefItemVec reference_sorted_items(std::span<const core::UnitCounts> counts,
                                         bool write1_phase,
                                         const core::PackerConfig& cfg) {
  RefItemVec items;
  const bool ordered = cfg.order != core::PackOrder::kFirstFitArrival;
  for (const auto& c : counts) {
    const u32 demand = write1_phase ? c.n1 : c.n0 * cfg.l;
    if (demand == 0) continue;
    const RefItem it{c.unit, demand};
    if (!ordered) {
      items.push_back(it);
      continue;
    }
    items.push_back(it);
    std::size_t j = items.size() - 1;
    while (j > 0 && (items[j - 1].current < it.current ||
                     (items[j - 1].current == it.current &&
                      items[j - 1].unit > it.unit))) {
      items[j] = items[j - 1];
      --j;
    }
    items[j] = it;
  }
  return items;
}

}  // namespace detail

/// Seed Algorithm 2: two-phase first-fit-decreasing packing with linear
/// per-slot scans. Bit-identical outputs (placements, result/subresult,
/// slot_power, fit_checks) to the shipped core::pack() by construction.
inline core::PackResult reference_pack(std::span<const core::UnitCounts> counts,
                                       const core::PackerConfig& cfg) {
  TW_EXPECTS(cfg.valid());
  core::PackResult r;

  InlineVec<u32, pcm::kMaxUnitsPerLine> wu_power;
  struct UnitSpan {
    u32 lo = 0;
    u32 hi = 0;
  };
  InlineVec<UnitSpan, pcm::kMaxUnitsPerLine> span_of_unit;
  span_of_unit.resize(counts.size(), UnitSpan{});

  const bool best_fit = cfg.order == core::PackOrder::kBestFitDecreasing;
  for (const detail::RefItem& it :
       detail::reference_sorted_items(counts, /*write1_phase=*/true, cfg)) {
    core::Write1Slot slot;
    slot.unit = it.unit;
    slot.current = it.current;
    if (it.current > cfg.budget) {
      slot.passes = static_cast<u32>(ceil_div(it.current, cfg.budget));
      slot.write_unit = static_cast<u32>(wu_power.size());
      const u32 remainder = it.current - (slot.passes - 1) * cfg.budget;
      for (u32 p = 0; p + 1 < slot.passes; ++p) wu_power.push_back(cfg.budget);
      wu_power.push_back(remainder);
    } else {
      u32 target = static_cast<u32>(wu_power.size());
      for (u32 w = 0; w < wu_power.size(); ++w) {
        ++r.fit_checks;
        if (wu_power[w] + it.current > cfg.budget) continue;
        if (!best_fit) {
          target = w;
          break;
        }
        if (target == wu_power.size() || wu_power[w] > wu_power[target]) {
          target = w;
        }
      }
      if (target == wu_power.size()) wu_power.push_back(0);
      wu_power[target] += it.current;
      slot.write_unit = target;
    }
    TW_ASSERT(it.unit < span_of_unit.size());
    span_of_unit[it.unit] = {slot.write_unit, slot.write_unit + slot.passes};
    r.write1_queue.push_back(slot);
  }
  r.result = static_cast<u32>(wu_power.size());

  auto& slots = r.slot_power;
  slots.reserve(static_cast<std::size_t>(r.result) * cfg.k);
  for (u32 w = 0; w < r.result; ++w) {
    for (u32 s = 0; s < cfg.k; ++s) slots.push_back(wu_power[w]);
  }
  const u32 wu_slot_count = static_cast<u32>(slots.size());

  for (const detail::RefItem& it :
       detail::reference_sorted_items(counts, /*write1_phase=*/false, cfg)) {
    core::Write0Slot slot;
    slot.unit = it.unit;
    slot.current = it.current;
    const auto [self_lo, self_hi] = span_of_unit[it.unit];
    const u32 forbid_lo = cfg.forbid_self_overlap ? self_lo * cfg.k : 0;
    const u32 forbid_hi = cfg.forbid_self_overlap ? self_hi * cfg.k : 0;

    if (it.current > cfg.budget) {
      slot.passes = static_cast<u32>(ceil_div(it.current, cfg.budget));
      slot.sub_slot = static_cast<u32>(slots.size());
      const u32 remainder = it.current - (slot.passes - 1) * cfg.budget;
      for (u32 p = 0; p + 1 < slot.passes; ++p) slots.push_back(cfg.budget);
      slots.push_back(remainder);
      r.subresult += slot.passes;
    } else {
      u32 target = static_cast<u32>(slots.size());
      for (u32 s = 0; s < slots.size(); ++s) {
        ++r.fit_checks;
        if (s >= forbid_lo && s < forbid_hi) continue;
        if (slots[s] + it.current > cfg.budget) continue;
        if (!best_fit) {
          target = s;
          break;
        }
        if (target == slots.size() || slots[s] > slots[target]) target = s;
      }
      if (target == slots.size()) {
        slots.push_back(0);
        ++r.subresult;
      }
      slots[target] += it.current;
      slot.sub_slot = target;
    }
    r.write0_queue.push_back(slot);
  }
  TW_ENSURES(slots.size() == wu_slot_count + r.subresult);
  return r;
}

}  // namespace tw::testref
