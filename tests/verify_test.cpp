// Differential verification tests: every production write scheme runs
// side by side with the bit-serial oracle (corner cases + 10k randomized
// line pairs per scheme), the InvariantMonitor re-checks production
// schedules/traces/pulse streams, and planted mutants prove the checkers
// actually catch divergence (corrupted cells, lying counters, cheated
// latency, budget-overflowing schedules, doubly-driven cells).

#include <gtest/gtest.h>

#include <cstdlib>

#include "tw/common/env.hpp"
#include "tw/common/rng.hpp"
#include "tw/core/factory.hpp"
#include "tw/core/hw_executor.hpp"
#include "tw/sim/simulator.hpp"
#include "tw/verify/differential.hpp"
#include "tw/verify/invariant_monitor.hpp"

namespace tw {
namespace {

using schemes::SchemeKind;

pcm::LineBuf random_line(Rng& rng, u32 units) {
  pcm::LineBuf line(units);
  for (u32 i = 0; i < units; ++i) {
    line.set_cell(i, rng.next());
    line.set_flip(i, rng.chance(0.1));
  }
  return line;
}

pcm::LogicalLine random_mutation(Rng& rng, const pcm::LineBuf& line,
                                 double flip_rate) {
  pcm::LogicalLine next(line.units());
  for (u32 i = 0; i < line.units(); ++i) {
    u64 w = line.logical(i);
    for (u32 b = 0; b < 64; ++b) {
      if (rng.chance(flip_rate)) w ^= (u64{1} << b);
    }
    next.set_word(i, w);
  }
  return next;
}

class DifferentialAllSchemes
    : public ::testing::TestWithParam<SchemeKind> {};

// Deterministic corner cases, written as a sequence so state (tags set by
// earlier flips, all-SET / all-RESET cells) carries into the next write.
TEST_P(DifferentialAllSchemes, CornerCases) {
  const pcm::PcmConfig cfg = pcm::table2_config();
  const auto scheme = core::make_scheme(GetParam(), cfg);
  verify::DifferentialChecker checker(*scheme);
  const u32 units = cfg.geometry.units_per_line();

  pcm::LineBuf line(units);  // fresh line: all zeros, tags clear
  auto write = [&](auto word_of) {
    pcm::LogicalLine next(units);
    for (u32 i = 0; i < units; ++i) next.set_word(i, word_of(i));
    checker.check_write(line, next);
  };

  write([](u32) { return ~u64{0}; });  // all-zeros -> all-ones (max SETs)
  write([](u32) { return u64{0}; });   // all-ones -> all-zeros: the
                                       // worst-case full-RESET unit
  write([](u32) { return u64{1}; });   // single-bit flip per unit
  write([](u32) { return u64{1}; });   // identical rewrite (silent for
                                       // comparison-based schemes)
  write([](u32 i) {                    // alternating patterns
    return i % 2 ? 0xAAAA'AAAA'AAAA'AAAAull : 0x5555'5555'5555'5555ull;
  });
  write([](u32 i) {                    // full inversion of the alternation
    return i % 2 ? 0x5555'5555'5555'5555ull : 0xAAAA'AAAA'AAAA'AAAAull;
  });
  write([units](u32 i) {               // one worst-case unit, rest silent
    return i == units - 1 ? u64{0} : (i % 2 ? 0x5555'5555'5555'5555ull
                                            : 0xAAAA'AAAA'AAAA'AAAAull);
  });
  EXPECT_EQ(checker.report().writes, 7u);
}

// The acceptance sweep: 10k seeded-random (old line, new line) pairs per
// scheme, mixing in-place evolution with fresh lines and flip rates from
// sparse to adversarial.
TEST_P(DifferentialAllSchemes, TenThousandRandomPairs) {
  const pcm::PcmConfig cfg = pcm::table2_config();
  const auto scheme = core::make_scheme(GetParam(), cfg);
  verify::DifferentialChecker checker(*scheme);
  const u32 units = cfg.geometry.units_per_line();
  Rng rng(0xDEADBEEF ^ static_cast<u64>(GetParam()));

  pcm::LineBuf line = random_line(rng, units);
  for (int i = 0; i < 10'000; ++i) {
    if (rng.chance(0.05)) line = random_line(rng, units);
    const double rate = rng.chance(0.1) ? 1.0 : rng.uniform() * 0.7;
    const pcm::LogicalLine next = random_mutation(rng, line, rate);
    checker.check_write(line, next);
  }
  EXPECT_EQ(checker.report().writes, 10'000u);
  EXPECT_GT(checker.report().cells_compared, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, DifferentialAllSchemes,
    ::testing::Values(SchemeKind::kConventional, SchemeKind::kDcw,
                      SchemeKind::kFlipNWrite, SchemeKind::kTwoStage,
                      SchemeKind::kThreeStage, SchemeKind::kTetris,
                      SchemeKind::kFlipNWriteActual,
                      SchemeKind::kTwoStageActual,
                      SchemeKind::kThreeStageActual, SchemeKind::kPreset,
                      SchemeKind::kPresetActual));

// Differential checking holds across geometries and budgets, not just
// the Table II point.
TEST(DifferentialGeometry, SweepsLineSizeAndBudget) {
  for (const u32 line_bytes : {64u, 128u, 256u}) {
    for (const u32 chip_budget : {8u, 32u, 64u}) {
      pcm::PcmConfig cfg = pcm::table2_config();
      cfg.geometry.cache_line_bytes = line_bytes;
      cfg.power.chip_budget = chip_budget;
      const u32 units = cfg.geometry.units_per_line();
      Rng rng(line_bytes * 977 + chip_budget);
      for (const auto kind : schemes::kPaperSchemes) {
        const auto scheme = core::make_scheme(kind, cfg);
        verify::DifferentialChecker checker(*scheme);
        pcm::LineBuf line = random_line(rng, units);
        for (int i = 0; i < 50; ++i) {
          const pcm::LogicalLine next =
              random_mutation(rng, line, rng.uniform() * 0.5);
          checker.check_write(line, next);
        }
      }
    }
  }
}

// ------------------------------------------------------------- oracle ----
TEST(Oracle, SilentAndWorstCaseClassification) {
  const pcm::PcmConfig cfg = pcm::table2_config();
  const verify::OracleScheme oracle(
      cfg, {schemes::FlipCriterion::kNone,
            schemes::PulsePolicy::kChangedCells, false});
  pcm::LineBuf line(8);
  pcm::LogicalLine next(8);

  // Nothing changes: silent, zero envelope floor, zero energy.
  verify::OracleResult r = oracle.write(line, next);
  EXPECT_TRUE(r.silent);
  EXPECT_EQ(r.programmed.total(), 0u);
  EXPECT_EQ(r.pulse_lower, 0u);
  EXPECT_DOUBLE_EQ(r.energy_lower_pj, 0.0);

  // All 512 cells SET: the floor is a full Tset and 512 SET pulses.
  for (u32 i = 0; i < 8; ++i) next.set_word(i, ~u64{0});
  r = oracle.write(line, next);
  EXPECT_FALSE(r.silent);
  EXPECT_EQ(r.programmed.sets, 512u);
  EXPECT_EQ(r.programmed.resets, 0u);
  EXPECT_EQ(r.pulse_lower, cfg.timing.t_set);
  EXPECT_GT(r.area_lower, 0u);
  // The energy floor quantifies over flip choices: storing the inversion
  // (all zeros, tag set) costs only one tag SET per unit.
  EXPECT_NEAR(r.energy_lower_pj, 8 * cfg.energy.set_pj, 1e-9);
}

TEST(Oracle, PresetBackgroundAccounting) {
  const pcm::PcmConfig cfg = pcm::table2_config();
  const verify::OracleScheme oracle(
      cfg, {schemes::FlipCriterion::kNone, schemes::PulsePolicy::kResetOnly,
            false});
  pcm::LineBuf line(8);  // all cells 0, tags clear
  pcm::LogicalLine next(8);
  for (u32 i = 0; i < 8; ++i) next.set_word(i, ~u64{0});  // no zero bits

  const verify::OracleResult r = oracle.write(line, next);
  // Critical path: only the 8 tag RESETs (data has no zeros).
  EXPECT_EQ(r.programmed.resets, 8u);
  EXPECT_EQ(r.programmed.sets, 0u);
  // Background: every data cell (8 x 64) plus every clear tag pre-SET.
  EXPECT_EQ(r.background.sets, 8u * 64 + 8u);
  EXPECT_EQ(r.flipped_units, 0u);
  EXPECT_FALSE(r.silent);
}

// ----------------------------------------------------- mutant catching ----
// Test-only mutant schemes: DCW look-alikes with one planted bug each.
// The differential checker must catch every one of them.
class MutantDcw : public schemes::WriteScheme {
 public:
  explicit MutantDcw(const pcm::PcmConfig& cfg) : WriteScheme(cfg) {}
  std::string_view name() const override { return "mutant-dcw"; }
  SchemeKind kind() const override { return SchemeKind::kDcw; }
  schemes::WriteSemantics semantics() const override {
    return {schemes::FlipCriterion::kNone,
            schemes::PulsePolicy::kChangedCells, false};
  }
  schemes::ServicePlan plan_write(
      pcm::LineBuf& line, const pcm::LogicalLine& next) const override {
    const auto& g = cfg_.geometry;
    const auto plans = schemes::plan_line(
        line, next, schemes::FlipCriterion::kNone, g.data_unit_bits);
    schemes::ServicePlan s;
    s.read_before_write = true;
    s.programmed = schemes::total_transitions(plans);
    s.silent = s.programmed.total() == 0;
    s.latency =
        cfg_.timing.t_read + g.units_per_line() * cfg_.timing.t_set;
    schemes::apply_plans(line, plans);
    mutate(line, s);
    return s;
  }

 protected:
  virtual void mutate(pcm::LineBuf& line, schemes::ServicePlan& s) const = 0;
};

class BitrotMutant final : public MutantDcw {
  using MutantDcw::MutantDcw;
  void mutate(pcm::LineBuf& line, schemes::ServicePlan&) const override {
    line.set_cell(0, line.cell(0) ^ 1u);  // corrupt one stored bit
  }
};

class TagDropMutant final : public MutantDcw {
  using MutantDcw::MutantDcw;
  void mutate(pcm::LineBuf& line, schemes::ServicePlan&) const override {
    line.set_flip(0, !line.flip(0));  // corrupt one flip tag
  }
};

class CountLiarMutant final : public MutantDcw {
  using MutantDcw::MutantDcw;
  void mutate(pcm::LineBuf&, schemes::ServicePlan& s) const override {
    s.programmed.sets += 1;  // report one pulse too many
  }
};

class LatencyCheatMutant final : public MutantDcw {
  using MutantDcw::MutantDcw;
  void mutate(pcm::LineBuf&, schemes::ServicePlan& s) const override {
    s.latency = 1;  // below any physically possible pulse train
  }
};

template <typename Mutant>
void expect_mutant_caught() {
  const pcm::PcmConfig cfg = pcm::table2_config();
  const Mutant mutant(cfg);
  verify::DifferentialChecker checker(mutant);
  Rng rng(7);
  pcm::LineBuf line = random_line(rng, 8);
  const pcm::LogicalLine next = random_mutation(rng, line, 0.3);
  EXPECT_THROW(checker.check_write(line, next), verify::VerifyError);
}

TEST(MutantCatching, CorruptedCellDetected) {
  expect_mutant_caught<BitrotMutant>();
}
TEST(MutantCatching, CorruptedTagDetected) {
  expect_mutant_caught<TagDropMutant>();
}
TEST(MutantCatching, LyingPulseCountDetected) {
  expect_mutant_caught<CountLiarMutant>();
}
TEST(MutantCatching, CheatedLatencyDetected) {
  expect_mutant_caught<LatencyCheatMutant>();
}

// The acceptance-criterion mutant: a "smarter" packer that merges every
// write-1 into write unit 0, drawing 3x the bank budget at once. The
// monitor must reject both the schedule and the trace it implies.
TEST(MutantCatching, BudgetOverflowScheduleDetected) {
  core::PackerConfig pc;
  pc.k = 8;
  pc.l = 2;
  pc.budget = 32;
  const pcm::TimingParams timing = pcm::table2_config().timing;
  const std::vector<core::UnitCounts> counts{{0, 32, 0}, {1, 32, 0},
                                             {2, 32, 0}};
  const core::PackResult honest = core::pack(counts, pc);
  verify::InvariantMonitor monitor(pc, timing);
  monitor.check_schedule(counts, honest);  // the real packer passes

  core::PackResult mutant = honest;
  for (auto& w : mutant.write1_queue) w.write_unit = 0;
  mutant.result = 1;
  mutant.slot_power.assign(pc.k, 96);  // "honest" bookkeeping of the bug
  EXPECT_THROW(monitor.check_schedule(counts, mutant),
               verify::VerifyError);

  // The same bug expressed as an executed trace: three simultaneous
  // full-budget SET pulses in one write unit.
  core::FsmTrace trace;
  for (u32 u = 0; u < 3; ++u) {
    core::FsmEvent e;
    e.fsm = 1;
    e.unit = u;
    e.slot = 0;
    e.current = 32;
    e.start = 0;
    e.end = timing.t_set;
    trace.events.push_back(e);
  }
  EXPECT_THROW(monitor.check_trace(trace, mutant), verify::VerifyError);
}

TEST(MutantCatching, ResetOutsideInterspaceDetected) {
  core::PackerConfig pc;
  pc.k = 8;
  pc.l = 2;
  pc.budget = 32;
  const pcm::TimingParams timing = pcm::table2_config().timing;
  verify::InvariantMonitor monitor(pc, timing);

  core::PackResult pack;
  pack.result = 1;
  pack.slot_power.assign(pc.k, 0);
  core::FsmTrace trace;
  core::FsmEvent e;
  e.fsm = 0;
  e.unit = 0;
  e.slot = 2;
  e.current = 4;
  // Misaligned: the pulse starts mid-interspace instead of at its
  // sub-slot boundary, so it no longer fits its donor window.
  e.start = 2 * (timing.t_set / pc.k) + 1000;
  e.end = e.start + timing.t_reset;
  trace.events.push_back(e);
  EXPECT_THROW(monitor.check_trace(trace, pack), verify::VerifyError);
}

TEST(MutantCatching, ResetPulseWiderThanSubSlotDetected) {
  // With K = 16 a sub-write-unit (Tset/16 = 26.875 ns) can no longer
  // contain a 53 ns RESET pulse: the monitor rejects the configuration
  // before looking at any event.
  core::PackerConfig pc;
  pc.k = 16;
  pc.l = 2;
  pc.budget = 32;
  verify::InvariantMonitor monitor(pc, pcm::table2_config().timing);
  const core::PackResult empty_pack;
  const core::FsmTrace empty_trace;
  EXPECT_THROW(monitor.check_trace(empty_trace, empty_pack),
               verify::VerifyError);
}

TEST(MutantCatching, DoubleDrivenCellDetected) {
  core::PackerConfig pc;
  verify::InvariantMonitor monitor(pc, pcm::table2_config().timing);
  monitor.begin_write();
  monitor.on_pulse(7, core::WritePass::kSet, pcm::ProgramResult::kOk);
  // The RESET FSM touching the same cell is the bug the PROG-enable
  // gating must make impossible.
  EXPECT_THROW(
      monitor.on_pulse(7, core::WritePass::kReset, pcm::ProgramResult::kOk),
      verify::VerifyError);

  // A fresh write resets the ledger: the same cell is fine again.
  monitor.begin_write();
  monitor.on_pulse(7, core::WritePass::kReset, pcm::ProgramResult::kOk);
  EXPECT_GE(monitor.stats().pulses_checked, 3u);
}

// --------------------------------------------- production stays clean ----
TEST(InvariantMonitor, ProductionSchedulesAndTracesPass) {
  const pcm::PcmConfig cfg = pcm::table2_config();
  const core::TetrisScheme scheme(cfg);
  Rng rng(20240806);
  verify::InvariantMonitor monitor(
      core::PackerConfig{cfg.k(), cfg.l(), cfg.bank_power_budget()},
      cfg.timing);
  for (int i = 0; i < 500; ++i) {
    const pcm::LineBuf line = random_line(rng, 8);
    const pcm::LogicalLine next =
        random_mutation(rng, line, rng.uniform() * 0.8);
    const core::TetrisAnalysis a = scheme.analyze(line, next);
    monitor.check_schedule(a.read.counts, a.pack);
    const core::FsmTrace trace =
        core::execute_fsms(a.pack, a.packer_cfg, cfg.timing);
    monitor.check_trace(trace, a.pack);
  }
  EXPECT_EQ(monitor.stats().schedules_checked, 500u);
  EXPECT_EQ(monitor.stats().traces_checked, 500u);
  EXPECT_LE(monitor.stats().peak_current, cfg.bank_power_budget());
}

TEST(InvariantMonitor, HwExecutorPulseStreamPasses) {
  const pcm::PcmConfig cfg = pcm::table2_config();
  const core::TetrisScheme scheme(cfg);
  core::HwExecutor hw(scheme);
  verify::InvariantMonitor monitor(
      core::PackerConfig{cfg.k(), cfg.l(), cfg.bank_power_budget()},
      cfg.timing);
  hw.set_pulse_observer(&monitor);
  pcm::PcmArray array(8 * 65);
  Rng rng(99);
  for (int i = 0; i < 50; ++i) {
    pcm::LogicalLine next(8);
    for (u32 u = 0; u < 8; ++u) next.set_word(u, rng.next());
    monitor.begin_write();
    hw.write_line(array, 0, next);
    const pcm::LogicalLine readback = hw.read_line(array, 0);
    for (u32 u = 0; u < 8; ++u) ASSERT_EQ(readback.word(u), next.word(u));
  }
  EXPECT_GT(monitor.stats().pulses_checked, 0u);
}

TEST(InvariantMonitor, SimulatorHookSeesMonotonicTime) {
  verify::InvariantMonitor monitor(core::PackerConfig{},
                                   pcm::table2_config().timing);
  sim::Simulator simulator;
  simulator.set_observer(monitor.sim_hook());
  int fired = 0;
  simulator.schedule_at(ns(10), [&] { ++fired; });
  simulator.schedule_at(ns(5), [&] {
    ++fired;
    simulator.schedule_in(ns(1), [&] { ++fired; });
  });
  simulator.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(monitor.stats().sim_events_seen, 3u);
}

// -------------------------------------------------- TW_VERIFY plumbing ---
TEST(VerifyEnv, FlagArmsTetrisSelfCheck) {
  unsetenv("TW_VERIFY");
  EXPECT_FALSE(verify_env_enabled());
  EXPECT_FALSE(
      core::TetrisScheme(pcm::table2_config()).options().self_check);

  setenv("TW_VERIFY", "1", 1);
  EXPECT_TRUE(verify_env_enabled());
  const core::TetrisScheme armed(pcm::table2_config());
  EXPECT_TRUE(armed.options().self_check);

  // A write under self-check mode still completes (and re-verifies its
  // own schedule through verify_pack + the FSM model en route).
  Rng rng(3);
  pcm::LineBuf line = random_line(rng, 8);
  const pcm::LogicalLine next = random_mutation(rng, line, 0.4);
  const schemes::ServicePlan p = armed.plan_write(line, next);
  EXPECT_GT(p.latency, 0u);

  setenv("TW_VERIFY", "0", 1);
  EXPECT_FALSE(verify_env_enabled());
  unsetenv("TW_VERIFY");
}

TEST(VerifyEnv, ExplicitOptInSurvivesSelfCheckOverride) {
  unsetenv("TW_VERIFY");
  core::TetrisOptions opts;
  opts.self_check = true;  // explicit opt-in works without the env flag
  const core::TetrisScheme scheme(pcm::table2_config(), opts);
  EXPECT_TRUE(scheme.options().self_check);
}

}  // namespace
}  // namespace tw
