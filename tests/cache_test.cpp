// Unit tests for the set-associative cache and the 3-level hierarchy.

#include <gtest/gtest.h>

#include "tw/cache/cache.hpp"
#include "tw/cache/hierarchy.hpp"
#include "tw/common/rng.hpp"

namespace tw::cache {
namespace {

CacheConfig tiny(u32 ways = 2) {
  CacheConfig c;
  c.size_bytes = 1024;
  c.ways = ways;
  c.line_bytes = 64;
  c.latency_cycles = 2;
  c.name = "tiny";
  return c;
}

TEST(Cache, GeometryDerivation) {
  const CacheConfig c = tiny(2);
  EXPECT_EQ(c.sets(), 8u);
  EXPECT_TRUE(c.valid());
}

TEST(Cache, InvalidGeometryRejected) {
  CacheConfig c = tiny();
  c.size_bytes = 1000;  // not divisible
  EXPECT_THROW(Cache{c}, ContractViolation);
}

TEST(Cache, MissThenHit) {
  Cache c(tiny());
  EXPECT_FALSE(c.access(0x0, false).hit);
  EXPECT_TRUE(c.access(0x0, false).hit);
  EXPECT_TRUE(c.access(0x3F, false).hit);  // same line
  EXPECT_FALSE(c.access(0x40, false).hit);  // next line
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruEviction) {
  Cache c(tiny(2));  // 8 sets, 2 ways; lines 0, 8, 16 share set 0
  const Addr a = 0 * 64, b = 8 * 64, d = 16 * 64;
  c.access(a, false);
  c.access(b, false);
  c.access(a, false);      // a is MRU
  c.access(d, false);      // evicts b (LRU)
  EXPECT_TRUE(c.contains(a));
  EXPECT_FALSE(c.contains(b));
  EXPECT_TRUE(c.contains(d));
}

TEST(Cache, DirtyEvictionReportsWriteback) {
  Cache c(tiny(1));  // direct-mapped: 16 sets
  const Addr a = 0, b = 16 * 64;  // same set
  c.access(a, /*is_write=*/true);
  const AccessResult r = c.access(b, false);
  ASSERT_TRUE(r.writeback.has_value());
  EXPECT_EQ(*r.writeback, a);
  EXPECT_EQ(c.writebacks(), 1u);
}

TEST(Cache, CleanEvictionSilent) {
  Cache c(tiny(1));
  c.access(0, false);
  const AccessResult r = c.access(16 * 64, false);
  EXPECT_FALSE(r.writeback.has_value());
}

TEST(Cache, WriteMarksDirtyOnHitToo) {
  Cache c(tiny(1));
  c.access(0, false);
  c.access(0, true);  // hit-store dirties
  const AccessResult r = c.access(16 * 64, false);
  EXPECT_TRUE(r.writeback.has_value());
}

TEST(Cache, InvalidateReturnsDirtyAddress) {
  Cache c(tiny());
  c.access(0x40, true);
  EXPECT_EQ(c.invalidate(0x40), std::optional<Addr>{0x40});
  EXPECT_FALSE(c.contains(0x40));
  EXPECT_EQ(c.invalidate(0x40), std::nullopt);  // already gone
}

TEST(Cache, HitRate) {
  Cache c(tiny());
  c.access(0, false);
  c.access(0, false);
  c.access(0, false);
  EXPECT_NEAR(c.hit_rate(), 2.0 / 3.0, 1e-12);
}

TEST(Cache, WritebackAddressRoundTrips) {
  // The reconstructed writeback address must map to the same set/tag.
  Cache c(tiny(1));
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const Addr a = (rng.below(1 << 20)) * 64;
    const AccessResult r = c.access(a, true);
    if (r.writeback) {
      EXPECT_NE(*r.writeback, a);
      EXPECT_EQ(*r.writeback % 64, 0u);
    }
  }
}

// -------------------------------------------------------------- hierarchy --
TEST(Hierarchy, Table2Defaults) {
  const HierarchyConfig cfg;
  EXPECT_EQ(cfg.l1d.latency_cycles, 2u);
  EXPECT_EQ(cfg.l2.latency_cycles, 20u);
  EXPECT_EQ(cfg.l3.latency_cycles, 50u);
  EXPECT_EQ(cfg.l2.size_bytes, 2u * 1024 * 1024);
  EXPECT_EQ(cfg.l3.size_bytes, 32ull * 1024 * 1024);
  Hierarchy h(cfg);  // must construct
}

TEST(Hierarchy, FirstAccessMissesToMemory) {
  Hierarchy h{HierarchyConfig{}};
  const HierarchyResult r = h.access(0x1000, false);
  EXPECT_TRUE(r.memory_read);
  EXPECT_EQ(r.hit_level, 0u);
  EXPECT_EQ(r.latency_cycles, 2u + 20u + 50u);
}

TEST(Hierarchy, SecondAccessHitsL1) {
  Hierarchy h{HierarchyConfig{}};
  h.access(0x1000, false);
  const HierarchyResult r = h.access(0x1000, false);
  EXPECT_FALSE(r.memory_read);
  EXPECT_EQ(r.hit_level, 1u);
  EXPECT_EQ(r.latency_cycles, 2u);
}

TEST(Hierarchy, DirtyLinesEventuallyReachMemory) {
  // Small custom hierarchy so evictions happen quickly.
  HierarchyConfig cfg;
  cfg.l1d = CacheConfig{1024, 2, 64, 2, "L1D"};
  cfg.l2 = CacheConfig{2048, 2, 64, 20, "L2"};
  cfg.l3 = CacheConfig{4096, 2, 64, 50, "L3"};
  Hierarchy h(cfg);
  Rng rng(1);
  u64 memory_writes = 0;
  for (int i = 0; i < 5000; ++i) {
    const Addr a = rng.below(1 << 14) * 64;
    const HierarchyResult r = h.access(a, rng.chance(0.5));
    memory_writes += r.memory_writebacks.size();
  }
  EXPECT_GT(memory_writes, 100u);
}

TEST(Hierarchy, WorkingSetInL2NeverTouchesMemoryAfterWarmup) {
  Hierarchy h{HierarchyConfig{}};
  // 128 lines = 8 KB: fits L1 (32 KB) easily.
  for (int pass = 0; pass < 3; ++pass) {
    for (Addr a = 0; a < 128 * 64; a += 64) {
      const HierarchyResult r = h.access(a, false);
      if (pass > 0) {
        EXPECT_FALSE(r.memory_read);
        EXPECT_EQ(r.hit_level, 1u);
      }
    }
  }
}

}  // namespace
}  // namespace tw::cache
