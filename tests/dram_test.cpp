// DRAM front tier: config validation, hit/miss/writeback/clean-evict
// accounting, LRU-vs-MAC policy divergence, MAC same-bank writeback
// grouping, miss-path backpressure, passthrough identity when disabled,
// and lockstep determinism with the tier enabled.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "tw/harness/experiment.hpp"
#include "tw/mem/address_map.hpp"
#include "tw/mem/dram_tier.hpp"
#include "tw/pcm/params.hpp"
#include "tw/sim/simulator.hpp"
#include "tw/stats/registry.hpp"
#include "tw/workload/profiles.hpp"

namespace tw {
namespace {

pcm::GeometryParams geometry() {
  return pcm::GeometryParams{};  // Table II: 8 banks, 1 rank, 64 B lines
}

/// A tier config small enough to force evictions with a handful of lines.
mem::DramConfig tiny_config(u32 sets, u32 ways) {
  mem::DramConfig d;
  d.enabled = true;
  d.capacity_bytes = u64{sets} * ways * 64;  // one channel, 64 B lines
  d.ways = ways;
  return d;
}

mem::MemoryRequest make_write(u64 line_index, u32 units) {
  mem::MemoryRequest r;
  r.addr = line_index * 64;
  r.type = mem::ReqType::kWrite;
  r.core = 0;
  r.data = pcm::LogicalLine(units);
  for (u32 u = 0; u < units; ++u) r.data.set_word(u, line_index * 100 + u);
  return r;
}

mem::MemoryRequest make_read(u64 line_index) {
  mem::MemoryRequest r;
  r.addr = line_index * 64;
  r.type = mem::ReqType::kRead;
  r.core = 0;
  return r;
}

/// Everything a unit test needs to drive one DramTier directly: the tier,
/// its simulator/registry, and a vector capturing forwarded PCM requests.
struct TierRig {
  explicit TierRig(const mem::DramConfig& cfg)
      : map(geometry()), tier(sim, cfg, map, /*channel=*/0, reg) {
    tier.set_forward([this](mem::MemoryRequest& r) {
      if (refuse_forwards) return false;
      forwarded.push_back(std::move(r));
      return true;
    });
    tier.set_read_callback(
        [this](const mem::MemoryRequest& r) { reads_done.push_back(r.addr); });
    tier.set_write_callback(
        [this](const mem::MemoryRequest& r) { writes_done.push_back(r.addr); });
  }

  u64 hits() { return reg.counter("mem.dram_hits").value(); }
  u64 misses() { return reg.counter("mem.dram_misses").value(); }
  u64 writebacks() { return reg.counter("mem.dram_writebacks").value(); }
  u64 clean_evicts() { return reg.counter("mem.dram_clean_evicts").value(); }
  u64 group_cleans() { return reg.counter("mem.dram_group_cleans").value(); }

  sim::Simulator sim;
  stats::Registry reg;
  mem::AddressMap map;
  mem::DramTier tier;
  bool refuse_forwards = false;
  std::vector<mem::MemoryRequest> forwarded;
  std::vector<Addr> reads_done;
  std::vector<Addr> writes_done;
};

// ---------------------------------------------------- config validation --

TEST(DramConfig, DisabledConfigIsAlwaysValid) {
  mem::DramConfig d;
  d.ways = 0;  // nonsense, but the tier is off
  EXPECT_TRUE(d.error(geometry()).empty());
}

TEST(DramConfig, ZeroWaysRejected) {
  mem::DramConfig d;
  d.enabled = true;
  d.ways = 0;
  EXPECT_NE(d.error(geometry()).find("dram.ways"), std::string::npos);
}

TEST(DramConfig, NonPowerOfTwoSetCountGetsActionableError) {
  mem::DramConfig d = tiny_config(3, 1);  // 3 sets
  const std::string err = d.error(geometry());
  EXPECT_NE(err.find("power-of-two"), std::string::npos) << err;
}

TEST(DramConfig, CapacityTooSmallForOneSetRejected) {
  mem::DramConfig d;
  d.enabled = true;
  d.capacity_bytes = 64;  // one line, 8 ways
  const std::string err = d.error(geometry());
  EXPECT_NE(err.find("capacity"), std::string::npos) << err;
}

// --------------------------------------------------- hit/miss accounting --

TEST(DramTier, WriteAllocateMissThenHitsCompleteInDram) {
  TierRig rig(tiny_config(2, 2));
  const u32 units = geometry().units_per_line();
  ASSERT_EQ(rig.tier.sets(), 2u);

  // Write miss: write-allocate without fetch — nothing reaches PCM.
  ASSERT_TRUE(rig.tier.enqueue(make_write(0, units)));
  EXPECT_EQ(rig.misses(), 1u);
  EXPECT_EQ(rig.hits(), 0u);
  EXPECT_TRUE(rig.forwarded.empty());

  // Write hit, then read hit, on the same line.
  ASSERT_TRUE(rig.tier.enqueue(make_write(0, units)));
  ASSERT_TRUE(rig.tier.enqueue(make_read(0)));
  EXPECT_EQ(rig.hits(), 2u);
  EXPECT_EQ(rig.misses(), 1u);
  EXPECT_TRUE(rig.forwarded.empty());  // hits never touch the PCM path

  // The three absorbed requests complete through the tier's callbacks.
  rig.sim.run();
  EXPECT_TRUE(rig.tier.idle());
  EXPECT_EQ(rig.writes_done.size(), 2u);
  EXPECT_EQ(rig.reads_done.size(), 1u);
}

TEST(DramTier, DirtyEvictionWritesBackThenCleanEvictionIsFree) {
  TierRig rig(tiny_config(2, 2));
  const u32 units = geometry().units_per_line();

  // Set 0 holds even line indices; fill both ways dirty.
  ASSERT_TRUE(rig.tier.enqueue(make_write(0, units)));
  ASSERT_TRUE(rig.tier.enqueue(make_write(2, units)));
  EXPECT_EQ(rig.writebacks(), 0u);

  // Third distinct line in set 0: evicts LRU line 0, whose dirty data
  // must go back to PCM tagged as a tier writeback.
  ASSERT_TRUE(rig.tier.enqueue(make_write(4, units)));
  EXPECT_EQ(rig.writebacks(), 1u);
  ASSERT_EQ(rig.forwarded.size(), 1u);
  EXPECT_EQ(rig.forwarded[0].addr, 0u);
  EXPECT_TRUE(rig.forwarded[0].is_write());
  EXPECT_EQ(rig.forwarded[0].core, mem::DramTier::kWritebackCore);
  // The writeback carries the latest payload for the line.
  EXPECT_EQ(rig.forwarded[0].data.word(0), 0u * 100 + 0);

  // Read miss: evicts dirty line 2 (writeback), then forwards the demand
  // read BEHIND the writeback — strict FIFO.
  ASSERT_TRUE(rig.tier.enqueue(make_read(6)));
  ASSERT_EQ(rig.forwarded.size(), 3u);
  EXPECT_EQ(rig.forwarded[1].addr, 2u * 64);
  EXPECT_EQ(rig.forwarded[1].core, mem::DramTier::kWritebackCore);
  EXPECT_EQ(rig.forwarded[2].addr, 6u * 64);
  EXPECT_FALSE(rig.forwarded[2].is_write());
  EXPECT_EQ(rig.writebacks(), 2u);

  // Set 0 now holds {4 dirty, 6 clean}. Another read miss evicts LRU
  // line 4 (dirty, writeback); the one after that evicts clean line 6
  // for free.
  ASSERT_TRUE(rig.tier.enqueue(make_read(8)));
  EXPECT_EQ(rig.writebacks(), 3u);
  EXPECT_EQ(rig.clean_evicts(), 0u);
  ASSERT_TRUE(rig.tier.enqueue(make_read(10)));
  EXPECT_EQ(rig.writebacks(), 3u);
  EXPECT_EQ(rig.clean_evicts(), 1u);

  // PCM read completions route straight to the CPU read callback.
  rig.tier.on_pcm_read_complete(make_read(6));
  EXPECT_EQ(rig.reads_done.size(), 1u);
  EXPECT_EQ(rig.reads_done[0], 6u * 64);
  // Tier writeback completions are swallowed, demand completions are not.
  mem::MemoryRequest wb = make_write(0, units);
  wb.core = mem::DramTier::kWritebackCore;
  EXPECT_TRUE(rig.tier.absorbs_write_complete(wb));
  EXPECT_FALSE(rig.tier.absorbs_write_complete(make_write(0, units)));
}

TEST(DramTier, BackpressureRefusesWithoutStateChange) {
  mem::DramConfig d = tiny_config(2, 2);
  d.pending_limit = 1;
  TierRig rig(d);
  rig.refuse_forwards = true;  // PCM side has no credit

  // Allocate a line while the miss path is still empty.
  const u32 units = geometry().units_per_line();
  ASSERT_TRUE(rig.tier.enqueue(make_write(2, units)));
  EXPECT_EQ(rig.misses(), 1u);

  ASSERT_TRUE(rig.tier.enqueue(make_read(0)));  // pending: demand read
  EXPECT_FALSE(rig.tier.has_room());
  EXPECT_EQ(rig.misses(), 2u);

  // Any further miss — even a write, which could need a writeback slot —
  // must be refused before mutating tier state.
  EXPECT_FALSE(rig.tier.enqueue(make_read(1)));
  EXPECT_FALSE(rig.tier.enqueue(make_write(4, units)));
  EXPECT_EQ(rig.misses(), 2u);

  // Hits still complete while the miss path is backpressured.
  ASSERT_TRUE(rig.tier.enqueue(make_write(2, units)));
  EXPECT_EQ(rig.hits(), 1u);

  // Credit arrives: the pending read drains through the forward fn.
  rig.refuse_forwards = false;
  rig.tier.on_pcm_space();
  ASSERT_EQ(rig.forwarded.size(), 1u);
  EXPECT_EQ(rig.forwarded[0].addr, 0u);
  EXPECT_TRUE(rig.tier.has_room());
  ASSERT_TRUE(rig.tier.enqueue(make_read(1)));
  EXPECT_EQ(rig.misses(), 3u);
}

// ------------------------------------------------------ policy behavior --

TEST(DramPolicy, MacPrefersCleanVictimWhereLruWritesBack) {
  // One set of four ways: line 0 dirty (oldest), lines 1-3 clean.
  const u32 units = geometry().units_per_line();
  auto run_sequence = [&](mem::DramPolicy policy) {
    mem::DramConfig d = tiny_config(1, 4);
    d.policy = policy;
    auto rig = std::make_unique<TierRig>(d);
    EXPECT_TRUE(rig->tier.enqueue(make_write(0, units)));
    for (u64 li = 1; li <= 3; ++li) {
      EXPECT_TRUE(rig->tier.enqueue(make_read(li)));
    }
    // All four ways valid; a fifth line forces a replacement decision.
    EXPECT_TRUE(rig->tier.enqueue(make_read(4)));
    return rig;
  };

  auto lru = run_sequence(mem::DramPolicy::kLru);
  // LRU evicts the oldest way — the dirty line 0 — paying a PCM writeback.
  EXPECT_EQ(lru->writebacks(), 1u);
  EXPECT_EQ(lru->clean_evicts(), 0u);

  auto mac = run_sequence(mem::DramPolicy::kMac);
  // MAC prefers the LRU clean way (line 1): zero PCM write cost.
  EXPECT_EQ(mac->writebacks(), 0u);
  EXPECT_EQ(mac->clean_evicts(), 1u);
  // The dirty line must still be resident (hit, not miss).
  const u64 hits_before = mac->hits();
  EXPECT_TRUE(mac->tier.enqueue(make_write(0, units)));
  EXPECT_EQ(mac->hits(), hits_before + 1);
}

TEST(DramPolicy, MacAllDirtySetEmitsSameBankWritebackGroup) {
  // One set of four ways, all dirty: lines 0, 8, 16 share PCM bank 0
  // (line-interleaved bank = line % 8); line 3 sits on bank 3.
  mem::DramConfig d = tiny_config(1, 4);
  d.policy = mem::DramPolicy::kMac;
  d.mac_group = 4;
  TierRig rig(d);
  const u32 units = geometry().units_per_line();
  for (const u64 li : {0u, 8u, 16u, 3u}) {
    ASSERT_TRUE(rig.tier.enqueue(make_write(li, units)));
  }
  ASSERT_EQ(rig.writebacks(), 0u);

  // Fifth write: victim is LRU dirty line 0; lines 8 and 16 share its
  // bank and ride along as group cleans. Line 3 (other bank) stays dirty.
  ASSERT_TRUE(rig.tier.enqueue(make_write(5, units)));
  EXPECT_EQ(rig.writebacks(), 3u);
  EXPECT_EQ(rig.group_cleans(), 2u);
  ASSERT_EQ(rig.forwarded.size(), 3u);
  for (const auto& wb : rig.forwarded) {
    EXPECT_EQ(wb.core, mem::DramTier::kWritebackCore);
    EXPECT_EQ(rig.map.flat_bank(wb.addr), 0u)
        << "writeback group must target one PCM bank";
  }

  // Grouped ways stay resident (now clean): re-writing one is a hit.
  const u64 hits_before = rig.hits();
  ASSERT_TRUE(rig.tier.enqueue(make_write(8, units)));
  EXPECT_EQ(rig.hits(), hits_before + 1);
  // ... and it was clean, so no second writeback for it yet.
  EXPECT_EQ(rig.writebacks(), 3u);
}

TEST(DramPolicy, MacGroupRespectsConfiguredCap) {
  mem::DramConfig d = tiny_config(1, 4);
  d.policy = mem::DramPolicy::kMac;
  d.mac_group = 2;  // victim + at most one rider
  TierRig rig(d);
  const u32 units = geometry().units_per_line();
  for (const u64 li : {0u, 8u, 16u, 24u}) {  // all bank 0, all dirty
    ASSERT_TRUE(rig.tier.enqueue(make_write(li, units)));
  }
  ASSERT_TRUE(rig.tier.enqueue(make_write(5, units)));
  EXPECT_EQ(rig.writebacks(), 2u);  // victim + 1 grouped
  EXPECT_EQ(rig.group_cleans(), 1u);
}

// ------------------------------------------------- system-level behavior --

harness::SystemConfig small_config(u64 seed) {
  harness::SystemConfig cfg;
  cfg.cores = 2;
  cfg.instructions_per_core = 60'000;
  cfg.seed = seed;
  return cfg;
}

TEST(DramSystem, DisabledTierLeavesConfigHashAndMetricsUntouched) {
  // dram.enabled = false must be a pure passthrough: tweaking the other
  // dram knobs changes neither the config hash nor a run's metrics.
  harness::SystemConfig base = small_config(42);
  harness::SystemConfig tweaked = base;
  tweaked.dram.capacity_bytes = 1024 * 1024;
  tweaked.dram.policy = mem::DramPolicy::kMac;
  tweaked.dram.ways = 2;
  EXPECT_EQ(harness::config_hash(base), harness::config_hash(tweaked));

  harness::SystemConfig enabled = base;
  enabled.dram.enabled = true;
  EXPECT_NE(harness::config_hash(base), harness::config_hash(enabled));

  const auto& prof = workload::profile_by_name("vips");
  const auto a = harness::run_system(base, prof, schemes::SchemeKind::kTetris);
  const auto b =
      harness::run_system(tweaked, prof, schemes::SchemeKind::kTetris);
  ASSERT_TRUE(a.completed);
  EXPECT_EQ(a.runtime_ns, b.runtime_ns);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.ipc, b.ipc);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.dram_hits, 0u);
  EXPECT_EQ(a.dram_writebacks, 0u);
}

TEST(DramSystem, TierAbsorbsPcmWriteTraffic) {
  const auto& prof = workload::profile_by_name("vips");  // write-heavy
  harness::SystemConfig off = small_config(42);
  harness::SystemConfig on = small_config(42);
  // Strict drain only services writes when the queue FILLS; the tier cuts
  // write traffic so far below that threshold that stragglers would sit
  // queued forever. Opportunistic drain services whatever arrives.
  off.controller.drain = mem::ControllerConfig::DrainPolicy::kOpportunistic;
  on.controller.drain = mem::ControllerConfig::DrainPolicy::kOpportunistic;
  on.dram.enabled = true;
  // Small enough that the working set forces evictions: PCM must still
  // see writeback traffic, just less of it.
  on.dram.capacity_bytes = u64{32} * 1024;
  on.dram.policy = mem::DramPolicy::kMac;

  const auto m_off = harness::run_system(off, prof, schemes::SchemeKind::kDcw);
  const auto m_on = harness::run_system(on, prof, schemes::SchemeKind::kDcw);
  ASSERT_TRUE(m_off.completed);
  ASSERT_TRUE(m_on.completed);
  EXPECT_GT(m_on.dram_hits, 0u);
  EXPECT_GT(m_on.dram_misses, 0u);
  // PCM only sees the tier's writebacks now, so its write count must
  // drop below the uncached run's.
  EXPECT_LT(m_on.writes, m_off.writes);
  // With the tier on, PCM only services tier writebacks (coalescing in
  // the controller queue can merge some before service).
  EXPECT_GT(m_on.writes, 0u);
  EXPECT_LE(m_on.writes, m_on.dram_writebacks);
}

void expect_identical(const harness::RunMetrics& a,
                      const harness::RunMetrics& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.runtime_ns, b.runtime_ns);
  EXPECT_EQ(a.ipc, b.ipc);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.read_latency_ns, b.read_latency_ns);
  EXPECT_EQ(a.write_latency_ns, b.write_latency_ns);
  EXPECT_EQ(a.read_p99_ns, b.read_p99_ns);
  EXPECT_EQ(a.write_p99_ns, b.write_p99_ns);
  EXPECT_EQ(a.dram_hits, b.dram_hits);
  EXPECT_EQ(a.dram_misses, b.dram_misses);
  EXPECT_EQ(a.dram_writebacks, b.dram_writebacks);
  EXPECT_EQ(a.dram_clean_evicts, b.dram_clean_evicts);
}

TEST(DramSystem, LockstepDeterministicAcrossThreadsAndChannels) {
  // The tier lives entirely on the front domain, so enabling it must not
  // cost lockstep determinism: bit-identical metrics at every
  // (channels, sim_threads) point, for both policies.
  for (const auto policy : {mem::DramPolicy::kLru, mem::DramPolicy::kMac}) {
    for (const u32 channels : {1u, 8u}) {
      SCOPED_TRACE(std::string("policy=") + mem::dram_policy_name(policy) +
                   " channels=" + std::to_string(channels));
      std::vector<harness::RunMetrics> runs;
      for (const u32 threads : {1u, 4u}) {
        harness::SystemConfig cfg = small_config(42);
        cfg.pcm.geometry.channels = channels;
        cfg.sim_threads = threads;
        cfg.dram.enabled = true;
        cfg.dram.capacity_bytes = u64{2} * 1024 * 1024;
        cfg.dram.policy = policy;
        runs.push_back(harness::run_system(
            cfg, workload::profile_by_name("vips"),
            schemes::SchemeKind::kTetris));
      }
      EXPECT_TRUE(runs[0].completed);
      EXPECT_GT(runs[0].dram_hits, 0u);
      expect_identical(runs[0], runs[1]);
    }
  }
}

}  // namespace
}  // namespace tw
