// Observability layer tests: ring wraparound, category gating, Chrome
// trace JSON well-formedness + same-seed determinism, manifest
// provenance, metrics snapshots, and multi-thread attach (the latter is
// part of the TSAN suite).

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "tw/harness/experiment.hpp"
#include "tw/trace/chrome_sink.hpp"
#include "tw/trace/emit.hpp"
#include "tw/trace/metrics_sink.hpp"
#include "tw/trace/ring.hpp"
#include "tw/trace/tracer.hpp"
#include "tw/workload/profiles.hpp"

namespace tw {
namespace {

using trace::Category;
using trace::Kind;
using trace::Op;
using trace::TraceRecord;
using trace::TraceRing;
using trace::Track;

TraceRecord rec(Tick tick, u64 arg0 = 0) {
  TraceRecord r;
  r.tick = tick;
  r.arg0 = arg0;
  r.track = trace::track_id(Track::kKernel, 0);
  r.op = Op::kEventFire;
  r.category = Category::kKernel;
  r.kind = Kind::kInstant;
  return r;
}

TEST(TraceRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(1).capacity(), 16u);    // minimum
  EXPECT_EQ(TraceRing(16).capacity(), 16u);
  EXPECT_EQ(TraceRing(17).capacity(), 32u);
  EXPECT_EQ(TraceRing(1000).capacity(), 1024u);
}

TEST(TraceRingTest, CollectsInOrderBeforeWrap) {
  TraceRing ring(16);
  for (u64 i = 0; i < 10; ++i) ring.push(rec(i));
  EXPECT_EQ(ring.pushed(), 10u);
  EXPECT_EQ(ring.dropped(), 0u);
  std::vector<TraceRecord> out;
  ring.collect(out);
  ASSERT_EQ(out.size(), 10u);
  for (u64 i = 0; i < 10; ++i) EXPECT_EQ(out[i].tick, i);
}

TEST(TraceRingTest, WraparoundKeepsMostRecentWindow) {
  TraceRing ring(16);
  const u64 total = 100;
  for (u64 i = 0; i < total; ++i) ring.push(rec(i));
  EXPECT_EQ(ring.pushed(), total);
  EXPECT_EQ(ring.dropped(), total - 16);
  EXPECT_EQ(ring.size(), 16u);
  std::vector<TraceRecord> out;
  ring.collect(out);
  ASSERT_EQ(out.size(), 16u);
  // The survivors are exactly the newest 16, oldest first.
  for (u64 i = 0; i < 16; ++i) EXPECT_EQ(out[i].tick, total - 16 + i);
}

TEST(TraceRingTest, ClearResets) {
  TraceRing ring(16);
  for (u64 i = 0; i < 40; ++i) ring.push(rec(i));
  ring.clear();
  EXPECT_EQ(ring.pushed(), 0u);
  EXPECT_EQ(ring.size(), 0u);
  std::vector<TraceRecord> out;
  ring.collect(out);
  EXPECT_TRUE(out.empty());
}

TEST(TraceGateTest, OffWhenUnattached) {
  ASSERT_EQ(trace::g_tls.ring, nullptr);
  EXPECT_FALSE(trace::on<Category::kKernel>());
  EXPECT_FALSE(trace::on(Category::kController));
}

TEST(TraceGateTest, MaskedCategoryEmitsNothing) {
  trace::Tracer tracer(trace::category_bit(Category::kController), 256);
  {
    trace::Tracer::Attach attach(tracer);
    EXPECT_TRUE(trace::on<Category::kController>());
    EXPECT_FALSE(trace::on<Category::kFsm>());
    EXPECT_FALSE(trace::on<Category::kMetrics>());
    // A disciplined emitter checks the gate; emit only what passes.
    if (trace::on<Category::kController>()) {
      trace::emit_instant(Category::kController, Op::kReadEnqueue,
                          trace::track_id(Track::kQueue, 0), 10);
    }
    if (trace::on<Category::kFsm>()) {
      ADD_FAILURE() << "masked category passed the gate";
    }
  }
  const auto records = tracer.collect();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].category, Category::kController);
  // Detached again: the gate is off.
  EXPECT_FALSE(trace::on<Category::kController>());
}

TEST(TraceGateTest, AttachNestsAndRestores) {
  trace::Tracer outer(trace::kAllCategories, 256);
  trace::Tracer inner(trace::category_bit(Category::kCache), 256);
  {
    trace::Tracer::Attach a(outer);
    EXPECT_TRUE(trace::on<Category::kFsm>());
    {
      trace::Tracer::Attach b(inner);
      EXPECT_FALSE(trace::on<Category::kFsm>());
      EXPECT_TRUE(trace::on<Category::kCache>());
    }
    EXPECT_TRUE(trace::on<Category::kFsm>());
  }
  EXPECT_FALSE(trace::on<Category::kFsm>());
}

TEST(TraceGateTest, ScopedContextSavesAndRestores) {
  trace::g_tls.base = 0;
  trace::g_tls.track = 0;
  {
    trace::ScopedContext outer(100, 7);
    EXPECT_EQ(trace::g_tls.base, 100u);
    EXPECT_EQ(trace::g_tls.track, 7u);
    {
      trace::ScopedContext nested(200, 9);
      EXPECT_EQ(trace::g_tls.base, 200u);
    }
    EXPECT_EQ(trace::g_tls.base, 100u);
    EXPECT_EQ(trace::g_tls.track, 7u);
  }
  EXPECT_EQ(trace::g_tls.base, 0u);
}

TEST(TraceCategoryTest, ParseSpellings) {
  EXPECT_EQ(trace::parse_categories("all"), trace::kAllCategories);
  EXPECT_EQ(trace::parse_categories(""), trace::kAllCategories);
  EXPECT_EQ(trace::parse_categories("none"), 0u);
  EXPECT_EQ(trace::parse_categories("controller"),
            trace::category_bit(Category::kController));
  EXPECT_EQ(trace::parse_categories("controller,fsm"),
            trace::category_bit(Category::kController) |
                trace::category_bit(Category::kFsm));
  // Unknown names are ignored, not fatal.
  EXPECT_EQ(trace::parse_categories("bogus,cache"),
            trace::category_bit(Category::kCache));
}

TEST(TraceCategoryTest, ListRoundTrips) {
  char buf[128];
  trace::append_category_list(trace::kAllCategories, buf, sizeof(buf));
  EXPECT_EQ(trace::parse_categories(buf), trace::kAllCategories);
  const u32 two = trace::category_bit(Category::kKernel) |
                  trace::category_bit(Category::kPacker);
  trace::append_category_list(two, buf, sizeof(buf));
  EXPECT_EQ(trace::parse_categories(buf), two);
}

TEST(TraceTracerTest, CollectMergesAndSortsByTick) {
  trace::Tracer tracer(trace::kAllCategories, 256);
  {
    trace::Tracer::Attach attach(tracer);
    trace::emit(rec(30));
    trace::emit(rec(10));
    trace::emit(rec(20));
  }
  const auto records = tracer.collect();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].tick, 10u);
  EXPECT_EQ(records[1].tick, 20u);
  EXPECT_EQ(records[2].tick, 30u);
  EXPECT_EQ(tracer.total_pushed(), 3u);
  EXPECT_EQ(tracer.total_dropped(), 0u);
}

// Every thread attaches to the same tracer and hammers its own ring.
// Run under TSAN this proves emission needs no synchronization.
TEST(TraceConcurrencyTest, ManyThreadsEmitIndependently) {
  trace::Tracer tracer(trace::kAllCategories, 1u << 12);
  constexpr int kThreads = 8;
  constexpr u64 kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      trace::Tracer::Attach attach(tracer);
      for (u64 i = 0; i < kPerThread; ++i) {
        if (trace::on<Category::kKernel>()) {
          trace::emit(rec(i, static_cast<u64>(t)));
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(tracer.total_pushed(), kThreads * kPerThread);
  const auto records = tracer.collect();
  EXPECT_EQ(records.size(),
            tracer.total_pushed() - tracer.total_dropped());
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_LE(records[i - 1].tick, records[i].tick);
  }
}

// ---------------------------------------------------------------------------
// JSON sink

// Minimal structural JSON validator: strings (with escapes), balanced
// {}/[], and nothing after the top-level value. Not a full parser, but it
// rejects every truncation/quoting bug a streaming writer can make.
bool json_well_formed(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  bool top_done = false;
  for (const char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (top_done) return false;
        in_string = true;
        break;
      case '{':
      case '[':
        if (top_done) return false;
        stack.push_back(c);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        if (stack.empty()) top_done = true;
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        if (stack.empty()) top_done = true;
        break;
      default:
        if (top_done && c != ' ' && c != '\n' && c != '\t' && c != '\r') {
          return false;
        }
        break;
    }
  }
  return top_done && !in_string && stack.empty();
}

TEST(TraceJsonTest, ValidatorSanity) {
  EXPECT_TRUE(json_well_formed("{\"a\": [1, 2, {\"b\": \"x\\\"y\"}]}"));
  EXPECT_FALSE(json_well_formed("{\"a\": [1, 2}"));
  EXPECT_FALSE(json_well_formed("{\"a\": 1} trailing"));
  EXPECT_FALSE(json_well_formed("{\"a\": \"unterminated}"));
}

trace::RunManifest test_manifest() {
  trace::RunManifest m;
  m.version = "test";
  m.git_sha = trace::build_git_sha();
  m.scheme = "tetris";
  m.workload = "unit";
  m.categories = "all";
  m.config_hash = 0x1234abcd5678ef00ull;
  m.seed = 7;
  m.counter_names = {"gauge_a", "gauge_b"};
  return m;
}

TEST(TraceJsonTest, SinkEmitsWellFormedObjectFormat) {
  std::vector<TraceRecord> records;
  records.push_back(rec(1000));
  TraceRecord span;
  span.tick = 2000;
  span.arg0 = 3;
  span.arg1 = 430'000;  // 430 ns duration
  span.track = trace::track_id(Track::kFsm1, 2);
  span.op = Op::kSetPulse;
  span.category = Category::kFsm;
  span.kind = Kind::kSpan;
  records.push_back(span);
  TraceRecord counter;
  counter.tick = 3000;
  counter.track = trace::track_id(Track::kMetrics, 1);
  counter.op = Op::kGauge;
  counter.category = Category::kMetrics;
  counter.kind = Kind::kCounter;
  records.push_back(counter);

  std::ostringstream out;
  trace::write_chrome_trace(out, records, test_manifest());
  const std::string json = out.str();
  EXPECT_TRUE(json_well_formed(json)) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"set_pulse\""), std::string::npos);
  EXPECT_NE(json.find("\"gauge_b\""), std::string::npos);  // named track
  EXPECT_NE(json.find("1234abcd5678ef00"), std::string::npos);
  EXPECT_NE(json.find("\"tool\":\"tetriswrite\""), std::string::npos);
}

TEST(TraceJsonTest, EmptyTraceStillValid) {
  std::ostringstream out;
  trace::write_chrome_trace(out, {}, test_manifest());
  EXPECT_TRUE(json_well_formed(out.str()));
}

TEST(TraceMetricsTest, CsvHasHeaderAndRows) {
  std::vector<TraceRecord> records;
  TraceRecord counter;
  counter.tick = ns(1500);
  counter.track = trace::track_id(Track::kMetrics, 0);
  counter.op = Op::kGauge;
  counter.category = Category::kMetrics;
  counter.kind = Kind::kCounter;
  records.push_back(rec(10));  // non-counter records are skipped
  records.push_back(counter);
  std::ostringstream out;
  trace::write_metrics_csv(out, records, test_manifest());
  const std::string csv = out.str();
  EXPECT_EQ(csv.rfind("time_ns,name,value", 0), 0u);
  EXPECT_NE(csv.find("gauge_a"), std::string::npos);
  EXPECT_EQ(csv.find("event_fire"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Full-system traced runs

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// vips is the most write-intensive profile (WPKI 1.56), so a short run
// still pushes writes through drain -> pack -> FSM execution.
const workload::WorkloadProfile& traced_profile() {
  return workload::profile_by_name("vips");
}

harness::SystemConfig small_traced_config(const std::string& trace_path,
                                          const std::string& csv_path) {
  harness::SystemConfig cfg;
  cfg.cores = 2;
  cfg.instructions_per_core = 200'000;
  cfg.trace.chrome_path = trace_path;
  cfg.trace.metrics_path = csv_path;
  return cfg;
}

TEST(TraceSystemTest, TracedRunProducesValidJsonWithManifest) {
  const std::string path = temp_path("tw_trace_run.json");
  const std::string csv = temp_path("tw_trace_run.csv");
  const auto& profile = traced_profile();
  const harness::RunMetrics m = harness::run_system(
      small_traced_config(path, csv), profile, schemes::SchemeKind::kTetris);
  EXPECT_TRUE(m.completed);
  EXPECT_GT(m.trace_records, 0u);
  EXPECT_GT(m.trace_samples, 0u);

  const std::string json = slurp(path);
  ASSERT_FALSE(json.empty());
  EXPECT_TRUE(json_well_formed(json));
  // Manifest provenance.
  EXPECT_NE(json.find("\"tool\":\"tetriswrite\""), std::string::npos);
  EXPECT_NE(json.find("\"scheme\":\"tetris\""), std::string::npos);
  EXPECT_NE(json.find("\"workload\":\"" + profile.name + "\""),
            std::string::npos);
  EXPECT_NE(json.find("\"config_hash\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\":42"), std::string::npos);
  // Controller activity on bank tracks and FSM pulse spans made it in.
  EXPECT_NE(json.find("\"write_service\""), std::string::npos);
  EXPECT_NE(json.find("\"set_pulse\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"bank\""), std::string::npos);

  const std::string table = slurp(csv);
  EXPECT_EQ(table.rfind("time_ns,name,value", 0), 0u);
  EXPECT_NE(table.find("write_q_depth"), std::string::npos);
  std::remove(path.c_str());
  std::remove(csv.c_str());
}

TEST(TraceSystemTest, SameSeedTracesAreByteIdentical) {
  const std::string a = temp_path("tw_trace_a.json");
  const std::string b = temp_path("tw_trace_b.json");
  const auto& profile = traced_profile();
  (void)harness::run_system(small_traced_config(a, ""), profile,
                            schemes::SchemeKind::kTetris);
  (void)harness::run_system(small_traced_config(b, ""), profile,
                            schemes::SchemeKind::kTetris);
  const std::string ja = slurp(a);
  const std::string jb = slurp(b);
  ASSERT_FALSE(ja.empty());
  EXPECT_EQ(ja, jb);
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(TraceSystemTest, CategoryMaskNarrowsSystemTrace) {
  const std::string path = temp_path("tw_trace_ctl.json");
  const auto& profile = traced_profile();
  harness::SystemConfig cfg = small_traced_config(path, "");
  cfg.trace.categories = trace::category_bit(Category::kController);
  (void)harness::run_system(cfg, profile, schemes::SchemeKind::kTetris);
  const std::string json = slurp(path);
  ASSERT_FALSE(json.empty());
  EXPECT_TRUE(json_well_formed(json));
  EXPECT_NE(json.find("\"write_service\""), std::string::npos);
  EXPECT_EQ(json.find("\"set_pulse\""), std::string::npos);
  EXPECT_EQ(json.find("\"event_fire\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceSystemTest, ConfigHashDistinguishesConfigs) {
  harness::SystemConfig a;
  harness::SystemConfig b;
  EXPECT_EQ(harness::config_hash(a), harness::config_hash(b));
  b.seed = 43;
  EXPECT_NE(harness::config_hash(a), harness::config_hash(b));
  b = a;
  b.controller.write_batch = a.controller.write_batch + 1;
  EXPECT_NE(harness::config_hash(a), harness::config_hash(b));
}

TEST(TraceSystemTest, UntracedRunReportsNoTraceActivity) {
  harness::SystemConfig cfg;
  cfg.cores = 1;
  cfg.instructions_per_core = 5'000;
  EXPECT_FALSE(cfg.trace.enabled());
  const harness::RunMetrics m =
      harness::run_system(cfg, workload::parsec_profiles()[0],
                          schemes::SchemeKind::kDcw);
  EXPECT_EQ(m.trace_records, 0u);
  EXPECT_EQ(m.trace_samples, 0u);
}

// ---------------------------------------------------------------------------
// Metrics snapshotter in isolation

TEST(TraceSnapshotterTest, SamplesOnEpochAndStopsWithSim) {
  sim::Simulator sim;
  stats::Registry reg;
  trace::MetricsSnapshotter snap(sim, reg, us(1));
  double level = 0.0;
  snap.add_gauge("level", [&] { return level; });
  // Keep the sim alive for exactly 5.5 us of activity.
  for (int i = 1; i <= 11; ++i) {
    sim.schedule_at(us(1) * i / 2, [&] { level += 1.0; });
  }
  snap.start();
  sim.run();
  // Snapshots at 1..5 us while activity pends; the chain then dies with
  // the drained simulator instead of ticking forever.
  EXPECT_GE(snap.samples_taken(), 5u);
  EXPECT_LE(snap.samples_taken(), 7u);
  EXPECT_EQ(reg.accumulator("trace.level").count(), snap.samples_taken());
}

}  // namespace
}  // namespace tw
