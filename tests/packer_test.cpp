// Unit tests for the Tetris analysis-stage packer (Algorithm 2),
// including the paper's Fig. 4 worked example and randomized invariant
// sweeps via verify_pack.

#include <gtest/gtest.h>

#include "tw/common/rng.hpp"
#include "tw/core/packer.hpp"

namespace tw::core {
namespace {

PackerConfig paper_cfg() {
  PackerConfig c;
  c.k = 8;
  c.l = 2;
  c.budget = 32;  // the Fig. 4 example uses the per-chip budget of 32
  return c;
}

std::vector<UnitCounts> counts_of(std::initializer_list<std::pair<u32, u32>>
                                      n1_n0) {
  std::vector<UnitCounts> v;
  u32 i = 0;
  for (const auto& [n1, n0] : n1_n0) {
    v.push_back(UnitCounts{i++, n1, n0});
  }
  return v;
}

// ----------------------------------------------------- basic behaviours --
TEST(Packer, EmptyLine) {
  const PackResult r = pack({}, paper_cfg());
  EXPECT_EQ(r.result, 0u);
  EXPECT_EQ(r.subresult, 0u);
  EXPECT_DOUBLE_EQ(r.write_unit_equiv(8), 0.0);
}

TEST(Packer, AllZeroCountsNeedNothing) {
  const auto counts = counts_of({{0, 0}, {0, 0}, {0, 0}});
  const PackResult r = pack(counts, paper_cfg());
  EXPECT_EQ(r.result, 0u);
  EXPECT_EQ(r.subresult, 0u);
  EXPECT_TRUE(r.write1_queue.empty());
  EXPECT_TRUE(r.write0_queue.empty());
}

TEST(Packer, SingleUnitOneWriteUnit) {
  const auto counts = counts_of({{5, 0}});
  const PackResult r = pack(counts, paper_cfg());
  EXPECT_EQ(r.result, 1u);
  EXPECT_EQ(r.subresult, 0u);
  verify_pack(counts, paper_cfg(), r);
}

TEST(Packer, Write1sPackUnderBudget) {
  // 8+7+7+6+3 = 31 <= 32 fits one write unit (the Fig. 4 narrative).
  const auto counts = counts_of({{8, 0}, {7, 0}, {7, 0}, {6, 0}, {3, 0}});
  const PackResult r = pack(counts, paper_cfg());
  EXPECT_EQ(r.result, 1u);
  verify_pack(counts, paper_cfg(), r);
}

TEST(Packer, Write1OverflowOpensSecondUnit) {
  const auto counts = counts_of({{20, 0}, {20, 0}});  // 40 > 32
  const PackResult r = pack(counts, paper_cfg());
  EXPECT_EQ(r.result, 2u);
  verify_pack(counts, paper_cfg(), r);
}

TEST(Packer, PureResetLineUsesOnlySubUnits) {
  const auto counts = counts_of({{0, 4}, {0, 3}});
  const PackResult r = pack(counts, paper_cfg());
  EXPECT_EQ(r.result, 0u);
  EXPECT_GE(r.subresult, 1u);
  // Both write-0s fit one fresh sub-slot: 4*2 + 3*2 = 14 <= 32.
  EXPECT_EQ(r.subresult, 1u);
  verify_pack(counts, paper_cfg(), r);
}

TEST(Packer, Write0StealsInterspace) {
  // One write-1 heavy unit leaves 32-20=12 headroom; another unit's
  // write-0 demand 5*2=10 fits inside the same write unit's sub-slots.
  const auto counts = counts_of({{20, 0}, {0, 5}});
  const PackResult r = pack(counts, paper_cfg());
  EXPECT_EQ(r.result, 1u);
  EXPECT_EQ(r.subresult, 0u);  // stolen interspace, no extra sub-unit
  ASSERT_EQ(r.write0_queue.size(), 1u);
  EXPECT_LT(r.write0_queue[0].sub_slot, 8u);
  verify_pack(counts, paper_cfg(), r);
}

TEST(Packer, SelfOverlapCanBeForbidden) {
  // Conservative-MUX mode: a unit's write-0 may not land in its own
  // write unit's sub-slots and must spill to a trailing sub-slot.
  const auto counts = counts_of({{10, 5}});
  PackerConfig c = paper_cfg();
  c.forbid_self_overlap = true;
  const PackResult r = pack(counts, c);
  EXPECT_EQ(r.result, 1u);
  EXPECT_EQ(r.subresult, 1u);  // must spill to a trailing sub-slot
  EXPECT_GE(r.write0_queue[0].sub_slot, 8u);
  verify_pack(counts, c, r);
}

TEST(Packer, SelfOverlapAllowedByDefaultLikeFig4) {
  // The paper's Fig. 4 schedules a unit's write-0s inside its own write
  // unit (disjoint bits, independent FSMs) — the default mode.
  const auto c = paper_cfg();
  const auto counts = counts_of({{10, 5}});
  const PackResult r = pack(counts, c);
  EXPECT_EQ(r.result, 1u);
  EXPECT_EQ(r.subresult, 0u);  // 10 + 5*2 = 20 <= 32 in-slot
  verify_pack(counts, c, r);
}

TEST(Packer, Fig4StyleFullLine) {
  // Eight units echoing the Fig. 4 example mix: write-1 currents
  // 8,7,7,6,6,6,5,3 and small write-0s. With budget 32, write-1s take
  // two write units (31 + 23) and write-0s hide in the interspaces.
  const auto counts = counts_of({{8, 1},
                                 {7, 1},
                                 {7, 2},
                                 {6, 2},
                                 {6, 3},
                                 {6, 2},
                                 {5, 2},
                                 {3, 5}});
  const PackerConfig c = paper_cfg();
  const PackResult r = pack(counts, c);
  verify_pack(counts, c, r);
  EXPECT_EQ(r.result, 2u);
  EXPECT_EQ(r.subresult, 0u);
  EXPECT_DOUBLE_EQ(r.write_unit_equiv(c.k), 2.0);
  // Far better than 3-Stage-Write's 2.5 equivalent on the same data, and
  // the FSMs never exceed the budget (verified above).
}

TEST(Packer, DecreasingOrderIsUsed) {
  // First-fit-decreasing: biggest write-1 lands in write unit 0.
  const auto counts = counts_of({{2, 0}, {30, 0}, {10, 0}});
  const PackResult r = pack(counts, paper_cfg());
  ASSERT_FALSE(r.write1_queue.empty());
  EXPECT_EQ(r.write1_queue.front().unit, 1u);  // the 30-current unit
  EXPECT_EQ(r.write1_queue.front().write_unit, 0u);
  verify_pack(counts, paper_cfg(), r);
}

TEST(Packer, OversizeWrite1TakesDedicatedPasses) {
  PackerConfig c = paper_cfg();
  c.budget = 8;
  const auto counts = counts_of({{20, 0}});  // 20 > 8: 3 passes
  const PackResult r = pack(counts, c);
  EXPECT_EQ(r.result, 3u);
  EXPECT_EQ(r.write1_queue[0].passes, 3u);
  verify_pack(counts, c, r);
}

TEST(Packer, OversizeWrite0TakesDedicatedTrailingSlots) {
  PackerConfig c = paper_cfg();
  c.budget = 4;
  const auto counts = counts_of({{0, 6}});  // 12 current > 4: 3 passes
  const PackResult r = pack(counts, c);
  EXPECT_EQ(r.result, 0u);
  EXPECT_EQ(r.subresult, 3u);
  verify_pack(counts, c, r);
}

TEST(Packer, UtilizationBounded) {
  const auto counts = counts_of({{8, 2}, {7, 1}, {6, 3}});
  const PackResult r = pack(counts, paper_cfg());
  const double u = r.power_utilization(paper_cfg().budget);
  EXPECT_GT(u, 0.0);
  EXPECT_LE(u, 1.0);
}

TEST(Packer, InvalidConfigRejected) {
  PackerConfig c;
  c.budget = 0;
  EXPECT_THROW(pack({}, c), ContractViolation);
}

// ------------------------------------------------------ randomized sweep --
class PackerRandom : public ::testing::TestWithParam<u64> {};

TEST_P(PackerRandom, InvariantsHoldOnRandomLines) {
  Rng rng(GetParam());
  // Random geometry within realistic ranges.
  PackerConfig c;
  c.k = 1 + static_cast<u32>(rng.below(12));
  c.l = 1 + static_cast<u32>(rng.below(3));
  c.budget = 8 + static_cast<u32>(rng.below(250));
  c.forbid_self_overlap = rng.chance(0.5);

  const u32 units = 1 + static_cast<u32>(rng.below(16));
  std::vector<UnitCounts> counts;
  for (u32 i = 0; i < units; ++i) {
    counts.push_back(UnitCounts{i, static_cast<u32>(rng.below(34)),
                                static_cast<u32>(rng.below(34))});
  }

  const PackResult r = pack(counts, c);
  verify_pack(counts, c, r);  // budget, uniqueness, self-overlap, powers

  // Tetris can never need more serial write units for write-1s than one
  // per nonzero unit (plus oversize passes).
  u64 upper = 0;
  for (const auto& uc : counts) {
    if (uc.n1 > 0) upper += ceil_div(uc.n1, c.budget);
  }
  EXPECT_LE(r.result, upper);

  // FFD never exceeds the power budget in any sub-slot — asserted here
  // directly on the bookkeeping, independent of verify_pack.
  for (const u32 p : r.slot_power) EXPECT_LE(p, c.budget);

  // Never slower than writing every nonzero unit serially (what a
  // conventional budget-respecting controller would do): each write-1
  // takes its serial passes at full write-unit length, each write-0 its
  // serial passes at sub-slot length.
  double serial = 0.0;
  for (const auto& uc : counts) {
    if (uc.n1 > 0) serial += static_cast<double>(ceil_div(uc.n1, c.budget));
    if (uc.n0 > 0) {
      serial += static_cast<double>(ceil_div(u64{uc.n0} * c.l, c.budget)) /
                static_cast<double>(c.k);
    }
  }
  EXPECT_LE(r.write_unit_equiv(c.k), serial + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Random, PackerRandom,
                         ::testing::Range<u64>(100, 200));

}  // namespace
}  // namespace tw::core
