// Unit tests for tw/common: types, bit kernels, RNG, parallel, strings,
// CSV and table rendering.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <thread>

#include "tw/common/assert.hpp"
#include "tw/common/bits.hpp"
#include "tw/common/csv.hpp"
#include "tw/common/parallel.hpp"
#include "tw/common/rng.hpp"
#include "tw/common/strings.hpp"
#include "tw/common/table.hpp"
#include "tw/common/types.hpp"

namespace tw {
namespace {

// ---------------------------------------------------------------- types --
TEST(Types, TickConversions) {
  EXPECT_EQ(ns(50), 50'000u);
  EXPECT_EQ(us(1), 1'000'000u);
  EXPECT_EQ(ms(1), 1'000'000'000u);
  EXPECT_DOUBLE_EQ(to_ns(ns(430)), 430.0);
  EXPECT_DOUBLE_EQ(to_us(us(3)), 3.0);
}

TEST(Types, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
  EXPECT_EQ(ceil_div(64, 8), 8u);
}

TEST(Types, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(65));
  EXPECT_TRUE(is_pow2(u64{1} << 63));
}

TEST(Types, Log2Pow2) {
  EXPECT_EQ(log2_pow2(1), 0u);
  EXPECT_EQ(log2_pow2(2), 1u);
  EXPECT_EQ(log2_pow2(64), 6u);
  EXPECT_EQ(log2_pow2(u64{1} << 40), 40u);
}

// --------------------------------------------------------------- assert --
TEST(Assert, ExpectsThrowsOnViolation) {
  EXPECT_THROW(TW_EXPECTS(false), ContractViolation);
  EXPECT_NO_THROW(TW_EXPECTS(true));
}

TEST(Assert, MessageCarriesLocation) {
  try {
    TW_ASSERT(1 == 2);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("1 == 2"), std::string::npos);
    EXPECT_NE(msg.find("common_test.cpp"), std::string::npos);
  }
}

// ----------------------------------------------------------------- bits --
TEST(Bits, Popcount) {
  EXPECT_EQ(popcount(0), 0u);
  EXPECT_EQ(popcount(~u64{0}), 64u);
  EXPECT_EQ(popcount(0xF0F0), 8u);
}

TEST(Bits, HammingWords) {
  EXPECT_EQ(hamming(u64{0}, u64{0}), 0u);
  EXPECT_EQ(hamming(u64{0xFF}, u64{0x0F}), 4u);
}

TEST(Bits, HammingSpans) {
  const u64 a[] = {0xFF, 0x00};
  const u64 b[] = {0x0F, 0xF0};
  EXPECT_EQ(hamming(std::span<const u64>(a), std::span<const u64>(b)), 8u);
}

TEST(Bits, HammingSpanSizeMismatchThrows) {
  const u64 a[] = {1, 2};
  const u64 b[] = {1};
  EXPECT_THROW(hamming(std::span<const u64>(a), std::span<const u64>(b)),
               ContractViolation);
}

TEST(Bits, TransitionsDirections) {
  // old 0011, new 0101: bit1 1->0 (reset), bit2 0->1 (set).
  const BitTransitions t = transitions(u64{0b0011}, u64{0b0101});
  EXPECT_EQ(t.sets, 1u);
  EXPECT_EQ(t.resets, 1u);
  EXPECT_EQ(t.total(), 2u);
}

TEST(Bits, TransitionsAllSet) {
  const BitTransitions t = transitions(u64{0}, ~u64{0});
  EXPECT_EQ(t.sets, 64u);
  EXPECT_EQ(t.resets, 0u);
}

TEST(Bits, TransitionsIdentity) {
  const BitTransitions t = transitions(u64{0xDEADBEEF}, u64{0xDEADBEEF});
  EXPECT_EQ(t.total(), 0u);
}

TEST(Bits, GetWithBit) {
  EXPECT_TRUE(get_bit(0b100, 2));
  EXPECT_FALSE(get_bit(0b100, 1));
  EXPECT_EQ(with_bit(0, 5, true), u64{32});
  EXPECT_EQ(with_bit(32, 5, false), u64{0});
}

TEST(Bits, LowMask) {
  EXPECT_EQ(low_mask(0), u64{0});
  EXPECT_EQ(low_mask(8), u64{0xFF});
  EXPECT_EQ(low_mask(64), ~u64{0});
}

TEST(Bits, InvertSpan) {
  u64 v[] = {0, ~u64{0}};
  invert(std::span<u64>(v));
  EXPECT_EQ(v[0], ~u64{0});
  EXPECT_EQ(v[1], u64{0});
}

// ------------------------------------------------------------------ rng --
TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive) {
  Rng r(7);
  std::set<u64> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.range(3, 5));
  EXPECT_EQ(seen, (std::set<u64>{3, 4, 5}));
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GeometricMean) {
  Rng r(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.geometric(10.0));
  EXPECT_NEAR(sum / n, 10.0, 0.5);
}

TEST(Rng, PoissonMeanSmallLambda) {
  Rng r(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.poisson(3.5));
  EXPECT_NEAR(sum / n, 3.5, 0.15);
}

TEST(Rng, PoissonMeanLargeLambda) {
  Rng r(19);
  double sum = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.poisson(100.0));
  EXPECT_NEAR(sum / n, 100.0, 2.0);
}

TEST(Rng, PoissonZero) {
  Rng r(23);
  EXPECT_EQ(r.poisson(0.0), 0u);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(42);
  Rng child = a.split();
  Rng a2(42);
  a2.next();  // split consumed one draw
  // Child stream differs from parent's continuation.
  int same = 0;
  for (int i = 0; i < 50; ++i) same += (child.next() == a2.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, ChanceExtremes) {
  Rng r(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

// ------------------------------------------------------------- parallel --
TEST(Parallel, ForCoversAllIndices) {
  std::vector<std::atomic<int>> hits(100);
  parallel_for(100, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, ForZeroIterations) {
  bool called = false;
  parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Parallel, ForPropagatesException) {
  EXPECT_THROW(
      parallel_for(10,
                   [](std::size_t i) {
                     if (i == 5) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(Parallel, ForSingleThreadDegenerate) {
  std::vector<int> order;
  parallel_for(
      5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); }, 1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Parallel, ForFewerItemsThanThreads) {
  // n < requested thread count: clamp, don't deadlock or skip work.
  std::vector<std::atomic<int>> hits(3);
  parallel_for(
      3, [&](std::size_t i) { hits[i]++; }, 8);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, ForNestedFallsBackToSerial) {
  // A parallel_for issued from inside a pool worker must run inline
  // instead of waiting on pool helpers (deadlocks with one worker).
  std::atomic<int> total{0};
  parallel_for(4, [&](std::size_t) {
    parallel_for(4, [&](std::size_t) { total++; });
  });
  EXPECT_EQ(total.load(), 16);
}

TEST(Parallel, ThreadPoolRunsJobs) {
  ThreadPool pool(4);
  std::atomic<int> n{0};
  for (int i = 0; i < 50; ++i) pool.submit([&] { n++; });
  pool.wait_idle();
  EXPECT_EQ(n.load(), 50);
}

TEST(Parallel, ThreadPoolWaitIdleOnEmpty) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(Parallel, ThreadPoolThrowingJobDoesNotDeadlock) {
  // A throwing job must neither terminate the worker nor leak the active
  // count: wait_idle() returns (rethrowing the exception) instead of
  // blocking forever.
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&, i] {
      if (i == 3) throw std::runtime_error("cell failed");
      done++;
    });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(done.load(), 19);
}

TEST(Parallel, ThreadPoolUsableAfterThrowingJob) {
  ThreadPool pool(2);
  pool.submit([] { throw std::logic_error("first batch fails"); });
  EXPECT_THROW(pool.wait_idle(), std::logic_error);
  // The error state was cleared: a healthy second batch runs clean.
  std::atomic<int> n{0};
  for (int i = 0; i < 10; ++i) pool.submit([&] { n++; });
  pool.wait_idle();
  EXPECT_EQ(n.load(), 10);
}

TEST(Parallel, ThreadPoolReportsFirstErrorOnly) {
  ThreadPool pool(4);
  for (int i = 0; i < 8; ++i) {
    pool.submit([] { throw std::runtime_error("boom"); });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  pool.wait_idle();  // subsequent waits are clean
  SUCCEED();
}

// -------------------------------------------------------------- strings --
TEST(Strings, Fixed) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(2.0, 0), "2");
  EXPECT_EQ(fixed(-1.5, 1), "-1.5");
}

TEST(Strings, Pct) {
  EXPECT_EQ(pct(0.653), "65.3%");
  EXPECT_EQ(pct(1.0, 0), "100%");
}

TEST(Strings, Pad) {
  EXPECT_EQ(pad("ab", 5), "ab   ");
  EXPECT_EQ(pad("ab", -5), "   ab");
  EXPECT_EQ(pad("abcdef", 3), "abcdef");
}

TEST(Strings, JoinAndSplit) {
  EXPECT_EQ(join({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
}

TEST(Strings, AsciiBar) {
  EXPECT_EQ(ascii_bar(0.5, 4), "##..");
  EXPECT_EQ(ascii_bar(0.0, 4), "....");
  EXPECT_EQ(ascii_bar(1.5, 4), "####");  // clamped
}

TEST(Strings, StartsWithToLower) {
  EXPECT_TRUE(starts_with("tetris", "tet"));
  EXPECT_FALSE(starts_with("tet", "tetris"));
  EXPECT_EQ(to_lower("TeTrIs"), "tetris");
}

// ------------------------------------------------------------------ csv --
TEST(Csv, PlainRow) {
  std::ostringstream out;
  CsvWriter w(out);
  w.row({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(Csv, QuotesSpecialCharacters) {
  std::ostringstream out;
  CsvWriter w(out);
  w.row({"a,b", "say \"hi\"", "line\nbreak"});
  EXPECT_EQ(out.str(), "\"a,b\",\"say \"\"hi\"\"\",\"line\nbreak\"\n");
}

// ---------------------------------------------------------------- table --
TEST(Table, RendersAlignedColumns) {
  AsciiTable t;
  t.set_header({"name", "value"});
  t.add_row({"x", "1.5"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name   |"), std::string::npos);
  EXPECT_NE(s.find("1.5"), std::string::npos);
}

TEST(Table, NumericRightAligned) {
  AsciiTable t;
  t.set_header({"v"});
  t.add_row({"7"});
  t.add_row({"1000"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("|    7 |"), std::string::npos);
}

TEST(Table, EmptyTableRendersNothing) {
  AsciiTable t;
  EXPECT_TRUE(t.to_string().empty());
}

}  // namespace
}  // namespace tw
