// Differential test for the SIMD packing hot path: the AVX2 kernels and
// the SoA plan/pack pipeline built on them must be *bit-identical* to the
// portable scalar fallback and to the frozen pre-SIMD reference
// (tests/reference_packer.hpp) — same flip decisions, same counts, same
// placements, same fit_checks — on exhaustive small grids, unaligned and
// tail-length buffers, the all-zero/all-one edges, and >= 20k random
// lines through the full read+pack pipeline. AVX2 cases self-skip on
// machines without the ISA; the scalar-vs-reference half always runs.

#include <gtest/gtest.h>

#include <bit>
#include <vector>

#include "reference_packer.hpp"
#include "tw/common/rng.hpp"
#include "tw/common/simd.hpp"
#include "tw/core/packer.hpp"
#include "tw/core/read_stage.hpp"
#include "tw/pcm/line.hpp"
#include "tw/schemes/prep.hpp"

namespace tw {
namespace {

/// Restore the process-wide SIMD level after a test flips it.
class LevelGuard {
 public:
  LevelGuard() : saved_(simd::active_level()) {}
  ~LevelGuard() { simd::set_level(saved_); }

 private:
  simd::Level saved_;
};

std::vector<simd::Level> levels_under_test() {
  std::vector<simd::Level> ls{simd::Level::kScalar};
  if (simd::avx2_supported()) ls.push_back(simd::Level::kAvx2);
  return ls;
}

// ---- Kernel-level differentials ------------------------------------------

// Word generator mixing random data with the structured edges the packer
// actually sees: all-zero, all-one, and sparse single-bit words.
u64 edgy_word(Rng& rng) {
  const u64 r = rng.next();
  switch (r % 8) {
    case 0: return 0;
    case 1: return ~u64{0};
    case 2: return u64{1} << (r >> 3) % 64;
    default: return rng.next();
  }
}

TEST(SimdPacker, PopcountKernelTailsAndAlignments) {
  if (!simd::avx2_supported()) GTEST_SKIP() << "AVX2 not supported";
  Rng rng(0x51D0ull);
  // Buffer large enough for every (offset, n) window; the offsets walk
  // the pointer off 32-byte alignment so the AVX2 loads exercise the
  // unaligned path, and n sweeps across the 4-words-per-vector tails.
  std::vector<u64> words(96);
  std::vector<u32> scalar_out(96), avx2_out(96);
  for (int round = 0; round < 50; ++round) {
    for (auto& w : words) w = edgy_word(rng);
    for (std::size_t offset = 0; offset < 5; ++offset) {
      for (std::size_t n = 0; n <= 67; ++n) {
        const u64* p = words.data() + offset;
        simd::popcount_each_scalar(p, n, scalar_out.data());
        simd::popcount_each_avx2(p, n, avx2_out.data());
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(scalar_out[i], avx2_out[i])
              << "word " << i << " of n=" << n << " offset=" << offset;
          ASSERT_EQ(scalar_out[i], static_cast<u32>(std::popcount(p[i])));
        }
      }
    }
  }
}

TEST(SimdPacker, TransitionKernelTailsAndAlignments) {
  if (!simd::avx2_supported()) GTEST_SKIP() << "AVX2 not supported";
  Rng rng(0x7247ull);
  std::vector<u64> old_w(96), new_w(96);
  std::vector<u32> s_sets(96), s_resets(96), v_sets(96), v_resets(96);
  for (int round = 0; round < 50; ++round) {
    for (std::size_t i = 0; i < old_w.size(); ++i) {
      old_w[i] = edgy_word(rng);
      // Correlate: most transitions touch few bits, like real rewrites.
      new_w[i] = rng.chance(0.3) ? edgy_word(rng)
                                 : (old_w[i] ^ (rng.next() & rng.next()));
    }
    for (std::size_t offset = 0; offset < 5; ++offset) {
      for (std::size_t n = 0; n <= 67; ++n) {
        const u64* po = old_w.data() + offset;
        const u64* pn = new_w.data() + offset;
        simd::transition_counts_scalar(po, pn, n, s_sets.data(),
                                       s_resets.data());
        simd::transition_counts_avx2(po, pn, n, v_sets.data(),
                                     v_resets.data());
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(s_sets[i], v_sets[i]) << "sets " << i << " n=" << n;
          ASSERT_EQ(s_resets[i], v_resets[i]) << "resets " << i << " n=" << n;
          const u64 diff = po[i] ^ pn[i];
          ASSERT_EQ(s_sets[i], static_cast<u32>(std::popcount(diff & pn[i])));
          ASSERT_EQ(s_resets[i],
                    static_cast<u32>(std::popcount(diff & po[i])));
        }
      }
    }
  }
}

TEST(SimdPacker, FirstFitKernelMatchesScalar) {
  if (!simd::avx2_supported()) GTEST_SKIP() << "AVX2 not supported";
  // Planted hits: for every array length and every hit position (and the
  // no-hit case), the AVX2 scan must return the scalar answer — including
  // a hit in the very first or last lane of a partially-filled vector.
  for (u32 n = 0; n <= 40; ++n) {
    for (u32 hit = 0; hit <= n; ++hit) {  // hit == n plants no hit
      std::vector<u32> power(n + 4, 0xFFFF'FFFFu);
      const u32 limit = 128;
      for (u32 i = 0; i < n; ++i) power[i] = (i >= hit) ? limit : limit + 1;
      const u32 s = simd::first_fit_scalar(power.data(), n, limit);
      const u32 v = simd::first_fit_avx2(power.data(), n, limit);
      ASSERT_EQ(s, v) << "n=" << n << " planted hit=" << hit;
      ASSERT_EQ(s, hit);
    }
  }
  // Random campaign over small alphabets so ties and boundary values
  // (power == limit) occur constantly.
  Rng rng(0xF1F1ull);
  for (int trial = 0; trial < 20'000; ++trial) {
    const u32 n = static_cast<u32>(rng.next() % 48);
    const u32 limit = static_cast<u32>(rng.next() % 130);
    std::vector<u32> power(std::max(n, 1u));
    for (auto& p : power) {
      const u64 r = rng.next();
      p = (r % 4 == 0) ? limit + static_cast<u32>(r % 3)
                       : static_cast<u32>(r % 160);
    }
    const u32 s = simd::first_fit_scalar(power.data(), n, limit);
    const u32 v = simd::first_fit_avx2(power.data(), n, limit);
    ASSERT_EQ(s, v) << "trial " << trial << " n=" << n << " limit=" << limit;
  }
}

TEST(SimdPacker, LevelSelectionRoundTrips) {
  LevelGuard guard;
  simd::set_level(simd::Level::kScalar);
  EXPECT_EQ(simd::active_level(), simd::Level::kScalar);
  EXPECT_STREQ(simd::level_name(simd::Level::kScalar), "scalar");
  EXPECT_STREQ(simd::level_name(simd::Level::kAvx2), "avx2");
  simd::set_level(simd::Level::kAvx2);
  // Requests for an unsupported level must clamp, never crash.
  EXPECT_EQ(simd::active_level(), simd::avx2_supported()
                                      ? simd::Level::kAvx2
                                      : simd::Level::kScalar);
}

// ---- Pipeline-level differentials ----------------------------------------

void expect_plans_equal(const schemes::PlanVec& got,
                        const schemes::PlanVec& want) {
  ASSERT_EQ(got.size(), want.size());
  for (u32 i = 0; i < got.size(); ++i) {
    const auto& g = got[i];
    const auto& w = want[i];
    ASSERT_EQ(g.flip, w.flip) << "unit " << i;
    ASSERT_EQ(g.new_cells, w.new_cells) << "unit " << i;
    ASSERT_EQ(g.sets, w.sets) << "unit " << i;
    ASSERT_EQ(g.resets, w.resets) << "unit " << i;
    ASSERT_EQ(g.all_ones, w.all_ones) << "unit " << i;
    ASSERT_EQ(g.all_zeros, w.all_zeros) << "unit " << i;
    ASSERT_EQ(g.tag_changed, w.tag_changed) << "unit " << i;
    ASSERT_EQ(g.tag_to_one, w.tag_to_one) << "unit " << i;
  }
}

void expect_pack_equal(const core::PackResult& got,
                       const core::PackResult& want) {
  ASSERT_EQ(got.result, want.result);
  ASSERT_EQ(got.subresult, want.subresult);
  ASSERT_EQ(got.fit_checks, want.fit_checks);
  ASSERT_EQ(got.write1_queue.size(), want.write1_queue.size());
  for (u32 i = 0; i < got.write1_queue.size(); ++i) {
    const auto& g = got.write1_queue[i];
    const auto& w = want.write1_queue[i];
    ASSERT_EQ(g.unit, w.unit) << "write1 slot " << i;
    ASSERT_EQ(g.write_unit, w.write_unit) << "write1 slot " << i;
    ASSERT_EQ(g.current, w.current) << "write1 slot " << i;
    ASSERT_EQ(g.passes, w.passes) << "write1 slot " << i;
  }
  ASSERT_EQ(got.write0_queue.size(), want.write0_queue.size());
  for (u32 i = 0; i < got.write0_queue.size(); ++i) {
    const auto& g = got.write0_queue[i];
    const auto& w = want.write0_queue[i];
    ASSERT_EQ(g.unit, w.unit) << "write0 slot " << i;
    ASSERT_EQ(g.sub_slot, w.sub_slot) << "write0 slot " << i;
    ASSERT_EQ(g.current, w.current) << "write0 slot " << i;
    ASSERT_EQ(g.passes, w.passes) << "write0 slot " << i;
  }
  ASSERT_EQ(got.slot_power.size(), want.slot_power.size());
  for (u32 i = 0; i < got.slot_power.size(); ++i) {
    ASSERT_EQ(got.slot_power[i], want.slot_power[i]) << "slot " << i;
  }
}

void fill_line(Rng& rng, pcm::LineBuf& line, pcm::LogicalLine& next) {
  for (u32 u = 0; u < line.units(); ++u) {
    line.set_cell(u, edgy_word(rng));
    line.set_flip(u, rng.chance(0.3));
    // Correlated rewrites keep the demand distribution realistic.
    next.set_word(u, rng.chance(0.3)
                         ? edgy_word(rng)
                         : (line.logical(u) ^ (rng.next() & rng.next())));
  }
}

TEST(SimdPacker, PlanLineMatchesReferenceAtEveryLevel) {
  LevelGuard guard;
  Rng rng(0x9147ull);
  const schemes::FlipCriterion crits[] = {schemes::FlipCriterion::kNone,
                                          schemes::FlipCriterion::kHamming,
                                          schemes::FlipCriterion::kMinimizeSets};
  for (const simd::Level level : levels_under_test()) {
    simd::set_level(level);
    SCOPED_TRACE(simd::level_name(level));
    for (const auto crit : crits) {
      for (const u32 bits : {64u, 33u, 7u, 1u}) {
        for (const u32 units : {1u, 5u, 8u, 32u}) {
          pcm::LineBuf line(units);
          pcm::LogicalLine next(units);
          // The all-zero and all-one edges first (both directions).
          for (const u64 w : {u64{0}, ~u64{0}}) {
            for (u32 u = 0; u < units; ++u) next.set_word(u, w);
            expect_plans_equal(
                schemes::plan_line(line, next, crit, bits),
                testref::reference_plan_line(line, next, crit, bits));
          }
          for (int trial = 0; trial < 200; ++trial) {
            fill_line(rng, line, next);
            expect_plans_equal(
                schemes::plan_line(line, next, crit, bits),
                testref::reference_plan_line(line, next, crit, bits));
          }
        }
      }
    }
  }
}

TEST(SimdPacker, PackMatchesReferenceExhaustiveSmallGrids) {
  // Every single-unit (n1, n0) pair over the full 0..64 bit-count range,
  // swept across budget boundaries, pack orders, and SIMD levels: the
  // shipped pack() must reproduce the frozen reference's placements and
  // its fit_checks accounting exactly.
  LevelGuard guard;
  const core::PackOrder orders[] = {core::PackOrder::kFirstFitDecreasing,
                                    core::PackOrder::kFirstFitArrival,
                                    core::PackOrder::kBestFitDecreasing};
  for (const simd::Level level : levels_under_test()) {
    simd::set_level(level);
    SCOPED_TRACE(simd::level_name(level));
    for (const u32 budget : {1u, 63u, 64u, 128u}) {
      for (const auto order : orders) {
        core::PackerConfig cfg;
        cfg.k = 8;
        cfg.l = 2;
        cfg.budget = budget;
        cfg.order = order;
        for (u32 n1 = 0; n1 <= 64; ++n1) {
          for (u32 n0 = 0; n0 + n1 <= 64; ++n0) {
            const core::UnitCounts counts[] = {{0, n1, n0}};
            expect_pack_equal(core::pack(counts, cfg),
                              testref::reference_pack(counts, cfg));
          }
        }
      }
    }
  }
}

TEST(SimdPacker, PackMatchesReferenceRandomCounts) {
  // Random multi-unit demand sets, including batch-sized inputs (up to 64
  // units — past the counting-sort threshold and the InlineVec inline
  // capacity) across every config axis and SIMD level.
  LevelGuard guard;
  const core::PackOrder orders[] = {core::PackOrder::kFirstFitDecreasing,
                                    core::PackOrder::kFirstFitArrival,
                                    core::PackOrder::kBestFitDecreasing};
  for (const simd::Level level : levels_under_test()) {
    simd::set_level(level);
    SCOPED_TRACE(simd::level_name(level));
    Rng rng(0xACC5ull);  // same stream per level: identical inputs
    for (int trial = 0; trial < 10'000; ++trial) {
      core::PackerConfig cfg;
      cfg.k = 1 + static_cast<u32>(rng.next() % 8);
      cfg.l = 1 + static_cast<u32>(rng.next() % 4);
      cfg.budget = 1 + static_cast<u32>(rng.next() % 160);
      cfg.order = orders[rng.next() % 3];
      cfg.forbid_self_overlap = rng.chance(0.25);
      const u32 units = 1 + static_cast<u32>(rng.next() % 64);
      std::vector<core::UnitCounts> counts;
      for (u32 u = 0; u < units; ++u) {
        u32 n1 = static_cast<u32>(rng.next() % 65);
        if (rng.chance(0.25)) n1 = rng.chance(0.5) ? 0 : 64;
        const u32 n0 = static_cast<u32>(rng.next() % (65 - n1));
        counts.push_back({u, n1, n0});
      }
      expect_pack_equal(core::pack(counts, cfg),
                        testref::reference_pack(counts, cfg));
    }
  }
}

TEST(SimdPacker, FullPipelineMatchesReferenceTwentyThousandLines) {
  // End-to-end: random line contents -> read stage (Alg. 1, SoA/SIMD) ->
  // pack (Alg. 2, vectorized scans) vs the frozen per-unit reference
  // pipeline, >= 20k lines per SIMD level at both the 64 B (8-unit) and
  // 256 B (32-unit) geometries.
  LevelGuard guard;
  core::PackerConfig cfg;
  cfg.k = 8;
  cfg.l = 2;
  cfg.budget = 128;
  for (const simd::Level level : levels_under_test()) {
    simd::set_level(level);
    SCOPED_TRACE(simd::level_name(level));
    Rng rng(0x20CAull);  // same stream per level: identical inputs
    for (const u32 units : {8u, 32u}) {
      pcm::LineBuf line(units);
      pcm::LogicalLine next(units);
      for (int trial = 0; trial < 10'000; ++trial) {
        fill_line(rng, line, next);
        const auto shipped = core::read_stage(line, next, 64);
        const auto frozen = testref::reference_read_stage(line, next, 64);
        expect_plans_equal(shipped.plans, frozen.plans);
        ASSERT_EQ(shipped.flipped_units, frozen.flipped_units);
        ASSERT_EQ(shipped.counts.size(), frozen.counts.size());
        for (u32 i = 0; i < shipped.counts.size(); ++i) {
          ASSERT_EQ(shipped.counts[i].unit, frozen.counts[i].unit);
          ASSERT_EQ(shipped.counts[i].n1, frozen.counts[i].n1);
          ASSERT_EQ(shipped.counts[i].n0, frozen.counts[i].n0);
        }
        expect_pack_equal(
            core::pack({shipped.counts.data(), shipped.counts.size()}, cfg),
            testref::reference_pack(
                {frozen.counts.data(), frozen.counts.size()}, cfg));
        // Keep the physical state evolving like a real write stream.
        core::ReadStageResult r = shipped;
        schemes::apply_plans(line, {r.plans.data(), r.plans.size()});
      }
    }
  }
}

}  // namespace
}  // namespace tw
