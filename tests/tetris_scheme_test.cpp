// Unit tests for the full Tetris Write scheme: read stage (Alg. 1),
// service-time composition (Eq. 5 + overheads), and behaviour on the
// paper's motivating data patterns.

#include <gtest/gtest.h>

#include "tw/common/rng.hpp"
#include "tw/core/factory.hpp"
#include "tw/core/fsm.hpp"
#include "tw/core/read_stage.hpp"
#include "tw/core/tetris_scheme.hpp"
#include "tw/stats/accumulator.hpp"

namespace tw::core {
namespace {

pcm::PcmConfig cfg() { return pcm::table2_config(); }

pcm::LogicalLine data_like(const pcm::LineBuf& line) {
  return pcm::LogicalLine::from_physical(line);
}

// ------------------------------------------------------------ read stage --
TEST(ReadStage, CountsTransitionsNotPopulation) {
  pcm::LineBuf line(8);
  line.set_cell(0, 0b1111);  // old data has 4 ones
  pcm::LogicalLine next(8);
  next.set_word(0, 0b1110);  // clears one bit only
  const ReadStageResult r = read_stage(line, next, 64);
  // Alg. 1's intent: count *changed* bits (see header note), so one RESET.
  EXPECT_EQ(r.counts[0].n0, 1u);
  EXPECT_EQ(r.counts[0].n1, 0u);
}

TEST(ReadStage, FlipBoundsCounts) {
  pcm::LineBuf line(8);          // all-zero cells
  pcm::LogicalLine next(8);
  next.set_word(2, ~u64{0});     // would SET all 64 bits -> flips
  const ReadStageResult r = read_stage(line, next, 64);
  EXPECT_EQ(r.flipped_units, 1u);
  // Only the tag cell changes.
  EXPECT_EQ(r.counts[2].n1, 1u);
  EXPECT_EQ(r.counts[2].n0, 0u);
}

TEST(ReadStage, TotalsSumUnits) {
  pcm::LineBuf line(8);
  pcm::LogicalLine next(8);
  next.set_word(0, 0b111);
  next.set_word(1, 0b1);
  const ReadStageResult r = read_stage(line, next, 64);
  const BitTransitions t = r.total();
  EXPECT_EQ(t.sets, 4u);
  EXPECT_EQ(t.resets, 0u);
}

// ----------------------------------------------------------- service time --
TEST(TetrisScheme, LatencyComposition) {
  TetrisOptions opts;
  const TetrisScheme scheme(cfg(), opts);
  pcm::LineBuf line(8);
  pcm::LogicalLine next(8);
  next.set_word(0, 0b1011);  // 3 SETs in one unit -> result=1, subresult=0
  pcm::LineBuf work = line;
  const schemes::ServicePlan p = scheme.plan_write(work, next);
  EXPECT_EQ(p.latency, ns(50) + opts.analysis_latency() + ns(430));
  EXPECT_DOUBLE_EQ(p.write_units, 1.0);
  EXPECT_EQ(p.analysis_ticks, 102'500u);  // 41 cycles at 400 MHz
}

TEST(TetrisScheme, AnalysisOverheadConfigurable) {
  TetrisOptions opts;
  opts.analysis_cycles = 0;
  const TetrisScheme scheme(cfg(), opts);
  pcm::LineBuf line(8);
  pcm::LogicalLine next(8);
  next.set_word(0, 1);
  const schemes::ServicePlan p = scheme.plan_write(line, next);
  EXPECT_EQ(p.latency, ns(50) + ns(430));
}

TEST(TetrisScheme, SilentWriteCostsReadAndAnalysisOnly) {
  const TetrisScheme scheme(cfg());
  pcm::LineBuf line(8);
  const pcm::LogicalLine next = data_like(line);
  pcm::LineBuf work = line;
  const schemes::ServicePlan p = scheme.plan_write(work, next);
  EXPECT_TRUE(p.silent);
  EXPECT_DOUBLE_EQ(p.write_units, 0.0);
  EXPECT_EQ(p.latency, ns(50) + scheme.options().analysis_latency());
}

TEST(TetrisScheme, PaperRangeOnWorkloadLikeData) {
  // With Fig. 3-like sparse transitions, Tetris needs 1.0-1.5 write units.
  const TetrisScheme scheme(cfg());
  Rng rng(42);
  tw::stats::Accumulator units;
  for (int trial = 0; trial < 300; ++trial) {
    pcm::LineBuf line(8);
    for (u32 i = 0; i < 8; ++i) line.set_cell(i, rng.next());
    pcm::LogicalLine next = data_like(line);
    for (u32 i = 0; i < 8; ++i) {
      u64 w = next.word(i);
      const u32 flips = static_cast<u32>(rng.poisson(9.6));
      for (u32 b = 0; b < flips; ++b) {
        const u32 pos = static_cast<u32>(rng.below(64));
        w = with_bit(w, pos, rng.chance(0.7));  // SET-leaning
      }
      next.set_word(i, w);
    }
    pcm::LineBuf work = line;
    units.add(scheme.plan_write(work, next).write_units);
  }
  EXPECT_GE(units.mean(), 0.9);
  EXPECT_LE(units.mean(), 1.6);  // paper: 1.06-1.46 average
}

TEST(TetrisScheme, StateUpdateMatchesLogicalData) {
  const TetrisScheme scheme(cfg());
  Rng rng(17);
  pcm::LineBuf line(8);
  for (u32 i = 0; i < 8; ++i) line.set_cell(i, rng.next());
  pcm::LogicalLine next(8);
  for (u32 i = 0; i < 8; ++i) next.set_word(i, rng.next());
  scheme.plan_write(line, next);
  for (u32 i = 0; i < 8; ++i) EXPECT_EQ(line.logical(i), next.word(i));
}

TEST(TetrisScheme, SelfCheckModeVerifiesSchedules) {
  TetrisOptions opts;
  opts.self_check = true;  // runs verify_pack + FSM on every write
  const TetrisScheme scheme(cfg(), opts);
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    pcm::LineBuf line(8);
    for (u32 i = 0; i < 8; ++i) line.set_cell(i, rng.next());
    pcm::LogicalLine next(8);
    for (u32 i = 0; i < 8; ++i) {
      next.set_word(i, line.logical(i) ^ (rng.next() & rng.next() &
                                          rng.next()));  // sparse flips
    }
    EXPECT_NO_THROW(scheme.plan_write(line, next));
  }
}

TEST(TetrisScheme, AnalyzeExposesPackDetails) {
  const TetrisScheme scheme(cfg());
  pcm::LineBuf line(8);
  pcm::LogicalLine next(8);
  next.set_word(0, 0b111);
  next.set_word(1, 0b11);
  const TetrisAnalysis a = scheme.analyze(line, next);
  EXPECT_EQ(a.pack.result, 1u);
  EXPECT_EQ(a.packer_cfg.budget, 128u);
  EXPECT_EQ(a.read.counts.size(), 8u);
}

TEST(TetrisScheme, NonGcpChargesWorstChip) {
  // Without the global charge pump, a unit whose transitions concentrate
  // in one chip is charged chips x worst-chip demand.
  pcm::PcmConfig c = cfg();
  c.power.global_charge_pump = false;
  const TetrisScheme scheme(c);
  pcm::LineBuf line(8);
  pcm::LogicalLine next(8);
  // 8 SETs all inside chip 0's 16-bit slice of unit 0.
  next.set_word(0, 0x00FF);
  const TetrisAnalysis a = scheme.analyze(line, next);
  ASSERT_EQ(a.pack.write1_queue.size(), 1u);
  EXPECT_EQ(a.pack.write1_queue[0].current, 32u);  // 8 x 4 chips
}

TEST(TetrisScheme, GcpUsesTrueDemand) {
  const TetrisScheme scheme(cfg());
  pcm::LineBuf line(8);
  pcm::LogicalLine next(8);
  next.set_word(0, 0x00FF);
  const TetrisAnalysis a = scheme.analyze(line, next);
  ASSERT_EQ(a.pack.write1_queue.size(), 1u);
  EXPECT_EQ(a.pack.write1_queue[0].current, 8u);
}

TEST(TetrisScheme, AlwaysAtLeastAsGoodAsThreeStageActual) {
  // 3stage-actual is Tetris without interspace stealing; Tetris's write
  // phase can never be slower on the same data.
  Rng rng(23);
  const pcm::PcmConfig c = cfg();
  TetrisOptions opts;
  opts.analysis_cycles = 0;  // compare pure write phases
  for (int trial = 0; trial < 200; ++trial) {
    pcm::LineBuf base(8);
    for (u32 i = 0; i < 8; ++i) base.set_cell(i, rng.next());
    pcm::LogicalLine next = data_like(base);
    for (u32 i = 0; i < 8; ++i) {
      u64 w = next.word(i);
      const u32 flips = static_cast<u32>(rng.below(25));
      for (u32 b = 0; b < flips; ++b)
        w = with_bit(w, static_cast<u32>(rng.below(64)), rng.chance(0.5));
      next.set_word(i, w);
    }
    pcm::LineBuf l1 = base, l2 = base;
    const auto tetris = core::make_scheme(schemes::SchemeKind::kTetris, c,
                                          opts);
    const auto three =
        core::make_scheme(schemes::SchemeKind::kThreeStageActual, c);
    const auto pt = tetris->plan_write(l1, next);
    const auto p3 = three->plan_write(l2, next);
    // Tetris's trailing sub-slot is Tset/K = 53.75 ns vs the stage-0 slot
    // of exactly Treset = 53 ns, so allow that 1.5% quantization edge.
    EXPECT_LE(pt.write_units, p3.write_units * 1.015 + 1e-9)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace tw::core
