// Tests for the PreSET scheme (paper ref [23]) and batched Tetris
// (our future-work extension: joint packing of same-bank writes).

#include <gtest/gtest.h>

#include "tw/core/factory.hpp"
#include "tw/harness/experiment.hpp"

namespace tw {
namespace {

pcm::PcmConfig cfg() { return pcm::table2_config(); }

pcm::LineBuf line_of(u64 word) {
  pcm::LineBuf l(8);
  for (u32 i = 0; i < 8; ++i) l.set_cell(i, word);
  return l;
}

pcm::LogicalLine data_of(u64 word) {
  pcm::LogicalLine d(8);
  for (u32 i = 0; i < 8; ++i) d.set_word(i, word);
  return d;
}

// ----------------------------------------------------------------- preset --
TEST(Preset, CriticalPathIsResetOnly) {
  const auto scheme = core::make_scheme(schemes::SchemeKind::kPreset, cfg());
  pcm::LineBuf line = line_of(0);
  const schemes::ServicePlan p = scheme->plan_write(line, data_of(0xAA));
  // Worst case: (64+1 cells) x L=2 = 130 > budget 128 -> one unit per
  // Treset slot: 8 x 53 ns.
  EXPECT_EQ(p.latency, 8 * ns(53));
  EXPECT_LT(p.write_units, 1.0);
  EXPECT_FALSE(p.read_before_write);
  // Only RESETs on the critical path.
  EXPECT_EQ(p.programmed.sets, 0u);
  EXPECT_GT(p.programmed.resets, 0u);
}

TEST(Preset, BackgroundPassAccountsMissingSets) {
  const auto scheme = core::make_scheme(schemes::SchemeKind::kPreset, cfg());
  pcm::LineBuf line = line_of(0);  // all cells 0: background SETs them all
  const schemes::ServicePlan p = scheme->plan_write(line, data_of(~u64{0}));
  EXPECT_EQ(p.background.sets, 8u * 64u + 8u);  // data + tag cells
  EXPECT_EQ(p.background.resets, 0u);
  // All-ones data: only the tag cells get RESET on the critical path.
  EXPECT_EQ(p.programmed.resets, 8u);
}

TEST(Preset, LogicalDataRoundTrips) {
  const auto scheme = core::make_scheme(schemes::SchemeKind::kPreset, cfg());
  Rng rng(3);
  for (int t = 0; t < 100; ++t) {
    pcm::LineBuf line(8);
    for (u32 i = 0; i < 8; ++i) {
      line.set_cell(i, rng.next());
      line.set_flip(i, rng.chance(0.2));
    }
    pcm::LogicalLine next(8);
    for (u32 i = 0; i < 8; ++i) next.set_word(i, rng.next());
    scheme->plan_write(line, next);
    for (u32 i = 0; i < 8; ++i) ASSERT_EQ(line.logical(i), next.word(i));
  }
}

TEST(Preset, ContentAwareBeatsWorstCaseOnSparseZeros) {
  pcm::LineBuf base = line_of(~u64{0});
  pcm::LogicalLine next(8);
  for (u32 i = 0; i < 8; ++i) next.set_word(i, ~u64{0b11});  // 2 zeros/unit
  const auto worst = core::make_scheme(schemes::SchemeKind::kPreset, cfg());
  const auto actual =
      core::make_scheme(schemes::SchemeKind::kPresetActual, cfg());
  pcm::LineBuf l1 = base, l2 = base;
  const auto pw = worst->plan_write(l1, next);
  const auto pa = actual->plan_write(l2, next);
  EXPECT_LT(pa.latency, pw.latency);
  // 8 units x (2+1 resets x 2 current) = 48 <= 128: one Treset slot.
  EXPECT_EQ(pa.latency, ns(53));
}

TEST(Preset, FastestWritebackOfAllSchemes) {
  // On the critical path nothing beats RESET-only writes.
  Rng rng(17);
  pcm::LineBuf base(8);
  for (u32 i = 0; i < 8; ++i) base.set_cell(i, rng.next());
  pcm::LogicalLine next(8);
  for (u32 i = 0; i < 8; ++i) next.set_word(i, rng.next());
  const auto preset =
      core::make_scheme(schemes::SchemeKind::kPreset, cfg());
  pcm::LineBuf l1 = base;
  const Tick preset_latency = preset->plan_write(l1, next).latency;
  for (const auto kind :
       {schemes::SchemeKind::kDcw, schemes::SchemeKind::kFlipNWrite,
        schemes::SchemeKind::kTwoStage, schemes::SchemeKind::kThreeStage,
        schemes::SchemeKind::kTetris}) {
    pcm::LineBuf l = base;
    EXPECT_LT(preset_latency,
              core::make_scheme(kind, cfg())->plan_write(l, next).latency)
        << schemes::scheme_name(kind);
  }
}

TEST(Preset, SystemRunImprovesWriteLatency) {
  harness::SystemConfig sys;
  sys.instructions_per_core = 15'000;
  const auto& vips = workload::profile_by_name("vips");
  const auto dcw = harness::run_system(sys, vips, schemes::SchemeKind::kDcw);
  const auto pre =
      harness::run_system(sys, vips, schemes::SchemeKind::kPreset);
  ASSERT_TRUE(pre.completed);
  EXPECT_LT(pre.write_latency_ns, dcw.write_latency_ns);
  // But energy is worse than the comparison-based schemes (it programs
  // many background bits).
  const auto tetris =
      harness::run_system(sys, vips, schemes::SchemeKind::kTetris);
  EXPECT_GT(pre.write_energy_pj, tetris.write_energy_pj);
}

// ------------------------------------------------------------ batch tetris --
TEST(BatchTetris, SharesWriteUnitsAcrossLines) {
  core::TetrisOptions opts;
  opts.analysis_cycles = 0;
  const core::TetrisScheme scheme(cfg(), opts);

  // Two lines with light demand: jointly they still fit one write unit.
  pcm::LineBuf a = line_of(0), b = line_of(0);
  pcm::LogicalLine da = data_of(0b111), db = data_of(0b1011);
  pcm::LineBuf* lines[] = {&a, &b};
  const pcm::LogicalLine datas[] = {da, db};
  const schemes::BatchServicePlan batch =
      scheme.plan_write_batch({lines, 2}, {datas, 2});

  ASSERT_EQ(batch.per_line.size(), 2u);
  // 2 reads + one shared Tset window.
  EXPECT_EQ(batch.latency, 2 * ns(50) + ns(430));
  EXPECT_DOUBLE_EQ(batch.per_line[0].write_units, 0.5);
  // Both lines hold their data.
  for (u32 i = 0; i < 8; ++i) {
    EXPECT_EQ(a.logical(i), da.word(i));
    EXPECT_EQ(b.logical(i), db.word(i));
  }
}

TEST(BatchTetris, FasterThanSerialTetris) {
  Rng rng(29);
  core::TetrisOptions opts;
  const core::TetrisScheme scheme(cfg(), opts);
  for (int trial = 0; trial < 50; ++trial) {
    pcm::LineBuf a(8), b(8), a2(8), b2(8);
    pcm::LogicalLine da(8), db(8);
    for (u32 i = 0; i < 8; ++i) {
      a.set_cell(i, rng.next());
      b.set_cell(i, rng.next());
      a2.set_cell(i, a.cell(i));
      b2.set_cell(i, b.cell(i));
      da.set_word(i, a.logical(i) ^ (rng.next() & rng.next() & rng.next()));
      db.set_word(i, b.logical(i) ^ (rng.next() & rng.next() & rng.next()));
    }
    pcm::LineBuf* lines[] = {&a, &b};
    const pcm::LogicalLine datas[] = {da, db};
    const Tick batched =
        scheme.plan_write_batch({lines, 2}, {datas, 2}).latency;
    const Tick serial = scheme.plan_write(a2, da).latency +
                        scheme.plan_write(b2, db).latency;
    EXPECT_LE(batched, serial) << "trial " << trial;
  }
}

TEST(BatchTetris, DefaultBatchSerializesForOtherSchemes) {
  const auto dcw = core::make_scheme(schemes::SchemeKind::kDcw, cfg());
  pcm::LineBuf a = line_of(0), b = line_of(0);
  const pcm::LogicalLine datas[] = {data_of(1), data_of(2)};
  pcm::LineBuf* lines[] = {&a, &b};
  const schemes::BatchServicePlan batch =
      dcw->plan_write_batch({lines, 2}, {datas, 2});
  EXPECT_EQ(batch.latency, 2 * (ns(50) + 8 * ns(430)));
  EXPECT_EQ(a.logical(0), 1u);
  EXPECT_EQ(b.logical(0), 2u);
}

TEST(BatchTetris, SelfCheckVerifiesJointSchedules) {
  core::TetrisOptions opts;
  opts.self_check = true;
  const core::TetrisScheme scheme(cfg(), opts);
  Rng rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    pcm::LineBuf a(8), b(8), c(8);
    pcm::LogicalLine da(8), db(8), dc(8);
    for (u32 i = 0; i < 8; ++i) {
      a.set_cell(i, rng.next());
      b.set_cell(i, rng.next());
      c.set_cell(i, rng.next());
      da.set_word(i, a.logical(i) ^ (rng.next() & rng.next()));
      db.set_word(i, b.logical(i) ^ (rng.next() & rng.next()));
      dc.set_word(i, c.logical(i) ^ (rng.next() & rng.next()));
    }
    pcm::LineBuf* lines[] = {&a, &b, &c};
    const pcm::LogicalLine datas[] = {da, db, dc};
    EXPECT_NO_THROW(scheme.plan_write_batch({lines, 3}, {datas, 3}));
  }
}

TEST(BatchTetris, ControllerBatchesSameBankWrites) {
  sim::Simulator sim;
  stats::Registry reg;
  const auto scheme =
      core::make_scheme(schemes::SchemeKind::kTetris, cfg());
  mem::ControllerConfig ccfg;
  ccfg.drain = mem::ControllerConfig::DrainPolicy::kOpportunistic;
  ccfg.write_batch = 4;
  ccfg.write_coalescing = false;
  mem::Controller ctl(sim, cfg(), ccfg, *scheme, reg);

  // Three writes to bank 0 (lines 0, 8, 16) enqueued back-to-back.
  for (int i = 0; i < 3; ++i) {
    mem::MemoryRequest r;
    r.addr = static_cast<Addr>(i) * 8 * 64;
    r.type = mem::ReqType::kWrite;
    pcm::LogicalLine d(8);
    d.set_word(0, 0xF0 + i);
    r.data = d;
    ASSERT_TRUE(ctl.enqueue(std::move(r)));
  }
  sim.run();
  EXPECT_EQ(reg.counter("mem.writes").value(), 3u);
  EXPECT_EQ(reg.counter("mem.writes_batched").value(), 3u);
  EXPECT_TRUE(ctl.idle());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(ctl.store().read_logical(static_cast<Addr>(i) * 8 * 64).word(0),
              0xF0u + i);
  }
}

TEST(BatchTetris, SystemRunBeatsUnbatchedOnWriteBursts) {
  harness::SystemConfig sys;
  sys.instructions_per_core = 15'000;
  const auto& vips = workload::profile_by_name("vips");
  const auto plain =
      harness::run_system(sys, vips, schemes::SchemeKind::kTetris);
  sys.controller.write_batch = 4;
  const auto batched =
      harness::run_system(sys, vips, schemes::SchemeKind::kTetris);
  ASSERT_TRUE(plain.completed);
  ASSERT_TRUE(batched.completed);
  // Batching amortizes write units; it should not hurt and usually helps
  // the write-bound workload.
  EXPECT_LE(batched.write_units, plain.write_units + 1e-9);
}

}  // namespace
}  // namespace tw
