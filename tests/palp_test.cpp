// Partition-level parallelism (PALP) tests: charge-pump occupancy
// legality, the controller's read-admission rules (reads overlap writes
// in other partitions up to the read-after-write-current cap), the
// pump-budget invariant under brown-out, and the partitions=1 /
// PALP-off degeneracy (bit-identical to the baseline controller).

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "tw/common/rng.hpp"
#include "tw/core/factory.hpp"
#include "tw/core/packer.hpp"
#include "tw/fault/fault_model.hpp"
#include "tw/harness/experiment.hpp"
#include "tw/mem/address_map.hpp"
#include "tw/mem/controller.hpp"
#include "tw/pcm/array.hpp"
#include "tw/pcm/pump.hpp"
#include "tw/sim/simulator.hpp"
#include "tw/verify/invariant_monitor.hpp"
#include "tw/workload/profiles.hpp"

namespace tw {
namespace {

// -- Charge-pump occupancy legality ---------------------------------------

TEST(PalpPump, WriteAdmissionRespectsWays) {
  pcm::ChargePump pump;
  EXPECT_FALSE(pump.loaded());
  EXPECT_TRUE(pump.can_admit_write(2));

  pump.begin_write();
  EXPECT_TRUE(pump.loaded());
  EXPECT_EQ(pump.active_writes(), 1u);
  EXPECT_TRUE(pump.can_admit_write(2));
  EXPECT_FALSE(pump.can_admit_write(1));

  pump.begin_write();
  EXPECT_EQ(pump.active_writes(), 2u);
  EXPECT_FALSE(pump.can_admit_write(2));
  EXPECT_EQ(pump.overlapped_writes(), 1u);

  pump.end_write();
  EXPECT_TRUE(pump.can_admit_write(2));
  pump.end_write();
  EXPECT_FALSE(pump.loaded());
}

TEST(PalpPump, ReadAdmissionCapsWhileLoaded) {
  pcm::ChargePump pump;
  // Unloaded pump: reads are never capped (baseline subarray overlap).
  EXPECT_TRUE(pump.can_admit_read(0));

  pump.begin_write();
  EXPECT_TRUE(pump.can_admit_read(2));
  pump.begin_rww_read();
  EXPECT_TRUE(pump.can_admit_read(2));
  pump.begin_rww_read();
  EXPECT_FALSE(pump.can_admit_read(2));  // cap reached
  EXPECT_EQ(pump.overlapped_reads(), 2u);

  pump.end_rww_read();
  EXPECT_TRUE(pump.can_admit_read(2));
  pump.end_rww_read();
  pump.end_write();
  EXPECT_FALSE(pump.loaded());
}

TEST(PalpPump, ExclusiveOwnershipBlocksEverything) {
  pcm::ChargePump pump;
  EXPECT_TRUE(pump.can_admit_exclusive());
  pump.begin_exclusive();
  EXPECT_TRUE(pump.loaded());
  EXPECT_FALSE(pump.can_admit_write(8));
  EXPECT_FALSE(pump.can_admit_exclusive());
  // A loaded-by-exclusive pump still admits reads under a nonzero cap
  // (sense amps are per partition); a zero cap blocks them entirely.
  EXPECT_TRUE(pump.can_admit_read(1));
  EXPECT_FALSE(pump.can_admit_read(0));
  pump.end_exclusive();
  EXPECT_FALSE(pump.loaded());
  // A write in flight blocks exclusive acquisition.
  pump.begin_write();
  EXPECT_FALSE(pump.can_admit_exclusive());
  pump.end_write();
}

TEST(PalpPump, StallCounter) {
  pcm::ChargePump pump;
  pump.note_stall();
  pump.note_stall();
  EXPECT_EQ(pump.stalls(), 2u);
}

// -- Partition geometry on the array --------------------------------------

TEST(PalpArray, PartitionOfMapsBitsEvenly) {
  pcm::PcmArray arr(1024);
  EXPECT_EQ(arr.partitions(), 1u);
  arr.set_partitions(4);
  EXPECT_EQ(arr.partitions(), 4u);
  const u64 per = arr.size_bits() / 4;
  EXPECT_EQ(arr.partition_of(0), 0u);
  EXPECT_EQ(arr.partition_of(per - 1), 0u);
  EXPECT_EQ(arr.partition_of(per), 1u);
  EXPECT_EQ(arr.partition_of(arr.size_bits() - 1), 3u);
}

// -- Controller-level admission -------------------------------------------

constexpr u32 kSubarrays = 4;

struct Done {
  char kind;
  Addr addr;
  Tick complete;
};

struct Harness {
  sim::Simulator sim;
  stats::Registry reg;
  pcm::PcmConfig pcm_cfg;
  std::unique_ptr<schemes::WriteScheme> scheme;
  std::optional<mem::Controller> ctl;
  std::vector<Done> done;

  explicit Harness(mem::ControllerConfig ccfg,
                   const fault::FaultModel* fault = nullptr) {
    pcm_cfg = pcm::table2_config();
    pcm_cfg.geometry.subarrays_per_bank = kSubarrays;
    scheme = core::make_scheme(schemes::SchemeKind::kDcw, pcm_cfg);
    ctl.emplace(sim, pcm_cfg, ccfg, *scheme, reg, 1, 0.5, fault);
    ctl->set_read_callback([this](const mem::MemoryRequest& r) {
      done.push_back({'R', r.addr, r.complete_tick});
    });
    ctl->set_write_callback([this](const mem::MemoryRequest& r) {
      done.push_back({'W', r.addr, r.complete_tick});
    });
  }

  /// `skip`-th line address landing in (bank, bank-local subarray).
  Addr addr_for(u32 bank, u32 sub, u32 skip = 0) const {
    const mem::AddressMap map(pcm_cfg.geometry);
    for (Addr a = 0; a < Addr{1} << 24; a += map.line_bytes()) {
      if (map.flat_bank(a) == bank &&
          map.flat_subarray(a) == bank * kSubarrays + sub) {
        if (skip == 0) return a;
        --skip;
      }
    }
    ADD_FAILURE() << "no address for bank " << bank << " subarray " << sub;
    return 0;
  }

  Addr enqueue_write(Addr addr, u64 word) {
    mem::MemoryRequest req;
    req.addr = addr;
    req.type = mem::ReqType::kWrite;
    const u32 units = pcm_cfg.geometry.units_per_line();
    req.data = pcm::LogicalLine(units);
    for (u32 i = 0; i < units; ++i) req.data.set_word(i, word + i);
    EXPECT_TRUE(ctl->enqueue(std::move(req)));
    return addr;
  }

  Addr enqueue_read(Addr addr) {
    mem::MemoryRequest req;
    req.addr = addr;
    req.type = mem::ReqType::kRead;
    EXPECT_TRUE(ctl->enqueue(std::move(req)));
    return addr;
  }

  /// Completion tick of the only request of `kind` at `addr`.
  Tick complete_of(char kind, Addr addr) const {
    for (const Done& d : done) {
      if (d.kind == kind && d.addr == addr) return d.complete;
    }
    ADD_FAILURE() << "no completed " << kind << " at addr " << addr;
    return 0;
  }

  u64 counter(const char* name) { return reg.counter(name).value(); }
};

mem::ControllerConfig palp_config(bool enabled, u32 ways = 2, u32 rww = 2) {
  mem::ControllerConfig ccfg;
  // Strict drain would strand a lone queued write below the watermark;
  // these scenarios hand-place single requests, so issue them eagerly.
  ccfg.drain = mem::ControllerConfig::DrainPolicy::kOpportunistic;
  ccfg.palp.enabled = enabled;
  ccfg.palp.write_ways = ways;
  ccfg.palp.max_rww_reads = rww;
  return ccfg;
}

TEST(PalpController, ReadsOverlapWriteUpToRwwCap) {
  Harness h(palp_config(true, 2, 2));
  ASSERT_TRUE(h.ctl->palp_active());

  // One long write in partition 0, then three reads in partitions 1-3
  // while it is in flight. The cap admits two concurrently; the third
  // stalls on the pump and retries when a read slot frees -- all three
  // still finish well before the multi-microsecond write.
  const Addr w = h.enqueue_write(h.addr_for(0, 0), 0xDEADBEEF12345678ull);
  h.sim.run(ns(100));
  std::vector<Addr> reads;
  for (u32 sub = 1; sub < 4; ++sub) {
    reads.push_back(h.enqueue_read(h.addr_for(0, sub)));
  }
  h.sim.run();

  EXPECT_TRUE(h.ctl->idle());
  EXPECT_EQ(h.counter("mem.palp_overlapped_reads"), 3u);
  EXPECT_GE(h.counter("mem.palp_pump_stalls"), 1u);
  const Tick write_done = h.complete_of('W', w);
  for (const Addr r : reads) {
    EXPECT_LT(h.complete_of('R', r), write_done)
        << "read at " << r << " failed to overlap the in-flight write";
  }
}

TEST(PalpController, SamePartitionReadWaitsForTheWrite) {
  Harness h(palp_config(true, 2, 2));
  // A read into the *written* partition has no sense amps to borrow: it
  // must wait for the partition, regardless of the pump's read cap.
  const Addr w = h.enqueue_write(h.addr_for(0, 0), 0x0123456789ABCDEFull);
  h.sim.run(ns(100));
  const Addr r = h.enqueue_read(h.addr_for(0, 0));
  h.sim.run();
  EXPECT_GT(h.complete_of('R', r), h.complete_of('W', w));
}

TEST(PalpController, WritesOverlapAcrossPartitions) {
  Harness h(palp_config(true, 2, 2));
  h.enqueue_write(h.addr_for(0, 0), 0x1111111111111111ull);
  h.enqueue_write(h.addr_for(0, 1), 0x2222222222222222ull);
  h.sim.run();
  EXPECT_TRUE(h.ctl->idle());
  EXPECT_EQ(h.counter("mem.writes"), 2u);
  EXPECT_GE(h.counter("mem.palp_write_overlaps"), 1u);
}

TEST(PalpController, SamePartitionWritesSerialize) {
  Harness h(palp_config(true, 2, 2));
  // Two writes to the same partition: the pump would admit both, the
  // partition occupancy must not.
  h.enqueue_write(h.addr_for(0, 2), 0x3333333333333333ull);
  h.enqueue_write(h.addr_for(0, 2, 1), 0x4444444444444444ull);
  h.sim.run();
  EXPECT_TRUE(h.ctl->idle());
  EXPECT_EQ(h.counter("mem.writes"), 2u);
}

TEST(PalpController, BrownoutShrinksWriteWays) {
  // A permanent 0.5x brown-out shrinks the 2-way write allowance to
  // max(1, 2*0.5=1) = 1: distinct-partition writes stop overlapping.
  fault::FaultConfig fcfg;
  fcfg.brownout_period = us(1000);
  fcfg.brownout_duration = us(1000);  // always inside the window
  fcfg.brownout_budget_factor = 0.5;
  const fault::FaultModel fault(fcfg, 64, 7);
  ASSERT_TRUE(fault.in_brownout(0));
  EXPECT_EQ(fault.palp_allowance(2, 0, 1), 1u);
  EXPECT_EQ(fault.palp_allowance(2, 0, 0), 1u);
  EXPECT_EQ(fault.palp_allowance(4, 0, 0), 2u);

  Harness h(palp_config(true, 2, 2), &fault);
  h.enqueue_write(h.addr_for(0, 0), 0x5555555555555555ull);
  h.enqueue_write(h.addr_for(0, 1), 0x6666666666666666ull);
  h.sim.run();
  EXPECT_TRUE(h.ctl->idle());
  EXPECT_EQ(h.counter("mem.writes"), 2u);
  EXPECT_EQ(h.counter("mem.palp_write_overlaps"), 0u);
  EXPECT_GT(h.counter("mem.brownout_writes"), 0u);
}

TEST(PalpController, SinglePartitionDegeneratesToBaseline) {
  // palp.enabled with one subarray per bank must be bit-identical to the
  // plain controller: same completion log, same stats, zero PALP counters.
  auto run = [](bool palp) {
    sim::Simulator sim;
    stats::Registry reg;
    pcm::PcmConfig pcm_cfg = pcm::table2_config();
    const auto scheme = core::make_scheme(schemes::SchemeKind::kTetris,
                                          pcm_cfg);
    mem::ControllerConfig ccfg = palp_config(palp);
    mem::Controller ctl(sim, pcm_cfg, ccfg, *scheme, reg);
    std::vector<Done> done;
    ctl.set_read_callback([&](const mem::MemoryRequest& r) {
      done.push_back({'R', r.addr, r.complete_tick});
    });
    ctl.set_write_callback([&](const mem::MemoryRequest& r) {
      done.push_back({'W', r.addr, r.complete_tick});
    });
    EXPECT_FALSE(ctl.palp_active());

    Rng rng(99);
    const u32 units = pcm_cfg.geometry.units_per_line();
    for (u32 i = 0; i < 400; ++i) {
      sim.run(sim.now() + rng.below(ns(80)));
      mem::MemoryRequest req;
      req.addr = rng.below(512) * 64;
      if (rng.chance(0.5)) {
        req.type = mem::ReqType::kWrite;
        req.data = pcm::LogicalLine(units);
        for (u32 u = 0; u < units; ++u) {
          req.data.set_word(u, rng.next() & 0xFF);
        }
      } else {
        req.type = mem::ReqType::kRead;
      }
      (void)ctl.enqueue(std::move(req));
    }
    sim.run();
    EXPECT_EQ(reg.counter("mem.palp_overlapped_reads").value(), 0u);
    EXPECT_EQ(reg.counter("mem.palp_pump_stalls").value(), 0u);
    struct Result {
      std::vector<Done> done;
      u64 events;
      double read_lat, write_lat;
    };
    return Result{std::move(done), sim.executed(),
                  reg.accumulator("mem.read_latency_ns").sum(),
                  reg.accumulator("mem.write_latency_ns").sum()};
  };

  const auto off = run(false);
  const auto on = run(true);
  EXPECT_GT(off.done.size(), 100u);
  ASSERT_EQ(off.done.size(), on.done.size());
  for (std::size_t i = 0; i < off.done.size(); ++i) {
    EXPECT_EQ(off.done[i].kind, on.done[i].kind);
    EXPECT_EQ(off.done[i].addr, on.done[i].addr);
    EXPECT_EQ(off.done[i].complete, on.done[i].complete);
  }
  EXPECT_EQ(off.events, on.events);
  EXPECT_EQ(off.read_lat, on.read_lat);
  EXPECT_EQ(off.write_lat, on.write_lat);
}

TEST(PalpController, ConfigValidation) {
  mem::ControllerConfig ccfg = palp_config(true);
  EXPECT_TRUE(ccfg.valid());
  ccfg.palp.write_ways = 0;
  EXPECT_FALSE(ccfg.valid());
  ccfg.palp.write_ways = 2;
  ccfg.write_pausing = true;  // pausing's bank preemption assumes the
  EXPECT_FALSE(ccfg.valid()); // single-active-write invariant
  ccfg.palp.enabled = false;
  EXPECT_TRUE(ccfg.valid());
}

// -- Invariant monitor ----------------------------------------------------

TEST(PalpVerify, MonitorAcceptsLegalStates) {
  core::PackerConfig pcfg;
  pcfg.k = 8;
  pcfg.l = 2;
  pcfg.budget = 128;
  verify::InvariantMonitor mon(pcfg, pcm::table2_config().timing);

  pcm::ChargePump pump;
  mon.check_palp_admission(pump, 2, 2);  // idle pump
  pump.begin_write();
  pump.begin_rww_read();
  pump.begin_rww_read();
  mon.check_palp_admission(pump, 2, 2);  // at the caps, not over
  EXPECT_EQ(mon.stats().palp_checks, 2u);
  pump.end_rww_read();
  pump.end_rww_read();
  pump.end_write();
}

TEST(PalpVerify, MonitorFlagsOverCapStates) {
  core::PackerConfig pcfg;
  pcfg.k = 8;
  pcfg.l = 2;
  pcfg.budget = 128;
  verify::InvariantMonitor mon(pcfg, pcm::table2_config().timing);

  pcm::ChargePump writes;
  writes.begin_write();
  writes.begin_write();
  EXPECT_THROW(mon.check_palp_admission(writes, 1, 2), verify::VerifyError);

  pcm::ChargePump reads;
  reads.begin_write();
  reads.begin_rww_read();
  reads.begin_rww_read();
  EXPECT_THROW(mon.check_palp_admission(reads, 2, 1), verify::VerifyError);
  // The same rww count is legal once the pump unloads (reads outlive
  // their overlapped write).
  reads.end_write();
  mon.check_palp_admission(reads, 2, 1);
}

// -- Harness-level degeneracy ---------------------------------------------

TEST(PalpSystem, PalpOffMetricsUntouched) {
  // A full-system PALP-off run must report zero PALP metrics, and a
  // partitions=1 PALP-on run must match it exactly.
  harness::SystemConfig base;
  base.cores = 2;
  base.instructions_per_core = 30'000;
  base.seed = 11;
  harness::SystemConfig palp1 = base;
  palp1.controller.palp.enabled = true;  // subarrays_per_bank stays 1
  const auto& wl = workload::profile_by_name("vips");
  const auto a = harness::run_system(base, wl, schemes::SchemeKind::kTetris);
  const auto b = harness::run_system(palp1, wl, schemes::SchemeKind::kTetris);
  EXPECT_TRUE(a.completed);
  EXPECT_GT(a.writes, 0u);
  EXPECT_EQ(a.palp_overlapped_reads, 0u);
  EXPECT_EQ(a.palp_pump_stalls, 0u);
  EXPECT_EQ(a.palp_write_overlaps, 0u);
  EXPECT_EQ(a.ipc, b.ipc);
  EXPECT_EQ(a.runtime_ns, b.runtime_ns);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.read_latency_ns, b.read_latency_ns);
  EXPECT_EQ(a.write_latency_ns, b.write_latency_ns);
  EXPECT_EQ(a.write_energy_pj, b.write_energy_pj);
}

TEST(PalpSystem, OverlapImprovesReadLatencyOnReadHeavyMix) {
  // The tentpole claim at test scale: 4 partitions + PALP beats the
  // 1-partition baseline on read latency for a read-heavy profile.
  harness::SystemConfig base;
  base.cores = 2;
  base.instructions_per_core = 60'000;
  base.seed = 3;
  harness::SystemConfig palp = base;
  palp.pcm.geometry.subarrays_per_bank = 4;
  palp.controller.palp.enabled = true;
  const auto& wl = workload::profile_by_name("canneal");
  const auto a = harness::run_system(base, wl, schemes::SchemeKind::kTetris);
  const auto b = harness::run_system(palp, wl, schemes::SchemeKind::kTetris);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_LT(b.read_latency_ns, a.read_latency_ns);
}

}  // namespace
}  // namespace tw
