#include "tw/fault/fault.hpp"

namespace tw::fault {

FaultConfig profile_config(FaultProfile profile) {
  FaultConfig c;
  switch (profile) {
    case FaultProfile::kNone:
      break;
    case FaultProfile::kLight:
      // Rare transients, shallow brown-outs: every workload completes with
      // zero invariant violations and the paper's scheme ranking holds.
      c.set_fail_prob = 1e-3;
      c.reset_fail_prob = 5e-4;
      c.max_retries = 3;
      c.brownout_period = us(100);
      c.brownout_duration = us(5);
      c.brownout_budget_factor = 0.5;
      break;
    case FaultProfile::kHeavy:
      // Aggressive transients, endurance wear-out, deep brown-outs —
      // the stress profile for the resilience machinery itself.
      c.set_fail_prob = 2e-2;
      c.reset_fail_prob = 1e-2;
      c.max_retries = 5;
      c.wear_knee = 64;
      c.worn_fail_prob = 0.05;
      c.brownout_period = us(50);
      c.brownout_duration = us(10);
      c.brownout_budget_factor = 0.25;
      break;
    case FaultProfile::kStuckBank:
      // Light transients plus one bank hard-failed at power-on, to
      // exercise the graceful-degradation remap path.
      c.set_fail_prob = 1e-3;
      c.reset_fail_prob = 5e-4;
      c.max_retries = 3;
      c.stuck_bank = 2;
      break;
  }
  return c;
}

std::string_view profile_name(FaultProfile profile) {
  switch (profile) {
    case FaultProfile::kNone:
      return "none";
    case FaultProfile::kLight:
      return "light";
    case FaultProfile::kHeavy:
      return "heavy";
    case FaultProfile::kStuckBank:
      return "stuck-bank";
  }
  return "unknown";
}

std::optional<FaultProfile> parse_fault_profile(std::string_view name) {
  if (name == "none") return FaultProfile::kNone;
  if (name == "light") return FaultProfile::kLight;
  if (name == "heavy") return FaultProfile::kHeavy;
  if (name == "stuck-bank") return FaultProfile::kStuckBank;
  return std::nullopt;
}

}  // namespace tw::fault
