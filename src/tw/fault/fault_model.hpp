#pragma once
// FaultModel: the deterministic decision engine behind fault injection.
//
// Two injection levels share one model:
//  * system level — the memory controller calls plan_line_faults() after
//    the scheme plans a write; the model decides how many programmed bits
//    transiently failed, replays the bounded verify-and-retry ladder
//    (each attempt re-packed by the scheme with exponentially widened
//    pulses), and returns the extra latency / pulses / FailedLine flag;
//  * bit level — as a pcm::CellFaultHook on a PcmArray, the model fails
//    individual program pulses; core::HwExecutor's verify-and-retry loop
//    re-drives the failed cells (tests cross-check the two levels).
//
// Determinism: every decision hashes its stable site coordinates
// (seed, line address, per-line service sequence, pass, attempt — or cell
// index and pulse count at bit level) through SplitMix64 into a private
// xoshiro stream. No shared RNG state, so decisions are independent of
// event interleaving, thread count and call order.

#include <vector>

#include "tw/common/bits.hpp"
#include "tw/common/rng.hpp"
#include "tw/common/types.hpp"
#include "tw/fault/fault.hpp"
#include "tw/pcm/array.hpp"
#include "tw/schemes/write_scheme.hpp"

namespace tw::fault {

/// What the fault model did to one line-write service.
struct LineFaultOutcome {
  Tick extra_latency = 0;      ///< retry sub-requests appended to service
  BitTransitions retry_pulses; ///< pulses re-driven across all attempts
  u32 attempts = 0;            ///< retry attempts performed (<= max_retries)
  u32 failed_sets = 0;         ///< SET bits still failed after the ladder
  u32 failed_resets = 0;       ///< RESET bits still failed after the ladder
  /// Retries exhausted with bits still failed: the line is surfaced as a
  /// FailedLine stat (higher-level ECC territory) instead of asserting.
  bool line_failed = false;
};

class FaultModel final : public pcm::CellFaultHook {
 public:
  /// `total_banks` sizes the stuck-bank map; `seed` roots every decision.
  FaultModel(const FaultConfig& cfg, u32 total_banks, u64 seed);

  const FaultConfig& config() const { return cfg_; }
  u64 seed() const { return seed_; }

  // -- system level (controller) ------------------------------------------

  /// Decide the transient-failure fate of one planned line write.
  /// `service_seq` is the controller's monotone per-service counter,
  /// `line_wear_bits` the line's pcm::WearTracker bits_programmed ledger,
  /// `line_bits` the number of data cells per line (wear normalization).
  /// `scheme.plan_retry(...)` prices each retry attempt.
  LineFaultOutcome plan_line_faults(Addr line, u64 service_seq,
                                    const schemes::ServicePlan& plan,
                                    const schemes::WriteScheme& scheme,
                                    u64 line_wear_bits, u32 line_bits) const;

  /// True when `bank` hard-failed at power-on.
  bool bank_stuck(u32 bank) const { return stuck_[bank] != 0; }
  bool any_bank_stuck() const { return stuck_count_ > 0; }
  u32 stuck_banks() const { return stuck_count_; }
  /// Healthy bank that absorbs a stuck bank's traffic (the next healthy
  /// bank cyclically); identity for healthy banks.
  u32 remap_bank(u32 bank) const { return remap_[bank]; }

  /// Power-budget multiplier at `now` (brownout_budget_factor inside a
  /// brown-out window, 1.0 outside).
  double budget_factor(Tick now) const {
    return in_brownout(now) ? cfg_.brownout_budget_factor : 1.0;
  }
  bool in_brownout(Tick now) const {
    return cfg_.brownout_period > 0 && cfg_.brownout_duration > 0 &&
           cfg_.brownout_budget_factor < 1.0 &&
           now % cfg_.brownout_period < cfg_.brownout_duration;
  }

  /// PALP concurrency allowance at `now`: brown-out shrinks the nominal
  /// concurrent-partition (or read-while-write) allowance by the same
  /// factor that shrinks packing budgets, floored at `floor_allow`
  /// (1 keeps writes progressing serially; 0 lets reads wait the
  /// brown-out out entirely).
  u32 palp_allowance(u32 nominal, Tick now, u32 floor_allow) const {
    const double f = budget_factor(now);
    if (f >= 1.0) return nominal;
    const u32 shrunk = static_cast<u32>(static_cast<double>(nominal) * f);
    return shrunk > floor_allow ? shrunk : floor_allow;
  }

  // -- bit level (PcmArray hook) ------------------------------------------

  /// pcm::CellFaultHook: fail this pulse? Pure in (bit, value, pulse,
  /// attempt) and the model's seed.
  bool pulse_fails(u64 bit, bool value, u64 pulse,
                   u32 attempt) const override;

  /// Effective per-bit failure probability for a pulse kind, given the
  /// per-cell wear estimate and the retry attempt (exposed for tests).
  double effective_prob(bool set_pulse, u64 cell_wear, u32 attempt) const;

 private:
  /// Deterministic failure count among `count` independent bits with
  /// probability `p`, from site hash `h`.
  u32 draw_failures(u64 h, u32 count, double p) const;

  FaultConfig cfg_;
  u64 seed_;
  std::vector<u8> stuck_;  ///< per-bank stuck flag
  std::vector<u32> remap_; ///< per-bank remap target (identity if healthy)
  u32 stuck_count_ = 0;
};

}  // namespace tw::fault
