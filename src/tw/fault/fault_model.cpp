#include "tw/fault/fault_model.hpp"

#include <initializer_list>

#include "tw/common/assert.hpp"

namespace tw::fault {
namespace {

// Domain tags keep the hash sites of unrelated decision families disjoint
// even when their coordinates coincide.
constexpr u64 kDomStuckBank = 0x51C6'BA9Cull;
constexpr u64 kDomLineSet = 0x11FE'5E75ull;
constexpr u64 kDomLineReset = 0x11FE'0E5Eull;
constexpr u64 kDomCellPulse = 0xCE11'F41Cull;

/// Mix a decision site's coordinates into one well-distributed 64-bit
/// value. SplitMix64 absorbs each word; the running state is the hash.
u64 site_hash(std::initializer_list<u64> words) {
  u64 h = 0x9E3779B97F4A7C15ull;
  for (u64 w : words) {
    SplitMix64 sm(h ^ w);
    h = sm.next();
  }
  return h;
}

}  // namespace

FaultModel::FaultModel(const FaultConfig& cfg, u32 total_banks, u64 seed)
    : cfg_(cfg), seed_(seed), stuck_(total_banks, 0), remap_(total_banks, 0) {
  TW_EXPECTS(total_banks > 0);
  TW_EXPECTS(cfg_.valid());
  // Stuck banks are a power-on condition: decided once, here, from the
  // seed alone, never from runtime state.
  for (u32 b = 0; b < total_banks; ++b) {
    bool s = cfg_.stuck_bank == b;
    if (!s && cfg_.stuck_bank_prob > 0.0) {
      Rng rng(site_hash({seed_, kDomStuckBank, b}));
      s = rng.chance(cfg_.stuck_bank_prob);
    }
    stuck_[b] = s ? 1 : 0;
    if (s) ++stuck_count_;
  }
  // At least one healthy bank must remain to absorb remapped traffic.
  TW_EXPECTS(stuck_count_ < total_banks);
  for (u32 b = 0; b < total_banks; ++b) {
    u32 t = b;
    while (stuck_[t] != 0) t = (t + 1) % total_banks;
    remap_[b] = t;
  }
}

double FaultModel::effective_prob(bool set_pulse, u64 cell_wear,
                                  u32 attempt) const {
  double p = set_pulse ? cfg_.set_fail_prob : cfg_.reset_fail_prob;
  if (cfg_.wear_knee > 0 && cell_wear > cfg_.wear_knee) {
    // Endurance escalation: past the knee, failure probability grows
    // linearly with accumulated wear (wear/knee ratio), floored at
    // worn_fail_prob so worn cells fail even when transients are off.
    const double ratio = static_cast<double>(cell_wear) /
                         static_cast<double>(cfg_.wear_knee);
    double worn = cfg_.worn_fail_prob * ratio;
    if (worn < cfg_.worn_fail_prob) worn = cfg_.worn_fail_prob;
    if (worn > p) p = worn;
  }
  // Widened retry pulses deposit more energy: damp per attempt.
  for (u32 i = 0; i < attempt; ++i) p *= cfg_.retry_fail_damping;
  // Cap so the retry ladder always has a real chance of converging.
  return p > 0.75 ? 0.75 : p;
}

u32 FaultModel::draw_failures(u64 h, u32 count, double p) const {
  if (count == 0 || p <= 0.0) return 0;
  Rng rng(h);
  u32 failed = 0;
  for (u32 i = 0; i < count; ++i) {
    if (rng.chance(p)) ++failed;
  }
  return failed;
}

LineFaultOutcome FaultModel::plan_line_faults(
    Addr line, u64 service_seq, const schemes::ServicePlan& plan,
    const schemes::WriteScheme& scheme, u64 line_wear_bits,
    u32 line_bits) const {
  LineFaultOutcome out;
  if (plan.programmed.total() == 0) return out;
  TW_EXPECTS(line_bits > 0);
  // Per-cell wear estimate for this line: the WearTracker ledger is
  // line-granular, so spread bits_programmed evenly over the line's cells.
  const u64 cell_wear = line_wear_bits / line_bits;

  // Attempt 0: the scheme's planned pulses, at nominal width.
  u32 fs = draw_failures(
      site_hash({seed_, kDomLineSet, line, service_seq, 0}),
      plan.programmed.sets, effective_prob(true, cell_wear, 0));
  u32 fr = draw_failures(
      site_hash({seed_, kDomLineReset, line, service_seq, 0}),
      plan.programmed.resets, effective_prob(false, cell_wear, 0));

  // Bounded verify-and-retry ladder: each attempt re-enters the scheme's
  // planner over just the failed bits with exponentially widened pulses,
  // then re-draws the (damped) survivors.
  while ((fs > 0 || fr > 0) && out.attempts < cfg_.max_retries) {
    ++out.attempts;
    const BitTransitions redo{fs, fr};
    out.retry_pulses.sets += fs;
    out.retry_pulses.resets += fr;
    out.extra_latency +=
        scheme.plan_retry(redo, out.attempts, cfg_.retry_widening);
    fs = draw_failures(
        site_hash({seed_, kDomLineSet, line, service_seq, out.attempts}),
        fs, effective_prob(true, cell_wear, out.attempts));
    fr = draw_failures(
        site_hash({seed_, kDomLineReset, line, service_seq, out.attempts}),
        fr, effective_prob(false, cell_wear, out.attempts));
  }
  out.failed_sets = fs;
  out.failed_resets = fr;
  out.line_failed = fs > 0 || fr > 0;
  return out;
}

bool FaultModel::pulse_fails(u64 bit, bool value, u64 pulse,
                             u32 attempt) const {
  const double p = effective_prob(value, pulse, attempt);
  if (p <= 0.0) return false;
  Rng rng(site_hash({seed_, kDomCellPulse, bit,
                     static_cast<u64>(value ? 1 : 0), pulse, attempt}));
  return rng.chance(p);
}

}  // namespace tw::fault
