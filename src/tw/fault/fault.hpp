#pragma once
// Fault-injection configuration: what can go wrong in the PCM substrate
// and how aggressively. Everything here is deterministic given (config,
// seed): the FaultModel derives every decision by hashing stable site
// coordinates (address, per-line write sequence, attempt), never from a
// shared stream, so injected faults are independent of event interleaving
// and thread count — the same properties the rest of the simulator
// guarantees (see tests/determinism_test.cpp).
//
// Fault taxonomy (DESIGN.md §11):
//  * transient pulse failures — a programmed bit fails to flip its cell
//    with probability set_fail_prob / reset_fail_prob (the SET and RESET
//    pulses stress cells differently); failed bits are re-driven with
//    exponentially widened pulses up to max_retries attempts;
//  * endurance wear-out — once a line's per-cell program count (from the
//    existing pcm::WearTracker ledger) passes wear_knee, its failure
//    probability escalates linearly with accumulated wear;
//  * stuck banks — a whole bank (all its subarrays) hard-fails at power
//    on; the controller degrades gracefully by remapping its traffic onto
//    the neighbouring healthy bank (Start-Gap keeps content addressable);
//  * charge-pump brown-outs — periodic windows in which the shared pump
//    can only sustain a fraction of the nominal power budget, shrinking
//    every scheme's packing/concurrency budget for writes planned inside
//    the window.

#include <optional>
#include <string_view>

#include "tw/common/types.hpp"

namespace tw::fault {

/// Named fault presets selectable on every figure/harness binary via
/// --fault-profile=none|light|heavy|stuck-bank.
enum class FaultProfile : u8 {
  kNone,       ///< faults disabled (bit-identical to the fault-free build)
  kLight,      ///< rare transient failures + shallow brown-outs
  kHeavy,      ///< aggressive failures, endurance wear-out, deep brown-outs
  kStuckBank,  ///< light transients plus one bank stuck at power-on
};

/// All fault-injection knobs. Default-constructed = everything off.
struct FaultConfig {
  static constexpr u32 kNoStuckBank = 0xFFFFFFFFu;

  /// Per-programmed-bit transient failure probability, split by pulse
  /// kind (SET pulses are long/low-current, RESET short/high-current).
  double set_fail_prob = 0.0;
  double reset_fail_prob = 0.0;

  /// Bounded verify-and-retry: failed bits are re-driven at most this
  /// many times before the line is surfaced as a FailedLine stat.
  u32 max_retries = 3;
  /// Pulse-width multiplier per retry attempt (exponential widening:
  /// attempt a re-drives with width x retry_widening^a).
  double retry_widening = 2.0;
  /// Failure-probability multiplier per attempt — widened pulses deposit
  /// more energy and fail less often.
  double retry_fail_damping = 0.5;

  /// Per-cell program count at which endurance failures begin (0 = off).
  /// The model reads the line-granular pcm::WearTracker ledger and uses
  /// bits_programmed / line_bits as the per-cell estimate.
  u64 wear_knee = 0;
  /// Failure-probability floor for cells past the knee (escalates
  /// linearly with wear beyond it).
  double worn_fail_prob = 0.0;

  /// Force this flat bank stuck from construction (kNoStuckBank = none).
  u32 stuck_bank = kNoStuckBank;
  /// Additionally, each bank is independently stuck at power-on with this
  /// probability (decided once, from the seed).
  double stuck_bank_prob = 0.0;

  /// Charge-pump brown-out windows: the first `brownout_duration` ticks
  /// of every `brownout_period` shrink the power budget to
  /// brownout_budget_factor x nominal. period = 0 disables.
  Tick brownout_period = 0;
  Tick brownout_duration = 0;
  double brownout_budget_factor = 1.0;

  /// True when any fault mechanism is active. run_system() skips building
  /// a FaultModel entirely when false, so the disabled path costs nothing.
  bool enabled() const {
    return set_fail_prob > 0.0 || reset_fail_prob > 0.0 || wear_knee > 0 ||
           stuck_bank != kNoStuckBank || stuck_bank_prob > 0.0 ||
           (brownout_period > 0 && brownout_duration > 0 &&
            brownout_budget_factor < 1.0);
  }

  bool valid() const {
    return set_fail_prob >= 0.0 && set_fail_prob <= 1.0 &&
           reset_fail_prob >= 0.0 && reset_fail_prob <= 1.0 &&
           retry_widening >= 1.0 && retry_fail_damping > 0.0 &&
           retry_fail_damping <= 1.0 && worn_fail_prob >= 0.0 &&
           worn_fail_prob <= 1.0 && stuck_bank_prob >= 0.0 &&
           stuck_bank_prob < 1.0 && brownout_budget_factor > 0.0 &&
           brownout_budget_factor <= 1.0 &&
           (brownout_period == 0 || brownout_duration <= brownout_period);
  }
};

/// The preset behind each named profile.
FaultConfig profile_config(FaultProfile profile);

/// Canonical CLI spelling of a profile.
std::string_view profile_name(FaultProfile profile);

/// Parse a CLI spelling ("none", "light", "heavy", "stuck-bank");
/// std::nullopt for anything else.
std::optional<FaultProfile> parse_fault_profile(std::string_view name);

}  // namespace tw::fault
