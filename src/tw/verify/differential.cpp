#include "tw/verify/differential.hpp"

#include <algorithm>
#include <cstdio>
#include <string>

namespace tw::verify {
namespace {

std::string hex(u64 v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

void DifferentialChecker::fail(const std::string& what) const {
  throw VerifyError(std::string(scheme_.name()) +
                    " diverged from oracle: " + what);
}

schemes::ServicePlan DifferentialChecker::check_write(
    pcm::LineBuf& line, const pcm::LogicalLine& next) {
  const auto& cfg = scheme_.config();
  const auto sem = scheme_.semantics();
  const u32 bits = cfg.geometry.data_unit_bits;
  const u64 mask = low_mask(bits);

  // Oracle first (it only reads); then the production write mutates line.
  const OracleResult truth = oracle_.write(line, next);
  const schemes::ServicePlan plan = scheme_.plan_write(line, next);

  // Post-write physical image: exact cell and tag equality per unit.
  for (u32 i = 0; i < line.units(); ++i) {
    if (line.cell(i) != truth.expected.cell(i)) {
      fail("unit " + std::to_string(i) + " cells " + hex(line.cell(i)) +
           ", oracle expects " + hex(truth.expected.cell(i)));
    }
    if (line.flip(i) != truth.expected.flip(i)) {
      fail("unit " + std::to_string(i) + " flip tag " +
           std::to_string(line.flip(i)) + ", oracle expects " +
           std::to_string(truth.expected.flip(i)));
    }
    report_.cells_compared += bits + 1;
  }

  // Logical round-trip: reading the line back yields the requested data.
  const pcm::LogicalLine readback = pcm::LogicalLine::from_physical(line);
  for (u32 i = 0; i < line.units(); ++i) {
    if ((readback.word(i) & mask) != (next.word(i) & mask)) {
      fail("unit " + std::to_string(i) + " reads back " +
           hex(readback.word(i) & mask) + ", wrote " +
           hex(next.word(i) & mask));
    }
  }

  // Pulse accounting.
  if (plan.programmed != truth.programmed) {
    fail("programmed pulses {" + std::to_string(plan.programmed.sets) +
         " SET, " + std::to_string(plan.programmed.resets) +
         " RESET}, oracle expects {" +
         std::to_string(truth.programmed.sets) + " SET, " +
         std::to_string(truth.programmed.resets) + " RESET}");
  }
  if (plan.background != truth.background) {
    fail("background pulses {" + std::to_string(plan.background.sets) +
         " SET, " + std::to_string(plan.background.resets) +
         " RESET}, oracle expects {" +
         std::to_string(truth.background.sets) + " SET, " +
         std::to_string(truth.background.resets) + " RESET}");
  }
  if (plan.flipped_units != truth.flipped_units) {
    fail("flipped_units " + std::to_string(plan.flipped_units) +
         ", oracle expects " + std::to_string(truth.flipped_units));
  }
  if (plan.silent != truth.silent) {
    fail("silent=" + std::to_string(plan.silent) + ", oracle expects " +
         std::to_string(truth.silent));
  }

  // Latency envelope. Lower: a read (if performed) plus the oracle's
  // pulse floor, plus the power-area floor for schemes whose timing packs
  // measured current demand (worst-case closed forms idealize concurrency
  // and are exempt — see WriteSemantics::measured_timing).
  Tick floor = sem.measured_timing
                   ? std::max(truth.pulse_lower, truth.area_lower)
                   : truth.pulse_lower;
  if (plan.read_before_write) floor += cfg.timing.t_read;
  if (plan.latency < floor) {
    fail("latency " + std::to_string(plan.latency) +
         " ps below oracle lower bound " + std::to_string(floor) + " ps");
  }
  // Upper: read + analysis + the fully-serial worst case.
  const Tick ceiling =
      cfg.timing.t_read + plan.analysis_ticks + truth.serial_upper;
  if (plan.latency > ceiling) {
    fail("latency " + std::to_string(plan.latency) +
         " ps above fully-serial upper bound " + std::to_string(ceiling) +
         " ps");
  }

  // Energy floor: the pulses performed must cost at least the minimal
  // transition energy of the cheaper flip choice per unit.
  const double spent =
      (plan.programmed.sets + plan.background.sets) * cfg.energy.set_pj +
      (plan.programmed.resets + plan.background.resets) *
          cfg.energy.reset_pj;
  if (spent + 1e-6 < truth.energy_lower_pj) {
    fail("write energy " + std::to_string(spent) +
         " pJ below oracle floor " +
         std::to_string(truth.energy_lower_pj) + " pJ");
  }

  ++report_.writes;
  if (truth.silent) ++report_.silent_writes;
  report_.flipped_units += truth.flipped_units;
  report_.latency_total += plan.latency;
  return plan;
}

}  // namespace tw::verify
