#pragma once
// The verify subsystem's failure type: thrown when a production scheme
// diverges from the bit-serial oracle or a hardware invariant is violated.
// A distinct type (rather than ContractViolation) lets tests assert that
// it was the *checker* that caught a planted bug, not a scheme's own
// internal assertion.

#include <stdexcept>
#include <string>

namespace tw::verify {

class VerifyError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace tw::verify
