#include "tw/verify/oracle.hpp"

#include <algorithm>

#include "tw/common/assert.hpp"

namespace tw::verify {
namespace {

// Everything below is deliberately bit-serial: the oracle must share no
// word-level shortcut (XOR/popcount masks) with the production kernels it
// checks, so a bug in those kernels cannot cancel out here.

u32 count_ones_serial(u64 word, u32 bits) {
  u32 n = 0;
  for (u32 b = 0; b < bits; ++b) {
    if (get_bit(word, b)) ++n;
  }
  return n;
}

bool decide_flip(u64 old_cells, bool old_tag, u64 new_logical,
                 schemes::FlipCriterion crit, u32 bits) {
  switch (crit) {
    case schemes::FlipCriterion::kNone:
      return false;
    case schemes::FlipCriterion::kHamming: {
      // Cost of storing {D, tag=0} vs {~D, tag=1}, counting the tag cell.
      u32 cost_plain = old_tag ? 1u : 0u;
      u32 cost_flip = old_tag ? 0u : 1u;
      for (u32 b = 0; b < bits; ++b) {
        const bool o = get_bit(old_cells, b);
        if (get_bit(new_logical, b) != o) ++cost_plain;
        if (get_bit(new_logical, b) == o) ++cost_flip;
      }
      return cost_flip < cost_plain;
    }
    case schemes::FlipCriterion::kMinimizeSets:
      return count_ones_serial(new_logical, bits) * 2 > bits;
  }
  return false;
}

}  // namespace

OracleScheme::OracleScheme(const pcm::PcmConfig& cfg,
                           schemes::WriteSemantics sem)
    : cfg_(cfg), sem_(sem) {
  cfg_.validate();
}

OracleResult OracleScheme::write(const pcm::LineBuf& line,
                                 const pcm::LogicalLine& next) const {
  TW_EXPECTS(line.units() == next.units());
  const u32 bits = cfg_.geometry.data_unit_bits;
  const u32 units = line.units();
  const u32 l = cfg_.l();
  const u32 budget = cfg_.bank_power_budget();
  const double set_pj = cfg_.energy.set_pj;
  const double reset_pj = cfg_.energy.reset_pj;

  OracleResult r;
  r.expected = pcm::LineBuf(units);
  r.units.resize(units);

  for (u32 i = 0; i < units; ++i) {
    OracleUnit& u = r.units[i];
    const u64 old_cells = line.cell(i);
    const bool old_tag = line.flip(i);
    const u64 logical = next.word(i);

    if (sem_.pulses == schemes::PulsePolicy::kResetOnly) {
      // PreSET: the stored word is the plain (uninverted) logical data —
      // all 64 bits, mirroring LineBuf::store_logical — with the tag
      // returned to 0. Critical path RESETs every zero data bit plus the
      // tag; the background pass SETs every physical cell not already '1'.
      u64 word = 0;
      for (u32 b = 0; b < 64; ++b) {
        word = with_bit(word, b, get_bit(logical, b));
      }
      u.expected_cells = word;
      u.expected_flip = false;
      for (u32 b = 0; b < bits; ++b) {
        if (!get_bit(logical, b)) ++u.reset_pulses;
      }
      ++u.reset_pulses;  // tag cell driven to 0 unconditionally
      for (u32 b = 0; b < bits; ++b) {
        if (!get_bit(old_cells, b)) ++u.background_sets;
      }
      if (!old_tag) ++u.background_sets;
    } else {
      const bool flip =
          decide_flip(old_cells, old_tag, logical, sem_.flip, bits);
      u64 stored = 0;
      for (u32 b = 0; b < bits; ++b) {
        const bool bit = get_bit(logical, b);
        stored = with_bit(stored, b, flip ? !bit : bit);
      }
      u.expected_cells = stored;
      u.expected_flip = flip;
      if (flip) ++r.flipped_units;

      for (u32 b = 0; b < bits; ++b) {
        const bool o = get_bit(old_cells, b);
        const bool n = get_bit(stored, b);
        if (sem_.pulses == schemes::PulsePolicy::kAllCells) {
          // Every data cell is pulsed toward its stored value.
          if (n) {
            ++u.set_pulses;
          } else {
            ++u.reset_pulses;
          }
        } else {
          // Read-before-write: only changed cells are pulsed.
          if (!o && n) ++u.set_pulses;
          if (o && !n) ++u.reset_pulses;
        }
      }
      if (old_tag != flip) {
        if (flip) {
          ++u.set_pulses;
        } else {
          ++u.reset_pulses;
        }
      }
    }

    r.expected.set_cell(i, u.expected_cells);
    r.expected.set_flip(i, u.expected_flip);
    r.programmed.sets += u.set_pulses;
    r.programmed.resets += u.reset_pulses;
    r.background.sets += u.background_sets;
  }
  r.silent = r.programmed.total() == 0;

  // Latency envelope. Lower bounds: one full pulse of the slowest pulse
  // kind performed, and the power-area bound (total current x time of the
  // critical pulses cannot be squeezed through the bank budget faster).
  if (r.programmed.sets > 0) {
    r.pulse_lower = cfg_.timing.t_set;
  } else if (r.programmed.resets > 0) {
    r.pulse_lower = cfg_.timing.t_reset;
  }
  const u64 area = u64{r.programmed.sets} * cfg_.timing.t_set +
                   u64{r.programmed.resets} * l * cfg_.timing.t_reset;
  r.area_lower = ceil_div(area, budget);

  // Upper bound: fully serial worst case — every unit takes its maximal
  // over-budget pass count in both pulse directions, every pass charged a
  // full Tset. Content-independent, so it bounds worst-case-model schemes
  // (conventional, FNW's ceil(N/2) closed form) as well as measured ones.
  const u64 set_passes = ceil_div(bits + 1, budget);
  const u64 reset_passes = ceil_div(u64{bits + 1} * l, budget);
  r.serial_upper =
      u64{units} * (set_passes + reset_passes) * cfg_.timing.t_set;

  // Energy floor: for each unit, the cheaper of the two flip choices'
  // changed-cell transition energy. No scheme that ends in the requested
  // logical state can program fewer transitions than the better choice.
  for (u32 i = 0; i < units; ++i) {
    const u64 old_cells = line.cell(i);
    const bool old_tag = line.flip(i);
    const u64 logical = next.word(i);
    double best = 0.0;
    for (int f = 0; f < 2; ++f) {
      const bool flip = f != 0;
      double e = 0.0;
      for (u32 b = 0; b < bits; ++b) {
        const bool o = get_bit(old_cells, b);
        const bool n = flip ? !get_bit(logical, b) : get_bit(logical, b);
        if (n != o) e += n ? set_pj : reset_pj;
      }
      if (old_tag != flip) e += flip ? set_pj : reset_pj;
      if (f == 0 || e < best) best = e;
    }
    r.energy_lower_pj += best;
  }
  return r;
}

}  // namespace tw::verify
