#pragma once
// OracleScheme: a deliberately simple, obviously-correct bit-serial
// reference model of a PCM cache-line write.
//
// Given a scheme's declared WriteSemantics (flip criterion + pulse
// policy), the oracle walks every cell of every data unit one bit at a
// time — no word-level XOR/popcount shortcuts, nothing shared with the
// production implementations — and produces the ground truth a write must
// satisfy: the exact post-write physical image, the per-unit SET/RESET
// pulse counts, and a latency/energy envelope that bounds any legal
// schedule (lower bounds no scheduler can beat, an upper bound from the
// fully-serial content-independent worst case). The DifferentialChecker
// (differential.hpp) runs production schemes side by side with this model.

#include <vector>

#include "tw/common/bits.hpp"
#include "tw/common/types.hpp"
#include "tw/pcm/line.hpp"
#include "tw/pcm/params.hpp"
#include "tw/schemes/write_scheme.hpp"

namespace tw::verify {

/// Ground truth for one data unit of a write.
struct OracleUnit {
  u64 expected_cells = 0;    ///< physical word after the write
  bool expected_flip = false;
  u32 set_pulses = 0;        ///< critical-path SET pulses (incl. tag)
  u32 reset_pulses = 0;      ///< critical-path RESET pulses (incl. tag)
  u32 background_sets = 0;   ///< PreSET background pulses (kResetOnly)
};

/// Ground truth for one full cache-line write.
struct OracleResult {
  pcm::LineBuf expected;        ///< exact post-write physical image
  std::vector<OracleUnit> units;
  BitTransitions programmed;    ///< critical-path pulses (scheme must match)
  BitTransitions background;    ///< off-critical-path pulses (PreSET)
  u32 flipped_units = 0;
  bool silent = false;          ///< no critical-path pulses at all

  /// No schedule performing at least one SET (RESET) can finish before a
  /// full Tset (Treset) pulse width.
  Tick pulse_lower = 0;
  /// Power-area bound: total current x time of the critical pulses divided
  /// by the bank budget. Valid for schemes that pack measured demand
  /// (WriteSemantics::measured_timing); the paper's worst-case closed
  /// forms idealize concurrency to >= 1 unit/slot and may nominally dip
  /// below it in pathological all-change cases.
  Tick area_lower = 0;
  /// Content-independent fully-serial worst case: every unit takes its
  /// worst-case over-budget pass count for both pulse directions at full
  /// Tset width. Any scheme's write phase must fit under this.
  Tick serial_upper = 0;
  /// Minimal transition energy over all per-unit flip choices — no write
  /// that ends in the requested logical state can spend less.
  double energy_lower_pj = 0.0;
};

/// The bit-serial reference model. Stateless and side-effect free: `write`
/// only computes what a correct write *would* do.
class OracleScheme {
 public:
  OracleScheme(const pcm::PcmConfig& cfg, schemes::WriteSemantics sem);

  const schemes::WriteSemantics& semantics() const { return sem_; }
  const pcm::PcmConfig& config() const { return cfg_; }

  /// Compute the ground truth of writing `next` over `line`.
  OracleResult write(const pcm::LineBuf& line,
                     const pcm::LogicalLine& next) const;

 private:
  pcm::PcmConfig cfg_;
  schemes::WriteSemantics sem_;
};

}  // namespace tw::verify
