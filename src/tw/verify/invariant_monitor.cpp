#include "tw/verify/invariant_monitor.hpp"

#include <algorithm>
#include <vector>

#include "tw/common/assert.hpp"

namespace tw::verify {
namespace {

std::string slot_str(const char* what, u64 idx) {
  return std::string(what) + " " + std::to_string(idx);
}

}  // namespace

InvariantMonitor::InvariantMonitor(core::PackerConfig cfg,
                                   pcm::TimingParams timing)
    : cfg_(cfg), timing_(timing) {
  TW_EXPECTS(cfg_.valid());
  TW_EXPECTS(timing_.valid());
}

void InvariantMonitor::fail(const std::string& what) const {
  throw VerifyError("invariant violated: " + what);
}

void InvariantMonitor::check_schedule(
    std::span<const core::UnitCounts> counts,
    const core::PackResult& pack) {
  check_schedule(counts, pack, cfg_);
}

void InvariantMonitor::check_schedule(
    std::span<const core::UnitCounts> counts, const core::PackResult& pack,
    const core::PackerConfig& cfg) {
  const u32 k = cfg.k;
  const u32 l = cfg.l;
  const u32 budget = cfg.budget;
  const u64 slots = u64{pack.result} * k + pack.subresult;

  std::unordered_map<u32, core::UnitCounts> by_unit;
  for (const auto& c : counts) {
    if (!by_unit.emplace(c.unit, c).second) {
      fail(slot_str("duplicate data unit", c.unit) + " in counts");
    }
  }

  // Rebuild per-sub-slot power from the raw queues, counting how often
  // each unit was scheduled per phase.
  std::vector<u64> power(slots, 0);
  std::unordered_map<u32, u32> seen1, seen0;
  for (const auto& w : pack.write1_queue) {
    const auto it = by_unit.find(w.unit);
    if (it == by_unit.end()) {
      fail(slot_str("write-1 for unknown unit", w.unit));
    }
    if (w.current != it->second.n1) {
      fail(slot_str("unit", w.unit) + " write-1 current " +
           std::to_string(w.current) + " != n1 " +
           std::to_string(it->second.n1));
    }
    ++seen1[w.unit];
    for (u32 p = 0; p < w.passes; ++p) {
      const u64 wu = u64{w.write_unit} + p;
      const u64 remaining =
          w.current - std::min<u64>(w.current, u64{budget} * p);
      const u64 draw = std::min<u64>(remaining, budget);
      if ((wu + 1) * k > slots) {
        fail(slot_str("write-1 in write unit", wu) +
             " outside the schedule");
      }
      // A write-1 spans all K sub-slots of its write unit.
      for (u32 s = 0; s < k; ++s) power[wu * k + s] += draw;
    }
  }
  for (const auto& w : pack.write0_queue) {
    const auto it = by_unit.find(w.unit);
    if (it == by_unit.end()) {
      fail(slot_str("write-0 for unknown unit", w.unit));
    }
    if (w.current != it->second.n0 * l) {
      fail(slot_str("unit", w.unit) + " write-0 current " +
           std::to_string(w.current) + " != n0*L " +
           std::to_string(it->second.n0 * l));
    }
    ++seen0[w.unit];
    for (u32 p = 0; p < w.passes; ++p) {
      const u64 s = u64{w.sub_slot} + p;
      const u64 remaining =
          w.current - std::min<u64>(w.current, u64{budget} * p);
      const u64 draw = std::min<u64>(remaining, budget);
      if (s >= slots) {
        fail(slot_str("write-0 in sub-slot", s) + " outside the schedule");
      }
      power[s] += draw;
      if (cfg.forbid_self_overlap && s < u64{pack.result} * k) {
        for (const auto& w1 : pack.write1_queue) {
          if (w1.unit == w.unit && s / k >= w1.write_unit &&
              s / k < u64{w1.write_unit} + w1.passes) {
            fail(slot_str("unit", w.unit) +
                 " write-0 overlaps its own write-1 (forbidden)");
          }
        }
      }
    }
  }

  // Every unit with demand scheduled exactly once per phase, none extra.
  for (const auto& [unit, c] : by_unit) {
    const u32 s1 = seen1.count(unit) ? seen1.at(unit) : 0;
    const u32 s0 = seen0.count(unit) ? seen0.at(unit) : 0;
    if ((c.n1 > 0) != (s1 == 1) || s1 > 1) {
      fail(slot_str("unit", unit) + " scheduled " + std::to_string(s1) +
           " times in the write-1 queue (n1=" + std::to_string(c.n1) +
           ")");
    }
    if ((c.n0 > 0) != (s0 == 1) || s0 > 1) {
      fail(slot_str("unit", unit) + " scheduled " + std::to_string(s0) +
           " times in the write-0 queue (n0=" + std::to_string(c.n0) +
           ")");
    }
  }

  // The budget invariant, on the independently rebuilt profile.
  for (u64 s = 0; s < slots; ++s) {
    if (power[s] > budget) {
      fail(slot_str("sub-slot", s) + " draws " + std::to_string(power[s]) +
           " current units, budget " + std::to_string(budget));
    }
  }

  // The production bookkeeping must agree with the rebuild.
  if (pack.slot_power.size() != slots) {
    fail("slot_power has " + std::to_string(pack.slot_power.size()) +
         " entries, schedule has " + std::to_string(slots) +
         " sub-slots");
  }
  for (u64 s = 0; s < slots; ++s) {
    if (pack.slot_power[s] != power[s]) {
      fail(slot_str("sub-slot", s) + " bookkeeping says " +
           std::to_string(pack.slot_power[s]) + ", rebuild says " +
           std::to_string(power[s]));
    }
  }
  ++stats_.schedules_checked;
}

void InvariantMonitor::check_trace(const core::FsmTrace& trace,
                                   const core::PackResult& pack) {
  const u32 k = cfg_.k;
  const u32 budget = cfg_.budget;
  const Tick t_set = timing_.t_set;
  const Tick t_reset = timing_.t_reset;
  const Tick sub = t_set / k;
  if (sub < t_reset) {
    fail("sub-write-unit (" + std::to_string(sub) +
         " ps) shorter than a RESET pulse (" + std::to_string(t_reset) +
         " ps)");
  }
  const u64 wu_slots = u64{pack.result} * k;
  const Tick schedule_end =
      pack.result * t_set + u64{pack.subresult} * sub;

  for (const auto& e : trace.events) {
    ++stats_.events_checked;
    if (e.current > budget) {
      fail(slot_str("event in slot", e.slot) + " alone draws " +
           std::to_string(e.current) + " > budget " +
           std::to_string(budget));
    }
    if (e.fsm == 1) {
      // Write-1: a full-Tset pulse aligned to its write-unit boundary.
      if (e.start != u64{e.slot} * t_set || e.end != e.start + t_set) {
        fail(slot_str("write-1 pulse in write unit", e.slot) +
             " misaligned: [" + std::to_string(e.start) + ", " +
             std::to_string(e.end) + ")");
      }
      if (e.slot >= pack.result) {
        fail(slot_str("write-1 in write unit", e.slot) +
             " beyond result=" + std::to_string(pack.result));
      }
    } else {
      // Write-0: a Treset pulse at its sub-slot boundary...
      const Tick start =
          e.slot < wu_slots
              ? (e.slot / k) * t_set + (e.slot % k) * sub
              : pack.result * t_set + (e.slot - wu_slots) * sub;
      if (e.start != start || e.end != e.start + t_reset) {
        fail(slot_str("write-0 pulse in sub-slot", e.slot) +
             " misaligned: [" + std::to_string(e.start) + ", " +
             std::to_string(e.end) + "), sub-slot starts at " +
             std::to_string(start));
      }
      if (e.slot < wu_slots) {
        // ...slotted into an interspace: it must fit entirely inside its
        // sub-slot window, hence inside the donor SET write unit.
        if (e.end > e.start + sub) {
          fail(slot_str("write-0 in sub-slot", e.slot) +
               " overruns its interspace window");
        }
        const Tick donor_end = (e.slot / k + 1) * t_set;
        if (e.end > donor_end) {
          fail(slot_str("write-0 in sub-slot", e.slot) +
               " overruns its donor write unit");
        }
      }
    }
    if (e.end > schedule_end) {
      fail(slot_str("event in slot", e.slot) + " ends at " +
           std::to_string(e.end) + ", schedule ends at " +
           std::to_string(schedule_end));
    }
  }

  // Instantaneous power: pulses are slot-aligned, so peaks occur at pulse
  // starts; sum every overlapping pulse at each start.
  for (const auto& e : trace.events) {
    u64 draw = 0;
    for (const auto& o : trace.events) {
      if (o.start <= e.start && e.start < o.end) draw += o.current;
    }
    if (draw > budget) {
      fail("instantaneous current " + std::to_string(draw) + " at tick " +
           std::to_string(e.start) + " exceeds budget " +
           std::to_string(budget));
    }
    stats_.peak_current =
        std::max(stats_.peak_current, static_cast<u32>(draw));
  }
  ++stats_.traces_checked;
}

void InvariantMonitor::begin_write() { driven_.clear(); }

void InvariantMonitor::on_pulse(u64 bit, core::WritePass pass,
                                pcm::ProgramResult /*result*/) {
  ++stats_.pulses_checked;
  const u8 flag = pass == core::WritePass::kSet ? 1u : 2u;
  u8& cell = driven_[bit];
  if ((cell & ~flag) != 0) {
    fail("cell " + std::to_string(bit) +
         " driven by both the SET and RESET FSMs in one write");
  }
  if ((cell & flag) != 0 && !allow_repulse_) {
    fail("cell " + std::to_string(bit) +
         " driven twice by the same FSM pass in one write");
  }
  cell |= flag;
}

void InvariantMonitor::check_palp_admission(const pcm::ChargePump& pump,
                                            u32 write_ways,
                                            u32 rww_allowance) {
  ++stats_.palp_checks;
  if (pump.exclusive() && pump.active_writes() > 0) {
    fail("PALP: partition write drawing while an exclusive batch owns "
         "the pump");
  }
  if (pump.active_writes() > write_ways) {
    fail("PALP: " + std::to_string(pump.active_writes()) +
         " concurrent partition writes exceed the " +
         std::to_string(write_ways) + "-way pump allowance");
  }
  if (pump.loaded() && pump.rww_reads() > rww_allowance) {
    fail("PALP: " + std::to_string(pump.rww_reads()) +
         " reads admitted against a loaded pump exceed the "
         "read-after-write-current limit of " +
         std::to_string(rww_allowance));
  }
}

sim::Simulator::Observer InvariantMonitor::sim_hook() {
  return [this](Tick now, u64 /*executed*/) {
    ++stats_.sim_events_seen;
    if (sim_seen_ && now < last_sim_tick_) {
      fail("simulator clock ran backwards: " + std::to_string(now) +
           " after " + std::to_string(last_sim_tick_));
    }
    sim_seen_ = true;
    last_sim_tick_ = now;
  };
}

}  // namespace tw::verify
