#pragma once
// InvariantMonitor: an independent re-checker of the hardware-level
// invariants the core pipeline claims to maintain. Where verify_pack and
// execute_fsms self-check production state with production bookkeeping,
// the monitor rebuilds everything from raw inputs and cross-checks:
//
//   check_schedule  - recomputes per-sub-slot power from the raw FSM
//                     queues (Creset = L x Cset weighting) and fails if
//                     any instant exceeds the bank budget, if a unit is
//                     scheduled zero or multiple times, or if the
//                     production slot_power bookkeeping disagrees.
//   check_trace     - checks every executed FSM event: write-1 pulses
//                     aligned to write-unit boundaries with length Tset;
//                     every RESET slotted into an interspace fits entirely
//                     inside its sub-slot window and its donor SET write
//                     unit; instantaneous current at every pulse start
//                     within budget.
//   on_pulse        - as a core::PulseObserver on HwExecutor, fails if
//                     the SET and RESET FSMs ever drive the same cell
//                     within one line write (call begin_write() per line).
//   sim_hook        - a sim::Simulator observer asserting the event clock
//                     never runs backwards.
//
// All violations throw VerifyError.

#include <span>
#include <string>
#include <unordered_map>

#include "tw/core/fsm.hpp"
#include "tw/core/packer.hpp"
#include "tw/core/read_stage.hpp"
#include "tw/core/write_driver.hpp"
#include "tw/pcm/pump.hpp"
#include "tw/sim/simulator.hpp"
#include "tw/verify/error.hpp"

namespace tw::verify {

/// Counters of what a monitor instance has examined.
struct MonitorStats {
  u64 schedules_checked = 0;
  u64 traces_checked = 0;
  u64 events_checked = 0;
  u64 pulses_checked = 0;
  u64 sim_events_seen = 0;
  u64 palp_checks = 0;   ///< pump admission states examined
  u32 peak_current = 0;  ///< max instantaneous current seen in any trace
};

class InvariantMonitor final : public core::PulseObserver {
 public:
  InvariantMonitor(core::PackerConfig cfg, pcm::TimingParams timing);

  /// Re-derive the power profile of `pack` from its raw queues and the
  /// read-stage counts; fail on any budget/consistency violation.
  void check_schedule(std::span<const core::UnitCounts> counts,
                      const core::PackResult& pack);

  /// Same check against an explicit packer config — the budget a schedule
  /// must honor is the one it was planned under, which during a
  /// charge-pump brown-out window is smaller than the monitor's nominal
  /// config (fault-injection tests verify budget-legality *through*
  /// brown-outs with this overload).
  void check_schedule(std::span<const core::UnitCounts> counts,
                      const core::PackResult& pack,
                      const core::PackerConfig& cfg);

  /// Relax the "same cell driven twice by one FSM pass" failure: the
  /// fault-injection verify-and-retry ladder legitimately re-drives a
  /// failed cell with the *same* pass. Cross-pass exclusivity (SET and
  /// RESET on one cell) stays a hard failure — that invariant must hold
  /// through retries too.
  void allow_same_pass_repulse(bool allow) { allow_repulse_ = allow; }

  /// Check an executed FSM trace for pulse alignment, interspace
  /// containment and instantaneous power.
  void check_trace(const core::FsmTrace& trace,
                   const core::PackResult& pack);

  /// PALP admission invariant (read-after-write-current limit): fail if
  /// the pump reports more concurrent partition writes than `write_ways`,
  /// more reads admitted against a loaded pump than `rww_allowance`, or
  /// a partition write drawing while an exclusive full-budget batch owns
  /// the pump. Call with the brown-out-shrunken allowances when checking
  /// inside a brown-out window.
  void check_palp_admission(const pcm::ChargePump& pump, u32 write_ways,
                            u32 rww_allowance);

  /// Reset the per-line cell ledger; call before each monitored write.
  void begin_write();

  /// core::PulseObserver: record and cross-check one driven cell pulse.
  void on_pulse(u64 bit, core::WritePass pass,
                pcm::ProgramResult result) override;

  /// Simulator observer enforcing clock monotonicity.
  sim::Simulator::Observer sim_hook();

  const MonitorStats& stats() const { return stats_; }

 private:
  [[noreturn]] void fail(const std::string& what) const;

  core::PackerConfig cfg_;
  pcm::TimingParams timing_;
  MonitorStats stats_;
  std::unordered_map<u64, u8> driven_;  ///< cell -> pass flags, one write
  Tick last_sim_tick_ = 0;
  bool sim_seen_ = false;
  bool allow_repulse_ = false;
};

}  // namespace tw::verify
