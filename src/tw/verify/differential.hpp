#pragma once
// DifferentialChecker: runs a production write scheme side by side with
// the bit-serial OracleScheme built from the scheme's own declared
// WriteSemantics, and cross-checks every observable of the write:
//
//   - post-write physical image (cells + flip tags, exact equality),
//   - logical round-trip (the array reads back the requested data),
//   - critical-path and background SET/RESET pulse counts,
//   - flipped-unit count and silent-write classification,
//   - latency envelope containment: production latency is at least the
//     oracle's lower bound and its write phase fits under the fully-serial
//     conventional upper bound,
//   - energy floor: pulses performed cost at least the minimal transition
//     energy.
//
// Any divergence throws VerifyError with a description of the mismatch.

#include <string>

#include "tw/pcm/line.hpp"
#include "tw/schemes/write_scheme.hpp"
#include "tw/verify/error.hpp"
#include "tw/verify/oracle.hpp"

namespace tw::verify {

/// Running totals of a differential campaign (one checker instance).
struct DifferentialReport {
  u64 writes = 0;          ///< writes checked
  u64 silent_writes = 0;   ///< writes the oracle classified as silent
  u64 flipped_units = 0;   ///< data units stored inverted (cumulative)
  u64 cells_compared = 0;  ///< physical cells compared against the oracle
  Tick latency_total = 0;  ///< cumulative production latency
};

class DifferentialChecker {
 public:
  /// The oracle is derived from `scheme.semantics()`; the scheme must
  /// outlive the checker.
  explicit DifferentialChecker(const schemes::WriteScheme& scheme)
      : scheme_(scheme), oracle_(scheme.config(), scheme.semantics()) {}

  /// Run one production write of `next` over `line` (mutating `line`, as
  /// plan_write does) and verify every observable against the oracle.
  /// Returns the production plan. Throws VerifyError on any divergence.
  schemes::ServicePlan check_write(pcm::LineBuf& line,
                                   const pcm::LogicalLine& next);

  const OracleScheme& oracle() const { return oracle_; }
  const DifferentialReport& report() const { return report_; }

 private:
  [[noreturn]] void fail(const std::string& what) const;

  const schemes::WriteScheme& scheme_;
  OracleScheme oracle_;
  DifferentialReport report_;
};

}  // namespace tw::verify
