#pragma once
// Named statistic registry: components register counters/accumulators under
// hierarchical dotted names; reporters dump everything as a table or CSV.

#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <variant>

#include "tw/stats/accumulator.hpp"
#include "tw/stats/counter.hpp"
#include "tw/stats/histogram.hpp"

namespace tw::stats {

/// Owns named statistics. Components hold references returned by the
/// register_* calls; the registry must outlive them.
class Registry {
 public:
  /// Register (or fetch) a counter under `name`.
  Counter& counter(const std::string& name);

  /// Register (or fetch) an accumulator under `name`.
  Accumulator& accumulator(const std::string& name);

  /// Register (or fetch) a histogram under `name`.
  Log2Histogram& histogram(const std::string& name);

  /// Print all stats, sorted by name, as "name value" lines.
  void report(std::ostream& out, const std::string& prefix = "") const;

  /// Merge another registry into this one: counters add, accumulators
  /// combine (Chan et al.), histograms sum buckets. Stats present only in
  /// `o` are created here. Used to fold per-channel registries into the
  /// main registry in deterministic channel order.
  void merge_from(const Registry& o);

  /// Reset every registered stat to zero.
  void reset();

  std::size_t size() const {
    return counters_.size() + accs_.size() + hists_.size();
  }

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Accumulator>> accs_;
  std::map<std::string, std::unique_ptr<Log2Histogram>> hists_;
};

}  // namespace tw::stats
