#include "tw/stats/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "tw/common/assert.hpp"
#include "tw/common/strings.hpp"

namespace tw::stats {

Log2Histogram::Log2Histogram(u32 sub_buckets) : sub_(sub_buckets) {
  TW_EXPECTS(sub_buckets >= 1);
  buckets_.resize(static_cast<std::size_t>(64) * sub_ + sub_, 0);
}

u64 Log2Histogram::bucket_index(u64 value) const {
  if (value < sub_) return value;  // exact small values
  const u32 msb = 63 - static_cast<u32>(std::countl_zero(value));
  // Octave = msb; position within octave from the bits below the MSB.
  const u64 below = value ^ (u64{1} << msb);
  const u64 pos = msb == 0 ? 0 : (below * sub_) >> msb;
  return static_cast<u64>(msb) * sub_ + pos + sub_;
}

u64 Log2Histogram::bucket_low(u64 index) const {
  if (index < sub_) return index;
  const u64 adj = index - sub_;
  const u32 msb = static_cast<u32>(adj / sub_);
  const u64 pos = adj % sub_;
  return (u64{1} << msb) + ((pos << msb) / sub_);
}

u64 Log2Histogram::bucket_high(u64 index) const {
  if (index < sub_) return index;
  const u64 adj = index - sub_;
  const u32 msb = static_cast<u32>(adj / sub_);
  const u64 pos = adj % sub_;
  if (pos + 1 == sub_) return u64{1} << (msb + 1);
  return (u64{1} << msb) + (((pos + 1) << msb) / sub_);
}

void Log2Histogram::add(u64 value, u64 count) {
  if (count == 0) return;
  const u64 idx = bucket_index(value);
  TW_ASSERT(idx < buckets_.size());
  buckets_[idx] += count;
  if (total_ == 0) {
    min_ = max_ = value;
  } else {
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  total_ += count;
  sum_ += static_cast<double>(value) * static_cast<double>(count);
}

double Log2Histogram::percentile(double q) const {
  if (total_ == 0) return 0.0;
  if (q <= 0.0) return static_cast<double>(min_);
  if (q >= 1.0) return static_cast<double>(max_);
  const double target = q * static_cast<double>(total_);
  double seen = 0.0;
  for (u64 i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const double next = seen + static_cast<double>(buckets_[i]);
    if (next >= target) {
      const double lo = static_cast<double>(bucket_low(i));
      const double hi = static_cast<double>(bucket_high(i));
      const double frac = (target - seen) / static_cast<double>(buckets_[i]);
      return lo + (hi - lo) * frac;
    }
    seen = next;
  }
  return static_cast<double>(max_);
}

std::string Log2Histogram::summary() const {
  return "n=" + std::to_string(total_) + " mean=" + fixed(mean(), 1) +
         " p50=" + fixed(percentile(0.50), 1) +
         " p95=" + fixed(percentile(0.95), 1) +
         " p99=" + fixed(percentile(0.99), 1) +
         " max=" + std::to_string(max());
}

void Log2Histogram::merge(const Log2Histogram& o) {
  TW_EXPECTS(sub_ == o.sub_);
  if (o.total_ == 0) return;
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += o.buckets_[i];
  if (total_ == 0) {
    min_ = o.min_;
    max_ = o.max_;
  } else {
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }
  total_ += o.total_;
  sum_ += o.sum_;
}

void Log2Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  total_ = 0;
  min_ = max_ = 0;
  sum_ = 0.0;
}

}  // namespace tw::stats
