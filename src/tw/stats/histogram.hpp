#pragma once
// Log-scaled histogram with percentile estimation, used for latency
// distributions (ns-scale values spanning several orders of magnitude).

#include <string>
#include <vector>

#include "tw/common/types.hpp"

namespace tw::stats {

/// Histogram over non-negative integers with power-of-two bucket boundaries
/// refined by `sub_buckets` linear sub-divisions per octave (HdrHistogram
/// style). Percentiles are estimated by linear interpolation in-bucket.
class Log2Histogram {
 public:
  /// sub_buckets: linear subdivisions per power-of-two octave (>=1).
  explicit Log2Histogram(u32 sub_buckets = 4);

  void add(u64 value, u64 count = 1);

  u64 total_count() const { return total_; }
  u64 min() const { return total_ == 0 ? 0 : min_; }
  u64 max() const { return total_ == 0 ? 0 : max_; }
  double mean() const {
    return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_);
  }

  /// Estimated value at quantile q in [0,1].
  double percentile(double q) const;

  /// Render a compact textual summary (count/mean/p50/p95/p99/max).
  std::string summary() const;

  /// Merge another histogram with the same sub-bucket geometry
  /// (parallel reduction across per-channel registries).
  void merge(const Log2Histogram& o);

  void reset();

 private:
  u64 bucket_index(u64 value) const;
  u64 bucket_low(u64 index) const;
  u64 bucket_high(u64 index) const;

  u32 sub_;
  std::vector<u64> buckets_;
  u64 total_ = 0;
  u64 min_ = 0;
  u64 max_ = 0;
  double sum_ = 0.0;
};

}  // namespace tw::stats
