#pragma once
// Simple named counters for event counting in the simulator.

#include "tw/common/types.hpp"

namespace tw::stats {

/// Monotonic event counter.
class Counter {
 public:
  void inc(u64 by = 1) { value_ += by; }
  u64 value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  u64 value_ = 0;
};

}  // namespace tw::stats
