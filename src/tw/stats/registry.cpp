#include "tw/stats/registry.hpp"

#include "tw/common/strings.hpp"

namespace tw::stats {

Counter& Registry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Accumulator& Registry::accumulator(const std::string& name) {
  auto& slot = accs_[name];
  if (!slot) slot = std::make_unique<Accumulator>();
  return *slot;
}

Log2Histogram& Registry::histogram(const std::string& name) {
  auto& slot = hists_[name];
  if (!slot) slot = std::make_unique<Log2Histogram>();
  return *slot;
}

void Registry::report(std::ostream& out, const std::string& prefix) const {
  for (const auto& [name, c] : counters_) {
    out << prefix << name << " " << c->value() << "\n";
  }
  for (const auto& [name, a] : accs_) {
    out << prefix << name << " mean=" << fixed(a->mean(), 3)
        << " n=" << a->count() << " min=" << fixed(a->min(), 3)
        << " max=" << fixed(a->max(), 3) << "\n";
  }
  for (const auto& [name, h] : hists_) {
    out << prefix << name << " " << h->summary() << "\n";
  }
}

void Registry::merge_from(const Registry& o) {
  for (const auto& [name, c] : o.counters_) counter(name).inc(c->value());
  for (const auto& [name, a] : o.accs_) accumulator(name).merge(*a);
  for (const auto& [name, h] : o.hists_) histogram(name).merge(*h);
}

void Registry::reset() {
  for (auto& [_, c] : counters_) c->reset();
  for (auto& [_, a] : accs_) a->reset();
  for (auto& [_, h] : hists_) h->reset();
}

}  // namespace tw::stats
