#pragma once
// Streaming statistical accumulator (Welford's online algorithm).

#include <algorithm>
#include <cmath>
#include <limits>

#include "tw/common/types.hpp"

namespace tw::stats {

/// Accumulates count/mean/variance/min/max of a stream of doubles without
/// storing samples. Numerically stable (Welford).
class Accumulator {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  /// Merge another accumulator (parallel reduction, Chan et al.).
  void merge(const Accumulator& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double delta = o.mean_ - mean_;
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(o.n_);
    const double nt = na + nb;
    m2_ += o.m2_ + delta * delta * na * nb / nt;
    mean_ = (na * mean_ + nb * o.mean_) / nt;
    n_ += o.n_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
    sum_ += o.sum_;
  }

  u64 count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }

  /// Population variance (0 for fewer than 2 samples).
  double variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_);
  }
  double stddev() const { return std::sqrt(variance()); }

  void reset() { *this = Accumulator{}; }

 private:
  u64 n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace tw::stats
