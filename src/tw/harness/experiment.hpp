#pragma once
// Full-system experiment runner: builds simulator + scheme + controller +
// cores + workload for one (workload, scheme) cell and runs it to
// completion, returning the metrics the paper's figures are built from.

#include <string>

#include "tw/core/factory.hpp"
#include "tw/cpu/multicore.hpp"
#include "tw/encode/encoder.hpp"
#include "tw/fault/fault.hpp"
#include "tw/mem/controller.hpp"
#include "tw/mem/dram_tier.hpp"
#include "tw/trace/tracer.hpp"
#include "tw/workload/profiles.hpp"

namespace tw::harness {

/// Observability settings for one run. Tracing activates when either
/// output path is set (records are only collected if someone will read
/// them); the category mask further narrows what gets emitted.
struct TraceConfig {
  std::string chrome_path;   ///< Chrome trace_event JSON ("" = off)
  std::string metrics_path;  ///< metrics-snapshot CSV ("" = off)
  u32 categories = trace::kAllCategories;
  /// Metrics sampling epoch (simulated time between snapshots).
  Tick metrics_epoch = us(1);
  /// Per-thread ring capacity in records (rounded up to a power of two);
  /// long runs keep the most recent window.
  u64 ring_capacity = trace::TraceRing::kDefaultCapacity;

  bool enabled() const {
    return !chrome_path.empty() || !metrics_path.empty();
  }
};

/// Multi-line Tetris batch scheduling (our extension beyond the paper):
/// the controller gathers up to max_lines age-ordered same-bank writes
/// per dispatch and the scheme packs all their units into one schedule.
struct BatchConfig {
  /// Upper bound on lines per joint schedule. 0 leaves the controller's
  /// write_batch setting untouched; >= 1 overrides it (1 = per-line
  /// packing, bit-identical to the unbatched controller).
  u32 max_lines = 0;
};

/// Everything configurable about one simulation (Table II defaults).
struct SystemConfig {
  pcm::PcmConfig pcm;                  ///< device + geometry + power
  mem::ControllerConfig controller;    ///< FRFCFS queues + drain policy
  cpu::CoreConfig core;                ///< 2 GHz, peak IPC, MLP window
  core::TetrisOptions tetris;          ///< analysis overhead etc.
  fault::FaultConfig fault;            ///< fault injection (off by default)
  BatchConfig batch;                   ///< multi-line batch packing
  mem::DramConfig dram;                ///< DRAM front tier (off by default)
  encode::EncodeConfig encode;         ///< content encoder (off by default)
  TraceConfig trace;                   ///< structured tracing (off by default)
  u32 cores = 4;
  u64 instructions_per_core = 200'000;
  u64 seed = 42;
  /// XBar hop latency between the CPU front-end and a channel controller;
  /// also the sharded engine's lockstep quantum. Only modeled when
  /// pcm.geometry.channels > 1.
  Tick xbar_latency = ns(20);
  /// Pool-thread cap for the parallel channel phase (0 = all available).
  /// Never affects results — same-seed runs are bit-identical at any
  /// value — so it is excluded from config_hash.
  u32 sim_threads = 0;
  /// Safety cap on simulated time; a run that exceeds it is marked
  /// incomplete rather than hanging.
  Tick max_sim_time = ms(10'000);
};

/// Field-mixing hash of everything that shapes a run's behavior (device
/// timing/geometry/power, controller policy, core model, Tetris options,
/// core count, budgets, seed). Stored in trace manifests so a trace file
/// identifies the exact configuration that produced it.
u64 config_hash(const SystemConfig& cfg);

/// Metrics of one completed run.
struct RunMetrics {
  std::string workload;
  std::string scheme;
  bool completed = false;

  double read_latency_ns = 0.0;   ///< mean memory read latency
  double write_latency_ns = 0.0;  ///< mean write latency (queue + service)
  double write_service_ns = 0.0;  ///< mean write service time alone
  double write_units = 0.0;       ///< mean serial write units per line
  double ipc = 0.0;               ///< whole-system IPC
  double runtime_ns = 0.0;        ///< time to retire all budgets
  u64 reads = 0;
  u64 writes = 0;
  u64 retired = 0;
  u64 sim_events = 0;  ///< simulator events executed (kernel throughput)
  double write_energy_pj = 0.0;
  double read_energy_pj = 0.0;
  double bits_per_write = 0.0;    ///< programmed bits per line write (wear)
  double read_p99_ns = 0.0;
  double write_p99_ns = 0.0;
  u64 write_pauses = 0;   ///< write-pausing preemptions
  u64 gap_moves = 0;      ///< Start-Gap migration writes
  u64 writes_batched = 0; ///< writes serviced in multi-line batches
  double batch_lines = 0.0;      ///< mean lines per multi-line batch issue
  double batch_occupancy = 0.0;  ///< mean budget utilization of joint packs
  // Controller queue statistics (thread-count invariant like the rest).
  u64 reads_forwarded = 0;   ///< reads served from queued write data
  u64 writes_coalesced = 0;  ///< writes merged into a queued same-line write
  u64 read_q_peak = 0;       ///< deepest the read queue ever got
  u64 write_q_peak = 0;      ///< deepest the write queue ever got
  u64 dispatch_rounds = 0;   ///< controller scheduling rounds executed
  u64 row_hits = 0;          ///< consecutive same-row activations per bank
  // Tracing (zero when the run was untraced).
  u64 trace_records = 0;   ///< records collected into the sinks
  u64 trace_dropped = 0;   ///< records lost to ring wraparound
  u64 trace_samples = 0;   ///< metrics snapshots taken
  // Fault injection (zero when faults were off).
  u64 fault_retries = 0;    ///< verify-and-retry attempts run
  u64 failed_lines = 0;     ///< lines still failed after the retry ladder
  u64 brownout_writes = 0;  ///< writes planned under a shrunken budget
  u64 stuck_remaps = 0;     ///< services redirected off a stuck bank
  // Partition-level parallelism (zero when PALP was off).
  u64 palp_overlapped_reads = 0;  ///< reads issued against a loaded pump
  u64 palp_pump_stalls = 0;       ///< admissions deferred by the pump budget
  u64 palp_write_overlaps = 0;    ///< writes begun while another was in flight
  // DRAM front tier (zero when the tier was off).
  u64 dram_hits = 0;          ///< requests absorbed by the tier
  u64 dram_misses = 0;        ///< requests that went to the PCM path
  u64 dram_writebacks = 0;    ///< dirty lines written back to PCM
  u64 dram_clean_evicts = 0;  ///< clean victims dropped without PCM traffic
  // Content-encoder pre-stage (zero when no encoder was configured).
  u64 enc_writes = 0;       ///< line writes that went through the encoder
  u64 enc_coded_units = 0;  ///< units stored under a non-identity code
  u64 enc_tag_bits = 0;     ///< encoder metadata cells pulsed
};

/// Run one cell. Deterministic in (cfg.seed, profile, kind).
RunMetrics run_system(const SystemConfig& cfg,
                      const workload::WorkloadProfile& profile,
                      schemes::SchemeKind kind);

}  // namespace tw::harness
