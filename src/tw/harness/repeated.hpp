#pragma once
// Multi-seed experiment repetition: run one (workload, scheme) cell under
// several seeds and report per-metric mean / stddev / min / max — the
// statistical footing for claiming a difference between schemes.

#include <vector>

#include "tw/harness/experiment.hpp"
#include "tw/stats/accumulator.hpp"

namespace tw::harness {

/// Distribution summary of one metric across seeds.
struct MetricSummary {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// Half-width of the ~95% normal confidence interval of the mean.
  double ci95 = 0.0;
};

/// Aggregated repeated-run results.
struct RepeatedMetrics {
  std::vector<RunMetrics> runs;  ///< one per seed, in seed order
  MetricSummary read_latency_ns;
  MetricSummary write_latency_ns;
  MetricSummary write_units;
  MetricSummary ipc;
  MetricSummary runtime_ns;

  bool all_completed() const;
};

/// Run `repeats` seeds (cfg.seed, cfg.seed+1, ...) in parallel and
/// summarize. Deterministic in (cfg, profile, kind, repeats).
RepeatedMetrics run_repeated(const SystemConfig& cfg,
                             const workload::WorkloadProfile& profile,
                             schemes::SchemeKind kind, u32 repeats,
                             std::size_t threads = 0);

}  // namespace tw::harness
