#pragma once
// INI-style experiment configuration files: every SystemConfig knob as a
// dotted "key = value" line, with round-trip serialization so experiment
// setups can be archived next to their results.
//
//   # example.cfg
//   pcm.t_set_ns = 430
//   pcm.chip_budget = 32
//   controller.drain = strict
//   sys.cores = 4
//
// Unknown keys and malformed values throw std::runtime_error with the
// offending line number.

#include <iosfwd>
#include <string>

#include "tw/harness/experiment.hpp"

namespace tw::harness {

/// Parse a config stream into a SystemConfig (starting from defaults).
SystemConfig parse_system_config(std::istream& in);

/// Load a config file. Throws std::runtime_error on I/O or parse errors.
SystemConfig load_system_config(const std::string& path);

/// Serialize every knob as "key = value" lines (parse round-trips).
void write_system_config(const SystemConfig& cfg, std::ostream& out);

}  // namespace tw::harness
