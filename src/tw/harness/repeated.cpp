#include "tw/harness/repeated.hpp"

#include <cmath>

#include "tw/common/assert.hpp"
#include "tw/common/parallel.hpp"

namespace tw::harness {
namespace {

MetricSummary summarize(const std::vector<RunMetrics>& runs,
                        double (*extract)(const RunMetrics&)) {
  stats::Accumulator acc;
  for (const auto& r : runs) acc.add(extract(r));
  MetricSummary s;
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  if (acc.count() > 1) {
    s.ci95 = 1.96 * acc.stddev() /
             std::sqrt(static_cast<double>(acc.count()));
  }
  return s;
}

}  // namespace

bool RepeatedMetrics::all_completed() const {
  for (const auto& r : runs) {
    if (!r.completed) return false;
  }
  return !runs.empty();
}

RepeatedMetrics run_repeated(const SystemConfig& cfg,
                             const workload::WorkloadProfile& profile,
                             schemes::SchemeKind kind, u32 repeats,
                             std::size_t threads) {
  TW_EXPECTS(repeats >= 1);
  RepeatedMetrics out;
  out.runs.resize(repeats);
  parallel_for(
      repeats,
      [&](std::size_t i) {
        SystemConfig c = cfg;
        c.seed = cfg.seed + i;
        out.runs[i] = run_system(c, profile, kind);
      },
      threads);

  out.read_latency_ns = summarize(
      out.runs, [](const RunMetrics& r) { return r.read_latency_ns; });
  out.write_latency_ns = summarize(
      out.runs, [](const RunMetrics& r) { return r.write_latency_ns; });
  out.write_units = summarize(
      out.runs, [](const RunMetrics& r) { return r.write_units; });
  out.ipc = summarize(out.runs, [](const RunMetrics& r) { return r.ipc; });
  out.runtime_ns = summarize(
      out.runs, [](const RunMetrics& r) { return r.runtime_ns; });
  return out;
}

}  // namespace tw::harness
