#pragma once
// Figure harness: sweep (workload x scheme) cells in parallel, normalize
// against the DCW baseline, and render the paper-style tables.

#include <functional>
#include <ostream>
#include <vector>

#include "tw/common/table.hpp"
#include "tw/harness/experiment.hpp"

namespace tw::harness {

/// Result matrix: rows = workloads, columns = schemes (same order as the
/// inputs to run_matrix).
struct Matrix {
  std::vector<workload::WorkloadProfile> workloads;
  std::vector<schemes::SchemeKind> kinds;
  std::vector<std::vector<RunMetrics>> cells;  ///< [workload][scheme]

  const RunMetrics& at(std::size_t w, std::size_t s) const {
    return cells[w][s];
  }
};

/// Run every (workload, scheme) cell. Cells are independent simulations
/// and run across a thread pool; results are deterministic regardless of
/// the thread count.
Matrix run_matrix(const SystemConfig& cfg,
                  const std::vector<workload::WorkloadProfile>& workloads,
                  const std::vector<schemes::SchemeKind>& kinds,
                  std::size_t threads = 0);

/// Extract one scalar metric from a run.
using MetricFn = std::function<double(const RunMetrics&)>;

/// Render a workloads x schemes table of raw metric values.
AsciiTable raw_table(const Matrix& m, const MetricFn& metric,
                     int decimals = 2);

/// Render the value normalized to column `baseline_col` per workload
/// (the paper's Figures 11/12/14 style), with a geometric-mean row.
AsciiTable normalized_table(const Matrix& m, const MetricFn& metric,
                            std::size_t baseline_col, int decimals = 3);

/// Per-workload ratio of metric to baseline column; row-major workloads,
/// plus the geometric mean over workloads as the last entry.
std::vector<std::vector<double>> normalized_values(const Matrix& m,
                                                   const MetricFn& metric,
                                                   std::size_t baseline_col);

/// Write the full raw matrix as CSV (one row per cell).
void write_csv(const Matrix& m, std::ostream& out);

}  // namespace tw::harness
