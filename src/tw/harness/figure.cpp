#include "tw/harness/figure.hpp"

#include <cmath>

#include "tw/common/assert.hpp"
#include "tw/common/csv.hpp"
#include "tw/common/parallel.hpp"
#include "tw/common/strings.hpp"

namespace tw::harness {

Matrix run_matrix(const SystemConfig& cfg,
                  const std::vector<workload::WorkloadProfile>& workloads,
                  const std::vector<schemes::SchemeKind>& kinds,
                  std::size_t threads) {
  Matrix m;
  m.workloads = workloads;
  m.kinds = kinds;
  m.cells.assign(workloads.size(),
                 std::vector<RunMetrics>(kinds.size()));

  const std::size_t total = workloads.size() * kinds.size();
  parallel_for(
      total,
      [&](std::size_t i) {
        const std::size_t w = i / kinds.size();
        const std::size_t s = i % kinds.size();
        m.cells[w][s] = run_system(cfg, workloads[w], kinds[s]);
      },
      threads);
  return m;
}

AsciiTable raw_table(const Matrix& m, const MetricFn& metric,
                     int decimals) {
  AsciiTable t;
  std::vector<std::string> header = {"workload"};
  for (const auto kind : m.kinds)
    header.emplace_back(schemes::scheme_name(kind));
  t.set_header(std::move(header));
  for (std::size_t w = 0; w < m.workloads.size(); ++w) {
    std::vector<std::string> row = {m.workloads[w].name};
    for (std::size_t s = 0; s < m.kinds.size(); ++s) {
      row.push_back(fixed(metric(m.at(w, s)), decimals));
    }
    t.add_row(std::move(row));
  }
  return t;
}

std::vector<std::vector<double>> normalized_values(
    const Matrix& m, const MetricFn& metric, std::size_t baseline_col) {
  TW_EXPECTS(baseline_col < m.kinds.size());
  std::vector<std::vector<double>> out;
  std::vector<double> geo(m.kinds.size(), 0.0);
  for (std::size_t w = 0; w < m.workloads.size(); ++w) {
    const double base = metric(m.at(w, baseline_col));
    std::vector<double> row(m.kinds.size(), 0.0);
    for (std::size_t s = 0; s < m.kinds.size(); ++s) {
      const double v = metric(m.at(w, s));
      row[s] = base == 0.0 ? 0.0 : v / base;
      geo[s] += std::log(row[s] > 0.0 ? row[s] : 1e-12);
    }
    out.push_back(std::move(row));
  }
  for (auto& g : geo)
    g = std::exp(g / static_cast<double>(m.workloads.size()));
  out.push_back(std::move(geo));
  return out;
}

AsciiTable normalized_table(const Matrix& m, const MetricFn& metric,
                            std::size_t baseline_col, int decimals) {
  const auto values = normalized_values(m, metric, baseline_col);
  AsciiTable t;
  std::vector<std::string> header = {"workload"};
  for (const auto kind : m.kinds)
    header.emplace_back(schemes::scheme_name(kind));
  t.set_header(std::move(header));
  for (std::size_t w = 0; w < m.workloads.size(); ++w) {
    std::vector<std::string> row = {m.workloads[w].name};
    for (std::size_t s = 0; s < m.kinds.size(); ++s) {
      row.push_back(fixed(values[w][s], decimals));
    }
    t.add_row(std::move(row));
  }
  t.add_separator();
  std::vector<std::string> gm = {"geomean"};
  for (std::size_t s = 0; s < m.kinds.size(); ++s) {
    gm.push_back(fixed(values.back()[s], decimals));
  }
  t.add_row(std::move(gm));
  return t;
}

void write_csv(const Matrix& m, std::ostream& out) {
  CsvWriter csv(out);
  csv.header({"workload", "scheme", "completed", "read_latency_ns",
              "write_latency_ns", "write_service_ns", "write_units", "ipc",
              "runtime_ns", "reads", "writes", "retired", "write_energy_pj",
              "read_energy_pj", "bits_per_write", "read_p99_ns",
              "write_p99_ns"});
  for (std::size_t w = 0; w < m.workloads.size(); ++w) {
    for (std::size_t s = 0; s < m.kinds.size(); ++s) {
      const RunMetrics& r = m.at(w, s);
      csv.row({r.workload, r.scheme, r.completed ? "1" : "0",
               fixed(r.read_latency_ns, 2), fixed(r.write_latency_ns, 2),
               fixed(r.write_service_ns, 2), fixed(r.write_units, 3),
               fixed(r.ipc, 4), fixed(r.runtime_ns, 1),
               std::to_string(r.reads), std::to_string(r.writes),
               std::to_string(r.retired), fixed(r.write_energy_pj, 1),
               fixed(r.read_energy_pj, 1), fixed(r.bits_per_write, 2),
               fixed(r.read_p99_ns, 1), fixed(r.write_p99_ns, 1)});
    }
  }
}

}  // namespace tw::harness
