#include "tw/harness/config_file.hpp"

#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <stdexcept>

#include "tw/common/strings.hpp"

namespace tw::harness {
namespace {

using Setter = std::function<void(SystemConfig&, const std::string&)>;

u64 to_u64(const std::string& v) {
  std::size_t pos = 0;
  const u64 out = std::stoull(v, &pos);
  if (pos != v.size()) throw std::runtime_error("not an integer: " + v);
  return out;
}

double to_double(const std::string& v) {
  std::size_t pos = 0;
  const double out = std::stod(v, &pos);
  if (pos != v.size()) throw std::runtime_error("not a number: " + v);
  return out;
}

bool to_bool(const std::string& v) {
  const std::string s = to_lower(v);
  if (s == "true" || s == "1" || s == "on" || s == "yes") return true;
  if (s == "false" || s == "0" || s == "off" || s == "no") return false;
  throw std::runtime_error("not a boolean: " + v);
}

const std::map<std::string, Setter>& setters() {
  static const std::map<std::string, Setter> kSetters = {
      // -- device timing / power / geometry -------------------------------
      {"pcm.t_read_ns",
       [](SystemConfig& c, const std::string& v) {
         c.pcm.timing.t_read = ns(to_u64(v));
       }},
      {"pcm.t_reset_ns",
       [](SystemConfig& c, const std::string& v) {
         c.pcm.timing.t_reset = ns(to_u64(v));
       }},
      {"pcm.t_set_ns",
       [](SystemConfig& c, const std::string& v) {
         c.pcm.timing.t_set = ns(to_u64(v));
       }},
      {"pcm.chip_budget",
       [](SystemConfig& c, const std::string& v) {
         c.pcm.power.chip_budget = static_cast<u32>(to_u64(v));
       }},
      {"pcm.reset_current_ratio",
       [](SystemConfig& c, const std::string& v) {
         c.pcm.power.reset_current_ratio_l = static_cast<u32>(to_u64(v));
       }},
      {"pcm.gcp",
       [](SystemConfig& c, const std::string& v) {
         c.pcm.power.global_charge_pump = to_bool(v);
       }},
      {"pcm.chips_per_bank",
       [](SystemConfig& c, const std::string& v) {
         c.pcm.geometry.chips_per_bank = static_cast<u32>(to_u64(v));
       }},
      {"pcm.chip_write_bits",
       [](SystemConfig& c, const std::string& v) {
         c.pcm.geometry.chip_write_bits = static_cast<u32>(to_u64(v));
       }},
      {"pcm.line_bytes",
       [](SystemConfig& c, const std::string& v) {
         c.pcm.geometry.cache_line_bytes = static_cast<u32>(to_u64(v));
       }},
      {"pcm.banks",
       [](SystemConfig& c, const std::string& v) {
         c.pcm.geometry.banks = static_cast<u32>(to_u64(v));
       }},
      {"pcm.subarrays",
       [](SystemConfig& c, const std::string& v) {
         c.pcm.geometry.subarrays_per_bank = static_cast<u32>(to_u64(v));
       }},
      {"pcm.channels",
       [](SystemConfig& c, const std::string& v) {
         const u64 n = to_u64(v);
         if (n == 0 || (n & (n - 1)) != 0) {
           throw std::runtime_error(
               "channels must be a power of two >= 1 (got " + v +
               "); the channel decoder extracts log2(channels) address bits");
         }
         c.pcm.geometry.channels = static_cast<u32>(n);
       }},
      {"pcm.channel_interleave",
       [](SystemConfig& c, const std::string& v) {
         const std::string s = to_lower(v);
         if (s == "line") {
           c.pcm.geometry.channel_interleave = pcm::ChannelInterleave::kLine;
         } else if (s == "bank") {
           c.pcm.geometry.channel_interleave = pcm::ChannelInterleave::kBank;
         } else if (s == "row") {
           c.pcm.geometry.channel_interleave = pcm::ChannelInterleave::kRow;
         } else {
           throw std::runtime_error("channel_interleave must be line|bank|row");
         }
       }},
      // -- controller ------------------------------------------------------
      {"controller.read_queue",
       [](SystemConfig& c, const std::string& v) {
         c.controller.read_queue_entries = static_cast<u32>(to_u64(v));
       }},
      {"controller.write_queue",
       [](SystemConfig& c, const std::string& v) {
         c.controller.write_queue_entries = static_cast<u32>(to_u64(v));
       }},
      {"controller.drain",
       [](SystemConfig& c, const std::string& v) {
         const std::string s = to_lower(v);
         if (s == "strict") {
           c.controller.drain = mem::ControllerConfig::DrainPolicy::kStrict;
         } else if (s == "opportunistic") {
           c.controller.drain =
               mem::ControllerConfig::DrainPolicy::kOpportunistic;
         } else {
           throw std::runtime_error("drain must be strict|opportunistic");
         }
       }},
      {"controller.drain_low",
       [](SystemConfig& c, const std::string& v) {
         c.controller.drain_low_watermark = static_cast<u32>(to_u64(v));
       }},
      {"controller.write_coalescing",
       [](SystemConfig& c, const std::string& v) {
         c.controller.write_coalescing = to_bool(v);
       }},
      {"controller.read_forwarding",
       [](SystemConfig& c, const std::string& v) {
         c.controller.read_forwarding = to_bool(v);
       }},
      {"controller.write_pausing",
       [](SystemConfig& c, const std::string& v) {
         c.controller.write_pausing = to_bool(v);
       }},
      {"controller.wear_leveling",
       [](SystemConfig& c, const std::string& v) {
         c.controller.wear_leveling = to_bool(v);
       }},
      {"controller.gap_interval",
       [](SystemConfig& c, const std::string& v) {
         c.controller.start_gap.gap_write_interval =
             static_cast<u32>(to_u64(v));
       }},
      {"controller.gap_region_lines",
       [](SystemConfig& c, const std::string& v) {
         c.controller.start_gap.region_lines = to_u64(v);
       }},
      {"controller.write_batch",
       [](SystemConfig& c, const std::string& v) {
         c.controller.write_batch = static_cast<u32>(to_u64(v));
       }},
      // -- partition-level parallelism (PALP) -------------------------------
      {"palp.enabled",
       [](SystemConfig& c, const std::string& v) {
         c.controller.palp.enabled = to_bool(v);
       }},
      {"palp.write_ways",
       [](SystemConfig& c, const std::string& v) {
         c.controller.palp.write_ways = static_cast<u32>(to_u64(v));
       }},
      {"palp.max_rww_reads",
       [](SystemConfig& c, const std::string& v) {
         c.controller.palp.max_rww_reads = static_cast<u32>(to_u64(v));
       }},
      // -- DRAM front tier ---------------------------------------------------
      {"dram.enabled",
       [](SystemConfig& c, const std::string& v) {
         c.dram.enabled = to_bool(v);
       }},
      {"dram.capacity_mb",
       [](SystemConfig& c, const std::string& v) {
         c.dram.capacity_bytes = to_u64(v) * 1024 * 1024;
       }},
      {"dram.ways",
       [](SystemConfig& c, const std::string& v) {
         c.dram.ways = static_cast<u32>(to_u64(v));
       }},
      {"dram.policy",
       [](SystemConfig& c, const std::string& v) {
         const std::string s = to_lower(v);
         if (s == "lru") {
           c.dram.policy = mem::DramPolicy::kLru;
         } else if (s == "mac") {
           c.dram.policy = mem::DramPolicy::kMac;
         } else {
           throw std::runtime_error("dram.policy must be lru|mac");
         }
       }},
      {"dram.t_row_hit_ns",
       [](SystemConfig& c, const std::string& v) {
         c.dram.t_row_hit = ns(to_u64(v));
       }},
      {"dram.t_row_miss_ns",
       [](SystemConfig& c, const std::string& v) {
         c.dram.t_row_miss = ns(to_u64(v));
       }},
      {"dram.row_lines",
       [](SystemConfig& c, const std::string& v) {
         c.dram.row_lines = static_cast<u32>(to_u64(v));
       }},
      {"dram.banks",
       [](SystemConfig& c, const std::string& v) {
         c.dram.banks = static_cast<u32>(to_u64(v));
       }},
      {"dram.pending_limit",
       [](SystemConfig& c, const std::string& v) {
         c.dram.pending_limit = static_cast<u32>(to_u64(v));
       }},
      {"dram.mac_group",
       [](SystemConfig& c, const std::string& v) {
         c.dram.mac_group = static_cast<u32>(to_u64(v));
       }},
      // -- content-encoder pre-stage ---------------------------------------
      {"encode.kind",
       [](SystemConfig& c, const std::string& v) {
         const auto k = encode::parse_encoder(to_lower(v));
         if (!k) {
           throw std::runtime_error(
               "encode.kind must be none|flip|wire|coset");
         }
         c.encode.kind = *k;
       }},
      // -- multi-line batch packing ---------------------------------------
      {"batch.max_lines",
       [](SystemConfig& c, const std::string& v) {
         c.batch.max_lines = static_cast<u32>(to_u64(v));
       }},
      // -- cores -----------------------------------------------------------
      {"core.clock_ps",
       [](SystemConfig& c, const std::string& v) {
         c.core.clock_period = to_u64(v);
       }},
      {"core.peak_ipc",
       [](SystemConfig& c, const std::string& v) {
         c.core.peak_ipc = to_double(v);
       }},
      {"core.mlp",
       [](SystemConfig& c, const std::string& v) {
         c.core.mlp = static_cast<u32>(to_u64(v));
       }},
      // -- tetris ----------------------------------------------------------
      {"tetris.analysis_cycles",
       [](SystemConfig& c, const std::string& v) {
         c.tetris.analysis_cycles = static_cast<u32>(to_u64(v));
       }},
      {"tetris.forbid_self_overlap",
       [](SystemConfig& c, const std::string& v) {
         c.tetris.forbid_self_overlap = to_bool(v);
       }},
      // -- fault injection --------------------------------------------------
      {"fault.profile",
       [](SystemConfig& c, const std::string& v) {
         const auto p = fault::parse_fault_profile(v);
         if (!p) {
           throw std::runtime_error(
               "fault profile must be none|light|heavy|stuck-bank");
         }
         c.fault = fault::profile_config(*p);
       }},
      {"fault.set_fail_prob",
       [](SystemConfig& c, const std::string& v) {
         c.fault.set_fail_prob = to_double(v);
       }},
      {"fault.reset_fail_prob",
       [](SystemConfig& c, const std::string& v) {
         c.fault.reset_fail_prob = to_double(v);
       }},
      {"fault.max_retries",
       [](SystemConfig& c, const std::string& v) {
         c.fault.max_retries = static_cast<u32>(to_u64(v));
       }},
      {"fault.retry_widening",
       [](SystemConfig& c, const std::string& v) {
         c.fault.retry_widening = to_double(v);
       }},
      {"fault.retry_fail_damping",
       [](SystemConfig& c, const std::string& v) {
         c.fault.retry_fail_damping = to_double(v);
       }},
      {"fault.wear_knee",
       [](SystemConfig& c, const std::string& v) {
         c.fault.wear_knee = to_u64(v);
       }},
      {"fault.worn_fail_prob",
       [](SystemConfig& c, const std::string& v) {
         c.fault.worn_fail_prob = to_double(v);
       }},
      {"fault.stuck_bank",
       [](SystemConfig& c, const std::string& v) {
         c.fault.stuck_bank = static_cast<u32>(to_u64(v));
       }},
      {"fault.stuck_bank_prob",
       [](SystemConfig& c, const std::string& v) {
         c.fault.stuck_bank_prob = to_double(v);
       }},
      {"fault.brownout_period_ns",
       [](SystemConfig& c, const std::string& v) {
         c.fault.brownout_period = ns(to_u64(v));
       }},
      {"fault.brownout_duration_ns",
       [](SystemConfig& c, const std::string& v) {
         c.fault.brownout_duration = ns(to_u64(v));
       }},
      {"fault.brownout_budget_factor",
       [](SystemConfig& c, const std::string& v) {
         c.fault.brownout_budget_factor = to_double(v);
       }},
      // -- xbar / sharded engine --------------------------------------------
      {"xbar.latency_ns",
       [](SystemConfig& c, const std::string& v) {
         const u64 n = to_u64(v);
         if (n == 0) {
           throw std::runtime_error(
               "xbar latency must be >= 1 ns (it is also the sharded "
               "engine's lockstep quantum)");
         }
         c.xbar_latency = ns(n);
       }},
      {"sys.sim_threads",
       [](SystemConfig& c, const std::string& v) {
         c.sim_threads = static_cast<u32>(to_u64(v));
       }},
      // -- run -------------------------------------------------------------
      {"sys.cores",
       [](SystemConfig& c, const std::string& v) {
         c.cores = static_cast<u32>(to_u64(v));
       }},
      {"sys.instructions",
       [](SystemConfig& c, const std::string& v) {
         c.instructions_per_core = to_u64(v);
       }},
      {"sys.seed",
       [](SystemConfig& c, const std::string& v) { c.seed = to_u64(v); }},
  };
  return kSetters;
}

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

}  // namespace

SystemConfig parse_system_config(std::istream& in) {
  SystemConfig cfg;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::string trimmed = trim(line);
    if (trimmed.empty()) continue;
    const auto eq = trimmed.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("config line " + std::to_string(lineno) +
                               ": expected key = value");
    }
    const std::string key = trim(trimmed.substr(0, eq));
    const std::string value = trim(trimmed.substr(eq + 1));
    const auto it = setters().find(key);
    if (it == setters().end()) {
      throw std::runtime_error("config line " + std::to_string(lineno) +
                               ": unknown key '" + key + "'");
    }
    try {
      it->second(cfg, value);
    } catch (const std::exception& e) {
      throw std::runtime_error("config line " + std::to_string(lineno) +
                               " (" + key + "): " + e.what());
    }
  }
  return cfg;
}

SystemConfig load_system_config(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open config file: " + path);
  return parse_system_config(in);
}

void write_system_config(const SystemConfig& cfg, std::ostream& out) {
  out << "# tetriswrite experiment configuration\n";
  out << "pcm.t_read_ns = " << cfg.pcm.timing.t_read / 1000 << "\n";
  out << "pcm.t_reset_ns = " << cfg.pcm.timing.t_reset / 1000 << "\n";
  out << "pcm.t_set_ns = " << cfg.pcm.timing.t_set / 1000 << "\n";
  out << "pcm.chip_budget = " << cfg.pcm.power.chip_budget << "\n";
  out << "pcm.reset_current_ratio = " << cfg.pcm.power.reset_current_ratio_l
      << "\n";
  out << "pcm.gcp = " << (cfg.pcm.power.global_charge_pump ? "true" : "false")
      << "\n";
  out << "pcm.chips_per_bank = " << cfg.pcm.geometry.chips_per_bank << "\n";
  out << "pcm.chip_write_bits = " << cfg.pcm.geometry.chip_write_bits << "\n";
  out << "pcm.line_bytes = " << cfg.pcm.geometry.cache_line_bytes << "\n";
  out << "pcm.banks = " << cfg.pcm.geometry.banks << "\n";
  out << "pcm.subarrays = " << cfg.pcm.geometry.subarrays_per_bank << "\n";
  out << "pcm.channels = " << cfg.pcm.geometry.channels << "\n";
  out << "pcm.channel_interleave = "
      << pcm::channel_interleave_name(cfg.pcm.geometry.channel_interleave)
      << "\n";
  out << "controller.read_queue = " << cfg.controller.read_queue_entries
      << "\n";
  out << "controller.write_queue = " << cfg.controller.write_queue_entries
      << "\n";
  out << "controller.drain = "
      << (cfg.controller.drain == mem::ControllerConfig::DrainPolicy::kStrict
              ? "strict"
              : "opportunistic")
      << "\n";
  out << "controller.drain_low = " << cfg.controller.drain_low_watermark
      << "\n";
  out << "controller.write_coalescing = "
      << (cfg.controller.write_coalescing ? "true" : "false") << "\n";
  out << "controller.read_forwarding = "
      << (cfg.controller.read_forwarding ? "true" : "false") << "\n";
  out << "controller.write_pausing = "
      << (cfg.controller.write_pausing ? "true" : "false") << "\n";
  out << "controller.wear_leveling = "
      << (cfg.controller.wear_leveling ? "true" : "false") << "\n";
  out << "controller.gap_interval = "
      << cfg.controller.start_gap.gap_write_interval << "\n";
  out << "controller.gap_region_lines = "
      << cfg.controller.start_gap.region_lines << "\n";
  out << "controller.write_batch = " << cfg.controller.write_batch << "\n";
  if (cfg.controller.palp.enabled) {
    // Only emitted when PALP is on, so PALP-off dumps are unchanged.
    out << "palp.enabled = true\n";
    out << "palp.write_ways = " << cfg.controller.palp.write_ways << "\n";
    out << "palp.max_rww_reads = " << cfg.controller.palp.max_rww_reads
        << "\n";
  }
  if (cfg.dram.enabled) {
    // Only emitted when the tier is on, so tier-off dumps are unchanged.
    out << "dram.enabled = true\n";
    out << "dram.capacity_mb = " << cfg.dram.capacity_bytes / (1024 * 1024)
        << "\n";
    out << "dram.ways = " << cfg.dram.ways << "\n";
    out << "dram.policy = " << mem::dram_policy_name(cfg.dram.policy)
        << "\n";
    out << "dram.t_row_hit_ns = " << cfg.dram.t_row_hit / 1000 << "\n";
    out << "dram.t_row_miss_ns = " << cfg.dram.t_row_miss / 1000 << "\n";
    out << "dram.row_lines = " << cfg.dram.row_lines << "\n";
    out << "dram.banks = " << cfg.dram.banks << "\n";
    out << "dram.pending_limit = " << cfg.dram.pending_limit << "\n";
    out << "dram.mac_group = " << cfg.dram.mac_group << "\n";
  }
  if (cfg.encode.enabled()) {
    // Only emitted when an encoder is on, so encoder-off dumps are
    // unchanged.
    out << "encode.kind = " << encode::encoder_name(cfg.encode.kind) << "\n";
  }
  out << "batch.max_lines = " << cfg.batch.max_lines << "\n";
  out << "core.clock_ps = " << cfg.core.clock_period << "\n";
  out << "core.peak_ipc = " << cfg.core.peak_ipc << "\n";
  out << "core.mlp = " << cfg.core.mlp << "\n";
  out << "tetris.analysis_cycles = " << cfg.tetris.analysis_cycles << "\n";
  out << "tetris.forbid_self_overlap = "
      << (cfg.tetris.forbid_self_overlap ? "true" : "false") << "\n";
  if (cfg.fault.enabled()) {
    // Only emitted when faults are on, so fault-free dumps are unchanged.
    out << "fault.set_fail_prob = " << cfg.fault.set_fail_prob << "\n";
    out << "fault.reset_fail_prob = " << cfg.fault.reset_fail_prob << "\n";
    out << "fault.max_retries = " << cfg.fault.max_retries << "\n";
    out << "fault.retry_widening = " << cfg.fault.retry_widening << "\n";
    out << "fault.retry_fail_damping = " << cfg.fault.retry_fail_damping
        << "\n";
    out << "fault.wear_knee = " << cfg.fault.wear_knee << "\n";
    out << "fault.worn_fail_prob = " << cfg.fault.worn_fail_prob << "\n";
    out << "fault.stuck_bank = " << cfg.fault.stuck_bank << "\n";
    out << "fault.stuck_bank_prob = " << cfg.fault.stuck_bank_prob << "\n";
    out << "fault.brownout_period_ns = " << cfg.fault.brownout_period / 1000
        << "\n";
    out << "fault.brownout_duration_ns = "
        << cfg.fault.brownout_duration / 1000 << "\n";
    out << "fault.brownout_budget_factor = "
        << cfg.fault.brownout_budget_factor << "\n";
  }
  out << "xbar.latency_ns = " << cfg.xbar_latency / 1000 << "\n";
  out << "sys.sim_threads = " << cfg.sim_threads << "\n";
  out << "sys.cores = " << cfg.cores << "\n";
  out << "sys.instructions = " << cfg.instructions_per_core << "\n";
  out << "sys.seed = " << cfg.seed << "\n";
}

}  // namespace tw::harness
