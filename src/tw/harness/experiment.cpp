#include "tw/harness/experiment.hpp"

#include "tw/stats/registry.hpp"
#include "tw/workload/generator.hpp"

namespace tw::harness {

RunMetrics run_system(const SystemConfig& cfg,
                      const workload::WorkloadProfile& profile,
                      schemes::SchemeKind kind) {
  sim::Simulator sim;
  stats::Registry reg;

  const auto scheme = core::make_scheme(kind, cfg.pcm, cfg.tetris);
  mem::Controller controller(sim, cfg.pcm, cfg.controller, *scheme, reg,
                             cfg.seed, profile.initial_ones_fraction);
  workload::TraceGenerator gen(profile, cfg.pcm.geometry, cfg.cores,
                               cfg.seed * 0x9E3779B9u + 7);
  cpu::MultiCore cpus(sim, cfg.core, cfg.cores, controller, gen,
                      cfg.instructions_per_core);

  cpus.start();
  sim.run(cfg.max_sim_time);

  RunMetrics m;
  m.workload = profile.name;
  m.scheme = std::string(scheme->name());
  m.completed = cpus.all_finished();

  m.read_latency_ns = reg.accumulator("mem.read_latency_ns").mean();
  m.write_latency_ns = reg.accumulator("mem.write_latency_ns").mean();
  m.write_service_ns = reg.accumulator("mem.write_service_ns").mean();
  m.write_units = reg.accumulator("mem.write_units").mean();
  m.read_p99_ns = reg.histogram("mem.read_latency_hist_ns").percentile(0.99);
  m.write_p99_ns =
      reg.histogram("mem.write_latency_hist_ns").percentile(0.99);
  m.reads = reg.counter("mem.reads").value();
  m.writes = reg.counter("mem.writes").value();
  m.sim_events = sim.executed();
  m.retired = cpus.total_retired();
  m.ipc = cpus.aggregate_ipc();
  m.runtime_ns = to_ns(cpus.runtime());
  m.write_energy_pj = controller.energy().write_energy_pj();
  m.read_energy_pj = controller.energy().read_energy_pj();
  const pcm::WearSummary wear = controller.wear().summary();
  m.bits_per_write = wear.avg_bits_per_write;
  m.write_pauses = reg.counter("mem.write_pauses").value();
  m.gap_moves = reg.counter("mem.gap_moves").value();
  m.writes_batched = reg.counter("mem.writes_batched").value();
  m.reads_forwarded = reg.counter("mem.reads_forwarded").value();
  m.writes_coalesced = reg.counter("mem.writes_coalesced").value();
  m.read_q_peak = controller.read_queue_peak();
  m.write_q_peak = controller.write_queue_peak();
  m.dispatch_rounds = reg.counter("mem.dispatch_rounds").value();
  m.row_hits = reg.counter("mem.row_hits").value();
  return m;
}

}  // namespace tw::harness
