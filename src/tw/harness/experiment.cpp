#include "tw/harness/experiment.hpp"

#include <algorithm>
#include <cstring>
#include <optional>

#include "tw/common/version.hpp"
#include "tw/encode/encoded_scheme.hpp"
#include "tw/fault/fault_model.hpp"
#include "tw/mem/memory_system.hpp"
#include "tw/stats/registry.hpp"
#include "tw/trace/chrome_sink.hpp"
#include "tw/trace/metrics_sink.hpp"
#include "tw/workload/generator.hpp"

namespace tw::harness {

namespace {

/// splitmix64 step: the standard finalizer used to mix config fields.
u64 mix(u64 h, u64 v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 27;
  return h;
}

u64 mix_double(u64 h, double v) {
  u64 bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return mix(h, bits);
}

/// Register the standard gauge set on the snapshotter: queue depths, bank
/// occupancy/utilization, per-epoch traffic, and Tetris budget
/// utilization. Epoch-delta gauges carry their own previous-sample state.
void add_standard_gauges(trace::MetricsSnapshotter& snap, sim::Simulator& sim,
                         mem::Controller& controller, stats::Registry& reg) {
  snap.add_gauge("read_q_depth",
                 [&] { return static_cast<double>(controller.read_queue_depth()); });
  snap.add_gauge("write_q_depth",
                 [&] { return static_cast<double>(controller.write_queue_depth()); });
  snap.add_gauge("banks_busy", [&] {
    u32 busy = 0;
    for (const auto& b : controller.banks()) {
      if (!b.idle_at(sim.now())) ++busy;
    }
    return static_cast<double>(busy);
  });
  // Fraction of the epoch the banks spent busy, averaged over banks.
  snap.add_gauge("bank_util", [&, prev = u64{0}, prev_now = Tick{0}]() mutable {
    u64 total = 0;
    for (const auto& b : controller.banks()) total += b.busy_total();
    const Tick now = sim.now();
    const u64 dt = (now - prev_now) * controller.banks().size();
    const double util =
        dt == 0 ? 0.0 : static_cast<double>(total - prev) / static_cast<double>(dt);
    prev = total;
    prev_now = now;
    return util;
  });
  snap.add_gauge("reads_epoch",
                 [&, prev = 0.0]() mutable {
                   const double t =
                       static_cast<double>(reg.counter("mem.reads").value());
                   const double d = t - prev;
                   prev = t;
                   return d;
                 });
  snap.add_gauge("writes_epoch",
                 [&, prev = 0.0]() mutable {
                   const double t =
                       static_cast<double>(reg.counter("mem.writes").value());
                   const double d = t - prev;
                   prev = t;
                   return d;
                 });
  snap.add_gauge("write_units_epoch",
                 [&, prev = 0.0]() mutable {
                   const double t = reg.accumulator("mem.write_units").sum();
                   const double d = t - prev;
                   prev = t;
                   return d;
                 });
  // Mean packed power-budget utilization of the writes in this epoch
  // (0 when the scheme has no packed schedule, or nothing was written).
  snap.add_gauge("budget_util",
                 [&, prev_sum = 0.0, prev_n = 0.0]() mutable {
                   const auto& acc = reg.accumulator("mem.power_utilization");
                   const double dn = static_cast<double>(acc.count()) - prev_n;
                   const double ds = acc.sum() - prev_sum;
                   prev_n = static_cast<double>(acc.count());
                   prev_sum = acc.sum();
                   return dn <= 0.0 ? 0.0 : ds / dn;
                 });
  // Mean occupancy of the multi-line joint schedules issued this epoch
  // (0 when batching is off or the scheme serializes its batches).
  snap.add_gauge("batch_occupancy",
                 [&, prev_sum = 0.0, prev_n = 0.0]() mutable {
                   const auto& acc = reg.accumulator("mem.batch_occupancy");
                   const double dn = static_cast<double>(acc.count()) - prev_n;
                   const double ds = acc.sum() - prev_sum;
                   prev_n = static_cast<double>(acc.count());
                   prev_sum = acc.sum();
                   return dn <= 0.0 ? 0.0 : ds / dn;
                 });
}

/// Gauges for a multi-channel system: aggregate queue depths and traffic
/// across channels, plus per-channel write activity so a trace shows
/// which channels carry the load. Reads cross-registry state only during
/// the serial front phase (sampling happens on the front domain), so no
/// synchronization is needed.
void add_channel_gauges(trace::MetricsSnapshotter& snap, sim::Simulator& sim,
                        mem::MemorySystem& msys) {
  const u32 channels = msys.channels();
  snap.add_gauge("read_q_depth", [&msys, channels] {
    u64 d = 0;
    for (u32 c = 0; c < channels; ++c) d += msys.channel(c).read_queue_depth();
    return static_cast<double>(d);
  });
  snap.add_gauge("write_q_depth", [&msys, channels] {
    u64 d = 0;
    for (u32 c = 0; c < channels; ++c) d += msys.channel(c).write_queue_depth();
    return static_cast<double>(d);
  });
  snap.add_gauge("banks_busy", [&msys, &sim, channels] {
    u32 busy = 0;
    for (u32 c = 0; c < channels; ++c) {
      for (const auto& b : msys.channel(c).banks()) {
        if (!b.idle_at(sim.now())) ++busy;
      }
    }
    return static_cast<double>(busy);
  });
  snap.add_gauge("reads_epoch", [&msys, channels, prev = 0.0]() mutable {
    double t = 0.0;
    for (u32 c = 0; c < channels; ++c) {
      t += static_cast<double>(
          msys.channel_registry(c)->counter("mem.reads").value());
    }
    const double d = t - prev;
    prev = t;
    return d;
  });
  snap.add_gauge("writes_epoch", [&msys, channels, prev = 0.0]() mutable {
    double t = 0.0;
    for (u32 c = 0; c < channels; ++c) {
      t += static_cast<double>(
          msys.channel_registry(c)->counter("mem.writes").value());
    }
    const double d = t - prev;
    prev = t;
    return d;
  });
  for (u32 c = 0; c < channels; ++c) {
    snap.add_gauge("ch" + std::to_string(c) + "_writes_epoch",
                   [&msys, c, prev = 0.0]() mutable {
                     const double t = static_cast<double>(
                         msys.channel_registry(c)->counter("mem.writes").value());
                     const double d = t - prev;
                     prev = t;
                     return d;
                   });
    snap.add_gauge("ch" + std::to_string(c) + "_write_q_depth", [&msys, c] {
      return static_cast<double>(msys.channel(c).write_queue_depth());
    });
  }
}

/// Per-epoch fault gauges; only registered when a fault model is active so
/// fault-free traces keep their exact current column set.
void add_fault_gauges(trace::MetricsSnapshotter& snap, stats::Registry& reg) {
  const auto epoch_delta = [&reg](const char* name) {
    return [&reg, name, prev = 0.0]() mutable {
      const double t = static_cast<double>(reg.counter(name).value());
      const double d = t - prev;
      prev = t;
      return d;
    };
  };
  snap.add_gauge("fault_retries_epoch", epoch_delta("mem.fault_retries"));
  snap.add_gauge("failed_lines_epoch", epoch_delta("mem.failed_lines"));
  snap.add_gauge("brownout_writes_epoch",
                 epoch_delta("mem.brownout_writes"));
}

/// Per-epoch DRAM-tier gauges; only registered when the tier is on so
/// tier-off traces keep their exact column set.
void add_dram_gauges(trace::MetricsSnapshotter& snap, stats::Registry& reg) {
  const auto epoch_delta = [&reg](const char* name) {
    return [&reg, name, prev = 0.0]() mutable {
      const double t = static_cast<double>(reg.counter(name).value());
      const double d = t - prev;
      prev = t;
      return d;
    };
  };
  snap.add_gauge("dram_hits_epoch", epoch_delta("mem.dram_hits"));
  snap.add_gauge("dram_misses_epoch", epoch_delta("mem.dram_misses"));
  snap.add_gauge("dram_writebacks_epoch",
                 epoch_delta("mem.dram_writebacks"));
  snap.add_gauge("dram_clean_evicts_epoch",
                 epoch_delta("mem.dram_clean_evicts"));
}

/// Per-epoch PALP gauges; only registered when partition-level
/// parallelism is on so PALP-off traces keep their exact column set.
void add_palp_gauges(trace::MetricsSnapshotter& snap, stats::Registry& reg) {
  const auto epoch_delta = [&reg](const char* name) {
    return [&reg, name, prev = 0.0]() mutable {
      const double t = static_cast<double>(reg.counter(name).value());
      const double d = t - prev;
      prev = t;
      return d;
    };
  };
  snap.add_gauge("palp_overlapped_reads_epoch",
                 epoch_delta("mem.palp_overlapped_reads"));
  snap.add_gauge("palp_pump_stalls_epoch",
                 epoch_delta("mem.palp_pump_stalls"));
  snap.add_gauge("palp_write_overlaps_epoch",
                 epoch_delta("mem.palp_write_overlaps"));
}

/// Per-epoch content-encoder gauges; only registered when an encoder is
/// configured so encoder-off traces keep their exact column set.
void add_encode_gauges(trace::MetricsSnapshotter& snap, stats::Registry& reg) {
  const auto epoch_delta = [&reg](const char* name) {
    return [&reg, name, prev = 0.0]() mutable {
      const double t = static_cast<double>(reg.counter(name).value());
      const double d = t - prev;
      prev = t;
      return d;
    };
  };
  snap.add_gauge("enc_writes_epoch", epoch_delta("mem.enc_writes"));
  snap.add_gauge("enc_coded_units_epoch", epoch_delta("mem.enc_coded_units"));
  snap.add_gauge("enc_tag_bits_epoch", epoch_delta("mem.enc_tag_bits"));
}

}  // namespace

u64 config_hash(const SystemConfig& cfg) {
  u64 h = 0x243F6A8885A308D3ull;  // pi
  // Device.
  h = mix(h, cfg.pcm.timing.t_read);
  h = mix(h, cfg.pcm.timing.t_reset);
  h = mix(h, cfg.pcm.timing.t_set);
  h = mix(h, cfg.pcm.power.reset_current_ratio_l);
  h = mix(h, cfg.pcm.power.chip_budget);
  h = mix(h, cfg.pcm.power.global_charge_pump ? 1 : 0);
  h = mix(h, cfg.pcm.geometry.chips_per_bank);
  h = mix(h, cfg.pcm.geometry.chip_write_bits);
  h = mix(h, cfg.pcm.geometry.data_unit_bits);
  h = mix(h, cfg.pcm.geometry.cache_line_bytes);
  h = mix(h, cfg.pcm.geometry.banks);
  h = mix(h, cfg.pcm.geometry.ranks);
  h = mix(h, cfg.pcm.geometry.subarrays_per_bank);
  h = mix(h, cfg.pcm.geometry.capacity_bytes);
  // Channel topology (sim_threads is deliberately excluded: it never
  // affects results).
  h = mix(h, cfg.pcm.geometry.channels);
  h = mix(h, static_cast<u64>(cfg.pcm.geometry.channel_interleave));
  h = mix(h, cfg.xbar_latency);
  h = mix_double(h, cfg.pcm.energy.set_pj);
  h = mix_double(h, cfg.pcm.energy.reset_pj);
  h = mix_double(h, cfg.pcm.energy.read_bit_pj);
  // Controller.
  h = mix(h, cfg.controller.read_queue_entries);
  h = mix(h, cfg.controller.write_queue_entries);
  h = mix(h, static_cast<u64>(cfg.controller.drain));
  h = mix(h, cfg.controller.drain_low_watermark);
  h = mix(h, cfg.controller.read_bus_time);
  h = mix(h, cfg.controller.forward_latency);
  h = mix(h, (cfg.controller.write_coalescing ? 1 : 0) |
                 (cfg.controller.read_forwarding ? 2 : 0) |
                 (cfg.controller.write_pausing ? 4 : 0) |
                 (cfg.controller.wear_leveling ? 8 : 0) |
                 (cfg.controller.row_hit_first ? 16 : 0));
  h = mix(h, cfg.controller.pause_quantum);
  h = mix(h, cfg.controller.start_gap.region_lines);
  h = mix(h, cfg.controller.start_gap.gap_write_interval);
  h = mix(h, cfg.controller.write_batch);
  h = mix(h, (cfg.controller.palp.enabled ? 1 : 0));
  h = mix(h, cfg.controller.palp.write_ways);
  h = mix(h, cfg.controller.palp.max_rww_reads);
  h = mix(h, cfg.batch.max_lines);
  // Core model.
  h = mix(h, cfg.core.clock_period);
  h = mix_double(h, cfg.core.peak_ipc);
  h = mix(h, cfg.core.mlp);
  // Tetris options.
  h = mix(h, cfg.tetris.analysis_cycles);
  h = mix(h, cfg.tetris.analysis_clock_period);
  h = mix(h, static_cast<u64>(cfg.tetris.pack_order));
  h = mix(h, (cfg.tetris.forbid_self_overlap ? 1 : 0) |
                 (cfg.tetris.respect_gcp_setting ? 2 : 0) |
                 (cfg.tetris.self_check ? 4 : 0));
  // Run shape.
  h = mix(h, cfg.cores);
  h = mix(h, cfg.instructions_per_core);
  h = mix(h, cfg.seed);
  h = mix(h, cfg.max_sim_time);
  // Fault injection.
  h = mix_double(h, cfg.fault.set_fail_prob);
  h = mix_double(h, cfg.fault.reset_fail_prob);
  h = mix(h, cfg.fault.max_retries);
  h = mix_double(h, cfg.fault.retry_widening);
  h = mix_double(h, cfg.fault.retry_fail_damping);
  h = mix(h, cfg.fault.wear_knee);
  h = mix_double(h, cfg.fault.worn_fail_prob);
  h = mix(h, cfg.fault.stuck_bank);
  h = mix_double(h, cfg.fault.stuck_bank_prob);
  h = mix(h, cfg.fault.brownout_period);
  h = mix(h, cfg.fault.brownout_duration);
  h = mix_double(h, cfg.fault.brownout_budget_factor);
  // DRAM front tier: mixed only when enabled so every tier-off config
  // keeps the hash it had before the tier existed.
  if (cfg.dram.enabled) {
    h = mix(h, 1);
    h = mix(h, cfg.dram.capacity_bytes);
    h = mix(h, cfg.dram.ways);
    h = mix(h, static_cast<u64>(cfg.dram.policy));
    h = mix(h, cfg.dram.t_row_hit);
    h = mix(h, cfg.dram.t_row_miss);
    h = mix(h, cfg.dram.row_lines);
    h = mix(h, cfg.dram.banks);
    h = mix(h, cfg.dram.pending_limit);
    h = mix(h, cfg.dram.mac_group);
  }
  // Content encoder: mixed only when enabled so every encoder-off config
  // keeps the hash it had before the encoder stage existed.
  if (cfg.encode.enabled()) {
    h = mix(h, 2);
    h = mix(h, static_cast<u64>(cfg.encode.kind));
  }
  return h;
}

RunMetrics run_system(const SystemConfig& cfg,
                      const workload::WorkloadProfile& profile,
                      schemes::SchemeKind kind) {
  sim::Simulator sim;
  stats::Registry reg;

  // The factory gives every channel its own scheme instance (schemes
  // carry mutable planning state); channels == 1 builds exactly one. The
  // configured content encoder wraps each instance as a pre-stage
  // (wrap_scheme is the identity for EncoderKind::kNone).
  const mem::SchemeFactory factory = [&](u32) {
    return encode::wrap_scheme(core::make_scheme(kind, cfg.pcm, cfg.tetris),
                               cfg.encode.kind);
  };
  mem::ControllerConfig ccfg = cfg.controller;
  // batch.max_lines is the canonical multi-line knob: when set it bounds
  // the controller's same-bank write gather (1 = per-line packing).
  if (cfg.batch.max_lines > 0) ccfg.write_batch = cfg.batch.max_lines;
  mem::MemorySystem msys(sim, cfg.pcm, ccfg, factory, reg, cfg.fault,
                         cfg.seed, profile.initial_ones_fraction,
                         cfg.xbar_latency, cfg.sim_threads, cfg.dram);
  const u32 channels = msys.channels();
  workload::TraceGenerator gen(profile, cfg.pcm.geometry, cfg.cores,
                               cfg.seed * 0x9E3779B9u + 7);
  cpu::MultiCore cpus(sim, cfg.core, cfg.cores, msys, gen,
                      cfg.instructions_per_core);

  // Observability: attach the tracer to this thread for the duration of
  // the run, sample gauges on the metrics epoch, and serialize at the end.
  // Multi-channel runs bind one pre-created ring per simulation domain
  // instead of a plain thread attach, so trace bytes stay identical at
  // every thread count.
  const bool traced = cfg.trace.enabled();
  std::optional<trace::Tracer> tracer;
  std::optional<trace::Tracer::Attach> attach;
  std::optional<trace::MetricsSnapshotter> snapshotter;
  if (traced) {
    tracer.emplace(cfg.trace.categories, cfg.trace.ring_capacity);
    if (channels == 1) {
      attach.emplace(*tracer);
    } else {
      msys.bind_trace(*tracer);
    }
    snapshotter.emplace(sim, reg, cfg.trace.metrics_epoch);
    if (channels == 1) {
      add_standard_gauges(*snapshotter, sim, msys.channel(0), reg);
    } else {
      add_channel_gauges(*snapshotter, sim, msys);
    }
    if (cfg.fault.enabled() && channels == 1) {
      add_fault_gauges(*snapshotter, reg);
    }
    if (channels == 1 && msys.channel(0).palp_active()) {
      add_palp_gauges(*snapshotter, reg);
    }
    if (msys.dram_active()) add_dram_gauges(*snapshotter, reg);
    if (cfg.encode.enabled() && channels == 1) {
      add_encode_gauges(*snapshotter, reg);
    }
    snapshotter->start();
  }

  cpus.start();
  msys.run(cfg.max_sim_time);

  RunMetrics m;
  m.workload = profile.name;
  m.scheme = std::string(msys.scheme().name());
  m.completed = cpus.all_finished();

  if (traced) {
    if (channels == 1) {
      snapshotter->sample();  // final partial epoch
      attach.reset();         // stop emitting before collection
    } else {
      // Final partial epoch emits into the front domain's ring.
      trace::Tracer::Attach fin(*tracer, *msys.front_ring());
      snapshotter->sample();
    }

    trace::RunManifest manifest;
    manifest.version = kVersionString;
    manifest.git_sha = trace::build_git_sha();
    manifest.scheme = m.scheme;
    manifest.workload = m.workload;
    manifest.config_hash = config_hash(cfg);
    manifest.seed = cfg.seed;
    manifest.counter_names = snapshotter->gauge_names();
    char cats[128];
    trace::append_category_list(tracer->mask(), cats, sizeof(cats));
    manifest.categories = cats;

    const std::vector<trace::TraceRecord> records = tracer->collect();
    if (!cfg.trace.chrome_path.empty()) {
      trace::write_chrome_trace_file(cfg.trace.chrome_path, records,
                                     manifest);
    }
    if (!cfg.trace.metrics_path.empty()) {
      trace::write_metrics_csv_file(cfg.trace.metrics_path, records,
                                    manifest);
    }
    m.trace_records = records.size();
    m.trace_dropped = tracer->total_dropped();
    m.trace_samples = snapshotter->samples_taken();
  }

  // Fold per-channel registries into the main registry (no-op for
  // channels == 1) before harvesting.
  msys.merge_stats();
  m.read_latency_ns = reg.accumulator("mem.read_latency_ns").mean();
  m.write_latency_ns = reg.accumulator("mem.write_latency_ns").mean();
  m.write_service_ns = reg.accumulator("mem.write_service_ns").mean();
  m.write_units = reg.accumulator("mem.write_units").mean();
  m.read_p99_ns = reg.histogram("mem.read_latency_hist_ns").percentile(0.99);
  m.write_p99_ns =
      reg.histogram("mem.write_latency_hist_ns").percentile(0.99);
  m.reads = reg.counter("mem.reads").value();
  m.writes = reg.counter("mem.writes").value();
  m.sim_events = msys.executed_events();
  m.retired = cpus.total_retired();
  m.ipc = cpus.aggregate_ipc();
  m.runtime_ns = to_ns(cpus.runtime());
  // Per-channel device models aggregate across channels (channels == 1
  // reduces to the plain single-controller reads).
  u64 wear_bits = 0;
  u64 wear_writes = 0;
  m.write_energy_pj = 0.0;
  m.read_energy_pj = 0.0;
  for (u32 c = 0; c < channels; ++c) {
    m.write_energy_pj += msys.channel(c).energy().write_energy_pj();
    m.read_energy_pj += msys.channel(c).energy().read_energy_pj();
    const pcm::WearSummary wear = msys.channel(c).wear().summary();
    wear_bits += wear.total_bits;
    wear_writes += wear.total_writes;
  }
  m.bits_per_write = wear_writes == 0 ? 0.0
                                      : static_cast<double>(wear_bits) /
                                            static_cast<double>(wear_writes);
  m.write_pauses = reg.counter("mem.write_pauses").value();
  m.gap_moves = reg.counter("mem.gap_moves").value();
  m.writes_batched = reg.counter("mem.writes_batched").value();
  m.batch_lines = reg.accumulator("mem.batch_lines").mean();
  m.batch_occupancy = reg.accumulator("mem.batch_occupancy").mean();
  m.reads_forwarded = reg.counter("mem.reads_forwarded").value();
  m.writes_coalesced = reg.counter("mem.writes_coalesced").value();
  m.read_q_peak = 0;
  m.write_q_peak = 0;
  for (u32 c = 0; c < channels; ++c) {
    m.read_q_peak = std::max<u64>(m.read_q_peak,
                                  msys.channel(c).read_queue_peak());
    m.write_q_peak = std::max<u64>(m.write_q_peak,
                                   msys.channel(c).write_queue_peak());
  }
  m.dispatch_rounds = reg.counter("mem.dispatch_rounds").value();
  m.row_hits = reg.counter("mem.row_hits").value();
  m.fault_retries = reg.counter("mem.fault_retries").value();
  m.failed_lines = reg.counter("mem.failed_lines").value();
  m.brownout_writes = reg.counter("mem.brownout_writes").value();
  m.stuck_remaps = reg.counter("mem.stuck_remaps").value();
  m.palp_overlapped_reads = reg.counter("mem.palp_overlapped_reads").value();
  m.palp_pump_stalls = reg.counter("mem.palp_pump_stalls").value();
  m.palp_write_overlaps = reg.counter("mem.palp_write_overlaps").value();
  m.dram_hits = reg.counter("mem.dram_hits").value();
  m.dram_misses = reg.counter("mem.dram_misses").value();
  m.dram_writebacks = reg.counter("mem.dram_writebacks").value();
  m.dram_clean_evicts = reg.counter("mem.dram_clean_evicts").value();
  m.enc_writes = reg.counter("mem.enc_writes").value();
  m.enc_coded_units = reg.counter("mem.enc_coded_units").value();
  m.enc_tag_bits = reg.counter("mem.enc_tag_bits").value();
  return m;
}

}  // namespace tw::harness
