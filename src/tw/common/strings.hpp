#pragma once
// Small string/format helpers used by the reporting layers.

#include <string>
#include <string_view>
#include <vector>

#include "tw/common/types.hpp"

namespace tw {

/// Format a double with fixed decimals, e.g. fixed(3.14159, 2) == "3.14".
std::string fixed(double v, int decimals);

/// Format a fraction as a percentage string, e.g. pct(0.653) == "65.3%".
std::string pct(double fraction, int decimals = 1);

/// Right-pad (positive width) or left-pad (negative width) with spaces.
std::string pad(std::string_view s, int width);

/// Join pieces with a separator.
std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// Lowercase ASCII copy.
std::string to_lower(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Split on a delimiter character; empty fields preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Render a horizontal ASCII bar of `frac` (clamped to [0,1]) out of width.
std::string ascii_bar(double frac, int width = 40);

}  // namespace tw
