#pragma once
// Bit-level kernels used throughout the PCM write-scheme models.
//
// A "data unit" in the paper is 64 bits, so most kernels are expressed over
// u64 words and std::span<const u64>. Writing a bit '1' into PCM is a SET
// (crystallize), writing '0' is a RESET (amorphize); the kernels here count
// which transitions a write actually performs given the old cell contents.

#include <bit>
#include <span>

#include "tw/common/assert.hpp"
#include "tw/common/types.hpp"

namespace tw {

/// Number of set bits in a word.
constexpr u32 popcount(u64 v) { return static_cast<u32>(std::popcount(v)); }

/// Hamming distance between two words.
constexpr u32 hamming(u64 a, u64 b) { return popcount(a ^ b); }

/// Hamming distance between two equal-length word spans.
inline u32 hamming(std::span<const u64> a, std::span<const u64> b) {
  TW_EXPECTS(a.size() == b.size());
  u32 d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) d += hamming(a[i], b[i]);
  return d;
}

/// Per-write transition counts: bits going 0->1 (SET) and 1->0 (RESET).
struct BitTransitions {
  u32 sets = 0;    ///< bits that must be SET (old 0, new 1)
  u32 resets = 0;  ///< bits that must be RESET (old 1, new 0)

  constexpr u32 total() const { return sets + resets; }
  constexpr bool operator==(const BitTransitions&) const = default;
};

/// Count SET/RESET transitions writing `next` over `old_v` in one word.
constexpr BitTransitions transitions(u64 old_v, u64 next) {
  const u64 diff = old_v ^ next;
  BitTransitions t;
  t.sets = popcount(diff & next);      // 0 -> 1
  t.resets = popcount(diff & old_v);   // 1 -> 0
  return t;
}

/// Count SET/RESET transitions over equal-length word spans.
inline BitTransitions transitions(std::span<const u64> old_v,
                                  std::span<const u64> next) {
  TW_EXPECTS(old_v.size() == next.size());
  BitTransitions t;
  for (std::size_t i = 0; i < old_v.size(); ++i) {
    const BitTransitions w = transitions(old_v[i], next[i]);
    t.sets += w.sets;
    t.resets += w.resets;
  }
  return t;
}

/// Extract bit `i` (0 = LSB) of a word.
constexpr bool get_bit(u64 v, u32 i) { return ((v >> i) & 1u) != 0; }

/// Return `v` with bit `i` set to `b`.
constexpr u64 with_bit(u64 v, u32 i, bool b) {
  return b ? (v | (u64{1} << i)) : (v & ~(u64{1} << i));
}

/// Bitwise NOT over a span, in place.
inline void invert(std::span<u64> v) {
  for (auto& w : v) w = ~w;
}

/// A mask with the low `n` bits set (n in [0,64]).
constexpr u64 low_mask(u32 n) {
  return n >= 64 ? ~u64{0} : ((u64{1} << n) - 1);
}

// -- Word-array bitmaps (the controller's non-empty-queue masks) ----------

/// Set bit `i` in a multi-word bitmap.
inline void bitmap_set(std::span<u64> words, u32 i) {
  words[i >> 6] |= u64{1} << (i & 63);
}

/// Clear bit `i` in a multi-word bitmap.
inline void bitmap_clear(std::span<u64> words, u32 i) {
  words[i >> 6] &= ~(u64{1} << (i & 63));
}

/// Test bit `i` in a multi-word bitmap.
inline bool bitmap_test(std::span<const u64> words, u32 i) {
  return (words[i >> 6] >> (i & 63)) & 1u;
}

/// Invoke `fn(u32 index)` for every set bit, lowest index first.
template <class Fn>
inline void bitmap_for_each(std::span<const u64> words, Fn&& fn) {
  for (std::size_t w = 0; w < words.size(); ++w) {
    u64 bits = words[w];
    while (bits != 0) {
      const u32 bit = static_cast<u32>(std::countr_zero(bits));
      fn(static_cast<u32>(w * 64) + bit);
      bits &= bits - 1;
    }
  }
}

}  // namespace tw
