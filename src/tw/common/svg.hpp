#pragma once
// Minimal SVG grouped-bar-chart emitter, so the figure benches can write
// actual figure files (fig11.svg, ...) next to their ASCII tables.

#include <ostream>
#include <string>
#include <vector>

namespace tw {

/// A grouped bar chart: one group per category (workload), one bar per
/// series (scheme) within each group.
class BarChart {
 public:
  BarChart(std::string title, std::string y_label)
      : title_(std::move(title)), y_label_(std::move(y_label)) {}

  /// Define the series (legend entries), in drawing order.
  void set_series(std::vector<std::string> names);

  /// Append one category with one value per series.
  void add_group(std::string category, std::vector<double> values);

  /// Optional horizontal reference line (e.g. baseline = 1.0).
  void set_reference(double y) { reference_ = y; has_reference_ = true; }

  /// Render the SVG document.
  void render(std::ostream& out, int width = 860, int height = 420) const;

  std::string to_string(int width = 860, int height = 420) const;

 private:
  struct Group {
    std::string category;
    std::vector<double> values;
  };

  std::string title_;
  std::string y_label_;
  std::vector<std::string> series_;
  std::vector<Group> groups_;
  double reference_ = 0.0;
  bool has_reference_ = false;
};

}  // namespace tw
