#pragma once
// Deterministic pseudo-random number generation.
//
// Every stochastic component in the simulator derives its stream from a
// single user seed via SplitMix64, then runs xoshiro256** locally. This
// keeps figures reproducible bit-for-bit regardless of thread scheduling:
// each (workload, scheme) cell gets an independent deterministic stream.

#include <array>
#include <cmath>

#include "tw/common/assert.hpp"
#include "tw/common/types.hpp"

namespace tw {

/// SplitMix64: used for seeding / stream splitting (Steele et al.).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(u64 seed) : state_(seed) {}

  constexpr u64 next() {
    u64 z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  u64 state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna) — fast, high-quality 64-bit PRNG.
class Rng {
 public:
  using result_type = u64;

  /// Seed the full 256-bit state from one 64-bit seed through SplitMix64.
  explicit Rng(u64 seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  /// Derive an independent child stream (for per-component RNGs).
  Rng split() { return Rng(next()); }

  static constexpr u64 min() { return 0; }
  static constexpr u64 max() { return ~u64{0}; }
  u64 operator()() { return next(); }

  u64 next() {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  u64 below(u64 bound) {
    TW_EXPECTS(bound > 0);
    // Simple modulo-debiased loop; bound is tiny in all our uses.
    const u64 threshold = (~bound + 1) % bound;  // 2^64 mod bound
    u64 r;
    do {
      r = next();
    } while (r < threshold);
    return r % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  u64 range(u64 lo, u64 hi) {
    TW_EXPECTS(lo <= hi);
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Geometric-ish positive integer with mean `mean` (>= 1).
  u64 geometric(double mean) {
    TW_EXPECTS(mean >= 1.0);
    const double p = 1.0 / mean;
    double u = uniform();
    if (u <= 0.0) u = 1e-18;
    const double v = std::ceil(std::log(u) / std::log(1.0 - p));
    return v < 1.0 ? 1 : static_cast<u64>(v);
  }

  /// Poisson sample (Knuth for small lambda, normal approx for large).
  u64 poisson(double lambda) {
    TW_EXPECTS(lambda >= 0.0);
    if (lambda <= 0.0) return 0;
    if (lambda < 30.0) {
      const double limit = std::exp(-lambda);
      u64 k = 0;
      double p = 1.0;
      do {
        ++k;
        p *= uniform();
      } while (p > limit);
      return k - 1;
    }
    const double g = gaussian() * std::sqrt(lambda) + lambda;
    return g < 0.0 ? 0 : static_cast<u64>(g + 0.5);
  }

  /// Standard normal sample (Box–Muller; one value per call).
  double gaussian() {
    double u1 = uniform();
    if (u1 <= 0.0) u1 = 1e-18;
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
  }

 private:
  static constexpr u64 rotl(u64 x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<u64, 4> state_{};
};

}  // namespace tw
