#include "tw/common/env.hpp"

#include <cstdlib>
#include <cstring>

namespace tw {

bool verify_env_enabled() {
  const char* v = std::getenv("TW_VERIFY");
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

}  // namespace tw
