#include "tw/common/env.hpp"

#include <cstdlib>
#include <cstring>

namespace tw {

bool verify_env_enabled() {
  const char* v = std::getenv("TW_VERIFY");
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

u32 fuzz_scale_env() {
  const char* v = std::getenv("TW_FUZZ_SCALE");
  if (v == nullptr || v[0] == '\0') return 1;
  const long n = std::strtol(v, nullptr, 10);
  if (n < 1) return 1;
  if (n > 1000) return 1000;
  return static_cast<u32>(n);
}

u64 fuzz_seed_env() {
  const char* v = std::getenv("TW_FUZZ_SEED");
  if (v == nullptr || v[0] == '\0') return 0;
  return std::strtoull(v, nullptr, 10);
}

}  // namespace tw
