#pragma once
// Small-buffer-optimized move-only `void()` callables.
//
// The simulation kernel fires tens of millions of events per run; wrapping
// every callback in std::function costs one heap allocation (plus a free)
// per scheduled event. BasicInlineFunction stores the capture inline in a
// fixed buffer instead:
//
//   * AllowHeap == false (sim::Simulator::Callback): a capture larger than
//     the buffer is a compile error — every call site is statically
//     guaranteed allocation-free;
//   * AllowHeap == true (ThreadPool::Job): oversized captures fall back to
//     a single heap cell, so arbitrary jobs still work, while the common
//     small jobs stay inline.
//
// Move-only by design: callbacks own their captures and are consumed by
// the queue that fires them; copying would silently duplicate state.

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace tw {

template <std::size_t Capacity, bool AllowHeap>
class BasicInlineFunction {
 public:
  static constexpr std::size_t kCapacity = Capacity;

  /// True when F's captures fit the inline buffer (no heap needed).
  template <class F>
  static constexpr bool fits_inline =
      sizeof(std::decay_t<F>) <= Capacity &&
      alignof(std::decay_t<F>) <= alignof(std::max_align_t);

  BasicInlineFunction() = default;
  BasicInlineFunction(std::nullptr_t) {}  // NOLINT: implicit like std::function

  template <class F,
            class D = std::decay_t<F>,
            class = std::enable_if_t<
                !std::is_same_v<D, BasicInlineFunction> &&
                !std::is_same_v<D, std::nullptr_t> &&
                std::is_invocable_r_v<void, D&>>>
  BasicInlineFunction(F&& f) {  // NOLINT: implicit like std::function
    if constexpr (fits_inline<F>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &InlineOpsFor<D>::ops;
    } else {
      static_assert(AllowHeap,
                    "callback capture exceeds the inline buffer; shrink the "
                    "capture (e.g. capture an index into pooled state "
                    "instead of the object) — the simulator event path is "
                    "allocation-free by contract");
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &HeapOpsFor<D>::ops;
    }
  }

  BasicInlineFunction(BasicInlineFunction&& other) noexcept {
    move_from(std::move(other));
  }

  BasicInlineFunction& operator=(BasicInlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(std::move(other));
    }
    return *this;
  }

  BasicInlineFunction(const BasicInlineFunction&) = delete;
  BasicInlineFunction& operator=(const BasicInlineFunction&) = delete;

  ~BasicInlineFunction() { reset(); }

  /// Invoke the stored callable. Precondition: non-empty (checked where
  /// callbacks enter the system, not per fire — this is the hot path).
  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const { return ops_ != nullptr; }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* self);
    /// Move-construct dst's payload from src's and destroy src's.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* self);
  };

  template <class D>
  struct InlineOpsFor {
    static void invoke(void* s) { (*static_cast<D*>(s))(); }
    static void relocate(void* dst, void* src) {
      D* from = static_cast<D*>(src);
      ::new (dst) D(std::move(*from));
      from->~D();
    }
    static void destroy(void* s) { static_cast<D*>(s)->~D(); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  template <class D>
  struct HeapOpsFor {
    static D*& cell(void* s) { return *static_cast<D**>(s); }
    static void invoke(void* s) { (*cell(s))(); }
    static void relocate(void* dst, void* src) {
      ::new (dst) D*(cell(src));
    }
    static void destroy(void* s) { delete cell(s); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  void move_from(BasicInlineFunction&& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[Capacity];
  const Ops* ops_ = nullptr;
};

template <std::size_t C, bool H>
inline bool operator==(const BasicInlineFunction<C, H>& f, std::nullptr_t) {
  return !f;
}
template <std::size_t C, bool H>
inline bool operator!=(const BasicInlineFunction<C, H>& f, std::nullptr_t) {
  return static_cast<bool>(f);
}

}  // namespace tw
