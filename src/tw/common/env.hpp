#pragma once
// Runtime feature flags read from the environment.
//
// TW_VERIFY=1 turns on invariant mode across the system: production
// schemes self-check every schedule (verify_pack + FSM re-execution), the
// hardware executor cross-checks pulse exclusivity, and the verify
// subsystem's monitors are armed by the components that own them. The
// flag is read per query (getenv is cheap next to a line write) so tests
// can toggle it.
//
// TW_FUZZ_SCALE=N multiplies the trial counts of the randomized fuzz
// campaigns (nightly CI runs long campaigns at N >> 1; presubmit keeps
// the fast default). TW_FUZZ_SEED=N offsets the campaigns' base seeds so
// successive nightly runs explore fresh cases; failures stay
// reproducible because the minimizer prints a self-contained reproducer.

#include "tw/common/types.hpp"

namespace tw {

/// True when TW_VERIFY is set to a non-empty value other than "0".
bool verify_env_enabled();

/// Trial multiplier for randomized fuzz campaigns (TW_FUZZ_SCALE,
/// default 1, clamped to [1, 1000]).
u32 fuzz_scale_env();

/// Additive seed offset for randomized fuzz campaigns (TW_FUZZ_SEED,
/// default 0).
u64 fuzz_seed_env();

}  // namespace tw
