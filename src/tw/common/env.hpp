#pragma once
// Runtime feature flags read from the environment.
//
// TW_VERIFY=1 turns on invariant mode across the system: production
// schemes self-check every schedule (verify_pack + FSM re-execution), the
// hardware executor cross-checks pulse exclusivity, and the verify
// subsystem's monitors are armed by the components that own them. The
// flag is read per query (getenv is cheap next to a line write) so tests
// can toggle it.

namespace tw {

/// True when TW_VERIFY is set to a non-empty value other than "0".
bool verify_env_enabled();

}  // namespace tw
