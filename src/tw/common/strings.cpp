#include "tw/common/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>

namespace tw {

std::string fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string pct(double fraction, int decimals) {
  return fixed(fraction * 100.0, decimals) + "%";
}

std::string pad(std::string_view s, int width) {
  std::string out(s);
  const std::size_t w = static_cast<std::size_t>(width < 0 ? -width : width);
  if (out.size() >= w) return out;
  const std::string fill(w - out.size(), ' ');
  return width < 0 ? fill + out : out + fill;
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string ascii_bar(double frac, int width) {
  frac = std::clamp(frac, 0.0, 1.0);
  const int filled = static_cast<int>(std::lround(frac * width));
  std::string out(static_cast<std::size_t>(filled), '#');
  out.append(static_cast<std::size_t>(width - filled), '.');
  return out;
}

}  // namespace tw
