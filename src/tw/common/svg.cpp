#include "tw/common/svg.hpp"

#include <algorithm>
#include <sstream>

#include "tw/common/assert.hpp"
#include "tw/common/strings.hpp"

namespace tw {
namespace {

// Color-blind-safe categorical palette (Okabe–Ito).
const char* kPalette[] = {"#0072B2", "#E69F00", "#009E73", "#D55E00",
                          "#CC79A7", "#56B4E9", "#F0E442", "#000000"};
constexpr int kPaletteSize = 8;

std::string esc(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

void BarChart::set_series(std::vector<std::string> names) {
  series_ = std::move(names);
}

void BarChart::add_group(std::string category, std::vector<double> values) {
  TW_EXPECTS(values.size() == series_.size());
  groups_.push_back(Group{std::move(category), std::move(values)});
}

void BarChart::render(std::ostream& out, int width, int height) const {
  const double margin_left = 64, margin_right = 16, margin_top = 48,
               margin_bottom = 64;
  const double plot_w = width - margin_left - margin_right;
  const double plot_h = height - margin_top - margin_bottom;

  double vmax = has_reference_ ? reference_ : 0.0;
  for (const auto& g : groups_) {
    for (const double v : g.values) vmax = std::max(vmax, v);
  }
  if (vmax <= 0.0) vmax = 1.0;
  vmax *= 1.08;  // headroom

  auto y_of = [&](double v) {
    return margin_top + plot_h * (1.0 - v / vmax);
  };

  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
      << "\" height=\"" << height << "\" font-family=\"sans-serif\">\n";
  out << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  out << "<text x=\"" << width / 2 << "\" y=\"22\" text-anchor=\"middle\" "
         "font-size=\"15\" font-weight=\"bold\">"
      << esc(title_) << "</text>\n";

  // Y axis + gridlines.
  for (int i = 0; i <= 4; ++i) {
    const double v = vmax * i / 4.0;
    const double y = y_of(v);
    out << "<line x1=\"" << margin_left << "\" y1=\"" << y << "\" x2=\""
        << width - margin_right << "\" y2=\"" << y
        << "\" stroke=\"#ddd\"/>\n";
    out << "<text x=\"" << margin_left - 6 << "\" y=\"" << y + 4
        << "\" text-anchor=\"end\" font-size=\"11\">" << fixed(v, 2)
        << "</text>\n";
  }
  out << "<text x=\"14\" y=\"" << margin_top + plot_h / 2
      << "\" font-size=\"12\" text-anchor=\"middle\" transform=\"rotate(-90 "
         "14 "
      << margin_top + plot_h / 2 << ")\">" << esc(y_label_) << "</text>\n";

  // Bars.
  const std::size_t ngroups = std::max<std::size_t>(groups_.size(), 1);
  const double group_w = plot_w / static_cast<double>(ngroups);
  const double bar_w =
      group_w * 0.8 / static_cast<double>(std::max<std::size_t>(
                          series_.size(), 1));
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    const double gx = margin_left + group_w * static_cast<double>(g) +
                      group_w * 0.1;
    for (std::size_t s = 0; s < series_.size(); ++s) {
      const double v = groups_[g].values[s];
      const double y = y_of(v);
      out << "<rect x=\"" << gx + bar_w * static_cast<double>(s)
          << "\" y=\"" << y << "\" width=\"" << bar_w * 0.92
          << "\" height=\"" << (margin_top + plot_h) - y << "\" fill=\""
          << kPalette[s % kPaletteSize] << "\"/>\n";
    }
    out << "<text x=\"" << gx + group_w * 0.4 << "\" y=\""
        << margin_top + plot_h + 16
        << "\" text-anchor=\"middle\" font-size=\"11\">"
        << esc(groups_[g].category) << "</text>\n";
  }

  // Reference line.
  if (has_reference_) {
    const double y = y_of(reference_);
    out << "<line x1=\"" << margin_left << "\" y1=\"" << y << "\" x2=\""
        << width - margin_right << "\" y2=\"" << y
        << "\" stroke=\"#888\" stroke-dasharray=\"5,4\"/>\n";
  }

  // Legend.
  double lx = margin_left;
  const double ly = static_cast<double>(height) - 18;
  for (std::size_t s = 0; s < series_.size(); ++s) {
    out << "<rect x=\"" << lx << "\" y=\"" << ly - 10
        << "\" width=\"12\" height=\"12\" fill=\""
        << kPalette[s % kPaletteSize] << "\"/>\n";
    out << "<text x=\"" << lx + 16 << "\" y=\"" << ly
        << "\" font-size=\"12\">" << esc(series_[s]) << "</text>\n";
    lx += 24 + 8.0 * static_cast<double>(series_[s].size());
  }

  // Axis frame.
  out << "<line x1=\"" << margin_left << "\" y1=\"" << margin_top
      << "\" x2=\"" << margin_left << "\" y2=\"" << margin_top + plot_h
      << "\" stroke=\"black\"/>\n";
  out << "<line x1=\"" << margin_left << "\" y1=\"" << margin_top + plot_h
      << "\" x2=\"" << width - margin_right << "\" y2=\""
      << margin_top + plot_h << "\" stroke=\"black\"/>\n";
  out << "</svg>\n";
}

std::string BarChart::to_string(int width, int height) const {
  std::ostringstream oss;
  render(oss, width, height);
  return oss.str();
}

}  // namespace tw
