#pragma once
// Runtime-dispatched SIMD kernels for the packing hot path.
//
// The packer and the schemes' read stages reduce to three primitives:
// per-word popcounts, per-word SET/RESET transition counts, and a
// first-fit scan over a slot-power array. Each has a portable scalar
// implementation (the reference semantics) and an AVX2 implementation
// that must be *bit-identical* — same outputs for every input, checked
// exhaustively by tests/simd_packer_test.cpp. The active implementation
// is chosen once per process from the TW_SIMD environment variable
// (auto | scalar | avx2, default auto = best supported ISA) and can be
// overridden programmatically by tests via set_level().

#include <bit>
#include <cstddef>

#include "tw/common/types.hpp"

namespace tw::simd {

/// Instruction-set level of the active kernels.
enum class Level : u8 {
  kScalar = 0,  ///< portable C++ (std::popcount + plain loops)
  kAvx2 = 1,    ///< AVX2 + hardware POPCNT (x86-64 only)
};

/// The level selected for this process: TW_SIMD env (auto|scalar|avx2),
/// clamped to what the CPU supports. Reads the environment once.
Level active_level();

/// Override the active level (tests flip between scalar and AVX2 to
/// prove bit-identity). Requests for an unsupported level fall back to
/// kScalar. Thread-safe (atomic), but callers should quiesce concurrent
/// packs before flipping — determinism within one run assumes a stable
/// level.
void set_level(Level level);

/// True when the CPU (and build) can execute the AVX2 kernels.
bool avx2_supported();

/// Human-readable name of a level ("scalar" / "avx2").
const char* level_name(Level level);

// ---- Kernels -------------------------------------------------------------
// Each kernel has explicit scalar/avx2 entry points (the differential
// test drives both directly) plus dispatching wrappers. The scalar
// kernels are defined inline here so the packer's hot loops inline them
// completely; the AVX2 entry points live in simd.cpp behind per-function
// target attributes and must only be called when avx2_supported() is
// true. Hot callers fetch active_level() once per line/pack and use the
// Level-taking wrapper overloads; the Level-free overloads dispatch per
// call (convenience paths and tests).

/// out[i] = popcount(words[i]) for i in [0, n).
inline void popcount_each_scalar(const u64* words, std::size_t n, u32* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<u32>(std::popcount(words[i]));
  }
}
void popcount_each_avx2(const u64* words, std::size_t n, u32* out);
void popcount_each(const u64* words, std::size_t n, u32* out);
inline void popcount_each(const u64* words, std::size_t n, u32* out,
                          Level level) {
  if (level == Level::kAvx2) {
    popcount_each_avx2(words, n, out);
  } else {
    popcount_each_scalar(words, n, out);
  }
}

/// Per-word SET/RESET transition counts in the physical cell domain:
///   diff     = old_cells[i] ^ new_cells[i]
///   sets[i]  = popcount(diff & new_cells[i])   (cells programmed 0 -> 1)
///   resets[i]= popcount(diff & old_cells[i])   (cells programmed 1 -> 0)
/// Words must be pre-masked to the data-unit width.
inline void transition_counts_scalar(const u64* old_cells,
                                     const u64* new_cells, std::size_t n,
                                     u32* sets, u32* resets) {
  for (std::size_t i = 0; i < n; ++i) {
    const u64 diff = old_cells[i] ^ new_cells[i];
    sets[i] = static_cast<u32>(std::popcount(diff & new_cells[i]));
    resets[i] = static_cast<u32>(std::popcount(diff & old_cells[i]));
  }
}
void transition_counts_avx2(const u64* old_cells, const u64* new_cells,
                            std::size_t n, u32* sets, u32* resets);
void transition_counts(const u64* old_cells, const u64* new_cells,
                       std::size_t n, u32* sets, u32* resets);
inline void transition_counts(const u64* old_cells, const u64* new_cells,
                              std::size_t n, u32* sets, u32* resets,
                              Level level) {
  if (level == Level::kAvx2) {
    transition_counts_avx2(old_cells, new_cells, n, sets, resets);
  } else {
    transition_counts_scalar(old_cells, new_cells, n, sets, resets);
  }
}

/// First-fit scan: smallest i in [0, n) with power[i] <= limit, or n if
/// no slot fits. This is the packer's bin-selection primitive (limit =
/// budget - item current); the AVX2 version compares 8 slots per step
/// and extracts the first hit branchlessly (movemask + tzcnt).
inline u32 first_fit_scalar(const u32* power, u32 n, u32 limit) {
  for (u32 i = 0; i < n; ++i) {
    if (power[i] <= limit) return i;
  }
  return n;
}
u32 first_fit_avx2(const u32* power, u32 n, u32 limit);
u32 first_fit(const u32* power, u32 n, u32 limit);
inline u32 first_fit(const u32* power, u32 n, u32 limit, Level level) {
  if (level == Level::kAvx2) {
    return first_fit_avx2(power, n, limit);
  }
  return first_fit_scalar(power, n, limit);
}

}  // namespace tw::simd
