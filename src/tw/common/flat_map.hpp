#pragma once
// Open-addressing address→index map for the simulator's sparse stores.
//
// std::unordered_map pays a heap allocation per node and a pointer chase
// per lookup; on the DataStore hot path (one lookup per memory request)
// that dominates. FlatIndexMap keeps {key, index} pairs in one flat
// power-of-two table with linear probing — one cache line per probe, no
// per-entry allocation — and maps keys to u32 indices into a caller-owned
// arena, so values never move on rehash (pointer stability is the arena's
// job, not the table's).
//
// No erase: simulation stores only ever grow within a run (lines touched,
// wear-leveling regions) and are torn down whole.

#include <cstddef>
#include <vector>

#include "tw/common/assert.hpp"
#include "tw/common/types.hpp"

namespace tw {

class FlatIndexMap {
 public:
  /// Sentinel for "key absent".
  static constexpr u32 kNoIndex = 0xFFFFFFFFu;

  explicit FlatIndexMap(std::size_t initial_capacity = 64) {
    std::size_t cap = 16;
    while (cap < initial_capacity) cap *= 2;
    slots_.assign(cap, Slot{});
    mask_ = cap - 1;
  }

  /// Index stored for `key`, or kNoIndex.
  u32 find(u64 key) const {
    std::size_t i = hash(key) & mask_;
    for (;;) {
      const Slot& s = slots_[i];
      if (s.idx == kNoIndex) return kNoIndex;
      if (s.key == key) return s.idx;
      i = (i + 1) & mask_;
    }
  }

  /// Insert `key` → `idx`. The key must not already be present and idx
  /// must not be the sentinel.
  void insert(u64 key, u32 idx) {
    TW_EXPECTS(idx != kNoIndex);
    if ((count_ + 1) * 10 >= slots_.size() * 7) grow();
    insert_unchecked(key, idx);
    ++count_;
  }

  std::size_t size() const { return count_; }

 private:
  struct Slot {
    u64 key = 0;
    u32 idx = kNoIndex;
  };

  static u64 hash(u64 key) {
    // SplitMix64 finalizer: full-avalanche, cheap, and well distributed
    // even for the strided line addresses the memory system produces.
    u64 z = key + 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  void insert_unchecked(u64 key, u32 idx) {
    std::size_t i = hash(key) & mask_;
    while (slots_[i].idx != kNoIndex) {
      TW_ASSERT(slots_[i].key != key);  // duplicate insert
      i = (i + 1) & mask_;
    }
    slots_[i] = Slot{key, idx};
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    mask_ = slots_.size() - 1;
    for (const Slot& s : old) {
      if (s.idx != kNoIndex) insert_unchecked(s.key, s.idx);
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t count_ = 0;
};

}  // namespace tw
