#pragma once
// Index-linked intrusive FIFO lists over chunk-pooled nodes.
//
// The memory controller keeps every queued request in one pooled node and
// threads that node onto two lists at once: a global age-ordered FIFO and
// a per-bank (or per-subarray) FIFO. Index links instead of pointers keep
// the node compact and let the 48-byte inline event callbacks carry list
// positions; the chunked pool gives stable node references across growth
// and recycles slots through a LIFO free list, so the steady-state
// enqueue/dequeue path performs zero heap allocations (the same
// discipline as the simulator's event-node pool).
//
// A node participates in k lists by embedding k ListLink members; each
// IndexList is bound to one member at compile time. Lists never own
// nodes — the caller frees a node back to the pool only after unlinking
// it from every list it is on.

#include <memory>
#include <vector>

#include "tw/common/assert.hpp"
#include "tw/common/types.hpp"

namespace tw {

/// Sentinel "no node" index.
inline constexpr u32 kNilIndex = 0xFFFFFFFFu;

/// One list membership embedded in a pooled node.
struct ListLink {
  u32 prev = kNilIndex;
  u32 next = kNilIndex;
};

/// Chunked object pool addressed by dense u32 ids. References returned by
/// operator[] stay valid across alloc() growth (chunks never move).
template <class T, u32 kChunkSizeLog2 = 8>
class ChunkPool {
 public:
  static constexpr u32 kChunkSize = u32{1} << kChunkSizeLog2;

  T& operator[](u32 id) {
    TW_ASSERT(id < next_);
    return chunks_[id >> kChunkSizeLog2][id & (kChunkSize - 1)];
  }
  const T& operator[](u32 id) const {
    TW_ASSERT(id < next_);
    return chunks_[id >> kChunkSizeLog2][id & (kChunkSize - 1)];
  }

  /// Take a slot: recycles the most recently freed id, else appends (and
  /// grows by one chunk when the current chunk is exhausted).
  u32 alloc() {
    if (!free_.empty()) {
      const u32 id = free_.back();
      free_.pop_back();
      return id;
    }
    if ((next_ & (kChunkSize - 1)) == 0) {
      chunks_.push_back(std::make_unique<T[]>(kChunkSize));
    }
    return next_++;
  }

  /// Return a slot to the pool. The object is left as-is (recycled slots
  /// are overwritten by the next user).
  void release(u32 id) {
    TW_ASSERT(id < next_);
    free_.push_back(id);
  }

  /// Slots currently handed out.
  u32 live() const { return next_ - static_cast<u32>(free_.size()); }
  /// Slots ever created (high-water mark).
  u32 allocated() const { return next_; }

 private:
  std::vector<std::unique_ptr<T[]>> chunks_;
  std::vector<u32> free_;  ///< LIFO recycler
  u32 next_ = 0;
};

/// Intrusive doubly-linked FIFO bound to one ListLink member of Node.
/// All operations are O(1); iteration follows the link member directly.
template <class Node, ListLink Node::* Link>
class IndexList {
 public:
  bool empty() const { return size_ == 0; }
  u32 size() const { return size_; }
  u32 head() const { return head_; }
  u32 tail() const { return tail_; }

  template <class Pool>
  void push_back(Pool& pool, u32 id) {
    ListLink& link = pool[id].*Link;
    link.prev = tail_;
    link.next = kNilIndex;
    if (tail_ != kNilIndex) {
      (pool[tail_].*Link).next = id;
    } else {
      head_ = id;
    }
    tail_ = id;
    ++size_;
  }

  template <class Pool>
  void erase(Pool& pool, u32 id) {
    TW_ASSERT(size_ > 0);
    ListLink& link = pool[id].*Link;
    if (link.prev != kNilIndex) {
      (pool[link.prev].*Link).next = link.next;
    } else {
      head_ = link.next;
    }
    if (link.next != kNilIndex) {
      (pool[link.next].*Link).prev = link.prev;
    } else {
      tail_ = link.prev;
    }
    link.prev = kNilIndex;
    link.next = kNilIndex;
    --size_;
  }

  /// Successor of `id` within this list.
  template <class Pool>
  u32 next(const Pool& pool, u32 id) const {
    return (pool[id].*Link).next;
  }

  /// Predecessor of `id` within this list.
  template <class Pool>
  u32 prev(const Pool& pool, u32 id) const {
    return (pool[id].*Link).prev;
  }

 private:
  u32 head_ = kNilIndex;
  u32 tail_ = kNilIndex;
  u32 size_ = 0;
};

}  // namespace tw
