#pragma once
// Lightweight contract checking in the spirit of the C++ Core Guidelines
// (I.6 Expects / I.8 Ensures). Violations throw tw::ContractViolation so
// tests can assert on misuse; checks stay enabled in release builds because
// the simulator's correctness matters more than the last few percent of
// speed (the hot loops avoid checks explicitly).

#include <stdexcept>
#include <string>

namespace tw {

/// Thrown when a TW_EXPECTS/TW_ENSURES/TW_ASSERT contract is violated.
class ContractViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace tw

#define TW_EXPECTS(cond)                                                   \
  do {                                                                     \
    if (!(cond))                                                           \
      ::tw::detail::contract_fail("precondition", #cond, __FILE__,         \
                                  __LINE__);                               \
  } while (false)

#define TW_ENSURES(cond)                                                   \
  do {                                                                     \
    if (!(cond))                                                           \
      ::tw::detail::contract_fail("postcondition", #cond, __FILE__,        \
                                  __LINE__);                               \
  } while (false)

#define TW_ASSERT(cond)                                                    \
  do {                                                                     \
    if (!(cond))                                                           \
      ::tw::detail::contract_fail("assertion", #cond, __FILE__, __LINE__); \
  } while (false)

/// Unconditional failure with a message (unreachable states, bad configs).
#define TW_FAIL(msg) \
  ::tw::detail::contract_fail("invariant", msg, __FILE__, __LINE__)
