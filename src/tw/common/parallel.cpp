#include "tw/common/parallel.hpp"

#include <atomic>
#include <exception>

namespace tw {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_job_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard lock(mu_);
    jobs_.push(std::move(job));
  }
  cv_job_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return jobs_.empty() && active_ == 0; });
  if (first_error_) {
    std::exception_ptr e = nullptr;
    std::swap(e, first_error_);
    std::rethrow_exception(e);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mu_);
      cv_job_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      if (stop_ && jobs_.empty()) return;
      job = std::move(jobs_.front());
      jobs_.pop();
      ++active_;
    }
    // A throwing job must not unwind the worker (std::terminate) or leak
    // `active_` (wait_idle would deadlock): capture the first exception
    // and report it from wait_idle.
    std::exception_ptr error;
    try {
      job();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard lock(mu_);
      --active_;
      if (error && !first_error_) first_error_ = error;
      if (jobs_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads) {
  if (n == 0) return;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  if (threads > n) threads = n;
  if (threads == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex err_mu;

  auto body = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (std::size_t t = 1; t < threads; ++t) pool.emplace_back(body);
  body();
  for (auto& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace tw
