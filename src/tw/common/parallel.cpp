#include "tw/common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace tw {

namespace {
// Workers mark themselves so a parallel_for issued from inside a pool job
// degrades to a serial loop instead of submitting to (and then waiting
// on) the pool it is itself running on — which could deadlock.
thread_local bool tls_pool_worker = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  ring_.resize(64);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_job_.notify_all();
  for (auto& w : workers_) w.join();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::push_job(Job job) {
  if (count_ == ring_.size()) {
    std::vector<Job> bigger(ring_.size() * 2);
    for (std::size_t i = 0; i < count_; ++i) {
      bigger[i] = std::move(ring_[(head_ + i) % ring_.size()]);
    }
    ring_ = std::move(bigger);
    head_ = 0;
  }
  ring_[(head_ + count_) % ring_.size()] = std::move(job);
  ++count_;
}

ThreadPool::Job ThreadPool::pop_job() {
  Job job = std::move(ring_[head_]);
  head_ = (head_ + 1) % ring_.size();
  --count_;
  return job;
}

void ThreadPool::submit(Job job) {
  {
    std::lock_guard lock(mu_);
    push_job(std::move(job));
  }
  cv_job_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return count_ == 0 && active_ == 0; });
  if (first_error_) {
    std::exception_ptr e = nullptr;
    std::swap(e, first_error_);
    std::rethrow_exception(e);
  }
}

void ThreadPool::worker_loop() {
  tls_pool_worker = true;
  for (;;) {
    Job job;
    {
      std::unique_lock lock(mu_);
      cv_job_.wait(lock, [this] { return stop_ || count_ != 0; });
      if (stop_ && count_ == 0) return;
      job = pop_job();
      ++active_;
    }
    // A throwing job must not unwind the worker (std::terminate) or leak
    // `active_` (wait_idle would deadlock): capture the first exception
    // and report it from wait_idle.
    std::exception_ptr error;
    try {
      job();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard lock(mu_);
      --active_;
      if (error && !first_error_) first_error_ = error;
      if (count_ == 0 && active_ == 0) cv_idle_.notify_all();
    }
  }
}

namespace {

/// Per-call state for one parallel_for; lives on the caller's stack
/// (parallel_for returns only after every helper has checked out).
struct ForState {
  std::atomic<std::size_t> next{0};
  std::size_t n = 0;
  std::size_t chunk = 1;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::mutex mu;
  std::condition_variable done_cv;
  std::size_t pending_helpers = 0;
  std::exception_ptr first_error;
};

void run_chunks(ForState& s) {
  for (;;) {
    const std::size_t i0 = s.next.fetch_add(s.chunk,
                                            std::memory_order_relaxed);
    if (i0 >= s.n) return;
    const std::size_t i1 = std::min(i0 + s.chunk, s.n);
    try {
      for (std::size_t i = i0; i < i1; ++i) (*s.fn)(i);
    } catch (...) {
      std::lock_guard lock(s.mu);
      if (!s.first_error) s.first_error = std::current_exception();
    }
  }
}

}  // namespace

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads) {
  if (n == 0) return;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  threads = std::min(threads, n);
  if (threads == 1 || tls_pool_worker) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  ThreadPool& pool = ThreadPool::shared();
  const std::size_t helpers = std::min(threads - 1, pool.thread_count());

  ForState s;
  s.n = n;
  s.fn = &fn;
  // Chunked dynamic distribution: coarse enough to amortize the claim,
  // fine enough (~8 chunks per thread) to balance uneven cell costs.
  s.chunk = std::max<std::size_t>(1, n / (threads * 8));
  s.pending_helpers = helpers;

  for (std::size_t h = 0; h < helpers; ++h) {
    pool.submit([state = &s] {
      run_chunks(*state);
      std::lock_guard lock(state->mu);
      if (--state->pending_helpers == 0) state->done_cv.notify_all();
    });
  }
  run_chunks(s);  // the caller claims chunks too: progress is guaranteed
                  // even if the pool is busy or smaller than requested
  {
    std::unique_lock lock(s.mu);
    s.done_cv.wait(lock, [&s] { return s.pending_helpers == 0; });
  }
  if (s.first_error) std::rethrow_exception(s.first_error);
}

}  // namespace tw
