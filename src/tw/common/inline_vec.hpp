#pragma once
// Small-buffer vector for the per-write hot path.
//
// The packer, read stage, and scheme prep code all build short sequences
// whose length is bounded by the cache-line geometry (at most
// pcm::kMaxUnitsPerLine data units per line) — but std::vector heap-
// allocates every one of them, millions of times per simulation. InlineVec
// keeps up to N elements in the object itself and only touches the heap
// when a sequence genuinely outgrows the buffer (batched writes packing
// several lines jointly, extreme small-budget ablations).
//
// Restricted to trivially copyable element types: growth and copies are
// memcpy, destruction is free, and the container stays simple enough to
// audit. All hot-path element types (UnitPlan, UnitCounts, pack slots,
// u32 power values) qualify.

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <type_traits>

#include "tw/common/assert.hpp"

namespace tw {

template <class T, std::size_t N>
class InlineVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "InlineVec is restricted to trivially copyable types");
  static_assert(N >= 1);

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  // User-provided (not `= default`) so that const InlineVec objects are
  // default-constructible despite the deliberately uninitialized buffer.
  InlineVec() {}  // NOLINT(modernize-use-equals-default)

  InlineVec(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) data_[size_++] = v;
  }

  InlineVec(const InlineVec& other) { assign_from(other); }

  InlineVec(InlineVec&& other) noexcept {
    if (other.on_heap()) {
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.inline_;
      other.capacity_ = N;
      other.size_ = 0;
    } else {
      assign_from(other);
      other.size_ = 0;
    }
  }

  InlineVec& operator=(const InlineVec& other) {
    if (this != &other) {
      size_ = 0;
      assign_from(other);
    }
    return *this;
  }

  InlineVec& operator=(InlineVec&& other) noexcept {
    if (this != &other) {
      release();
      if (other.on_heap()) {
        data_ = other.data_;
        capacity_ = other.capacity_;
        size_ = other.size_;
        other.data_ = other.inline_;
        other.capacity_ = N;
        other.size_ = 0;
      } else {
        size_ = 0;
        assign_from(other);
        other.size_ = 0;
      }
    }
    return *this;
  }

  ~InlineVec() { release(); }

  void push_back(const T& v) {
    if (size_ == capacity_) grow(size_ + 1);
    data_[size_++] = v;
  }

  template <class... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) grow(size_ + 1);
    data_[size_] = T{std::forward<Args>(args)...};
    return data_[size_++];
  }

  void pop_back() {
    TW_EXPECTS(size_ > 0);
    --size_;
  }

  void clear() { size_ = 0; }

  void reserve(std::size_t n) {
    if (n > capacity_) grow(n);
  }

  /// Resize; new elements are value-initialized.
  void resize(std::size_t n, const T& fill = T{}) {
    reserve(n);
    for (std::size_t i = size_; i < n; ++i) data_[i] = fill;
    size_ = n;
  }

  /// Resize without writing new elements. For hot paths that overwrite
  /// the whole [old_size, n) range immediately via data(); callers own
  /// the obligation to do so (T is trivially copyable by class contract,
  /// so skipping the fill is well-defined). Shrinking never touches data.
  void resize_uninitialized(std::size_t n) {
    reserve(n);
    size_ = n;
  }

  /// Replace the contents with n copies of v.
  void assign(std::size_t n, const T& v) {
    clear();
    resize(n, v);
  }

  T& operator[](std::size_t i) {
    TW_EXPECTS(i < size_);
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    TW_EXPECTS(i < size_);
    return data_[i];
  }

  T& back() {
    TW_EXPECTS(size_ > 0);
    return data_[size_ - 1];
  }
  const T& back() const {
    TW_EXPECTS(size_ > 0);
    return data_[size_ - 1];
  }
  T& front() {
    TW_EXPECTS(size_ > 0);
    return data_[0];
  }
  const T& front() const {
    TW_EXPECTS(size_ > 0);
    return data_[0];
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }

  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }

  bool operator==(const InlineVec& other) const {
    return size_ == other.size_ &&
           std::equal(begin(), end(), other.begin());
  }

 private:
  bool on_heap() const { return data_ != inline_; }

  void assign_from(const InlineVec& other) {
    reserve(other.size_);
    std::memcpy(static_cast<void*>(data_), other.data_,
                other.size_ * sizeof(T));
    size_ = other.size_;
  }

  void grow(std::size_t need) {
    std::size_t cap = capacity_ * 2;
    while (cap < need) cap *= 2;
    T* heap = new T[cap];
    std::memcpy(static_cast<void*>(heap), data_, size_ * sizeof(T));
    release();
    data_ = heap;
    capacity_ = cap;
  }

  void release() {
    if (on_heap()) {
      delete[] data_;
      data_ = inline_;
      capacity_ = N;
    }
  }

  T inline_[N];
  T* data_ = inline_;
  std::size_t capacity_ = N;
  std::size_t size_ = 0;
};

}  // namespace tw
