#include "tw/common/table.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace tw {

void AsciiTable::set_header(std::vector<std::string> names) {
  header_ = std::move(names);
}

void AsciiTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(Row{std::move(cells), false});
}

void AsciiTable::add_separator() {
  rows_.push_back(Row{{}, true});
}

bool AsciiTable::looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = 0;
  if (s[0] == '-' || s[0] == '+') i = 1;
  bool digit = false;
  for (; i < s.size(); ++i) {
    const char c = s[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit = true;
    } else if (c != '.' && c != '%' && c != 'x' && c != 'e' && c != '-') {
      return false;
    }
  }
  return digit;
}

void AsciiTable::print(std::ostream& out) const {
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.cells.size());
  if (cols == 0) return;

  std::vector<std::size_t> width(cols, 0);
  auto measure = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c)
      width[c] = std::max(width[c], cells[c].size());
  };
  measure(header_);
  for (const auto& r : rows_)
    if (!r.separator) measure(r.cells);

  auto rule = [&] {
    out << '+';
    for (std::size_t c = 0; c < cols; ++c)
      out << std::string(width[c] + 2, '-') << '+';
    out << '\n';
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string cell = c < cells.size() ? cells[c] : "";
      const std::size_t padding = width[c] - cell.size();
      if (looks_numeric(cell)) {
        out << ' ' << std::string(padding, ' ') << cell << " |";
      } else {
        out << ' ' << cell << std::string(padding, ' ') << " |";
      }
    }
    out << '\n';
  };

  rule();
  if (!header_.empty()) {
    emit(header_);
    rule();
  }
  for (const auto& r : rows_) {
    if (r.separator) {
      rule();
    } else {
      emit(r.cells);
    }
  }
  rule();
}

std::string AsciiTable::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

}  // namespace tw
