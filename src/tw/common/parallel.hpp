#pragma once
// A small work-stealing-free thread pool and parallel_for.
//
// Used exclusively to parallelize *independent* experiment cells
// (workload x scheme simulations) in the benchmark harness. Individual
// simulations are single-threaded and deterministic; parallelism never
// changes results, only wall-clock time.
//
// parallel_for dispatches chunked index ranges onto one process-wide
// shared pool (workers are spawned once, not per call) and the calling
// thread claims chunks too — so it makes progress even when the pool is
// saturated or smaller than the requested width, and n < threads or
// nested calls cannot deadlock. Jobs move through a ring of inline
// functions: enqueueing a chunk performs no heap allocation.

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "tw/common/inline_function.hpp"

namespace tw {

/// Fixed-size thread pool executing void() jobs FIFO.
class ThreadPool {
 public:
  /// Pool jobs keep captures up to 64 B inline (parallel_for's chunk jobs
  /// capture one pointer); larger captures fall back to one heap cell.
  using Job = BasicInlineFunction<64, true>;

  /// Spawn `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool shared by all parallel_for calls. Created on
  /// first use with hardware_concurrency workers.
  static ThreadPool& shared();

  /// Enqueue a job. Thread-safe.
  void submit(Job job);

  /// Block until all submitted jobs have finished. If any job threw, the
  /// first exception (in completion order) is rethrown here and the
  /// pool's error state is cleared; the pool stays usable afterwards.
  void wait_idle();

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();
  void push_job(Job job);  // requires mu_ held
  Job pop_job();           // requires mu_ held, count_ > 0

  std::vector<std::thread> workers_;
  // FIFO ring of jobs; grows (rarely) by doubling.
  std::vector<Job> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::mutex mu_;
  std::condition_variable cv_job_;
  std::condition_variable cv_idle_;
  std::size_t active_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

/// Run fn(i) for i in [0, n) across the shared pool plus the calling
/// thread. fn must be safe to invoke concurrently for distinct i.
/// Exceptions thrown by fn propagate (first one wins) after all
/// iterations complete or abort. Returns only when every iteration has
/// finished, so per-call state may live on the caller's stack.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0);

}  // namespace tw
