#pragma once
// A small work-stealing-free thread pool and parallel_for.
//
// Used exclusively to parallelize *independent* experiment cells
// (workload x scheme simulations) in the benchmark harness. Individual
// simulations are single-threaded and deterministic; parallelism never
// changes results, only wall-clock time.

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace tw {

/// Fixed-size thread pool executing void() jobs FIFO.
class ThreadPool {
 public:
  /// Spawn `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a job. Thread-safe.
  void submit(std::function<void()> job);

  /// Block until all submitted jobs have finished. If any job threw, the
  /// first exception (in completion order) is rethrown here and the
  /// pool's error state is cleared; the pool stays usable afterwards.
  void wait_idle();

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> jobs_;
  std::mutex mu_;
  std::condition_variable cv_job_;
  std::condition_variable cv_idle_;
  std::size_t active_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

/// Run fn(i) for i in [0, n) across a transient pool of worker threads.
/// fn must be safe to invoke concurrently for distinct i. Exceptions thrown
/// by fn propagate (first one wins) after all iterations complete or abort.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0);

}  // namespace tw
