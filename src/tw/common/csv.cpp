#include "tw/common/csv.hpp"

namespace tw {

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) *out_ << ',';
    *out_ << escape(fields[i]);
  }
  *out_ << '\n';
}

}  // namespace tw
