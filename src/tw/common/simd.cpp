#include "tw/common/simd.hpp"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define TW_SIMD_X86 1
#include <immintrin.h>
#else
#define TW_SIMD_X86 0
#endif

namespace tw::simd {
namespace {

constexpr u8 kUninitialized = 0xff;
std::atomic<u8> g_level{kUninitialized};

/// Parse TW_SIMD (auto | scalar | avx2). Unknown values and unsupported
/// requests degrade to the best level the machine actually has.
Level level_from_env() {
  const char* v = std::getenv("TW_SIMD");
  if (v != nullptr) {
    if (std::strcmp(v, "scalar") == 0) return Level::kScalar;
    if (std::strcmp(v, "avx2") == 0) {
      return avx2_supported() ? Level::kAvx2 : Level::kScalar;
    }
    // "auto", empty, or unknown: fall through to detection.
  }
  return avx2_supported() ? Level::kAvx2 : Level::kScalar;
}

}  // namespace

bool avx2_supported() {
#if TW_SIMD_X86
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

Level active_level() {
  u8 v = g_level.load(std::memory_order_relaxed);
  if (v == kUninitialized) {
    // Benign race: level_from_env() is idempotent.
    const Level init = level_from_env();
    g_level.store(static_cast<u8>(init), std::memory_order_relaxed);
    return init;
  }
  return static_cast<Level>(v);
}

void set_level(Level level) {
  if (level == Level::kAvx2 && !avx2_supported()) level = Level::kScalar;
  g_level.store(static_cast<u8>(level), std::memory_order_relaxed);
}

const char* level_name(Level level) {
  return level == Level::kAvx2 ? "avx2" : "scalar";
}

// ---- AVX2 kernels --------------------------------------------------------
// Compiled with per-function target attributes so the rest of the build
// stays baseline x86-64; only executed after __builtin_cpu_supports.

#if TW_SIMD_X86

namespace {

/// Per-64-bit-lane popcount of a 256-bit vector (Mula's nibble-LUT +
/// psadbw reduction): returns four u64 counts in the four lanes.
__attribute__((target("avx2"))) inline __m256i popcount_epi64(__m256i v) {
  const __m256i lookup =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                      _mm256_shuffle_epi8(lookup, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

__attribute__((target("avx2"))) inline void store_lane_counts(__m256i counts,
                                                              u32* out) {
  alignas(32) u64 lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), counts);
  out[0] = static_cast<u32>(lanes[0]);
  out[1] = static_cast<u32>(lanes[1]);
  out[2] = static_cast<u32>(lanes[2]);
  out[3] = static_cast<u32>(lanes[3]);
}

}  // namespace

__attribute__((target("avx2,popcnt"))) void popcount_each_avx2(
    const u64* words, std::size_t n, u32* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i));
    store_lane_counts(popcount_epi64(v), out + i);
  }
  // Unaligned tail: hardware POPCNT (exact same counts as the LUT path).
  for (; i < n; ++i) {
    out[i] = static_cast<u32>(__builtin_popcountll(words[i]));
  }
}

__attribute__((target("avx2,popcnt"))) void transition_counts_avx2(
    const u64* old_cells, const u64* new_cells, std::size_t n, u32* sets,
    u32* resets) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i o =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(old_cells + i));
    const __m256i nw =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(new_cells + i));
    const __m256i diff = _mm256_xor_si256(o, nw);
    store_lane_counts(popcount_epi64(_mm256_and_si256(diff, nw)), sets + i);
    store_lane_counts(popcount_epi64(_mm256_and_si256(diff, o)), resets + i);
  }
  for (; i < n; ++i) {
    const u64 diff = old_cells[i] ^ new_cells[i];
    sets[i] = static_cast<u32>(__builtin_popcountll(diff & new_cells[i]));
    resets[i] = static_cast<u32>(__builtin_popcountll(diff & old_cells[i]));
  }
}

__attribute__((target("avx2"))) u32 first_fit_avx2(const u32* power, u32 n,
                                                   u32 limit) {
  const __m256i lim = _mm256_set1_epi32(static_cast<int>(limit));
  u32 i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(power + i));
    // Unsigned v <= limit via min: min(v, limit) == v.
    const __m256i fits = _mm256_cmpeq_epi32(_mm256_min_epu32(v, lim), v);
    const u32 mask =
        static_cast<u32>(_mm256_movemask_ps(_mm256_castsi256_ps(fits)));
    if (mask != 0) return i + static_cast<u32>(__builtin_ctz(mask));
  }
  for (; i < n; ++i) {
    if (power[i] <= limit) return i;
  }
  return n;
}

#else  // !TW_SIMD_X86: AVX2 entry points delegate to the reference kernels.

void popcount_each_avx2(const u64* words, std::size_t n, u32* out) {
  popcount_each_scalar(words, n, out);
}

void transition_counts_avx2(const u64* old_cells, const u64* new_cells,
                            std::size_t n, u32* sets, u32* resets) {
  transition_counts_scalar(old_cells, new_cells, n, sets, resets);
}

u32 first_fit_avx2(const u32* power, u32 n, u32 limit) {
  return first_fit_scalar(power, n, limit);
}

#endif  // TW_SIMD_X86

// ---- Dispatching wrappers ------------------------------------------------

void popcount_each(const u64* words, std::size_t n, u32* out) {
  popcount_each(words, n, out, active_level());
}

void transition_counts(const u64* old_cells, const u64* new_cells,
                       std::size_t n, u32* sets, u32* resets) {
  transition_counts(old_cells, new_cells, n, sets, resets, active_level());
}

u32 first_fit(const u32* power, u32 n, u32 limit) {
  return first_fit(power, n, limit, active_level());
}

}  // namespace tw::simd
