#pragma once
// Fundamental scalar types and time units shared by every tetriswrite module.
//
// All simulated time is kept in integer picoseconds so that the paper's
// nanosecond-scale device timings (Tread = 50 ns, Treset = 53 ns,
// Tset = 430 ns) and a 2 GHz CPU clock (500 ps/cycle) are all exactly
// representable with no floating-point drift.

#include <cstdint>
#include <limits>

namespace tw {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i64 = std::int64_t;

/// Simulated time in picoseconds.
using Tick = std::uint64_t;

/// Sentinel for "no time" / "infinitely far in the future".
inline constexpr Tick kTickMax = std::numeric_limits<Tick>::max();

/// Construct a Tick from nanoseconds.
constexpr Tick ns(u64 v) { return v * 1000; }
/// Construct a Tick from microseconds.
constexpr Tick us(u64 v) { return v * 1'000'000; }
/// Construct a Tick from milliseconds.
constexpr Tick ms(u64 v) { return v * 1'000'000'000; }
/// Construct a Tick from picoseconds (identity; for symmetry/readability).
constexpr Tick ps(u64 v) { return v; }

/// Convert a Tick to (double) nanoseconds for reporting.
constexpr double to_ns(Tick t) { return static_cast<double>(t) / 1000.0; }
/// Convert a Tick to (double) microseconds for reporting.
constexpr double to_us(Tick t) { return static_cast<double>(t) / 1e6; }
/// Convert a Tick to (double) milliseconds for reporting.
constexpr double to_ms(Tick t) { return static_cast<double>(t) / 1e9; }

/// Physical memory address (byte granularity).
using Addr = std::uint64_t;

/// Divide rounding up; b must be nonzero.
constexpr u64 ceil_div(u64 a, u64 b) { return (a + b - 1) / b; }

/// True if v is a power of two (and nonzero).
constexpr bool is_pow2(u64 v) { return v != 0 && (v & (v - 1)) == 0; }

/// log2 of a power of two.
constexpr u32 log2_pow2(u64 v) {
  u32 r = 0;
  while (v > 1) {
    v >>= 1;
    ++r;
  }
  return r;
}

}  // namespace tw
