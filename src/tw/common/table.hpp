#pragma once
// ASCII table rendering for benchmark/experiment output.

#include <ostream>
#include <string>
#include <vector>

namespace tw {

/// Accumulates rows of string cells and renders an aligned ASCII table.
/// Numeric-looking cells are right-aligned, text left-aligned.
class AsciiTable {
 public:
  /// Set the header row (column names).
  void set_header(std::vector<std::string> names);

  /// Append a data row. Rows may be ragged; short rows are padded.
  void add_row(std::vector<std::string> cells);

  /// Insert a horizontal separator after the last added row.
  void add_separator();

  /// Render to a stream with column alignment and separators.
  void print(std::ostream& out) const;

  /// Render to a string.
  std::string to_string() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  static bool looks_numeric(const std::string& s);

  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace tw
