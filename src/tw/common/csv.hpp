#pragma once
// Minimal CSV emission for experiment results (RFC-4180-style quoting).

#include <ostream>
#include <string>
#include <vector>

namespace tw {

/// Streams rows of fields to an ostream as CSV. The writer does not own the
/// stream; keep it alive for the writer's lifetime.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Write one row; fields containing ',', '"' or newlines are quoted.
  void row(const std::vector<std::string>& fields);

  /// Convenience: header row.
  void header(const std::vector<std::string>& names) { row(names); }

 private:
  static std::string escape(const std::string& field);
  std::ostream* out_;
};

}  // namespace tw
