#pragma once
// EncodedScheme: decorator that runs an Encoder pre-stage in front of any
// WriteScheme. The inner scheme plans over the *coded* words and stays
// oblivious — FNW inversion, 2/3-stage partitioning and Tetris packing all
// compose unchanged on top of the coded payload. The decorator then prices
// the encoder metadata-cell transitions into the plan, persists the chosen
// tags in the line's meta cells, and reverses the code on the read path
// via decode_stored().
//
// Hot-path discipline: per-write staging lives in stack arrays / InlineVec
// (no heap in steady state), and encoding is a pure function of the line
// state, so a fault-ladder retry that re-plans the same logical data
// re-encodes to the identical coded image.

#include <memory>
#include <string>

#include "tw/encode/encoder.hpp"
#include "tw/schemes/write_scheme.hpp"

namespace tw::encode {

class EncodedScheme final : public schemes::WriteScheme {
 public:
  EncodedScheme(std::unique_ptr<schemes::WriteScheme> inner,
                std::unique_ptr<Encoder> enc);

  std::string_view name() const override { return name_; }
  schemes::SchemeKind kind() const override { return inner_->kind(); }
  schemes::WriteSemantics semantics() const override {
    return inner_->semantics();
  }

  schemes::ServicePlan plan_write(pcm::LineBuf& line,
                                  const pcm::LogicalLine& next) const override;

  schemes::BatchServicePlan plan_write_batch(
      std::span<pcm::LineBuf*> lines,
      std::span<const pcm::LogicalLine> datas) const override;

  schemes::BatchServicePlan plan_write_batch(
      std::span<pcm::LineBuf*> lines, std::span<const pcm::LogicalLine> datas,
      std::span<const u32> partitions) const override;

  Tick plan_retry(const BitTransitions& failed, u32 attempt,
                  double widen) const override {
    return inner_->plan_retry(failed, attempt, widen);
  }

  pcm::LogicalLine decode_stored(const pcm::LineBuf& line) const override;
  bool transforms_content() const override { return true; }

  /// Brown-out scales must reach the scheme that packs against the budget.
  void set_budget_scale(double scale) override {
    schemes::WriteScheme::set_budget_scale(scale);
    inner_->set_budget_scale(scale);
  }

  const schemes::WriteScheme& inner() const { return *inner_; }
  const Encoder& encoder() const { return *enc_; }

 private:
  /// Stage the coded image of `next` over `line` into `coded`/`metas`.
  void encode_line(const pcm::LineBuf& line, const pcm::LogicalLine& next,
                   pcm::LogicalLine& coded, u8* metas) const;

  /// Price + persist the staged tags after the inner scheme planned the
  /// coded write, and fill in the plan's encoder stats.
  void finish_line(pcm::LineBuf& line, schemes::ServicePlan& plan,
                   const u8* metas) const;

  std::unique_ptr<schemes::WriteScheme> inner_;
  std::unique_ptr<Encoder> enc_;
  std::string name_;  // "<inner>+<encoder>", cached for the hot path
};

/// Wrap `inner` with the configured encoder pre-stage. kNone returns
/// `inner` unchanged — the encoder-off path has no decorator at all, which
/// is what keeps it bit-identical (metrics, trace bytes, config hash) to
/// builds that predate the encoder stage.
std::unique_ptr<schemes::WriteScheme> wrap_scheme(
    std::unique_ptr<schemes::WriteScheme> inner, EncoderKind kind);

}  // namespace tw::encode
