#pragma once
// The Flip-N-Write inversion rule (Cho & Lee, MICRO'09), factored out of
// the scheme implementations so it is shared verbatim by
//
//   * schemes::plan_unit / plan_line — the per-unit write preparation the
//     FNW-criterion schemes run on their read stage, and
//   * encode::FlipEncoder — the degenerate content-aware encoder that
//     reproduces FNW inversion as a composable pre-stage.
//
// Keeping one definition is what makes the refactor bit-identical: both
// callers compare the same two costs over the same operands.

#include "tw/common/types.hpp"

namespace tw::encode {

/// True when storing the inverted word wins the FNW cost comparison.
///
/// `changed` is the Hamming distance between the new logical word and the
/// currently stored cells (data cells only); `old_tag` is the stored
/// flip-tag state and `bits` the data-unit width. The cost of storing
/// {D, tag=0} is `changed` plus one tag pulse if the tag must clear; the
/// cost of {~D, tag=1} is `bits - changed` (the complement identity
/// hamming(~D, old) == bits - hamming(D, old)) plus one tag pulse if the
/// tag must set. Inversion wins only on strictly lower cost — the paper's
/// "more than half the bits change" criterion with tag-aware tie-breaks.
constexpr bool flip_wins(u32 changed, bool old_tag, u32 bits) {
  const u32 cost_plain = changed + (old_tag ? 1u : 0u);
  const u32 cost_flip = (bits - changed) + (old_tag ? 0u : 1u);
  return cost_flip < cost_plain;
}

}  // namespace tw::encode
