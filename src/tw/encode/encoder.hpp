#pragma once
// Content-aware encoder stage: per-unit codes applied to the logical data
// *before* a write scheme plans cell pulses, so the bit statistics the
// scheme packs against are cheaper to write (ROADMAP: DCA arXiv:2005.04753,
// WIRE arXiv:2511.04928, compression + restricted coset arXiv:1711.08572).
//
// An Encoder maps each 64-bit data unit to a coded word plus a small
// metadata tag (<= 8 bits, stored in the line's per-unit meta cells next
// to the FNW flip tag); decoding is the exact inverse for every tag the
// encoder can emit, for any payload. Encoders are pure functions of
// (logical word, stored cells, stored tag) — deterministic, stateless,
// zero-alloc — so retries re-encode to the identical coded image and one
// instance serves all banks of a channel.
//
// Composition with the write schemes is a decorator (EncodedScheme in
// encoded_scheme.hpp): the scheme underneath sees only coded words and
// stays oblivious, including FNW inversion on top of the coded payload.

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "tw/common/assert.hpp"
#include "tw/common/bits.hpp"
#include "tw/common/types.hpp"
#include "tw/pcm/params.hpp"

namespace tw::encode {

/// Identifiers for the built-in encoders.
enum class EncoderKind : u8 {
  kNone,   ///< identity: schemes run bare, bit-identical to pre-encoder
  kFlip,   ///< FNW inversion as a composable pre-stage (degenerate case)
  kWire,   ///< WIRE-style energy-minimizing XOR codebook
  kCoset,  ///< word compression + restricted coset selection
};

/// Encoder selection carried by SystemConfig ("encode.*" config keys,
/// --encoder= on the bench binaries). Default off: the write path builds
/// no encoder objects at all and stays bit-identical to pre-encoder runs.
struct EncodeConfig {
  EncoderKind kind = EncoderKind::kNone;

  bool enabled() const { return kind != EncoderKind::kNone; }
};

/// A per-unit content code. choose/apply/recover must satisfy, for every
/// logical word x, stored state (old_cells, old_meta) and bits in [1,64]:
///
///   m = choose(x, old_cells, old_meta, bits)   is deterministic,
///   m < (1 << meta_bits()),
///   recover(apply(x, m, old_cells, bits), m, bits) == (x & low_mask(bits))
///     for every m that choose() can return for x (XOR codebooks satisfy
///     this for all tags; restricted codes like the coset compressor only
///     emit tags whose inverse exists for that payload), and
///   apply/recover confine themselves to the low `bits` of the word.
///
/// `old_cells` lets cost-driven encoders minimize transitions against the
/// current cell image and lets compression encoders fill don't-care bit
/// positions with the already-stored values (zero pulses under
/// changed-cell schemes). Cost comparisons must include the metadata-cell
/// transitions from `old_meta`, so re-storing the same value keeps the
/// stored code (silent-write stability) and retries re-encode identically.
class Encoder {
 public:
  explicit Encoder(const pcm::PcmConfig& cfg) : cfg_(cfg) {}
  virtual ~Encoder() = default;

  Encoder(const Encoder&) = delete;
  Encoder& operator=(const Encoder&) = delete;

  virtual std::string_view name() const = 0;
  virtual EncoderKind kind() const = 0;

  /// Significant bits in the metadata tag (1..8).
  virtual u32 meta_bits() const = 0;

  /// Pick the code for storing `logical` over (old_cells, old_meta).
  virtual u8 choose(u64 logical, u64 old_cells, u8 old_meta,
                    u32 bits) const = 0;

  /// Coded word stored for `logical` under code `meta`.
  virtual u64 apply(u64 logical, u8 meta, u64 old_cells, u32 bits) const = 0;

  /// Exact inverse: the logical word a stored coded payload decodes to.
  virtual u64 recover(u64 coded, u8 meta, u32 bits) const = 0;

 protected:
  pcm::PcmConfig cfg_;
};

/// Canonical short name ("none", "flip", "wire", "coset").
std::string_view encoder_name(EncoderKind kind);

/// Parse a canonical name; nullopt for unknown strings.
std::optional<EncoderKind> parse_encoder(std::string_view name);

/// Every kind, kNone first (the bench matrix sweep order).
std::vector<EncoderKind> all_encoder_kinds();

/// Construct an encoder instance. kNone returns nullptr: no encoder
/// object exists on the encoder-off path.
std::unique_ptr<Encoder> make_encoder(EncoderKind kind,
                                      const pcm::PcmConfig& cfg);

}  // namespace tw::encode
