#include "tw/encode/encoder.hpp"

#include "tw/encode/flip_rule.hpp"

namespace tw::encode {

namespace {

/// SET/RESET-weighted pulse cost of writing `next` over `old_v`, in
/// SET-current units (RESET draws L x the SET current — the same asymmetry
/// constant the content-aware scheme variants pack against).
u32 weighted_cost(u64 old_v, u64 next, u32 l) {
  const BitTransitions t = transitions(old_v, next);
  return t.sets + t.resets * l;
}

/// Cost of re-programming the metadata cells from tag `old_m` to `m`.
/// Included in every candidate's cost so that (a) re-storing an unchanged
/// value keeps the stored code — the zero-cost candidate is unique — and
/// (b) code churn pays for its tag pulses instead of flapping for free.
u32 meta_cost(u8 old_m, u8 m, u32 meta_bits, u32 l) {
  const u64 mask = low_mask(meta_bits);
  return weighted_cost(old_m & mask, m & mask, l);
}

// ---------------------------------------------------------------------------
// FlipEncoder: FNW inversion as a pre-stage (the degenerate content code).
// meta bit 0 is exactly the FNW flip tag; choose() runs the shared
// flip_wins() rule, so FlipEncoder-over-DCW reproduces FNW's stored cells
// and data-cell transitions bit for bit (locked by tests/encode_test.cpp).
// ---------------------------------------------------------------------------
class FlipEncoder final : public Encoder {
 public:
  using Encoder::Encoder;

  std::string_view name() const override { return "flip"; }
  EncoderKind kind() const override { return EncoderKind::kFlip; }
  u32 meta_bits() const override { return 1; }

  u8 choose(u64 logical, u64 old_cells, u8 old_meta, u32 bits) const override {
    const u64 mask = low_mask(bits);
    const u32 d = hamming(logical & mask, old_cells & mask);
    return flip_wins(d, (old_meta & 1u) != 0, bits) ? 1u : 0u;
  }

  u64 apply(u64 logical, u8 meta, u64 /*old_cells*/, u32 bits) const override {
    const u64 mask = low_mask(bits);
    return ((meta & 1u) != 0 ? ~logical : logical) & mask;
  }

  u64 recover(u64 coded, u8 meta, u32 bits) const override {
    // Conditional complement is an involution: recover == apply.
    const u64 mask = low_mask(bits);
    return ((meta & 1u) != 0 ? ~coded : coded) & mask;
  }
};

// ---------------------------------------------------------------------------
// WireEncoder: WIRE-style energy-minimizing codebook (arXiv:2511.04928
// spirit). Each unit is stored XORed with one of four masks — identity,
// complement, and the two alternating patterns — and the codebook entry
// minimizing the SET/RESET-weighted transition cost against the stored
// cells (metadata pulses included) is chosen. XOR codes are involutions,
// so decode re-applies the stored mask.
// ---------------------------------------------------------------------------
class WireEncoder final : public Encoder {
 public:
  using Encoder::Encoder;

  std::string_view name() const override { return "wire"; }
  EncoderKind kind() const override { return EncoderKind::kWire; }
  u32 meta_bits() const override { return 2; }

  u8 choose(u64 logical, u64 old_cells, u8 old_meta, u32 bits) const override {
    const u64 mask = low_mask(bits);
    const u32 l = cfg_.l();
    logical &= mask;
    old_cells &= mask;
    u8 best = old_meta & 3u;
    u32 best_cost = weighted_cost(old_cells, (logical ^ code(best)) & mask, l) +
                    meta_cost(old_meta, best, meta_bits(), l);
    for (u8 m = 0; m < 4; ++m) {
      if (m == best) continue;
      const u32 cost = weighted_cost(old_cells, (logical ^ code(m)) & mask, l) +
                       meta_cost(old_meta, m, meta_bits(), l);
      if (cost < best_cost) {
        best = m;
        best_cost = cost;
      }
    }
    return best;
  }

  u64 apply(u64 logical, u8 meta, u64 /*old_cells*/, u32 bits) const override {
    return (logical ^ code(meta)) & low_mask(bits);
  }

  u64 recover(u64 coded, u8 meta, u32 bits) const override {
    return (coded ^ code(meta)) & low_mask(bits);
  }

 private:
  static u64 code(u8 meta) {
    constexpr u64 kCodebook[4] = {
        0x0000000000000000ull,  // identity
        0xffffffffffffffffull,  // complement (FNW's code)
        0xaaaaaaaaaaaaaaaaull,  // alternating, odd bits
        0x5555555555555555ull,  // alternating, even bits
    };
    return kCodebook[meta & 3u];
  }
};

// ---------------------------------------------------------------------------
// CosetEncoder: word-level compression + restricted coset selection
// (arXiv:1711.08572 spirit). A unit whose high half is constant (sign
// extension / leading zeros — the dominant pattern in compressible data)
// compresses to its low half; the freed high cells become don't-cares
// filled with their currently stored values (zero pulses under
// changed-cell schemes), and the freed metadata budget selects one of four
// XOR cosets over the payload to dodge expensive transitions.
//
// Tag layout (4 bits): bit0 = compressed, bit1 = high-half fill value
// (the "sign"), bits2-3 = coset index. Tag 0 is the identity fallback for
// incompressible words.
// ---------------------------------------------------------------------------
class CosetEncoder final : public Encoder {
 public:
  using Encoder::Encoder;

  std::string_view name() const override { return "coset"; }
  EncoderKind kind() const override { return EncoderKind::kCoset; }
  u32 meta_bits() const override { return 4; }

  u8 choose(u64 logical, u64 old_cells, u8 old_meta, u32 bits) const override {
    const u64 mask = low_mask(bits);
    const u32 l = cfg_.l();
    logical &= mask;
    old_cells &= mask;
    u8 best = 0;
    u32 best_cost = weighted_cost(old_cells, logical, l) +
                    meta_cost(old_meta, 0, meta_bits(), l);
    const u32 low = bits / 2;
    const u64 lmask = low_mask(low);
    const u64 hmask = mask ^ lmask;
    const u64 top = logical & hmask;
    if (top != 0 && top != hmask) return best;  // incompressible: identity
    const u8 sign = top == 0 ? 0u : 1u;
    for (u8 c = 0; c < 4; ++c) {
      const u8 m = static_cast<u8>(1u | (sign << 1) | (c << 2));
      // High cells keep their stored values (don't-care fill), so only the
      // payload half and the tag cells can pulse.
      const u64 coded = ((logical ^ coset(c)) & lmask) | (old_cells & hmask);
      const u32 cost = weighted_cost(old_cells, coded, l) +
                       meta_cost(old_meta, m, meta_bits(), l);
      if (cost < best_cost) {
        best = m;
        best_cost = cost;
      }
    }
    return best;
  }

  u64 apply(u64 logical, u8 meta, u64 old_cells, u32 bits) const override {
    const u64 mask = low_mask(bits);
    if ((meta & 1u) == 0) return logical & mask;
    const u64 lmask = low_mask(bits / 2);
    return ((logical ^ coset(coset_index(meta))) & lmask) |
           (old_cells & (mask ^ lmask));
  }

  u64 recover(u64 coded, u8 meta, u32 bits) const override {
    const u64 mask = low_mask(bits);
    if ((meta & 1u) == 0) return coded & mask;
    const u64 lmask = low_mask(bits / 2);
    const u64 payload = (coded ^ coset(coset_index(meta))) & lmask;
    const bool sign = (meta & 2u) != 0;
    return sign ? payload | (mask ^ lmask) : payload;
  }

 private:
  static u8 coset_index(u8 meta) { return (meta >> 2) & 3u; }

  static u64 coset(u8 idx) {
    constexpr u64 kCosets[4] = {
        0x0000000000000000ull,
        0xffffffffffffffffull,
        0xaaaaaaaaaaaaaaaaull,
        0x5555555555555555ull,
    };
    return kCosets[idx & 3u];
  }
};

}  // namespace

std::string_view encoder_name(EncoderKind kind) {
  switch (kind) {
    case EncoderKind::kNone:
      return "none";
    case EncoderKind::kFlip:
      return "flip";
    case EncoderKind::kWire:
      return "wire";
    case EncoderKind::kCoset:
      return "coset";
  }
  TW_FAIL("unknown encoder kind");
}

std::optional<EncoderKind> parse_encoder(std::string_view name) {
  if (name == "none") return EncoderKind::kNone;
  if (name == "flip") return EncoderKind::kFlip;
  if (name == "wire") return EncoderKind::kWire;
  if (name == "coset") return EncoderKind::kCoset;
  return std::nullopt;
}

std::vector<EncoderKind> all_encoder_kinds() {
  return {EncoderKind::kNone, EncoderKind::kFlip, EncoderKind::kWire,
          EncoderKind::kCoset};
}

std::unique_ptr<Encoder> make_encoder(EncoderKind kind,
                                      const pcm::PcmConfig& cfg) {
  switch (kind) {
    case EncoderKind::kNone:
      return nullptr;
    case EncoderKind::kFlip:
      return std::make_unique<FlipEncoder>(cfg);
    case EncoderKind::kWire:
      return std::make_unique<WireEncoder>(cfg);
    case EncoderKind::kCoset:
      return std::make_unique<CosetEncoder>(cfg);
  }
  TW_FAIL("unknown encoder kind");
}

}  // namespace tw::encode
