#include "tw/encode/encoded_scheme.hpp"

#include <array>
#include <utility>

#include "tw/common/inline_vec.hpp"

namespace tw::encode {

namespace {
// Batched writes stage one coded line + tag set per input line; 16 inline
// slots match the controller's own batch staging, spilling gracefully for
// oversized ablation batches.
constexpr std::size_t kBatchInline = 16;
using MetaArray = std::array<u8, pcm::kMaxUnitsPerLine>;
}  // namespace

EncodedScheme::EncodedScheme(std::unique_ptr<schemes::WriteScheme> inner,
                             std::unique_ptr<Encoder> enc)
    : schemes::WriteScheme(inner->config()),
      inner_(std::move(inner)),
      enc_(std::move(enc)) {
  TW_EXPECTS(enc_ != nullptr);
  TW_EXPECTS(enc_->meta_bits() >= 1 && enc_->meta_bits() <= 8);
  name_.reserve(inner_->name().size() + 1 + enc_->name().size());
  name_.append(inner_->name());
  name_.push_back('+');
  name_.append(enc_->name());
}

void EncodedScheme::encode_line(const pcm::LineBuf& line,
                                const pcm::LogicalLine& next,
                                pcm::LogicalLine& coded, u8* metas) const {
  // The encoder operates in the de-inverted domain (line.logical), i.e.
  // on the coded payload as it was before any inner FNW flip. That keeps
  // the code chosen independent of the inner scheme's flip state, and it
  // is the same domain decode_stored() reads back.
  const u32 bits = cfg_.geometry.data_unit_bits;
  for (u32 i = 0; i < next.units(); ++i) {
    const u64 old_payload = line.logical(i);
    const u8 m = enc_->choose(next.word(i), old_payload, line.meta(i), bits);
    metas[i] = m;
    coded.set_word(i, enc_->apply(next.word(i), m, old_payload, bits));
  }
}

void EncodedScheme::finish_line(pcm::LineBuf& line, schemes::ServicePlan& plan,
                                const u8* metas) const {
  const u64 mmask = low_mask(enc_->meta_bits());
  BitTransitions tag;
  u32 coded_units = 0;
  for (u32 i = 0; i < line.units(); ++i) {
    const u8 m = static_cast<u8>(metas[i] & mmask);
    if (m != 0) ++coded_units;
    const u8 old_m = line.meta(i);
    if (m != old_m) {
      const BitTransitions t = transitions(old_m, m);
      tag.sets += t.sets;
      tag.resets += t.resets;
      line.set_meta(i, m);
    }
  }
  // Tag cells program alongside the data pulses (they are as wide as the
  // FNW flip tag), so they are charged to energy/wear but not latency.
  plan.programmed.sets += tag.sets;
  plan.programmed.resets += tag.resets;
  if (tag.total() > 0) plan.silent = false;
  plan.enc.active = true;
  plan.enc.coded_units = coded_units;
  plan.enc.tag_bits = tag.total();
}

schemes::ServicePlan EncodedScheme::plan_write(
    pcm::LineBuf& line, const pcm::LogicalLine& next) const {
  TW_EXPECTS(line.units() == next.units());
  pcm::LogicalLine coded(next.units());
  MetaArray metas;
  encode_line(line, next, coded, metas.data());
  schemes::ServicePlan plan = inner_->plan_write(line, coded);
  finish_line(line, plan, metas.data());
  return plan;
}

schemes::BatchServicePlan EncodedScheme::plan_write_batch(
    std::span<pcm::LineBuf*> lines,
    std::span<const pcm::LogicalLine> datas) const {
  TW_EXPECTS(lines.size() == datas.size());
  InlineVec<pcm::LogicalLine, kBatchInline> coded;
  InlineVec<MetaArray, kBatchInline> metas;
  coded.resize_uninitialized(datas.size());
  metas.resize_uninitialized(datas.size());
  for (std::size_t k = 0; k < datas.size(); ++k) {
    coded.data()[k] = pcm::LogicalLine(datas[k].units());
    encode_line(*lines[k], datas[k], coded.data()[k], metas.data()[k].data());
  }
  schemes::BatchServicePlan batch = inner_->plan_write_batch(
      lines, {coded.data(), coded.size()});
  for (std::size_t k = 0; k < datas.size(); ++k) {
    finish_line(*lines[k], batch.per_line[k], metas.data()[k].data());
  }
  return batch;
}

schemes::BatchServicePlan EncodedScheme::plan_write_batch(
    std::span<pcm::LineBuf*> lines, std::span<const pcm::LogicalLine> datas,
    std::span<const u32> partitions) const {
  TW_EXPECTS(lines.size() == datas.size());
  InlineVec<pcm::LogicalLine, kBatchInline> coded;
  InlineVec<MetaArray, kBatchInline> metas;
  coded.resize_uninitialized(datas.size());
  metas.resize_uninitialized(datas.size());
  for (std::size_t k = 0; k < datas.size(); ++k) {
    coded.data()[k] = pcm::LogicalLine(datas[k].units());
    encode_line(*lines[k], datas[k], coded.data()[k], metas.data()[k].data());
  }
  schemes::BatchServicePlan batch = inner_->plan_write_batch(
      lines, {coded.data(), coded.size()}, partitions);
  for (std::size_t k = 0; k < datas.size(); ++k) {
    finish_line(*lines[k], batch.per_line[k], metas.data()[k].data());
  }
  return batch;
}

pcm::LogicalLine EncodedScheme::decode_stored(const pcm::LineBuf& line) const {
  const u32 bits = cfg_.geometry.data_unit_bits;
  pcm::LogicalLine out(line.units());
  for (u32 i = 0; i < line.units(); ++i) {
    // line.logical(i) de-inverts any inner FNW flip, yielding the coded
    // payload; the encoder then reverses its code via the stored tag.
    out.set_word(i, enc_->recover(line.logical(i), line.meta(i), bits));
  }
  return out;
}

std::unique_ptr<schemes::WriteScheme> wrap_scheme(
    std::unique_ptr<schemes::WriteScheme> inner, EncoderKind kind) {
  if (kind == EncoderKind::kNone) return inner;
  auto enc = make_encoder(kind, inner->config());
  return std::make_unique<EncodedScheme>(std::move(inner), std::move(enc));
}

}  // namespace tw::encode
