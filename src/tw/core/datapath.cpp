#include "tw/core/datapath.hpp"

#include "tw/common/assert.hpp"

namespace tw::core {

DatapathLayout DatapathLayout::for_geometry(u32 units_per_line,
                                            u32 unit_bits) {
  TW_EXPECTS(units_per_line >= 1);
  TW_EXPECTS(unit_bits >= 2 && unit_bits <= 64);
  DatapathLayout l;
  l.units = units_per_line;
  // After inversion at most half the unit changes, plus the tag cell.
  const u32 max_count = unit_bits / 2 + 1;
  u32 bits = 1;
  while ((1u << bits) - 1 < max_count) ++bits;
  l.count_bits = bits;
  l.reg_bits = l.units * l.count_bits;
  return l;
}

void CountsRegister::store(u32 unit, u32 count) {
  TW_EXPECTS(unit < layout_.units);
  if (count > layout_.max_count()) {
    TW_FAIL("count exceeds datapath register field width");
  }
  fields_[unit] = count;
}

u32 CountsRegister::load(u32 unit) const {
  TW_EXPECTS(unit < layout_.units);
  return fields_[unit];
}

void latch_counts(const ReadStageResult& rs, CountsRegister& reg0,
                  CountsRegister& reg1) {
  TW_EXPECTS(reg0.layout().units >= rs.counts.size());
  TW_EXPECTS(reg1.layout().units >= rs.counts.size());
  for (const auto& c : rs.counts) {
    reg0.store(c.unit, c.n0);
    reg1.store(c.unit, c.n1);
  }
}

}  // namespace tw::core
