#pragma once
// Factory for every write scheme, including Tetris Write. Lives above both
// tw::schemes (baselines) and the Tetris implementation.

#include <memory>
#include <string_view>
#include <vector>

#include "tw/core/tetris_scheme.hpp"
#include "tw/schemes/write_scheme.hpp"

namespace tw::core {

/// Instantiate a scheme by kind. Tetris options apply only to the Tetris
/// kinds and are ignored otherwise.
std::unique_ptr<schemes::WriteScheme> make_scheme(
    schemes::SchemeKind kind, const pcm::PcmConfig& cfg,
    const TetrisOptions& tetris_opts = {});

/// Instantiate a scheme by its canonical short name ("conventional",
/// "dcw", "fnw", "2stage", "3stage", "tetris", "fnw-actual",
/// "2stage-actual", "3stage-actual"). Throws ContractViolation on unknown
/// names.
std::unique_ptr<schemes::WriteScheme> make_scheme(
    std::string_view name, const pcm::PcmConfig& cfg,
    const TetrisOptions& tetris_opts = {});

/// All scheme kinds, in presentation order.
std::vector<schemes::SchemeKind> all_scheme_kinds();

}  // namespace tw::core
