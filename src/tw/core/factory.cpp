#include "tw/core/factory.hpp"

#include <string>

#include "tw/common/assert.hpp"
#include "tw/schemes/conventional.hpp"
#include "tw/schemes/dcw.hpp"
#include "tw/schemes/flip_n_write.hpp"
#include "tw/schemes/preset.hpp"
#include "tw/schemes/three_stage.hpp"
#include "tw/schemes/two_stage.hpp"

namespace tw::core {

using schemes::SchemeKind;
using schemes::WriteScheme;

std::unique_ptr<WriteScheme> make_scheme(SchemeKind kind,
                                         const pcm::PcmConfig& cfg,
                                         const TetrisOptions& tetris_opts) {
  switch (kind) {
    case SchemeKind::kConventional:
      return std::make_unique<schemes::ConventionalWrite>(cfg);
    case SchemeKind::kDcw:
      return std::make_unique<schemes::DcwWrite>(cfg);
    case SchemeKind::kFlipNWrite:
      return std::make_unique<schemes::FlipNWrite>(cfg, false);
    case SchemeKind::kFlipNWriteActual:
      return std::make_unique<schemes::FlipNWrite>(cfg, true);
    case SchemeKind::kTwoStage:
      return std::make_unique<schemes::TwoStageWrite>(cfg, false);
    case SchemeKind::kTwoStageActual:
      return std::make_unique<schemes::TwoStageWrite>(cfg, true);
    case SchemeKind::kThreeStage:
      return std::make_unique<schemes::ThreeStageWrite>(cfg, false);
    case SchemeKind::kThreeStageActual:
      return std::make_unique<schemes::ThreeStageWrite>(cfg, true);
    case SchemeKind::kPreset:
      return std::make_unique<schemes::PresetWrite>(cfg, false);
    case SchemeKind::kPresetActual:
      return std::make_unique<schemes::PresetWrite>(cfg, true);
    case SchemeKind::kTetris:
      return std::make_unique<TetrisScheme>(cfg, tetris_opts);
  }
  TW_FAIL("unknown scheme kind");
}

std::unique_ptr<WriteScheme> make_scheme(std::string_view name,
                                         const pcm::PcmConfig& cfg,
                                         const TetrisOptions& tetris_opts) {
  for (const SchemeKind kind : all_scheme_kinds()) {
    if (schemes::scheme_name(kind) == name) {
      return make_scheme(kind, cfg, tetris_opts);
    }
  }
  TW_FAIL(("unknown scheme name: " + std::string(name)).c_str());
}

std::vector<SchemeKind> all_scheme_kinds() {
  return {SchemeKind::kConventional,    SchemeKind::kDcw,
          SchemeKind::kFlipNWrite,      SchemeKind::kTwoStage,
          SchemeKind::kThreeStage,      SchemeKind::kTetris,
          SchemeKind::kFlipNWriteActual, SchemeKind::kTwoStageActual,
          SchemeKind::kThreeStageActual, SchemeKind::kPreset,
          SchemeKind::kPresetActual};
}

}  // namespace tw::core
