#include "tw/core/batch_packer.hpp"

#include <algorithm>

#include "tw/common/assert.hpp"
#include "tw/trace/emit.hpp"

namespace tw::core {
namespace {

/// Per-chip transition demand of one unit write: bits [c*w, (c+1)*w) of
/// the unit live on chip c. Returns the worst chip's SET and RESET counts.
struct ChipWorst {
  u32 sets = 0;
  u32 resets = 0;
};

ChipWorst worst_chip_demand(u64 old_cells, u64 new_cells, u32 unit_bits,
                            u32 chips) {
  ChipWorst w;
  const u32 per_chip = unit_bits / chips;
  const u64 diff = (old_cells ^ new_cells) & low_mask(unit_bits);
  for (u32 c = 0; c < chips; ++c) {
    const u64 mask = low_mask(per_chip) << (c * per_chip);
    const u32 s = popcount(diff & new_cells & mask);
    const u32 r = popcount(diff & old_cells & mask);
    w.sets = std::max(w.sets, s);
    w.resets = std::max(w.resets, r);
  }
  return w;
}

}  // namespace

CountsVec BatchPacker::line_counts(const pcm::LineBuf& line,
                                   const ReadStageResult& read,
                                   u32 unit_base) const {
  CountsVec counts = read.counts;
  const bool per_chip =
      opts_.respect_gcp_setting && !cfg_.power.global_charge_pump &&
      cfg_.geometry.chips_per_bank > 1 &&
      cfg_.geometry.data_unit_bits % cfg_.geometry.chips_per_bank == 0;
  if (per_chip) {
    for (u32 i = 0; i < counts.size(); ++i) {
      // Per-chip budgets bind: charge each unit chips x its worst chip's
      // demand so that no chip can exceed its local share of the budget.
      const auto& p = read.plans[i];
      const ChipWorst w =
          worst_chip_demand(line.cell(i), p.new_cells,
                            cfg_.geometry.data_unit_bits,
                            cfg_.geometry.chips_per_bank);
      // A tag-only transition keeps a nonzero demand of 1.
      if (counts[i].n1 > 0) {
        counts[i].n1 =
            std::max(w.sets * cfg_.geometry.chips_per_bank, 1u);
      }
      if (counts[i].n0 > 0) {
        counts[i].n0 =
            std::max(w.resets * cfg_.geometry.chips_per_bank, 1u);
      }
    }
  }
  UnitCounts* c = counts.data();  // hot path: unchecked renumbering
  for (std::size_t i = 0, n = counts.size(); i < n; ++i) {
    c[i].unit += unit_base;
  }
  return counts;
}

BatchPackOutcome BatchPacker::pack_lines(
    std::span<pcm::LineBuf* const> lines,
    std::span<const pcm::LogicalLine> datas,
    const PackerConfig& pcfg) const {
  TW_EXPECTS(lines.size() == datas.size());
  TW_EXPECTS(!lines.empty());
  const u32 units = cfg_.geometry.units_per_line();

  BatchPackOutcome out;
  out.lines = static_cast<u32>(lines.size());
  out.reads.reserve(lines.size());
  out.counts.reserve(lines.size() * units);
  // Read stage per line in the controller's age order; counts are
  // concatenated with per-line unit offsets (line i's unit u becomes
  // global unit i*units + u in the joint schedule).
  for (std::size_t i = 0; i < lines.size(); ++i) {
    out.reads.push_back(
        read_stage(*lines[i], datas[i], cfg_.geometry.data_unit_bits));
    const CountsVec counts = line_counts(*lines[i], out.reads.back(),
                                         static_cast<u32>(i) * units);
    out.counts.insert(out.counts.end(), counts.begin(), counts.end());
  }

  // One joint packing over every unit of every line.
  out.pack = pack(out.counts, pcfg);
  if (opts_.self_check) verify_pack(out.counts, pcfg, out.pack);

  if (trace::on<trace::Category::kPacker>()) {
    const u32 ptrack = trace::track_id(
        trace::Track::kPacker, trace::track_index(trace::g_tls.track));
    trace::emit_instant(
        trace::Category::kPacker, trace::Op::kBatchPack, ptrack,
        trace::g_tls.base, out.lines,
        static_cast<u32>(out.occupancy(pcfg.budget) * 1000.0));
  }
  return out;
}

BatchPackOutcome BatchPacker::pack_lines(
    std::span<pcm::LineBuf* const> lines,
    std::span<const pcm::LogicalLine> datas, const PackerConfig& pcfg,
    std::span<const u32> partitions) const {
  TW_EXPECTS(partitions.size() == lines.size());
  BatchPackOutcome out = pack_lines(lines, datas, pcfg);
  // Partitions share the bank's pump, so the schedule itself is
  // placement-independent; only the spread diagnostic is new.
  u64 seen = 0;
  for (const u32 p : partitions) seen |= u64{1} << (p & 63);
  out.partition_spread = popcount(seen);
  if (trace::on<trace::Category::kPalp>()) {
    const u32 ptrack = trace::track_id(
        trace::Track::kPalp, trace::track_index(trace::g_tls.track));
    trace::emit_instant(trace::Category::kPalp, trace::Op::kPalpBatchSpread,
                        ptrack, trace::g_tls.base, out.lines,
                        out.partition_spread);
  }
  return out;
}

}  // namespace tw::core
