#pragma once
// Tetris Write read stage (the paper's Algorithm 1).
//
// Reads the original data and flip tag, applies the Flip-N-Write inversion
// when more than half of a unit's cells would change, and counts the
// number of write-1 (SET) and write-0 (RESET) bit operations each data
// unit actually needs. Those counts drive the analysis stage.
//
// Note on the paper's pseudocode: Algorithm 1 literally counts the ones
// and zeros *of D* ("N1 = Count_the_number_of_1(D)"), but the surrounding
// text, Observation 1, and the Fig. 4 worked example all count the bits
// that *changed* (the motivation is "monitor the number of '1' and '0'
// changed in each data unit"). We implement the changed-bit counts; the
// write driver's PROG-enable gating (Fig. 9) only pulses changed cells,
// which confirms this reading.

#include "tw/common/inline_vec.hpp"
#include "tw/pcm/line.hpp"
#include "tw/schemes/prep.hpp"

namespace tw::core {

/// Per-data-unit result of the read stage.
struct UnitCounts {
  u32 unit = 0;  ///< data-unit index within the cache line
  u32 n1 = 0;    ///< SET bit-writes required (write-1s), incl. tag if 0->1
  u32 n0 = 0;    ///< RESET bit-writes required (write-0s), incl. tag if 1->0
};

/// Per-unit counts for one line, kept inline (no heap on the write path).
using CountsVec = InlineVec<UnitCounts, pcm::kMaxUnitsPerLine>;

/// Full read-stage output for one cache-line write.
struct ReadStageResult {
  schemes::PlanVec plans;  ///< per-unit flip decisions + cells
  CountsVec counts;        ///< per-unit SET/RESET counts
  u32 flipped_units = 0;

  /// Total changed bits across the line (incl. tag cells).
  BitTransitions total() const {
    BitTransitions t;
    for (const auto& c : counts) {
      t.sets += c.n1;
      t.resets += c.n0;
    }
    return t;
  }
};

/// Run Algorithm 1 over a line write. `bits` is the data-unit width.
ReadStageResult read_stage(const pcm::LineBuf& line,
                           const pcm::LogicalLine& next, u32 bits);

}  // namespace tw::core
