#pragma once
// Hardware-level executor: runs a complete Tetris Write — read stage,
// analysis stage, FSM schedule, gated write driver — against a real
// PcmArray, cell by cell and pulse by pulse. This is the proof that the
// three stages compose: after execution the array holds exactly the
// requested logical data, every pulse respected the power budget and the
// FSM timing, and the pulse count equals the read stage's transition
// counts.
//
// The full-system simulator uses the faster LineBuf bookkeeping; this
// executor backs it with a bit-accurate reference (tests cross-check the
// two) and powers the wear/endurance studies.

#include "tw/core/fsm.hpp"
#include "tw/core/tetris_scheme.hpp"
#include "tw/core/write_driver.hpp"
#include "tw/pcm/array.hpp"

namespace tw::core {

/// Result of one hardware-level line write.
struct HwWriteResult {
  TetrisAnalysis analysis;   ///< read + packing stages
  FsmTrace trace;            ///< executed FSM schedule
  BitTransitions pulses;     ///< first-drive cell pulses (== planned count)
  Tick service_time = 0;     ///< Eq. 5 write-phase length
  u32 retry_attempts = 0;    ///< verify-and-retry passes run
  BitTransitions retry_pulses;  ///< extra pulses driven by retry passes
  u64 failed_bits = 0;       ///< cells still wrong after the last retry
};

/// Layout: each data unit occupies (unit_bits + 1) cells in the array —
/// unit_bits data cells followed by its flip-tag cell.
class HwExecutor {
 public:
  /// `array` must hold at least units_per_line * (unit_bits + 1) cells
  /// starting at base_bit for each line written.
  explicit HwExecutor(const TetrisScheme& scheme) : scheme_(scheme) {}

  /// Install (or clear) a pulse observer forwarded to every write-driver
  /// pass and tag-cell program — the verify subsystem's hook point.
  /// Independent of the observer, TW_VERIFY=1 arms an internal check
  /// that no cell is driven by both FSM passes within one line write.
  void set_pulse_observer(PulseObserver* observer) {
    observer_ = observer;
  }

  /// Arm the verify-and-retry path: after driving the FSM schedule the
  /// executor senses each unit back, and cells that missed their target
  /// (a fault hook on the array failed their pulse) are re-driven for up
  /// to `max_retries` extra passes. The array's fault-attempt ordinal is
  /// advanced per pass so the hook can damp widened retry pulses. 0 (the
  /// default) keeps today's strict single-pass behavior; cells that are
  /// still wrong after the last retry are reported in failed_bits instead
  /// of tripping the post-conditions.
  void set_max_retries(u32 max_retries) { max_retries_ = max_retries; }

  /// Read the current logical line content from the array.
  pcm::LogicalLine read_line(const pcm::PcmArray& array,
                             u64 base_bit) const;

  /// Execute a full Tetris line write of `next` at `base_bit`.
  /// Throws ContractViolation if any invariant breaks (budget, timing,
  /// final content).
  HwWriteResult write_line(pcm::PcmArray& array, u64 base_bit,
                           const pcm::LogicalLine& next) const;

 private:
  pcm::LineBuf snapshot(const pcm::PcmArray& array, u64 base_bit) const;

  const TetrisScheme& scheme_;
  PulseObserver* observer_ = nullptr;
  u32 max_retries_ = 0;
};

}  // namespace tw::core
