#include "tw/core/write_driver.hpp"

#include "tw/common/assert.hpp"

namespace tw::core {

BitTransitions drive_pass(pcm::PcmArray& array, u64 base_bit, u64 old_word,
                          u64 new_word, u32 bits, WritePass pass,
                          PulseObserver* observer) {
  TW_EXPECTS(bits >= 1 && bits <= 64);
  const u64 mask = low_mask(bits);
  old_word &= mask;
  new_word &= mask;

  const u64 prog_enable = old_word ^ new_word;  // XOR gate
  const u64 set_enable = new_word;              // write signal = One
  const u64 reset_enable = ~new_word & mask;    // write signal = Zero
  const u64 drive = prog_enable & (pass == WritePass::kSet ? set_enable
                                                           : reset_enable);

  BitTransitions t;
  // Walk only the driven bits (countr_zero strips one per iteration, in
  // ascending order — same observer order as the old full-width scan).
  for (u64 pending = drive; pending != 0; pending &= pending - 1) {
    const u32 i = static_cast<u32>(std::countr_zero(pending));
    const bool value = pass == WritePass::kSet;
    const pcm::ProgramResult r = array.program(base_bit + i, value);
    if (observer) observer->on_pulse(base_bit + i, pass, r);
    if (r == pcm::ProgramResult::kWornOut) continue;
    if (value) {
      ++t.sets;
    } else {
      ++t.resets;
    }
  }
  return t;
}

BitTransitions drive_unit(pcm::PcmArray& array, u64 base_bit, u64 old_word,
                          u64 new_word, u32 bits, PulseObserver* observer) {
  BitTransitions t = drive_pass(array, base_bit, old_word, new_word, bits,
                                WritePass::kSet, observer);
  const BitTransitions r = drive_pass(array, base_bit, old_word, new_word,
                                      bits, WritePass::kReset, observer);
  t.sets += r.sets;
  t.resets += r.resets;
  return t;
}

}  // namespace tw::core
