#include "tw/core/hw_executor.hpp"

#include <memory>
#include <vector>

#include "tw/common/assert.hpp"
#include "tw/common/env.hpp"
#include "tw/core/write_driver.hpp"
#include "tw/trace/emit.hpp"

namespace tw::core {
namespace {

/// TW_VERIFY-mode internal observer: records which pass drove each cell
/// of one line write and fails if both FSMs ever touch the same cell
/// (they own disjoint bit sets by construction of the PROG-enable gating;
/// this proves it on the real pulse stream).
class ExclusivityCheck final : public PulseObserver {
 public:
  ExclusivityCheck(u64 base_bit, u64 span, PulseObserver* chained)
      : base_(base_bit), seen_(span, 0), chained_(chained) {}

  void on_pulse(u64 bit, WritePass pass, pcm::ProgramResult r) override {
    TW_ASSERT(bit >= base_ && bit - base_ < seen_.size());
    const u8 flag = pass == WritePass::kSet ? 1u : 2u;
    u8& cell = seen_[bit - base_];
    TW_ASSERT((cell & ~flag) == 0);  // both FSMs drove one cell
    cell |= flag;
    if (chained_) chained_->on_pulse(bit, pass, r);
  }

 private:
  u64 base_;
  std::vector<u8> seen_;
  PulseObserver* chained_;
};

}  // namespace

pcm::LineBuf HwExecutor::snapshot(const pcm::PcmArray& array,
                                  u64 base_bit) const {
  const auto& g = scheme_.config().geometry;
  const u32 units = g.units_per_line();
  const u32 bits = g.data_unit_bits;
  pcm::LineBuf line(units);
  for (u32 u = 0; u < units; ++u) {
    const u64 base = base_bit + static_cast<u64>(u) * (bits + 1);
    line.set_cell(u, array.read_word(base, bits));
    line.set_flip(u, array.read(base + bits));
  }
  return line;
}

pcm::LogicalLine HwExecutor::read_line(const pcm::PcmArray& array,
                                       u64 base_bit) const {
  return pcm::LogicalLine::from_physical(snapshot(array, base_bit));
}

HwWriteResult HwExecutor::write_line(pcm::PcmArray& array, u64 base_bit,
                                     const pcm::LogicalLine& next) const {
  const auto& cfg = scheme_.config();
  const u32 bits = cfg.geometry.data_unit_bits;
  const u32 units = cfg.geometry.units_per_line();
  TW_EXPECTS(next.units() == units);
  TW_EXPECTS(base_bit + static_cast<u64>(units) * (bits + 1) <=
             array.size_bits());

  HwWriteResult result;

  // Verify hook layer: the installed observer sees every pulse; under
  // TW_VERIFY=1 an exclusivity checker is spliced in front of it.
  PulseObserver* observer = observer_;
  std::unique_ptr<ExclusivityCheck> exclusivity;
  if (verify_env_enabled()) {
    exclusivity = std::make_unique<ExclusivityCheck>(
        base_bit, static_cast<u64>(units) * (bits + 1), observer_);
    observer = exclusivity.get();
  }

  // Read stage: sense the array (the read buffer of Fig. 6).
  const pcm::LineBuf before = snapshot(array, base_bit);
  result.analysis = scheme_.analyze(before, next);
  const auto& plans = result.analysis.read.plans;

  // Analysis verified, FSM schedule derived.
  verify_pack(result.analysis.read.counts, result.analysis.packer_cfg,
              result.analysis.pack);
  result.trace = execute_fsms(result.analysis.pack,
                              result.analysis.packer_cfg, cfg.timing);
  result.service_time = result.trace.schedule_length;
  if (trace::on<trace::Category::kFsm>()) {
    // One span covering the whole hardware-level line write, on the
    // enclosing context's track (the pulse spans above nest inside it).
    trace::emit_span(trace::Category::kFsm, trace::Op::kLineWrite,
                     trace::g_tls.track, trace::g_tls.base,
                     result.service_time, units);
  }

  // Drive the array in FSM event order: FSM1 events carry the SET pass of
  // their data unit, FSM0 events the RESET pass. Tag cells ride with
  // whichever pass their transition direction belongs to. Over-budget
  // items span several events (partial passes); the cells are driven on
  // the first one.
  std::vector<std::pair<bool, bool>> driven(units, {false, false});
  for (const auto& e : result.trace.events) {
    const u32 u = e.unit;
    TW_ASSERT(u < units);
    bool& done = e.fsm == 1 ? driven[u].first : driven[u].second;
    if (done) continue;
    done = true;
    const u64 base = base_bit + static_cast<u64>(u) * (bits + 1);
    const auto& plan = plans[u];
    const WritePass pass =
        e.fsm == 1 ? WritePass::kSet : WritePass::kReset;
    const BitTransitions t = drive_pass(array, base, before.cell(u),
                                        plan.new_cells, bits, pass,
                                        observer);
    result.pulses.sets += t.sets;
    result.pulses.resets += t.resets;
    if (plan.tag_changed && plan.tag_to_one == (pass == WritePass::kSet)) {
      const pcm::ProgramResult pr =
          array.program(base + bits, plan.tag_to_one);
      if (observer) observer->on_pulse(base + bits, pass, pr);
      if (plan.tag_to_one) {
        ++result.pulses.sets;
      } else {
        ++result.pulses.resets;
      }
    }
  }

  // Verify-and-retry: sense each unit back and re-drive cells a fault
  // hook failed, advancing the array's retry ordinal per pass (widened
  // pulses; the hook damps their failure probability). A cell's retry
  // pulse has the same direction as its failed pulse, so the exclusivity
  // invariant holds through the ladder.
  auto unit_target = [&](u32 u) {
    return plans[u].new_cells & low_mask(bits);
  };
  auto unit_tag_target = [&](u32 u) {
    return plans[u].tag_changed ? plans[u].tag_to_one : before.flip(u);
  };
  auto count_wrong = [&]() {
    u64 wrong = 0;
    for (u32 u = 0; u < units; ++u) {
      const u64 base = base_bit + static_cast<u64>(u) * (bits + 1);
      wrong += popcount((array.read_word(base, bits) ^ unit_target(u)) &
                        low_mask(bits));
      if (array.read(base + bits) != unit_tag_target(u)) ++wrong;
    }
    return wrong;
  };
  u64 wrong = count_wrong();
  while (wrong > 0 && result.retry_attempts < max_retries_) {
    ++result.retry_attempts;
    array.set_fault_attempt(result.retry_attempts);
    for (u32 u = 0; u < units; ++u) {
      const u64 base = base_bit + static_cast<u64>(u) * (bits + 1);
      const u64 target = unit_target(u);
      u64 diff = (array.read_word(base, bits) ^ target) & low_mask(bits);
      for (u32 i = 0; i < bits && diff != 0; ++i) {
        if (((diff >> i) & 1u) == 0) continue;
        const bool want = ((target >> i) & 1u) != 0;
        const WritePass pass = want ? WritePass::kSet : WritePass::kReset;
        const pcm::ProgramResult pr = array.program(base + i, want);
        if (observer) observer->on_pulse(base + i, pass, pr);
        if (pr == pcm::ProgramResult::kWornOut) continue;
        if (want) {
          ++result.retry_pulses.sets;
        } else {
          ++result.retry_pulses.resets;
        }
      }
      const bool tag_target = unit_tag_target(u);
      if (array.read(base + bits) != tag_target) {
        const WritePass pass =
            tag_target ? WritePass::kSet : WritePass::kReset;
        const pcm::ProgramResult pr =
            array.program(base + bits, tag_target);
        if (observer) observer->on_pulse(base + bits, pass, pr);
        if (pr != pcm::ProgramResult::kWornOut) {
          if (tag_target) {
            ++result.retry_pulses.sets;
          } else {
            ++result.retry_pulses.resets;
          }
        }
      }
    }
    wrong = count_wrong();
  }
  array.set_fault_attempt(0);
  result.failed_bits = wrong;

  // Post-conditions: the array now holds the requested logical data
  // (except cells the fault ladder exhausted, reported in failed_bits)
  // and the first-drive pulse count equals the read stage's transition
  // counts (failed pulses were still driven).
  if (result.failed_bits == 0) {
    for (u32 u = 0; u < units; ++u) {
      const u64 base = base_bit + static_cast<u64>(u) * (bits + 1);
      const u64 cells = array.read_word(base, bits);
      const bool tag = array.read(base + bits);
      const u64 logical = tag ? (~cells & low_mask(bits)) : cells;
      TW_ENSURES(logical == (next.word(u) & low_mask(bits)));
    }
  }
  const BitTransitions expected = result.analysis.read.total();
  TW_ENSURES(result.pulses.sets == expected.sets);
  TW_ENSURES(result.pulses.resets == expected.resets);
  return result;
}

}  // namespace tw::core
