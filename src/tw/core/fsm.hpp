#pragma once
// Individually-write stage: the FSM0 / FSM1 execution model (paper Fig. 8).
//
// FSM1 walks the write-1 queue: at each write-unit boundary it selects the
// data units whose SETs belong to that write unit and drives them for a
// full Tset. FSM0 walks the write-0 queue every sub-write-unit (Tset/K):
// RESET pulses (Treset <= Tset/K) fire inside the interspaces. The FSMs
// are independent and run simultaneously; this model reproduces their
// cycle-level schedule and checks it against the analysis stage's
// service-time claim (Eq. 5).

#include <vector>

#include "tw/common/types.hpp"
#include "tw/core/packer.hpp"
#include "tw/pcm/params.hpp"

namespace tw::core {

/// One driven program burst (a data unit's SET group or RESET group).
struct FsmEvent {
  Tick start = 0;  ///< pulse begin
  Tick end = 0;    ///< pulse end (pulse width, not slot boundary)
  u8 fsm = 0;      ///< 1 = FSM1 (write-1s), 0 = FSM0 (write-0s)
  u32 unit = 0;    ///< data-unit index selected through the MUX
  u32 slot = 0;    ///< write unit (fsm=1) or global sub-slot (fsm=0)
  u32 current = 0; ///< current drawn while the pulse is active
};

/// The executed schedule of one cache-line write.
struct FsmTrace {
  std::vector<FsmEvent> events;
  Tick pulse_completion = 0;     ///< last pulse end
  Tick schedule_length = 0;      ///< Eq. 5 service time (slot-aligned)

  /// Maximum instantaneous current across the schedule (checked against
  /// the budget by execute_fsms).
  u32 peak_current = 0;
};

/// Execute the FSMs over a pack result. Verifies en route that
/// instantaneous current never exceeds cfg.budget and that the schedule
/// length equals (result + subresult/K) * Tset.
FsmTrace execute_fsms(const PackResult& pack, const PackerConfig& cfg,
                      const pcm::TimingParams& timing);

}  // namespace tw::core
