#include "tw/core/read_stage.hpp"

namespace tw::core {

ReadStageResult read_stage(const pcm::LineBuf& line,
                           const pcm::LogicalLine& next, u32 bits) {
  ReadStageResult r;
  r.plans = schemes::plan_line(line, next, schemes::FlipCriterion::kHamming,
                               bits);
  r.counts.reserve(r.plans.size());
  for (u32 i = 0; i < r.plans.size(); ++i) {
    const auto& p = r.plans[i];
    UnitCounts c;
    c.unit = i;
    c.n1 = p.sets;
    c.n0 = p.resets;
    if (p.tag_changed) {
      if (p.tag_to_one) {
        ++c.n1;
      } else {
        ++c.n0;
      }
    }
    if (p.flip) ++r.flipped_units;
    r.counts.push_back(c);
  }
  return r;
}

}  // namespace tw::core
