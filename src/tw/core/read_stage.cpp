#include "tw/core/read_stage.hpp"

namespace tw::core {

ReadStageResult read_stage(const pcm::LineBuf& line,
                           const pcm::LogicalLine& next, u32 bits) {
  ReadStageResult r;
  r.plans = schemes::plan_line(line, next, schemes::FlipCriterion::kHamming,
                               bits);
  const u32 units = static_cast<u32>(r.plans.size());
  r.counts.resize_uninitialized(units);
  UnitCounts* c = r.counts.data();  // hot path: unchecked writes
  const schemes::UnitPlan* p = r.plans.data();
  u32 flipped = 0;
  for (u32 i = 0; i < units; ++i) {
    c[i].unit = i;
    c[i].n1 = p[i].sets + ((p[i].tag_changed && p[i].tag_to_one) ? 1u : 0u);
    c[i].n0 = p[i].resets + ((p[i].tag_changed && !p[i].tag_to_one) ? 1u : 0u);
    flipped += p[i].flip ? 1u : 0u;
  }
  r.flipped_units = flipped;
  return r;
}

}  // namespace tw::core
