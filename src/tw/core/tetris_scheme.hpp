#pragma once
// Tetris Write as a WriteScheme: read stage (Alg. 1) -> analysis stage
// (Alg. 2 packing) -> individually-write stage (Eq. 5 service time).
//
// Latency = Tread + Tanalysis + (result + subresult/K) * Tset, where the
// analysis overhead is the paper's Vivado HLS measurement: 41 cycles at
// the 400 MHz memory bus clock (102.5 ns), charged on every write.

#include <memory>

#include "tw/core/batch_packer.hpp"
#include "tw/core/packer.hpp"
#include "tw/core/read_stage.hpp"
#include "tw/schemes/write_scheme.hpp"

namespace tw::core {

/// Tuning knobs of the Tetris Write implementation.
struct TetrisOptions {
  u32 analysis_cycles = 41;           ///< worst-case analysis latency
  Tick analysis_clock_period = 2500;  ///< 400 MHz memory bus clock (ps)
  bool forbid_self_overlap = false;   ///< see PackerConfig (paper: allowed)
  PackOrder pack_order = PackOrder::kFirstFitDecreasing;
  /// Without the global charge pump, each chip's local budget binds. We
  /// then charge each data unit a conservative bank-equivalent demand of
  /// chips x (its worst chip's demand), which guarantees every chip stays
  /// within its local budget.
  bool respect_gcp_setting = true;
  /// Re-verify every schedule with verify_pack + the FSM model (slow;
  /// tests and debugging only).
  bool self_check = false;

  Tick analysis_latency() const {
    return analysis_cycles * analysis_clock_period;
  }
};

/// Result of the read + analysis stages for one line write (exposed for
/// benches, tests and the timing-diagram example).
struct TetrisAnalysis {
  ReadStageResult read;
  PackResult pack;
  PackerConfig packer_cfg;
};

class TetrisScheme final : public schemes::WriteScheme {
 public:
  explicit TetrisScheme(const pcm::PcmConfig& cfg,
                        TetrisOptions opts = {});

  std::string_view name() const override { return "tetris"; }
  schemes::SchemeKind kind() const override {
    return schemes::SchemeKind::kTetris;
  }
  schemes::WriteSemantics semantics() const override {
    return {schemes::FlipCriterion::kHamming,
            schemes::PulsePolicy::kChangedCells, true};
  }

  schemes::ServicePlan plan_write(
      pcm::LineBuf& line, const pcm::LogicalLine& next) const override;

  /// Batched Tetris (our extension): pack the data units of several
  /// same-bank writes jointly — one shared schedule, amortized write
  /// units. Reads-before-write serialize (same bank); the analysis
  /// overhead is charged once per line (each line has its own Reg0/Reg1).
  schemes::BatchServicePlan plan_write_batch(
      std::span<pcm::LineBuf*> lines,
      std::span<const pcm::LogicalLine> datas) const override;

  /// Partition-aware batch (PALP): identical schedule — partitions share
  /// the bank pump — but the joint pack records the distinct-partition
  /// spread the controller's gather achieved.
  schemes::BatchServicePlan plan_write_batch(
      std::span<pcm::LineBuf*> lines,
      std::span<const pcm::LogicalLine> datas,
      std::span<const u32> partitions) const override;

  /// Run only the read + analysis stages (no state mutation).
  TetrisAnalysis analyze(const pcm::LineBuf& line,
                         const pcm::LogicalLine& next) const;

  /// Retry pricing for the fault-injection verify-and-retry path: the
  /// failed bits re-enter the packer (spread round-robin over the line's
  /// units, the way scattered cell failures present) under the *current*
  /// effective budget, so retries planned inside a brown-out window pack
  /// against the shrunken budget like any first-attempt write.
  Tick plan_retry(const BitTransitions& failed, u32 attempt,
                  double widen) const override;

  const TetrisOptions& options() const { return opts_; }

 private:
  PackerConfig make_packer_config() const;
  BatchPackerOptions batch_packer_options() const;

  /// Shared tail of both batch overloads: price the joint schedule and
  /// apply per-line plans.
  schemes::BatchServicePlan finish_batch(const BatchPackOutcome& joint,
                                         std::span<pcm::LineBuf*> lines,
                                         const PackerConfig& pcfg) const;

  /// Packing inputs for one line's read-stage result, with the non-GCP
  /// worst-chip scaling applied and unit ids offset by `unit_base`
  /// (delegates to BatchPacker::line_counts).
  CountsVec packing_counts(const pcm::LineBuf& line,
                           const ReadStageResult& read,
                           u32 unit_base) const;

  TetrisOptions opts_;
};

}  // namespace tw::core
