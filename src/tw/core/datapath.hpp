#pragma once
// Datapath register model (paper Fig. 6/7): Reg0 and Reg1 are 48-bit
// registers storing, for each of the 8 data units, a 6-bit record of the
// unit's label and its RESET / SET count. This model checks that the
// hardware register budget actually fits the configured geometry and
// provides the encode/decode used by the Tetris Write logic.

#include <vector>

#include "tw/common/types.hpp"
#include "tw/core/read_stage.hpp"

namespace tw::core {

/// Geometry-derived register layout.
struct DatapathLayout {
  u32 units = 8;          ///< data units per line
  u32 count_bits = 6;     ///< bits per stored count field
  u32 reg_bits = 48;      ///< total register width (units * count_bits)

  /// Layout for a given line geometry: counts go up to bits_per_unit/2
  /// after inversion (+1 for the tag), so the field must hold
  /// [0, bits_per_unit/2 + 1].
  static DatapathLayout for_geometry(u32 units_per_line, u32 unit_bits);

  /// Largest count representable in a field.
  u32 max_count() const { return (1u << count_bits) - 1; }
};

/// A packed counts register (Reg0 holds write-0 counts, Reg1 write-1s).
class CountsRegister {
 public:
  explicit CountsRegister(DatapathLayout layout) : layout_(layout) {
    fields_.assign(layout.units, 0);
  }

  const DatapathLayout& layout() const { return layout_; }

  /// Store a count for a unit; the value must fit the field width.
  void store(u32 unit, u32 count);

  /// Load a unit's count.
  u32 load(u32 unit) const;

  /// Total bits of register state in use (for overhead reporting).
  u32 width_bits() const { return layout_.units * layout_.count_bits; }

 private:
  DatapathLayout layout_;
  std::vector<u32> fields_;
};

/// Latch a read-stage result into the two registers; throws if any count
/// exceeds the hardware field width (i.e. the configured geometry does not
/// fit the paper's 48-bit register budget).
void latch_counts(const ReadStageResult& rs, CountsRegister& reg0,
                  CountsRegister& reg1);

}  // namespace tw::core
