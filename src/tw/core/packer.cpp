#include "tw/core/packer.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <utility>
#include <vector>

#include "tw/common/assert.hpp"
#include "tw/common/simd.hpp"
#include "tw/trace/emit.hpp"

namespace tw::core {
namespace {

/// Items of one packing phase in structure-of-arrays layout: `current[i]`
/// is the demand of data unit `unit[i]`. Keeping the demands contiguous
/// lets the SIMD first-fit kernel scan them without gather steps, and the
/// multi-line batch path (hundreds of units) spills both arrays to one
/// heap block each instead of an array of structs.
struct ItemsSoA {
  InlineVec<u32, pcm::kMaxUnitsPerLine> unit;
  InlineVec<u32, pcm::kMaxUnitsPerLine> current;

  std::size_t size() const { return unit.size(); }
};

/// Counting sort applies while every demand is at most this (covers every
/// real geometry: demand <= (bits + 1) * l = 130 for Table II; only
/// extreme l ablations exceed it and fall back to insertion sort).
constexpr u32 kCountingSortMaxDemand = 1024;
/// Below this many items the quadratic insertion sort's constant wins.
constexpr std::size_t kInsertionSortMax = 16;

/// Sort order for both phases: decreasing current demand, index ascending
/// for determinism. Raw-pointer loops over pre-sized arrays: this and the
/// placement loops below are the per-write hot path, so they use
/// unchecked access throughout (the contract-checked InlineVec accessors
/// cost a compare+branch per element).
///
/// Two sort strategies produce the *identical* order (so the choice can
/// never affect packing results): insertion sort for short sequences
/// (single lines: at most 32 items, a handful of shifts), and a counting
/// sort over the bounded demand values for multi-line batches — the
/// insertion sort's O(m^2) dependent shifts dominated the whole joint
/// pack at K x 32 items. Descending bucket offsets give decreasing
/// demand; scanning items in input (ascending unit) order makes the
/// placement stable, which is exactly the ascending-unit tie-break.
ItemsSoA sorted_items(std::span<const UnitCounts> counts, bool write1_phase,
                      const PackerConfig& cfg) {
  ItemsSoA items;
  items.unit.resize_uninitialized(counts.size());
  items.current.resize_uninitialized(counts.size());
  u32* unit = items.unit.data();
  u32* cur = items.current.data();
  const bool ordered = cfg.order != PackOrder::kFirstFitArrival;
  std::size_t m = 0;
  u32 maxd = 0;
  for (const auto& c : counts) {
    const u32 demand = write1_phase ? c.n1 : c.n0 * cfg.l;
    if (demand == 0) continue;
    unit[m] = c.unit;
    cur[m] = demand;
    maxd = demand > maxd ? demand : maxd;
    ++m;
  }
  items.unit.resize_uninitialized(m);
  items.current.resize_uninitialized(m);
  if (!ordered || m < 2) return items;

  if (m > kInsertionSortMax && maxd <= kCountingSortMaxDemand) {
    u32 hist[kCountingSortMaxDemand + 1];
    std::memset(hist, 0, (maxd + 1) * sizeof(u32));
    for (std::size_t i = 0; i < m; ++i) ++hist[cur[i]];
    u32 pos = 0;
    for (u32 d = maxd; ; --d) {
      const u32 bucket = hist[d];
      hist[d] = pos;
      pos += bucket;
      if (d == 0) break;
    }
    ItemsSoA out;
    out.unit.resize_uninitialized(m);
    out.current.resize_uninitialized(m);
    u32* ou = out.unit.data();
    u32* oc = out.current.data();
    for (std::size_t i = 0; i < m; ++i) {
      const u32 d = cur[i];
      const u32 p = hist[d]++;
      ou[p] = unit[i];
      oc[p] = d;
    }
    return out;
  }

  for (std::size_t i = 1; i < m; ++i) {
    const u32 u = unit[i];
    const u32 d = cur[i];
    std::size_t j = i;
    while (j > 0 && (cur[j - 1] < d || (cur[j - 1] == d && unit[j - 1] > u))) {
      unit[j] = unit[j - 1];
      cur[j] = cur[j - 1];
      --j;
    }
    unit[j] = u;
    cur[j] = d;
  }
  return items;
}

/// First-fit over `power[0, n)` skipping the forbidden window
/// `[forbid_lo, forbid_hi)`, charging `fit_checks` exactly like the
/// original scalar scan did: every index up to and including the chosen
/// slot counts (forbidden ones too), a miss charges all n. Computing the
/// charge arithmetically from the found index keeps the statistic
/// bit-identical across scalar and AVX2 kernels.
u32 first_fit_target(const u32* power, u32 n, u32 limit, u32 forbid_lo,
                     u32 forbid_hi, u64& fit_checks, simd::Level lv) {
  u32 target = simd::first_fit(power, forbid_lo < n ? forbid_lo : n, limit,
                               lv);
  if (target >= forbid_lo && forbid_hi < n) {
    target = forbid_hi + simd::first_fit(power + forbid_hi, n - forbid_hi,
                                         limit, lv);
  } else if (target >= forbid_lo) {
    target = n;
  }
  fit_checks += target < n ? target + 1 : n;
  return target;
}

/// Best-fit over the same domain (ablation path, scalar by design):
/// highest-occupancy slot that still fits, first index among ties.
u32 best_fit_target(const u32* power, u32 n, u32 limit, u32 forbid_lo,
                    u32 forbid_hi, u64& fit_checks) {
  u32 target = n;
  for (u32 s = 0; s < n; ++s) {
    ++fit_checks;
    if (s >= forbid_lo && s < forbid_hi) continue;
    if (power[s] > limit) continue;
    if (target == n || power[s] > power[target]) target = s;
  }
  return target;
}

}  // namespace

PackResult pack(std::span<const UnitCounts> counts, const PackerConfig& cfg) {
  TW_EXPECTS(cfg.valid());
  PackResult r;

  // ---- Phase 1: write-1s into write units. -------------------------------
  // During this phase every sub-slot of a write unit carries the same
  // power, so track one value per write unit.
  InlineVec<u32, pcm::kMaxUnitsPerLine> wu_power;  // SET-current per unit
  // Self-overlap bookkeeping: which write units unit i's write-1 spans.
  struct UnitSpan {
    u32 lo = 0;
    u32 hi = 0;
  };
  InlineVec<UnitSpan, pcm::kMaxUnitsPerLine> span_of_unit;
  span_of_unit.resize(counts.size(), UnitSpan{});
  UnitSpan* span = span_of_unit.data();

  const simd::Level lv = simd::active_level();
  const bool best_fit = cfg.order == PackOrder::kBestFitDecreasing;
  const ItemsSoA items1 = sorted_items(counts, /*write1_phase=*/true, cfg);
  const u32* it1_unit = items1.unit.data();
  const u32* it1_cur = items1.current.data();
  r.write1_queue.resize_uninitialized(items1.size());
  Write1Slot* q1 = r.write1_queue.data();
  for (std::size_t i = 0; i < items1.size(); ++i) {
    Write1Slot slot;
    slot.unit = it1_unit[i];
    slot.current = it1_cur[i];
    if (slot.current > cfg.budget) {
      // Over-budget item: ceil(current/budget) dedicated serial passes.
      slot.passes = static_cast<u32>(ceil_div(slot.current, cfg.budget));
      slot.write_unit = static_cast<u32>(wu_power.size());
      const u32 remainder = slot.current - (slot.passes - 1) * cfg.budget;
      for (u32 p = 0; p + 1 < slot.passes; ++p) wu_power.push_back(cfg.budget);
      wu_power.push_back(remainder);
    } else {
      // A slot fits iff its occupancy <= budget - current (no overflow:
      // current <= budget here).
      const u32 n = static_cast<u32>(wu_power.size());
      const u32 limit = cfg.budget - slot.current;
      const u32 target =
          best_fit
              ? best_fit_target(wu_power.data(), n, limit, 0, 0, r.fit_checks)
              : first_fit_target(wu_power.data(), n, limit, 0, 0,
                                 r.fit_checks, lv);
      if (target == n) wu_power.push_back(0);
      wu_power.data()[target] += slot.current;
      slot.write_unit = target;
    }
    TW_ASSERT(slot.unit < span_of_unit.size());
    span[slot.unit] = {slot.write_unit, slot.write_unit + slot.passes};
    q1[i] = slot;
  }
  r.result = static_cast<u32>(wu_power.size());

  // ---- Phase 2: write-0s into sub-write-units. ---------------------------
  // Expand per-write-unit power to per-sub-slot power; trailing sub-slots
  // are appended on demand with a fresh budget.
  auto& slots = r.slot_power;
  slots.resize_uninitialized(static_cast<std::size_t>(r.result) * cfg.k);
  {
    u32* sp = slots.data();
    const u32* wu = wu_power.data();
    for (u32 w = 0; w < r.result; ++w) {
      for (u32 s = 0; s < cfg.k; ++s) sp[w * cfg.k + s] = wu[w];
    }
  }
  const u32 wu_slot_count = static_cast<u32>(slots.size());

  const ItemsSoA items0 = sorted_items(counts, /*write1_phase=*/false, cfg);
  const u32* it0_unit = items0.unit.data();
  const u32* it0_cur = items0.current.data();
  r.write0_queue.resize_uninitialized(items0.size());
  Write0Slot* q0 = r.write0_queue.data();
  for (std::size_t i = 0; i < items0.size(); ++i) {
    Write0Slot slot;
    slot.unit = it0_unit[i];
    slot.current = it0_cur[i];
    TW_ASSERT(slot.unit < span_of_unit.size());
    const auto [self_lo, self_hi] = span[slot.unit];
    const u32 forbid_lo = cfg.forbid_self_overlap ? self_lo * cfg.k : 0;
    const u32 forbid_hi = cfg.forbid_self_overlap ? self_hi * cfg.k : 0;

    if (slot.current > cfg.budget) {
      // Over-budget write-0: dedicated trailing sub-slots.
      slot.passes = static_cast<u32>(ceil_div(slot.current, cfg.budget));
      slot.sub_slot = static_cast<u32>(slots.size());
      const u32 remainder = slot.current - (slot.passes - 1) * cfg.budget;
      for (u32 p = 0; p + 1 < slot.passes; ++p) slots.push_back(cfg.budget);
      slots.push_back(remainder);
      r.subresult += slot.passes;
    } else {
      const u32 n = static_cast<u32>(slots.size());
      const u32 limit = cfg.budget - slot.current;
      const u32 target =
          best_fit ? best_fit_target(slots.data(), n, limit, forbid_lo,
                                     forbid_hi, r.fit_checks)
                   : first_fit_target(slots.data(), n, limit, forbid_lo,
                                      forbid_hi, r.fit_checks, lv);
      if (target == n) {
        slots.push_back(0);
        ++r.subresult;
      }
      slots.data()[target] += slot.current;
      slot.sub_slot = target;
    }
    q0[i] = slot;
  }
  TW_ENSURES(slots.size() == wu_slot_count + r.subresult);

  // Packing decisions for the observability layer: one instant per placed
  // item, distinguishing write-0s that stole an interspace sub-slot inside
  // the write-unit region from those that appended trailing sub-slots.
  // All records land at the enclosing operation's time base (the packing
  // itself is instantaneous at the analysis stage).
  if (trace::on<trace::Category::kPacker>()) {
    const Tick base = trace::g_tls.base;
    const u32 ptrack = trace::track_id(trace::Track::kPacker,
                                       trace::track_index(trace::g_tls.track));
    for (const auto& s : r.write1_queue) {
      trace::emit_instant(trace::Category::kPacker, trace::Op::kWrite1Pack,
                          ptrack, base, s.unit, s.write_unit);
    }
    for (const auto& s : r.write0_queue) {
      trace::emit_instant(trace::Category::kPacker,
                          s.sub_slot < wu_slot_count
                              ? trace::Op::kWrite0Steal
                              : trace::Op::kWrite0Trail,
                          ptrack, base, s.unit, s.sub_slot);
    }
  }
  return r;
}

double PackResult::power_utilization(u32 budget) const {
  if (slot_power.empty() || budget == 0) return 0.0;
  const u64 used = std::accumulate(slot_power.begin(), slot_power.end(),
                                   u64{0});
  return static_cast<double>(used) /
         (static_cast<double>(slot_power.size()) *
          static_cast<double>(budget));
}

void verify_pack(std::span<const UnitCounts> counts, const PackerConfig& cfg,
                 const PackResult& r) {
  // 1. Every unit with demand is scheduled exactly once per phase, with
  //    the correct current.
  std::vector<u32> seen1(counts.size(), 0), seen0(counts.size(), 0);
  for (const auto& s : r.write1_queue) {
    TW_ASSERT(s.unit < counts.size());
    ++seen1[s.unit];
    TW_ASSERT(s.current == counts[s.unit].n1);
    TW_ASSERT(s.write_unit + s.passes <= r.result);
  }
  for (const auto& s : r.write0_queue) {
    TW_ASSERT(s.unit < counts.size());
    ++seen0[s.unit];
    TW_ASSERT(s.current == counts[s.unit].n0 * cfg.l);
    TW_ASSERT(s.sub_slot + s.passes <= r.total_sub_slots(cfg.k));
  }
  for (const auto& c : counts) {
    TW_ASSERT(seen1[c.unit] == (c.n1 > 0 ? 1u : 0u));
    TW_ASSERT(seen0[c.unit] == (c.n0 > 0 ? 1u : 0u));
  }

  // 2. Recompute per-sub-slot power from the queues and check the budget.
  std::vector<u64> power(r.total_sub_slots(cfg.k), 0);
  auto charge = [&](u32 first_slot, u32 slot_count, u64 current) {
    // Spread an item's passes: each full pass draws the budget, the last
    // pass the remainder.
    u64 remaining = current;
    for (u32 s = 0; s < slot_count; ++s) {
      const u64 draw = std::min<u64>(remaining, cfg.budget);
      power[first_slot + s] += draw;
      remaining -= draw;
    }
    TW_ASSERT(remaining == 0);
  };
  for (const auto& s : r.write1_queue) {
    if (s.passes == 1) {
      for (u32 k = 0; k < cfg.k; ++k)
        power[s.write_unit * cfg.k + k] += s.current;
    } else {
      // Dedicated passes: charge pass p's current to all K slots of
      // write unit (write_unit + p).
      u64 remaining = s.current;
      for (u32 p = 0; p < s.passes; ++p) {
        const u64 draw = std::min<u64>(remaining, cfg.budget);
        for (u32 k = 0; k < cfg.k; ++k)
          power[(s.write_unit + p) * cfg.k + k] += draw;
        remaining -= draw;
      }
      TW_ASSERT(remaining == 0);
    }
  }
  for (const auto& s : r.write0_queue) {
    charge(s.sub_slot, s.passes, s.current);
  }
  for (std::size_t s = 0; s < power.size(); ++s) {
    TW_ASSERT(power[s] <= cfg.budget);
    TW_ASSERT(power[s] == r.slot_power[s]);
  }

  // 3. Self-overlap constraint.
  if (cfg.forbid_self_overlap) {
    std::vector<std::pair<u32, u32>> span(counts.size(), {0, 0});
    for (const auto& s : r.write1_queue)
      span[s.unit] = {s.write_unit * cfg.k, (s.write_unit + s.passes) * cfg.k};
    for (const auto& s : r.write0_queue) {
      const auto [lo, hi] = span[s.unit];
      if (hi == 0) continue;  // unit has no write-1
      TW_ASSERT(s.sub_slot + s.passes <= lo || s.sub_slot >= hi);
    }
  }
}

}  // namespace tw::core
