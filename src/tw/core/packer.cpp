#include "tw/core/packer.hpp"

#include <algorithm>
#include <numeric>
#include <utility>
#include <vector>

#include "tw/common/assert.hpp"
#include "tw/trace/emit.hpp"

namespace tw::core {
namespace {

/// Sort order for both phases: decreasing current demand, index ascending
/// for determinism.
struct Item {
  u32 unit;
  u32 current;
};

using ItemVec = InlineVec<Item, pcm::kMaxUnitsPerLine>;

ItemVec sorted_items(std::span<const UnitCounts> counts, bool write1_phase,
                     const PackerConfig& cfg) {
  ItemVec items;
  const bool ordered = cfg.order != PackOrder::kFirstFitArrival;
  for (const auto& c : counts) {
    const u32 demand = write1_phase ? c.n1 : c.n0 * cfg.l;
    if (demand == 0) continue;
    const Item it{c.unit, demand};
    if (!ordered) {
      items.push_back(it);
      continue;
    }
    // Insertion sort: sequences are line-bounded (hardware sorts 8 items
    // in a handful of cycles; here it also skips std::sort's dispatch).
    items.push_back(it);
    std::size_t j = items.size() - 1;
    while (j > 0 && (items[j - 1].current < it.current ||
                     (items[j - 1].current == it.current &&
                      items[j - 1].unit > it.unit))) {
      items[j] = items[j - 1];
      --j;
    }
    items[j] = it;
  }
  return items;
}

}  // namespace

PackResult pack(std::span<const UnitCounts> counts, const PackerConfig& cfg) {
  TW_EXPECTS(cfg.valid());
  PackResult r;

  // ---- Phase 1: write-1s into write units. -------------------------------
  // During this phase every sub-slot of a write unit carries the same
  // power, so track one value per write unit.
  InlineVec<u32, pcm::kMaxUnitsPerLine> wu_power;  // SET-current per unit
  // Self-overlap bookkeeping: which write units unit i's write-1 spans.
  struct UnitSpan {
    u32 lo = 0;
    u32 hi = 0;
  };
  InlineVec<UnitSpan, pcm::kMaxUnitsPerLine> span_of_unit;
  span_of_unit.resize(counts.size(), UnitSpan{});

  const bool best_fit = cfg.order == PackOrder::kBestFitDecreasing;
  for (const Item& it : sorted_items(counts, /*write1_phase=*/true, cfg)) {
    Write1Slot slot;
    slot.unit = it.unit;
    slot.current = it.current;
    if (it.current > cfg.budget) {
      // Over-budget item: ceil(current/budget) dedicated serial passes.
      slot.passes = static_cast<u32>(ceil_div(it.current, cfg.budget));
      slot.write_unit = static_cast<u32>(wu_power.size());
      const u32 remainder = it.current - (slot.passes - 1) * cfg.budget;
      for (u32 p = 0; p + 1 < slot.passes; ++p) wu_power.push_back(cfg.budget);
      wu_power.push_back(remainder);
    } else {
      u32 target = static_cast<u32>(wu_power.size());
      for (u32 w = 0; w < wu_power.size(); ++w) {
        ++r.fit_checks;
        if (wu_power[w] + it.current > cfg.budget) continue;
        if (!best_fit) {
          target = w;
          break;
        }
        // Best fit: highest occupancy that still accommodates the item.
        if (target == wu_power.size() || wu_power[w] > wu_power[target]) {
          target = w;
        }
      }
      if (target == wu_power.size()) wu_power.push_back(0);
      wu_power[target] += it.current;
      slot.write_unit = target;
    }
    TW_ASSERT(it.unit < span_of_unit.size());
    span_of_unit[it.unit] = {slot.write_unit, slot.write_unit + slot.passes};
    r.write1_queue.push_back(slot);
  }
  r.result = static_cast<u32>(wu_power.size());

  // ---- Phase 2: write-0s into sub-write-units. ---------------------------
  // Expand per-write-unit power to per-sub-slot power; trailing sub-slots
  // are appended on demand with a fresh budget.
  auto& slots = r.slot_power;
  slots.reserve(static_cast<std::size_t>(r.result) * cfg.k);
  for (u32 w = 0; w < r.result; ++w) {
    for (u32 s = 0; s < cfg.k; ++s) slots.push_back(wu_power[w]);
  }
  const u32 wu_slot_count = static_cast<u32>(slots.size());

  for (const Item& it : sorted_items(counts, /*write1_phase=*/false, cfg)) {
    Write0Slot slot;
    slot.unit = it.unit;
    slot.current = it.current;
    const auto [self_lo, self_hi] = span_of_unit[it.unit];
    const u32 forbid_lo = cfg.forbid_self_overlap ? self_lo * cfg.k : 0;
    const u32 forbid_hi = cfg.forbid_self_overlap ? self_hi * cfg.k : 0;

    if (it.current > cfg.budget) {
      // Over-budget write-0: dedicated trailing sub-slots.
      slot.passes = static_cast<u32>(ceil_div(it.current, cfg.budget));
      slot.sub_slot = static_cast<u32>(slots.size());
      const u32 remainder = it.current - (slot.passes - 1) * cfg.budget;
      for (u32 p = 0; p + 1 < slot.passes; ++p) slots.push_back(cfg.budget);
      slots.push_back(remainder);
      r.subresult += slot.passes;
    } else {
      u32 target = static_cast<u32>(slots.size());
      for (u32 s = 0; s < slots.size(); ++s) {
        ++r.fit_checks;
        if (s >= forbid_lo && s < forbid_hi) continue;
        if (slots[s] + it.current > cfg.budget) continue;
        if (!best_fit) {
          target = s;
          break;
        }
        if (target == slots.size() || slots[s] > slots[target]) target = s;
      }
      if (target == slots.size()) {
        slots.push_back(0);
        ++r.subresult;
      }
      slots[target] += it.current;
      slot.sub_slot = target;
    }
    r.write0_queue.push_back(slot);
  }
  TW_ENSURES(slots.size() == wu_slot_count + r.subresult);

  // Packing decisions for the observability layer: one instant per placed
  // item, distinguishing write-0s that stole an interspace sub-slot inside
  // the write-unit region from those that appended trailing sub-slots.
  // All records land at the enclosing operation's time base (the packing
  // itself is instantaneous at the analysis stage).
  if (trace::on<trace::Category::kPacker>()) {
    const Tick base = trace::g_tls.base;
    const u32 ptrack = trace::track_id(trace::Track::kPacker,
                                       trace::track_index(trace::g_tls.track));
    for (const auto& s : r.write1_queue) {
      trace::emit_instant(trace::Category::kPacker, trace::Op::kWrite1Pack,
                          ptrack, base, s.unit, s.write_unit);
    }
    for (const auto& s : r.write0_queue) {
      trace::emit_instant(trace::Category::kPacker,
                          s.sub_slot < wu_slot_count
                              ? trace::Op::kWrite0Steal
                              : trace::Op::kWrite0Trail,
                          ptrack, base, s.unit, s.sub_slot);
    }
  }
  return r;
}

double PackResult::power_utilization(u32 budget) const {
  if (slot_power.empty() || budget == 0) return 0.0;
  const u64 used = std::accumulate(slot_power.begin(), slot_power.end(),
                                   u64{0});
  return static_cast<double>(used) /
         (static_cast<double>(slot_power.size()) *
          static_cast<double>(budget));
}

void verify_pack(std::span<const UnitCounts> counts, const PackerConfig& cfg,
                 const PackResult& r) {
  // 1. Every unit with demand is scheduled exactly once per phase, with
  //    the correct current.
  std::vector<u32> seen1(counts.size(), 0), seen0(counts.size(), 0);
  for (const auto& s : r.write1_queue) {
    TW_ASSERT(s.unit < counts.size());
    ++seen1[s.unit];
    TW_ASSERT(s.current == counts[s.unit].n1);
    TW_ASSERT(s.write_unit + s.passes <= r.result);
  }
  for (const auto& s : r.write0_queue) {
    TW_ASSERT(s.unit < counts.size());
    ++seen0[s.unit];
    TW_ASSERT(s.current == counts[s.unit].n0 * cfg.l);
    TW_ASSERT(s.sub_slot + s.passes <= r.total_sub_slots(cfg.k));
  }
  for (const auto& c : counts) {
    TW_ASSERT(seen1[c.unit] == (c.n1 > 0 ? 1u : 0u));
    TW_ASSERT(seen0[c.unit] == (c.n0 > 0 ? 1u : 0u));
  }

  // 2. Recompute per-sub-slot power from the queues and check the budget.
  std::vector<u64> power(r.total_sub_slots(cfg.k), 0);
  auto charge = [&](u32 first_slot, u32 slot_count, u64 current) {
    // Spread an item's passes: each full pass draws the budget, the last
    // pass the remainder.
    u64 remaining = current;
    for (u32 s = 0; s < slot_count; ++s) {
      const u64 draw = std::min<u64>(remaining, cfg.budget);
      power[first_slot + s] += draw;
      remaining -= draw;
    }
    TW_ASSERT(remaining == 0);
  };
  for (const auto& s : r.write1_queue) {
    if (s.passes == 1) {
      for (u32 k = 0; k < cfg.k; ++k)
        power[s.write_unit * cfg.k + k] += s.current;
    } else {
      // Dedicated passes: charge pass p's current to all K slots of
      // write unit (write_unit + p).
      u64 remaining = s.current;
      for (u32 p = 0; p < s.passes; ++p) {
        const u64 draw = std::min<u64>(remaining, cfg.budget);
        for (u32 k = 0; k < cfg.k; ++k)
          power[(s.write_unit + p) * cfg.k + k] += draw;
        remaining -= draw;
      }
      TW_ASSERT(remaining == 0);
    }
  }
  for (const auto& s : r.write0_queue) {
    charge(s.sub_slot, s.passes, s.current);
  }
  for (std::size_t s = 0; s < power.size(); ++s) {
    TW_ASSERT(power[s] <= cfg.budget);
    TW_ASSERT(power[s] == r.slot_power[s]);
  }

  // 3. Self-overlap constraint.
  if (cfg.forbid_self_overlap) {
    std::vector<std::pair<u32, u32>> span(counts.size(), {0, 0});
    for (const auto& s : r.write1_queue)
      span[s.unit] = {s.write_unit * cfg.k, (s.write_unit + s.passes) * cfg.k};
    for (const auto& s : r.write0_queue) {
      const auto [lo, hi] = span[s.unit];
      if (hi == 0) continue;  // unit has no write-1
      TW_ASSERT(s.sub_slot + s.passes <= lo || s.sub_slot >= hi);
    }
  }
}

}  // namespace tw::core
