#pragma once
// Write-driver model (paper Fig. 9): program pulses reach a cell only when
// the PROG-enable signal (old XOR new, from the read buffer) AND the
// matching SET/RESET-enable signal (from the FSM's write signal) are both
// active. This is what makes Tetris Write pulse exactly the changed bits,
// split across the two FSM passes.

#include "tw/common/bits.hpp"
#include "tw/pcm/array.hpp"

namespace tw::core {

/// Which write signal the FSM is driving.
enum class WritePass : u8 {
  kSet,    ///< FSM1: program bits transitioning 0 -> 1
  kReset,  ///< FSM0: program bits transitioning 1 -> 0
};

/// Observes every program pulse the driver issues — the verify
/// subsystem's hook layer (tw/verify/InvariantMonitor implements this to
/// prove the two FSMs never drive the same cell within one line write).
class PulseObserver {
 public:
  virtual ~PulseObserver() = default;
  /// One pulse driven into absolute cell `bit` by `pass`.
  virtual void on_pulse(u64 bit, WritePass pass,
                        pcm::ProgramResult result) = 0;
};

/// Drive one pass of a data-unit write into the array.
///
/// `old_word` is the read-buffer content (what the cells held), `new_word`
/// the data from the DX mux. PROG-enable = old XOR new; only bits whose
/// transition direction matches `pass` are pulsed. Returns the transitions
/// performed (one field is always zero). `observer`, when non-null, is
/// notified of every pulse.
BitTransitions drive_pass(pcm::PcmArray& array, u64 base_bit, u64 old_word,
                          u64 new_word, u32 bits, WritePass pass,
                          PulseObserver* observer = nullptr);

/// Convenience: both passes (SET then RESET), as a full data-unit write.
BitTransitions drive_unit(pcm::PcmArray& array, u64 base_bit, u64 old_word,
                          u64 new_word, u32 bits,
                          PulseObserver* observer = nullptr);

}  // namespace tw::core
