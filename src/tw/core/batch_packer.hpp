#pragma once
// BatchPacker: the multi-line Tetris analysis stage. Takes the
// controller's bank-indexed write batch (up to K same-bank lines, age
// ordered) as the candidate set and packs the write units of *all* lines
// into one power-budget schedule — the joint packing generalizes paper
// Alg. 2 from one cache line to the whole batch, composing with
// partition-level overlap in the spirit of PALP. Ordering rules: the
// input span is the controller's age order and is never permuted here;
// only the power-slot placement of unit demands is reordered (FFD), so
// age-ordering and drain-cutoff decisions stay entirely with the
// controller.

#include <span>
#include <vector>

#include "tw/core/packer.hpp"
#include "tw/core/read_stage.hpp"
#include "tw/pcm/line.hpp"
#include "tw/pcm/params.hpp"

namespace tw::core {

/// Knobs the batch stage needs from the enclosing scheme.
struct BatchPackerOptions {
  /// Without a global charge pump, charge each unit chips x its worst
  /// chip's demand so no chip exceeds its local budget share.
  bool respect_gcp_setting = true;
  /// Re-verify every joint schedule with verify_pack (TW_VERIFY / tests).
  bool self_check = false;
};

/// The joint read + packing result for one batch of same-bank lines.
struct BatchPackOutcome {
  std::vector<ReadStageResult> reads;  ///< per line, input (age) order
  std::vector<UnitCounts> counts;      ///< concatenated, unit ids offset
  PackResult pack;                     ///< one schedule over all lines
  u32 lines = 0;
  /// Distinct bank partitions the batch's lines land in (0 when the
  /// caller supplied no placement): the PALP spread the controller's
  /// gather achieved — K lines in K partitions leave the most sense amps
  /// free for overlapped reads.
  u32 partition_spread = 0;

  /// Budget utilization of the packed schedule (batch occupancy).
  double occupancy(u32 budget) const {
    return pack.power_utilization(budget);
  }
};

/// Stateless packing stage; cheap to construct per call (holds a config
/// reference only). One instance must not outlive its PcmConfig.
class BatchPacker {
 public:
  BatchPacker(const pcm::PcmConfig& cfg, BatchPackerOptions opts)
      : cfg_(cfg), opts_(opts) {}

  /// Per-line packing counts: the read-stage counts with the per-chip
  /// worst-case scaling applied (when the config has no global charge
  /// pump) and unit ids offset by `unit_base` for concatenation.
  CountsVec line_counts(const pcm::LineBuf& line, const ReadStageResult& read,
                        u32 unit_base) const;

  /// Run the read stage over every line and pack all unit demands into
  /// one schedule under `pcfg`. Emits a kBatchPack trace instant (lines,
  /// occupancy in per-mille) when packer tracing is live.
  BatchPackOutcome pack_lines(std::span<pcm::LineBuf* const> lines,
                              std::span<const pcm::LogicalLine> datas,
                              const PackerConfig& pcfg) const;

  /// Partition-aware variant (PALP): `partitions[i]` is the bank-local
  /// partition line i programs. Packing is identical — partitions share
  /// one charge pump, so the budget is bank-global — but the outcome
  /// records the distinct-partition spread and a kPalpBatchSpread trace
  /// instant when palp tracing is live.
  BatchPackOutcome pack_lines(std::span<pcm::LineBuf* const> lines,
                              std::span<const pcm::LogicalLine> datas,
                              const PackerConfig& pcfg,
                              std::span<const u32> partitions) const;

 private:
  const pcm::PcmConfig& cfg_;
  BatchPackerOptions opts_;
};

}  // namespace tw::core
