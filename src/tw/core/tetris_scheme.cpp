#include "tw/core/tetris_scheme.hpp"

#include <algorithm>

#include "tw/common/env.hpp"
#include "tw/core/fsm.hpp"
#include "tw/trace/emit.hpp"

namespace tw::core {
namespace {

/// Per-chip transition demand of one unit write: bits [c*w, (c+1)*w) of
/// the unit live on chip c. Returns the worst chip's SET and RESET counts.
struct ChipWorst {
  u32 sets = 0;
  u32 resets = 0;
};

ChipWorst worst_chip_demand(u64 old_cells, u64 new_cells, u32 unit_bits,
                            u32 chips) {
  ChipWorst w;
  const u32 per_chip = unit_bits / chips;
  const u64 diff = (old_cells ^ new_cells) & low_mask(unit_bits);
  for (u32 c = 0; c < chips; ++c) {
    const u64 mask = low_mask(per_chip) << (c * per_chip);
    const u32 s = popcount(diff & new_cells & mask);
    const u32 r = popcount(diff & old_cells & mask);
    w.sets = std::max(w.sets, s);
    w.resets = std::max(w.resets, r);
  }
  return w;
}

}  // namespace

TetrisScheme::TetrisScheme(const pcm::PcmConfig& cfg, TetrisOptions opts)
    : WriteScheme(cfg), opts_(opts) {
  // TW_VERIFY=1 invariant mode: every production schedule is re-verified
  // (verify_pack) and re-executed through the FSM model on every write.
  if (verify_env_enabled()) opts_.self_check = true;
}

PackerConfig TetrisScheme::make_packer_config() const {
  PackerConfig p;
  p.k = cfg_.k();
  p.l = cfg_.l();
  p.budget = effective_budget();
  p.forbid_self_overlap = opts_.forbid_self_overlap;
  p.order = opts_.pack_order;
  return p;
}

CountsVec TetrisScheme::packing_counts(const pcm::LineBuf& line,
                                       const ReadStageResult& read,
                                       u32 unit_base) const {
  CountsVec counts = read.counts;
  const bool per_chip =
      opts_.respect_gcp_setting && !cfg_.power.global_charge_pump &&
      cfg_.geometry.chips_per_bank > 1 &&
      cfg_.geometry.data_unit_bits % cfg_.geometry.chips_per_bank == 0;
  for (u32 i = 0; i < counts.size(); ++i) {
    if (per_chip) {
      // Per-chip budgets bind: charge each unit chips x its worst chip's
      // demand so that no chip can exceed its local share of the budget.
      const auto& p = read.plans[i];
      const ChipWorst w =
          worst_chip_demand(line.cell(i), p.new_cells,
                            cfg_.geometry.data_unit_bits,
                            cfg_.geometry.chips_per_bank);
      // A tag-only transition keeps a nonzero demand of 1.
      if (counts[i].n1 > 0) {
        counts[i].n1 =
            std::max(w.sets * cfg_.geometry.chips_per_bank, 1u);
      }
      if (counts[i].n0 > 0) {
        counts[i].n0 =
            std::max(w.resets * cfg_.geometry.chips_per_bank, 1u);
      }
    }
    counts[i].unit += unit_base;
  }
  return counts;
}

TetrisAnalysis TetrisScheme::analyze(const pcm::LineBuf& line,
                                     const pcm::LogicalLine& next) const {
  TetrisAnalysis a;
  a.read = read_stage(line, next, cfg_.geometry.data_unit_bits);
  a.packer_cfg = make_packer_config();

  const CountsVec counts = packing_counts(line, a.read, 0);
  a.pack = pack(counts, a.packer_cfg);
  if (opts_.self_check) {
    verify_pack(counts, a.packer_cfg, a.pack);
    (void)execute_fsms(a.pack, a.packer_cfg, cfg_.timing);
  }
  return a;
}

Tick TetrisScheme::plan_retry(const BitTransitions& failed, u32 attempt,
                              double widen) const {
  TW_EXPECTS(attempt >= 1);
  TW_EXPECTS(widen >= 1.0);
  if (failed.total() == 0) return 0;
  const u32 units = cfg_.geometry.units_per_line();
  u32 n1[pcm::kMaxUnitsPerLine] = {};
  u32 n0[pcm::kMaxUnitsPerLine] = {};
  for (u32 i = 0; i < failed.sets; ++i) ++n1[i % units];
  for (u32 i = 0; i < failed.resets; ++i) ++n0[i % units];
  CountsVec counts;
  for (u32 u = 0; u < units; ++u) {
    if (n1[u] == 0 && n0[u] == 0) continue;
    UnitCounts c;
    c.unit = u;
    c.n1 = n1[u];
    c.n0 = n0[u];
    counts.push_back(c);
  }
  const PackerConfig pcfg = make_packer_config();
  const PackResult packed = pack(counts, pcfg);
  const Tick sub = cfg_.timing.t_set / pcfg.k;
  const Tick write_phase =
      packed.result * cfg_.timing.t_set + packed.subresult * sub;
  // Exponential pulse widening stretches the write phase; the verify read
  // and re-analysis ride at nominal speed. Repeated multiplication (no
  // std::pow) for cross-compiler bit-identity.
  double factor = 1.0;
  for (u32 i = 0; i < attempt; ++i) factor *= widen;
  return opts_.analysis_latency() +
         static_cast<Tick>(static_cast<double>(write_phase) * factor);
}

schemes::ServicePlan TetrisScheme::plan_write(
    pcm::LineBuf& line, const pcm::LogicalLine& next) const {
  const TetrisAnalysis a = analyze(line, next);

  // Simulation normally stops at the packed schedule (the FSM expansion
  // is only needed for its length, already known). When FSM tracing is
  // live, expand it anyway so the trace shows per-pulse SET/RESET spans;
  // self-check mode already expanded it inside analyze().
  if (trace::on<trace::Category::kFsm>() && !opts_.self_check) {
    (void)execute_fsms(a.pack, a.packer_cfg, cfg_.timing);
  }

  schemes::ServicePlan s;
  s.read_before_write = true;
  s.analysis_ticks = opts_.analysis_latency();
  s.flipped_units = a.read.flipped_units;
  s.programmed = a.read.total();
  s.silent = s.programmed.total() == 0;

  const Tick sub = cfg_.timing.t_set / a.packer_cfg.k;
  const Tick write_phase =
      a.pack.result * cfg_.timing.t_set + a.pack.subresult * sub;
  s.latency = cfg_.timing.t_read + s.analysis_ticks + write_phase;
  s.write_units = a.pack.write_unit_equiv(a.packer_cfg.k);
  s.power_util = a.pack.power_utilization(a.packer_cfg.budget);

  schemes::apply_plans(line, a.read.plans);
  return s;
}

schemes::BatchServicePlan TetrisScheme::plan_write_batch(
    std::span<pcm::LineBuf*> lines,
    std::span<const pcm::LogicalLine> datas) const {
  TW_EXPECTS(lines.size() == datas.size());
  TW_EXPECTS(!lines.empty());
  const u32 units = cfg_.geometry.units_per_line();
  const PackerConfig pcfg = make_packer_config();

  // Read stage per line; counts concatenated with per-line unit offsets.
  std::vector<ReadStageResult> reads;
  std::vector<UnitCounts> all_counts;
  reads.reserve(lines.size());
  all_counts.reserve(lines.size() * units);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    reads.push_back(
        read_stage(*lines[i], datas[i], cfg_.geometry.data_unit_bits));
    const auto counts = packing_counts(*lines[i], reads.back(),
                                       static_cast<u32>(i) * units);
    all_counts.insert(all_counts.end(), counts.begin(), counts.end());
  }

  // One joint packing over every unit of every line.
  const PackResult packed = pack(all_counts, pcfg);
  if (opts_.self_check) verify_pack(all_counts, pcfg, packed);
  if (trace::on<trace::Category::kFsm>()) {
    (void)execute_fsms(packed, pcfg, cfg_.timing);
  }

  const Tick sub = cfg_.timing.t_set / pcfg.k;
  const Tick write_phase =
      packed.result * cfg_.timing.t_set + packed.subresult * sub;
  // Reads-before-write serialize on the bank; each line carries its own
  // analysis (its own Reg0/Reg1 + analyzer pass).
  const Tick overhead =
      lines.size() * (cfg_.timing.t_read + opts_.analysis_latency());

  schemes::BatchServicePlan batch;
  batch.latency = overhead + write_phase;
  const double shared_units =
      packed.write_unit_equiv(pcfg.k) / static_cast<double>(lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    schemes::ServicePlan s;
    s.read_before_write = true;
    s.analysis_ticks = opts_.analysis_latency();
    s.flipped_units = reads[i].flipped_units;
    s.programmed = reads[i].total();
    s.silent = s.programmed.total() == 0;
    s.latency = batch.latency;  // all lines complete together
    s.write_units = shared_units;
    s.power_util = packed.power_utilization(pcfg.budget);
    schemes::apply_plans(*lines[i], reads[i].plans);
    batch.per_line.push_back(std::move(s));
  }
  return batch;
}

}  // namespace tw::core
