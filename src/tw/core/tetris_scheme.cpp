#include "tw/core/tetris_scheme.hpp"

#include <algorithm>

#include "tw/common/env.hpp"
#include "tw/core/batch_packer.hpp"
#include "tw/core/fsm.hpp"
#include "tw/trace/emit.hpp"

namespace tw::core {

TetrisScheme::TetrisScheme(const pcm::PcmConfig& cfg, TetrisOptions opts)
    : WriteScheme(cfg), opts_(opts) {
  // TW_VERIFY=1 invariant mode: every production schedule is re-verified
  // (verify_pack) and re-executed through the FSM model on every write.
  if (verify_env_enabled()) opts_.self_check = true;
}

PackerConfig TetrisScheme::make_packer_config() const {
  PackerConfig p;
  p.k = cfg_.k();
  p.l = cfg_.l();
  p.budget = effective_budget();
  p.forbid_self_overlap = opts_.forbid_self_overlap;
  p.order = opts_.pack_order;
  return p;
}

BatchPackerOptions TetrisScheme::batch_packer_options() const {
  return BatchPackerOptions{opts_.respect_gcp_setting, opts_.self_check};
}

CountsVec TetrisScheme::packing_counts(const pcm::LineBuf& line,
                                       const ReadStageResult& read,
                                       u32 unit_base) const {
  return BatchPacker(cfg_, batch_packer_options())
      .line_counts(line, read, unit_base);
}

TetrisAnalysis TetrisScheme::analyze(const pcm::LineBuf& line,
                                     const pcm::LogicalLine& next) const {
  TetrisAnalysis a;
  a.read = read_stage(line, next, cfg_.geometry.data_unit_bits);
  a.packer_cfg = make_packer_config();

  const CountsVec counts = packing_counts(line, a.read, 0);
  a.pack = pack(counts, a.packer_cfg);
  if (opts_.self_check) {
    verify_pack(counts, a.packer_cfg, a.pack);
    (void)execute_fsms(a.pack, a.packer_cfg, cfg_.timing);
  }
  return a;
}

Tick TetrisScheme::plan_retry(const BitTransitions& failed, u32 attempt,
                              double widen) const {
  TW_EXPECTS(attempt >= 1);
  TW_EXPECTS(widen >= 1.0);
  if (failed.total() == 0) return 0;
  const u32 units = cfg_.geometry.units_per_line();
  u32 n1[pcm::kMaxUnitsPerLine] = {};
  u32 n0[pcm::kMaxUnitsPerLine] = {};
  for (u32 i = 0; i < failed.sets; ++i) ++n1[i % units];
  for (u32 i = 0; i < failed.resets; ++i) ++n0[i % units];
  CountsVec counts;
  for (u32 u = 0; u < units; ++u) {
    if (n1[u] == 0 && n0[u] == 0) continue;
    UnitCounts c;
    c.unit = u;
    c.n1 = n1[u];
    c.n0 = n0[u];
    counts.push_back(c);
  }
  const PackerConfig pcfg = make_packer_config();
  const PackResult packed = pack(counts, pcfg);
  const Tick sub = cfg_.timing.t_set / pcfg.k;
  const Tick write_phase =
      packed.result * cfg_.timing.t_set + packed.subresult * sub;
  // Exponential pulse widening stretches the write phase; the verify read
  // and re-analysis ride at nominal speed. Repeated multiplication (no
  // std::pow) for cross-compiler bit-identity.
  double factor = 1.0;
  for (u32 i = 0; i < attempt; ++i) factor *= widen;
  return opts_.analysis_latency() +
         static_cast<Tick>(static_cast<double>(write_phase) * factor);
}

schemes::ServicePlan TetrisScheme::plan_write(
    pcm::LineBuf& line, const pcm::LogicalLine& next) const {
  const TetrisAnalysis a = analyze(line, next);

  // Simulation normally stops at the packed schedule (the FSM expansion
  // is only needed for its length, already known). When FSM tracing is
  // live, expand it anyway so the trace shows per-pulse SET/RESET spans;
  // self-check mode already expanded it inside analyze().
  if (trace::on<trace::Category::kFsm>() && !opts_.self_check) {
    (void)execute_fsms(a.pack, a.packer_cfg, cfg_.timing);
  }

  schemes::ServicePlan s;
  s.read_before_write = true;
  s.analysis_ticks = opts_.analysis_latency();
  s.flipped_units = a.read.flipped_units;
  s.programmed = a.read.total();
  s.silent = s.programmed.total() == 0;

  const Tick sub = cfg_.timing.t_set / a.packer_cfg.k;
  const Tick write_phase =
      a.pack.result * cfg_.timing.t_set + a.pack.subresult * sub;
  s.latency = cfg_.timing.t_read + s.analysis_ticks + write_phase;
  s.write_units = a.pack.write_unit_equiv(a.packer_cfg.k);
  s.power_util = a.pack.power_utilization(a.packer_cfg.budget);

  schemes::apply_plans(line, a.read.plans);
  return s;
}

schemes::BatchServicePlan TetrisScheme::plan_write_batch(
    std::span<pcm::LineBuf*> lines,
    std::span<const pcm::LogicalLine> datas) const {
  TW_EXPECTS(lines.size() == datas.size());
  TW_EXPECTS(!lines.empty());
  const PackerConfig pcfg = make_packer_config();
  const BatchPackOutcome joint =
      BatchPacker(cfg_, batch_packer_options())
          .pack_lines(lines, datas, pcfg);
  return finish_batch(joint, lines, pcfg);
}

schemes::BatchServicePlan TetrisScheme::plan_write_batch(
    std::span<pcm::LineBuf*> lines,
    std::span<const pcm::LogicalLine> datas,
    std::span<const u32> partitions) const {
  TW_EXPECTS(lines.size() == datas.size());
  TW_EXPECTS(!lines.empty());
  const PackerConfig pcfg = make_packer_config();
  const BatchPackOutcome joint =
      BatchPacker(cfg_, batch_packer_options())
          .pack_lines(lines, datas, pcfg, partitions);
  return finish_batch(joint, lines, pcfg);
}

schemes::BatchServicePlan TetrisScheme::finish_batch(
    const BatchPackOutcome& joint, std::span<pcm::LineBuf*> lines,
    const PackerConfig& pcfg) const {
  if (trace::on<trace::Category::kFsm>()) {
    (void)execute_fsms(joint.pack, pcfg, cfg_.timing);
  }

  const Tick sub = cfg_.timing.t_set / pcfg.k;
  const Tick write_phase =
      joint.pack.result * cfg_.timing.t_set + joint.pack.subresult * sub;
  // Reads-before-write serialize on the bank; each line carries its own
  // analysis (its own Reg0/Reg1 + analyzer pass).
  const Tick overhead =
      lines.size() * (cfg_.timing.t_read + opts_.analysis_latency());

  schemes::BatchServicePlan batch;
  batch.latency = overhead + write_phase;
  batch.packed_lines = joint.lines;
  batch.occupancy = joint.occupancy(pcfg.budget);
  const double shared_units =
      joint.pack.write_unit_equiv(pcfg.k) / static_cast<double>(lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const ReadStageResult& read = joint.reads[i];
    schemes::ServicePlan s;
    s.read_before_write = true;
    s.analysis_ticks = opts_.analysis_latency();
    s.flipped_units = read.flipped_units;
    s.programmed = read.total();
    s.silent = s.programmed.total() == 0;
    s.latency = batch.latency;  // all lines complete together
    s.write_units = shared_units;
    s.power_util = batch.occupancy;
    schemes::apply_plans(*lines[i], read.plans);
    batch.per_line.push_back(std::move(s));
  }
  return batch;
}

}  // namespace tw::core
