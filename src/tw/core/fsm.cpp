#include "tw/core/fsm.hpp"

#include <algorithm>

#include "tw/common/assert.hpp"
#include "tw/trace/emit.hpp"

namespace tw::core {

// The local FsmTrace variable below shadows the tw::trace namespace.
namespace ttrace = tw::trace;

FsmTrace execute_fsms(const PackResult& pack, const PackerConfig& cfg,
                      const pcm::TimingParams& timing) {
  TW_EXPECTS(cfg.valid());
  const Tick t_set = timing.t_set;
  const Tick sub = t_set / cfg.k;  // sub-write-unit duration
  TW_EXPECTS(sub >= timing.t_reset);  // a RESET pulse fits in a sub-slot

  // Start tick of global sub-slot s: write units are exactly K sub-slots;
  // trailing sub-slots continue after the last write unit.
  const u32 wu_slots = pack.result * cfg.k;
  auto slot_start = [&](u32 s) -> Tick {
    if (s < wu_slots) return (s / cfg.k) * t_set + (s % cfg.k) * sub;
    return pack.result * t_set + (s - wu_slots) * sub;
  };

  FsmTrace trace;
  trace.events.reserve(pack.write1_queue.size() + pack.write0_queue.size());

  // FSM1: drive each write-1 for a full Tset per pass (one pass unless the
  // unit's demand exceeded the whole budget).
  for (const auto& w : pack.write1_queue) {
    for (u32 p = 0; p < w.passes; ++p) {
      FsmEvent e;
      e.fsm = 1;
      e.unit = w.unit;
      e.slot = w.write_unit + p;
      const u64 remaining =
          static_cast<u64>(w.current) - std::min<u64>(w.current,
                                                      u64{cfg.budget} * p);
      e.current = static_cast<u32>(std::min<u64>(remaining, cfg.budget));
      e.start = (w.write_unit + p) * t_set;
      e.end = (w.write_unit + p + 1) * t_set;
      trace.events.push_back(e);
    }
  }
  // FSM0: fire a Treset pulse at each assigned sub-slot boundary.
  for (const auto& w : pack.write0_queue) {
    for (u32 p = 0; p < w.passes; ++p) {
      FsmEvent e;
      e.fsm = 0;
      e.unit = w.unit;
      e.slot = w.sub_slot + p;
      const u64 remaining =
          static_cast<u64>(w.current) - std::min<u64>(w.current,
                                                      u64{cfg.budget} * p);
      e.current = static_cast<u32>(std::min<u64>(remaining, cfg.budget));
      e.start = slot_start(w.sub_slot + p);
      e.end = e.start + timing.t_reset;
      trace.events.push_back(e);
    }
  }

  // Sort by start for a readable trace.
  std::sort(trace.events.begin(), trace.events.end(),
            [](const FsmEvent& a, const FsmEvent& b) {
              if (a.start != b.start) return a.start < b.start;
              if (a.fsm != b.fsm) return a.fsm > b.fsm;
              return a.unit < b.unit;
            });

  // Pulse spans for the observability layer: each FSM renders as its own
  // timeline (per enclosing bank, via the ScopedContext the controller
  // installs around plan_write), SET pulses on fsm1, RESETs on fsm0. The
  // schedule's ticks are relative; the thread-local base anchors them.
  if (ttrace::on<ttrace::Category::kFsm>()) {
    const Tick base = ttrace::g_tls.base;
    const u32 idx = ttrace::track_index(ttrace::g_tls.track);
    for (const auto& e : trace.events) {
      ttrace::emit_span(
          ttrace::Category::kFsm,
          e.fsm == 1 ? ttrace::Op::kSetPulse : ttrace::Op::kResetPulse,
          ttrace::track_id(e.fsm == 1 ? ttrace::Track::kFsm1
                                      : ttrace::Track::kFsm0,
                           idx),
          base + e.start, e.end - e.start, e.unit);
    }
  }

  for (const auto& e : trace.events)
    trace.pulse_completion = std::max(trace.pulse_completion, e.end);
  trace.schedule_length = pack.result * t_set + pack.subresult * sub;
  TW_ENSURES(trace.pulse_completion <= trace.schedule_length ||
             trace.events.empty());

  // Current-budget check at every pulse start (pulses are slot-aligned, so
  // peaks can only occur at starts).
  for (const auto& e : trace.events) {
    u64 draw = 0;
    for (const auto& o : trace.events) {
      if (o.start <= e.start && e.start < o.end) draw += o.current;
    }
    TW_ASSERT(draw <= cfg.budget);
    trace.peak_current =
        std::max(trace.peak_current, static_cast<u32>(draw));
  }
  return trace;
}

}  // namespace tw::core
