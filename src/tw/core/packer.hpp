#pragma once
// Tetris Write analysis stage (the paper's Algorithm 2).
//
// Greedy two-phase first-fit-decreasing packing under a power budget:
//
//   Phase 1 (write-1s): data units sorted by SET current demand, placed
//   first-fit into *write units*. A write-1 runs for a full Tset, which
//   spans all K sub-write-units of its write unit, so its current is
//   charged to every sub-slot of that write unit. `result` = number of
//   write units opened.
//
//   Phase 2 (write-0s): data units sorted by RESET current demand
//   (each RESET bit draws L x the SET current but only for Tset/K), placed
//   first-fit into individual *sub-write-units* — the interspaces left by
//   phase 1. When no existing sub-slot has room, additional trailing
//   sub-write-units are appended (`subresult`).
//
// Service time (paper Eq. 5): (result + subresult/K) * Tset.
//
// Cleanups relative to the paper's pseudocode (which has off-by-one index
// bugs, e.g. `j = result-1` as the open-new-unit test and updating slots
// `1..j*K` instead of the unit's own K slots): we track per-sub-slot power
// exactly, charge a write-1 only to its own write unit's K slots, and open
// a new unit/slot when first-fit fails over all existing ones. Items whose
// single-unit demand exceeds the whole budget (possible only in
// small-budget ablations) take ceil(demand/budget) dedicated serial
// passes.

#include <span>

#include "tw/common/inline_vec.hpp"
#include "tw/common/types.hpp"
#include "tw/core/read_stage.hpp"

namespace tw::core {

/// Packing heuristic (ablation: the paper uses first-fit decreasing).
enum class PackOrder : u8 {
  kFirstFitDecreasing,  ///< the paper's Algorithm 2
  kFirstFitArrival,     ///< no sort — hardware-cheapest variant
  kBestFitDecreasing,   ///< tightest-fitting slot instead of first
};

/// Packing parameters (derived from PcmConfig by the Tetris scheme).
struct PackerConfig {
  u32 k = 8;           ///< sub-write-units per write unit (time asymmetry)
  u32 l = 2;           ///< RESET/SET current ratio (power asymmetry)
  u32 budget = 128;    ///< power budget per (sub-)write unit, SET-current units
  PackOrder order = PackOrder::kFirstFitDecreasing;
  /// Forbid a data unit's write-0 from sharing a sub-slot window with its
  /// own write-1. The paper's Fig. 4 worked example *allows* this overlap
  /// (dataunit[5-7]'s write-0s run inside the same write unit as their
  /// write-1s — the two target disjoint bits, driven by independent
  /// FSMs), so the default is false; enabling it models a conservative
  /// MUX that can select a data unit for only one FSM at a time
  /// (ablation_packing measures the cost).
  bool forbid_self_overlap = false;

  bool valid() const { return k >= 1 && l >= 1 && budget >= 1; }
};

/// Where one data unit's write-1 was scheduled.
struct Write1Slot {
  u32 unit = 0;        ///< data-unit index
  u32 write_unit = 0;  ///< 0-based write unit (runs [wu*Tset, (wu+1)*Tset))
  u32 current = 0;     ///< SET-current units drawn
  u32 passes = 1;      ///< serial partial passes (1 unless over-budget item)
};

/// Where one data unit's write-0 was scheduled.
struct Write0Slot {
  u32 unit = 0;      ///< data-unit index
  u32 sub_slot = 0;  ///< 0-based global sub-slot index (K per write unit)
  u32 current = 0;   ///< SET-current units drawn (n0 * L)
  u32 passes = 1;    ///< serial partial passes (1 unless over-budget item)
};

/// Full analysis-stage output. All sequences are inline up to the
/// single-line capacity (heap only for multi-line batches and extreme
/// small-budget ablations): one pack() per write costs no allocation.
struct PackResult {
  u32 result = 0;     ///< write units consumed by write-1s (paper: result)
  u32 subresult = 0;  ///< trailing sub-write-units for write-0s
  InlineVec<Write1Slot, pcm::kMaxUnitsPerLine> write1_queue;  ///< FSM1 program
  InlineVec<Write0Slot, pcm::kMaxUnitsPerLine> write0_queue;  ///< FSM0 program
  /// Power drawn per sub-slot, length result*k + subresult.
  InlineVec<u32, 4 * pcm::kMaxUnitsPerLine> slot_power;

  /// Hardware-cost accounting for the analysis stage: placement
  /// comparisons performed (the paper budgets 41 cycles at 400 MHz for
  /// the whole algorithm on 8 units; tests bound these counts).
  u64 fit_checks = 0;

  /// The paper's Fig. 10 metric: serial write-unit equivalents.
  double write_unit_equiv(u32 k) const {
    return static_cast<double>(result) +
           static_cast<double>(subresult) / static_cast<double>(k);
  }

  /// Fraction of the offered power-budget x time actually drawn.
  double power_utilization(u32 budget) const;

  /// Total sub-slots (the schedule length in sub-slot granularity).
  u32 total_sub_slots(u32 k) const { return result * k + subresult; }
};

/// Run Algorithm 2 on the read-stage counts.
PackResult pack(std::span<const UnitCounts> counts, const PackerConfig& cfg);

/// Verify a PackResult against its inputs: per-sub-slot power within
/// budget, every nonzero-count unit scheduled exactly once per phase, and
/// (if configured) no self overlap. Throws ContractViolation on failure.
/// Used by tests and by the FSM model's self-checks.
void verify_pack(std::span<const UnitCounts> counts, const PackerConfig& cfg,
                 const PackResult& r);

}  // namespace tw::core
