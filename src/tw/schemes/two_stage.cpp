#include "tw/schemes/two_stage.hpp"

#include <algorithm>

#include "tw/schemes/ffd.hpp"
#include "tw/schemes/prep.hpp"

namespace tw::schemes {

ServicePlan TwoStageWrite::plan_write(pcm::LineBuf& line,
                                      const pcm::LogicalLine& next) const {
  const auto& g = cfg_.geometry;
  const u32 bits = g.data_unit_bits;
  const u32 units = g.units_per_line();
  const u32 budget = effective_budget();
  const u32 l = cfg_.l();
  const auto plans =
      plan_line(line, next, FlipCriterion::kMinimizeSets, bits);

  ServicePlan s;
  s.read_before_write = false;
  s.programmed = total_all_bits(plans);  // writes every cell
  for (const auto& p : plans) s.flipped_units += p.flip ? 1u : 0u;

  u32 reset_slots;  // serial Treset-long steps in stage-0
  u32 set_slots;    // serial Tset-long steps in stage-1
  if (content_aware_) {
    InlineVec<u32, pcm::kMaxUnitsPerLine> reset_demand, set_demand;
    for (const auto& p : plans) {
      u32 rd = p.all_zeros * l;
      u32 sd = p.all_ones;
      if (p.tag_changed) {
        if (p.tag_to_one) {
          sd += 1;
        } else {
          rd += l;
        }
      }
      reset_demand.push_back(rd);
      set_demand.push_back(sd);
    }
    reset_slots = ffd_bin_count_inplace(reset_demand, budget);
    set_slots = ffd_bin_count_inplace(set_demand, budget);
  } else {
    // Worst case: a unit may RESET all `bits` cells (current bits*L) and,
    // thanks to the flip, SETs at most ceil(bits/2) cells.
    const u32 conc0 = std::max<u32>(1, static_cast<u32>(budget / (bits * l)));
    const u32 conc1 = std::max<u32>(1, static_cast<u32>(budget / ceil_div(bits, 2)));
    reset_slots = static_cast<u32>(ceil_div(units, conc0));
    set_slots = static_cast<u32>(ceil_div(units, conc1));
  }

  const Tick write_latency =
      reset_slots * cfg_.timing.t_reset + set_slots * cfg_.timing.t_set;
  s.latency = write_latency;
  s.write_units = static_cast<double>(write_latency) /
                  static_cast<double>(cfg_.timing.t_set);
  apply_plans(line, plans);
  return s;
}

}  // namespace tw::schemes
