#include "tw/schemes/dcw.hpp"

#include "tw/schemes/prep.hpp"

namespace tw::schemes {

ServicePlan DcwWrite::plan_write(pcm::LineBuf& line,
                                 const pcm::LogicalLine& next) const {
  const auto& g = cfg_.geometry;
  const auto plans =
      plan_line(line, next, FlipCriterion::kNone, g.data_unit_bits);

  ServicePlan s;
  s.write_units = static_cast<double>(g.units_per_line());
  s.latency = cfg_.timing.t_read + g.units_per_line() * cfg_.timing.t_set;
  s.programmed = total_transitions(plans);
  s.read_before_write = true;
  s.silent = s.programmed.total() == 0;
  apply_plans(line, plans);
  return s;
}

}  // namespace tw::schemes
