#include "tw/schemes/flip_n_write.hpp"

#include "tw/schemes/ffd.hpp"
#include "tw/schemes/prep.hpp"

namespace tw::schemes {

ServicePlan FlipNWrite::plan_write(pcm::LineBuf& line,
                                   const pcm::LogicalLine& next) const {
  const auto& g = cfg_.geometry;
  const auto plans =
      plan_line(line, next, FlipCriterion::kHamming, g.data_unit_bits);

  ServicePlan s;
  s.read_before_write = true;
  s.programmed = total_transitions(plans);
  s.silent = s.programmed.total() == 0;
  for (const auto& p : plans) s.flipped_units += p.flip ? 1u : 0u;

  double units;
  if (content_aware_) {
    // Pack by actual current demand: a unit's write draws its SET current
    // plus L x its RESET current for the whole (worst-length) pulse train.
    InlineVec<u32, pcm::kMaxUnitsPerLine> demand;
    for (const auto& p : plans) {
      u32 d = p.sets + p.resets * cfg_.l();
      if (p.tag_changed) d += p.tag_to_one ? 1 : cfg_.l();
      demand.push_back(d);
    }
    units = ffd_bin_count_inplace(demand, effective_budget());
  } else {
    // Worst-case guarantee: two units per write unit.
    units = static_cast<double>(ceil_div(g.units_per_line(), 2));
  }
  s.write_units = units;
  s.latency =
      cfg_.timing.t_read + static_cast<Tick>(units) * cfg_.timing.t_set;
  apply_plans(line, plans);
  return s;
}

}  // namespace tw::schemes
