#pragma once
// 2-Stage-Write (Yue & Zhu, HPCA'13): split the write into a RESET stage
// (stage-0: all zero bits, short Treset pulses) and a SET stage (stage-1:
// all one bits, long Tset pulses). The lower SET current lets multiple
// units' stage-1 run concurrently; inverting the data when a unit has more
// than half ones doubles stage-1 concurrency again (Eq. 3).
//
// No read-before-write: every cell of the line is pulsed, so energy is not
// reduced (Table I).

#include "tw/schemes/write_scheme.hpp"

namespace tw::schemes {

class TwoStageWrite final : public WriteScheme {
 public:
  /// content_aware=false reproduces the paper's Eq. 3 worst-case timing.
  TwoStageWrite(const pcm::PcmConfig& cfg, bool content_aware)
      : WriteScheme(cfg), content_aware_(content_aware) {}

  std::string_view name() const override {
    return content_aware_ ? "2stage-actual" : "2stage";
  }
  SchemeKind kind() const override {
    return content_aware_ ? SchemeKind::kTwoStageActual
                          : SchemeKind::kTwoStage;
  }
  WriteSemantics semantics() const override {
    return {FlipCriterion::kMinimizeSets, PulsePolicy::kAllCells,
            content_aware_};
  }

  ServicePlan plan_write(pcm::LineBuf& line,
                         const pcm::LogicalLine& next) const override;

 private:
  bool content_aware_;
};

}  // namespace tw::schemes
