#include "tw/schemes/prep.hpp"

#include <algorithm>

#include "tw/common/assert.hpp"
#include "tw/common/simd.hpp"
#include "tw/encode/flip_rule.hpp"

namespace tw::schemes {

UnitPlan plan_unit(u64 old_cells, bool old_tag, u64 new_logical,
                   FlipCriterion crit, u32 bits) {
  TW_EXPECTS(bits >= 1 && bits <= 64);
  const u64 mask = low_mask(bits);
  old_cells &= mask;
  new_logical &= mask;

  bool flip = false;
  switch (crit) {
    case FlipCriterion::kNone:
      flip = false;
      break;
    case FlipCriterion::kHamming:
      // Cost of storing {D, tag=0} vs {~D, tag=1} over {D', F'}, counting
      // the tag cell (encode::flip_wins, shared with FlipEncoder). Paper:
      // invert when more than half the bits change.
      flip = encode::flip_wins(hamming(new_logical, old_cells), old_tag, bits);
      break;
    case FlipCriterion::kMinimizeSets:
      // Minimize ones in the stored word (stage-1 SET count).
      flip = popcount(new_logical) * 2 > bits;
      break;
  }

  UnitPlan p;
  p.flip = flip;
  p.new_cells = (flip ? (~new_logical) : new_logical) & mask;
  const u64 diff = p.new_cells ^ old_cells;
  p.sets = popcount(diff & p.new_cells);
  p.resets = popcount(diff & old_cells);
  p.all_ones = popcount(p.new_cells);
  p.all_zeros = bits - p.all_ones;
  p.tag_changed = old_tag != flip;
  p.tag_to_one = flip;
  return p;
}

PlanVec plan_line(const pcm::LineBuf& line, const pcm::LogicalLine& next,
                  FlipCriterion crit, u32 bits) {
  TW_EXPECTS(line.units() == next.units());
  TW_EXPECTS(bits >= 1 && bits <= 64);
  TW_EXPECTS(line.units() <= pcm::kMaxUnitsPerLine);
  // min() is a no-op after the check above, but it lets the compiler
  // prove the staging loops stay in bounds, so the arrays can go
  // uninitialized (zeroing them cost ~1 KB of stores per line write).
  const u32 units = std::min(line.units(), pcm::kMaxUnitsPerLine);
  const u64 mask = low_mask(bits);

  // Structure-of-arrays staging: gather the masked words once, then run
  // the batched popcount kernels over the whole line instead of four
  // scalar popcounts per unit. Must stay arithmetically identical to
  // plan_unit() (the per-unit reference the differential tests pin).
  // Hot path: raw-span access to cells/flip tags and unchecked plan
  // writes; the ISA level is fetched once for the whole line.
  u64 old_w[pcm::kMaxUnitsPerLine];
  u64 new_w[pcm::kMaxUnitsPerLine];
  u64 stored[pcm::kMaxUnitsPerLine];
  u32 cnt_a[pcm::kMaxUnitsPerLine];
  u32 cnt_b[pcm::kMaxUnitsPerLine];
  const u64* cells = line.cell_words().data();
  const bool* flips = line.flip_bits().data();
  const u64* words = next.words().data();
  const simd::Level lv = simd::active_level();
  for (u32 i = 0; i < units; ++i) {
    old_w[i] = cells[i] & mask;
    new_w[i] = words[i] & mask;
  }

  PlanVec plans;
  plans.resize(units, UnitPlan{});
  UnitPlan* pl = plans.data();
  switch (crit) {
    case FlipCriterion::kNone:
      break;
    case FlipCriterion::kHamming: {
      // One XOR-popcount per unit suffices: with d = hamming(new, old),
      // the flip cost hamming(~new & mask, old) is exactly bits - d, so
      // plan_unit's cost comparison reduces to d and the tag state.
      for (u32 i = 0; i < units; ++i) stored[i] = old_w[i] ^ new_w[i];
      simd::popcount_each(stored, units, cnt_a, lv);
      for (u32 i = 0; i < units; ++i) {
        pl[i].flip = encode::flip_wins(cnt_a[i], flips[i], bits);
      }
      break;
    }
    case FlipCriterion::kMinimizeSets:
      simd::popcount_each(new_w, units, cnt_a, lv);
      for (u32 i = 0; i < units; ++i) {
        pl[i].flip = cnt_a[i] * 2 > bits;
      }
      break;
  }

  for (u32 i = 0; i < units; ++i) {
    stored[i] = (pl[i].flip ? ~new_w[i] : new_w[i]) & mask;
  }
  simd::transition_counts(old_w, stored, units, cnt_a, cnt_b, lv);
  for (u32 i = 0; i < units; ++i) {
    pl[i].new_cells = stored[i];
    pl[i].sets = cnt_a[i];
    pl[i].resets = cnt_b[i];
  }
  simd::popcount_each(stored, units, cnt_a, lv);
  for (u32 i = 0; i < units; ++i) {
    pl[i].all_ones = cnt_a[i];
    pl[i].all_zeros = bits - cnt_a[i];
    const bool old_tag = flips[i];
    pl[i].tag_changed = old_tag != pl[i].flip;
    pl[i].tag_to_one = pl[i].flip;
  }
  return plans;
}

void apply_plans(pcm::LineBuf& line, std::span<const UnitPlan> plans) {
  TW_EXPECTS(plans.size() == line.units());
  for (u32 i = 0; i < line.units(); ++i) {
    line.set_cell(i, plans[i].new_cells);
    line.set_flip(i, plans[i].flip);
  }
}

BitTransitions total_transitions(std::span<const UnitPlan> plans) {
  BitTransitions t;
  for (const auto& p : plans) {
    t.sets += p.sets;
    t.resets += p.resets;
    if (p.tag_changed) {
      if (p.tag_to_one) {
        ++t.sets;
      } else {
        ++t.resets;
      }
    }
  }
  return t;
}

BitTransitions total_all_bits(std::span<const UnitPlan> plans) {
  BitTransitions t;
  for (const auto& p : plans) {
    t.sets += p.all_ones;
    t.resets += p.all_zeros;
    if (p.tag_changed) {
      if (p.tag_to_one) {
        ++t.sets;
      } else {
        ++t.resets;
      }
    }
  }
  return t;
}

}  // namespace tw::schemes
