#include "tw/schemes/prep.hpp"

#include "tw/common/assert.hpp"

namespace tw::schemes {

UnitPlan plan_unit(u64 old_cells, bool old_tag, u64 new_logical,
                   FlipCriterion crit, u32 bits) {
  TW_EXPECTS(bits >= 1 && bits <= 64);
  const u64 mask = low_mask(bits);
  old_cells &= mask;
  new_logical &= mask;

  bool flip = false;
  switch (crit) {
    case FlipCriterion::kNone:
      flip = false;
      break;
    case FlipCriterion::kHamming: {
      // Cost of storing {D, tag=0} vs {~D, tag=1} over {D', F'}, counting
      // the tag cell. Paper: invert when more than half the bits change.
      const u32 cost_plain =
          hamming(new_logical, old_cells) + (old_tag ? 1u : 0u);
      const u32 cost_flip =
          hamming((~new_logical) & mask, old_cells) + (old_tag ? 0u : 1u);
      flip = cost_flip < cost_plain;
      break;
    }
    case FlipCriterion::kMinimizeSets:
      // Minimize ones in the stored word (stage-1 SET count).
      flip = popcount(new_logical) * 2 > bits;
      break;
  }

  UnitPlan p;
  p.flip = flip;
  p.new_cells = (flip ? (~new_logical) : new_logical) & mask;
  const u64 diff = p.new_cells ^ old_cells;
  p.sets = popcount(diff & p.new_cells);
  p.resets = popcount(diff & old_cells);
  p.all_ones = popcount(p.new_cells);
  p.all_zeros = bits - p.all_ones;
  p.tag_changed = old_tag != flip;
  p.tag_to_one = flip;
  return p;
}

PlanVec plan_line(const pcm::LineBuf& line, const pcm::LogicalLine& next,
                  FlipCriterion crit, u32 bits) {
  TW_EXPECTS(line.units() == next.units());
  PlanVec plans;
  for (u32 i = 0; i < line.units(); ++i) {
    plans.push_back(
        plan_unit(line.cell(i), line.flip(i), next.word(i), crit, bits));
  }
  return plans;
}

void apply_plans(pcm::LineBuf& line, std::span<const UnitPlan> plans) {
  TW_EXPECTS(plans.size() == line.units());
  for (u32 i = 0; i < line.units(); ++i) {
    line.set_cell(i, plans[i].new_cells);
    line.set_flip(i, plans[i].flip);
  }
}

BitTransitions total_transitions(std::span<const UnitPlan> plans) {
  BitTransitions t;
  for (const auto& p : plans) {
    t.sets += p.sets;
    t.resets += p.resets;
    if (p.tag_changed) {
      if (p.tag_to_one) {
        ++t.sets;
      } else {
        ++t.resets;
      }
    }
  }
  return t;
}

BitTransitions total_all_bits(std::span<const UnitPlan> plans) {
  BitTransitions t;
  for (const auto& p : plans) {
    t.sets += p.all_ones;
    t.resets += p.all_zeros;
    if (p.tag_changed) {
      if (p.tag_to_one) {
        ++t.sets;
      } else {
        ++t.resets;
      }
    }
  }
  return t;
}

}  // namespace tw::schemes
