#pragma once
// First-fit-decreasing bin packing over current budgets — the shared
// packing primitive of the content-aware scheme variants (and mirrored by
// the Tetris packer's write-1 phase in tw::core).

#include <span>
#include <vector>

#include "tw/common/assert.hpp"
#include "tw/common/inline_vec.hpp"
#include "tw/common/types.hpp"
#include "tw/pcm/line.hpp"

namespace tw::schemes {

/// Number of bins of capacity `capacity` needed to hold `items` under
/// first-fit-decreasing. Items larger than the capacity occupy
/// ceil(item/capacity) dedicated bins (a data unit whose current demand
/// exceeds the budget must be written in several partial passes).
/// Zero-valued items need no bin. Returns 0 when nothing needs a bin.
///
/// In-place hot-path variant: sorts `items` descending (insertion sort —
/// the per-line sequences are at most kMaxUnitsPerLine long) and performs
/// no heap allocation.
inline u32 ffd_bin_count_inplace(std::span<u32> items, u32 capacity) {
  TW_EXPECTS(capacity > 0);
  for (std::size_t i = 1; i < items.size(); ++i) {
    const u32 v = items[i];
    std::size_t j = i;
    while (j > 0 && items[j - 1] < v) {
      items[j] = items[j - 1];
      --j;
    }
    items[j] = v;
  }
  u32 extra = 0;
  InlineVec<u32, pcm::kMaxUnitsPerLine> bins;  // residual capacity per bin
  for (u32 item : items) {
    if (item == 0) continue;
    if (item > capacity) {
      // Partial passes: all but the remainder fill whole dedicated bins.
      extra += item / capacity;
      item %= capacity;
      if (item == 0) continue;
    }
    bool placed = false;
    for (auto& free : bins) {
      if (item <= free) {
        free -= item;
        placed = true;
        break;
      }
    }
    if (!placed) bins.push_back(capacity - item);
  }
  return static_cast<u32>(bins.size()) + extra;
}

/// Convenience overload for tests and cold paths (copies, then packs).
inline u32 ffd_bin_count(std::vector<u32> items, u32 capacity) {
  return ffd_bin_count_inplace(std::span<u32>(items), capacity);
}

}  // namespace tw::schemes
