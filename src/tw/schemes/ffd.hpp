#pragma once
// First-fit-decreasing bin packing over current budgets — the shared
// packing primitive of the content-aware scheme variants (and mirrored by
// the Tetris packer's write-1 phase in tw::core).

#include <algorithm>
#include <vector>

#include "tw/common/assert.hpp"
#include "tw/common/types.hpp"

namespace tw::schemes {

/// Number of bins of capacity `capacity` needed to hold `items` under
/// first-fit-decreasing. Items larger than the capacity occupy
/// ceil(item/capacity) dedicated bins (a data unit whose current demand
/// exceeds the budget must be written in several partial passes).
/// Zero-valued items need no bin. Returns 0 when nothing needs a bin.
inline u32 ffd_bin_count(std::vector<u32> items, u32 capacity) {
  TW_EXPECTS(capacity > 0);
  std::sort(items.begin(), items.end(), std::greater<>());
  u32 extra = 0;
  std::vector<u32> bins;  // residual capacity per open bin
  for (u32 item : items) {
    if (item == 0) continue;
    if (item > capacity) {
      // Partial passes: all but the remainder fill whole dedicated bins.
      extra += item / capacity;
      item %= capacity;
      if (item == 0) continue;
    }
    bool placed = false;
    for (auto& free : bins) {
      if (item <= free) {
        free -= item;
        placed = true;
        break;
      }
    }
    if (!placed) bins.push_back(capacity - item);
  }
  return static_cast<u32>(bins.size()) + extra;
}

}  // namespace tw::schemes
