#include "tw/schemes/conventional.hpp"

#include "tw/schemes/prep.hpp"

namespace tw::schemes {

ServicePlan ConventionalWrite::plan_write(
    pcm::LineBuf& line, const pcm::LogicalLine& next) const {
  const auto& g = cfg_.geometry;
  const auto plans =
      plan_line(line, next, FlipCriterion::kNone, g.data_unit_bits);

  ServicePlan s;
  s.write_units = static_cast<double>(g.units_per_line());
  s.latency = g.units_per_line() * cfg_.timing.t_set;
  s.programmed = total_all_bits(plans);  // every cell pulsed
  s.read_before_write = false;
  apply_plans(line, plans);
  return s;
}

}  // namespace tw::schemes
