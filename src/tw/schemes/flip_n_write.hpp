#pragma once
// Flip-N-Write (Cho & Lee, MICRO'09): read-before-write plus per-unit data
// inversion so that at most half the cells of a unit change. Under the
// power budget this guarantees two data units fit in one write unit
// (Eq. 2: T = Tread + 1/2 * (N/M) * Tset).
//
// The "actual" variant is our content-aware ablation: it packs data units
// into write units by their *measured* current demand instead of the
// worst-case guarantee (but, unlike Tetris, still treats a unit's SETs and
// RESETs as one indivisible worst-length write).

#include "tw/schemes/write_scheme.hpp"

namespace tw::schemes {

class FlipNWrite final : public WriteScheme {
 public:
  /// content_aware=false reproduces the paper's Eq. 2 behaviour.
  FlipNWrite(const pcm::PcmConfig& cfg, bool content_aware)
      : WriteScheme(cfg), content_aware_(content_aware) {}

  std::string_view name() const override {
    return content_aware_ ? "fnw-actual" : "fnw";
  }
  SchemeKind kind() const override {
    return content_aware_ ? SchemeKind::kFlipNWriteActual
                          : SchemeKind::kFlipNWrite;
  }
  WriteSemantics semantics() const override {
    return {FlipCriterion::kHamming, PulsePolicy::kChangedCells,
            content_aware_};
  }

  ServicePlan plan_write(pcm::LineBuf& line,
                         const pcm::LogicalLine& next) const override;

 private:
  bool content_aware_;
};

}  // namespace tw::schemes
