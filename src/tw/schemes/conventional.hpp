#pragma once
// Conventional write (Eq. 1): each data unit takes a full write unit at
// worst-case timing (Tset) with no read-before-write; every cell is pulsed.

#include "tw/schemes/write_scheme.hpp"

namespace tw::schemes {

class ConventionalWrite final : public WriteScheme {
 public:
  using WriteScheme::WriteScheme;

  std::string_view name() const override { return "conventional"; }
  SchemeKind kind() const override { return SchemeKind::kConventional; }
  WriteSemantics semantics() const override {
    return {FlipCriterion::kNone, PulsePolicy::kAllCells, false};
  }

  ServicePlan plan_write(pcm::LineBuf& line,
                         const pcm::LogicalLine& next) const override;
};

}  // namespace tw::schemes
