#pragma once
// Data-Comparison Write (Yang et al., ISCAS'07) — the paper's baseline.
// Reads the old data first and pulses only changed cells (energy/endurance
// win) but keeps the conventional worst-case serial timing: one full-Tset
// write unit per data unit.

#include "tw/schemes/write_scheme.hpp"

namespace tw::schemes {

class DcwWrite final : public WriteScheme {
 public:
  using WriteScheme::WriteScheme;

  std::string_view name() const override { return "dcw"; }
  SchemeKind kind() const override { return SchemeKind::kDcw; }
  WriteSemantics semantics() const override {
    return {FlipCriterion::kNone, PulsePolicy::kChangedCells, false};
  }

  ServicePlan plan_write(pcm::LineBuf& line,
                         const pcm::LogicalLine& next) const override;
};

}  // namespace tw::schemes
