#include "tw/schemes/write_scheme.hpp"

#include "tw/common/assert.hpp"

namespace tw::schemes {

BatchServicePlan WriteScheme::plan_write_batch(
    std::span<pcm::LineBuf*> lines,
    std::span<const pcm::LogicalLine> datas) const {
  TW_EXPECTS(lines.size() == datas.size());
  TW_EXPECTS(!lines.empty());
  BatchServicePlan batch;
  batch.per_line.reserve(lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    ServicePlan p = plan_write(*lines[i], datas[i]);
    batch.latency += p.latency;
    batch.per_line.push_back(std::move(p));
  }
  return batch;
}

Tick WriteScheme::plan_retry(const BitTransitions& failed, u32 attempt,
                             double widen) const {
  TW_EXPECTS(attempt >= 1);
  TW_EXPECTS(widen >= 1.0);
  if (failed.total() == 0) return 0;
  // Worst-case serial pricing over just the failed bits: SETs at budget
  // concurrency, RESETs at budget/L concurrency (same closed form the
  // non-packed schemes use for full lines).
  const u32 budget = effective_budget();
  const u64 set_passes = ceil_div(failed.sets, budget);
  const u64 reset_passes =
      ceil_div(static_cast<u64>(failed.resets) * cfg_.l(), budget);
  const Tick base =
      set_passes * cfg_.timing.t_set + reset_passes * cfg_.timing.t_reset;
  // Exponential pulse widening: attempt a re-drives at widen^a. Repeated
  // multiplication (not std::pow) keeps the result bit-identical across
  // compilers/libms.
  double factor = 1.0;
  for (u32 i = 0; i < attempt; ++i) factor *= widen;
  return static_cast<Tick>(static_cast<double>(base) * factor);
}

std::string_view scheme_name(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kConventional:
      return "conventional";
    case SchemeKind::kDcw:
      return "dcw";
    case SchemeKind::kFlipNWrite:
      return "fnw";
    case SchemeKind::kTwoStage:
      return "2stage";
    case SchemeKind::kThreeStage:
      return "3stage";
    case SchemeKind::kTetris:
      return "tetris";
    case SchemeKind::kFlipNWriteActual:
      return "fnw-actual";
    case SchemeKind::kTwoStageActual:
      return "2stage-actual";
    case SchemeKind::kThreeStageActual:
      return "3stage-actual";
    case SchemeKind::kPreset:
      return "preset";
    case SchemeKind::kPresetActual:
      return "preset-actual";
  }
  return "unknown";
}

}  // namespace tw::schemes
