#include "tw/schemes/write_scheme.hpp"

#include "tw/common/assert.hpp"

namespace tw::schemes {

BatchServicePlan WriteScheme::plan_write_batch(
    std::span<pcm::LineBuf*> lines,
    std::span<const pcm::LogicalLine> datas) const {
  TW_EXPECTS(lines.size() == datas.size());
  TW_EXPECTS(!lines.empty());
  BatchServicePlan batch;
  batch.per_line.reserve(lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    ServicePlan p = plan_write(*lines[i], datas[i]);
    batch.latency += p.latency;
    batch.per_line.push_back(std::move(p));
  }
  return batch;
}

std::string_view scheme_name(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kConventional:
      return "conventional";
    case SchemeKind::kDcw:
      return "dcw";
    case SchemeKind::kFlipNWrite:
      return "fnw";
    case SchemeKind::kTwoStage:
      return "2stage";
    case SchemeKind::kThreeStage:
      return "3stage";
    case SchemeKind::kTetris:
      return "tetris";
    case SchemeKind::kFlipNWriteActual:
      return "fnw-actual";
    case SchemeKind::kTwoStageActual:
      return "2stage-actual";
    case SchemeKind::kThreeStageActual:
      return "3stage-actual";
    case SchemeKind::kPreset:
      return "preset";
    case SchemeKind::kPresetActual:
      return "preset-actual";
  }
  return "unknown";
}

}  // namespace tw::schemes
