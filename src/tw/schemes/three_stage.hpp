#pragma once
// Three-Stage-Write (Li et al., ASP-DAC'15): Flip-N-Write's read-and-flip
// stage in front of 2-Stage-Write's RESET/SET split. The flip bounds
// *changed* bits to half a unit, halving the worst case of both stages
// (Eq. 4: T = Tread + (1/2K + 1/2L) * (N/M) * Tset).
//
// The "actual" variant packs by measured per-stage currents — equivalent to
// Tetris without the write-0 interspace stealing (stage-0 still fully
// serializes before stage-1), which makes it the key ablation point.

#include "tw/schemes/write_scheme.hpp"

namespace tw::schemes {

class ThreeStageWrite final : public WriteScheme {
 public:
  /// content_aware=false reproduces the paper's Eq. 4 worst-case timing.
  ThreeStageWrite(const pcm::PcmConfig& cfg, bool content_aware)
      : WriteScheme(cfg), content_aware_(content_aware) {}

  std::string_view name() const override {
    return content_aware_ ? "3stage-actual" : "3stage";
  }
  SchemeKind kind() const override {
    return content_aware_ ? SchemeKind::kThreeStageActual
                          : SchemeKind::kThreeStage;
  }
  WriteSemantics semantics() const override {
    return {FlipCriterion::kHamming, PulsePolicy::kChangedCells,
            content_aware_};
  }

  ServicePlan plan_write(pcm::LineBuf& line,
                         const pcm::LogicalLine& next) const override;

 private:
  bool content_aware_;
};

}  // namespace tw::schemes
