#include "tw/schemes/preset.hpp"

#include <algorithm>

#include "tw/schemes/ffd.hpp"

namespace tw::schemes {

ServicePlan PresetWrite::plan_write(pcm::LineBuf& line,
                                    const pcm::LogicalLine& next) const {
  const auto& g = cfg_.geometry;
  const u32 bits = g.data_unit_bits;
  const u32 units = g.units_per_line();
  const u32 budget = effective_budget();
  const u32 l = cfg_.l();
  const u64 mask = low_mask(bits);

  ServicePlan s;
  s.read_before_write = false;  // cell state is known: all SET

  // Background pass (off the critical path): SET every cell that is not
  // already '1' — charged to energy/wear via `background`.
  for (u32 i = 0; i < units; ++i) {
    s.background.sets += bits - popcount(line.cell(i) & mask);
    if (line.flip(i)) {
      // The tag cell is part of the line; PreSET drives it high too.
    } else {
      s.background.sets += 1;
    }
  }

  // Critical writeback: RESET the new data's zero bits.
  InlineVec<u32, pcm::kMaxUnitsPerLine> reset_demand;
  for (u32 i = 0; i < units; ++i) {
    const u32 zeros = bits - popcount(next.word(i) & mask);
    // The tag returns to 0 (PreSET stores plain, uninverted data).
    s.programmed.resets += zeros + 1;
    reset_demand.push_back((zeros + 1) * l);
    line.store_logical(i, next.word(i), /*flipped=*/false);
  }

  u32 reset_slots;
  if (content_aware_) {
    reset_slots = ffd_bin_count_inplace(reset_demand, budget);
  } else {
    const u32 conc = std::max<u32>(1, budget / ((bits + 1) * l));
    reset_slots = static_cast<u32>(ceil_div(units, conc));
  }

  const Tick write_latency = reset_slots * cfg_.timing.t_reset;
  s.latency = write_latency;
  s.write_units = static_cast<double>(write_latency) /
                  static_cast<double>(cfg_.timing.t_set);
  return s;
}

}  // namespace tw::schemes
