#pragma once
// PreSET (Qureshi et al., ISCA'12 — the paper's reference [23]):
// proactively SET every cell of a line while it sits dirty in the cache,
// so the eventual writeback only performs fast RESET pulses on the
// critical path. We model the idealized variant (the background SET pass
// always completes in time); its cost shows up in energy and wear, not
// latency.
//
// Writeback timing: all cells hold '1', the new data's zero bits are
// RESET. Worst case a unit RESETs all `bits` cells at L x SET current;
// the "actual" variant packs measured RESET demand into Treset slots.

#include "tw/schemes/write_scheme.hpp"

namespace tw::schemes {

class PresetWrite final : public WriteScheme {
 public:
  PresetWrite(const pcm::PcmConfig& cfg, bool content_aware)
      : WriteScheme(cfg), content_aware_(content_aware) {}

  std::string_view name() const override {
    return content_aware_ ? "preset-actual" : "preset";
  }
  SchemeKind kind() const override {
    return content_aware_ ? SchemeKind::kPresetActual
                          : SchemeKind::kPreset;
  }
  WriteSemantics semantics() const override {
    return {FlipCriterion::kNone, PulsePolicy::kResetOnly, content_aware_};
  }

  ServicePlan plan_write(pcm::LineBuf& line,
                         const pcm::LogicalLine& next) const override;

 private:
  bool content_aware_;
};

}  // namespace tw::schemes
