#pragma once
// WriteScheme: the common interface of every PCM cache-line write policy
// evaluated in the paper (conventional, DCW, Flip-N-Write, 2-Stage-Write,
// Three-Stage-Write, Tetris Write).
//
// A scheme receives the current *physical* line state (cell words + flip
// tags) and the new *logical* data, decides what to program, mutates the
// line to its post-write physical state, and reports the service plan:
// bank-occupancy latency, the serial write-unit count (the paper's Fig. 10
// metric), and the bit transitions actually performed (energy/wear).

#include <memory>
#include <string>
#include <span>
#include <string_view>
#include <vector>

#include "tw/common/bits.hpp"
#include "tw/common/types.hpp"
#include "tw/pcm/line.hpp"
#include "tw/pcm/params.hpp"
#include "tw/schemes/prep.hpp"

namespace tw::schemes {

/// Identifiers for the built-in schemes.
enum class SchemeKind : u8 {
  kConventional,    ///< worst-case serial writes, no read-before-write
  kDcw,             ///< data-comparison write: the paper's baseline
  kFlipNWrite,      ///< Cho & Lee, MICRO'09
  kTwoStage,        ///< Yue & Zhu, HPCA'13
  kThreeStage,      ///< Li et al., ASP-DAC'15
  kTetris,          ///< this paper
  // Content-aware ablation variants (pack by actual currents, but without
  // Tetris's write-0 interspace stealing):
  kFlipNWriteActual,
  kTwoStageActual,
  kThreeStageActual,
  // PreSET (Qureshi et al., ISCA'12; paper ref [23]): background SET pass
  // leaves only RESETs on the writeback critical path.
  kPreset,
  kPresetActual,
};

/// Which cells a scheme pulses on the write critical path. Together with
/// the flip criterion this is enough for an external reference model to
/// predict a scheme's exact post-write image and pulse counts bit by bit
/// (the differential oracle in tw/verify/ does exactly that).
enum class PulsePolicy : u8 {
  kAllCells,      ///< pulses every data cell (conventional, 2-stage)
  kChangedCells,  ///< read-before-write; pulses only changed cells
  kResetOnly,     ///< PreSET: cells pre-SET in background, RESETs only
};

/// Declarative write semantics of a scheme — the checker interface every
/// scheme implements so the verify subsystem can run it differentially
/// against the bit-serial oracle.
struct WriteSemantics {
  FlipCriterion flip = FlipCriterion::kNone;
  PulsePolicy pulses = PulsePolicy::kChangedCells;
  /// True when the latency model charges *measured* per-unit current
  /// demand (content-aware packing); false for the paper's worst-case
  /// closed forms, whose idealizations may round concurrency up to one
  /// unit per slot even when a pathological unit alone exceeds the
  /// budget (the oracle relaxes its power-area lower bound for those).
  bool measured_timing = false;
};

/// What one cache-line write service costs.
struct ServicePlan {
  Tick latency = 0;           ///< total bank occupancy (incl. read/analysis)
  double write_units = 0.0;   ///< serial write-unit equivalents (Fig. 10)
  BitTransitions programmed;  ///< cell pulses performed (data + tag bits)
  u32 flipped_units = 0;      ///< data units stored inverted
  bool read_before_write = false;
  Tick analysis_ticks = 0;    ///< Tetris analysis-stage overhead (in latency)
  bool silent = false;        ///< write changed nothing (no pulses)
  /// Pulses performed off the critical path (PreSET's background SET
  /// pass): charged to energy and wear but not latency.
  BitTransitions background;
  /// Fraction of the power budget the scheduled slots actually drew
  /// (Tetris packing density; 0 for schemes without a packed schedule).
  double power_util = 0.0;
  /// Content-encoder pre-stage accounting (tw/encode/). `active` is false
  /// for bare schemes, so encoder-off runs carry no encoder state at all.
  struct EncodeStats {
    bool active = false;   ///< an encoder pre-stage transformed this write
    u32 coded_units = 0;   ///< units stored under a non-identity code
    u32 tag_bits = 0;      ///< encoder metadata cells pulsed
  };
  EncodeStats enc;
};

/// A batch of same-bank writes serviced together (batched Tetris packs
/// all their data units jointly; other schemes serialize).
struct BatchServicePlan {
  Tick latency = 0;                   ///< total bank occupancy
  std::vector<ServicePlan> per_line;  ///< one plan per input line
  /// Lines that actually shared one packed schedule (serializing schemes
  /// report 0: every line ran alone) — the batch-occupancy metric.
  u32 packed_lines = 0;
  /// Budget utilization of the joint schedule (0 when not packed).
  double occupancy = 0.0;
};

/// Abstract write scheme. Implementations are stateless w.r.t. requests
/// (all state lives in the line passed in), so one instance can be shared
/// by all banks of a memory system.
class WriteScheme {
 public:
  explicit WriteScheme(const pcm::PcmConfig& cfg) : cfg_(cfg) {
    cfg_.validate();
  }
  virtual ~WriteScheme() = default;

  WriteScheme(const WriteScheme&) = delete;
  WriteScheme& operator=(const WriteScheme&) = delete;

  /// Short scheme name, e.g. "tetris".
  virtual std::string_view name() const = 0;
  virtual SchemeKind kind() const = 0;

  /// Declarative semantics consumed by tw/verify/'s differential oracle.
  virtual WriteSemantics semantics() const = 0;

  /// Plan and apply one cache-line write: `line` is mutated to the
  /// post-write physical state; `next` is the new logical data.
  /// `line.units()` must equal `next.units()` and match the configured
  /// cache-line geometry.
  virtual ServicePlan plan_write(pcm::LineBuf& line,
                                 const pcm::LogicalLine& next) const = 0;

  /// Plan a batch of writes destined for the same bank. The default
  /// serializes the individual plans; Tetris overrides this to pack all
  /// units jointly (shared write units, one analysis pass).
  virtual BatchServicePlan plan_write_batch(
      std::span<pcm::LineBuf*> lines,
      std::span<const pcm::LogicalLine> datas) const;

  /// Partition-aware batch plan (PALP): `partitions[i]` is the bank-local
  /// partition line i lands in. The default ignores the placement and
  /// defers to the 2-argument overload; partition-aware packers (Tetris)
  /// use it to record the spread the controller's gather achieved.
  virtual BatchServicePlan plan_write_batch(
      std::span<pcm::LineBuf*> lines,
      std::span<const pcm::LogicalLine> datas,
      std::span<const u32> partitions) const {
    (void)partitions;
    return plan_write_batch(lines, datas);
  }

  /// Price one verify-and-retry attempt re-driving `failed` bits, with
  /// pulse widths widened by `widen`^`attempt` (attempt >= 1). The default
  /// re-runs the worst-case concurrency closed form over just the failed
  /// bits; Tetris overrides it to re-enter the packer. Does not mutate
  /// line state — failed cells keep their target values pending, only the
  /// extra occupancy is priced.
  virtual Tick plan_retry(const BitTransitions& failed, u32 attempt,
                          double widen) const;

  /// Reconstruct the logical data a CPU read returns from the stored
  /// physical line. The base de-inverts flip tags; the encoder decorator
  /// (tw/encode/EncodedScheme) additionally reverses its content code via
  /// the per-unit metadata tags.
  virtual pcm::LogicalLine decode_stored(const pcm::LineBuf& line) const {
    return pcm::LogicalLine::from_physical(line);
  }

  /// True when stored cell words are a *transformed* image of the logical
  /// data (content-encoder pre-stage), so readers must go through
  /// decode_stored() rather than LogicalLine::from_physical(). Bare
  /// schemes only invert (flip tags), which from_physical already undoes.
  virtual bool transforms_content() const { return false; }

  /// Scale factor applied to the bank power budget by effective_budget()
  /// — the charge-pump brown-out hook. 1.0 (the default) must reproduce
  /// bank_power_budget() exactly; the controller sets a smaller factor
  /// around plan calls issued inside a brown-out window and restores 1.0
  /// after. Virtual so decorator schemes (tw/encode/) can forward the
  /// scale to the scheme that actually packs against the budget.
  virtual void set_budget_scale(double scale) {
    TW_EXPECTS(scale > 0.0 && scale <= 1.0);
    budget_scale_ = scale;
  }
  double budget_scale() const { return budget_scale_; }

  /// The power budget every scheme packs/serializes against, after the
  /// brown-out scale. At least 1 SET-equivalent so progress is always
  /// possible.
  u32 effective_budget() const {
    const u32 nominal = cfg_.bank_power_budget();
    if (budget_scale_ == 1.0) return nominal;
    const u32 scaled =
        static_cast<u32>(static_cast<double>(nominal) * budget_scale_);
    return scaled < 1 ? 1u : scaled;
  }

  /// Latency of a demand read through this scheme's datapath. Every
  /// scheme leaves the read path untouched (the paper stresses Tetris
  /// adds no read-path logic).
  Tick read_latency() const { return cfg_.timing.t_read; }

  const pcm::PcmConfig& config() const { return cfg_; }

 protected:
  pcm::PcmConfig cfg_;

 private:
  double budget_scale_ = 1.0;
};

/// Canonical short name for a kind. (The factory constructing instances
/// lives in tw/core/factory.hpp, above the Tetris implementation.)
std::string_view scheme_name(SchemeKind kind);

/// All kinds evaluated in the paper's figures, in presentation order:
/// fnw, 2stage, 3stage, tetris (baseline dcw is the normalization target).
inline constexpr SchemeKind kPaperSchemes[] = {
    SchemeKind::kFlipNWrite,
    SchemeKind::kTwoStage,
    SchemeKind::kThreeStage,
    SchemeKind::kTetris,
};

}  // namespace tw::schemes
