#pragma once
// Shared per-data-unit write preparation: the flip decision (Flip-N-Write
// style or SET-minimizing) and transition counting in the physical cell
// domain. Every scheme's "read stage" reduces to this.

#include <span>

#include "tw/common/bits.hpp"
#include "tw/common/inline_vec.hpp"
#include "tw/common/types.hpp"
#include "tw/pcm/line.hpp"

namespace tw::schemes {

/// How (whether) a scheme decides to invert a data unit before storing.
enum class FlipCriterion : u8 {
  kNone,          ///< store the logical data directly (conventional, DCW)
  kHamming,       ///< FNW: invert if more than half the cells would change
  kMinimizeSets,  ///< 2-Stage: invert if the stored word has > half ones
};

/// The prepared write for one data unit.
struct UnitPlan {
  u64 new_cells = 0;   ///< physical word to be stored
  bool flip = false;   ///< new flip-tag value
  u32 sets = 0;        ///< data cells transitioning 0->1 (changed bits only)
  u32 resets = 0;      ///< data cells transitioning 1->0
  u32 all_ones = 0;    ///< ones in the stored word (for all-bit writers)
  u32 all_zeros = 0;   ///< zeros in the stored word
  bool tag_changed = false;  ///< the flip-tag cell must be programmed
  bool tag_to_one = false;   ///< direction of the tag program (if changed)

  u32 changed() const { return sets + resets; }
};

/// One plan per data unit of a line, kept inline (a line has at most
/// pcm::kMaxUnitsPerLine units): building one per write costs no heap.
using PlanVec = InlineVec<UnitPlan, pcm::kMaxUnitsPerLine>;

/// Prepare the write of `new_logical` over a unit currently holding
/// `old_cells` with tag `old_tag`. `bits` is the data-unit width (<= 64).
UnitPlan plan_unit(u64 old_cells, bool old_tag, u64 new_logical,
                   FlipCriterion crit, u32 bits);

/// Prepare every unit of a line write. Returns one UnitPlan per data unit.
PlanVec plan_line(const pcm::LineBuf& line, const pcm::LogicalLine& next,
                  FlipCriterion crit, u32 bits);

/// Apply prepared unit plans to the physical line (store cells + tags).
void apply_plans(pcm::LineBuf& line, std::span<const UnitPlan> plans);

/// Sum of changed-bit transitions across plans, including tag-cell pulses.
BitTransitions total_transitions(std::span<const UnitPlan> plans);

/// Sum of all-bit writes across plans (conventional / 2-stage energy),
/// including tag-cell pulses for tags that changed.
BitTransitions total_all_bits(std::span<const UnitPlan> plans);

}  // namespace tw::schemes
