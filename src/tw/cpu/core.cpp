#include "tw/cpu/core.hpp"

#include <cmath>

#include "tw/common/assert.hpp"
#include "tw/mem/request.hpp"
#include "tw/trace/emit.hpp"

namespace tw::cpu {

Core::Core(sim::Simulator& sim, u32 id, CoreConfig cfg,
           mem::MemoryInterface& mem, workload::RequestSource& gen,
           u64 instruction_budget)
    : sim_(sim),
      id_(id),
      cfg_(cfg),
      clock_(cfg.clock_period),
      ctl_(mem),
      gen_(gen),
      budget_(instruction_budget) {
  TW_EXPECTS(cfg.valid());
  TW_EXPECTS(instruction_budget > 0);
}

void Core::start() {
  TW_EXPECTS(state_ == State::kIdle);
  execute_gap();
}

void Core::execute_gap() {
  if (retired_ >= budget_) {
    state_ = State::kDone;
    finish_if_done();
    return;
  }
  if (!has_pending_) {
    // Cache-filtered sources walk the hierarchy inside next(); give their
    // miss/writeback emissions a time base and this core's cache track.
    trace::ScopedContext tctx(sim_.now(),
                              trace::track_id(trace::Track::kCache, id_));
    pending_ = gen_.next(id_);
    has_pending_ = true;
  }
  state_ = State::kExecuting;
  const double cycles =
      std::ceil(static_cast<double>(pending_.gap) / cfg_.peak_ipc);
  const Tick exec = clock_.cycles(static_cast<u64>(cycles));
  sim_.schedule_in(
      exec,
      [this] {
        state_ = State::kIssuing;
        try_issue();
      },
      sim::Priority::kCpu);
}

void Core::try_issue() {
  if (state_ != State::kIssuing && state_ != State::kStallMlp &&
      state_ != State::kStallQueue) {
    return;
  }
  TW_ASSERT(has_pending_);

  mem::MemoryRequest req;
  req.addr = pending_.addr;
  req.core = id_;

  if (pending_.is_write) {
    req.type = mem::ReqType::kWrite;
    req.data = gen_.make_write_data(pending_.addr, ctl_.store_for(pending_.addr), id_);
    if (!ctl_.enqueue(std::move(req))) {
      if (state_ != State::kStallQueue) ++stall_events_;
      state_ = State::kStallQueue;
      return;  // resumed by on_queue_space
    }
    ++writes_issued_;
  } else {
    if (outstanding_reads_ >= cfg_.mlp) {
      if (state_ != State::kStallMlp) ++stall_events_;
      state_ = State::kStallMlp;
      return;  // resumed by on_read_complete
    }
    req.type = mem::ReqType::kRead;
    if (!ctl_.enqueue(std::move(req))) {
      if (state_ != State::kStallQueue) ++stall_events_;
      state_ = State::kStallQueue;
      return;
    }
    ++outstanding_reads_;
    ++reads_issued_;
  }

  // The gap's instructions plus the memory instruction retire.
  retired_ += pending_.gap + 1;
  has_pending_ = false;
  execute_gap();
}

void Core::on_read_complete() {
  TW_ASSERT(outstanding_reads_ > 0);
  --outstanding_reads_;
  if (state_ == State::kStallMlp) {
    try_issue();
  } else if (state_ == State::kDone) {
    finish_if_done();
  }
}

void Core::on_queue_space() {
  if (state_ == State::kStallQueue) try_issue();
}

void Core::finish_if_done() {
  if (finished_ || state_ != State::kDone) return;
  // Retirement is complete; wait for in-flight reads to drain so the
  // measured runtime includes their latency.
  if (outstanding_reads_ > 0) return;
  finished_ = true;
  finish_tick_ = sim_.now();
}

double Core::ipc() const {
  if (!finished_ || finish_tick_ == 0) return 0.0;
  const double cycles = static_cast<double>(clock_.cycles_at(finish_tick_));
  return cycles <= 0.0 ? 0.0 : static_cast<double>(retired_) / cycles;
}

}  // namespace tw::cpu
