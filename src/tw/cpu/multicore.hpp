#pragma once
// Multi-core wrapper: owns N cores, demuxes controller callbacks to the
// issuing core, and aggregates IPC / runtime metrics (paper Eq. 6 uses
// whole-system IPC relative to the baseline).

#include <memory>
#include <vector>

#include "tw/cpu/core.hpp"

namespace tw::cpu {

/// N cores sharing one memory controller and one workload generator.
class MultiCore {
 public:
  MultiCore(sim::Simulator& sim, CoreConfig cfg, u32 cores,
            mem::MemoryInterface& mem, workload::RequestSource& gen,
            u64 instructions_per_core);

  /// Start all cores (wires controller callbacks; call once).
  void start();

  bool all_finished() const;

  /// Tick at which the last core retired its budget (0 while running).
  Tick runtime() const;

  /// Whole-system IPC: total retired instructions / cycles-to-finish.
  double aggregate_ipc() const;

  u64 total_retired() const;

  const Core& core(u32 i) const { return *cores_[i]; }
  u32 core_count() const { return static_cast<u32>(cores_.size()); }

 private:
  sim::Simulator& sim_;
  CoreConfig cfg_;
  std::vector<std::unique_ptr<Core>> cores_;
};

}  // namespace tw::cpu
