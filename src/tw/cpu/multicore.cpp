#include "tw/cpu/multicore.hpp"

#include <algorithm>

#include "tw/common/assert.hpp"

namespace tw::cpu {

MultiCore::MultiCore(sim::Simulator& sim, CoreConfig cfg, u32 cores,
                     mem::MemoryInterface& mem,
                     workload::RequestSource& gen,
                     u64 instructions_per_core)
    : sim_(sim), cfg_(cfg) {
  TW_EXPECTS(cores >= 1);
  cores_.reserve(cores);
  for (u32 c = 0; c < cores; ++c) {
    cores_.push_back(std::make_unique<Core>(sim, c, cfg, mem, gen,
                                            instructions_per_core));
  }
  mem.set_read_callback([this](const mem::MemoryRequest& req) {
    TW_ASSERT(req.core < cores_.size());
    cores_[req.core]->on_read_complete();
  });
  mem.set_space_callback([this] {
    for (auto& core : cores_) core->on_queue_space();
  });
}

void MultiCore::start() {
  for (auto& core : cores_) core->start();
}

bool MultiCore::all_finished() const {
  return std::all_of(cores_.begin(), cores_.end(),
                     [](const auto& c) { return c->finished(); });
}

Tick MultiCore::runtime() const {
  Tick t = 0;
  for (const auto& c : cores_) {
    if (!c->finished()) return 0;
    t = std::max(t, c->finish_tick());
  }
  return t;
}

double MultiCore::aggregate_ipc() const {
  const Tick rt = runtime();
  if (rt == 0) return 0.0;
  const double cycles =
      static_cast<double>(rt) / static_cast<double>(cfg_.clock_period);
  return static_cast<double>(total_retired()) / cycles;
}

u64 MultiCore::total_retired() const {
  u64 n = 0;
  for (const auto& c : cores_) n += c->retired();
  return n;
}

}  // namespace tw::cpu
