#pragma once
// Bounded-MLP core model (the gem5 O3-core substitute).
//
// A core executes instructions at `peak_ipc` between memory requests,
// drawn from its workload stream. Reads may overlap up to `mlp`
// outstanding misses (the OoO window's memory-level parallelism); once
// the window is full the core stalls until a read returns. Writes are
// posted to the controller's write queue and only stall the core on
// queue-full backpressure — exactly the couplings that turn write-service
// time into IPC/runtime effects in the paper.

#include "tw/common/types.hpp"
#include "tw/mem/interface.hpp"
#include "tw/sim/simulator.hpp"
#include "tw/workload/source.hpp"

namespace tw::cpu {

/// Core microarchitecture parameters (Table II: 2 GHz ALPHA-like O3).
struct CoreConfig {
  Tick clock_period = 500;   ///< ps; 2 GHz
  double peak_ipc = 2.0;     ///< instructions/cycle when unstalled
  u32 mlp = 4;               ///< max outstanding read misses

  bool valid() const {
    return clock_period > 0 && peak_ipc > 0.0 && mlp >= 1;
  }
};

/// One simulated core running a fixed instruction budget.
class Core {
 public:
  Core(sim::Simulator& sim, u32 id, CoreConfig cfg,
       mem::MemoryInterface& mem, workload::RequestSource& gen,
       u64 instruction_budget);

  /// Begin execution (schedules the first event).
  void start();

  /// Deliver a completed read (called by the owner's demux).
  void on_read_complete();

  /// Queue space became available; retry a stalled issue.
  void on_queue_space();

  bool finished() const { return finished_; }
  Tick finish_tick() const { return finish_tick_; }
  u64 retired() const { return retired_; }
  u64 reads_issued() const { return reads_issued_; }
  u64 writes_issued() const { return writes_issued_; }
  u64 stall_events() const { return stall_events_; }

  /// Retired instructions per cycle, measured at finish (0 if running).
  double ipc() const;

  u32 id() const { return id_; }

 private:
  enum class State : u8 {
    kIdle,          ///< not started
    kExecuting,     ///< burning the gap's cycles (event scheduled)
    kIssuing,       ///< ready to issue the pending op
    kStallMlp,      ///< read window full
    kStallQueue,    ///< controller queue full
    kDone,
  };

  void execute_gap();
  void try_issue();
  void finish_if_done();

  sim::Simulator& sim_;
  u32 id_;
  CoreConfig cfg_;
  sim::Clock clock_;
  mem::MemoryInterface& ctl_;
  workload::RequestSource& gen_;

  u64 budget_;
  u64 retired_ = 0;
  u64 outstanding_reads_ = 0;
  u64 reads_issued_ = 0;
  u64 writes_issued_ = 0;
  u64 stall_events_ = 0;
  State state_ = State::kIdle;
  workload::TraceOp pending_{};
  bool has_pending_ = false;
  bool finished_ = false;
  Tick finish_tick_ = 0;
};

}  // namespace tw::cpu
