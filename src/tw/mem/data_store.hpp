#pragma once
// Sparse physical content store for the PCM main memory.
//
// Holds the *physical* line state (cell words + flip tags) for every line
// ever touched. Untouched lines are materialized on first access with
// deterministic pseudo-random content derived from (seed, line address),
// so simulations are reproducible regardless of access order.
//
// Storage is a FlatIndexMap (open-addressing, no per-entry allocation)
// over a chunked arena of LineBufs: references returned by line() stay
// valid for the store's lifetime — growth adds chunks, it never moves
// existing lines (unlike unordered_map, this is guaranteed by layout,
// not by rehash accident).

#include <memory>
#include <vector>

#include "tw/common/flat_map.hpp"
#include "tw/common/rng.hpp"
#include "tw/common/types.hpp"
#include "tw/pcm/line.hpp"

namespace tw::mem {

/// Sparse map from line address to physical line state.
class DataStore {
 public:
  /// `units_per_line`: data units per cache line; `seed` drives the
  /// deterministic first-touch content; `ones_bias` is the probability
  /// that a first-touch cell holds '1' (SET-dominant workloads start
  /// zero-rich, see WorkloadProfile::initial_ones_fraction).
  DataStore(u32 units_per_line, u64 seed, double ones_bias = 0.5)
      : units_(units_per_line), seed_(seed), ones_bias_(ones_bias) {}

  /// Mutable physical state of a line (materialized on first touch).
  /// The reference stays valid for the lifetime of the store.
  pcm::LineBuf& line(Addr line_addr);

  /// Read-only logical view of a line (materializes on first touch).
  /// Routed through the installed decoder when the write scheme stores a
  /// transformed image (content-encoder pre-stage); the default is the
  /// plain flip-tag inversion of LogicalLine::from_physical.
  pcm::LogicalLine read_logical(Addr line_addr) {
    pcm::LineBuf& l = line(line_addr);
    if (decoder_fn_ != nullptr) return decoder_fn_(decoder_ctx_, l);
    return pcm::LogicalLine::from_physical(l);
  }

  /// Install the logical-view decoder (the Controller wires the scheme's
  /// decode_stored here when the scheme transforms stored content). A raw
  /// context + function pair rather than std::function: read_logical sits
  /// on the generator/gap-move hot path and must stay alloc-free.
  using Decoder = pcm::LogicalLine (*)(const void* ctx, const pcm::LineBuf&);
  void set_decoder(const void* ctx, Decoder fn) {
    decoder_ctx_ = ctx;
    decoder_fn_ = fn;
  }

  /// True if the line has been materialized.
  bool touched(Addr line_addr) const {
    return index_.find(line_addr) != FlatIndexMap::kNoIndex;
  }

  std::size_t lines_touched() const { return index_.size(); }
  u32 units_per_line() const { return units_; }

 private:
  static constexpr u32 kChunkShift = 9;  ///< 512 lines per arena chunk
  static constexpr u32 kChunkLines = 1u << kChunkShift;
  static constexpr u32 kChunkMask = kChunkLines - 1;

  pcm::LineBuf materialize(Addr line_addr) const;

  u32 units_;
  u64 seed_;
  double ones_bias_;
  const void* decoder_ctx_ = nullptr;
  Decoder decoder_fn_ = nullptr;
  FlatIndexMap index_;
  std::vector<std::unique_ptr<pcm::LineBuf[]>> chunks_;
  u32 arena_size_ = 0;  ///< lines stored across all chunks
};

}  // namespace tw::mem
