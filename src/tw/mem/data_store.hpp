#pragma once
// Sparse physical content store for the PCM main memory.
//
// Holds the *physical* line state (cell words + flip tags) for every line
// ever touched. Untouched lines are materialized on first access with
// deterministic pseudo-random content derived from (seed, line address),
// so simulations are reproducible regardless of access order.

#include <unordered_map>

#include "tw/common/rng.hpp"
#include "tw/common/types.hpp"
#include "tw/pcm/line.hpp"

namespace tw::mem {

/// Sparse map from line address to physical line state.
class DataStore {
 public:
  /// `units_per_line`: data units per cache line; `seed` drives the
  /// deterministic first-touch content; `ones_bias` is the probability
  /// that a first-touch cell holds '1' (SET-dominant workloads start
  /// zero-rich, see WorkloadProfile::initial_ones_fraction).
  DataStore(u32 units_per_line, u64 seed, double ones_bias = 0.5)
      : units_(units_per_line), seed_(seed), ones_bias_(ones_bias) {}

  /// Mutable physical state of a line (materialized on first touch).
  pcm::LineBuf& line(Addr line_addr);

  /// Read-only logical view of a line (materializes on first touch).
  pcm::LogicalLine read_logical(Addr line_addr) {
    return pcm::LogicalLine::from_physical(line(line_addr));
  }

  /// True if the line has been materialized.
  bool touched(Addr line_addr) const {
    return lines_.find(line_addr) != lines_.end();
  }

  std::size_t lines_touched() const { return lines_.size(); }
  u32 units_per_line() const { return units_; }

 private:
  pcm::LineBuf materialize(Addr line_addr) const;

  u32 units_;
  u64 seed_;
  double ones_bias_;
  std::unordered_map<Addr, pcm::LineBuf> lines_;
};

}  // namespace tw::mem
