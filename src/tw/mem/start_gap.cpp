#include "tw/mem/start_gap.hpp"

#include "tw/common/rng.hpp"

namespace tw::mem {

StartGapLeveler::StartGapLeveler(StartGapConfig cfg)
    : cfg_(cfg), gap_(cfg.region_lines) {
  TW_EXPECTS(cfg.valid());
  if (cfg_.randomize) {
    // The Feistel randomizer needs a power-of-two region to be bijective.
    TW_EXPECTS(is_pow2(cfg_.region_lines));
  }
}

u64 StartGapLeveler::randomize(u64 line) const {
  if (!cfg_.randomize) return line;
  // Static bijection over [0, 2^k): two rounds of multiply-by-odd and
  // key XOR (both invertible modulo 2^k). Spreads spatially-adjacent hot
  // lines across the region — the role of the paper's address-space
  // randomization in front of Start-Gap.
  const u64 mask = cfg_.region_lines - 1;
  u64 v = line;
  v = (v * 0x9E3779B97F4A7C15ull) & mask;  // odd multiplier: bijective
  v ^= cfg_.key & mask;
  v = (v * 0xC2B2AE3D27D4EB4Full) & mask;
  v ^= (cfg_.key >> 17) & mask;
  return v;
}

u64 StartGapLeveler::map(u64 logical_line) const {
  TW_EXPECTS(logical_line < cfg_.region_lines);
  const u64 n = cfg_.region_lines;
  const u64 randomized = randomize(logical_line);
  const u64 pa = (randomized + start_) % n;
  return pa >= gap_ ? pa + 1 : pa;
}

std::optional<GapMove> StartGapLeveler::on_write() {
  ++writes_;
  if (writes_ % cfg_.gap_write_interval != 0) return std::nullopt;

  GapMove move;
  const u64 n = cfg_.region_lines;
  if (gap_ > 0) {
    move.from_physical = gap_ - 1;
    move.to_physical = gap_;
    --gap_;
  } else {
    // Wrap: the line in the last slot rotates to slot 0; one full cycle
    // completes and the start register advances.
    move.from_physical = n;
    move.to_physical = 0;
    gap_ = n;
    start_ = (start_ + 1) % n;
  }
  ++moves_;
  return move;
}

}  // namespace tw::mem
